/**
 * @file
 * Quickstart: the paper's running example (Figs. 9 and 11).
 *
 * Defines a Person class, creates (or loads) the "Jimmy" persistent
 * heap, allocates a Person with pnew, registers it as a root, and
 * shows that the object — including its persistent String field —
 * survives a simulated power failure.
 */

#include <cstdio>

#include "core/espresso.hh"

using namespace espresso;

int
main()
{
    EspressoRuntime rt;

    // public class Person { Integer id; String name; }
    rt.define({"Person",
               "",
               {{"id", FieldType::kI64}, {"name", FieldType::kRef}},
               false});
    std::uint32_t id_off = rt.fieldOffset("Person", "id");
    std::uint32_t name_off = rt.fieldOffset("Person", "name");

    // if (existsHeap("Jimmy")) { loadHeap(...) } else { createHeap }
    PjhHeap *heap;
    if (rt.heaps().existsHeap("Jimmy")) {
        heap = rt.heaps().loadHeap("Jimmy");
    } else {
        heap = rt.heaps().createHeap("Jimmy", 16u << 20);

        // Person p = pnew Person(42, pnew String("Jimmy O'Neil"));
        Oop p = rt.pnewInstance(heap, "Person");
        p.setI64(id_off, 42);
        p.setRef(name_off, rt.pnewString(heap, "Jimmy O'Neil"));
        heap->flushObject(p); // §3.5 coarse-grained flush
        heap->setRoot("Jimmy_info", p);
    }

    Oop p = heap->getRoot("Jimmy_info");
    std::printf("before crash: id=%ld name=%s\n",
                static_cast<long>(p.getI64(id_off)),
                EspressoRuntime::readString(Oop(p.getRef(name_off)))
                    .c_str());

    // Power failure: all volatile state is gone; only flushed NVM
    // data survives. Then reboot and reload the heap.
    rt.heaps().crashHeap("Jimmy");
    heap = rt.heaps().loadHeap("Jimmy");

    Oop q = heap->getRoot("Jimmy_info");
    std::printf("after crash:  id=%ld name=%s\n",
                static_cast<long>(q.getI64(id_off)),
                EspressoRuntime::readString(Oop(q.getRef(name_off)))
                    .c_str());
    return 0;
}
