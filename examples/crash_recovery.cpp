/**
 * @file
 * Crash-consistency walkthrough (paper §4): injects a power failure
 * in the middle of a persistent-heap garbage collection, shows the
 * heap flagged as mid-collection, and demonstrates that loadHeap's
 * recovery completes the compaction transparently — the live graph
 * reads back bit-for-bit.
 */

#include <cstdio>

#include "core/espresso.hh"
#include "nvm/crash_injector.hh"

using namespace espresso;

int
main()
{
    EspressoRuntime rt;
    rt.define({"Node",
               "",
               {{"value", FieldType::kI64}, {"next", FieldType::kRef}},
               false});
    std::uint32_t value_off = rt.fieldOffset("Node", "value");
    std::uint32_t next_off = rt.fieldOffset("Node", "next");

    PjhHeap *heap = rt.heaps().createHeap("demo", 8u << 20);

    // A live list interleaved with garbage, so the GC must move it.
    Oop head;
    std::int64_t expected_sum = 0;
    for (int i = 0; i < 1000; ++i) {
        Oop keep = rt.pnewInstance(heap, "Node");
        keep.setI64(value_off, i);
        keep.setRef(next_off, head);
        heap->flushObject(keep);
        head = keep;
        expected_sum += i;

        Oop garbage = rt.pnewInstance(heap, "Node");
        garbage.setI64(value_off, -i);
        heap->flushObject(garbage);
    }
    heap->setRoot("list", head);
    std::printf("heap populated: %.2f MiB used\n",
                heap->dataUsed() / 1048576.0);

    // Arm a crash in the middle of the compaction phase.
    CrashInjector injector;
    heap->device().setInjector(&injector);
    injector.arm(600);
    bool crashed = false;
    try {
        heap->collect(&rt.heap());
    } catch (const SimulatedCrash &) {
        crashed = true;
    }
    injector.disarm();
    std::printf("GC %s mid-compaction\n",
                crashed ? "crashed" : "completed (crash point too late)");

    // Power failure: unflushed lines are lost, the process "reboots".
    rt.heaps().crashHeap("demo");
    NvmDevice *dev = rt.heaps().deviceOf("demo");
    auto *meta = reinterpret_cast<PjhMetadata *>(dev->base());
    std::printf("metadata says gcInProgress=%llu -> recovery needed\n",
                static_cast<unsigned long long>(meta->gcInProgress));

    // loadHeap runs the §4.3 recovery before returning.
    PjhHeap *reloaded = rt.heaps().loadHeap("demo");
    std::printf("recoveries run: %llu, heap now %.2f MiB\n",
                static_cast<unsigned long long>(
                    reloaded->stats().recoveries),
                reloaded->dataUsed() / 1048576.0);

    std::int64_t sum = 0;
    int count = 0;
    for (Oop cur = reloaded->getRoot("list"); !cur.isNull();
         cur = Oop(cur.getRef(next_off))) {
        sum += cur.getI64(value_off);
        ++count;
    }
    std::printf("list after recovery: %d nodes, sum %ld (expected %ld) "
                "%s\n",
                count, static_cast<long>(sum),
                static_cast<long>(expected_sum),
                sum == expected_sum ? "OK" : "MISMATCH");
    return 0;
}
