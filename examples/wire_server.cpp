/**
 * @file
 * The wire front door, standalone: a ShardedDatabase behind the
 * reactor server, serving the binary protocol until SIGINT/SIGTERM.
 *
 *   ./wire_server [port]
 *
 * Knobs: ESPRESSO_SHARDS (members), ESPRESSO_NET_WORKERS (event
 * loops), ESPRESSO_NET_QUEUE_DEPTH (per-worker admission),
 * ESPRESSO_DB_GROUP_COMMIT (fence coalescing window in µs, or
 * "auto"). Pair with bench/wire_bench as the load driver.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "db/sharded_database.hh"
#include "net/server.hh"

using namespace espresso;

namespace {

std::atomic<bool> g_stop{false};

void
onSignal(int)
{
    g_stop.store(true);
}

} // namespace

int
main(int argc, char **argv)
{
    net::ServerConfig cfg;
    if (argc > 1)
        cfg.port = static_cast<std::uint16_t>(std::atoi(argv[1]));

    db::ShardedDatabaseConfig db_cfg;
    db::ShardedDatabase db(db_cfg);

    net::Server server(&db, cfg);
    server.start();
    std::printf("wire_server: %u shard(s), %u worker(s), port %u\n",
                db.shardCount(), server.workers(), server.port());

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    while (!g_stop.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(50));

    server.stop();
    net::ServerStats s = server.stats();
    std::printf("wire_server: served %llu frame(s) on %llu "
                "connection(s), %llu txn(s) committed, %llu "
                "admission reject(s)\n",
                static_cast<unsigned long long>(s.frames),
                static_cast<unsigned long long>(s.accepted),
                static_cast<unsigned long long>(s.txnsCommitted),
                static_cast<unsigned long long>(s.admissionRejects));
    return 0;
}
