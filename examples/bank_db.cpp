/**
 * @file
 * Coarse-grained persistence: a toy bank on the PJO programming
 * model (paper §5) — JPA-style EntityManager API, DBPersistable
 * ingress, field-level tracking, and ACID transfers that survive a
 * crash mid-flight.
 */

#include <cstdio>

#include "orm/entity_manager.hh"
#include "orm/pjo_provider.hh"

using namespace espresso;
using namespace espresso::orm;

int
main()
{
    db::Database database;
    Enhancer enhancer;

    EntityDescriptor account;
    account.name = "ACCOUNT";
    account.fields = {{"ID", db::DbType::kI64, false, ""},
                      {"OWNER", db::DbType::kStr, false, ""},
                      {"BALANCE", db::DbType::kI64, false, ""}};
    enhancer.registerEntity(account);
    enhancer.createTables(database);

    PjoProvider provider(/*enable_dedup=*/false);
    EntityManager em(&database, &provider, &enhancer);

    // Open two accounts.
    em.begin();
    for (int i = 0; i < 2; ++i) {
        Entity *a = em.newEntity("ACCOUNT");
        a->set("ID", db::DbValue::ofI64(i));
        a->set("OWNER", db::DbValue::ofStr(i ? "Haibo" : "Mingyu"));
        a->set("BALANCE", db::DbValue::ofI64(1000));
        em.persist(a);
    }
    em.commit();
    em.clear();

    // A committed transfer.
    em.begin();
    Entity *from = em.find("ACCOUNT", 0);
    Entity *to = em.find("ACCOUNT", 1);
    from->set("BALANCE", db::DbValue::ofI64(from->get("BALANCE").i - 250));
    to->set("BALANCE", db::DbValue::ofI64(to->get("BALANCE").i + 250));
    em.commit();
    em.clear();

    // A transfer that crashes before commit: the database-level WAL
    // rolls it back on reopen — no money is created or destroyed.
    database.begin();
    db::DbRecord half;
    half.values = {db::DbValue::ofI64(0), db::DbValue::null(),
                   db::DbValue::ofI64(-999999)};
    half.dirtyMask = 1ull << 2;
    database.persistRecord("ACCOUNT", half);
    database.crash(); // power failure mid-transaction

    EntityManager em2(&database, &provider, &enhancer);
    em2.begin();
    Entity *a0 = em2.find("ACCOUNT", 0);
    Entity *a1 = em2.find("ACCOUNT", 1);
    std::printf("%s: %ld\n%s: %ld\ntotal: %ld (conserved)\n",
                a0->get("OWNER").s.c_str(),
                static_cast<long>(a0->get("BALANCE").i),
                a1->get("OWNER").s.c_str(),
                static_cast<long>(a1->get("BALANCE").i),
                static_cast<long>(a0->get("BALANCE").i +
                                  a1->get("BALANCE").i));
    em2.commit();
    return 0;
}
