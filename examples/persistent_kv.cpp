/**
 * @file
 * A crash-safe key-value store in ~100 lines on the public API:
 * a PHashmap of string values in a PJH, with every update ACID via
 * the heap's undo log. Demonstrates the fine-grained persistence
 * path (the use case PCJ targets, §2.2) on plain Espresso objects.
 */

#include <cstdio>
#include <string>

#include "collections/phashmap.hh"
#include "core/espresso.hh"

using namespace espresso;

namespace {

/** Minimal persistent KV facade. */
class KvStore
{
  public:
    KvStore(EspressoRuntime &rt, const std::string &heap_name) : rt_(rt)
    {
        if (rt_.heaps().existsHeap(heap_name)) {
            heap_ = rt_.heaps().loadHeap(heap_name);
            map_ = PHashmap::at(heap_, heap_->getRoot("kv"));
        } else {
            heap_ = rt_.heaps().createHeap(heap_name, 32u << 20);
            map_ = PHashmap::create(heap_, 1024);
            heap_->setRoot("kv", map_.oop());
        }
    }

    void
    put(std::int64_t key, const std::string &value)
    {
        map_.put(key, rt_.pnewString(heap_, value));
    }

    bool
    get(std::int64_t key, std::string *out) const
    {
        Oop v = map_.get(key);
        if (v.isNull())
            return false;
        *out = EspressoRuntime::readString(v);
        return true;
    }

    bool erase(std::int64_t key) { return map_.remove(key); }

    std::uint64_t size() const { return map_.size(); }

    /** Reclaim dead values (old versions) from the heap. */
    void
    compact()
    {
        heap_->collect(&rt_.heap());
        map_ = PHashmap::at(heap_, heap_->getRoot("kv"));
    }

    PjhHeap *heap() { return heap_; }

  private:
    EspressoRuntime &rt_;
    PjhHeap *heap_ = nullptr;
    PHashmap map_;
};

} // namespace

int
main()
{
    EspressoRuntime rt;
    KvStore kv(rt, "kvstore");

    for (int i = 0; i < 1000; ++i)
        kv.put(i, "value-" + std::to_string(i));
    // Overwrite some keys, making the old string values garbage.
    for (int i = 0; i < 500; ++i)
        kv.put(i, "value-" + std::to_string(i) + "-v2");
    kv.erase(999);

    std::printf("entries: %llu, heap used before GC: %.1f MiB\n",
                static_cast<unsigned long long>(kv.size()),
                kv.heap()->dataUsed() / 1048576.0);
    kv.compact();
    std::printf("heap used after GC:  %.1f MiB\n",
                kv.heap()->dataUsed() / 1048576.0);
    // Per-cycle GC stats persist with the heap; in concurrent (SATB)
    // mode the pause excludes marking, which runs alongside mutators.
    const PjhStats &gs = kv.heap()->stats();
    std::printf("gc cycle: %s, pause %.2f ms (conc-mark %.2f ms), "
                "marked %llu, shaded+floating %llu\n",
                kv.heap()->gcConcurrent() ? "concurrent" : "stop-the-world",
                gs.lastGcPauseNs / 1e6, gs.lastGcConcMarkNs / 1e6,
                static_cast<unsigned long long>(gs.lastGcMarked),
                static_cast<unsigned long long>(gs.lastGcShaded +
                                                gs.lastGcFloating));

    // Power failure + reopen: everything committed is still there.
    rt.heaps().crashHeap("kvstore");
    KvStore kv2(rt, "kvstore");

    std::string v;
    bool ok = kv2.get(123, &v);
    std::printf("after crash: size=%llu key123=%s key999=%s\n",
                static_cast<unsigned long long>(kv2.size()),
                ok ? v.c_str() : "<missing>",
                kv2.get(999, &v) ? v.c_str() : "<deleted>");
    return 0;
}
