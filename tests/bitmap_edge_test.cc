/**
 * @file
 * Edge-case tests for util/bitmap and heap/mark_bitmap: exact
 * 64-bit word boundaries for set/clear/range/scan, zero-length
 * maps, and the live-bits size reconstruction the PJH recovery
 * path depends on.
 */

#include <gtest/gtest.h>

#include <vector>

#include "heap/mark_bitmap.hh"
#include "util/bitmap.hh"
#include "util/common.hh"

namespace espresso {
namespace {

// ---------------------------------------------------------------------
// BitmapView / OwnedBitmap
// ---------------------------------------------------------------------

TEST(BitmapEdgeTest, SizingAtWordBoundaries)
{
    EXPECT_EQ(BitmapView::wordsFor(0), 0u);
    EXPECT_EQ(BitmapView::wordsFor(1), 1u);
    EXPECT_EQ(BitmapView::wordsFor(64), 1u);
    EXPECT_EQ(BitmapView::wordsFor(65), 2u);
    EXPECT_EQ(BitmapView::wordsFor(128), 2u);
    EXPECT_EQ(BitmapView::bytesFor(0), 0u);
    EXPECT_EQ(BitmapView::bytesFor(64), 8u);
    EXPECT_EQ(BitmapView::bytesFor(65), 16u);
}

TEST(BitmapEdgeTest, ZeroLengthMapIsInert)
{
    OwnedBitmap bm(0);
    EXPECT_EQ(bm.numBits(), 0u);
    EXPECT_EQ(bm.sizeBytes(), 0u);
    EXPECT_EQ(bm.popcount(0, 0), 0u);
    EXPECT_EQ(bm.findNextSet(0, 0), 0u);
    bm.setRange(0, 0); // empty range on an empty map: no-op
    bm.clearAll();
}

TEST(BitmapEdgeTest, EmptyRangesAreNoOps)
{
    OwnedBitmap bm(256);
    bm.setRange(100, 100);
    EXPECT_EQ(bm.popcount(0, 256), 0u);
    bm.setRange(0, 256);
    EXPECT_EQ(bm.popcount(64, 64), 0u);
    EXPECT_EQ(bm.popcount(255, 255), 0u);
}

TEST(BitmapEdgeTest, SetClearAtEveryWordBoundaryBit)
{
    OwnedBitmap bm(256);
    // The four interesting positions around each boundary.
    for (std::size_t bit : {0u, 63u, 64u, 127u, 128u, 191u, 192u, 255u}) {
        bm.set(bit);
        EXPECT_TRUE(bm.test(bit)) << bit;
    }
    EXPECT_EQ(bm.popcount(0, 256), 8u);
    // Neighbours of the set bits stay clear (no smear across words).
    for (std::size_t bit : {1u, 62u, 65u, 126u, 129u, 190u, 193u, 254u})
        EXPECT_FALSE(bm.test(bit)) << bit;
    for (std::size_t bit : {63u, 64u, 191u, 192u})
        bm.clear(bit);
    EXPECT_EQ(bm.popcount(0, 256), 4u);
}

TEST(BitmapEdgeTest, SetRangeStraddlingWordBoundaries)
{
    // Ranges that start/end exactly on, one before, and one after a
    // word boundary, including a full middle word.
    struct Case
    {
        std::size_t begin, end;
    };
    for (const Case &c : std::vector<Case>{{63, 65},
                                           {64, 128},
                                           {63, 129},
                                           {1, 64},
                                           {0, 192},
                                           {65, 191}}) {
        OwnedBitmap bm(256);
        bm.setRange(c.begin, c.end);
        EXPECT_EQ(bm.popcount(0, 256), c.end - c.begin)
            << c.begin << ".." << c.end;
        EXPECT_EQ(bm.findNextSet(0, 256), c.begin);
        if (c.begin > 0) {
            EXPECT_FALSE(bm.test(c.begin - 1));
        }
        EXPECT_TRUE(bm.test(c.end - 1));
        if (c.end < 256) {
            EXPECT_FALSE(bm.test(c.end));
        }
    }
}

TEST(BitmapEdgeTest, PopcountSubrangesAcrossWords)
{
    OwnedBitmap bm(320);
    bm.setRange(60, 260);
    EXPECT_EQ(bm.popcount(60, 260), 200u);
    EXPECT_EQ(bm.popcount(64, 256), 192u); // word-aligned interior
    EXPECT_EQ(bm.popcount(63, 65), 2u);    // straddles one boundary
    EXPECT_EQ(bm.popcount(0, 60), 0u);
    EXPECT_EQ(bm.popcount(260, 320), 0u);
    EXPECT_EQ(bm.popcount(128, 192), 64u); // one full word
}

TEST(BitmapEdgeTest, FindNextSetFromWordBoundaries)
{
    OwnedBitmap bm(256);
    bm.set(64);
    bm.set(128);
    EXPECT_EQ(bm.findNextSet(0, 256), 64u);
    EXPECT_EQ(bm.findNextSet(64, 256), 64u);  // from == the set bit
    EXPECT_EQ(bm.findNextSet(65, 256), 128u); // skip a whole empty tail
    EXPECT_EQ(bm.findNextSet(129, 256), 256u);
    EXPECT_EQ(bm.findNextSet(0, 64), 64u);  // limit excludes the hit
    EXPECT_EQ(bm.findNextSet(64, 64), 64u); // empty window
}

TEST(BitmapEdgeTest, LastBitOfLastPartialWord)
{
    OwnedBitmap bm(65); // one full word + a 1-bit tail
    bm.set(64);
    EXPECT_TRUE(bm.test(64));
    EXPECT_EQ(bm.popcount(0, 65), 1u);
    EXPECT_EQ(bm.findNextSet(0, 65), 64u);
    bm.clear(64);
    EXPECT_EQ(bm.popcount(0, 65), 0u);
}

// ---------------------------------------------------------------------
// MarkBitmap
// ---------------------------------------------------------------------

/** A MarkBitmap over a fake address range with owned backing words. */
struct MarkRig
{
    explicit MarkRig(std::size_t covered_bytes)
        : start(BitmapView::wordsFor(MarkBitmap::bitsFor(covered_bytes)), 0),
          live(start.size(), 0),
          bm(kBase, covered_bytes, start.data(), live.data())
    {}

    static constexpr Addr kBase = 0x10000;

    std::vector<Word> start, live;
    MarkBitmap bm;
};

TEST(MarkBitmapEdgeTest, StorageSizing)
{
    EXPECT_EQ(MarkBitmap::bitsFor(0), 0u);
    EXPECT_EQ(MarkBitmap::storageBytesFor(0), 0u);
    // 512 covered bytes = 64 granules = exactly one backing word.
    EXPECT_EQ(MarkBitmap::bitsFor(512), 64u);
    EXPECT_EQ(MarkBitmap::storageBytesFor(512), 8u);
    EXPECT_EQ(MarkBitmap::storageBytesFor(520), 16u);
}

TEST(MarkBitmapEdgeTest, MarkAndScanAtCoverageEdges)
{
    MarkRig rig(1024);
    const Addr base = MarkRig::kBase;

    // First granule, a middle object straddling the bit-word boundary
    // (granules 62..65), and the very last granules of the range.
    rig.bm.markObject(base, 16);
    rig.bm.markObject(base + 62 * 8, 32);
    rig.bm.markObject(base + 1024 - 8, 8);

    EXPECT_TRUE(rig.bm.isMarked(base));
    EXPECT_TRUE(rig.bm.isMarked(base + 62 * 8));
    EXPECT_TRUE(rig.bm.isMarked(base + 1024 - 8));
    EXPECT_FALSE(rig.bm.isMarked(base + 16));

    EXPECT_EQ(rig.bm.nextMarkedObject(base, base + 1024), base);
    EXPECT_EQ(rig.bm.nextMarkedObject(base + 8, base + 1024),
              base + 62 * 8);
    EXPECT_EQ(rig.bm.nextMarkedObject(base + 63 * 8, base + 1024),
              base + 1024 - 8);
    EXPECT_EQ(rig.bm.nextMarkedObject(base + 1024 - 8 + 8, base + 1024),
              kNullAddr);
}

TEST(MarkBitmapEdgeTest, LiveSizeReconstruction)
{
    MarkRig rig(1024);
    const Addr base = MarkRig::kBase;

    // Adjacent objects: live bits are contiguous across them, so the
    // size of each must stop at the next start bit, not at the first
    // clear live bit.
    rig.bm.markObject(base + 496, 16); // granules 62,63
    rig.bm.markObject(base + 512, 24); // granules 64,65,66
    EXPECT_EQ(rig.bm.liveSizeAt(base + 496), 16u);
    EXPECT_EQ(rig.bm.liveSizeAt(base + 512), 24u);

    // An isolated object's size ends at the first clear live bit.
    rig.bm.markObject(base + 800, 40);
    EXPECT_EQ(rig.bm.liveSizeAt(base + 800), 40u);

    EXPECT_EQ(rig.bm.liveBytesInRange(base, base + 1024), 16u + 24u + 40u);
    EXPECT_EQ(rig.bm.liveBytesInRange(base + 496, base + 536), 40u);
}

TEST(MarkBitmapEdgeTest, ClearAllResetsBothVectors)
{
    MarkRig rig(512);
    rig.bm.markObject(MarkRig::kBase, 64);
    EXPECT_TRUE(rig.bm.isMarked(MarkRig::kBase));
    EXPECT_GT(rig.bm.liveBytesInRange(MarkRig::kBase, MarkRig::kBase + 512),
              0u);
    rig.bm.clearAll();
    EXPECT_FALSE(rig.bm.isMarked(MarkRig::kBase));
    EXPECT_EQ(rig.bm.liveBytesInRange(MarkRig::kBase, MarkRig::kBase + 512),
              0u);
    EXPECT_EQ(rig.bm.nextMarkedObject(MarkRig::kBase, MarkRig::kBase + 512),
              kNullAddr);
}

} // namespace
} // namespace espresso
