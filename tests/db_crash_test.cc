/**
 * @file
 * Database crash sweeps: a power failure at every persistence event
 * of a multi-statement transaction must leave the database atomic —
 * either the whole transaction or none of it — under both crash
 * modes. Also sweeps DDL (catalog publication) and the cross-shard
 * two-phase commit protocol (prepare / decision / finish windows).
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <thread>

#include "db/database.hh"
#include "db/sharded_database.hh"
#include "nvm/crash_injector.hh"
#include "util/rng.hh"

namespace espresso {
namespace db {
namespace {

std::unique_ptr<Database>
makeDb()
{
    DatabaseConfig cfg;
    cfg.rowRegionSize = 4u << 20;
    cfg.rowsPerTable = 256;
    return std::make_unique<Database>(cfg);
}

void
transferWorkload(Database &db)
{
    db.begin();
    db.executeSql("UPDATE ACCT SET BAL = 70 WHERE ID = 1");
    db.executeSql("UPDATE ACCT SET BAL = 130 WHERE ID = 2");
    db.executeSql(
        "INSERT INTO ACCT (ID, BAL) VALUES (3, 0)"); // audit row
    db.commit();
}

void
sweep(CrashMode mode)
{
    for (std::uint64_t event = 1;; ++event) {
        auto db = makeDb();
        db->executeSql(
            "CREATE TABLE ACCT (ID BIGINT PRIMARY KEY, BAL BIGINT)");
        db->executeSql("INSERT INTO ACCT (ID, BAL) VALUES (1, 100)");
        db->executeSql("INSERT INTO ACCT (ID, BAL) VALUES (2, 100)");

        CrashInjector inj;
        db->device().setInjector(&inj);
        inj.arm(event);
        bool crashed = false;
        try {
            transferWorkload(*db);
        } catch (const SimulatedCrash &) {
            crashed = true;
        }
        inj.disarm();
        db->device().setInjector(nullptr);
        if (!crashed)
            break;

        db->crash(mode, 77 + event);

        ResultSet a = db->executeSql("SELECT BAL FROM ACCT WHERE ID = 1");
        ResultSet b = db->executeSql("SELECT BAL FROM ACCT WHERE ID = 2");
        ASSERT_EQ(a.rows.size(), 1u);
        ASSERT_EQ(b.rows.size(), 1u);
        std::int64_t a_bal = a.rows[0][0].i;
        std::int64_t b_bal = b.rows[0][0].i;
        std::size_t rows = db->rowCount("ACCT");
        bool before = a_bal == 100 && b_bal == 100 && rows == 2;
        bool after = a_bal == 70 && b_bal == 130 && rows == 3;
        EXPECT_TRUE(before || after)
            << "event " << event << ": a=" << a_bal << " b=" << b_bal
            << " rows=" << rows;
        EXPECT_EQ(a_bal + b_bal, 200) << "event " << event;

        // The recovered database stays fully usable.
        db->executeSql("INSERT INTO ACCT (ID, BAL) VALUES (9, 1)");
        EXPECT_EQ(db->executeSql("SELECT * FROM ACCT WHERE ID = 9")
                      .rows.size(),
                  1u);
    }
}

TEST(DbCrashTest, TransactionSweepConservative)
{
    sweep(CrashMode::kDiscardUnflushed);
}

TEST(DbCrashTest, TransactionSweepWithCacheEviction)
{
    sweep(CrashMode::kEvictRandomLines);
}

// ---------------------------------------------------------------------
// Randomized multi-threaded transaction sweep: T threads run
// multi-row transactions over disjoint key ranges; a power failure
// fires at a randomized persistence event (every other thread then
// dies at its own next event). After recovery every thread's key
// group must be atomic (all rows carry one transaction's value) and
// prefix-consistent: acknowledged commits survive
// (committed-stays-committed), the in-flight transaction is gone
// (in-flight-rolls-back), and a commit that was durable but not yet
// acknowledged may surface as lastCommitted+1.
// ---------------------------------------------------------------------

namespace mt {

constexpr int kThreads = 4;
constexpr int kKeysPerThread = 4;
constexpr int kTxnsPerThread = 25;

std::unique_ptr<Database>
makeMtDb(std::uint64_t window_us)
{
    DatabaseConfig cfg;
    cfg.rowRegionSize = 4u << 20;
    cfg.rowsPerTable = 256;
    cfg.walShards = 8;
    cfg.groupCommitWindowUs = window_us;
    auto db = std::make_unique<Database>(cfg);
    db->executeSql(
        "CREATE TABLE ACCT (ID BIGINT PRIMARY KEY, VAL BIGINT)");
    for (int t = 0; t < kThreads; ++t) {
        for (int k = 0; k < kKeysPerThread; ++k) {
            db->executeSql("INSERT INTO ACCT (ID, VAL) VALUES (" +
                           std::to_string(t * 100 + k) + ", 0)");
        }
    }
    return db;
}

/** Runs the workload; returns per-thread count of acknowledged
 * commits. Threads stop at the simulated power failure. */
std::array<int, kThreads>
runWorkload(Database &db, std::atomic<bool> *saw_unexpected)
{
    std::array<int, kThreads> committed{};
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t]() {
            ready.fetch_add(1);
            while (!go.load(std::memory_order_acquire))
                std::this_thread::yield();
            try {
                for (int i = 1; i <= kTxnsPerThread; ++i) {
                    db.begin();
                    for (int k = 0; k < kKeysPerThread; ++k) {
                        DbRecord rec;
                        rec.values = {
                            DbValue::ofI64(t * 100 + k),
                            DbValue::ofI64(i),
                        };
                        rec.dirtyMask = 1ull << 1;
                        db.persistRecord("ACCT", rec);
                    }
                    db.commit();
                    committed[t] = i;
                }
            } catch (const SimulatedCrash &) {
                // Power is gone; this thread is dead.
            } catch (...) {
                saw_unexpected->store(true);
            }
        });
    }
    while (ready.load() != kThreads)
        std::this_thread::yield();
    go.store(true, std::memory_order_release);
    for (auto &w : workers)
        w.join();
    return committed;
}

void
mtSweep(CrashMode mode, std::uint64_t window_us)
{
    // Torn-tail rollback warnings are expected output here.
    setWarningsEnabled(false);
    // Dry run: count the workload's persistence events so crash
    // points can be drawn from the real range.
    CrashInjector probe;
    std::uint64_t total_events;
    {
        auto db = makeMtDb(window_us);
        db->device().setInjector(&probe);
        probe.resetCount();
        std::atomic<bool> unexpected{false};
        runWorkload(*db, &unexpected);
        ASSERT_FALSE(unexpected.load());
        db->device().setInjector(nullptr);
        total_events = probe.eventCount();
    }
    ASSERT_GT(total_events, 100u);

    Rng rng(0x5EED5EEDull + static_cast<int>(mode) * 31 + window_us);
    for (int trial = 0; trial < 6; ++trial) {
        auto db = makeMtDb(window_us);
        CrashInjector inj;
        db->device().setInjector(&inj);
        std::uint64_t target = 1 + rng.nextBelow(total_events);
        inj.arm(target);
        std::atomic<bool> unexpected{false};
        std::array<int, mt::kThreads> committed =
            runWorkload(*db, &unexpected);
        inj.disarm();
        db->device().setInjector(nullptr);
        EXPECT_FALSE(unexpected.load()) << "trial " << trial;
        bool crashed = inj.eventCount() >= target;
        if (!crashed)
            continue; // target fell beyond this interleaving's run

        db->crash(mode, 1000 + trial * 77 + target);

        for (int t = 0; t < kThreads; ++t) {
            std::int64_t group_val = -1;
            for (int k = 0; k < kKeysPerThread; ++k) {
                ResultSet rs = db->executeSql(
                    "SELECT VAL FROM ACCT WHERE ID = " +
                    std::to_string(t * 100 + k));
                ASSERT_EQ(rs.rows.size(), 1u)
                    << "trial " << trial << " event " << target
                    << ": lost row " << t * 100 + k;
                std::int64_t v = rs.rows[0][0].i;
                if (k == 0)
                    group_val = v;
                // Atomicity: the whole transaction or none of it.
                EXPECT_EQ(v, group_val)
                    << "trial " << trial << " event " << target
                    << ": torn txn for thread " << t;
            }
            // committed-stays-committed / in-flight-rolls-back: the
            // group holds the last acknowledged commit, or one more
            // (durable but unacknowledged).
            EXPECT_TRUE(group_val == committed[t] ||
                        group_val == committed[t] + 1)
                << "trial " << trial << " event " << target
                << ": thread " << t << " expected " << committed[t]
                << " or +1, got " << group_val;
        }
        EXPECT_EQ(db->rowCount("ACCT"),
                  static_cast<std::size_t>(kThreads * kKeysPerThread));

        // The recovered database accepts new concurrent work.
        db->executeSql(
            "INSERT INTO ACCT (ID, VAL) VALUES (9999, 1)");
        EXPECT_EQ(db->executeSql("SELECT * FROM ACCT WHERE ID = 9999")
                      .rows.size(),
                  1u);
    }
    setWarningsEnabled(true);
}

} // namespace mt

TEST(DbCrashTest, MtTransactionSweepConservativeEager)
{
    mt::mtSweep(CrashMode::kDiscardUnflushed, 0);
}

TEST(DbCrashTest, MtTransactionSweepConservativeGroupCommit)
{
    mt::mtSweep(CrashMode::kDiscardUnflushed, 2000);
}

TEST(DbCrashTest, MtTransactionSweepWithCacheEvictionEager)
{
    mt::mtSweep(CrashMode::kEvictRandomLines, 0);
}

TEST(DbCrashTest, MtTransactionSweepWithCacheEvictionGroupCommit)
{
    mt::mtSweep(CrashMode::kEvictRandomLines, 2000);
}

// ---------------------------------------------------------------------
// Cross-shard 2PC crash sweep: every transaction writes one group of
// keys spanning all three members, so its commit runs the full
// prepare → decision-publish → finish protocol across the member
// WALs and the coordinator's decision log. A power failure at a
// randomized persistence event — including between a member's
// prepare and the decision record, and between the decision and the
// last member's finish — must recover to all members committed or
// all rolled back, never a mix.
// ---------------------------------------------------------------------

namespace twopc {

constexpr int kShards = 3;
constexpr int kKeysPerShard = 5;
constexpr int kRounds = 12;

DbRecord
kvRow(std::int64_t id, std::int64_t v)
{
    DbRecord rec;
    rec.values = {DbValue::ofI64(id), DbValue::ofI64(v)};
    return rec;
}

/** A deterministic key group that provably spans every member, so
 * each transaction's commit is a genuine multi-member 2PC. */
std::vector<std::int64_t>
pickKeys(ShardedDatabase &db)
{
    std::vector<std::size_t> taken(db.shardCount(), 0);
    std::vector<std::int64_t> keys;
    for (std::int64_t pk = 0; pk < 4096; ++pk) {
        unsigned s = db.shardIndexForPk(pk);
        if (taken[s] < kKeysPerShard) {
            ++taken[s];
            keys.push_back(pk);
        }
    }
    EXPECT_EQ(keys.size(),
              static_cast<std::size_t>(kShards * kKeysPerShard));
    return keys;
}

std::unique_ptr<ShardedDatabase>
makeSdb(std::uint64_t window_us,
        const std::vector<std::int64_t> &keys)
{
    ShardedDatabaseConfig cfg;
    cfg.shards = kShards;
    cfg.shard.rowRegionSize = 2u << 20;
    cfg.shard.rowsPerTable = 256;
    cfg.shard.walShards = 4;
    cfg.shard.groupCommitWindowUs = window_us;
    auto db = std::make_unique<ShardedDatabase>(cfg);
    db->createTable(TableSchema{"KV",
                                {{"ID", DbType::kI64},
                                 {"V", DbType::kI64}},
                                0,
                                TableSchema::kNoIndex});
    for (std::int64_t pk : keys)
        db->persistRecord("KV", kvRow(pk, 0));
    return db;
}

/** One shared injector across every member device and the
 * coordinator: the event count covers the whole 2PC protocol. */
void
installInjector(ShardedDatabase &db, CrashInjector *inj)
{
    for (unsigned s = 0; s < db.shardCount(); ++s)
        db.shard(s).device().setInjector(inj);
    db.coordinatorDevice().setInjector(inj);
}

/** Runs the rounds; returns the last acknowledged commit. */
int
runRounds(ShardedDatabase &db, const std::vector<std::int64_t> &keys)
{
    int acked = 0;
    try {
        for (int i = 1; i <= kRounds; ++i) {
            db.begin();
            for (std::int64_t pk : keys) {
                DbRecord rec = kvRow(pk, i);
                rec.dirtyMask = 1ull << 1;
                db.persistRecord("KV", rec);
            }
            db.commit();
            acked = i;
        }
    } catch (const SimulatedCrash &) {
        // Power is gone mid-protocol.
    }
    return acked;
}

void
twopcSweep(CrashMode mode, std::uint64_t window_us)
{
    setWarningsEnabled(false);
    // Dry run: count the workload's persistence events so crash
    // points can be drawn from the real range.
    CrashInjector probe;
    std::uint64_t total_events;
    std::vector<std::int64_t> keys;
    {
        auto db = makeSdb(window_us, {});
        keys = pickKeys(*db);
        for (std::int64_t pk : keys)
            db->persistRecord("KV", kvRow(pk, 0));
        // The key group must actually span every member, or the
        // bracket degenerates to a single-shard commit.
        for (unsigned s = 0; s < db->shardCount(); ++s)
            ASSERT_GT(db->shard(s).rowCount("KV"), 0u) << s;
        installInjector(*db, &probe);
        probe.resetCount();
        ASSERT_EQ(runRounds(*db, keys), kRounds);
        installInjector(*db, nullptr);
        total_events = probe.eventCount();
    }
    ASSERT_GT(total_events, 100u);

    Rng rng(0x2BC57ull + static_cast<int>(mode) * 31 + window_us);
    for (int trial = 0; trial < 10; ++trial) {
        auto db = makeSdb(window_us, keys);
        CrashInjector inj;
        installInjector(*db, &inj);
        std::uint64_t target = 1 + rng.nextBelow(total_events);
        inj.arm(target);
        int acked = runRounds(*db, keys);
        inj.disarm();
        installInjector(*db, nullptr);
        if (inj.eventCount() < target)
            continue; // target fell beyond this run

        db->crash(mode, 4000 + trial * 131 + target);

        // All-or-nothing across members: every key carries one
        // round's value, and it is the acknowledged round or one
        // more (decision durable but unacknowledged).
        std::int64_t group_val = -1;
        for (std::int64_t pk : keys) {
            DbRecord out;
            ASSERT_TRUE(db->fetchRecord("KV", pk, &out))
                << "trial " << trial << " event " << target
                << ": lost key " << pk;
            std::int64_t v = out.values[1].i;
            if (pk == keys.front())
                group_val = v;
            EXPECT_EQ(v, group_val)
                << "trial " << trial << " event " << target
                << ": torn cross-shard txn at key " << pk;
        }
        EXPECT_TRUE(group_val == acked || group_val == acked + 1)
            << "trial " << trial << " event " << target
            << ": expected " << acked << " or +1, got " << group_val;
        EXPECT_EQ(db->rowCount("KV"), keys.size());

        // The recovered fabric accepts new cross-shard brackets.
        db->begin();
        for (std::int64_t pk : keys)
            db->persistRecord("KV", kvRow(pk, 99));
        db->commit();
        DbRecord out;
        ASSERT_TRUE(db->fetchRecord("KV", keys.front(), &out));
        EXPECT_EQ(out.values[1].i, 99);
    }
    setWarningsEnabled(true);
}

} // namespace twopc

// ---------------------------------------------------------------------
// Elastic membership: crash mid-repartition, resume, audit
// ---------------------------------------------------------------------

namespace elastic {

constexpr std::int64_t kKeys = 24;

std::unique_ptr<ShardedDatabase>
makeElastic(unsigned shards)
{
    ShardedDatabaseConfig cfg;
    cfg.shards = shards;
    cfg.shard.rowRegionSize = 2u << 20;
    cfg.shard.rowsPerTable = 256;
    cfg.shard.walShards = 4;
    cfg.shard.groupCommitWindowUs = 0;
    auto db = std::make_unique<ShardedDatabase>(cfg);
    db->createTable(TableSchema{"KV",
                                {{"ID", DbType::kI64},
                                 {"V", DbType::kI64}},
                                0,
                                TableSchema::kNoIndex});
    for (std::int64_t pk = 0; pk < kKeys; ++pk)
        db->persistRecord("KV", twopc::kvRow(pk, pk * 7));
    return db;
}

void
installInjector(ShardedDatabase &db, CrashInjector *inj)
{
    for (unsigned s = 0; s < db.shardCount(); ++s)
        db.shard(s).device().setInjector(inj);
    db.coordinatorDevice().setInjector(inj);
}

/**
 * Crash a membership change at a random persistence event — the
 * per-row cross-shard moves are ordinary 2PC brackets, so the sweep
 * covers prepare/decide/apply of the move protocol plus the routing
 * fences around it — then resume and audit: the change completes,
 * every row exists exactly once with its original value, and new
 * cross-shard brackets commit. (Members joining mid-grow are created
 * inside the change, so their devices cannot pre-arm; the shrink
 * direction covers the destination side with pre-armed survivors.)
 */
void
elasticSweep(CrashMode mode, bool grow_dir, std::uint64_t seed,
             int trials)
{
    setWarningsEnabled(false);
    const unsigned from = grow_dir ? 2 : 4;
    const unsigned target = grow_dir ? 4 : 2;

    // Dry run: how many persistence events does the change emit?
    CrashInjector probe;
    std::uint64_t total_events;
    {
        auto db = makeElastic(from);
        installInjector(*db, &probe);
        probe.resetCount();
        if (grow_dir)
            db->grow(target - from);
        else
            db->shrink(from - target);
        installInjector(*db, nullptr);
        total_events = probe.eventCount();
    }
    ASSERT_GT(total_events, 0u) << "change emitted no events";

    Rng rng(seed);
    for (int trial = 0; trial < trials; ++trial) {
        auto db = makeElastic(from);
        CrashInjector inj;
        installInjector(*db, &inj);
        std::uint64_t event = 1 + rng.nextBelow(total_events);
        inj.arm(event);
        bool crashed = false;
        try {
            if (grow_dir)
                db->grow(target - from);
            else
                db->shrink(from - target);
        } catch (const SimulatedCrash &) {
            crashed = true;
        }
        inj.disarm();
        installInjector(*db, nullptr);
        if (!crashed)
            continue; // event fell beyond this run's stream

        db->crash(mode, 5000 + trial * 97 + event);
        db->resumeMembershipChange();

        EXPECT_FALSE(db->migrating())
            << "trial " << trial << " event " << event;
        EXPECT_EQ(db->shardCount(), target)
            << "trial " << trial << " event " << event;
        EXPECT_EQ(db->rowCount("KV"),
                  static_cast<std::size_t>(kKeys))
            << "trial " << trial << " event " << event
            << ": lost or duplicated rows";
        for (std::int64_t pk = 0; pk < kKeys; ++pk) {
            DbRecord out;
            ASSERT_TRUE(db->fetchRecord("KV", pk, &out))
                << "trial " << trial << " event " << event
                << ": lost pk " << pk;
            EXPECT_EQ(out.values[1].i, pk * 7)
                << "trial " << trial << " event " << event;
        }

        // The resumed membership accepts new cross-shard brackets.
        db->begin();
        for (std::int64_t pk = 0; pk < kKeys; ++pk)
            db->persistRecord("KV", twopc::kvRow(pk, 99));
        db->commit();
        DbRecord out;
        ASSERT_TRUE(db->fetchRecord("KV", 0, &out));
        EXPECT_EQ(out.values[1].i, 99);
        if (testing::Test::HasFatalFailure()) {
            setWarningsEnabled(true);
            return;
        }
    }
    setWarningsEnabled(true);
}

} // namespace elastic

TEST(DbCrashTest, ElasticGrowSweepConservative)
{
    elastic::elasticSweep(CrashMode::kDiscardUnflushed, true, 0xE1A5ull,
                          10);
}

TEST(DbCrashTest, ElasticGrowSweepWithCacheEviction)
{
    elastic::elasticSweep(CrashMode::kEvictRandomLines, true,
                          0xE1A7ull, 10);
}

TEST(DbCrashTest, ElasticShrinkSweepConservative)
{
    elastic::elasticSweep(CrashMode::kDiscardUnflushed, false,
                          0xE1A9ull, 10);
}

TEST(DbCrashTest, ElasticShrinkSweepWithCacheEviction)
{
    elastic::elasticSweep(CrashMode::kEvictRandomLines, false,
                          0xE1ABull, 10);
}

TEST(DbCrashTest, TwoPhaseCommitSweepConservativeEager)
{
    twopc::twopcSweep(CrashMode::kDiscardUnflushed, 0);
}

TEST(DbCrashTest, TwoPhaseCommitSweepConservativeGroupCommit)
{
    twopc::twopcSweep(CrashMode::kDiscardUnflushed, 2000);
}

TEST(DbCrashTest, TwoPhaseCommitSweepWithCacheEvictionEager)
{
    twopc::twopcSweep(CrashMode::kEvictRandomLines, 0);
}

TEST(DbCrashTest, TwoPhaseCommitSweepWithCacheEvictionGroupCommit)
{
    twopc::twopcSweep(CrashMode::kEvictRandomLines, 2000);
}

TEST(DbCrashTest, DdlSweep)
{
    // Crash during CREATE TABLE: the table is either fully visible
    // (with its row region) or absent after reopen.
    for (std::uint64_t event = 1;; ++event) {
        auto db = makeDb();
        CrashInjector inj;
        db->device().setInjector(&inj);
        inj.arm(event);
        bool crashed = false;
        try {
            db->executeSql(
                "CREATE TABLE T (ID BIGINT PRIMARY KEY, V VARCHAR)");
        } catch (const SimulatedCrash &) {
            crashed = true;
        }
        inj.disarm();
        db->device().setInjector(nullptr);
        if (!crashed)
            break;
        db->crash();
        if (db->catalog().find("T")) {
            db->executeSql(
                "INSERT INTO T (ID, V) VALUES (1, 'ok')");
            EXPECT_EQ(db->rowCount("T"), 1u);
        } else {
            db->executeSql(
                "CREATE TABLE T (ID BIGINT PRIMARY KEY, V VARCHAR)");
            db->executeSql("INSERT INTO T (ID, V) VALUES (1, 'ok')");
        }
    }
}

} // namespace
} // namespace db
} // namespace espresso
