/**
 * @file
 * Database crash sweeps: a power failure at every persistence event
 * of a multi-statement transaction must leave the database atomic —
 * either the whole transaction or none of it — under both crash
 * modes. Also sweeps DDL (catalog publication).
 */

#include <gtest/gtest.h>

#include "db/database.hh"
#include "nvm/crash_injector.hh"

namespace espresso {
namespace db {
namespace {

std::unique_ptr<Database>
makeDb()
{
    DatabaseConfig cfg;
    cfg.rowRegionSize = 4u << 20;
    cfg.rowsPerTable = 256;
    return std::make_unique<Database>(cfg);
}

void
transferWorkload(Database &db)
{
    db.begin();
    db.executeSql("UPDATE ACCT SET BAL = 70 WHERE ID = 1");
    db.executeSql("UPDATE ACCT SET BAL = 130 WHERE ID = 2");
    db.executeSql(
        "INSERT INTO ACCT (ID, BAL) VALUES (3, 0)"); // audit row
    db.commit();
}

void
sweep(CrashMode mode)
{
    for (std::uint64_t event = 1;; ++event) {
        auto db = makeDb();
        db->executeSql(
            "CREATE TABLE ACCT (ID BIGINT PRIMARY KEY, BAL BIGINT)");
        db->executeSql("INSERT INTO ACCT (ID, BAL) VALUES (1, 100)");
        db->executeSql("INSERT INTO ACCT (ID, BAL) VALUES (2, 100)");

        CrashInjector inj;
        db->device().setInjector(&inj);
        inj.arm(event);
        bool crashed = false;
        try {
            transferWorkload(*db);
        } catch (const SimulatedCrash &) {
            crashed = true;
        }
        inj.disarm();
        db->device().setInjector(nullptr);
        if (!crashed)
            break;

        db->crash(mode, 77 + event);

        ResultSet a = db->executeSql("SELECT BAL FROM ACCT WHERE ID = 1");
        ResultSet b = db->executeSql("SELECT BAL FROM ACCT WHERE ID = 2");
        ASSERT_EQ(a.rows.size(), 1u);
        ASSERT_EQ(b.rows.size(), 1u);
        std::int64_t a_bal = a.rows[0][0].i;
        std::int64_t b_bal = b.rows[0][0].i;
        std::size_t rows = db->rowCount("ACCT");
        bool before = a_bal == 100 && b_bal == 100 && rows == 2;
        bool after = a_bal == 70 && b_bal == 130 && rows == 3;
        EXPECT_TRUE(before || after)
            << "event " << event << ": a=" << a_bal << " b=" << b_bal
            << " rows=" << rows;
        EXPECT_EQ(a_bal + b_bal, 200) << "event " << event;

        // The recovered database stays fully usable.
        db->executeSql("INSERT INTO ACCT (ID, BAL) VALUES (9, 1)");
        EXPECT_EQ(db->executeSql("SELECT * FROM ACCT WHERE ID = 9")
                      .rows.size(),
                  1u);
    }
}

TEST(DbCrashTest, TransactionSweepConservative)
{
    sweep(CrashMode::kDiscardUnflushed);
}

TEST(DbCrashTest, TransactionSweepWithCacheEviction)
{
    sweep(CrashMode::kEvictRandomLines);
}

TEST(DbCrashTest, DdlSweep)
{
    // Crash during CREATE TABLE: the table is either fully visible
    // (with its row region) or absent after reopen.
    for (std::uint64_t event = 1;; ++event) {
        auto db = makeDb();
        CrashInjector inj;
        db->device().setInjector(&inj);
        inj.arm(event);
        bool crashed = false;
        try {
            db->executeSql(
                "CREATE TABLE T (ID BIGINT PRIMARY KEY, V VARCHAR)");
        } catch (const SimulatedCrash &) {
            crashed = true;
        }
        inj.disarm();
        db->device().setInjector(nullptr);
        if (!crashed)
            break;
        db->crash();
        if (db->catalog().find("T")) {
            db->executeSql(
                "INSERT INTO T (ID, V) VALUES (1, 'ok')");
            EXPECT_EQ(db->rowCount("T"), 1u);
        } else {
            db->executeSql(
                "CREATE TABLE T (ID BIGINT PRIMARY KEY, V VARCHAR)");
            db->executeSql("INSERT INTO T (ID, V) VALUES (1, 'ok')");
        }
    }
}

} // namespace
} // namespace db
} // namespace espresso
