/**
 * @file
 * HeapFabric unit suite: consistent-hash routing (determinism,
 * balance, minimal remap on growth), the 1-shard-fabric equivalence
 * of the classic Table-1 API, fabric-routed pnew and roots,
 * cross-shard roots registered through the home shard's name table
 * (and surviving that shard's compaction), shard-scoped GC
 * quiescence (a remote shard's collect() never blocks allocation),
 * the fabric GC coordinator, ring-manifest recovery from a crash
 * mid-create, crash-atomic cross-shard setRoot republication (the
 * DecisionLog intent sweep), and the HeapManager registry under concurrent
 * create/load (the former unsynchronized-std::map race).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/espresso.hh"
#include "nvm/crash_injector.hh"

namespace espresso {
namespace {

KlassDef
nodeDef()
{
    return KlassDef{"Node",
                    "",
                    {{"value", FieldType::kI64}, {"next", FieldType::kRef}},
                    false};
}

/** A route key the ring sends to shard @p want. */
std::string
keyForShard(const HeapFabric *fabric, unsigned want, const char *tag)
{
    for (int i = 0; i < 100000; ++i) {
        std::string key = std::string(tag) + std::to_string(i);
        if (fabric->shardIndexFor(key) == want)
            return key;
    }
    ADD_FAILURE() << "no key routes to shard " << want;
    return "";
}

TEST(ShardRouterTest, DeterministicAndBalanced)
{
    ShardRouter router(8, 64);
    std::vector<std::size_t> hits(8, 0);
    for (int i = 0; i < 10000; ++i) {
        std::string key = "user." + std::to_string(i);
        unsigned s = router.shardForName(key);
        ASSERT_LT(s, 8u);
        EXPECT_EQ(s, router.shardForName(key)); // deterministic
        ++hits[s];
    }
    for (unsigned s = 0; s < 8; ++s) {
        // Perfect balance is 1250; vnode placement keeps every shard
        // within a loose band (no starved or doubly-loaded member).
        EXPECT_GT(hits[s], 400u) << "shard " << s << " starved";
        EXPECT_LT(hits[s], 2600u) << "shard " << s << " overloaded";
    }

    ShardRouter again(8, 64);
    for (int i = 0; i < 256; ++i) {
        std::string key = "k" + std::to_string(i);
        EXPECT_EQ(router.shardForName(key), again.shardForName(key));
        EXPECT_EQ(router.shardForKey(i), again.shardForKey(i));
    }
}

TEST(ShardRouterTest, GrowthRemapsOnlyAFraction)
{
    ShardRouter four(4, 64);
    ShardRouter five(5, 64);
    int moved = 0;
    const int kKeys = 10000;
    for (int i = 0; i < kKeys; ++i) {
        std::string key = "k" + std::to_string(i);
        unsigned a = four.shardForName(key);
        unsigned b = five.shardForName(key);
        if (a != b) {
            ++moved;
            // Consistent hashing: a key only ever moves *to* the new
            // member, never between surviving ones.
            EXPECT_EQ(b, 4u) << key;
        }
    }
    // Ideal is 1/5 of the keys; allow generous vnode noise but stay
    // far below the ~4/5 a mod-N rehash would move.
    EXPECT_GT(moved, kKeys / 20);
    EXPECT_LT(moved, kKeys * 2 / 5);
}

TEST(HeapFabricTest, SingleHeapApiIsAOneShardFabric)
{
    EspressoRuntime rt;
    rt.define(nodeDef());
    std::uint32_t off = rt.fieldOffset("Node", "value");

    PjhHeap *heap = rt.heaps().createHeap("solo", 2u << 20);
    HeapFabric *fabric = rt.heaps().fabric("solo");
    ASSERT_NE(fabric, nullptr);
    EXPECT_EQ(fabric->shardCount(), 1u);
    EXPECT_EQ(fabric->shard(0), heap);
    EXPECT_EQ(rt.heaps().heap("solo"), heap);
    EXPECT_EQ(rt.heaps().deviceOf("solo"), fabric->shardDevice(0));

    Oop node = rt.pnewInstance(heap, "Node");
    node.setI64(off, 41);
    heap->flushObject(node);
    heap->setRoot("r", node);

    rt.heaps().crashHeap("solo");
    EXPECT_EQ(rt.heaps().heap("solo"), nullptr);
    heap = rt.heaps().loadHeap("solo");
    EXPECT_EQ(heap->getRoot("r").getI64(off), 41);

    // Every route key lands on the only shard.
    EXPECT_EQ(fabric->shardFor("anything"), heap);
    EXPECT_EQ(fabric->shardForKey(12345), heap);
}

TEST(HeapFabricTest, RoutedPnewLandsOnTheRingShard)
{
    EspressoRuntime rt;
    rt.define(nodeDef());
    std::uint32_t off = rt.fieldOffset("Node", "value");

    PjhConfig cfg;
    cfg.dataSize = 2u << 20;
    HeapFabric *fabric = rt.heaps().createFabric("fab", cfg, 4);
    ASSERT_EQ(fabric->shardCount(), 4u);
    EXPECT_GE(fabric->epoch(), 1u);

    std::set<unsigned> used;
    for (int i = 0; i < 64; ++i) {
        std::string key = "acct." + std::to_string(i);
        unsigned idx = fabric->shardIndexFor(key);
        used.insert(idx);
        Oop node = rt.pnewInstance(fabric, key, "Node");
        node.setI64(off, i);
        PjhHeap *home = fabric->shardFor(key);
        EXPECT_TRUE(home->containsData(node.addr()));
        EXPECT_EQ(fabric->homeOf(node), home);
        home->flushObject(node);
        fabric->setRoot(key, node);
    }
    // 64 keys over 4 shards: the ring must actually spread them.
    EXPECT_EQ(used.size(), 4u);

    for (int i = 0; i < 64; ++i) {
        std::string key = "acct." + std::to_string(i);
        Oop got = fabric->getRoot(key);
        ASSERT_FALSE(got.isNull()) << key;
        EXPECT_EQ(got.getI64(off), i) << key;
        EXPECT_TRUE(fabric->hasRoot(key));
    }
    EXPECT_FALSE(fabric->hasRoot("never-set"));
}

TEST(HeapFabricTest, CrossShardRootIsRegisteredOnTheHomeShard)
{
    EspressoRuntime rt;
    rt.define(nodeDef());
    std::uint32_t off = rt.fieldOffset("Node", "value");

    PjhConfig cfg;
    cfg.dataSize = 2u << 20;
    HeapFabric *fabric = rt.heaps().createFabric("xfab", cfg, 4);

    // Allocate on shard 2, publish under a name the ring routes to a
    // different shard.
    std::string home_key = keyForShard(fabric, 2, "home.");
    Oop node = rt.pnewInstance(fabric, home_key, "Node");
    node.setI64(off, 777);
    fabric->shard(2)->flushObject(node);

    std::string remote_name = keyForShard(fabric, 0, "remote.");
    fabric->setRoot(remote_name, node);

    // The entry lives in the home shard's name table (its GC must
    // pin and forward it), not on the ring shard.
    EXPECT_TRUE(fabric->shard(2)->hasRoot(remote_name));
    EXPECT_TRUE(fabric->shard(0)->getRoot(remote_name).isNull());
    EXPECT_EQ(fabric->getRoot(remote_name).getI64(off), 777);

    // Pile garbage in front of the object and compact the home
    // shard: the root entry must follow the moved object.
    for (int i = 0; i < 50; ++i)
        rt.pnewInstance(fabric, home_key, "Node");
    fabric->collectShard(2);
    Oop moved = fabric->getRoot(remote_name);
    ASSERT_FALSE(moved.isNull());
    EXPECT_EQ(moved.getI64(off), 777);

    // Republication to an object on another shard nulls the stale
    // home entry so the old binding can never resurface.
    std::string other_key = keyForShard(fabric, 1, "other.");
    Oop other = rt.pnewInstance(fabric, other_key, "Node");
    other.setI64(off, 888);
    fabric->shard(1)->flushObject(other);
    fabric->setRoot(remote_name, other);
    EXPECT_EQ(fabric->getRoot(remote_name).getI64(off), 888);
    EXPECT_TRUE(fabric->shard(2)->getRoot(remote_name).isNull());
}

TEST(HeapFabricTest, RemoteShardCollectDoesNotBlockAllocation)
{
    EspressoRuntime rt;
    rt.define(nodeDef());
    std::uint32_t off = rt.fieldOffset("Node", "value");

    PjhConfig cfg;
    cfg.dataSize = 2u << 20;
    HeapFabric *fabric = rt.heaps().createFabric("gcfab", cfg, 2);

    // Populate shard 0 (fast), then slow its device down so its
    // collection holds gcInProgress for a long, observable window.
    std::string k0 = keyForShard(fabric, 0, "s0.");
    std::string k1 = keyForShard(fabric, 1, "s1.");
    Oop live = rt.pnewInstance(fabric, k0, "Node");
    live.setI64(off, 4242);
    fabric->shard(0)->flushObject(live);
    fabric->setRoot(k0, live);
    for (int i = 0; i < 200; ++i) {
        Oop keep = rt.pnewInstance(fabric, k0, "Node");
        keep.setI64(off, i);
        fabric->shard(0)->flushObject(keep);
        fabric->shard(0)->setRoot("keep" + std::to_string(i), keep);
    }
    NvmConfig &dev_cfg = fabric->shardDevice(0)->config();
    dev_cfg.fenceLatencyNs = 200000; // 200 us per fence
    dev_cfg.fenceWaitYields = true;  // free the (possibly single) core

    std::atomic<bool> done{false};
    std::thread collector([&]() {
        fabric->collectShard(0);
        done.store(true, std::memory_order_release);
    });

    // Wait until shard 0's collection provably owns that shard, then
    // allocate on shard 1 — per-shard quiescence means these must
    // complete while the remote collect still runs.
    while (!fabric->shard(0)->collecting() &&
           !done.load(std::memory_order_acquire)) {
        std::this_thread::yield();
    }
    bool observed_during_gc = false;
    for (int i = 0; i < 100; ++i) {
        Oop node = rt.pnewInstance(fabric, k1, "Node");
        node.setI64(off, 9000 + i);
        fabric->shard(1)->flushObject(node);
        if (!done.load(std::memory_order_acquire))
            observed_during_gc = true;
    }
    EXPECT_TRUE(observed_during_gc)
        << "shard-1 allocations never overlapped shard-0's collect";
    collector.join();
    dev_cfg.fenceLatencyNs = 0;

    // Both shards intact afterwards.
    EXPECT_EQ(fabric->getRoot(k0).getI64(off), 4242);
    Oop fresh = rt.pnewInstance(fabric, k1, "Node");
    fresh.setI64(off, 1);
    fabric->shard(1)->flushObject(fresh);
}

TEST(HeapFabricTest, RootOpsProceedDuringConcurrentMark)
{
    // PR 5 left one contract weaker: root ops on names homed on a
    // collecting shard blocked for the whole collection. Concurrent
    // marking retires it — while the shard is *marking*, root ops
    // proceed under the SATB barrier and block only at the brief
    // snapshot and remark+compact safepoints.
    EspressoRuntime rt;
    rt.define(nodeDef());
    std::uint32_t off = rt.fieldOffset("Node", "value");

    PjhConfig cfg;
    cfg.dataSize = 8u << 20;
    HeapFabric *fabric = rt.heaps().createFabric("concfab", cfg, 2);
    fabric->setGcConcurrent(true);
    PjhHeap *h0 = fabric->shard(0);
    ASSERT_TRUE(h0->gcConcurrent());

    // Keys homed on shard 0 for the root ops issued mid-mark.
    std::vector<std::string> keys;
    for (int i = 0; keys.size() < 48; ++i) {
        std::string key = "lv" + std::to_string(i);
        if (fabric->shardIndexFor(key) == 0)
            keys.push_back(key);
    }

    // A large reachable population widens the marking window: one
    // long chain, rooted every 16 nodes (the name table is small).
    std::uint32_t next_off = rt.fieldOffset("Node", "next");
    std::string k0 = keyForShard(fabric, 0, "c0.");
    Oop prev;
    for (int i = 0; i < 12000; ++i) {
        Oop n = rt.pnewInstance(fabric, k0, "Node");
        n.setI64(off, i);
        n.setRef(next_off, prev);
        h0->flushObject(n);
        if (i % 16 == 0)
            h0->setRoot("keep" + std::to_string(i), n);
        prev = n;
    }

    std::atomic<bool> done{false};
    std::thread collector([&]() {
        fabric->collectShard(0);
        done.store(true, std::memory_order_release);
    });

    while (!h0->markingConcurrently() &&
           !done.load(std::memory_order_acquire))
        std::this_thread::yield();

    // Full root ops against the collecting shard: allocate, publish,
    // read back. Under the retired contract every one of these would
    // block until the collection finished.
    int during_mark = 0;
    std::size_t issued = 0;
    for (const std::string &key : keys) {
        if (done.load(std::memory_order_acquire))
            break;
        bool before = h0->markingConcurrently();
        {
            PjhHeap::MutatorSection ms(*h0);
            Oop n = rt.pnewInstance(fabric, key, "Node");
            n.setI64(off, 100000 + static_cast<std::int64_t>(issued));
            h0->flushObject(n);
            fabric->setRoot(key, n);
        }
        Oop back = fabric->getRoot(key);
        ASSERT_FALSE(back.isNull()) << key;
        EXPECT_EQ(back.getI64(off),
                  100000 + static_cast<std::int64_t>(issued))
            << key;
        // Phase moves kMarking -> kPaused monotonically within the
        // cycle: marking on both sides brackets the whole op.
        if (before && h0->markingConcurrently())
            ++during_mark;
        ++issued;
    }
    collector.join();
    EXPECT_GT(during_mark, 0)
        << "no root op overlapped the marking phase — the retired "
           "blocking contract crept back";

    // Everything published mid-cycle survived it, the pre-built roots
    // are intact, and the cycle was genuinely concurrent.
    for (std::size_t i = 0; i < issued; ++i) {
        EXPECT_EQ(fabric->getRoot(keys[i]).getI64(off),
                  100000 + static_cast<std::int64_t>(i))
            << keys[i];
    }
    EXPECT_EQ(h0->getRoot("keep0").getI64(off), 0);
    EXPECT_EQ(h0->getRoot("keep11984").getI64(off), 11984);
    EXPECT_EQ(h0->meta().gcMarkEpoch, 1u);
    EXPECT_GT(h0->stats().lastGcConcMarkNs, 0u);
}

TEST(HeapFabricTest, CollectAllRunsEveryMemberIndependently)
{
    EspressoRuntime rt;
    rt.define(nodeDef());
    std::uint32_t off = rt.fieldOffset("Node", "value");

    PjhConfig cfg;
    cfg.dataSize = 2u << 20;
    HeapFabric *fabric = rt.heaps().createFabric("allfab", cfg, 4);

    std::vector<std::string> keys;
    for (unsigned s = 0; s < 4; ++s) {
        std::string key =
            keyForShard(fabric, s, ("s" + std::to_string(s) + ".").c_str());
        keys.push_back(key);
        Oop live = rt.pnewInstance(fabric, key, "Node");
        live.setI64(off, 100 + static_cast<int>(s));
        fabric->shard(s)->flushObject(live);
        fabric->setRoot(key, live);
        for (int i = 0; i < 32; ++i)
            rt.pnewInstance(fabric, key, "Node"); // garbage
    }

    std::vector<std::size_t> used_before;
    for (unsigned s = 0; s < 4; ++s)
        used_before.push_back(fabric->shard(s)->dataUsed());

    fabric->collectAll();

    for (unsigned s = 0; s < 4; ++s) {
        EXPECT_EQ(fabric->shard(s)->meta().gcCollections, 1u)
            << "shard " << s;
        EXPECT_LT(fabric->shard(s)->dataUsed(), used_before[s])
            << "shard " << s << " reclaimed nothing";
        EXPECT_EQ(fabric->getRoot(keys[s]).getI64(off),
                  100 + static_cast<int>(s));
    }
}

TEST(HeapFabricTest, ManifestRecoversFromACrashMidCreate)
{
    EspressoRuntime rt;
    rt.define(nodeDef());
    std::uint32_t off = rt.fieldOffset("Node", "value");

    // Fire between the second shard's format and the manifest
    // commit: the declare costs 1 flush + 1 fence, each
    // markFormatted 1 flush + 1 fence, so event 6 lands after
    // member 1's format flag.
    CrashInjector injector;
    HeapFabric fabric(&rt.registry(), nullptr);
    fabric.setManifestInjector(&injector);
    injector.arm(6);
    PjhConfig cfg;
    cfg.dataSize = 1u << 20;
    FabricConfig fcfg;
    fcfg.shard = cfg;
    fcfg.shards = 4;
    bool crashed = false;
    try {
        fabric.create(fcfg);
    } catch (const SimulatedCrash &) {
        crashed = true;
    }
    ASSERT_TRUE(crashed);
    injector.disarm();

    fabric.crashAll();
    ASSERT_TRUE(fabric.manifestDeclared());
    fabric.recover();
    EXPECT_EQ(fabric.shardCount(), 4u);
    EXPECT_EQ(fabric.manifestDeclared(), true);
    for (unsigned s = 0; s < 4; ++s) {
        ASSERT_NE(fabric.shard(s), nullptr);
        std::string key =
            keyForShard(&fabric, s, ("k" + std::to_string(s) + ".").c_str());
        Oop node = fabric.shard(s)->allocInstance(
            rt.registry().resolve("Node", MemKind::kPersistent));
        node.setI64(off, 5);
        fabric.shard(s)->flushObject(node);
        fabric.setRoot(key, node);
        EXPECT_EQ(fabric.getRoot(key).getI64(off), 5);
    }
}

TEST(HeapFabricTest, SurvivorsServeRootsWhileAMemberIsDown)
{
    EspressoRuntime rt;
    rt.define(nodeDef());
    std::uint32_t off = rt.fieldOffset("Node", "value");

    PjhConfig cfg;
    cfg.dataSize = 1u << 20;
    HeapFabric *fabric = rt.heaps().createFabric("downfab", cfg, 4);

    fabric->crashShard(2);
    ASSERT_EQ(fabric->shard(2), nullptr);

    // Publishing an object living on a healthy shard must work even
    // when the *name* ring-routes to the crashed member (failures
    // stay shard-local; the home shard owns the entry anyway).
    std::string victim_name = keyForShard(fabric, 2, "victimname.");
    std::string home_key = keyForShard(fabric, 1, "homekey.");
    Oop node = rt.pnewInstance(fabric, home_key, "Node");
    node.setI64(off, 55);
    fabric->shard(1)->flushObject(node);
    fabric->setRoot(victim_name, node);
    EXPECT_EQ(fabric->getRoot(victim_name).getI64(off), 55);

    fabric->reattachShard(2);
    ASSERT_NE(fabric->shard(2), nullptr);
    EXPECT_EQ(fabric->getRoot(victim_name).getI64(off), 55);
}

TEST(HeapFabricTest, LoadFabricReattachesCrashedMembers)
{
    EspressoRuntime rt;
    rt.define(nodeDef());
    std::uint32_t off = rt.fieldOffset("Node", "value");

    PjhConfig cfg;
    cfg.dataSize = 1u << 20;
    HeapFabric *fabric = rt.heaps().createFabric("reload", cfg, 2);
    std::string key = keyForShard(fabric, 1, "rk.");
    Oop node = rt.pnewInstance(fabric, key, "Node");
    node.setI64(off, 321);
    fabric->shard(1)->flushObject(node);
    fabric->setRoot(key, node);

    // A member-level crash must be repaired by the load path, never
    // handed back as a null shard.
    fabric->crashShard(1);
    ASSERT_EQ(fabric->shard(1), nullptr);
    HeapFabric *loaded = rt.heaps().loadFabric("reload");
    ASSERT_EQ(loaded, fabric);
    ASSERT_NE(fabric->shard(1), nullptr);
    EXPECT_EQ(fabric->getRoot(key).getI64(off), 321);

    // Same through the single-heap surface on a 1-shard fabric.
    rt.heaps().createHeap("solo2", 1u << 20);
    rt.heaps().fabric("solo2")->crashShard(0);
    EXPECT_NE(rt.heaps().loadHeap("solo2"), nullptr);
}

// PR 6: cross-shard root republication is crash-atomic. Moving a
// root from a shard-0 object to a shard-1 object is a multi-device
// protocol (publish on the new home, sweep the stale entry on the
// old). A power failure at every persistence event of that protocol
// must recover — via the DecisionLog intent on the manifest device —
// to exactly the old or the new binding, never a null or mixed view.
TEST(HeapFabricTest, SetRootRepublicationCrashSweep)
{
    for (std::uint64_t event = 1;; ++event) {
        EspressoRuntime rt;
        rt.define(nodeDef());
        std::uint32_t off = rt.fieldOffset("Node", "value");

        HeapFabric fabric(&rt.registry(), nullptr);
        PjhConfig cfg;
        cfg.dataSize = 1u << 20;
        FabricConfig fcfg;
        fcfg.shard = cfg;
        fcfg.shards = 2;
        fabric.create(fcfg);

        auto *k = rt.registry().resolve("Node", MemKind::kPersistent);
        Oop old_obj = fabric.shard(0)->allocInstance(k);
        old_obj.setI64(off, 111);
        fabric.shard(0)->flushObject(old_obj);
        fabric.setRoot("mover", old_obj); // clean first publication

        Oop new_obj = fabric.shard(1)->allocInstance(k);
        new_obj.setI64(off, 222);
        fabric.shard(1)->flushObject(new_obj);

        CrashInjector inj;
        fabric.shardDevice(0)->setInjector(&inj);
        fabric.shardDevice(1)->setInjector(&inj);
        fabric.manifestDevice()->setInjector(&inj);
        inj.arm(event);
        bool crashed = false;
        try {
            fabric.setRoot("mover", new_obj);
        } catch (const SimulatedCrash &) {
            crashed = true;
        }
        inj.disarm();
        fabric.shardDevice(0)->setInjector(nullptr);
        fabric.shardDevice(1)->setInjector(nullptr);
        fabric.manifestDevice()->setInjector(nullptr);
        if (!crashed) {
            // Past the protocol's last event: the republication
            // completed; done sweeping.
            EXPECT_EQ(fabric.getRoot("mover").getI64(off), 222);
            break;
        }

        fabric.crashAll(CrashMode::kDiscardUnflushed, 900 + event);
        fabric.recover();

        Oop r = fabric.getRoot("mover");
        ASSERT_FALSE(r.isNull())
            << "event " << event << ": root lost mid-republication";
        std::int64_t v = r.getI64(off);
        EXPECT_TRUE(v == 111 || v == 222)
            << "event " << event << ": torn republication, value " << v;

        // The recovered fabric still republishes cleanly.
        Oop again = fabric.shard(1)->allocInstance(k);
        again.setI64(off, 333);
        fabric.shard(1)->flushObject(again);
        fabric.setRoot("mover", again);
        EXPECT_EQ(fabric.getRoot("mover").getI64(off), 333);
    }
}

TEST(ShardRouterTest, ShrinkRemapsMinimally)
{
    // Satellite: member removal must strand only the removed
    // member's keys; everything else keeps its old mapping, so an
    // old-epoch lookup of an unmoved key equals the new-epoch one.
    ShardRouter five(5, 64);
    ShardRouter four(4, 64);
    int moved = 0;
    const int kKeys = 10000;
    for (int i = 0; i < kKeys; ++i) {
        std::string key = "k" + std::to_string(i);
        std::uint64_t h = ShardRouter::hashName(key);
        unsigned a = five.shardForName(key);
        unsigned b = four.shardForName(key);
        EXPECT_EQ(five.remapped(four, h), a != b) << key;
        if (a != b) {
            ++moved;
            // Only keys that lived on the removed member move, and
            // they land on a surviving member.
            EXPECT_EQ(a, 4u) << key;
            EXPECT_LT(b, 4u) << key;
        } else {
            // Old/new-epoch lookup equivalence for unmoved keys.
            EXPECT_EQ(five.shardForHash(h), four.shardForHash(h))
                << key;
        }
    }
    // Ideal is 1/5 of the keys; a mod-N rehash would move ~4/5.
    EXPECT_GT(moved, kKeys / 20);
    EXPECT_LT(moved, kKeys * 2 / 5);
}

/** Count the members binding @p name as a non-null kRoot. */
unsigned
rootBindings(HeapFabric &fabric, const std::string &name)
{
    unsigned n = 0;
    for (unsigned s = 0; s < RingManifestData::kMaxShards; ++s) {
        PjhHeap *h = fabric.shard(s);
        if (!h)
            continue;
        NameEntry *e = h->names().find(name, NameKind::kRoot);
        if (e && NameTable::readValue(e) != 0)
            ++n;
    }
    return n;
}

/** True when any member still holds a live forwarding entry. */
bool
hasLiveForward(HeapFabric &fabric, const std::string &name)
{
    for (unsigned s = 0; s < RingManifestData::kMaxShards; ++s) {
        PjhHeap *h = fabric.shard(s);
        if (!h)
            continue;
        NameEntry *e = h->names().find(name, NameKind::kForward);
        if (e && NameTable::readValue(e) != 0)
            return true;
    }
    return false;
}

TEST(HeapFabricTest, GrowMigratesRemappedRootsToTheirNewHome)
{
    EspressoRuntime rt;
    rt.define(nodeDef());
    std::uint32_t off = rt.fieldOffset("Node", "value");
    PjhConfig cfg;
    cfg.dataSize = 2u << 20;
    HeapFabric *fabric = rt.heaps().createFabric("grow", cfg, 2);
    std::uint64_t epoch0 = fabric->epoch();

    constexpr int kRoots = 48;
    for (int i = 0; i < kRoots; ++i) {
        std::string key = "g" + std::to_string(i);
        Oop node = rt.pnewInstance(fabric, key, "Node");
        node.setI64(off, 5000 + i);
        fabric->shardFor(key)->flushObject(node);
        fabric->setRoot(key, node);
    }

    ShardRouter old_ring(2, ShardRouter::kDefaultVnodes);
    ShardRouter new_ring(4, ShardRouter::kDefaultVnodes);
    fabric->grow(2);

    EXPECT_EQ(fabric->shardCount(), 4u);
    EXPECT_FALSE(fabric->migrating());
    EXPECT_GT(fabric->epoch(), epoch0);
    int moved = 0;
    for (int i = 0; i < kRoots; ++i) {
        std::string key = "g" + std::to_string(i);
        Oop r = fabric->getRoot(key);
        ASSERT_FALSE(r.isNull()) << key;
        EXPECT_EQ(r.getI64(off), 5000 + i) << key;
        // Exactly one binding fabric-wide, on the new ring's shard,
        // with every forwarding entry retired.
        EXPECT_EQ(rootBindings(*fabric, key), 1u) << key;
        EXPECT_FALSE(hasLiveForward(*fabric, key)) << key;
        unsigned home = new_ring.shardForName(key);
        NameEntry *e =
            fabric->shard(home)->names().find(key, NameKind::kRoot);
        ASSERT_NE(e, nullptr) << key;
        EXPECT_NE(NameTable::readValue(e), 0u) << key;
        if (old_ring.shardForName(key) != home)
            ++moved;
    }
    ASSERT_GT(moved, 0) << "ring produced no remapped roots";

    // The grown fabric routes new work across all four members.
    for (unsigned s = 0; s < 4; ++s) {
        std::string key = keyForShard(fabric, s, "post");
        Oop node = rt.pnewInstance(fabric, key, "Node");
        node.setI64(off, 777);
        fabric->shardFor(key)->flushObject(node);
        fabric->setRoot(key, node);
        EXPECT_EQ(fabric->getRoot(key).getI64(off), 777) << key;
    }
}

TEST(HeapFabricTest, GrowDeepCopiesTheRootClosure)
{
    EspressoRuntime rt;
    rt.define(nodeDef());
    std::uint32_t value_off = rt.fieldOffset("Node", "value");
    std::uint32_t next_off = rt.fieldOffset("Node", "next");
    PjhConfig cfg;
    cfg.dataSize = 2u << 20;
    HeapFabric *fabric = rt.heaps().createFabric("closure", cfg, 2);

    // Linked lists rooted under ring-routed names: migration must
    // move the whole closure, not just the head.
    constexpr int kLists = 16, kLen = 10;
    for (int l = 0; l < kLists; ++l) {
        std::string key = "list" + std::to_string(l);
        unsigned home = fabric->shardIndexFor(key);
        Oop head;
        for (int i = 0; i < kLen; ++i) {
            Oop n = rt.pnewInstance(fabric, key, "Node");
            n.setI64(value_off, l * 100 + i);
            n.setRef(next_off, head);
            fabric->shard(home)->flushObject(n);
            head = n;
        }
        fabric->setRoot(key, head);
    }

    ShardRouter old_ring(2, ShardRouter::kDefaultVnodes);
    ShardRouter new_ring(4, ShardRouter::kDefaultVnodes);
    fabric->grow(2);

    int moved = 0;
    for (int l = 0; l < kLists; ++l) {
        std::string key = "list" + std::to_string(l);
        unsigned home = new_ring.shardForName(key);
        bool remapped = old_ring.shardForName(key) != home;
        moved += remapped ? 1 : 0;
        Oop cur = fabric->getRoot(key);
        PjhHeap *dst = fabric->shard(home);
        for (int i = kLen - 1; i >= 0; --i) {
            ASSERT_FALSE(cur.isNull()) << key << " node " << i;
            EXPECT_EQ(cur.getI64(value_off), l * 100 + i)
                << key << " node " << i;
            // A migrated closure lives wholly on the new home.
            EXPECT_TRUE(dst->containsData(cur.addr()))
                << key << " node " << i
                << (remapped ? " dangles into the old member"
                             : " left its home");
            cur = Oop(cur.getRef(next_off));
        }
        EXPECT_TRUE(cur.isNull()) << key;
    }
    ASSERT_GT(moved, 0) << "ring produced no remapped lists";
}

TEST(HeapFabricTest, ShrinkEvacuatesRemovedMembers)
{
    EspressoRuntime rt;
    rt.define(nodeDef());
    std::uint32_t off = rt.fieldOffset("Node", "value");
    PjhConfig cfg;
    cfg.dataSize = 2u << 20;
    HeapFabric *fabric = rt.heaps().createFabric("shrink", cfg, 4);

    constexpr int kRoots = 48;
    for (int i = 0; i < kRoots; ++i) {
        std::string key = "s" + std::to_string(i);
        Oop node = rt.pnewInstance(fabric, key, "Node");
        node.setI64(off, 9000 + i);
        fabric->shardFor(key)->flushObject(node);
        fabric->setRoot(key, node);
    }

    fabric->shrink(2);

    EXPECT_EQ(fabric->shardCount(), 2u);
    EXPECT_FALSE(fabric->migrating());
    EXPECT_EQ(fabric->shard(2), nullptr);
    EXPECT_EQ(fabric->shard(3), nullptr);
    ShardRouter new_ring(2, ShardRouter::kDefaultVnodes);
    for (int i = 0; i < kRoots; ++i) {
        std::string key = "s" + std::to_string(i);
        Oop r = fabric->getRoot(key);
        ASSERT_FALSE(r.isNull()) << key;
        EXPECT_EQ(r.getI64(off), 9000 + i) << key;
        EXPECT_EQ(rootBindings(*fabric, key), 1u) << key;
        unsigned home = new_ring.shardForName(key);
        EXPECT_TRUE(fabric->shard(home)->containsData(r.addr()))
            << key;
    }
}

TEST(HeapFabricTest, GrownMembershipSurvivesCrashAndRecover)
{
    // Regression: recover() must roll the membership forward from
    // the durable manifest, not re-commit the creation-time count.
    EspressoRuntime rt;
    rt.define(nodeDef());
    std::uint32_t off = rt.fieldOffset("Node", "value");

    HeapFabric fabric(&rt.registry(), nullptr);
    PjhConfig cfg;
    cfg.dataSize = 1u << 20;
    FabricConfig fcfg;
    fcfg.shard = cfg;
    fcfg.shards = 2;
    fabric.create(fcfg);
    auto *k = rt.registry().resolve("Node", MemKind::kPersistent);
    for (int i = 0; i < 24; ++i) {
        std::string key = "p" + std::to_string(i);
        unsigned home = fabric.shardIndexFor(key);
        Oop node = fabric.shard(home)->allocInstance(k);
        node.setI64(off, 40 + i);
        fabric.shard(home)->flushObject(node);
        fabric.setRoot(key, node);
    }
    fabric.grow(2);
    std::uint64_t epoch_after_grow = fabric.epoch();

    fabric.crashAll(CrashMode::kDiscardUnflushed, 4242);
    fabric.recover();

    EXPECT_EQ(fabric.shardCount(), 4u);
    EXPECT_EQ(fabric.epoch(), epoch_after_grow);
    EXPECT_FALSE(fabric.migrating());
    for (int i = 0; i < 24; ++i) {
        std::string key = "p" + std::to_string(i);
        Oop r = fabric.getRoot(key);
        ASSERT_FALSE(r.isNull()) << key;
        EXPECT_EQ(r.getI64(off), 40 + i) << key;
        EXPECT_EQ(rootBindings(fabric, key), 1u) << key;
    }
}

TEST(HeapFabricTest, GrowUnderConcurrentTraffic)
{
    EspressoRuntime rt;
    rt.define(nodeDef());
    std::uint32_t off = rt.fieldOffset("Node", "value");
    PjhConfig cfg;
    cfg.dataSize = 4u << 20;
    HeapFabric *fabric = rt.heaps().createFabric("online", cfg, 2);

    constexpr int kThreads = 4;
    constexpr int kOps = 120;
    std::atomic<bool> go{false};
    std::atomic<int> published{0};
    std::vector<std::thread> workers;
    for (int w = 0; w < kThreads; ++w) {
        workers.emplace_back([&, w]() {
            while (!go.load(std::memory_order_acquire)) {
            }
            for (int i = 0; i < kOps; ++i) {
                std::string key =
                    "w" + std::to_string(w) + "." + std::to_string(i);
                Oop node = rt.pnewInstance(fabric, key, "Node");
                node.setI64(off, w * 1000 + i);
                // homeOf: the write ring may flip mid-change, but
                // the object stays where pnew landed it.
                fabric->homeOf(node)->flushObject(node);
                fabric->setRoot(key, node);
                published.fetch_add(1, std::memory_order_relaxed);
                // Read back a previously published key (possibly
                // mid-move: the forward chain must hide the hop).
                std::string probe =
                    "w" + std::to_string(w) + "." +
                    std::to_string(i / 2);
                Oop r = fabric->getRoot(probe);
                ASSERT_FALSE(r.isNull()) << probe;
                ASSERT_EQ(r.getI64(off), w * 1000 + i / 2) << probe;
            }
        });
    }
    go.store(true, std::memory_order_release);
    // Grow while the workers hammer; the membership change streams
    // roots concurrently with allocation and publication.
    while (published.load(std::memory_order_acquire) <
           kThreads * kOps / 4)
        std::this_thread::yield();
    fabric->grow(2);
    for (auto &t : workers)
        t.join();

    EXPECT_EQ(fabric->shardCount(), 4u);
    EXPECT_FALSE(fabric->migrating());
    for (int w = 0; w < kThreads; ++w) {
        for (int i = 0; i < kOps; ++i) {
            std::string key =
                "w" + std::to_string(w) + "." + std::to_string(i);
            Oop r = fabric->getRoot(key);
            ASSERT_FALSE(r.isNull()) << key;
            EXPECT_EQ(r.getI64(off), w * 1000 + i) << key;
            EXPECT_EQ(rootBindings(*fabric, key), 1u) << key;
        }
    }
}

TEST(HeapFabricTest, BalancerGrowsOnOccupancyHighWater)
{
    EspressoRuntime rt;
    rt.define(nodeDef());
    std::uint32_t off = rt.fieldOffset("Node", "value");
    PjhConfig cfg;
    cfg.dataSize = 2u << 20;
    HeapFabric *fabric = rt.heaps().createFabric("bal", cfg, 2);

    // Cold fabric: nothing to balance.
    EXPECT_FALSE(fabric->balance(0.99));
    EXPECT_EQ(fabric->shardCount(), 2u);

    for (int i = 0; i < 256; ++i) {
        std::string key = "b" + std::to_string(i);
        Oop node = rt.pnewInstance(fabric, key, "Node");
        node.setI64(off, i);
        fabric->shardFor(key)->flushObject(node);
        if (i % 4 == 0)
            fabric->setRoot(key, node);
    }
    std::vector<HeapFabric::Occupancy> occ = fabric->occupancy();
    ASSERT_EQ(occ.size(), 2u);
    for (const auto &o : occ)
        EXPECT_GT(o.used, 0u) << "member " << o.shard;

    // Any occupancy beats a zero high-water mark: the balancer adds
    // members through the same epoch-versioned migration machinery.
    EXPECT_TRUE(fabric->balance(0.0, 2));
    EXPECT_EQ(fabric->shardCount(), 4u);
    for (int i = 0; i < 256; i += 4) {
        std::string key = "b" + std::to_string(i);
        Oop r = fabric->getRoot(key);
        ASSERT_FALSE(r.isNull()) << key;
        EXPECT_EQ(r.getI64(off), i) << key;
    }
}

TEST(HeapManagerTest, RegistrySurvivesConcurrentCreateAndLoad)
{
    EspressoRuntime rt;
    rt.define(nodeDef());
    rt.heaps().createHeap("shared", 1u << 20);

    constexpr int kThreads = 8;
    std::atomic<int> failures{0};
    std::vector<std::thread> workers;
    for (int w = 0; w < kThreads; ++w) {
        workers.emplace_back([&, w]() {
            std::string mine = "own" + std::to_string(w);
            PjhHeap *h =
                rt.heaps().createHeap(mine, 1u << 20);
            if (!h)
                failures.fetch_add(1);
            for (int i = 0; i < 200; ++i) {
                if (!rt.heaps().existsHeap("shared") ||
                    rt.heaps().heap("shared") == nullptr ||
                    rt.heaps().loadHeap("shared") == nullptr ||
                    rt.heaps().fabric(mine) == nullptr ||
                    rt.heaps().deviceOf(mine) == nullptr) {
                    failures.fetch_add(1);
                    return;
                }
            }
        });
    }
    for (auto &t : workers)
        t.join();
    EXPECT_EQ(failures.load(), 0);
    for (int w = 0; w < kThreads; ++w)
        EXPECT_NE(rt.heaps().heap("own" + std::to_string(w)), nullptr);
}

} // namespace
} // namespace espresso
