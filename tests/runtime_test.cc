/**
 * @file
 * Unit tests for the object model: Klass layout, registry and alias
 * Klasses (including the Fig. 10 ClassCastException scenario), oop
 * header bits and accessors, handles.
 */

#include <gtest/gtest.h>

#include "core/espresso.hh"
#include "runtime/klass_registry.hh"
#include "runtime/oop.hh"
#include "util/logging.hh"

namespace espresso {
namespace {

KlassDef
personDef()
{
    return KlassDef{
        "Person", "",
        {{"id", FieldType::kI64}, {"name", FieldType::kRef}},
        false};
}

TEST(KlassTest, LayoutAndOffsets)
{
    KlassRegistry reg;
    Klass *p = reg.define(personDef());
    EXPECT_EQ(p->name(), "Person");
    EXPECT_EQ(p->fieldOffset("id"), ObjectLayout::kHeaderSize);
    EXPECT_EQ(p->fieldOffset("name"), ObjectLayout::kHeaderSize + 8);
    EXPECT_EQ(p->instanceSize(), ObjectLayout::kHeaderSize + 16);
    ASSERT_EQ(p->refOffsets().size(), 1u);
    EXPECT_EQ(p->refOffsets()[0], ObjectLayout::kHeaderSize + 8);
    EXPECT_THROW(p->fieldOffset("missing"), PanicError);
}

TEST(KlassTest, InheritanceFlattensFields)
{
    KlassRegistry reg;
    reg.define(personDef());
    Klass *e = reg.define(
        {"Employee", "Person", {{"salary", FieldType::kI64}}, false});
    EXPECT_EQ(e->fields().size(), 3u);
    EXPECT_EQ(e->fieldOffset("id"), ObjectLayout::kHeaderSize);
    EXPECT_EQ(e->fieldOffset("salary"), ObjectLayout::kHeaderSize + 16);
    EXPECT_TRUE(e->isSubtypeOf(reg.find("Person")));
    EXPECT_FALSE(reg.find("Person")->isSubtypeOf(e));
}

TEST(KlassTest, RedefinitionChecksShape)
{
    KlassRegistry reg;
    reg.define(personDef());
    EXPECT_EQ(reg.define(personDef()), reg.find("Person"));
    KlassDef other = personDef();
    other.fields.emplace_back("extra", FieldType::kI32);
    EXPECT_THROW(reg.define(other), FatalError);
}

TEST(KlassTest, ArrayKlasses)
{
    KlassRegistry reg;
    Klass *longs = reg.arrayOf(FieldType::kI64);
    EXPECT_TRUE(longs->isArray());
    EXPECT_EQ(longs->name(), "[J");
    Klass *p = reg.define(personDef());
    Klass *people = reg.arrayOfRefs(p);
    EXPECT_EQ(people->name(), "[LPerson;");
    EXPECT_EQ(people->elemKlass(), p);
    // Same-name array klasses are canonicalized.
    EXPECT_EQ(reg.arrayOfRefs(p), people);
}

TEST(AliasKlassTest, ResolveCreatesAliasesSharingLogicalId)
{
    KlassRegistry reg;
    reg.define(personDef());
    Klass *kv = reg.resolve("Person", MemKind::kVolatile);
    Klass *kp = reg.resolve("Person", MemKind::kPersistent);
    EXPECT_NE(kv, kp);
    EXPECT_EQ(kv->logicalId(), kp->logicalId());
    EXPECT_TRUE(kv->sameLogical(kp));
    EXPECT_EQ(reg.physicalFor(kv, MemKind::kPersistent), kp);
    EXPECT_EQ(reg.physicalFor(kp, MemKind::kVolatile), kv);
}

TEST(AliasKlassTest, Figure10ScenarioThrowsOnlyInStrictMode)
{
    // Person a = new Person(); Person b = pnew Person();
    // (Person) a  --> ClassCastException in the stock JVM.
    EspressoRuntime rt;
    rt.define(personDef());
    PjhHeap *h = rt.heaps().createHeap("fig10", 1u << 20);

    Oop a = rt.newInstance("Person");
    Oop b = rt.pnewInstance(h, "Person");
    ASSERT_FALSE(a.isNull());
    ASSERT_FALSE(b.isNull());

    // Alias-aware checks (Espresso): both casts succeed.
    EXPECT_NO_THROW(rt.checkCast(a, "Person"));
    EXPECT_NO_THROW(rt.checkCast(b, "Person"));

    // Stock behaviour: the constant-pool slot now holds the
    // persistent Klass (pnew resolved last), so casting the volatile
    // object throws.
    rt.registry().setStrictPhysicalTypeCheck(true);
    EXPECT_THROW(rt.checkCast(a, "Person"), ClassCastException);
    EXPECT_NO_THROW(rt.checkCast(b, "Person"));
}

TEST(AliasKlassTest, InstanceOfIsAliasAware)
{
    EspressoRuntime rt;
    rt.define(personDef());
    rt.define({"Employee", "Person", {{"salary", FieldType::kI64}}, false});
    PjhHeap *h = rt.heaps().createHeap("inst", 1u << 20);
    Oop e = rt.pnewInstance(h, "Employee");
    EXPECT_TRUE(rt.registry().instanceOf(e.klass(), "Person"));
    EXPECT_TRUE(rt.registry().instanceOf(e.klass(), "Employee"));
    EXPECT_FALSE(rt.registry().instanceOf(e.klass(), "[J"));
}

TEST(OopTest, HeaderBits)
{
    alignas(8) Word buf[4] = {0, 0, 0, 0};
    Oop o(reinterpret_cast<Addr>(buf));
    o.setAge(5);
    EXPECT_EQ(o.age(), 5u);
    o.setGcTimestamp(0xBEEF);
    EXPECT_EQ(o.gcTimestamp(), 0xBEEF);
    EXPECT_EQ(o.age(), 5u); // independent bit fields
    o.setAge(6);
    EXPECT_EQ(o.gcTimestamp(), 0xBEEF);
    EXPECT_FALSE(o.isForwarded());
    o.forwardTo(0x1000);
    EXPECT_TRUE(o.isForwarded());
    EXPECT_EQ(o.forwardee(), 0x1000u);
}

TEST(OopTest, FieldAccessors)
{
    EspressoRuntime rt;
    rt.define(personDef());
    Oop p = rt.newInstance("Person");
    std::uint32_t id_off = rt.fieldOffset("Person", "id");
    std::uint32_t name_off = rt.fieldOffset("Person", "name");

    p.setI64(id_off, -1234567890123ll);
    EXPECT_EQ(p.getI64(id_off), -1234567890123ll);
    Oop s = rt.newString("mingyu");
    p.setRef(name_off, s);
    EXPECT_EQ(Oop(p.getRef(name_off)), s);
    EXPECT_EQ(EspressoRuntime::readString(Oop(p.getRef(name_off))),
              "mingyu");

    p.setF64(id_off, 2.5);
    EXPECT_DOUBLE_EQ(p.getF64(id_off), 2.5);
    p.setBool(id_off, true);
    EXPECT_TRUE(p.getBool(id_off));
}

TEST(OopTest, SizeForInstancesAndArrays)
{
    KlassRegistry reg;
    Klass *p = reg.define(personDef());
    EXPECT_EQ(Oop::sizeFor(p, 0), 32u);
    Klass *bytes = reg.arrayOf(FieldType::kI8);
    EXPECT_EQ(Oop::sizeFor(bytes, 3),
              alignUp(ObjectLayout::kArrayHeaderSize + 3, 8));
    Klass *longs = reg.arrayOf(FieldType::kI64);
    EXPECT_EQ(Oop::sizeFor(longs, 4),
              ObjectLayout::kArrayHeaderSize + 32);
}

TEST(HandlesTest, CreateReleaseRecycle)
{
    HandleRegistry reg;
    Handle a = reg.create(Oop(0x10));
    Handle b = reg.create(Oop(0x20));
    EXPECT_EQ(reg.liveCount(), 2u);
    EXPECT_EQ(a.get().addr(), 0x10u);
    a.set(Oop(0x30));
    EXPECT_EQ(a.get().addr(), 0x30u);
    reg.release(a);
    EXPECT_EQ(reg.liveCount(), 1u);
    Handle c = reg.create(Oop(0x40)); // recycles a's slot
    EXPECT_EQ(reg.liveCount(), 2u);
    EXPECT_EQ(c.get().addr(), 0x40u);
    std::size_t visited = 0;
    reg.forEachSlot([&](Addr) { ++visited; });
    EXPECT_EQ(visited, 2u);
    (void)b;
}

TEST(ValueTest, ElementSizesAndNames)
{
    EXPECT_EQ(elementSize(FieldType::kRef), 8u);
    EXPECT_EQ(elementSize(FieldType::kI32), 4u);
    EXPECT_EQ(elementSize(FieldType::kChar), 2u);
    EXPECT_EQ(elementSize(FieldType::kBool), 1u);
    EXPECT_STREQ(fieldTypeName(FieldType::kF64), "f64");
    EXPECT_EQ(fieldTypeCode(FieldType::kI64), 'J');
}

} // namespace
} // namespace espresso
