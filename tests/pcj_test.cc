/**
 * @file
 * PCJ baseline: pool lifecycle, reference counting (including
 * recursive reclamation and the cycle-leak caveat), transactions and
 * crash rollback, and all collection types.
 */

#include <gtest/gtest.h>

#include "pcj/pcj_collections.hh"
#include "pcj/pcj_transaction.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace espresso {
namespace pcj {
namespace {

class PcjTest : public ::testing::Test
{
  protected:
    PcjTest()
    {
        PcjConfig cfg;
        cfg.dataSize = 8u << 20;
        rt_ = std::make_unique<PcjRuntime>(cfg);
    }

    std::unique_ptr<PcjRuntime> rt_;
};

TEST_F(PcjTest, LongCreateGetSet)
{
    PersistentLong v = PersistentLong::create(rt_.get(), 42);
    EXPECT_EQ(v.longValue(), 42);
    v.set(-9);
    EXPECT_EQ(v.longValue(), -9);
    EXPECT_EQ(rt_->typeNameOf(v.ref()), "PersistentLong");
    EXPECT_EQ(rt_->refCountOf(v.ref()), 1u);
}

TEST_F(PcjTest, StringRoundTrip)
{
    PersistentString s =
        PersistentString::create(rt_.get(), "espresso brews NVM");
    EXPECT_EQ(s.toString(), "espresso brews NVM");
    PersistentString empty = PersistentString::create(rt_.get(), "");
    EXPECT_EQ(empty.toString(), "");
}

TEST_F(PcjTest, RefCountingReclaims)
{
    std::uint64_t live0 = rt_->liveObjects();
    PersistentLong v = PersistentLong::create(rt_.get(), 7);
    EXPECT_EQ(rt_->liveObjects(), live0 + 1);
    rt_->decRef(v.ref());
    EXPECT_EQ(rt_->liveObjects(), live0);
}

TEST_F(PcjTest, RecursiveFreeThroughTuple)
{
    std::uint64_t live0 = rt_->liveObjects();
    PersistentTuple t = PersistentTuple::create(rt_.get());
    PersistentLong a = PersistentLong::create(rt_.get(), 1);
    t.set(0, a.ref());
    rt_->decRef(a.ref()); // tuple now sole owner
    EXPECT_EQ(rt_->liveObjects(), live0 + 2);
    rt_->decRef(t.ref()); // frees tuple AND the boxed long
    EXPECT_EQ(rt_->liveObjects(), live0);
}

TEST_F(PcjTest, SetRefMaintainsCounts)
{
    PersistentTuple t = PersistentTuple::create(rt_.get());
    PersistentLong a = PersistentLong::create(rt_.get(), 1);
    PersistentLong b = PersistentLong::create(rt_.get(), 2);
    t.set(0, a.ref());
    EXPECT_EQ(rt_->refCountOf(a.ref()), 2u);
    t.set(0, b.ref()); // replaces: a drops to 1, b rises to 2
    EXPECT_EQ(rt_->refCountOf(a.ref()), 1u);
    EXPECT_EQ(rt_->refCountOf(b.ref()), 2u);
}

TEST_F(PcjTest, CyclesLeakUnderRefCounting)
{
    // The known limitation the paper cites ([40]): reference counting
    // cannot reclaim cycles.
    std::uint64_t live0 = rt_->liveObjects();
    PersistentTuple a = PersistentTuple::create(rt_.get());
    PersistentTuple b = PersistentTuple::create(rt_.get());
    a.set(0, b.ref());
    b.set(0, a.ref());
    rt_->decRef(a.ref());
    rt_->decRef(b.ref());
    // Both unreachable, both still "live": the leak.
    EXPECT_EQ(rt_->liveObjects(), live0 + 2);
}

TEST_F(PcjTest, FreedSpaceIsReused)
{
    PersistentLong v = PersistentLong::create(rt_.get(), 1);
    std::size_t used = rt_->dataUsed();
    PcjRef old_ref = v.ref();
    rt_->decRef(v.ref());
    PersistentLong w = PersistentLong::create(rt_.get(), 2);
    EXPECT_EQ(w.ref(), old_ref); // first-fit reuses the freed chunk
    EXPECT_EQ(rt_->dataUsed(), used);
}

TEST_F(PcjTest, RootsPinAndRelease)
{
    std::uint64_t live0 = rt_->liveObjects();
    PersistentLong v = PersistentLong::create(rt_.get(), 5);
    rt_->putRoot("answer", v.ref());
    EXPECT_EQ(rt_->getRoot("answer"), v.ref());
    rt_->decRef(v.ref()); // root still pins it
    EXPECT_EQ(rt_->liveObjects(), live0 + 1);
    rt_->putRoot("answer", kPcjNull); // unpin => freed
    EXPECT_EQ(rt_->liveObjects(), live0);
    EXPECT_EQ(rt_->getRoot("missing"), kPcjNull);
}

TEST_F(PcjTest, CommittedDataSurvivesCrash)
{
    PersistentLong v = PersistentLong::create(rt_.get(), 10);
    rt_->putRoot("v", v.ref());
    v.set(20);
    rt_->crash();
    PersistentLong v2 =
        PersistentLong::at(rt_.get(), rt_->getRoot("v"));
    EXPECT_EQ(v2.longValue(), 20);
}

TEST_F(PcjTest, OpenTransactionRollsBackOnCrash)
{
    PersistentLong v = PersistentLong::create(rt_.get(), 10);
    rt_->putRoot("v", v.ref());
    {
        PcjTransaction tx(*rt_);
        tx.logAndWrite(
            reinterpret_cast<Addr>(rt_->device().base()) + v.ref() +
                sizeof(PcjObjectHeader) + 64,
            999);
        // No commit: crash with the transaction open.
        rt_->crash();
        // The destructor must not touch the reset pool.
        tx.commit();
    }
    PersistentLong v2 =
        PersistentLong::at(rt_.get(), rt_->getRoot("v"));
    EXPECT_EQ(v2.longValue(), 10);
}

TEST_F(PcjTest, GenericArrayAndBounds)
{
    PersistentGenericArray arr =
        PersistentGenericArray::create(rt_.get(), 8);
    EXPECT_EQ(arr.length(), 8u);
    PersistentLong v = PersistentLong::create(rt_.get(), 3);
    arr.set(5, v.ref());
    EXPECT_EQ(arr.get(5), v.ref());
    EXPECT_EQ(arr.get(0), kPcjNull);
    EXPECT_THROW(arr.get(8), PanicError);
}

TEST_F(PcjTest, ArrayListGrowth)
{
    PersistentArrayList list =
        PersistentArrayList::create(rt_.get(), 2);
    for (int i = 0; i < 40; ++i)
        list.add(PersistentLong::create(rt_.get(), i).ref());
    ASSERT_EQ(list.size(), 40u);
    for (int i = 0; i < 40; ++i) {
        EXPECT_EQ(PersistentLong::at(rt_.get(), list.get(i)).longValue(),
                  i);
    }
}

TEST_F(PcjTest, HashmapMatchesModel)
{
    PersistentHashmap map = PersistentHashmap::create(rt_.get(), 16);
    std::map<std::int64_t, std::int64_t> model;
    Rng rng(31337);
    for (int op = 0; op < 1500; ++op) {
        std::int64_t key = static_cast<std::int64_t>(rng.nextBelow(80));
        switch (rng.nextBelow(3)) {
          case 0: {
            std::int64_t val = static_cast<std::int64_t>(op);
            map.put(key,
                    PersistentLong::create(rt_.get(), val).ref());
            model[key] = val;
            break;
          }
          case 1:
            EXPECT_EQ(map.remove(key), model.erase(key) > 0);
            break;
          default:
            if (model.count(key)) {
                EXPECT_EQ(PersistentLong::at(rt_.get(), map.get(key))
                              .longValue(),
                          model[key]);
            } else {
                EXPECT_EQ(map.get(key), kPcjNull);
            }
        }
        EXPECT_EQ(map.size(), model.size());
    }
}

TEST_F(PcjTest, TypeTableDeduplicates)
{
    PersistentLong a = PersistentLong::create(rt_.get(), 1);
    PersistentLong b = PersistentLong::create(rt_.get(), 2);
    // Same type entry offset for both objects.
    EXPECT_EQ(rt_->typeNameOf(a.ref()), rt_->typeNameOf(b.ref()));
}

TEST_F(PcjTest, PoolExhaustionIsFatal)
{
    PcjConfig tiny;
    tiny.dataSize = 64u << 10;
    PcjRuntime small(tiny);
    EXPECT_THROW(
        {
            std::vector<PcjRef> keep;
            for (int i = 0; i < 10000; ++i)
                keep.push_back(
                    PersistentLong::create(&small, i).ref());
        },
        FatalError);
}

} // namespace
} // namespace pcj
} // namespace espresso
