/**
 * @file
 * Unit tests for util: alignment, bitmaps, phase timer, RNG.
 */

#include <gtest/gtest.h>

#include "util/bitmap.hh"
#include "util/common.hh"
#include "util/env.hh"
#include "util/logging.hh"
#include "util/phase_timer.hh"
#include "util/rng.hh"

namespace espresso {
namespace {

TEST(AlignTest, RoundTrips)
{
    EXPECT_EQ(alignUp(0, 8), 0u);
    EXPECT_EQ(alignUp(1, 8), 8u);
    EXPECT_EQ(alignUp(8, 8), 8u);
    EXPECT_EQ(alignUp(9, 64), 64u);
    EXPECT_EQ(alignDown(63, 64), 0u);
    EXPECT_EQ(alignDown(64, 64), 64u);
    EXPECT_TRUE(isAligned(128, 64));
    EXPECT_FALSE(isAligned(65, 64));
}

TEST(BitmapTest, SetTestClear)
{
    OwnedBitmap bm(1000);
    EXPECT_FALSE(bm.test(0));
    bm.set(0);
    bm.set(63);
    bm.set(64);
    bm.set(999);
    EXPECT_TRUE(bm.test(0));
    EXPECT_TRUE(bm.test(63));
    EXPECT_TRUE(bm.test(64));
    EXPECT_TRUE(bm.test(999));
    EXPECT_FALSE(bm.test(1));
    bm.clear(63);
    EXPECT_FALSE(bm.test(63));
}

TEST(BitmapTest, SetRangeAndPopcount)
{
    OwnedBitmap bm(512);
    bm.setRange(10, 200);
    EXPECT_EQ(bm.popcount(0, 512), 190u);
    EXPECT_EQ(bm.popcount(10, 200), 190u);
    EXPECT_EQ(bm.popcount(0, 10), 0u);
    EXPECT_EQ(bm.popcount(200, 512), 0u);
    EXPECT_EQ(bm.popcount(50, 60), 10u);
}

TEST(BitmapTest, FindNextSet)
{
    OwnedBitmap bm(700);
    EXPECT_EQ(bm.findNextSet(0, 700), 700u);
    bm.set(5);
    bm.set(130);
    bm.set(699);
    EXPECT_EQ(bm.findNextSet(0, 700), 5u);
    EXPECT_EQ(bm.findNextSet(6, 700), 130u);
    EXPECT_EQ(bm.findNextSet(131, 700), 699u);
    EXPECT_EQ(bm.findNextSet(131, 699), 699u); // excluded => limit
    EXPECT_EQ(bm.findNextSet(700, 700), 700u);
}

TEST(BitmapTest, ClearAll)
{
    OwnedBitmap bm(256);
    bm.setRange(0, 256);
    EXPECT_EQ(bm.popcount(0, 256), 256u);
    bm.clearAll();
    EXPECT_EQ(bm.popcount(0, 256), 0u);
}

TEST(PhaseTimerTest, AccumulatesAndShares)
{
    PhaseTimer t;
    t.add("a", 300);
    t.add("b", 700);
    t.add("a", 100);
    EXPECT_EQ(t.total("a"), 400u);
    EXPECT_EQ(t.total("b"), 700u);
    EXPECT_EQ(t.total("missing"), 0u);
    EXPECT_EQ(t.grandTotal(), 1100u);
    EXPECT_NEAR(t.share("b"), 700.0 / 1100.0, 1e-12);
}

TEST(PhaseTimerTest, ScopeMeasuresSomething)
{
    PhaseTimer t;
    {
        PhaseScope scope(&t, "work");
        volatile int x = 0;
        for (int i = 0; i < 10000; ++i)
            x = x + i;
    }
    EXPECT_GT(t.total("work"), 0u);
    // Null timer must be harmless.
    PhaseScope free_scope(nullptr, "ignored");
}

TEST(RngTest, DeterministicAndBounded)
{
    Rng a(42), b(42), c(43);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(a.nextBelow(17), 17u);
        double d = a.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(LoggingTest, PanicAndFatalThrow)
{
    EXPECT_THROW(panic("boom"), PanicError);
    EXPECT_THROW(fatal("bad config"), FatalError);
    EXPECT_EQ(strCat("a", 1, "-", 2.5), "a1-2.5");
}

TEST(EnvTest, UnsignedKnobParsesStrictly)
{
    const char *kName = "ESPRESSO_ENV_TEST_KNOB";

    unsetenv(kName);
    EXPECT_EQ(envUnsigned(kName, 3), 3u);

    setenv(kName, "4", 1);
    EXPECT_EQ(envUnsigned(kName, 3), 4u);
    setenv(kName, "16", 1);
    EXPECT_EQ(envUnsigned(kName, 3), 16u);
    // Trailing whitespace alone is tolerated.
    setenv(kName, "7 ", 1);
    EXPECT_EQ(envUnsigned(kName, 3), 7u);

    // Trailing garbage is rejected, not truncated to its prefix: a
    // mistyped knob falls back instead of quietly resizing things.
    setenv(kName, "4x", 1);
    EXPECT_EQ(envUnsigned(kName, 3), 3u);
    setenv(kName, "16 shards", 1);
    EXPECT_EQ(envUnsigned(kName, 3), 3u);
    setenv(kName, "0x8", 1);
    EXPECT_EQ(envUnsigned(kName, 3), 3u);

    // Non-numeric and non-positive values fall back too.
    setenv(kName, "lots", 1);
    EXPECT_EQ(envUnsigned(kName, 3), 3u);
    setenv(kName, "", 1);
    EXPECT_EQ(envUnsigned(kName, 3), 3u);
    setenv(kName, "-2", 1);
    EXPECT_EQ(envUnsigned(kName, 3), 3u);
    setenv(kName, "0", 1);
    EXPECT_EQ(envUnsigned(kName, 3), 3u);

    unsetenv(kName);
}

} // namespace
} // namespace espresso
