/**
 * @file
 * Heap reloading (§3.3) and memory-safety levels (§3.4): clean
 * detach/load, in-place Klass reinitialization (including classes the
 * application never redefined), zeroing vs user-guaranteed safety,
 * and the remap/rebase path when the heap moves to a new address.
 */

#include <gtest/gtest.h>

#include "core/espresso.hh"
#include "util/logging.hh"

namespace espresso {
namespace {

KlassDef
personDef()
{
    return KlassDef{
        "Person", "",
        {{"id", FieldType::kI64}, {"name", FieldType::kRef}},
        false};
}

KlassDef
nodeDef()
{
    return KlassDef{
        "Node", "",
        {{"value", FieldType::kI64}, {"next", FieldType::kRef}},
        false};
}

class PjhReloadTest : public ::testing::Test
{
  protected:
    PjhReloadTest()
    {
        rt_ = std::make_unique<EspressoRuntime>();
        rt_->define(personDef());
        rt_->define(nodeDef());
        idOff_ = rt_->fieldOffset("Person", "id");
        nameOff_ = rt_->fieldOffset("Person", "name");
        valueOff_ = rt_->fieldOffset("Node", "value");
        nextOff_ = rt_->fieldOffset("Node", "next");
    }

    /** Build the canonical list heap: root -> n0 -> n1 -> ... */
    PjhHeap *
    buildListHeap(const std::string &name, int len)
    {
        PjhHeap *h = rt_->heaps().createHeap(name, 4u << 20);
        Oop head;
        for (int i = len - 1; i >= 0; --i) {
            Oop n = rt_->pnewInstance(h, "Node");
            n.setI64(valueOff_, i);
            n.setRef(nextOff_, head);
            h->flushObject(n);
            head = n;
        }
        h->setRoot("head", head);
        return h;
    }

    void
    verifyList(PjhHeap *h, int len)
    {
        Oop cur = h->getRoot("head");
        for (int i = 0; i < len; ++i) {
            ASSERT_FALSE(cur.isNull()) << "list truncated at " << i;
            EXPECT_EQ(cur.getI64(valueOff_), i);
            EXPECT_EQ(cur.klass()->name(), "Node");
            cur = Oop(cur.getRef(nextOff_));
        }
        EXPECT_TRUE(cur.isNull());
    }

    std::unique_ptr<EspressoRuntime> rt_;
    std::uint32_t idOff_ = 0, nameOff_ = 0, valueOff_ = 0, nextOff_ = 0;
};

TEST_F(PjhReloadTest, DetachThenLoadPreservesEverything)
{
    buildListHeap("list", 50);
    rt_->heaps().detachHeap("list");
    EXPECT_TRUE(rt_->heaps().existsHeap("list"));
    EXPECT_EQ(rt_->heaps().heap("list"), nullptr);

    PjhHeap *h = rt_->heaps().loadHeap("list");
    verifyList(h, 50);
    EXPECT_EQ(h->stats().rebases, 0u); // same mapping, no rebase
}

TEST_F(PjhReloadTest, LoadIntoAFreshRuntimeRebuildsKlassesFromImages)
{
    // Populate, detach, and migrate the device into a *new* runtime
    // that never defined Person/Node: class reinitialization must
    // reconstruct them from the Klass segment alone.
    buildListHeap("list", 10);
    {
        Oop p = rt_->pnewInstance(rt_->heaps().heap("list"), "Person");
        p.setI64(idOff_, 5);
        rt_->heaps().heap("list")->flushObject(p);
        rt_->heaps().heap("list")->setRoot("person", p);
    }
    rt_->heaps().detachHeap("list");
    NvmDevice *dev = rt_->heaps().deviceOf("list");

    EspressoRuntime fresh;
    ASSERT_EQ(fresh.registry().find("Node"), nullptr);
    auto heap = PjhHeap::attach(dev, &fresh.registry(),
                                SafetyLevel::kUserGuaranteed);
    ASSERT_NE(fresh.registry().find("Node"), nullptr);
    ASSERT_NE(fresh.registry().find("Person"), nullptr);
    EXPECT_EQ(fresh.registry().find("Person")->fieldOffset("id"), idOff_);

    Oop p = heap->getRoot("person");
    EXPECT_EQ(p.getI64(fresh.fieldOffset("Person", "id")), 5);
    Oop cur = heap->getRoot("head");
    EXPECT_EQ(cur.getI64(fresh.fieldOffset("Node", "value")), 0);
}

TEST_F(PjhReloadTest, MismatchedRedefinitionIsRejectedAtLoad)
{
    buildListHeap("list", 3);
    rt_->heaps().detachHeap("list");
    NvmDevice *dev = rt_->heaps().deviceOf("list");

    EspressoRuntime fresh;
    fresh.define(KlassDef{"Node", "", {{"value", FieldType::kI64}}, false});
    EXPECT_THROW(PjhHeap::attach(dev, &fresh.registry(),
                                 SafetyLevel::kUserGuaranteed),
                 FatalError);
}

TEST_F(PjhReloadTest, ZeroingSafetyNullifiesVolatilePointers)
{
    PjhHeap *h = buildListHeap("list", 5);
    // Hang a DRAM string off a persistent Person, plus a DRAM root.
    Oop p = rt_->pnewInstance(h, "Person");
    p.setI64(idOff_, 1);
    p.setRef(nameOff_, rt_->newString("dram"));
    h->flushObject(p);
    h->setRoot("person", p);

    rt_->heaps().detachHeap("list");
    PjhHeap *h2 = rt_->heaps().loadHeap("list", SafetyLevel::kZeroing);

    Oop p2 = h2->getRoot("person");
    ASSERT_FALSE(p2.isNull());
    EXPECT_EQ(p2.getI64(idOff_), 1);
    // The out-pointer became null instead of dangling.
    EXPECT_EQ(p2.getRef(nameOff_), kNullAddr);
    verifyList(h2, 5); // in-heap pointers untouched
}

TEST_F(PjhReloadTest, UserGuaranteedSafetyLeavesPointersAlone)
{
    PjhHeap *h = buildListHeap("list", 5);
    Oop p = rt_->pnewInstance(h, "Person");
    Oop dram = rt_->newString("dram");
    p.setRef(nameOff_, dram);
    h->flushObject(p);
    h->setRoot("person", p);
    Addr stale = dram.addr();

    rt_->heaps().detachHeap("list");
    PjhHeap *h2 =
        rt_->heaps().loadHeap("list", SafetyLevel::kUserGuaranteed);
    // The (dangling) pointer is preserved verbatim — user's problem.
    EXPECT_EQ(h2->getRoot("person").getRef(nameOff_), stale);
}

TEST_F(PjhReloadTest, MigrationForcesRebaseAndPreservesTheGraph)
{
    buildListHeap("list", 40);
    rt_->heaps().detachHeap("list");
    rt_->heaps().migrateHeap("list"); // new device => new addresses

    PjhHeap *h = rt_->heaps().loadHeap("list");
    EXPECT_EQ(h->stats().rebases, 1u);
    verifyList(h, 40);

    // The heap stays fully usable after a rebase.
    Oop extra = rt_->pnewInstance(h, "Node");
    extra.setI64(valueOff_, 999);
    h->flushObject(extra);
    h->setRoot("extra", extra);
    EXPECT_EQ(h->getRoot("extra").getI64(valueOff_), 999);
}

TEST_F(PjhReloadTest, MigrationPlusZeroingSafety)
{
    PjhHeap *h = buildListHeap("list", 8);
    Oop p = rt_->pnewInstance(h, "Person");
    p.setRef(nameOff_, rt_->newString("dram"));
    h->flushObject(p);
    h->setRoot("person", p);

    rt_->heaps().detachHeap("list");
    rt_->heaps().migrateHeap("list");
    PjhHeap *h2 = rt_->heaps().loadHeap("list", SafetyLevel::kZeroing);
    verifyList(h2, 8);
    EXPECT_EQ(h2->getRoot("person").getRef(nameOff_), kNullAddr);
}

TEST_F(PjhReloadTest, RepeatedDetachLoadCycles)
{
    buildListHeap("list", 20);
    for (int cycle = 0; cycle < 5; ++cycle) {
        rt_->heaps().detachHeap("list");
        PjhHeap *h = rt_->heaps().loadHeap("list");
        verifyList(h, 20);
        // Mutate durably each cycle.
        Oop head = h->getRoot("head");
        head.setI64(valueOff_, 0); // unchanged value, but exercise flush
        h->flushField(head, valueOff_);
    }
}

TEST_F(PjhReloadTest, LoadTimeIsDominatedByKlassCountNotObjects)
{
    // The Fig. 18 property, as a coarse assertion: loading a heap
    // with 8x the objects must not cost anywhere near 8x under
    // user-guaranteed safety. (Precise curves live in the bench.)
    PjhHeap *small = rt_->heaps().createHeap("small", 16u << 20);
    PjhHeap *large = rt_->heaps().createHeap("large", 16u << 20);
    for (int i = 0; i < 1000; ++i) {
        Oop n = rt_->pnewInstance(small, "Node");
        n.setI64(valueOff_, i);
    }
    for (int i = 0; i < 8000; ++i) {
        Oop n = rt_->pnewInstance(large, "Node");
        n.setI64(valueOff_, i);
    }
    rt_->heaps().detachHeap("small");
    rt_->heaps().detachHeap("large");

    PjhHeap *s2 = rt_->heaps().loadHeap("small");
    PjhHeap *l2 = rt_->heaps().loadHeap("large");
    // Both loads bind the same number of Klasses; allow generous
    // noise but reject anything resembling linear scaling.
    EXPECT_LT(l2->stats().lastLoadBindNs,
              s2->stats().lastLoadBindNs * 6 + 2000000);
}

} // namespace
} // namespace espresso
