/**
 * @file
 * Espresso persistent collections: functional behaviour, ACID abort
 * semantics, persistence across reloads, and GC interaction.
 */

#include <gtest/gtest.h>

#include "collections/parray_list.hh"
#include "collections/pbox.hh"
#include "collections/pgeneric_array.hh"
#include "collections/phashmap.hh"
#include "collections/ptuple.hh"
#include "core/espresso.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace espresso {
namespace {

class CollectionsTest : public ::testing::Test
{
  protected:
    CollectionsTest()
    {
        rt_ = std::make_unique<EspressoRuntime>();
        h_ = rt_->heaps().createHeap("col", 8u << 20);
    }

    /** Crash + reload, returning the re-attached heap. */
    PjhHeap *
    reloadAfterCrash()
    {
        rt_->heaps().crashHeap("col");
        return rt_->heaps().loadHeap("col");
    }

    std::unique_ptr<EspressoRuntime> rt_;
    PjhHeap *h_ = nullptr;
};

TEST_F(CollectionsTest, BoxCreateGetSet)
{
    PBox box = PBox::create(h_, 42);
    EXPECT_EQ(box.get(), 42);
    box.set(-7);
    EXPECT_EQ(box.get(), -7);
}

TEST_F(CollectionsTest, BoxSurvivesCrashAfterSet)
{
    PBox box = PBox::create(h_, 1);
    h_->setRoot("box", box.oop());
    box.set(99); // transactional => durable at commit
    PjhHeap *h2 = reloadAfterCrash();
    EXPECT_EQ(PBox::at(h2, h2->getRoot("box")).get(), 99);
}

TEST_F(CollectionsTest, TupleSetGetAndBounds)
{
    PTuple t = PTuple::create(h_);
    PBox a = PBox::create(h_, 1);
    PBox b = PBox::create(h_, 2);
    t.set(0, a.oop());
    t.set(2, b.oop());
    EXPECT_EQ(PBox::at(h_, t.get(0)).get(), 1);
    EXPECT_TRUE(t.get(1).isNull());
    EXPECT_EQ(PBox::at(h_, t.get(2)).get(), 2);
    EXPECT_THROW(t.get(3), PanicError);
    EXPECT_THROW(t.set(3, a.oop()), PanicError);
}

TEST_F(CollectionsTest, GenericArrayRoundTrip)
{
    PGenericArray arr = PGenericArray::create(h_, 16);
    EXPECT_EQ(arr.length(), 16u);
    for (int i = 0; i < 16; ++i)
        arr.set(i, PBox::create(h_, i * i).oop());
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(PBox::at(h_, arr.get(i)).get(), i * i);
    EXPECT_THROW(arr.get(16), PanicError);
}

TEST_F(CollectionsTest, ArrayListGrowsAndPersists)
{
    PArrayList list = PArrayList::create(h_, 2);
    h_->setRoot("list", list.oop());
    const int kN = 100;
    for (int i = 0; i < kN; ++i)
        list.add(PBox::create(h_, i).oop());
    EXPECT_EQ(list.size(), static_cast<std::uint64_t>(kN));
    EXPECT_GE(list.capacity(), static_cast<std::uint64_t>(kN));

    PjhHeap *h2 = reloadAfterCrash();
    PArrayList list2 = PArrayList::at(h2, h2->getRoot("list"));
    ASSERT_EQ(list2.size(), static_cast<std::uint64_t>(kN));
    for (int i = 0; i < kN; ++i)
        EXPECT_EQ(PBox::at(h2, list2.get(i)).get(), i);
}

TEST_F(CollectionsTest, ArrayListSetReplaces)
{
    PArrayList list = PArrayList::create(h_);
    list.add(PBox::create(h_, 1).oop());
    list.add(PBox::create(h_, 2).oop());
    list.set(1, PBox::create(h_, 22).oop());
    EXPECT_EQ(PBox::at(h_, list.get(1)).get(), 22);
    EXPECT_THROW(list.set(2, Oop()), PanicError);
}

TEST_F(CollectionsTest, HashmapPutGetRemove)
{
    PHashmap map = PHashmap::create(h_, 8);
    EXPECT_EQ(map.size(), 0u);
    EXPECT_TRUE(map.get(5).isNull());

    const int kN = 200; // force long chains over 8 buckets
    for (int i = 0; i < kN; ++i)
        map.put(i, PBox::create(h_, i * 10).oop());
    EXPECT_EQ(map.size(), static_cast<std::uint64_t>(kN));
    for (int i = 0; i < kN; ++i) {
        ASSERT_TRUE(map.contains(i)) << i;
        EXPECT_EQ(PBox::at(h_, map.get(i)).get(), i * 10);
    }

    // Replacement keeps size.
    map.put(7, PBox::create(h_, 777).oop());
    EXPECT_EQ(map.size(), static_cast<std::uint64_t>(kN));
    EXPECT_EQ(PBox::at(h_, map.get(7)).get(), 777);

    // Removal.
    EXPECT_TRUE(map.remove(7));
    EXPECT_FALSE(map.contains(7));
    EXPECT_FALSE(map.remove(7));
    EXPECT_EQ(map.size(), static_cast<std::uint64_t>(kN - 1));
}

TEST_F(CollectionsTest, HashmapPersistsAcrossCrash)
{
    PHashmap map = PHashmap::create(h_, 16);
    h_->setRoot("map", map.oop());
    for (int i = 0; i < 50; ++i)
        map.put(i, PBox::create(h_, i).oop());
    PjhHeap *h2 = reloadAfterCrash();
    PHashmap map2 = PHashmap::at(h2, h2->getRoot("map"));
    EXPECT_EQ(map2.size(), 50u);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(PBox::at(h2, map2.get(i)).get(), i);
}

TEST_F(CollectionsTest, AbortedTransactionRestoresState)
{
    PBox box = PBox::create(h_, 5);
    {
        PjhTransaction tx(h_);
        tx.write(box.oop().addr() + ObjectLayout::kHeaderSize, 500);
        EXPECT_EQ(box.get(), 500);
        tx.abort();
    }
    EXPECT_EQ(box.get(), 5);

    // Destructor aborts when not committed.
    {
        PjhTransaction tx(h_);
        tx.write(box.oop().addr() + ObjectLayout::kHeaderSize, 600);
    }
    EXPECT_EQ(box.get(), 5);
}

TEST_F(CollectionsTest, CollectionsSurviveGc)
{
    PArrayList list = PArrayList::create(h_, 4);
    h_->setRoot("list", list.oop());
    PHashmap map = PHashmap::create(h_, 8);
    h_->setRoot("map", map.oop());
    for (int i = 0; i < 30; ++i) {
        list.add(PBox::create(h_, i).oop());
        map.put(i, PBox::create(h_, -i).oop());
        PBox::create(h_, 12345); // garbage
    }
    h_->collect(&rt_->heap());

    PArrayList list2 = PArrayList::at(h_, h_->getRoot("list"));
    PHashmap map2 = PHashmap::at(h_, h_->getRoot("map"));
    ASSERT_EQ(list2.size(), 30u);
    ASSERT_EQ(map2.size(), 30u);
    for (int i = 0; i < 30; ++i) {
        EXPECT_EQ(PBox::at(h_, list2.get(i)).get(), i);
        EXPECT_EQ(PBox::at(h_, map2.get(i)).get(), -i);
    }
}

TEST_F(CollectionsTest, RandomizedHashmapAgainstStdMap)
{
    // Property test: PHashmap behaves like std::map under a random
    // op sequence (put/remove/get).
    PHashmap map = PHashmap::create(h_, 32);
    std::map<std::int64_t, std::int64_t> model;
    Rng rng(99);
    for (int op = 0; op < 3000; ++op) {
        std::int64_t key = static_cast<std::int64_t>(rng.nextBelow(150));
        switch (rng.nextBelow(3)) {
          case 0: {
            std::int64_t v = static_cast<std::int64_t>(rng.next() >> 8);
            map.put(key, PBox::create(h_, v).oop());
            model[key] = v;
            break;
          }
          case 1:
            EXPECT_EQ(map.remove(key), model.erase(key) > 0);
            break;
          default: {
            auto it = model.find(key);
            if (it == model.end()) {
                EXPECT_TRUE(map.get(key).isNull());
            } else {
                ASSERT_FALSE(map.get(key).isNull());
                EXPECT_EQ(PBox::at(h_, map.get(key)).get(), it->second);
            }
          }
        }
        EXPECT_EQ(map.size(), model.size());
    }
}

} // namespace
} // namespace espresso
