/**
 * @file
 * PJH basics: creation, pnew allocation, the name table and root
 * APIs (Table 1), flush APIs (§3.5), type-based safety (§3.4), heap
 * walking, and the undo log.
 */

#include <gtest/gtest.h>

#include "core/espresso.hh"
#include "util/logging.hh"
#include "pjh/klass_segment.hh"

namespace espresso {
namespace {

KlassDef
personDef()
{
    return KlassDef{
        "Person", "",
        {{"id", FieldType::kI64}, {"name", FieldType::kRef}},
        false};
}

class PjhBasicTest : public ::testing::Test
{
  protected:
    PjhBasicTest()
    {
        rt_ = std::make_unique<EspressoRuntime>();
        rt_->define(personDef());
        h_ = rt_->heaps().createHeap("Jimmy", 4u << 20);
        idOff_ = rt_->fieldOffset("Person", "id");
        nameOff_ = rt_->fieldOffset("Person", "name");
    }

    std::unique_ptr<EspressoRuntime> rt_;
    PjhHeap *h_ = nullptr;
    std::uint32_t idOff_ = 0;
    std::uint32_t nameOff_ = 0;
};

TEST_F(PjhBasicTest, CreateAndExists)
{
    EXPECT_TRUE(rt_->heaps().existsHeap("Jimmy"));
    EXPECT_FALSE(rt_->heaps().existsHeap("Nobody"));
    EXPECT_EQ(rt_->heaps().heap("Jimmy"), h_);
    EXPECT_THROW(rt_->heaps().createHeap("Jimmy", 1u << 20), FatalError);
}

TEST_F(PjhBasicTest, PnewAllocatesInPersistentSpace)
{
    Oop p = rt_->pnewInstance(h_, "Person");
    EXPECT_TRUE(h_->containsData(p.addr()));
    EXPECT_FALSE(rt_->heap().contains(p.addr()));
    EXPECT_TRUE(p.hasKlassImage());
    EXPECT_EQ(p.klass()->name(), "Person");
    EXPECT_EQ(p.klass()->memKind(), MemKind::kPersistent);
    EXPECT_EQ(p.getI64(idOff_), 0); // zeroed
}

TEST_F(PjhBasicTest, PnewArraysOfAllShapes)
{
    Oop longs = rt_->pnewI64Array(h_, 10);
    EXPECT_EQ(longs.arrayLength(), 10u);
    longs.setI64(ObjectLayout::kArrayHeaderSize + 3 * 8, 99);

    Oop chars = rt_->pnewString(h_, "espresso");
    EXPECT_EQ(EspressoRuntime::readString(chars), "espresso");

    Oop people = rt_->pnewRefArray(h_, "Person", 4);
    Oop p = rt_->pnewInstance(h_, "Person");
    people.setRefElem(2, p.addr());
    EXPECT_EQ(Oop(people.getRefElem(2)), p);
    EXPECT_EQ(people.klass()->name(), "[LPerson;");
}

TEST_F(PjhBasicTest, RootsRoundTrip)
{
    Oop p = rt_->pnewInstance(h_, "Person");
    p.setI64(idOff_, 77);
    h_->setRoot("Jimmy_info", p);
    EXPECT_TRUE(h_->hasRoot("Jimmy_info"));
    EXPECT_EQ(h_->getRoot("Jimmy_info"), p);
    EXPECT_FALSE(h_->hasRoot("missing"));
    EXPECT_TRUE(h_->getRoot("missing").isNull());

    // Roots are reassignable, including to null.
    Oop q = rt_->pnewInstance(h_, "Person");
    h_->setRoot("Jimmy_info", q);
    EXPECT_EQ(h_->getRoot("Jimmy_info"), q);
    h_->setRoot("Jimmy_info", Oop());
    EXPECT_TRUE(h_->getRoot("Jimmy_info").isNull());
}

TEST_F(PjhBasicTest, SetRootRejectsForeignObjects)
{
    Oop volatile_p = rt_->newInstance("Person");
    EXPECT_THROW(h_->setRoot("bad", volatile_p), FatalError);
}

TEST_F(PjhBasicTest, FlushApisMakeDataDurable)
{
    Oop p = rt_->pnewInstance(h_, "Person");
    h_->setRoot("p", p);
    p.setI64(idOff_, 123);
    h_->flushField(p, idOff_); // Field.flush(x)

    Oop arr = rt_->pnewI64Array(h_, 8);
    h_->setRoot("arr", arr);
    arr.setI64(ObjectLayout::kArrayHeaderSize + 3 * 8, 55);
    h_->flushArrayElement(arr, 3); // Array.flush(z, 3)

    Oop q = rt_->pnewInstance(h_, "Person");
    h_->setRoot("q", q);
    q.setI64(idOff_, 9);
    h_->flushObject(q); // coarse-grained Object.flush

    rt_->heaps().crashHeap("Jimmy");
    PjhHeap *h2 = rt_->heaps().loadHeap("Jimmy");
    EXPECT_EQ(h2->getRoot("p").getI64(idOff_), 123);
    EXPECT_EQ(h2->getRoot("arr").getI64(
                  ObjectLayout::kArrayHeaderSize + 3 * 8),
              55);
    EXPECT_EQ(h2->getRoot("q").getI64(idOff_), 9);
}

TEST_F(PjhBasicTest, UnflushedFieldDataDiesInACrash)
{
    Oop p = rt_->pnewInstance(h_, "Person");
    h_->setRoot("p", p);
    p.setI64(idOff_, 123); // never flushed
    rt_->heaps().crashHeap("Jimmy");
    PjhHeap *h2 = rt_->heaps().loadHeap("Jimmy");
    // Metadata (header, root) survives; the field write does not.
    Oop p2 = h2->getRoot("p");
    ASSERT_FALSE(p2.isNull());
    EXPECT_EQ(p2.klass()->name(), "Person");
    EXPECT_EQ(p2.getI64(idOff_), 0);
}

TEST_F(PjhBasicTest, MixedNvmDramPointersAreAllowed)
{
    // §3.2: pnew'ed objects may reference DRAM.
    Oop p = rt_->pnewInstance(h_, "Person");
    Oop dram_name = rt_->newString("volatile-name");
    p.setRef(nameOff_, dram_name);
    EXPECT_EQ(Oop(p.getRef(nameOff_)), dram_name);

    // The volatile GC must treat the NVM slot as a root.
    Handle keep = rt_->handles().create(p); // (not required, p is in NVM)
    rt_->heap().collectYoung();
    Oop moved = Oop(p.getRef(nameOff_));
    ASSERT_FALSE(moved.isNull());
    EXPECT_EQ(EspressoRuntime::readString(moved), "volatile-name");
    rt_->handles().release(keep);
}

TEST_F(PjhBasicTest, TypeBasedSafetyRefusesOutPointers)
{
    rt_->define(KlassDef{
        "SafeBox", "", {{"ref", FieldType::kRef}}, /*persistentOnly=*/true});
    Oop box = rt_->pnewInstance(h_, "SafeBox");
    std::uint32_t ref_off = rt_->fieldOffset("SafeBox", "ref");

    Oop persistent = rt_->pnewInstance(h_, "Person");
    EXPECT_NO_THROW(h_->storeRef(box, ref_off, persistent));

    Oop dram = rt_->newInstance("Person");
    EXPECT_THROW(h_->storeRef(box, ref_off, dram), MemorySafetyError);
    // Nulls are always fine.
    EXPECT_NO_THROW(h_->storeRef(box, ref_off, Oop()));
}

TEST_F(PjhBasicTest, HeapWalkSeesEveryAllocation)
{
    std::size_t baseline = 0;
    h_->forEachObject([&](Oop) { ++baseline; });
    for (int i = 0; i < 25; ++i)
        rt_->pnewInstance(h_, "Person");
    rt_->pnewI64Array(h_, 100);
    std::size_t count = 0;
    h_->forEachObject([&](Oop) { ++count; });
    EXPECT_EQ(count, baseline + 26);
}

TEST_F(PjhBasicTest, AllocationFailsCleanlyWhenFull)
{
    PjhConfig tiny;
    tiny.dataSize = 64u << 10;
    PjhHeap *small = rt_->heaps().createHeap("tiny", tiny);
    small->setGcTrigger({}); // no collector: exhaust and fail
    EXPECT_THROW(
        {
            for (int i = 0; i < 100000; ++i)
                rt_->pnewInstance(small, "Person");
        },
        FatalError);
}

TEST_F(PjhBasicTest, OversizedObjectIsRejected)
{
    PjhConfig cfg;
    cfg.dataSize = 8u << 20;
    cfg.bounceSize = 64u << 10;
    PjhHeap *heap = rt_->heaps().createHeap("bounded", cfg);
    EXPECT_THROW(rt_->pnewI64Array(heap, 1u << 20), FatalError);
}

TEST_F(PjhBasicTest, UndoLogCommitAndAbort)
{
    Oop p = rt_->pnewInstance(h_, "Person");
    h_->setRoot("p", p);
    p.setI64(idOff_, 10);
    h_->flushField(p, idOff_);

    UndoLog &log = h_->undoLog();

    // Abort restores the old value.
    log.begin();
    log.record(p.addr() + idOff_, 8);
    p.setI64(idOff_, 20);
    log.abort();
    EXPECT_EQ(p.getI64(idOff_), 10);

    // Commit keeps and persists the new value.
    log.begin();
    log.record(p.addr() + idOff_, 8);
    p.setI64(idOff_, 30);
    log.commit();
    EXPECT_EQ(p.getI64(idOff_), 30);

    rt_->heaps().crashHeap("Jimmy");
    PjhHeap *h2 = rt_->heaps().loadHeap("Jimmy");
    EXPECT_EQ(h2->getRoot("p").getI64(idOff_), 30);
}

TEST_F(PjhBasicTest, UndoLogRollsBackAcrossACrash)
{
    Oop p = rt_->pnewInstance(h_, "Person");
    h_->setRoot("p", p);
    p.setI64(idOff_, 10);
    h_->flushField(p, idOff_);

    UndoLog &log = h_->undoLog();
    log.begin();
    log.record(p.addr() + idOff_, 8);
    p.setI64(idOff_, 999);
    h_->flushField(p, idOff_); // even persisted, it must roll back

    rt_->heaps().crashHeap("Jimmy");
    PjhHeap *h2 = rt_->heaps().loadHeap("Jimmy");
    EXPECT_EQ(h2->getRoot("p").getI64(idOff_), 10);
    EXPECT_FALSE(h2->undoLog().active());
}

} // namespace
} // namespace espresso
