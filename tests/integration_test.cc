/**
 * @file
 * Cross-module integration tests: volatile GC and persistent GC
 * interacting over cross-heap pointers, full application lifecycles
 * (populate -> GC -> detach -> migrate -> reload under every safety
 * level), and an eviction-mode crash sweep of the undo log (which
 * validates its torn-tail checksum protocol end to end).
 */

#include <gtest/gtest.h>

#include "collections/pbox.hh"
#include "collections/phashmap.hh"
#include "core/espresso.hh"
#include "nvm/crash_injector.hh"
#include "util/rng.hh"

namespace espresso {
namespace {

KlassDef
nodeDef()
{
    return KlassDef{
        "Node", "",
        {{"value", FieldType::kI64}, {"next", FieldType::kRef}},
        false};
}

TEST(IntegrationTest, BothCollectorsOverCrossHeapPointers)
{
    EspressoConfig cfg;
    cfg.volatileHeap.edenSize = 128u << 10;
    cfg.volatileHeap.survivorSize = 32u << 10;
    cfg.volatileHeap.oldSize = 8u << 20;
    EspressoRuntime rt(cfg);
    rt.define(nodeDef());
    std::uint32_t value_off = rt.fieldOffset("Node", "value");
    std::uint32_t next_off = rt.fieldOffset("Node", "next");
    PjhHeap *heap = rt.heaps().createHeap("x", 8u << 20);

    // Alternate DRAM and NVM nodes in one chain; only the head is
    // rooted (in NVM). Interleave garbage on both sides.
    Oop head;
    const int kLen = 400;
    for (int i = kLen - 1; i >= 0; --i) {
        Oop n = (i % 2 == 0) ? rt.pnewInstance(heap, "Node")
                             : rt.newInstance("Node");
        n.setI64(value_off, i);
        n.setRef(next_off, head);
        if (i % 2 == 0)
            heap->flushObject(n);
        head = n;
        rt.pnewInstance(heap, "Node"); // NVM garbage
        rt.newInstance("Node");        // DRAM garbage
    }
    ASSERT_TRUE(heap->containsData(head.addr()));
    heap->setRoot("mixed", head);

    auto checksum = [&]() {
        std::int64_t sum = 0;
        for (Oop cur = heap->getRoot("mixed"); !cur.isNull();
             cur = Oop(cur.getRef(next_off)))
            sum += cur.getI64(value_off);
        return sum;
    };
    const std::int64_t expected = kLen * (kLen - 1) / 2;
    EXPECT_EQ(checksum(), expected);

    // Volatile collections (young + full) must keep NVM->DRAM edges.
    rt.heap().collectYoung();
    EXPECT_EQ(checksum(), expected);
    rt.heap().collectFull();
    EXPECT_EQ(checksum(), expected);

    // Persistent collection must keep DRAM->NVM edges updated.
    heap->collect(&rt.heap());
    EXPECT_EQ(checksum(), expected);

    // Interleave both repeatedly.
    for (int i = 0; i < 3; ++i) {
        rt.heap().collectFull();
        heap->collect(&rt.heap());
        EXPECT_EQ(checksum(), expected) << "round " << i;
    }
}

class SafetyLevelLifecycleTest
    : public ::testing::TestWithParam<SafetyLevel>
{
};

TEST_P(SafetyLevelLifecycleTest, FullLifecycleUnderEverySafetyLevel)
{
    EspressoRuntime rt;
    rt.define(nodeDef());
    std::uint32_t value_off = rt.fieldOffset("Node", "value");
    std::uint32_t next_off = rt.fieldOffset("Node", "next");
    PjhHeap *heap = rt.heaps().createHeap("life", 8u << 20);

    Oop head;
    for (int i = 99; i >= 0; --i) {
        Oop n = rt.pnewInstance(heap, "Node");
        n.setI64(value_off, i);
        n.setRef(next_off, head);
        heap->flushObject(n);
        head = n;
        rt.pnewInstance(heap, "Node"); // garbage
    }
    heap->setRoot("head", head);
    heap->collect(&rt.heap());

    rt.heaps().detachHeap("life");
    rt.heaps().migrateHeap("life"); // force the rebase path too
    PjhHeap *h2 = rt.heaps().loadHeap("life", GetParam());

    Oop cur = h2->getRoot("head");
    for (int i = 0; i < 100; ++i) {
        ASSERT_FALSE(cur.isNull());
        EXPECT_EQ(cur.getI64(value_off), i);
        cur = Oop(cur.getRef(next_off));
    }
    // The reloaded heap is fully operational.
    Oop extra = rt.pnewInstance(h2, "Node");
    extra.setI64(value_off, 1);
    h2->flushObject(extra);
    h2->setRoot("extra", extra);
    h2->collect(&rt.heap());
    EXPECT_EQ(h2->getRoot("extra").getI64(value_off), 1);
}

INSTANTIATE_TEST_SUITE_P(
    AllLevels, SafetyLevelLifecycleTest,
    ::testing::Values(SafetyLevel::kUserGuaranteed,
                      SafetyLevel::kZeroing, SafetyLevel::kTypeBased),
    [](const ::testing::TestParamInfo<SafetyLevel> &info) {
        switch (info.param) {
          case SafetyLevel::kUserGuaranteed: return "UserGuaranteed";
          case SafetyLevel::kZeroing: return "Zeroing";
          default: return "TypeBased";
        }
    });

TEST(IntegrationTest, UndoLogEvictionCrashSweep)
{
    // Sweep a random-eviction crash across every persistence event of
    // a transactional update burst. The committed prefix must always
    // be intact and the in-flight transaction fully rolled back —
    // this exercises the undo log's torn-tail checksum protocol.
    for (std::uint64_t event = 1;; ++event) {
        EspressoRuntime rt;
        rt.define(nodeDef());
        std::uint32_t value_off = rt.fieldOffset("Node", "value");
        PjhHeap *heap = rt.heaps().createHeap("undo", 1u << 20);
        NvmDevice *dev = rt.heaps().deviceOf("undo");

        // Committed baseline.
        Oop n = rt.pnewInstance(heap, "Node");
        n.setI64(value_off, 100);
        heap->flushObject(n);
        heap->setRoot("n", n);

        CrashInjector injector;
        dev->setInjector(&injector);
        injector.arm(event);
        bool crashed = false;
        std::int64_t last_committed = 100;
        try {
            for (int i = 1; i <= 5; ++i) {
                UndoLog &log = heap->undoLog();
                log.begin();
                log.record(n.addr() + value_off, 8);
                n.setI64(value_off, 100 + i);
                log.commit();
                last_committed = 100 + i;
            }
        } catch (const SimulatedCrash &) {
            crashed = true;
        }
        injector.disarm();
        if (!crashed)
            break;

        rt.heaps().crashHeap("undo", CrashMode::kEvictRandomLines,
                             1234 + event);
        PjhHeap *h2 = rt.heaps().loadHeap("undo");
        std::int64_t v = h2->getRoot("n").getI64(value_off);
        // Atomicity: the value is a committed one — either the last
        // acknowledged commit, or the in-flight transaction's value
        // when the crash hit after its commit became durable but
        // before it was acknowledged. Never a torn intermediate.
        EXPECT_TRUE(v == last_committed || v == last_committed + 1)
            << "event " << event << " read " << v;
        EXPECT_FALSE(h2->undoLog().active());
    }
}

TEST(IntegrationTest, CollectionsOverReloadAndGcTorture)
{
    EspressoRuntime rt;
    PjhHeap *heap = rt.heaps().createHeap("torture", 16u << 20);
    PHashmap map = PHashmap::create(heap, 64);
    heap->setRoot("map", map.oop());

    Rng rng(5);
    std::map<std::int64_t, std::int64_t> model;
    for (int round = 0; round < 4; ++round) {
        for (int i = 0; i < 300; ++i) {
            std::int64_t key =
                static_cast<std::int64_t>(rng.nextBelow(100));
            if (rng.nextBelow(4) == 0) {
                map.remove(key);
                model.erase(key);
            } else {
                std::int64_t val = static_cast<std::int64_t>(
                    rng.next() & 0xffffff);
                map.put(key, PBox::create(heap, val).oop());
                model[key] = val;
            }
        }
        switch (round % 3) {
          case 0:
            heap->collect(&rt.heap());
            break;
          case 1:
            rt.heaps().crashHeap("torture");
            break;
          default:
            rt.heaps().detachHeap("torture");
            rt.heaps().migrateHeap("torture");
        }
        heap = rt.heaps().heap("torture")
                   ? rt.heaps().heap("torture")
                   : rt.heaps().loadHeap("torture");
        map = PHashmap::at(heap, heap->getRoot("map"));

        ASSERT_EQ(map.size(), model.size()) << "round " << round;
        for (const auto &[k, v] : model) {
            ASSERT_FALSE(map.get(k).isNull());
            EXPECT_EQ(PBox::at(heap, map.get(k)).get(), v);
        }
    }
}

} // namespace
} // namespace espresso
