/**
 * @file
 * Crash-consistency sweeps (§4).
 *
 * The durable state of the device changes only at flush/fence events,
 * so arming a simulated power failure at every such event enumerates
 * every distinct crash state a workload can produce. For each crash
 * point we revert the device to its durable image, re-attach the heap
 * (running recovery), and check the §4 invariants:
 *   - the heap is parseable and loadable,
 *   - the root table points at well-formed objects,
 *   - committed data (flushed before the crash point) is intact,
 *   - an interrupted collection completes transparently: the live
 *     graph reads back exactly as before the GC started.
 *
 * Sweeps run under both crash modes: conservative (only fenced lines
 * survive) and random cache eviction (any dirty line may survive).
 */

#include <gtest/gtest.h>

#include "core/espresso.hh"
#include "nvm/crash_injector.hh"

namespace espresso {
namespace {

constexpr const char *kHeapName = "crash";

KlassDef
nodeDef()
{
    return KlassDef{
        "Node", "",
        {{"value", FieldType::kI64}, {"next", FieldType::kRef}},
        false};
}

/** One sweep iteration's environment. */
struct CrashRig
{
    CrashRig()
    {
        rt = std::make_unique<EspressoRuntime>();
        rt->define(nodeDef());
        valueOff = rt->fieldOffset("Node", "value");
        nextOff = rt->fieldOffset("Node", "next");
        heap = rt->heaps().createHeap(kHeapName, 2u << 20);
        device = rt->heaps().deviceOf(kHeapName);
        device->setInjector(&injector);
    }

    Oop
    pnode(std::int64_t v, Oop next = Oop())
    {
        Oop n = rt->pnewInstance(heap, "Node");
        n.setI64(valueOff, v);
        n.setRef(nextOff, next);
        heap->flushObject(n);
        return n;
    }

    std::int64_t
    listSum(Oop head) const
    {
        std::int64_t sum = 0;
        for (Oop cur = head; !cur.isNull(); cur = Oop(cur.getRef(nextOff)))
            sum += cur.getI64(valueOff);
        return sum;
    }

    std::unique_ptr<EspressoRuntime> rt;
    PjhHeap *heap = nullptr;
    NvmDevice *device = nullptr;
    CrashInjector injector;
    std::uint32_t valueOff = 0, nextOff = 0;
};

/**
 * Sweep a workload: returns the number of persistence events it
 * produces when run to completion. For every prefix length, run the
 * workload until the injected crash, recover, and verify.
 */
template <typename Workload, typename Verify>
void
sweepCrashes(Workload &&workload, Verify &&verify, CrashMode mode,
             std::uint64_t seed = 1)
{
    for (std::uint64_t event = 1;; ++event) {
        CrashRig rig;
        rig.injector.arm(event);
        bool crashed = false;
        try {
            workload(rig);
        } catch (const SimulatedCrash &) {
            crashed = true;
        }
        rig.injector.disarm();
        if (!crashed) {
            // Event ordinal beyond the workload: sweep complete.
            // Verify the no-crash run too, then stop.
            rig.rt->heaps().detachHeap(kHeapName);
            PjhHeap *h = rig.rt->heaps().loadHeap(kHeapName);
            verify(rig, h, /*crash_event=*/0);
            ASSERT_GT(event, 1u);
            break;
        }
        rig.rt->heaps().crashHeap(kHeapName, mode, seed + event);
        PjhHeap *h = rig.rt->heaps().loadHeap(kHeapName);
        verify(rig, h, event);
    }
}

// ---------------------------------------------------------------------
// Allocation sweeps (§4.1)
// ---------------------------------------------------------------------

void
allocationWorkload(CrashRig &rig)
{
    // Each step durably publishes node i, then commits it as the
    // "last" root; the value field is flushed before publication.
    for (int i = 1; i <= 6; ++i) {
        Oop n = rig.pnode(i);
        rig.heap->setRoot("last", n);
    }
}

void
verifyAllocationInvariants(CrashRig &rig, PjhHeap *h,
                           std::uint64_t crash_event)
{
    // Heap must be fully parseable (tail repaired if torn).
    std::size_t objects = 0;
    ASSERT_NO_THROW(h->forEachObject([&](Oop) { ++objects; }));

    // The committed root is either absent (crash before the first
    // commit) or a well-formed Node with a committed value.
    Oop last = h->getRoot("last");
    if (!last.isNull()) {
        EXPECT_EQ(last.klass()->name(), "Node");
        std::int64_t v = last.getI64(rig.valueOff);
        EXPECT_GE(v, 1);
        EXPECT_LE(v, 6);
    } else {
        // Only acceptable very early in the workload.
        EXPECT_TRUE(crash_event != 0);
    }

    // The repaired heap accepts new allocations.
    Oop extra = rig.rt->pnewInstance(h, "Node");
    extra.setI64(rig.valueOff, 777);
    h->flushObject(extra);
    h->setRoot("extra", extra);
    EXPECT_EQ(h->getRoot("extra").getI64(rig.valueOff), 777);
}

TEST(PjhCrashTest, AllocationSweepConservative)
{
    sweepCrashes(allocationWorkload, verifyAllocationInvariants,
                 CrashMode::kDiscardUnflushed);
}

TEST(PjhCrashTest, AllocationSweepWithCacheEviction)
{
    for (std::uint64_t seed : {11u, 22u, 33u}) {
        sweepCrashes(allocationWorkload, verifyAllocationInvariants,
                     CrashMode::kEvictRandomLines, seed);
    }
}

// ---------------------------------------------------------------------
// GC sweeps (§4.2 / §4.3)
// ---------------------------------------------------------------------

constexpr int kGcListLen = 24;
constexpr std::int64_t kGcListSum =
    static_cast<std::int64_t>(kGcListLen) * (kGcListLen - 1) / 2;

void
gcWorkload(CrashRig &rig)
{
    // Build a committed list interleaved with garbage so compaction
    // moves things, *without* injection (arm only around the GC).
    std::uint64_t target = rig.injector.armedTarget();
    rig.injector.disarm();
    Oop head;
    for (int i = kGcListLen - 1; i >= 0; --i) {
        head = rig.pnode(i, head);
        rig.pnode(-1000 - i); // garbage neighbour
    }
    rig.heap->setRoot("head", head);
    // Another root sharing structure with the list (fixup coverage).
    rig.heap->setRoot("second", Oop(head.getRef(rig.nextOff)));
    rig.injector.arm(target); // resets the event counter

    rig.heap->collect(&rig.rt->heap());
}

void
verifyGcInvariants(CrashRig &rig, PjhHeap *h, std::uint64_t)
{
    // Recovery must have completed the collection.
    EXPECT_EQ(h->meta().gcInProgress, 0u);

    // The live graph is exactly what it was before the GC.
    Oop cur = h->getRoot("head");
    for (int i = 0; i < kGcListLen; ++i) {
        ASSERT_FALSE(cur.isNull()) << "list truncated at " << i;
        EXPECT_EQ(cur.getI64(rig.valueOff), i);
        cur = Oop(cur.getRef(rig.nextOff));
    }
    EXPECT_TRUE(cur.isNull());
    EXPECT_EQ(rig.listSum(h->getRoot("second")), kGcListSum - 0);

    // The heap stays collectable and usable.
    Oop extra = rig.rt->pnewInstance(h, "Node");
    extra.setI64(rig.valueOff, 5);
    h->flushObject(extra);
    h->setRoot("extra", extra);
    h->collect(nullptr);
    EXPECT_EQ(h->getRoot("extra").getI64(rig.valueOff), 5);
    EXPECT_EQ(rig.listSum(h->getRoot("head")), kGcListSum);
}

TEST(PjhCrashTest, GcSweepConservative)
{
    sweepCrashes(gcWorkload, verifyGcInvariants,
                 CrashMode::kDiscardUnflushed);
}

TEST(PjhCrashTest, GcSweepWithCacheEviction)
{
    for (std::uint64_t seed : {5u, 17u}) {
        sweepCrashes(gcWorkload, verifyGcInvariants,
                     CrashMode::kEvictRandomLines, seed);
    }
}

// ---------------------------------------------------------------------
// Crash during recovery (double failure)
// ---------------------------------------------------------------------

TEST(PjhCrashTest, CrashDuringRecoveryIsStillRecoverable)
{
    // Crash the GC at a mid-compaction event, then crash recovery at
    // every one of its own events; the third attach must always
    // succeed with the graph intact.
    for (std::uint64_t gc_event = 20;; gc_event += 40) {
        CrashRig rig;
        rig.injector.arm(gc_event);
        bool crashed = false;
        try {
            gcWorkload(rig);
        } catch (const SimulatedCrash &) {
            crashed = true;
        }
        rig.injector.disarm();
        if (!crashed)
            break; // past the end of the GC's event stream

        rig.rt->heaps().crashHeap(kHeapName);

        for (std::uint64_t rec_event = 1;; ++rec_event) {
            rig.injector.arm(rec_event);
            PjhHeap *h = nullptr;
            try {
                h = rig.rt->heaps().loadHeap(kHeapName);
            } catch (const SimulatedCrash &) {
                rig.injector.disarm();
                rig.rt->heaps().crashHeap(kHeapName);
                continue;
            }
            rig.injector.disarm();
            verifyGcInvariants(rig, h, rec_event);
            break;
        }
    }
}

// ---------------------------------------------------------------------
// Crash followed by a migrated (rebased) reload
// ---------------------------------------------------------------------

TEST(PjhCrashTest, GcCrashThenMigratedReload)
{
    // A GC crash whose recovery happens at a *different* mapping
    // exercises the delta-aware recovery path.
    for (std::uint64_t event = 10; event <= 130; event += 24) {
        CrashRig rig;
        rig.injector.arm(event);
        bool crashed = false;
        try {
            gcWorkload(rig);
        } catch (const SimulatedCrash &) {
            crashed = true;
        }
        rig.injector.disarm();
        if (!crashed)
            break;
        rig.rt->heaps().crashHeap(kHeapName);
        rig.rt->heaps().migrateHeap(kHeapName);
        PjhHeap *h = rig.rt->heaps().loadHeap(kHeapName);
        EXPECT_EQ(h->stats().rebases, 1u);
        verifyGcInvariants(rig, h, event);
    }
}

} // namespace
} // namespace espresso
