/**
 * @file
 * Wire front door tests: framing codecs and the RingBuffer, full
 * client/server round trips over real sockets, pipelining, explicit
 * transactions, and the hostile-stream matrix — torn 1-byte reads,
 * oversize length prefixes, bad magic, unknown opcodes, mid-
 * transaction disconnects — asserting the engine leaks no WAL shard
 * token, detached session, or row lock in any of them.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "db/sharded_database.hh"
#include "net/server.hh"
#include "net/wire_client.hh"
#include "net/wire_protocol.hh"
#include "util/ring_buffer.hh"

namespace espresso {
namespace net {
namespace {

using db::DbRecord;
using db::DbType;
using db::DbValue;
using db::TableSchema;

// ---------------------------------------------------------------------
// RingBuffer
// ---------------------------------------------------------------------

TEST(RingBufferTest, AllOrNothingAndWrapAround)
{
    RingBuffer rb(8);
    EXPECT_TRUE(rb.empty());
    EXPECT_TRUE(rb.write("abcde", 5));
    EXPECT_FALSE(rb.write("fghij", 5)); // would overflow: rejected whole
    EXPECT_EQ(rb.size(), 5u);

    auto span = rb.peek();
    EXPECT_EQ(span.second, 5u);
    EXPECT_EQ(std::memcmp(span.first, "abcde", 5), 0);
    rb.consume(3);

    // Wraps: 2 live + 5 new = 7 <= 8, but split across the seam.
    EXPECT_TRUE(rb.write("fghij", 5));
    EXPECT_EQ(rb.size(), 7u);
    std::string drained;
    while (!rb.empty()) {
        auto s = rb.peek();
        drained.append(reinterpret_cast<const char *>(s.first),
                       s.second);
        rb.consume(s.second);
    }
    EXPECT_EQ(drained, "defghij");

    // Empty ring resets to offset 0: full-capacity write succeeds.
    EXPECT_TRUE(rb.write("01234567", 8));
    EXPECT_EQ(rb.peek().second, 8u);
}

// ---------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------

TEST(WireCodecTest, WriterReaderRoundTrip)
{
    WireWriter w;
    w.begin(WireOp::kPut, 0);
    w.putStr("T");
    w.putU64(0x1122334455667788ull);
    w.putRow({DbValue::ofI64(-7), DbValue::ofF64(2.5),
              DbValue::ofStr("hi"), DbValue::null()});
    w.finish();

    FrameView f;
    ASSERT_EQ(tryParseFrame(w.bytes().data(), w.size(), &f),
              ParseResult::kFrame);
    EXPECT_EQ(f.op, WireOp::kPut);
    WireReader r(f);
    EXPECT_EQ(r.getStr(), "T");
    EXPECT_EQ(r.getU64(), 0x1122334455667788ull);
    std::vector<DbValue> row = r.getRow();
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(row.size(), 4u);
    EXPECT_EQ(row[0].i, -7);
    EXPECT_DOUBLE_EQ(row[1].d, 2.5);
    EXPECT_EQ(row[2].s, "hi");
    EXPECT_EQ(row[3].type, DbType::kNull);
    EXPECT_TRUE(r.atEnd());
}

TEST(WireCodecTest, ParseRejectsHostileHeaders)
{
    WireWriter w;
    w.begin(WireOp::kPing);
    w.finish();
    std::vector<std::uint8_t> buf = w.bytes();

    FrameView f;
    // Truncation at every byte boundary parses as kNeedMore.
    for (std::size_t n = 0; n < buf.size(); ++n)
        EXPECT_EQ(tryParseFrame(buf.data(), n, &f),
                  ParseResult::kNeedMore);

    std::vector<std::uint8_t> bad = buf;
    bad[0] ^= 0xff;
    EXPECT_EQ(tryParseFrame(bad.data(), bad.size(), &f),
              ParseResult::kBadMagic);

    bad = buf;
    bad[4] = 99;
    EXPECT_EQ(tryParseFrame(bad.data(), bad.size(), &f),
              ParseResult::kBadVersion);

    bad = buf;
    std::uint32_t huge = static_cast<std::uint32_t>(kMaxPayload) + 1;
    std::memcpy(bad.data() + 8, &huge, sizeof(huge));
    EXPECT_EQ(tryParseFrame(bad.data(), bad.size(), &f),
              ParseResult::kTooLarge);
}

TEST(WireCodecTest, ReaderPoisonsOnOverrunAndHostileCounts)
{
    WireWriter w;
    w.begin(WireOp::kGet);
    w.putStr("T");
    w.finish();
    FrameView f;
    ASSERT_EQ(tryParseFrame(w.bytes().data(), w.size(), &f),
              ParseResult::kFrame);
    WireReader r(f);
    (void)r.getStr();
    (void)r.getI64(); // past the end
    EXPECT_FALSE(r.ok());

    // Row count far beyond what the payload could hold.
    WireWriter h;
    h.begin(WireOp::kPut);
    h.putU16(0xffff);
    h.finish();
    ASSERT_EQ(tryParseFrame(h.bytes().data(), h.size(), &f),
              ParseResult::kFrame);
    WireReader hr(f);
    (void)hr.getRow();
    EXPECT_FALSE(hr.ok());
}

// ---------------------------------------------------------------------
// Client/server round trips
// ---------------------------------------------------------------------

class WireServerTest : public ::testing::Test
{
  protected:
    void
    startServer(unsigned shards = 2, unsigned wal_shards = 4,
                std::uint64_t window_us = 0)
    {
        db::ShardedDatabaseConfig cfg;
        cfg.shards = shards;
        cfg.shard.rowRegionSize = 2u << 20;
        cfg.shard.rowsPerTable = 512;
        cfg.shard.walShards = wal_shards;
        cfg.shard.groupCommitWindowUs = window_us;
        db_ = std::make_unique<db::ShardedDatabase>(cfg);

        ServerConfig scfg;
        scfg.workers = 2;
        scfg.committers = 2;
        srv_ = std::make_unique<Server>(db_.get(), scfg);
        srv_->start();
    }

    void
    TearDown() override
    {
        if (srv_)
            srv_->stop();
    }

    bool
    connectClient(WireClient *c)
    {
        return c->connect("127.0.0.1", srv_->port());
    }

    WireStatus
    makeTable(WireClient *c)
    {
        TableSchema schema{"T",
                           {{"ID", DbType::kI64},
                            {"V", DbType::kI64},
                            {"S", DbType::kStr}},
                           0,
                           TableSchema::kNoIndex};
        return c->createTable(schema);
    }

    static std::vector<DbValue>
    row(std::int64_t id, std::int64_t v, const std::string &s = "s")
    {
        return {DbValue::ofI64(id), DbValue::ofI64(v),
                DbValue::ofStr(s)};
    }

    /** Poll until the engine shows no parked session / held WAL
     * token, or the deadline passes. */
    bool
    drainsClean(int timeout_ms = 5000)
    {
        auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
        while (std::chrono::steady_clock::now() < deadline) {
            if (db_->detachedCount() == 0 &&
                db_->busyWalShards() == 0)
                return true;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        }
        return db_->detachedCount() == 0 && db_->busyWalShards() == 0;
    }

    std::unique_ptr<db::ShardedDatabase> db_;
    std::unique_ptr<Server> srv_;
};

TEST_F(WireServerTest, AutoCommitCrudRoundTrip)
{
    startServer();
    WireClient c;
    ASSERT_TRUE(connectClient(&c));
    EXPECT_EQ(c.ping(), WireStatus::kOk);
    ASSERT_EQ(makeTable(&c), WireStatus::kOk);

    EXPECT_EQ(c.put("T", row(1, 10, "one")), WireStatus::kOk);
    EXPECT_EQ(c.put("T", row(2, 20, "two")), WireStatus::kOk);

    std::vector<DbValue> got;
    EXPECT_EQ(c.get("T", 1, &got), WireStatus::kOk);
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[1].i, 10);
    EXPECT_EQ(got[2].s, "one");
    EXPECT_EQ(c.get("T", 99, &got), WireStatus::kNotFound);

    bool updated = false;
    EXPECT_EQ(c.update("T", row(1, 11, "one"), ~0ull, &updated),
              WireStatus::kOk);
    EXPECT_TRUE(updated);
    EXPECT_EQ(c.update("T", row(42, 0), ~0ull, &updated),
              WireStatus::kOk);
    EXPECT_FALSE(updated);

    std::uint64_t n = 0;
    EXPECT_EQ(c.rowCount("T", &n), WireStatus::kOk);
    EXPECT_EQ(n, 2u);

    std::vector<std::vector<DbValue>> rows;
    EXPECT_EQ(c.scanEq("T", "V", DbValue::ofI64(11), &rows),
              WireStatus::kOk);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0][0].i, 1);

    bool erased = false;
    EXPECT_EQ(c.del("T", 2, &erased), WireStatus::kOk);
    EXPECT_TRUE(erased);
    EXPECT_EQ(c.del("T", 2, &erased), WireStatus::kOk);
    EXPECT_FALSE(erased);

    // Bad table / bad shape answer without killing the stream.
    EXPECT_EQ(c.put("NOPE", row(1, 1)), WireStatus::kError);
    EXPECT_EQ(c.put("T", {DbValue::ofI64(5)}),
              WireStatus::kBadRequest);
    EXPECT_EQ(c.ping(), WireStatus::kOk);

    c.closeConn();
    EXPECT_TRUE(drainsClean());
}

TEST_F(WireServerTest, PipelinedPutsRespondInOrder)
{
    startServer();
    WireClient c;
    ASSERT_TRUE(connectClient(&c));
    ASSERT_EQ(makeTable(&c), WireStatus::kOk);

    // put(i) immediately followed by get(i), all pipelined in one
    // write. Same-connection frames execute in order even though
    // put durability is deferred to the drainer — so whenever
    // put(i) was admitted, get(i) MUST observe its value. Beyond
    // the WAL token pool a put answers kBusy (not executed) and its
    // get must miss.
    constexpr int kN = 64;
    WireWriter w;
    for (int i = 0; i < kN; ++i) {
        encodePut(w, "T", row(i, i * 10));
        encodeGet(w, "T", i);
    }
    ASSERT_TRUE(c.sendFrames(w));

    int admitted = 0;
    for (int i = 0; i < kN; ++i) {
        std::vector<std::uint8_t> frame;
        FrameView f;
        ASSERT_TRUE(c.recvFrame(&frame, &f)) << "put " << i;
        ASSERT_EQ(f.op, WireOp::kPut);
        WireStatus put_st = static_cast<WireStatus>(f.status);
        ASSERT_TRUE(put_st == WireStatus::kOk ||
                    put_st == WireStatus::kBusy)
            << wireStatusName(put_st);

        ASSERT_TRUE(c.recvFrame(&frame, &f)) << "get " << i;
        ASSERT_EQ(f.op, WireOp::kGet);
        if (put_st == WireStatus::kOk) {
            ++admitted;
            ASSERT_EQ(static_cast<WireStatus>(f.status),
                      WireStatus::kOk)
                << "get after admitted put missed, i=" << i;
            WireReader r(f);
            std::vector<DbValue> vals = r.getRow();
            ASSERT_EQ(vals.size(), 3u);
            EXPECT_EQ(vals[1].i, i * 10);
        } else {
            EXPECT_EQ(static_cast<WireStatus>(f.status),
                      WireStatus::kNotFound);
        }
    }
    // The token pool (2 members x 4 WAL shards) admits at least the
    // first pool's worth; the drainer frees tokens concurrently so
    // usually far more.
    EXPECT_GE(admitted, 8);
    std::uint64_t n = 0;
    EXPECT_EQ(c.rowCount("T", &n), WireStatus::kOk);
    EXPECT_EQ(n, static_cast<std::uint64_t>(admitted));

    c.closeConn();
    EXPECT_TRUE(drainsClean());
}

TEST_F(WireServerTest, ExplicitTxnCommitAndRollback)
{
    startServer();
    WireClient c;
    ASSERT_TRUE(connectClient(&c));
    ASSERT_EQ(makeTable(&c), WireStatus::kOk);

    std::uint64_t txid = 0;
    ASSERT_EQ(c.begin(false, &txid), WireStatus::kOk);
    EXPECT_NE(txid, 0u);
    EXPECT_EQ(c.put("T", row(1, 100)), WireStatus::kOk);
    EXPECT_EQ(c.put("T", row(2, 200)), WireStatus::kOk);
    // Reads inside the bracket see its own writes.
    std::vector<DbValue> got;
    EXPECT_EQ(c.get("T", 1, &got), WireStatus::kOk);
    EXPECT_EQ(c.commit(), WireStatus::kOk);

    EXPECT_EQ(c.get("T", 2, &got), WireStatus::kOk);
    EXPECT_EQ(got[1].i, 200);

    ASSERT_EQ(c.begin(false, &txid), WireStatus::kOk);
    EXPECT_EQ(c.put("T", row(3, 300)), WireStatus::kOk);
    EXPECT_EQ(c.rollback(), WireStatus::kOk);
    EXPECT_EQ(c.get("T", 3, &got), WireStatus::kNotFound);

    // Commit without begin is misuse; stream survives.
    EXPECT_EQ(c.commit(), WireStatus::kMisuse);
    EXPECT_EQ(c.ping(), WireStatus::kOk);

    c.closeConn();
    EXPECT_TRUE(drainsClean());
}

TEST_F(WireServerTest, SnapshotBracketIgnoresLaterWrites)
{
    startServer();
    WireClient a, b;
    ASSERT_TRUE(connectClient(&a));
    ASSERT_TRUE(connectClient(&b));
    ASSERT_EQ(makeTable(&a), WireStatus::kOk);
    ASSERT_EQ(a.put("T", row(1, 10)), WireStatus::kOk);

    std::uint64_t txid = 0;
    ASSERT_EQ(a.begin(true, &txid), WireStatus::kOk);
    std::vector<DbValue> got;
    ASSERT_EQ(a.get("T", 1, &got), WireStatus::kOk); // pin the view

    ASSERT_EQ(b.put("T", row(1, 99)), WireStatus::kOk);
    ASSERT_EQ(b.put("T", row(500, 5)), WireStatus::kOk);

    EXPECT_EQ(a.get("T", 1, &got), WireStatus::kOk);
    EXPECT_EQ(got[1].i, 10); // pre-snapshot value
    EXPECT_EQ(a.get("T", 500, &got), WireStatus::kNotFound);
    EXPECT_EQ(a.rollback(), WireStatus::kOk);

    EXPECT_EQ(a.get("T", 1, &got), WireStatus::kOk);
    EXPECT_EQ(got[1].i, 99);

    a.closeConn();
    b.closeConn();
    EXPECT_TRUE(drainsClean());
}

TEST_F(WireServerTest, WalTokenExhaustionAnswersBusyNotExecuted)
{
    // One member, one WAL shard: a single open write transaction
    // holds the engine's only token.
    startServer(1, 1);
    WireClient a, b;
    ASSERT_TRUE(connectClient(&a));
    ASSERT_TRUE(connectClient(&b));
    ASSERT_EQ(makeTable(&a), WireStatus::kOk);

    std::uint64_t txid = 0;
    ASSERT_EQ(a.begin(false, &txid), WireStatus::kOk);
    ASSERT_EQ(a.put("T", row(1, 1)), WireStatus::kOk);

    // Auto-commit write: no token -> kBusy, not executed.
    EXPECT_EQ(b.put("T", row(2, 2)), WireStatus::kBusy);

    // In-bracket write: the nowait join kills the bracket kBusy and
    // the commit reports it.
    std::uint64_t txid_b = 0;
    ASSERT_EQ(b.begin(false, &txid_b), WireStatus::kOk);
    EXPECT_EQ(b.put("T", row(2, 2)), WireStatus::kBusy);
    EXPECT_EQ(b.put("T", row(3, 3)), WireStatus::kAborted);
    EXPECT_EQ(b.commit(), WireStatus::kBusy);

    EXPECT_EQ(a.commit(), WireStatus::kOk);

    // Token freed: the retry executes.
    EXPECT_EQ(b.put("T", row(2, 2)), WireStatus::kOk);
    std::uint64_t n = 0;
    EXPECT_EQ(b.rowCount("T", &n), WireStatus::kOk);
    EXPECT_EQ(n, 2u);

    a.closeConn();
    b.closeConn();
    EXPECT_TRUE(drainsClean());
}

TEST_F(WireServerTest, RowLockContentionIsBoundedNotBlocking)
{
    startServer(1, 4);
    WireClient a, b;
    ASSERT_TRUE(connectClient(&a));
    ASSERT_TRUE(connectClient(&b));
    ASSERT_EQ(makeTable(&a), WireStatus::kOk);
    ASSERT_EQ(a.put("T", row(1, 0)), WireStatus::kOk);

    std::uint64_t ta = 0, tb = 0;
    ASSERT_EQ(a.begin(false, &ta), WireStatus::kOk);
    ASSERT_EQ(a.put("T", row(1, 1)), WireStatus::kOk); // row lock held

    ASSERT_EQ(b.begin(false, &tb), WireStatus::kOk);
    // The bounded wait expires rather than parking the worker; the
    // engine reports the abort as kBusy or as a deadlock victim.
    WireStatus st = b.put("T", row(1, 2));
    EXPECT_TRUE(st == WireStatus::kBusy ||
                st == WireStatus::kDeadlock)
        << wireStatusName(st);
    EXPECT_EQ(b.commit(), st);

    EXPECT_EQ(a.commit(), WireStatus::kOk);
    std::vector<DbValue> got;
    EXPECT_EQ(b.get("T", 1, &got), WireStatus::kOk);
    EXPECT_EQ(got[1].i, 1);

    a.closeConn();
    b.closeConn();
    EXPECT_TRUE(drainsClean());
}

// ---------------------------------------------------------------------
// Hostile streams
// ---------------------------------------------------------------------

TEST_F(WireServerTest, TornFramesOneByteDribble)
{
    startServer();
    WireClient c;
    ASSERT_TRUE(connectClient(&c));
    ASSERT_EQ(makeTable(&c), WireStatus::kOk);

    WireWriter w;
    encodePut(w, "T", row(7, 70));
    encodeGet(w, "T", 7);
    const std::vector<std::uint8_t> &bytes = w.bytes();
    for (std::uint8_t byte : bytes)
        ASSERT_TRUE(c.sendRaw(&byte, 1));

    std::vector<std::uint8_t> frame;
    FrameView f;
    ASSERT_TRUE(c.recvFrame(&frame, &f));
    EXPECT_EQ(f.op, WireOp::kPut);
    EXPECT_EQ(static_cast<WireStatus>(f.status), WireStatus::kOk);
    ASSERT_TRUE(c.recvFrame(&frame, &f));
    EXPECT_EQ(f.op, WireOp::kGet);
    EXPECT_EQ(static_cast<WireStatus>(f.status), WireStatus::kOk);

    c.closeConn();
    EXPECT_TRUE(drainsClean());
}

TEST_F(WireServerTest, OversizeLengthPrefixHangsUp)
{
    startServer();
    WireClient c;
    ASSERT_TRUE(connectClient(&c));

    WireWriter w;
    w.begin(WireOp::kPing);
    w.finish();
    std::vector<std::uint8_t> bytes = w.bytes();
    std::uint32_t huge = static_cast<std::uint32_t>(kMaxPayload) + 1;
    std::memcpy(bytes.data() + 8, &huge, sizeof(huge));
    ASSERT_TRUE(c.sendRaw(bytes.data(), bytes.size()));

    std::vector<std::uint8_t> frame;
    FrameView f;
    EXPECT_FALSE(c.recvFrame(&frame, &f)); // server hung up
    EXPECT_TRUE(drainsClean());
    EXPECT_GE(srv_->stats().protocolErrors, 1u);
}

TEST_F(WireServerTest, BadMagicHangsUp)
{
    startServer();
    WireClient c;
    ASSERT_TRUE(connectClient(&c));
    const char junk[] = "GET / HTTP/1.1\r\n\r\n";
    ASSERT_TRUE(c.sendRaw(junk, sizeof(junk) - 1));
    std::vector<std::uint8_t> frame;
    FrameView f;
    EXPECT_FALSE(c.recvFrame(&frame, &f));
    EXPECT_TRUE(drainsClean());
    EXPECT_GE(srv_->stats().protocolErrors, 1u);
}

TEST_F(WireServerTest, UnknownOpcodeAnswersBadRequestStreamLives)
{
    startServer();
    WireClient c;
    ASSERT_TRUE(connectClient(&c));

    WireWriter w;
    w.begin(static_cast<WireOp>(200));
    w.finish();
    ASSERT_TRUE(c.sendFrames(w));
    std::vector<std::uint8_t> frame;
    FrameView f;
    ASSERT_TRUE(c.recvFrame(&frame, &f));
    EXPECT_EQ(static_cast<WireStatus>(f.status),
              WireStatus::kBadRequest);
    EXPECT_EQ(c.ping(), WireStatus::kOk);

    c.closeConn();
    EXPECT_TRUE(drainsClean());
}

TEST_F(WireServerTest, MidTxnDisconnectRollsBackAndFreesTokens)
{
    startServer(2, 2);
    WireClient a;
    ASSERT_TRUE(connectClient(&a));
    ASSERT_EQ(makeTable(&a), WireStatus::kOk);

    std::uint64_t txid = 0;
    ASSERT_EQ(a.begin(false, &txid), WireStatus::kOk);
    ASSERT_EQ(a.put("T", row(1, 1)), WireStatus::kOk);
    ASSERT_EQ(a.put("T", row(2, 2)), WireStatus::kOk);
    EXPECT_GE(db_->detachedCount(), 1u);
    EXPECT_GE(db_->busyWalShards(), 1u);

    a.closeConn(); // abrupt: no commit, no rollback
    EXPECT_TRUE(drainsClean());

    // The bracket rolled back: rows absent, locks and tokens free.
    WireClient b;
    ASSERT_TRUE(connectClient(&b));
    std::vector<DbValue> got;
    EXPECT_EQ(b.get("T", 1, &got), WireStatus::kNotFound);
    EXPECT_EQ(b.put("T", row(1, 5)), WireStatus::kOk);
    EXPECT_EQ(b.get("T", 1, &got), WireStatus::kOk);
    EXPECT_EQ(got[1].i, 5);

    b.closeConn();
    EXPECT_TRUE(drainsClean());
}

TEST_F(WireServerTest, TornFrameMidTxnDisconnectLeaksNothing)
{
    startServer(2, 2);
    WireClient a;
    ASSERT_TRUE(connectClient(&a));
    ASSERT_EQ(makeTable(&a), WireStatus::kOk);

    std::uint64_t txid = 0;
    ASSERT_EQ(a.begin(false, &txid), WireStatus::kOk);
    ASSERT_EQ(a.put("T", row(1, 1)), WireStatus::kOk);

    // Half a frame, then vanish.
    WireWriter w;
    encodePut(w, "T", row(2, 2));
    ASSERT_TRUE(a.sendRaw(w.bytes().data(), w.size() / 2));
    a.closeConn();
    EXPECT_TRUE(drainsClean());

    WireClient b;
    ASSERT_TRUE(connectClient(&b));
    EXPECT_EQ(b.put("T", row(1, 9)), WireStatus::kOk);
    b.closeConn();
    EXPECT_TRUE(drainsClean());
}

TEST_F(WireServerTest, SlowReaderOverflowDisconnects)
{
    startServer();
    WireClient c;
    ASSERT_TRUE(connectClient(&c));
    ASSERT_EQ(c.ping(), WireStatus::kOk);

    // Stream ping floods without ever reading: responses pile into
    // the bounded write buffer past the kernel socket buffers until
    // the server hangs up.
    WireWriter w;
    for (int i = 0; i < 4096; ++i)
        encodePing(w);
    bool closed = false;
    for (int batch = 0; batch < 256 && !closed; ++batch)
        closed = !c.sendFrames(w);
    // Either the send side saw the reset, or the close is in
    // flight; the stat is the contract.
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(10);
    while (srv_->stats().overflowDisconnects == 0 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_GE(srv_->stats().overflowDisconnects, 1u);
    c.closeConn();
    EXPECT_TRUE(drainsClean());
}

} // namespace
} // namespace net
} // namespace espresso
