/**
 * @file
 * Direct unit tests for PJH components that are otherwise covered
 * only through the heap: layout computation, the name table's
 * crash-consistent insertion and probing, the Klass segment's image
 * format and raw readers, and region-size parameterized GC sweeps.
 */

#include <gtest/gtest.h>

#include "core/espresso.hh"
#include "nvm/crash_injector.hh"
#include "pjh/klass_segment.hh"
#include "pjh/name_table.hh"
#include "pjh/pjh_layout.hh"
#include "util/logging.hh"

namespace espresso {
namespace {

TEST(PjhLayoutTest, ComponentsAreOrderedAlignedAndDisjoint)
{
    PjhConfig cfg;
    cfg.dataSize = 8u << 20;
    PjhMetadata meta{};
    std::size_t total = computeLayout(cfg, meta);

    std::vector<std::pair<Word, Word>> spans = {
        {meta.nameTableOff, meta.nameTableCapacity * 128},
        {meta.klassSegOff, meta.klassSegSize},
        {meta.rootJournalOff, meta.rootJournalCapacity * 16},
        {meta.markStartOff, meta.markBytes},
        {meta.markLiveOff, meta.markBytes},
        {meta.regionBitmapOff, meta.regionBitmapBytes},
        {meta.bounceOff, meta.bounceSize},
        {meta.undoLogOff, meta.undoLogSize},
        {meta.dataOff, meta.dataSize},
    };
    Word prev_end = sizeof(PjhMetadata);
    for (auto [off, size] : spans) {
        EXPECT_GE(off, prev_end);
        EXPECT_TRUE(isAligned(off, kCacheLineSize) ||
                    off % kCacheLineSize == 0);
        prev_end = off + size;
    }
    EXPECT_LE(prev_end, total);
    EXPECT_TRUE(isAligned(meta.dataSize, cfg.regionSize));
    // The mark bitmaps must cover the whole data heap.
    EXPECT_GE(meta.markBytes * 8 * MarkBitmap::kGranule, meta.dataSize);
}

class NameTableTest : public ::testing::Test
{
  protected:
    NameTableTest() : dev_(1u << 20)
    {
        table_ = NameTable(&dev_, dev_.toAddr(0), 64);
    }

    NvmDevice dev_;
    NameTable table_;
};

TEST_F(NameTableTest, InsertFindUpdate)
{
    EXPECT_EQ(table_.find("a", NameKind::kRoot), nullptr);
    table_.insert("a", NameKind::kRoot, 0x1000);
    table_.insert("b", NameKind::kKlass, 0x2000);
    ASSERT_NE(table_.find("a", NameKind::kRoot), nullptr);
    EXPECT_EQ(table_.find("a", NameKind::kRoot)->value, 0x1000u);
    // Kinds are separate namespaces.
    EXPECT_EQ(table_.find("a", NameKind::kKlass), nullptr);
    table_.insert("a", NameKind::kKlass, 0x3000);
    EXPECT_EQ(table_.find("a", NameKind::kKlass)->value, 0x3000u);
    EXPECT_EQ(table_.count(), 3u);

    table_.updateValue(table_.find("a", NameKind::kRoot), 0x4000);
    EXPECT_EQ(table_.find("a", NameKind::kRoot)->value, 0x4000u);

    EXPECT_THROW(table_.insert("a", NameKind::kRoot, 1), FatalError);
    EXPECT_THROW(table_.insert("", NameKind::kRoot, 1), FatalError);
    EXPECT_THROW(table_.insert(std::string(200, 'x'), NameKind::kRoot, 1),
                 FatalError);
}

TEST_F(NameTableTest, FillsToCapacityThenFails)
{
    for (int i = 0; i < 64; ++i)
        table_.insert("k" + std::to_string(i), NameKind::kRoot, i);
    EXPECT_EQ(table_.count(), 64u);
    for (int i = 0; i < 64; ++i) {
        ASSERT_NE(table_.find("k" + std::to_string(i), NameKind::kRoot),
                  nullptr);
    }
    EXPECT_THROW(table_.insert("overflow", NameKind::kRoot, 0),
                 FatalError);
}

TEST_F(NameTableTest, TornInsertReadsAsAbsentAfterCrash)
{
    table_.insert("committed", NameKind::kRoot, 7);
    // Sweep crashes across the insert's persistence events.
    for (std::uint64_t event = 1;; ++event) {
        NvmDevice dev(1u << 20);
        NameTable t(&dev, dev.toAddr(0), 64);
        t.insert("committed", NameKind::kRoot, 7);
        CrashInjector inj;
        dev.setInjector(&inj);
        inj.arm(event);
        bool crashed = false;
        try {
            t.insert("torn", NameKind::kRoot, 9);
        } catch (const SimulatedCrash &) {
            crashed = true;
        }
        dev.setInjector(nullptr);
        if (!crashed)
            break;
        dev.crash();
        NameTable t2(&dev, dev.toAddr(0), 64);
        ASSERT_NE(t2.find("committed", NameKind::kRoot), nullptr);
        EXPECT_EQ(t2.find("committed", NameKind::kRoot)->value, 7u);
        // The torn entry is either fully there or fully absent, and
        // the slot is reusable either way.
        NameEntry *torn = t2.find("torn", NameKind::kRoot);
        if (torn)
            EXPECT_EQ(torn->value, 9u);
        else
            t2.insert("torn", NameKind::kRoot, 9);
    }
}

TEST(KlassSegmentTest, ImagesAreSelfDescribing)
{
    EspressoRuntime rt;
    rt.define({"Base", "", {{"x", FieldType::kI64}}, false});
    rt.define({"Derived",
               "Base",
               {{"r", FieldType::kRef}, {"f", FieldType::kF64}},
               true});
    PjhHeap *heap = rt.heaps().createHeap("seg", 1u << 20);

    Oop d = rt.pnewInstance(heap, "Derived");
    ASSERT_TRUE(d.hasKlassImage());
    auto *img = reinterpret_cast<const KlassImage *>(d.klassImage());
    EXPECT_EQ(img->pkr.magic, PersistentKlassRef::kMagic);
    EXPECT_STREQ(img->name, "Derived");
    EXPECT_EQ(img->fieldCount, 3u); // flattened: x, r, f
    EXPECT_FALSE(img->isArray());
    EXPECT_TRUE(img->flags & KlassImage::kFlagPersistentOnly);
    EXPECT_NE(img->superOff, kNoneWord);
    EXPECT_STREQ(img->fields()[0].name, "x");
    EXPECT_EQ(static_cast<FieldType>(img->fields()[1].type),
              FieldType::kRef);

    // Raw readers agree with the bound runtime view.
    EXPECT_EQ(pjhRawObjectSize(d), d.sizeInBytes());
    std::size_t raw_refs = 0;
    pjhRawForEachRefSlot(d, [&](Addr) { ++raw_refs; });
    EXPECT_EQ(raw_refs, d.klass()->refOffsets().size());

    // Arrays carry their element type in flags.
    Oop arr = rt.pnewI64Array(heap, 5);
    auto *aimg = reinterpret_cast<const KlassImage *>(arr.klassImage());
    EXPECT_TRUE(aimg->isArray());
    EXPECT_EQ(aimg->elemType(), FieldType::kI64);
    EXPECT_EQ(pjhRawObjectSize(arr), arr.sizeInBytes());

    // One image per logical class, shared by all instances.
    Oop d2 = rt.pnewInstance(heap, "Derived");
    EXPECT_EQ(d2.klassImage(), d.klassImage());
    EXPECT_EQ(heap->klasses().imageCount(),
              heap->names().count() -
                  0 /* all current entries are Klass entries */);
}

/** GC crash sweeps must hold for every region granularity. */
class RegionSizeGcTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(RegionSizeGcTest, CrashSweepAcrossRegionSizes)
{
    // Coarser sweep than pjh_crash_test (every 7th event) across
    // region sizes that straddle the live-data span.
    for (std::uint64_t event = 5;; event += 7) {
        EspressoRuntime rt;
        rt.define({"Node",
                   "",
                   {{"value", FieldType::kI64},
                    {"next", FieldType::kRef}},
                   false});
        auto voff = rt.fieldOffset("Node", "value");
        auto noff = rt.fieldOffset("Node", "next");
        PjhConfig cfg;
        cfg.dataSize = 2u << 20;
        cfg.regionSize = GetParam();
        PjhHeap *heap = rt.heaps().createHeap("rs", cfg);
        NvmDevice *dev = rt.heaps().deviceOf("rs");

        Oop head;
        for (int i = 29; i >= 0; --i) {
            Oop n = rt.pnewInstance(heap, "Node");
            n.setI64(voff, i);
            n.setRef(noff, head);
            heap->flushObject(n);
            head = n;
            rt.pnewInstance(heap, "Node"); // garbage
        }
        heap->setRoot("head", head);

        CrashInjector inj;
        dev->setInjector(&inj);
        inj.arm(event);
        bool crashed = false;
        try {
            heap->collect(&rt.heap());
        } catch (const SimulatedCrash &) {
            crashed = true;
        }
        inj.disarm();
        if (!crashed)
            break;

        rt.heaps().crashHeap("rs");
        PjhHeap *h2 = rt.heaps().loadHeap("rs");
        Oop cur = h2->getRoot("head");
        for (int i = 0; i < 30; ++i) {
            ASSERT_FALSE(cur.isNull())
                << "region " << GetParam() << " event " << event;
            EXPECT_EQ(cur.getI64(voff), i);
            cur = Oop(cur.getRef(noff));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Granularities, RegionSizeGcTest,
                         ::testing::Values(16u << 10, 64u << 10,
                                           512u << 10),
                         [](const ::testing::TestParamInfo<std::size_t>
                                &info) {
                             return std::to_string(info.param >> 10) +
                                    "KB";
                         });

} // namespace
} // namespace espresso
