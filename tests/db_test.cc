/**
 * @file
 * Mini-H2 tests: value/slot/SQL-literal codecs, lexer and parser,
 * CRUD through both ingress paths, transactions, WAL crash recovery,
 * and catalog persistence.
 */

#include <gtest/gtest.h>

#include "db/database.hh"
#include "db/sql_lexer.hh"
#include "db/sql_parser.hh"
#include "util/logging.hh"

namespace espresso {
namespace db {
namespace {

TEST(ValueCodecTest, SlotRoundTrip)
{
    std::uint8_t slot[kValueSlotBytes];
    for (const DbValue &v :
         {DbValue::null(), DbValue::ofI64(-42),
          DbValue::ofF64(3.25), DbValue::ofStr("hello 'world'"),
          DbValue::ofStr("")}) {
        encodeValueSlot(slot, v);
        EXPECT_TRUE(decodeValueSlot(slot) == v);
    }
    EXPECT_THROW(
        encodeValueSlot(slot, DbValue::ofStr(std::string(60, 'x'))),
        FatalError);
}

TEST(ValueCodecTest, SqlLiteralsEscape)
{
    EXPECT_EQ(toSqlLiteral(DbValue::ofI64(7)), "7");
    EXPECT_EQ(toSqlLiteral(DbValue::null()), "NULL");
    EXPECT_EQ(toSqlLiteral(DbValue::ofStr("o'clock")), "'o''clock'");
}

TEST(SqlLexerTest, TokenKinds)
{
    auto toks = tokenizeSql("SELECT a, b FROM t WHERE x = -3.5");
    ASSERT_GE(toks.size(), 10u);
    EXPECT_EQ(toks[0].kind, TokKind::kIdent);
    EXPECT_EQ(toks[0].text, "SELECT");
    EXPECT_EQ(toks[2].punct, ',');
    auto &last = toks[toks.size() - 2];
    EXPECT_EQ(last.kind, TokKind::kFloat);
    EXPECT_DOUBLE_EQ(last.d, -3.5);
    EXPECT_THROW(tokenizeSql("SELECT 'oops"), FatalError);
}

TEST(SqlParserTest, ParsesAllStatements)
{
    SqlStatement create = parseSql(
        "CREATE TABLE T (ID BIGINT PRIMARY KEY, NAME VARCHAR)");
    EXPECT_EQ(create.kind, SqlStatement::Kind::kCreateTable);
    EXPECT_EQ(create.schema.columns.size(), 2u);
    EXPECT_EQ(create.schema.pkColumn, 0u);

    SqlStatement insert = parseSql(
        "INSERT INTO T (ID, NAME) VALUES (1, 'it''s')");
    EXPECT_EQ(insert.insertValues[1].s, "it's");

    SqlStatement select = parseSql("SELECT * FROM T WHERE ID = 1");
    EXPECT_TRUE(select.selectAll);
    EXPECT_TRUE(select.hasWhere);
    EXPECT_EQ(select.whereValue.i, 1);

    SqlStatement update =
        parseSql("UPDATE T SET NAME = 'x' WHERE ID = 2");
    EXPECT_EQ(update.assignments.size(), 1u);

    SqlStatement del = parseSql("DELETE FROM T WHERE ID = 3");
    EXPECT_EQ(del.kind, SqlStatement::Kind::kDelete);

    EXPECT_THROW(parseSql("DROP TABLE T"), FatalError);
    EXPECT_THROW(parseSql("UPDATE T SET NAME = 'x'"), FatalError);
}

class DatabaseTest : public ::testing::Test
{
  protected:
    DatabaseTest()
    {
        DatabaseConfig cfg;
        cfg.rowRegionSize = 8u << 20;
        cfg.rowsPerTable = 512;
        db_ = std::make_unique<Database>(cfg);
        db_->executeSql("CREATE TABLE PERSON (ID BIGINT PRIMARY KEY, "
                        "NAME VARCHAR, AGE BIGINT)");
    }

    std::unique_ptr<Database> db_;
};

TEST_F(DatabaseTest, SqlCrudRoundTrip)
{
    db_->executeSql(
        "INSERT INTO PERSON (ID, NAME, AGE) VALUES (1, 'Ann', 30)");
    db_->executeSql(
        "INSERT INTO PERSON (ID, NAME, AGE) VALUES (2, 'Bob', 40)");

    ResultSet rs = db_->executeSql("SELECT * FROM PERSON WHERE ID = 1");
    ASSERT_EQ(rs.rows.size(), 1u);
    EXPECT_EQ(rs.rows[0][1].s, "Ann");
    EXPECT_EQ(rs.rows[0][2].i, 30);

    db_->executeSql("UPDATE PERSON SET AGE = 31 WHERE ID = 1");
    rs = db_->executeSql("SELECT AGE FROM PERSON WHERE ID = 1");
    EXPECT_EQ(rs.rows[0][0].i, 31);

    ResultSet all = db_->executeSql("SELECT * FROM PERSON");
    EXPECT_EQ(all.rows.size(), 2u);

    db_->executeSql("DELETE FROM PERSON WHERE ID = 2");
    EXPECT_EQ(db_->rowCount("PERSON"), 1u);

    EXPECT_THROW(db_->executeSql(
                     "INSERT INTO PERSON (ID, NAME, AGE) VALUES "
                     "(1, 'dup', 0)"),
                 FatalError);
}

TEST_F(DatabaseTest, DirectRecordPathMatchesSqlPath)
{
    DbRecord rec;
    rec.values = {DbValue::ofI64(5), DbValue::ofStr("Eve"),
                  DbValue::ofI64(25)};
    db_->persistRecord("PERSON", rec);

    ResultSet rs = db_->executeSql("SELECT * FROM PERSON WHERE ID = 5");
    ASSERT_EQ(rs.rows.size(), 1u);
    EXPECT_EQ(rs.rows[0][1].s, "Eve");

    // Masked update: only AGE.
    DbRecord up;
    up.values = {DbValue::ofI64(5), DbValue::ofStr("IGNORED"),
                 DbValue::ofI64(26)};
    up.dirtyMask = 1ull << 2;
    db_->persistRecord("PERSON", up);
    DbRecord out;
    ASSERT_TRUE(db_->fetchRecord("PERSON", 5, &out));
    EXPECT_EQ(out.values[1].s, "Eve"); // untouched
    EXPECT_EQ(out.values[2].i, 26);

    EXPECT_TRUE(db_->deleteRecord("PERSON", 5));
    EXPECT_FALSE(db_->fetchRecord("PERSON", 5, &out));
}

TEST_F(DatabaseTest, ScanEq)
{
    for (int i = 0; i < 20; ++i) {
        DbRecord rec;
        rec.values = {DbValue::ofI64(i),
                      DbValue::ofStr(i % 2 ? "odd" : "even"),
                      DbValue::ofI64(i)};
        db_->persistRecord("PERSON", rec);
    }
    int odd = 0;
    db_->scanEq("PERSON", "NAME", DbValue::ofStr("odd"),
                [&](const std::vector<DbValue> &) { ++odd; });
    EXPECT_EQ(odd, 10);
}

TEST_F(DatabaseTest, ExplicitTransactionRollback)
{
    db_->executeSql(
        "INSERT INTO PERSON (ID, NAME, AGE) VALUES (1, 'Ann', 30)");
    db_->begin();
    db_->executeSql("UPDATE PERSON SET AGE = 99 WHERE ID = 1");
    db_->executeSql(
        "INSERT INTO PERSON (ID, NAME, AGE) VALUES (2, 'Tmp', 0)");
    db_->rollback();

    ResultSet rs = db_->executeSql("SELECT AGE FROM PERSON WHERE ID = 1");
    EXPECT_EQ(rs.rows[0][0].i, 30);
    EXPECT_EQ(db_->rowCount("PERSON"), 1u);
}

TEST_F(DatabaseTest, CommittedDataSurvivesCrash)
{
    db_->executeSql(
        "INSERT INTO PERSON (ID, NAME, AGE) VALUES (1, 'Ann', 30)");
    db_->crash();
    ResultSet rs = db_->executeSql("SELECT * FROM PERSON WHERE ID = 1");
    ASSERT_EQ(rs.rows.size(), 1u);
    EXPECT_EQ(rs.rows[0][1].s, "Ann");
    // Schema survived too (catalog reload).
    EXPECT_EQ(db_->catalog().tables().size(), 1u);
}

TEST_F(DatabaseTest, OpenTransactionRollsBackAcrossCrash)
{
    db_->executeSql(
        "INSERT INTO PERSON (ID, NAME, AGE) VALUES (1, 'Ann', 30)");
    db_->begin();
    db_->executeSql("UPDATE PERSON SET AGE = 99 WHERE ID = 1");
    db_->crash(); // commit never happened

    ResultSet rs = db_->executeSql("SELECT AGE FROM PERSON WHERE ID = 1");
    ASSERT_EQ(rs.rows.size(), 1u);
    EXPECT_EQ(rs.rows[0][0].i, 30);
}

TEST_F(DatabaseTest, TableCapacityIsEnforced)
{
    DatabaseConfig tiny;
    tiny.rowRegionSize = 1u << 20;
    tiny.rowsPerTable = 4;
    Database small(tiny);
    small.executeSql("CREATE TABLE T (ID BIGINT PRIMARY KEY)");
    for (int i = 0; i < 4; ++i)
        small.executeSql("INSERT INTO T (ID) VALUES (" +
                         std::to_string(i) + ")");
    EXPECT_THROW(small.executeSql("INSERT INTO T (ID) VALUES (99)"),
                 FatalError);
}

} // namespace
} // namespace db
} // namespace espresso
