/**
 * @file
 * Mini-H2 tests: value/slot/SQL-literal codecs, lexer and parser,
 * CRUD through both ingress paths, transactions, WAL crash recovery,
 * catalog persistence, and the PR 6 surface — explicit Txn handles
 * with unified Status codes, snapshot isolation (single-engine and
 * cross-shard), first-committer-wins conflicts, and deadlock
 * detection.
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <thread>

#include "db/database.hh"
#include "db/sharded_database.hh"
#include "db/sql_lexer.hh"
#include "db/sql_parser.hh"
#include "db/wal.hh"
#include "runtime/oop.hh"
#include "util/logging.hh"

namespace espresso {
namespace db {
namespace {

TEST(ValueCodecTest, SlotRoundTrip)
{
    std::uint8_t slot[kValueSlotBytes];
    for (const DbValue &v :
         {DbValue::null(), DbValue::ofI64(-42),
          DbValue::ofF64(3.25), DbValue::ofStr("hello 'world'"),
          DbValue::ofStr("")}) {
        encodeValueSlot(slot, v);
        EXPECT_TRUE(decodeValueSlot(slot) == v);
    }
    EXPECT_THROW(
        encodeValueSlot(slot, DbValue::ofStr(std::string(60, 'x'))),
        FatalError);
}

TEST(ValueCodecTest, SqlLiteralsEscape)
{
    EXPECT_EQ(toSqlLiteral(DbValue::ofI64(7)), "7");
    EXPECT_EQ(toSqlLiteral(DbValue::null()), "NULL");
    EXPECT_EQ(toSqlLiteral(DbValue::ofStr("o'clock")), "'o''clock'");
}

TEST(SqlLexerTest, TokenKinds)
{
    auto toks = tokenizeSql("SELECT a, b FROM t WHERE x = -3.5");
    ASSERT_GE(toks.size(), 10u);
    EXPECT_EQ(toks[0].kind, TokKind::kIdent);
    EXPECT_EQ(toks[0].text, "SELECT");
    EXPECT_EQ(toks[2].punct, ',');
    auto &last = toks[toks.size() - 2];
    EXPECT_EQ(last.kind, TokKind::kFloat);
    EXPECT_DOUBLE_EQ(last.d, -3.5);
    EXPECT_THROW(tokenizeSql("SELECT 'oops"), FatalError);
}

TEST(SqlParserTest, ParsesAllStatements)
{
    SqlStatement create = parseSql(
        "CREATE TABLE T (ID BIGINT PRIMARY KEY, NAME VARCHAR)");
    EXPECT_EQ(create.kind, SqlStatement::Kind::kCreateTable);
    EXPECT_EQ(create.schema.columns.size(), 2u);
    EXPECT_EQ(create.schema.pkColumn, 0u);

    SqlStatement insert = parseSql(
        "INSERT INTO T (ID, NAME) VALUES (1, 'it''s')");
    EXPECT_EQ(insert.insertValues[1].s, "it's");

    SqlStatement select = parseSql("SELECT * FROM T WHERE ID = 1");
    EXPECT_TRUE(select.selectAll);
    EXPECT_TRUE(select.hasWhere);
    EXPECT_EQ(select.whereValue.i, 1);

    SqlStatement update =
        parseSql("UPDATE T SET NAME = 'x' WHERE ID = 2");
    EXPECT_EQ(update.assignments.size(), 1u);

    SqlStatement del = parseSql("DELETE FROM T WHERE ID = 3");
    EXPECT_EQ(del.kind, SqlStatement::Kind::kDelete);

    EXPECT_THROW(parseSql("DROP TABLE T"), FatalError);
    EXPECT_THROW(parseSql("UPDATE T SET NAME = 'x'"), FatalError);
}

class DatabaseTest : public ::testing::Test
{
  protected:
    DatabaseTest()
    {
        DatabaseConfig cfg;
        cfg.rowRegionSize = 8u << 20;
        cfg.rowsPerTable = 512;
        db_ = std::make_unique<Database>(cfg);
        db_->executeSql("CREATE TABLE PERSON (ID BIGINT PRIMARY KEY, "
                        "NAME VARCHAR, AGE BIGINT)");
    }

    std::unique_ptr<Database> db_;
};

TEST_F(DatabaseTest, SqlCrudRoundTrip)
{
    db_->executeSql(
        "INSERT INTO PERSON (ID, NAME, AGE) VALUES (1, 'Ann', 30)");
    db_->executeSql(
        "INSERT INTO PERSON (ID, NAME, AGE) VALUES (2, 'Bob', 40)");

    ResultSet rs = db_->executeSql("SELECT * FROM PERSON WHERE ID = 1");
    ASSERT_EQ(rs.rows.size(), 1u);
    EXPECT_EQ(rs.rows[0][1].s, "Ann");
    EXPECT_EQ(rs.rows[0][2].i, 30);

    db_->executeSql("UPDATE PERSON SET AGE = 31 WHERE ID = 1");
    rs = db_->executeSql("SELECT AGE FROM PERSON WHERE ID = 1");
    EXPECT_EQ(rs.rows[0][0].i, 31);

    ResultSet all = db_->executeSql("SELECT * FROM PERSON");
    EXPECT_EQ(all.rows.size(), 2u);

    db_->executeSql("DELETE FROM PERSON WHERE ID = 2");
    EXPECT_EQ(db_->rowCount("PERSON"), 1u);

    EXPECT_THROW(db_->executeSql(
                     "INSERT INTO PERSON (ID, NAME, AGE) VALUES "
                     "(1, 'dup', 0)"),
                 FatalError);
}

TEST_F(DatabaseTest, DirectRecordPathMatchesSqlPath)
{
    DbRecord rec;
    rec.values = {DbValue::ofI64(5), DbValue::ofStr("Eve"),
                  DbValue::ofI64(25)};
    db_->persistRecord("PERSON", rec);

    ResultSet rs = db_->executeSql("SELECT * FROM PERSON WHERE ID = 5");
    ASSERT_EQ(rs.rows.size(), 1u);
    EXPECT_EQ(rs.rows[0][1].s, "Eve");

    // Masked update: only AGE.
    DbRecord up;
    up.values = {DbValue::ofI64(5), DbValue::ofStr("IGNORED"),
                 DbValue::ofI64(26)};
    up.dirtyMask = 1ull << 2;
    db_->persistRecord("PERSON", up);
    DbRecord out;
    ASSERT_TRUE(db_->fetchRecord("PERSON", 5, &out));
    EXPECT_EQ(out.values[1].s, "Eve"); // untouched
    EXPECT_EQ(out.values[2].i, 26);

    EXPECT_TRUE(db_->deleteRecord("PERSON", 5));
    EXPECT_FALSE(db_->fetchRecord("PERSON", 5, &out));
}

TEST_F(DatabaseTest, ScanEq)
{
    for (int i = 0; i < 20; ++i) {
        DbRecord rec;
        rec.values = {DbValue::ofI64(i),
                      DbValue::ofStr(i % 2 ? "odd" : "even"),
                      DbValue::ofI64(i)};
        db_->persistRecord("PERSON", rec);
    }
    int odd = 0;
    db_->scanEq("PERSON", "NAME", DbValue::ofStr("odd"),
                [&](const std::vector<DbValue> &) { ++odd; });
    EXPECT_EQ(odd, 10);
}

TEST_F(DatabaseTest, ExplicitTransactionRollback)
{
    db_->executeSql(
        "INSERT INTO PERSON (ID, NAME, AGE) VALUES (1, 'Ann', 30)");
    db_->begin();
    db_->executeSql("UPDATE PERSON SET AGE = 99 WHERE ID = 1");
    db_->executeSql(
        "INSERT INTO PERSON (ID, NAME, AGE) VALUES (2, 'Tmp', 0)");
    db_->rollback();

    ResultSet rs = db_->executeSql("SELECT AGE FROM PERSON WHERE ID = 1");
    EXPECT_EQ(rs.rows[0][0].i, 30);
    EXPECT_EQ(db_->rowCount("PERSON"), 1u);
}

TEST_F(DatabaseTest, CommittedDataSurvivesCrash)
{
    db_->executeSql(
        "INSERT INTO PERSON (ID, NAME, AGE) VALUES (1, 'Ann', 30)");
    db_->crash();
    ResultSet rs = db_->executeSql("SELECT * FROM PERSON WHERE ID = 1");
    ASSERT_EQ(rs.rows.size(), 1u);
    EXPECT_EQ(rs.rows[0][1].s, "Ann");
    // Schema survived too (catalog reload).
    EXPECT_EQ(db_->catalog().tables().size(), 1u);
}

TEST_F(DatabaseTest, OpenTransactionRollsBackAcrossCrash)
{
    db_->executeSql(
        "INSERT INTO PERSON (ID, NAME, AGE) VALUES (1, 'Ann', 30)");
    db_->begin();
    db_->executeSql("UPDATE PERSON SET AGE = 99 WHERE ID = 1");
    db_->crash(); // commit never happened

    ResultSet rs = db_->executeSql("SELECT AGE FROM PERSON WHERE ID = 1");
    ASSERT_EQ(rs.rows.size(), 1u);
    EXPECT_EQ(rs.rows[0][0].i, 30);
}

TEST_F(DatabaseTest, WalDedupSkipsRepeatedRanges)
{
    db_->executeSql(
        "INSERT INTO PERSON (ID, NAME, AGE) VALUES (1, 'Ann', 30)");
    db_->begin();
    db_->executeSql("UPDATE PERSON SET AGE = 1 WHERE ID = 1");
    WalShard &shard = db_->wal().shard(db_->currentTxShard());
    std::size_t used_after_first = shard.bytesUsed();
    std::size_t count_after_first = shard.entryCount();
    ASSERT_GT(used_after_first, 0u);
    for (int i = 2; i <= 50; ++i) {
        db_->executeSql("UPDATE PERSON SET AGE = " + std::to_string(i) +
                        " WHERE ID = 1");
    }
    // Hot-row rewrites must not re-log the same old image.
    EXPECT_EQ(shard.bytesUsed(), used_after_first);
    EXPECT_EQ(shard.entryCount(), count_after_first);
    db_->commit();
    ResultSet rs = db_->executeSql("SELECT AGE FROM PERSON WHERE ID = 1");
    EXPECT_EQ(rs.rows[0][0].i, 50);

    // ... and rollback restores the pre-transaction image, not an
    // intermediate one.
    db_->begin();
    db_->executeSql("UPDATE PERSON SET AGE = 98 WHERE ID = 1");
    db_->executeSql("UPDATE PERSON SET AGE = 99 WHERE ID = 1");
    db_->rollback();
    rs = db_->executeSql("SELECT AGE FROM PERSON WHERE ID = 1");
    EXPECT_EQ(rs.rows[0][0].i, 50);
}

TEST(WalRecoveryTest, LogFullRollsBackRecoverably)
{
    DatabaseConfig cfg;
    cfg.rowRegionSize = 2u << 20;
    cfg.rowsPerTable = 128;
    cfg.walSize = 4096; // tiny: a few row images fill a segment
    cfg.walShards = 1;
    Database db(cfg);
    db.executeSql("CREATE TABLE T (ID BIGINT PRIMARY KEY, V BIGINT)");
    for (int i = 0; i < 64; ++i)
        db.executeSql("INSERT INTO T (ID, V) VALUES (" +
                      std::to_string(i) + ", 0)");

    // A transaction touching more rows than the segment holds must
    // roll back — and the process (and database) must survive.
    db.begin();
    bool full = false;
    for (int i = 0; i < 64 && !full; ++i) {
        try {
            db.executeSql("UPDATE T SET V = 1 WHERE ID = " +
                          std::to_string(i));
        } catch (const FatalError &) {
            full = true;
        }
    }
    ASSERT_TRUE(full);
    EXPECT_EQ(db.lastTxOutcome(), TxOutcome::kRolledBackWalFull);
    EXPECT_FALSE(db.inTransaction());
    // rollback() after the engine's own rollback is a quiet no-op;
    // commit() of the dead transaction reports the outcome.
    db.rollback();
    EXPECT_THROW(
        {
            db.begin();
            db.executeSql("UPDATE T SET V = 2 WHERE ID = 0");
            // Refill the segment to force another mid-txn abort.
            for (int i = 1; i < 64; ++i)
                db.executeSql("UPDATE T SET V = 2 WHERE ID = " +
                              std::to_string(i));
            db.commit();
        },
        FatalError);

    // Every update the failed transactions made was undone.
    ResultSet rs = db.executeSql("SELECT * FROM T");
    ASSERT_EQ(rs.rows.size(), 64u);
    for (const auto &row : rs.rows)
        EXPECT_EQ(row[1].i, 0) << "row " << row[0].i;

    // The database stays fully usable.
    db.executeSql("INSERT INTO T (ID, V) VALUES (1000, 7)");
    EXPECT_EQ(db.rowCount("T"), 65u);
    db.begin();
    db.executeSql("UPDATE T SET V = 3 WHERE ID = 0");
    db.commit();
    rs = db.executeSql("SELECT V FROM T WHERE ID = 0");
    EXPECT_EQ(rs.rows[0][0].i, 3);
}

TEST(WalRecoveryTest, CorruptHeaderIsDiscardedNotWalked)
{
    setWarningsEnabled(false);
    NvmDevice dev(1u << 20);
    Addr data = dev.toAddr(512 * 1024);
    for (int i = 0; i < 64; ++i)
        *reinterpret_cast<std::uint8_t *>(data + i) = 0xAA;
    dev.persist(data, 64);

    Wal wal(&dev, dev.toAddr(0), 64 * 1024, 4);
    WalShard &shard = wal.shard(0);
    shard.begin();
    shard.logRange(data, 64);
    for (int i = 0; i < 64; ++i)
        *reinterpret_cast<std::uint8_t *>(data + i) = 0xBB;
    dev.persist(data, 64);

    // Scribble garbage over the segment header's count/used words
    // (a torn header line) and persist the damage.
    Addr hb = shard.segmentBase();
    storeWord(hb + 8, ~0ull);  // count
    storeWord(hb + 16, ~0ull); // used
    dev.persist(hb, 64);

    // Recovery must neither crash nor walk the garbage...
    wal.recover();
    EXPECT_FALSE(shard.active());
    // ...and must not have "restored" anything from a bogus walk.
    EXPECT_EQ(*reinterpret_cast<std::uint8_t *>(data), 0xBB);

    // The discarded segment is reusable.
    shard.begin();
    shard.logRange(data, 64);
    shard.commitEager();
    EXPECT_FALSE(shard.active());
    setWarningsEnabled(true);
}

TEST(WalRecoveryTest, TornTailEntryIsSkippedValidPrefixRollsBack)
{
    setWarningsEnabled(false);
    NvmDevice dev(1u << 20);
    Addr r1 = dev.toAddr(512 * 1024);
    Addr r2 = dev.toAddr(512 * 1024 + 4096);
    for (int i = 0; i < 64; ++i) {
        *reinterpret_cast<std::uint8_t *>(r1 + i) = 0x11;
        *reinterpret_cast<std::uint8_t *>(r2 + i) = 0x22;
    }
    dev.persist(r1, 64);
    dev.persist(r2, 64);

    Wal wal(&dev, dev.toAddr(0), 64 * 1024, 1);
    WalShard &shard = wal.shard(0);
    shard.begin();
    shard.logRange(r1, 64);
    shard.logRange(r2, 64);
    for (int i = 0; i < 64; ++i) {
        *reinterpret_cast<std::uint8_t *>(r1 + i) = 0x33;
        *reinterpret_cast<std::uint8_t *>(r2 + i) = 0x44;
    }
    dev.persist(r1, 64);
    dev.persist(r2, 64);

    // Corrupt the tail entry's payload (entry layout: 32-byte fields
    // + 64-byte image; the second entry starts at +96).
    Addr tail_payload = shard.segmentBase() + kCacheLineSize + 96 + 32;
    *reinterpret_cast<std::uint8_t *>(tail_payload + 5) ^= 0xFF;
    dev.persist(tail_payload, 64);

    wal.recover();
    EXPECT_FALSE(shard.active());
    // The valid prefix rolled back; the torn tail was skipped.
    EXPECT_EQ(*reinterpret_cast<std::uint8_t *>(r1), 0x11);
    EXPECT_EQ(*reinterpret_cast<std::uint8_t *>(r2), 0x44);
    setWarningsEnabled(true);
}

TEST_F(DatabaseTest, UncommittedDeleteKeepsPkReserved)
{
    db_->executeSql(
        "INSERT INTO PERSON (ID, NAME, AGE) VALUES (1, 'Ann', 30)");
    db_->begin();
    EXPECT_TRUE(db_->deleteRecord("PERSON", 1));
    DbRecord out;
    EXPECT_FALSE(db_->fetchRecord("PERSON", 1, &out));

    // Another thread's insert of the reserved pk must be refused
    // while the delete is uncommitted — otherwise this rollback
    // would resurrect the old row on top of it.
    std::thread intruder([&]() {
        EXPECT_THROW(db_->executeSql("INSERT INTO PERSON (ID, NAME, "
                                     "AGE) VALUES (1, 'Zoe', 1)"),
                     FatalError);
    });
    intruder.join();

    db_->rollback();
    ASSERT_TRUE(db_->fetchRecord("PERSON", 1, &out));
    EXPECT_EQ(out.values[1].s, "Ann");
    EXPECT_EQ(db_->rowCount("PERSON"), 1u);
}

TEST_F(DatabaseTest, DeleteThenReinsertSamePkInOneTransaction)
{
    db_->executeSql(
        "INSERT INTO PERSON (ID, NAME, AGE) VALUES (1, 'Ann', 30)");

    db_->begin();
    EXPECT_TRUE(db_->deleteRecord("PERSON", 1));
    DbRecord rec;
    rec.values = {DbValue::ofI64(1), DbValue::ofStr("Ann2"),
                  DbValue::ofI64(31)};
    db_->persistRecord("PERSON", rec);
    db_->commit();

    DbRecord out;
    ASSERT_TRUE(db_->fetchRecord("PERSON", 1, &out));
    EXPECT_EQ(out.values[1].s, "Ann2");
    EXPECT_EQ(db_->rowCount("PERSON"), 1u);

    // The rolled-back variant restores the original row.
    db_->begin();
    EXPECT_TRUE(db_->deleteRecord("PERSON", 1));
    rec.values[1] = DbValue::ofStr("Ann3");
    db_->persistRecord("PERSON", rec);
    db_->rollback();
    ASSERT_TRUE(db_->fetchRecord("PERSON", 1, &out));
    EXPECT_EQ(out.values[1].s, "Ann2");
    EXPECT_EQ(db_->rowCount("PERSON"), 1u);

    // Durable too.
    db_->crash();
    ASSERT_TRUE(db_->fetchRecord("PERSON", 1, &out));
    EXPECT_EQ(out.values[1].s, "Ann2");
}

TEST(SamePkContentionTest, ConcurrentWritersOnOneKeyStayConsistent)
{
    DatabaseConfig cfg;
    cfg.rowRegionSize = 2u << 20;
    cfg.rowsPerTable = 64;
    cfg.walShards = 8;
    Database db(cfg);
    db.executeSql("CREATE TABLE T (ID BIGINT PRIMARY KEY, V BIGINT)");
    db.executeSql("INSERT INTO T (ID, V) VALUES (7, 0)");

    constexpr int kThreads = 4;
    constexpr int kIters = 60;
    std::atomic<bool> go{false};
    std::atomic<int> failures{0};
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t]() {
            while (!go.load(std::memory_order_acquire))
                std::this_thread::yield();
            for (int i = 0; i < kIters; ++i) {
                try {
                    db.begin();
                    if ((t + i) % 3 == 0) {
                        // delete + re-insert the hot key
                        if (db.deleteRecord("T", 7)) {
                            DbRecord rec;
                            rec.values = {DbValue::ofI64(7),
                                          DbValue::ofI64(t * 1000 + i)};
                            db.persistRecord("T", rec);
                        }
                        db.commit();
                    } else if ((t + i) % 3 == 1) {
                        DbRecord rec;
                        rec.values = {DbValue::ofI64(7),
                                      DbValue::ofI64(t * 1000 + i)};
                        rec.dirtyMask = 1ull << 1;
                        db.persistRecord("T", rec);
                        db.commit();
                    } else {
                        DbRecord rec;
                        rec.values = {DbValue::ofI64(7),
                                      DbValue::ofI64(-1)};
                        rec.dirtyMask = 1ull << 1;
                        db.persistRecord("T", rec);
                        db.rollback();
                    }
                } catch (const FatalError &) {
                    // A racing delete may briefly reserve the pk;
                    // the transaction was rolled back for us or the
                    // statement refused — both leave the db intact.
                    if (db.inTransaction())
                        db.rollback();
                    failures.fetch_add(1);
                }
            }
        });
    }
    go.store(true, std::memory_order_release);
    for (auto &w : workers)
        w.join();

    // Exactly one live row with pk 7, holding one writer's committed
    // value — never a duplicate, never a resurrected ghost.
    EXPECT_EQ(db.rowCount("T"), 1u);
    ResultSet rs = db.executeSql("SELECT * FROM T");
    ASSERT_EQ(rs.rows.size(), 1u);
    EXPECT_EQ(rs.rows[0][0].i, 7);
    db.crash(CrashMode::kEvictRandomLines, 99);
    EXPECT_EQ(db.rowCount("T"), 1u);
    EXPECT_EQ(db.executeSql("SELECT * FROM T").rows.size(), 1u);
}

TEST(GroupCommitTest, ConcurrentCommittersShareOneDrain)
{
    DatabaseConfig cfg;
    cfg.rowRegionSize = 2u << 20;
    cfg.rowsPerTable = 256;
    cfg.walShards = 8;
    // Very generous: determinism first — the quiet period (window/4)
    // must exceed any TSan/CI scheduling hiccup between commits.
    cfg.groupCommitWindowUs = 4000000;
    Database db(cfg);
    db.executeSql("CREATE TABLE T (ID BIGINT PRIMARY KEY, V BIGINT)");

    constexpr int kThreads = 4;
    CommitCoordinator::Stats before = db.commitCoordinator().stats();
    std::atomic<int> staged{0};
    std::atomic<bool> go{false};
    std::atomic<std::uint64_t> fences_at_barrier{0};
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t]() {
            db.begin();
            DbRecord rec;
            rec.values = {DbValue::ofI64(t), DbValue::ofI64(100 + t)};
            db.persistRecord("T", rec);
            staged.fetch_add(1);
            while (!go.load(std::memory_order_acquire))
                std::this_thread::yield();
            db.commit();
        });
    }
    while (staged.load() != kThreads)
        std::this_thread::yield();
    fences_at_barrier = db.device().stats().fences.load();
    go.store(true, std::memory_order_release);
    for (auto &w : workers)
        w.join();

    // All K transactions were in flight when the leader formed its
    // batch, so the whole group drained in one cycle: two fences
    // (images, then commit records), regardless of K.
    CommitCoordinator::Stats after = db.commitCoordinator().stats();
    EXPECT_EQ(after.batches - before.batches, 1u);
    EXPECT_EQ(after.maxBatch, static_cast<std::uint64_t>(kThreads));
    EXPECT_EQ(db.device().stats().fences.load() - fences_at_barrier,
              2u);

    // ... and all K transactions are durable.
    db.crash(CrashMode::kDiscardUnflushed);
    for (int t = 0; t < kThreads; ++t) {
        ResultSet rs = db.executeSql("SELECT V FROM T WHERE ID = " +
                                     std::to_string(t));
        ASSERT_EQ(rs.rows.size(), 1u) << "txn " << t << " lost";
        EXPECT_EQ(rs.rows[0][0].i, 100 + t);
    }
}

TEST(GroupCommitTest, AutoWindowDegeneratesToEagerWhenUncontended)
{
    DatabaseConfig cfg;
    cfg.rowRegionSize = 2u << 20;
    cfg.rowsPerTable = 256;
    cfg.walShards = 8;
    cfg.groupCommitWindowUs = DatabaseConfig::kWindowAuto;
    Database db(cfg);
    EXPECT_EQ(db.commitCoordinator().windowNs(),
              CommitCoordinator::kAutoWindow);
    db.executeSql("CREATE TABLE T (ID BIGINT PRIMARY KEY, V BIGINT)");

    // Phase 1: one committer. Auto must behave exactly like eager —
    // every commit drains alone, immediately, and the derived window
    // is zero (there is nobody to coalesce with).
    CommitCoordinator::Stats before = db.commitCoordinator().stats();
    constexpr int kSeq = 8;
    for (int i = 0; i < kSeq; ++i) {
        db.begin();
        DbRecord rec;
        rec.values = {DbValue::ofI64(i), DbValue::ofI64(i)};
        db.persistRecord("T", rec);
        db.commit();
    }
    CommitCoordinator::Stats mid = db.commitCoordinator().stats();
    EXPECT_EQ(mid.txns - before.txns, static_cast<std::uint64_t>(kSeq));
    EXPECT_EQ(mid.batches - before.batches,
              static_cast<std::uint64_t>(kSeq));
    EXPECT_EQ(mid.maxBatch, 1u);
    EXPECT_EQ(db.commitCoordinator().effectiveWindowNs(), 0u);
    EXPECT_EQ(db.commitCoordinator().stats().autoWindowNs, 0u);

    // Phase 2: four in-flight committers parked at a barrier. The
    // EWMA has seen the phase-1 arrival gaps, so with inflight > 1
    // the derived window must open up (and be published in stats).
    constexpr int kThreads = 4;
    std::atomic<int> staged{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t]() {
            db.begin();
            DbRecord rec;
            rec.values = {DbValue::ofI64(100 + t), DbValue::ofI64(t)};
            db.persistRecord("T", rec);
            staged.fetch_add(1);
            while (!go.load(std::memory_order_acquire))
                std::this_thread::yield();
            db.commit();
        });
    }
    while (staged.load() != kThreads)
        std::this_thread::yield();
    EXPECT_GT(db.commitCoordinator().effectiveWindowNs(), 0u);
    EXPECT_GT(db.commitCoordinator().stats().autoWindowNs, 0u);
    EXPECT_LE(db.commitCoordinator().stats().autoWindowNs,
              CommitCoordinator::kAutoMaxWindowNs);
    go.store(true, std::memory_order_release);
    for (auto &w : workers)
        w.join();
    CommitCoordinator::Stats after = db.commitCoordinator().stats();
    EXPECT_EQ(after.txns - mid.txns,
              static_cast<std::uint64_t>(kThreads));
    EXPECT_EQ(db.rowCount("T"), static_cast<std::size_t>(kSeq + kThreads));
}

TEST(GroupCommitTest, AutoWindowResolvesFromEnv)
{
    ASSERT_EQ(::setenv("ESPRESSO_DB_GROUP_COMMIT", "auto", 1), 0);
    DatabaseConfig cfg;
    cfg.rowRegionSize = 2u << 20;
    cfg.rowsPerTable = 256;
    {
        Database db(cfg);
        EXPECT_EQ(db.commitCoordinator().windowNs(),
                  CommitCoordinator::kAutoWindow);
    }
    ::unsetenv("ESPRESSO_DB_GROUP_COMMIT");
}

// ---------------------------------------------------------------------
// Detached sessions: the wire front door's transferable transactions
// ---------------------------------------------------------------------

TEST(DetachedSessionTest, BracketTransfersAcrossThreads)
{
    DatabaseConfig cfg;
    cfg.rowRegionSize = 2u << 20;
    cfg.rowsPerTable = 256;
    cfg.walShards = 4;
    cfg.groupCommitWindowUs = 0;
    Database db(cfg);
    db.executeSql("CREATE TABLE T (ID BIGINT PRIMARY KEY, V BIGINT)");

    // Thread A opens the session and stages the first write.
    std::uint64_t sid = 0;
    std::thread a([&]() {
        ASSERT_TRUE(db.beginDetached({}, &sid).isOk());
        ASSERT_TRUE(db.bindDetached(sid));
        DbRecord rec;
        rec.values = {DbValue::ofI64(1), DbValue::ofI64(10)};
        db.persistRecord("T", rec);
        db.unbindDetached(sid);
    });
    a.join();
    ASSERT_NE(sid, 0u);
    EXPECT_EQ(db.detachedCount(), 1u);
    EXPECT_GE(db.busyWalShards(), 1u);

    // Thread B adopts it mid-flight: it sees A's uncommitted write
    // from inside the same transaction and stages another.
    std::thread b([&]() {
        ASSERT_TRUE(db.bindDetached(sid));
        DbRecord out;
        ASSERT_TRUE(db.fetchRecord("T", 1, &out));
        EXPECT_EQ(out.values[1].i, 10);
        DbRecord rec;
        rec.values = {DbValue::ofI64(2), DbValue::ofI64(20)};
        db.persistRecord("T", rec);
        db.unbindDetached(sid);
    });
    b.join();

    // A session bound nowhere commits from any thread — C never
    // executed a statement of it.
    std::thread c([&]() {
        EXPECT_TRUE(db.commitDetached(sid).isOk());
    });
    c.join();

    EXPECT_EQ(db.detachedCount(), 0u);
    EXPECT_EQ(db.busyWalShards(), 0u);
    DbRecord out;
    ASSERT_TRUE(db.fetchRecord("T", 1, &out));
    EXPECT_EQ(out.values[1].i, 10);
    ASSERT_TRUE(db.fetchRecord("T", 2, &out));
    EXPECT_EQ(out.values[1].i, 20);

    // Both writes rode one transaction: atomic across the transfer.
    db.crash(CrashMode::kDiscardUnflushed);
    EXPECT_EQ(db.rowCount("T"), 2u);

    // A double bind from a second thread while bound elsewhere is
    // refused, not fatal.
    std::uint64_t sid2 = 0;
    ASSERT_TRUE(db.beginDetached({}, &sid2).isOk());
    ASSERT_TRUE(db.bindDetached(sid2));
    std::thread d([&]() { EXPECT_FALSE(db.bindDetached(sid2)); });
    d.join();
    db.unbindDetached(sid2);
    EXPECT_TRUE(db.rollbackDetached(sid2).isOk());
    EXPECT_EQ(db.busyWalShards(), 0u);
}

TEST_F(DatabaseTest, TableCapacityIsEnforced)
{
    DatabaseConfig tiny;
    tiny.rowRegionSize = 1u << 20;
    tiny.rowsPerTable = 4;
    Database small(tiny);
    small.executeSql("CREATE TABLE T (ID BIGINT PRIMARY KEY)");
    for (int i = 0; i < 4; ++i)
        small.executeSql("INSERT INTO T (ID) VALUES (" +
                         std::to_string(i) + ")");
    EXPECT_THROW(small.executeSql("INSERT INTO T (ID) VALUES (99)"),
                 FatalError);
}

// ---------------------------------------------------------------------
// ShardedDatabase: pk partitioning through the consistent-hash router
// ---------------------------------------------------------------------

class ShardedDbTest : public ::testing::Test
{
  protected:
    static ShardedDatabaseConfig
    config(unsigned shards)
    {
        ShardedDatabaseConfig cfg;
        cfg.shards = shards;
        cfg.shard.rowRegionSize = 2u << 20;
        cfg.shard.rowsPerTable = 512;
        cfg.shard.groupCommitWindowUs = 0;
        return cfg;
    }

    static TableSchema
    schema()
    {
        return TableSchema{
            "T", {{"ID", DbType::kI64}, {"V", DbType::kI64}}, 0,
            TableSchema::kNoIndex};
    }

    static DbRecord
    row(std::int64_t id, std::int64_t v)
    {
        DbRecord rec;
        rec.values = {DbValue::ofI64(id), DbValue::ofI64(v)};
        return rec;
    }
};

TEST_F(ShardedDbTest, RoutesByPkAndFansOut)
{
    ShardedDatabase database(config(4));
    database.createTable(schema());
    for (std::int64_t id = 0; id < 200; ++id)
        database.persistRecord("T", row(id, id * 10));

    // Point reads hit the routed shard; totals sum across members.
    for (std::int64_t id = 0; id < 200; ++id) {
        DbRecord out;
        ASSERT_TRUE(database.fetchRecord("T", id, &out)) << id;
        EXPECT_EQ(out.values[1].i, id * 10);
        EXPECT_EQ(database.shardForPk(id).rowCount("T") > 0, true);
    }
    EXPECT_EQ(database.rowCount("T"), 200u);

    // The router actually partitions (every member holds a slice),
    // and rows live exactly where the ring says.
    std::size_t spread = 0;
    for (unsigned s = 0; s < 4; ++s)
        spread += database.shard(s).rowCount("T") > 0 ? 1 : 0;
    EXPECT_EQ(spread, 4u);
    for (std::int64_t id = 0; id < 200; ++id) {
        DbRecord out;
        EXPECT_TRUE(database.shardForPk(id).fetchRecord("T", id, &out));
    }

    // Fan-out scan sees every matching row exactly once.
    for (std::int64_t id = 100; id < 110; ++id)
        database.persistRecord("T", row(id, -1));
    std::size_t hits = 0;
    database.scanEq("T", "V", DbValue::ofI64(-1),
                    [&](const std::vector<DbValue> &) { ++hits; });
    EXPECT_EQ(hits, 10u);

    EXPECT_TRUE(database.deleteRecord("T", 5));
    EXPECT_FALSE(database.deleteRecord("T", 5));
    EXPECT_EQ(database.rowCount("T"), 199u);
}

TEST_F(ShardedDbTest, CrossShardBracketCommitsAndRollsBack)
{
    ShardedDatabase database(config(4));
    database.createTable(schema());
    for (std::int64_t id = 0; id < 32; ++id)
        database.persistRecord("T", row(id, 0));

    database.begin();
    EXPECT_TRUE(database.inTransaction());
    for (std::int64_t id = 0; id < 32; ++id)
        database.persistRecord("T", row(id, 1));
    database.commit();
    EXPECT_FALSE(database.inTransaction());
    for (std::int64_t id = 0; id < 32; ++id) {
        DbRecord out;
        ASSERT_TRUE(database.fetchRecord("T", id, &out));
        EXPECT_EQ(out.values[1].i, 1);
    }

    database.begin();
    for (std::int64_t id = 0; id < 32; ++id)
        database.persistRecord("T", row(id, 2));
    database.rollback();
    for (std::int64_t id = 0; id < 32; ++id) {
        DbRecord out;
        ASSERT_TRUE(database.fetchRecord("T", id, &out));
        EXPECT_EQ(out.values[1].i, 1) << "rollback leaked on id " << id;
    }
}

TEST_F(ShardedDbTest, WalFullAbortsTheWholeBracket)
{
    ShardedDatabaseConfig cfg = config(2);
    cfg.shard.walSize = 4096; // one tiny undo segment per member
    cfg.shard.walShards = 1;
    ShardedDatabase database(cfg);
    database.createTable(schema());
    for (std::int64_t id = 0; id < 400; ++id)
        database.persistRecord("T", row(id, 7));

    database.begin();
    bool overflowed = false;
    try {
        for (std::int64_t id = 0; id < 400; ++id)
            database.persistRecord("T", row(id, 8));
    } catch (const WalFullError &) {
        overflowed = true;
    }
    ASSERT_TRUE(overflowed) << "undo segment never filled";
    // The whole cross-shard bracket aborted: both members rolled
    // back, no half-applied shard survives, and the database keeps
    // serving new work. The caller's rollback() after catching the
    // error is a graceful no-op (Database's aborted-flag contract).
    EXPECT_FALSE(database.inTransaction());
    database.rollback();
    for (std::int64_t id = 0; id < 400; ++id) {
        DbRecord out;
        ASSERT_TRUE(database.fetchRecord("T", id, &out));
        EXPECT_EQ(out.values[1].i, 7) << "leak on id " << id;
    }
    database.persistRecord("T", row(3, 9));
    DbRecord out;
    ASSERT_TRUE(database.fetchRecord("T", 3, &out));
    EXPECT_EQ(out.values[1].i, 9);
}

TEST_F(ShardedDbTest, MemberCrashRecoveryIsShardLocal)
{
    ShardedDatabase database(config(2));
    database.createTable(schema());
    std::vector<std::int64_t> shard0_ids, shard1_ids;
    for (std::int64_t id = 0; id < 100; ++id) {
        database.persistRecord("T", row(id, id));
        (database.shardIndexForPk(id) == 0 ? shard0_ids : shard1_ids)
            .push_back(id);
    }
    ASSERT_FALSE(shard0_ids.empty());
    ASSERT_FALSE(shard1_ids.empty());

    // Leave an uncommitted member-level transaction in flight on
    // member 0, then power-fail only that member (fabric brackets
    // must be closed across a crash — the member's own engine rolls
    // its open transaction back on reopen).
    std::int64_t victim = shard0_ids[0];
    database.shard(0).begin();
    database.shard(0).persistRecord("T", row(victim, -5));
    database.crashShard(0, CrashMode::kDiscardUnflushed, 42);

    // Member 0 recovered from its own WAL: the in-flight update
    // rolled back, committed rows survive; member 1 never blinked.
    for (std::int64_t id : shard0_ids) {
        DbRecord out;
        ASSERT_TRUE(database.fetchRecord("T", id, &out)) << id;
        EXPECT_EQ(out.values[1].i, id);
    }
    for (std::int64_t id : shard1_ids) {
        DbRecord out;
        ASSERT_TRUE(database.fetchRecord("T", id, &out)) << id;
        EXPECT_EQ(out.values[1].i, id);
    }
    // The fabric keeps serving — including on the recovered member.
    database.persistRecord("T", row(victim, 11));
    DbRecord out;
    ASSERT_TRUE(database.fetchRecord("T", victim, &out));
    EXPECT_EQ(out.values[1].i, 11);
}

// ---------------------------------------------------------------------
// PR 6: the explicit Txn handle API, unified Status codes, snapshot
// isolation, and deadlock detection.
// ---------------------------------------------------------------------

class TxnApiTest : public ::testing::Test
{
  protected:
    TxnApiTest()
    {
        DatabaseConfig cfg;
        cfg.rowRegionSize = 8u << 20;
        cfg.rowsPerTable = 512;
        cfg.walShards = 4;
        db_ = std::make_unique<Database>(cfg);
        db_->createTable(TableSchema{"KV",
                                     {{"ID", DbType::kI64},
                                      {"V", DbType::kI64}},
                                     0,
                                     TableSchema::kNoIndex});
        for (std::int64_t id = 0; id < 16; ++id)
            put(id, 0);
    }

    void
    put(std::int64_t id, std::int64_t v)
    {
        DbRecord rec;
        rec.values = {DbValue::ofI64(id), DbValue::ofI64(v)};
        db_->persistRecord("KV", rec);
    }

    std::int64_t
    get(std::int64_t id)
    {
        DbRecord out;
        EXPECT_TRUE(db_->fetchRecord("KV", id, &out)) << id;
        return out.values[1].i;
    }

    std::unique_ptr<Database> db_;
};

TEST_F(TxnApiTest, HandleCommitRollbackAndMisuse)
{
    Txn t = db_->beginTxn();
    EXPECT_TRUE(t.active());
    EXPECT_EQ(t.snapshot(), kNoSnapshot);
    put(1, 5);
    Status s = t.commit();
    EXPECT_TRUE(s.isOk()) << s.message();
    EXPECT_FALSE(t.active());
    EXPECT_EQ(get(1), 5);
    // A finished handle reports misuse, never fatals.
    EXPECT_EQ(t.commit().code(), StatusCode::kMisuse);
    EXPECT_EQ(t.rollback().code(), StatusCode::kMisuse);
    EXPECT_EQ(Txn().commit().code(), StatusCode::kMisuse);

    Txn r = db_->beginTxn();
    put(1, 9);
    EXPECT_TRUE(r.rollback().isOk());
    EXPECT_FALSE(r.active());
    EXPECT_EQ(get(1), 5);
}

TEST_F(TxnApiTest, DestructorAndMoveSemantics)
{
    // Dropping an open handle rolls its transaction back.
    {
        Txn t = db_->beginTxn();
        put(2, 7);
    }
    EXPECT_EQ(get(2), 0);

    // Moving transfers ownership; the source goes inert.
    Txn a = db_->beginTxn();
    put(3, 4);
    Txn b = std::move(a);
    EXPECT_FALSE(a.active());
    EXPECT_TRUE(b.active());
    EXPECT_TRUE(b.commit().isOk());
    EXPECT_EQ(get(3), 4);
}

TEST_F(TxnApiTest, ForeignThreadCommitIsMisuse)
{
    // A Txn handle is pinned to the thread that minted it; finishing
    // it from a worker that merely holds a reference is a protocol
    // error reported as a status, never silently committed.
    Txn t = db_->beginTxn();
    put(4, 44);
    Status foreign = Status::ok();
    std::thread other([&]() { foreign = t.commit(); });
    other.join();
    EXPECT_EQ(foreign.code(), StatusCode::kMisuse);

    // The refused commit consumed the handle but not the
    // transaction — it is still open on this thread and rolls back
    // normally, so the staged write never lands.
    EXPECT_TRUE(db_->inTransaction());
    db_->rollback();
    EXPECT_EQ(get(4), 0);
}

TEST_F(TxnApiTest, CommitReportsWalFullAsStatus)
{
    DatabaseConfig cfg;
    cfg.rowRegionSize = 8u << 20;
    cfg.rowsPerTable = 512;
    cfg.walSize = 4096;
    cfg.walShards = 1;
    Database small(cfg);
    small.createTable(TableSchema{"KV",
                                  {{"ID", DbType::kI64},
                                   {"V", DbType::kI64}},
                                  0,
                                  TableSchema::kNoIndex});
    auto rowOf = [](std::int64_t id, std::int64_t v) {
        DbRecord rec;
        rec.values = {DbValue::ofI64(id), DbValue::ofI64(v)};
        return rec;
    };
    for (std::int64_t id = 0; id < 400; ++id)
        small.persistRecord("KV", rowOf(id, 7));

    Txn t = small.beginTxn();
    bool overflowed = false;
    try {
        for (std::int64_t id = 0; id < 400; ++id)
            small.persistRecord("KV", rowOf(id, 8));
    } catch (const WalFullError &) {
        overflowed = true; // legacy exception still escapes
    }
    ASSERT_TRUE(overflowed) << "undo segment never filled";
    // ... but the handle reports the rollback as a Status.
    EXPECT_EQ(t.commit().code(), StatusCode::kWalFull);
    EXPECT_FALSE(t.active());
    for (std::int64_t id = 0; id < 400; ++id) {
        DbRecord out;
        ASSERT_TRUE(small.fetchRecord("KV", id, &out));
        EXPECT_EQ(out.values[1].i, 7) << "leak on id " << id;
    }
}

TEST_F(TxnApiTest, SnapshotReaderSeesBeginTimeVersions)
{
    Txn r = db_->beginTxn({Isolation::kSnapshot});
    ASSERT_NE(r.snapshot(), kNoSnapshot);
    for (std::int64_t id = 0; id < 8; ++id)
        EXPECT_EQ(get(id), 0);

    // A writer overwrites every row in one transaction and commits
    // mid-scan.
    std::thread w([&]() {
        db_->begin();
        for (std::int64_t id = 0; id < 16; ++id)
            put(id, 1);
        db_->commit();
    });
    w.join();

    // The rest of the scan still resolves to begin-time versions:
    // the committed multi-row write is invisible in its entirety.
    for (std::int64_t id = 8; id < 16; ++id)
        EXPECT_EQ(get(id), 0) << "snapshot leak at id " << id;
    EXPECT_TRUE(r.commit().isOk());

    // Outside the snapshot the new versions are all there.
    for (std::int64_t id = 0; id < 16; ++id)
        EXPECT_EQ(get(id), 1);

    // A fresh snapshot taken after the commit sees the new world.
    Txn r2 = db_->beginTxn({Isolation::kSnapshot});
    for (std::int64_t id = 0; id < 16; ++id)
        EXPECT_EQ(get(id), 1);
    EXPECT_TRUE(r2.commit().isOk());
}

TEST_F(TxnApiTest, FirstCommitterWinsReportsConflict)
{
    Txn r = db_->beginTxn({Isolation::kSnapshot});
    EXPECT_EQ(get(5), 0);

    // Another transaction commits row 5 after our snapshot.
    std::thread w([&]() { put(5, 7); });
    w.join();

    bool aborted = false;
    try {
        put(5, 9);
    } catch (const TxnAbortError &e) {
        aborted = true;
        EXPECT_EQ(e.code(), StatusCode::kConflict);
    }
    ASSERT_TRUE(aborted) << "stale write was admitted";
    EXPECT_EQ(r.commit().code(), StatusCode::kConflict);
    EXPECT_FALSE(r.active());
    EXPECT_EQ(get(5), 7) << "first committer must stand";
}

TEST_F(TxnApiTest, DeadlockAbortsExactlyOneVictim)
{
    // Two transactions lock rows 1 and 2 in opposite orders and
    // rendezvous in between: a guaranteed cycle. The engine must
    // abort exactly one with kDeadlock; the survivor commits.
    std::array<StatusCode, 2> codes{StatusCode::kOk, StatusCode::kOk};
    std::atomic<int> at_barrier{0};
    auto worker = [&](int me, std::int64_t first, std::int64_t second) {
        Txn t = db_->beginTxn();
        try {
            put(first, 100 + me);
            at_barrier.fetch_add(1);
            while (at_barrier.load(std::memory_order_acquire) != 2)
                std::this_thread::yield();
            put(second, 100 + me);
            codes[me] = t.commit().code();
        } catch (const TxnAbortError &) {
            codes[me] = t.commit().code();
        }
    };
    std::thread a(worker, 0, 1, 2);
    std::thread b(worker, 1, 2, 1);
    a.join();
    b.join();

    int winners = (codes[0] == StatusCode::kOk) +
                  (codes[1] == StatusCode::kOk);
    ASSERT_EQ(winners, 1) << "codes: " << static_cast<int>(codes[0])
                          << ", " << static_cast<int>(codes[1]);
    int victim = codes[0] == StatusCode::kOk ? 1 : 0;
    EXPECT_EQ(codes[victim], StatusCode::kDeadlock);
    // The victim's partial write rolled back: both rows carry the
    // survivor's value.
    std::int64_t winner_val = 100 + (1 - victim);
    EXPECT_EQ(get(1), winner_val);
    EXPECT_EQ(get(2), winner_val);

    // The database keeps serving transactions afterwards.
    Txn t = db_->beginTxn();
    put(1, 0);
    put(2, 0);
    EXPECT_TRUE(t.commit().isOk());
}

TEST_F(ShardedDbTest, TxnHandleDrivesCrossShardBracket)
{
    ShardedDatabase database(config(4));
    database.createTable(schema());
    for (std::int64_t id = 0; id < 32; ++id)
        database.persistRecord("T", row(id, 0));

    Txn t = database.beginTxn();
    EXPECT_TRUE(t.active());
    for (std::int64_t id = 0; id < 32; ++id)
        database.persistRecord("T", row(id, 1));
    EXPECT_TRUE(t.commit().isOk());
    EXPECT_FALSE(t.active());
    EXPECT_EQ(t.commit().code(), StatusCode::kMisuse);
    for (std::int64_t id = 0; id < 32; ++id) {
        DbRecord out;
        ASSERT_TRUE(database.fetchRecord("T", id, &out));
        EXPECT_EQ(out.values[1].i, 1);
    }

    // Dropping an open handle rolls the whole bracket back.
    {
        Txn u = database.beginTxn();
        for (std::int64_t id = 0; id < 32; ++id)
            database.persistRecord("T", row(id, 2));
    }
    for (std::int64_t id = 0; id < 32; ++id) {
        DbRecord out;
        ASSERT_TRUE(database.fetchRecord("T", id, &out));
        EXPECT_EQ(out.values[1].i, 1) << "dtor leak on id " << id;
    }
}

TEST_F(ShardedDbTest, SnapshotBracketSeesCrossShardCommitAtomically)
{
    ShardedDatabase database(config(4));
    database.createTable(schema());
    for (std::int64_t id = 0; id < 32; ++id)
        database.persistRecord("T", row(id, 0));

    Txn r = database.beginTxn({Isolation::kSnapshot});
    ASSERT_NE(r.snapshot(), kNoSnapshot);
    for (std::int64_t id = 0; id < 16; ++id) {
        DbRecord out;
        ASSERT_TRUE(database.fetchRecord("T", id, &out));
        EXPECT_EQ(out.values[1].i, 0);
    }

    // A cross-shard 2PC commit lands mid-scan.
    std::thread w([&]() {
        database.begin();
        for (std::int64_t id = 0; id < 32; ++id)
            database.persistRecord("T", row(id, 1));
        database.commit();
    });
    w.join();

    // The snapshot still resolves every member's rows to begin-time
    // versions — the fabric-wide commit is invisible as a whole.
    for (std::int64_t id = 16; id < 32; ++id) {
        DbRecord out;
        ASSERT_TRUE(database.fetchRecord("T", id, &out));
        EXPECT_EQ(out.values[1].i, 0)
            << "snapshot saw a torn cross-shard commit at id " << id;
    }
    EXPECT_TRUE(r.commit().isOk());

    for (std::int64_t id = 0; id < 32; ++id) {
        DbRecord out;
        ASSERT_TRUE(database.fetchRecord("T", id, &out));
        EXPECT_EQ(out.values[1].i, 1);
    }
}

TEST(VersionChainTest, TrimKeepsChainsBoundedUnderLongSnapshot)
{
    // Regression for the chain trimmer: a long-lived snapshot plus a
    // write-hot key must not grow the key's version chain without
    // bound — per active snapshot only the newest reachable
    // pre-image is retained, and commit-time pruning drops the rest.
    DatabaseConfig cfg;
    cfg.rowRegionSize = 4u << 20;
    cfg.rowsPerTable = 64;
    Database db(cfg);
    db.createTable(TableSchema{
        "T", {{"ID", DbType::kI64}, {"V", DbType::kI64}}, 0,
        TableSchema::kNoIndex});
    DbRecord rec;
    rec.values = {DbValue::ofI64(1), DbValue::ofI64(0)};
    db.persistRecord("T", rec);

    Word s = db.snapshotClock().beginSnapshot();
    std::size_t max_depth = 0;
    for (int i = 1; i <= 400; ++i) {
        DbRecord up;
        up.values = {DbValue::ofI64(1), DbValue::ofI64(i)};
        up.dirtyMask = 1ull << 1; // V only
        db.persistRecord("T", up);
        max_depth = std::max(max_depth,
                             db.versionChainDepth("T", 1));
    }
    // One active snapshot -> O(1) retained history, not O(updates).
    EXPECT_LE(max_depth, 3u) << "chain grew with update count";

    // The retained image still serves the old snapshot correctly.
    DbRecord out;
    ASSERT_TRUE(db.fetchRecordAt("T", 1, &out, s));
    EXPECT_EQ(out.values[1].i, 0) << "snapshot lost its version";
    ASSERT_TRUE(db.fetchRecord("T", 1, &out));
    EXPECT_EQ(out.values[1].i, 400);

    // Once the snapshot retires, the next commit drains the chain.
    db.snapshotClock().endSnapshot(s);
    DbRecord up;
    up.values = {DbValue::ofI64(1), DbValue::ofI64(401)};
    up.dirtyMask = 1ull << 1;
    db.persistRecord("T", up);
    EXPECT_LE(db.versionChainDepth("T", 1), 1u)
        << "chain survived its last snapshot";
}

TEST_F(ShardedDbTest, GrowAndShrinkRepartitionRows)
{
    ShardedDatabase database(config(2));
    database.createTable(schema());
    constexpr std::int64_t kRows = 300;
    for (std::int64_t id = 0; id < kRows; ++id)
        database.persistRecord("T", row(id, id * 3));

    database.grow(2);
    EXPECT_EQ(database.shardCount(), 4u);
    EXPECT_FALSE(database.migrating());
    EXPECT_EQ(database.rowCount("T"), static_cast<std::size_t>(kRows));
    std::size_t spread = 0;
    for (unsigned s = 0; s < 4; ++s)
        spread += database.shard(s).rowCount("T") > 0 ? 1 : 0;
    EXPECT_EQ(spread, 4u) << "joiners received no rows";
    for (std::int64_t id = 0; id < kRows; ++id) {
        DbRecord out;
        ASSERT_TRUE(database.fetchRecord("T", id, &out)) << id;
        EXPECT_EQ(out.values[1].i, id * 3) << id;
        // The row lives exactly where the new ring routes it.
        EXPECT_TRUE(database.shardForPk(id).fetchRecord("T", id, &out))
            << id;
    }

    // Writes and brackets keep flowing on the grown membership.
    database.begin();
    for (std::int64_t id = 0; id < 32; ++id)
        database.persistRecord("T", row(id, -id));
    database.commit();
    for (std::int64_t id = 0; id < 32; ++id) {
        DbRecord out;
        ASSERT_TRUE(database.fetchRecord("T", id, &out));
        EXPECT_EQ(out.values[1].i, -id);
    }

    database.shrink(2);
    EXPECT_EQ(database.shardCount(), 2u);
    EXPECT_FALSE(database.migrating());
    EXPECT_EQ(database.rowCount("T"), static_cast<std::size_t>(kRows));
    for (std::int64_t id = 0; id < kRows; ++id) {
        DbRecord out;
        ASSERT_TRUE(database.fetchRecord("T", id, &out)) << id;
        EXPECT_EQ(out.values[1].i, id < 32 ? -id : id * 3) << id;
    }
}

} // namespace
} // namespace db
} // namespace espresso
