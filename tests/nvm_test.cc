/**
 * @file
 * Unit tests for the NVM emulation: flush/fence durability, crash
 * modes, fault injection, and file round-trips.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "nvm/nvm_device.hh"
#include "util/logging.hh"

namespace espresso {
namespace {

TEST(NvmDeviceTest, UnflushedWritesDieInACrash)
{
    NvmDevice dev(4096);
    dev.base()[0] = 0xAB;
    dev.crash();
    EXPECT_EQ(dev.base()[0], 0);
}

TEST(NvmDeviceTest, FlushWithoutFenceIsNotDurable)
{
    NvmDevice dev(4096);
    dev.base()[0] = 0xAB;
    dev.flush(dev.toAddr(0), 1);
    dev.crash();
    EXPECT_EQ(dev.base()[0], 0);
}

TEST(NvmDeviceTest, FlushPlusFenceIsDurable)
{
    NvmDevice dev(4096);
    dev.base()[0] = 0xAB;
    dev.base()[100] = 0xCD;
    dev.flush(dev.toAddr(0), 1);
    dev.flush(dev.toAddr(100), 1);
    dev.fence();
    dev.base()[200] = 0xEF; // after the fence: lost
    dev.crash();
    EXPECT_EQ(dev.base()[0], 0xAB);
    EXPECT_EQ(dev.base()[100], 0xCD);
    EXPECT_EQ(dev.base()[200], 0);
}

TEST(NvmDeviceTest, FlushCoversWholeCacheLines)
{
    NvmDevice dev(4096);
    dev.base()[10] = 1;
    dev.base()[63] = 2; // same line as 10
    dev.base()[64] = 3; // next line
    dev.persist(dev.toAddr(10), 1);
    dev.crash();
    EXPECT_EQ(dev.base()[10], 1);
    EXPECT_EQ(dev.base()[63], 2); // dragged in by line granularity
    EXPECT_EQ(dev.base()[64], 0);
}

TEST(NvmDeviceTest, EvictionModeKeepsFencedDataAlways)
{
    for (std::uint64_t seed = 1; seed <= 32; ++seed) {
        NvmDevice dev(4096);
        dev.base()[0] = 0x11;
        dev.persist(dev.toAddr(0), 1);
        dev.base()[128] = 0x22; // unflushed: may or may not survive
        dev.crash(CrashMode::kEvictRandomLines, seed);
        EXPECT_EQ(dev.base()[0], 0x11) << "seed " << seed;
        EXPECT_TRUE(dev.base()[128] == 0 || dev.base()[128] == 0x22);
    }
}

TEST(NvmDeviceTest, EvictionModeEventuallyEvicts)
{
    // Over many seeds, at least one unflushed line must survive and
    // at least one must die — otherwise the mode is degenerate.
    int survived = 0, died = 0;
    for (std::uint64_t seed = 1; seed <= 64; ++seed) {
        NvmDevice dev(4096);
        dev.base()[128] = 0x22;
        dev.crash(CrashMode::kEvictRandomLines, seed);
        (dev.base()[128] == 0x22 ? survived : died) += 1;
    }
    EXPECT_GT(survived, 0);
    EXPECT_GT(died, 0);
}

TEST(NvmDeviceTest, ShutdownCleanPersistsEverything)
{
    NvmDevice dev(4096);
    dev.base()[77] = 0x42;
    dev.shutdownClean();
    dev.crash();
    EXPECT_EQ(dev.base()[77], 0x42);
}

TEST(NvmDeviceTest, StatsCountFlushesAndFences)
{
    NvmDevice dev(4096);
    dev.flush(dev.toAddr(0), 200); // 4 lines (0..255 rounded)
    dev.fence();
    EXPECT_EQ(dev.stats().flushCalls, 1u);
    EXPECT_EQ(dev.stats().linesFlushed, 4u);
    EXPECT_EQ(dev.stats().fences, 1u);
}

TEST(NvmDeviceTest, PersistenceDisabledIsFreeAndVolatile)
{
    NvmConfig cfg;
    cfg.persistenceEnabled = false;
    NvmDevice dev(4096, cfg);
    dev.base()[0] = 9;
    dev.persist(dev.toAddr(0), 1);
    EXPECT_EQ(dev.stats().linesFlushed, 0u);
    dev.crash();
    EXPECT_EQ(dev.base()[0], 0);
}

TEST(NvmDeviceTest, FileRoundTrip)
{
    std::string path = testing::TempDir() + "/nvm_image.bin";
    {
        NvmDevice dev(4096);
        std::memcpy(dev.base(), "espresso", 8);
        dev.persist(dev.toAddr(0), 8);
        dev.saveDurable(path);
    }
    NvmDevice dev2(4096);
    dev2.loadDurable(path);
    EXPECT_EQ(std::memcmp(dev2.base(), "espresso", 8), 0);
}

TEST(CrashInjectorTest, FiresAtTheArmedEvent)
{
    NvmDevice dev(4096);
    CrashInjector inj;
    dev.setInjector(&inj);
    inj.arm(3);
    dev.flush(dev.toAddr(0), 1); // event 1
    dev.fence();                 // event 2
    EXPECT_THROW(dev.flush(dev.toAddr(0), 1), SimulatedCrash); // 3
    inj.disarm();
    dev.flush(dev.toAddr(0), 1); // counted, no fire
    EXPECT_EQ(inj.eventCount(), 4u);
}

TEST(NvmDeviceTest, OutOfRangeFlushPanics)
{
    NvmDevice dev(4096);
    EXPECT_THROW(dev.flush(dev.toAddr(4095), 16), PanicError);
}

} // namespace
} // namespace espresso
