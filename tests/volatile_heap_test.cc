/**
 * @file
 * Tests for the volatile generational heap: allocation, young copying
 * GC (forwarding, tenuring), old mark-compact GC (liveness, reference
 * fixup), and stress via linked structures.
 */

#include <gtest/gtest.h>

#include "core/espresso.hh"
#include "util/rng.hh"

namespace espresso {
namespace {

KlassDef
nodeDef()
{
    return KlassDef{
        "Node", "",
        {{"value", FieldType::kI64}, {"next", FieldType::kRef}},
        false};
}

class VolatileHeapTest : public ::testing::Test
{
  protected:
    VolatileHeapTest()
    {
        EspressoConfig cfg;
        cfg.volatileHeap.edenSize = 256u << 10;
        cfg.volatileHeap.survivorSize = 64u << 10;
        cfg.volatileHeap.oldSize = 4u << 20;
        rt_ = std::make_unique<EspressoRuntime>(cfg);
        rt_->define(nodeDef());
        valueOff_ = rt_->fieldOffset("Node", "value");
        nextOff_ = rt_->fieldOffset("Node", "next");
    }

    Oop
    makeNode(std::int64_t v, Oop next = Oop())
    {
        Oop n = rt_->newInstance("Node");
        n.setI64(valueOff_, v);
        n.setRef(nextOff_, next);
        return n;
    }

    std::unique_ptr<EspressoRuntime> rt_;
    std::uint32_t valueOff_ = 0;
    std::uint32_t nextOff_ = 0;
};

TEST_F(VolatileHeapTest, AllocZeroesFields)
{
    Oop n = rt_->newInstance("Node");
    EXPECT_EQ(n.getI64(valueOff_), 0);
    EXPECT_EQ(n.getRef(nextOff_), kNullAddr);
    EXPECT_EQ(n.klass()->name(), "Node");
}

TEST_F(VolatileHeapTest, YoungGcKeepsHandleReachableObjects)
{
    Handle h = rt_->handles().create(makeNode(7));
    rt_->heap().collectYoung();
    EXPECT_EQ(h.get().getI64(valueOff_), 7);
    // The object moved out of eden.
    EXPECT_EQ(rt_->heap().edenUsed(), 0u);
    rt_->handles().release(h);
}

TEST_F(VolatileHeapTest, YoungGcPreservesLinkedChains)
{
    const int kLen = 100;
    Oop head;
    for (int i = kLen - 1; i >= 0; --i)
        head = makeNode(i, head);
    Handle h = rt_->handles().create(head);

    rt_->heap().collectYoung();
    rt_->heap().collectYoung();

    Oop cur = h.get();
    for (int i = 0; i < kLen; ++i) {
        ASSERT_FALSE(cur.isNull());
        EXPECT_EQ(cur.getI64(valueOff_), i);
        cur = Oop(cur.getRef(nextOff_));
    }
    EXPECT_TRUE(cur.isNull());
    rt_->handles().release(h);
}

TEST_F(VolatileHeapTest, TenuringPromotesSurvivors)
{
    Handle h = rt_->handles().create(makeNode(5));
    unsigned threshold = rt_->heap().config().tenureThreshold;
    for (unsigned i = 0; i <= threshold; ++i)
        rt_->heap().collectYoung();
    EXPECT_TRUE(rt_->heap().inOld(h.get().addr()));
    EXPECT_EQ(h.get().getI64(valueOff_), 5);
    EXPECT_GT(rt_->heap().stats().bytesPromoted, 0u);
    rt_->handles().release(h);
}

TEST_F(VolatileHeapTest, GcRunsAutomaticallyUnderPressure)
{
    // Allocate far more than eden without holding references.
    for (int i = 0; i < 100000; ++i)
        makeNode(i);
    EXPECT_GT(rt_->heap().stats().youngCollections, 0u);
}

TEST_F(VolatileHeapTest, FullGcCompactsOldSpace)
{
    unsigned threshold = rt_->heap().config().tenureThreshold;

    // Tenure a keeper and lots of garbage.
    Handle keeper = rt_->handles().create(makeNode(42));
    std::vector<Handle> garbage;
    for (int i = 0; i < 2000; ++i)
        garbage.push_back(rt_->handles().create(makeNode(i)));
    for (unsigned i = 0; i <= threshold; ++i)
        rt_->heap().collectYoung();
    ASSERT_TRUE(rt_->heap().inOld(keeper.get().addr()));
    std::size_t used_before = rt_->heap().oldUsed();

    for (Handle &g : garbage)
        rt_->handles().release(g);
    rt_->heap().collectFull();

    EXPECT_LT(rt_->heap().oldUsed(), used_before);
    EXPECT_EQ(keeper.get().getI64(valueOff_), 42);
    rt_->handles().release(keeper);
}

TEST_F(VolatileHeapTest, FullGcFixesOldToOldReferences)
{
    unsigned threshold = rt_->heap().config().tenureThreshold;
    const int kLen = 50;
    Oop head;
    for (int i = kLen - 1; i >= 0; --i)
        head = makeNode(i, head);
    Handle h = rt_->handles().create(head);
    // Interleave garbage so compaction actually slides objects.
    std::vector<Handle> garbage;
    for (int i = 0; i < 500; ++i)
        garbage.push_back(rt_->handles().create(makeNode(-i)));
    for (unsigned i = 0; i <= threshold; ++i)
        rt_->heap().collectYoung();
    for (Handle &g : garbage)
        rt_->handles().release(g);

    rt_->heap().collectFull();
    rt_->heap().collectFull(); // idempotent on a stable graph

    Oop cur = h.get();
    for (int i = 0; i < kLen; ++i) {
        ASSERT_FALSE(cur.isNull());
        EXPECT_EQ(cur.getI64(valueOff_), i);
        cur = Oop(cur.getRef(nextOff_));
    }
    rt_->handles().release(h);
}

TEST_F(VolatileHeapTest, LargeObjectsGoDirectlyToOld)
{
    Oop big = rt_->newI64Array(64 * 1024); // 512 KiB > eden/2
    EXPECT_TRUE(rt_->heap().inOld(big.addr()));
    EXPECT_EQ(big.arrayLength(), 64u * 1024);
}

TEST_F(VolatileHeapTest, RandomGraphSurvivesManyCollections)
{
    // Property test: a random object graph (with sharing) keeps its
    // value multiset across arbitrary young/full collections.
    Rng rng(2024);
    const int kNodes = 300;
    std::vector<Handle> roots;
    std::vector<Oop> all;
    for (int i = 0; i < kNodes; ++i) {
        Oop n = makeNode(i, all.empty()
                                ? Oop()
                                : all[rng.nextBelow(all.size())]);
        all.push_back(n);
        if (rng.nextBelow(4) == 0)
            roots.push_back(rt_->handles().create(n));
    }
    ASSERT_FALSE(roots.empty());

    auto checksum = [&]() {
        std::int64_t sum = 0;
        for (Handle &r : roots) {
            Oop cur = r.get();
            while (!cur.isNull()) {
                sum += cur.getI64(valueOff_);
                cur = Oop(cur.getRef(nextOff_));
            }
        }
        return sum;
    };

    std::int64_t before = checksum();
    for (int i = 0; i < 5; ++i) {
        rt_->heap().collectYoung();
        EXPECT_EQ(checksum(), before);
        rt_->heap().collectFull();
        EXPECT_EQ(checksum(), before);
    }
    for (Handle &r : roots)
        rt_->handles().release(r);
}

} // namespace
} // namespace espresso
