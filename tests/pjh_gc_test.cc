/**
 * @file
 * Persistent-space garbage collection (§4.2): liveness from root
 * table and DRAM roots, compaction correctness, reference fixup on
 * both sides of the heap boundary, timestamps, and reclamation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "core/espresso.hh"
#include "util/rng.hh"

namespace espresso {
namespace {

KlassDef
nodeDef()
{
    return KlassDef{
        "Node", "",
        {{"value", FieldType::kI64}, {"next", FieldType::kRef}},
        false};
}

class PjhGcTest : public ::testing::Test
{
  protected:
    PjhGcTest()
    {
        rt_ = std::make_unique<EspressoRuntime>();
        rt_->define(nodeDef());
        h_ = rt_->heaps().createHeap("gc", 4u << 20);
        valueOff_ = rt_->fieldOffset("Node", "value");
        nextOff_ = rt_->fieldOffset("Node", "next");
    }

    Oop
    pnode(std::int64_t v, Oop next = Oop())
    {
        Oop n = rt_->pnewInstance(h_, "Node");
        n.setI64(valueOff_, v);
        n.setRef(nextOff_, next);
        h_->flushObject(n);
        return n;
    }

    std::int64_t
    listSum(Oop head)
    {
        std::int64_t sum = 0;
        for (Oop cur = head; !cur.isNull();
             cur = Oop(cur.getRef(nextOff_)))
            sum += cur.getI64(valueOff_);
        return sum;
    }

    std::unique_ptr<EspressoRuntime> rt_;
    PjhHeap *h_ = nullptr;
    std::uint32_t valueOff_ = 0, nextOff_ = 0;
};

TEST_F(PjhGcTest, ReclaimsUnreachableObjects)
{
    Oop keep;
    for (int i = 0; i < 1000; ++i) {
        Oop n = pnode(i);
        if (i == 500)
            keep = n;
    }
    h_->setRoot("keep", keep);
    std::size_t used_before = h_->dataUsed();

    h_->collect(&rt_->heap());

    EXPECT_LT(h_->dataUsed(), used_before / 4);
    Oop kept = h_->getRoot("keep");
    EXPECT_EQ(kept.getI64(valueOff_), 500);
    EXPECT_EQ(h_->stats().collections, 1u);
}

TEST_F(PjhGcTest, PreservesListsThroughCompaction)
{
    const int kLen = 200;
    Oop head;
    for (int i = kLen - 1; i >= 0; --i)
        head = pnode(i, head);
    h_->setRoot("head", head);
    // Garbage interleaved during construction is already there (each
    // pnode above is reachable); add explicit garbage:
    for (int i = 0; i < 3000; ++i)
        pnode(-i);

    std::int64_t expected = listSum(h_->getRoot("head"));
    h_->collect(&rt_->heap());
    EXPECT_EQ(listSum(h_->getRoot("head")), expected);

    // Walk the compacted heap: every object must be parseable and a
    // Node (or filler).
    std::size_t count = 0;
    h_->forEachObject([&](Oop o) {
        ++count;
        EXPECT_EQ(o.klass()->name(), "Node");
    });
    EXPECT_EQ(count, static_cast<std::size_t>(kLen));
}

TEST_F(PjhGcTest, DramHandlesActAsRootsAndAreFixedUp)
{
    Oop n = pnode(42);
    Handle h = rt_->handles().create(n); // only a DRAM root, no PJH root
    for (int i = 0; i < 500; ++i)
        pnode(-i); // garbage below/around it

    h_->collect(&rt_->heap());

    Oop moved = h.get();
    ASSERT_FALSE(moved.isNull());
    EXPECT_TRUE(h_->containsData(moved.addr()));
    EXPECT_EQ(moved.getI64(valueOff_), 42);
    rt_->handles().release(h);

    // With the handle gone it becomes garbage.
    std::size_t used = h_->dataUsed();
    h_->collect(&rt_->heap());
    EXPECT_LT(h_->dataUsed(), used);
}

TEST_F(PjhGcTest, VolatileObjectsReferencingPjhAreRootsAndFixed)
{
    // A DRAM Node pointing into NVM: the NVM target must survive and
    // the DRAM slot must be updated when it moves.
    Oop pnvm = pnode(7);
    Oop dram = rt_->newInstance("Node");
    dram.setRef(nextOff_, pnvm);
    Handle hd = rt_->handles().create(dram);
    for (int i = 0; i < 500; ++i)
        pnode(-i);

    h_->collect(&rt_->heap());

    Oop target = Oop(hd.get().getRef(nextOff_));
    ASSERT_FALSE(target.isNull());
    EXPECT_TRUE(h_->containsData(target.addr()));
    EXPECT_EQ(target.getI64(valueOff_), 7);
    rt_->handles().release(hd);
}

TEST_F(PjhGcTest, NvmToDramPointersSurviveCollection)
{
    Oop p = pnode(1);
    Oop dram = rt_->newInstance("Node");
    dram.setI64(valueOff_, 1234);
    p.setRef(nextOff_, dram);
    Handle keep_dram = rt_->handles().create(dram);
    h_->setRoot("p", p);
    for (int i = 0; i < 300; ++i)
        pnode(-i);

    h_->collect(&rt_->heap());

    Oop p2 = h_->getRoot("p");
    Oop out = Oop(p2.getRef(nextOff_));
    ASSERT_FALSE(out.isNull());
    EXPECT_FALSE(h_->containsData(out.addr()));
    EXPECT_EQ(out.getI64(valueOff_), 1234);
    rt_->handles().release(keep_dram);
}

TEST_F(PjhGcTest, TimestampsAdvanceEachCollection)
{
    Oop n = pnode(1);
    h_->setRoot("n", n);
    Word ts0 = h_->meta().globalTimestamp;
    h_->collect(&rt_->heap());
    EXPECT_EQ(h_->meta().globalTimestamp, ts0 + 1);
    EXPECT_EQ(h_->getRoot("n").gcTimestamp(),
              static_cast<std::uint16_t>(ts0 + 1));
    h_->collect(&rt_->heap());
    EXPECT_EQ(h_->meta().globalTimestamp, ts0 + 2);
    EXPECT_EQ(h_->getRoot("n").gcTimestamp(),
              static_cast<std::uint16_t>(ts0 + 2));
    EXPECT_EQ(h_->meta().gcInProgress, 0u);
}

TEST_F(PjhGcTest, CollectionIsTriggeredByAllocationPressure)
{
    // Fill the heap with garbage; pnew must trigger GC and succeed.
    h_->setRoot("keep", pnode(1));
    for (int i = 0; i < 200000; ++i)
        pnode(i);
    EXPECT_GT(h_->stats().collections, 0u);
    EXPECT_EQ(h_->getRoot("keep").getI64(valueOff_), 1);
}

TEST_F(PjhGcTest, EmptyAndIdempotentCollections)
{
    h_->collect(&rt_->heap()); // nothing live but filler-free heap
    std::size_t used = h_->dataUsed();
    h_->collect(&rt_->heap());
    EXPECT_EQ(h_->dataUsed(), used);

    Oop head;
    for (int i = 0; i < 50; ++i)
        head = pnode(i, head);
    h_->setRoot("head", head);
    std::int64_t expected = listSum(h_->getRoot("head"));
    h_->collect(&rt_->heap());
    std::size_t used2 = h_->dataUsed();
    h_->collect(&rt_->heap());
    EXPECT_EQ(h_->dataUsed(), used2); // stable graph, stable heap
    EXPECT_EQ(listSum(h_->getRoot("head")), expected);
}

TEST_F(PjhGcTest, SurvivesCollectionThenReload)
{
    Oop head;
    for (int i = 49; i >= 0; --i)
        head = pnode(i, head);
    h_->setRoot("head", head);
    for (int i = 0; i < 1000; ++i)
        pnode(-i);
    h_->collect(&rt_->heap());

    rt_->heaps().detachHeap("gc");
    PjhHeap *h2 = rt_->heaps().loadHeap("gc");
    Oop cur = h2->getRoot("head");
    for (int i = 0; i < 50; ++i) {
        ASSERT_FALSE(cur.isNull());
        EXPECT_EQ(cur.getI64(valueOff_), i);
        cur = Oop(cur.getRef(nextOff_));
    }
}

TEST_F(PjhGcTest, ParallelCollectionPreservesGraphsAndCounts)
{
    h_->setGcThreads(4);
    const int kLists = 8, kLen = 150;
    std::vector<std::int64_t> expected;
    for (int l = 0; l < kLists; ++l) {
        Oop head;
        for (int i = 0; i < kLen; ++i)
            head = pnode(l * 1000 + i, head);
        h_->setRoot("list" + std::to_string(l), head);
        expected.push_back(listSum(head));
        for (int g = 0; g < 400; ++g)
            pnode(-g); // interleaved garbage
    }

    h_->collect(&rt_->heap());

    EXPECT_EQ(h_->stats().lastGcMarked,
              static_cast<std::uint64_t>(kLists * kLen));
    std::size_t count = 0;
    h_->forEachObject([&](Oop o) {
        ++count;
        EXPECT_EQ(o.klass()->name(), "Node");
    });
    EXPECT_EQ(count, static_cast<std::size_t>(kLists * kLen));
    for (int l = 0; l < kLists; ++l)
        EXPECT_EQ(listSum(h_->getRoot("list" + std::to_string(l))),
                  expected[l])
            << "list " << l;

    // Idempotence with slice-local packing: a second parallel
    // collection of the stable graph keeps every list intact.
    h_->collect(&rt_->heap());
    for (int l = 0; l < kLists; ++l)
        EXPECT_EQ(listSum(h_->getRoot("list" + std::to_string(l))),
                  expected[l])
            << "list " << l << " after second collection";
}

TEST_F(PjhGcTest, ParallelCollectionHandlesRegionStraddlers)
{
    // 48-byte objects do not divide the 64 KiB region size, so once
    // packed contiguously, live objects straddle region boundaries.
    // Slice planning must only cut where no object straddles —
    // regression test for slice-split straddlers.
    rt_->define({"Fat",
                 "",
                 {{"value", FieldType::kI64},
                  {"next", FieldType::kRef},
                  {"pad1", FieldType::kI64},
                  {"pad2", FieldType::kI64}},
                 false});
    std::uint32_t v_off = rt_->fieldOffset("Fat", "value");
    std::uint32_t n_off = rt_->fieldOffset("Fat", "next");
    h_->setGcThreads(8);

    // Aperiodic garbage interleaving: a periodic layout can make
    // every live-balanced cut point land on an object boundary by
    // coincidence, hiding the straddler case this test exists for.
    Rng rng(42);
    const int kLen = 8000; // ~375 KiB live, ~6 regions when packed
    Oop head;
    std::int64_t expected = 0;
    for (int i = 0; i < kLen; ++i) {
        Oop o = rt_->pnewInstance(h_, "Fat");
        o.setI64(v_off, i);
        o.setRef(n_off, head);
        h_->flushObject(o);
        head = o;
        expected += i;
        for (std::uint64_t g = rng.nextBelow(3); g > 0; --g)
            pnode(-i);
    }
    h_->setRoot("fat", head);

    auto fat_sum = [&]() {
        std::int64_t sum = 0;
        int len = 0;
        for (Oop cur = h_->getRoot("fat"); !cur.isNull();
             cur = Oop(cur.getRef(n_off))) {
            sum += cur.getI64(v_off);
            ++len;
        }
        EXPECT_EQ(len, kLen);
        return sum;
    };

    // First collection packs the survivors contiguously; the second
    // and third compact a heap whose region boundaries are straddled.
    for (int pass = 0; pass < 3; ++pass) {
        h_->collect(&rt_->heap());
        ASSERT_EQ(fat_sum(), expected) << "pass " << pass;
        std::size_t count = 0;
        h_->forEachObject([&](Oop o) {
            ++count;
            EXPECT_EQ(o.klass()->name(), "Fat");
        });
        ASSERT_EQ(count, static_cast<std::size_t>(kLen))
            << "pass " << pass;
    }
    // The packed heap still yields a multi-slice plan (48-byte
    // packing aligns with a region boundary every 3 regions), so
    // this test really exercises parallel slices over straddlers.
    EXPECT_GT(h_->meta().gcSliceCount, 1u);
}

TEST_F(PjhGcTest, StaleVolatileSlotIntoFillerIsNotForwarded)
{
    // A DRAM object whose ref field points at the active TLAB's
    // trailing filler — the stale-handle shape left behind by
    // retired TLABs. The filler must be neither retained by the mark
    // phase nor forwarded into whatever lands at its destination.
    Oop keep = pnode(7);
    h_->setRoot("keep", keep);
    Addr filler = keep.addr() + 32; // Node is 32 bytes; tail follows
    ASSERT_TRUE(h_->containsData(filler));
    Oop dram = rt_->newInstance("Node");
    dram.setRef(nextOff_, Oop(filler));
    Handle hd = rt_->handles().create(dram);

    h_->collect(&rt_->heap());

    // The filler was not treated as live: only the rooted Node
    // survives (a retained 64 KiB TLAB filler would dwarf it).
    EXPECT_EQ(h_->stats().lastGcMarked, 1u);
    EXPECT_LT(h_->dataUsed(), 1024u);
    std::size_t count = 0;
    h_->forEachObject([&](Oop) { ++count; });
    EXPECT_EQ(count, 1u);
    // The stale slot was left alone, not forwarded into garbage.
    EXPECT_EQ(Oop(hd.get().getRef(nextOff_)).addr(), filler);
    rt_->handles().release(hd);
}

TEST_F(PjhGcTest, GcStatsSurviveReload)
{
    Oop head;
    for (int i = 0; i < 32; ++i)
        head = pnode(i, head);
    h_->setRoot("head", head);
    for (int i = 0; i < 500; ++i)
        pnode(-i);
    h_->collect(&rt_->heap());
    ASSERT_EQ(h_->stats().lastGcMarked, 32u);

    rt_->heaps().detachHeap("gc");
    PjhHeap *h2 = rt_->heaps().loadHeap("gc");
    EXPECT_EQ(h2->stats().lastGcMarked, 32u);
    EXPECT_EQ(h2->stats().collections, 1u);
    EXPECT_EQ(h2->meta().gcCollections, 1u);
}

TEST_F(PjhGcTest, RandomSharedGraphsSurviveRepeatedCollections)
{
    Rng rng(7);
    std::vector<Oop> pool;
    std::vector<std::string> roots;
    for (int i = 0; i < 400; ++i) {
        Oop next =
            pool.empty() ? Oop() : pool[rng.nextBelow(pool.size())];
        Oop n = pnode(i, next);
        pool.push_back(n);
        if (rng.nextBelow(8) == 0) {
            std::string rname = "r" + std::to_string(i);
            h_->setRoot(rname, n);
            roots.push_back(rname);
        }
    }
    ASSERT_FALSE(roots.empty());

    auto checksum = [&]() {
        std::int64_t sum = 0;
        for (const auto &r : roots)
            sum += listSum(h_->getRoot(r));
        return sum;
    };
    std::int64_t before = checksum();
    for (int i = 0; i < 4; ++i) {
        for (int g = 0; g < 500; ++g)
            pnode(-g);
        h_->collect(&rt_->heap());
        EXPECT_EQ(checksum(), before) << "iteration " << i;
    }
}

TEST_F(PjhGcTest, ConcurrentCycleCollectsAndRecordsStats)
{
    h_->setGcConcurrent(true);
    const int kLen = 200;
    Oop head;
    for (int i = kLen - 1; i >= 0; --i)
        head = pnode(i, head);
    h_->setRoot("head", head);
    for (int i = 0; i < 3000; ++i)
        pnode(-i);
    std::int64_t expected = listSum(h_->getRoot("head"));

    h_->collect(&rt_->heap());

    EXPECT_EQ(listSum(h_->getRoot("head")), expected);
    std::size_t count = 0;
    h_->forEachObject([&](Oop) { ++count; });
    EXPECT_EQ(count, static_cast<std::size_t>(kLen));
    EXPECT_EQ(h_->stats().collections, 1u);
    EXPECT_EQ(h_->stats().lastGcMarked, static_cast<std::uint64_t>(kLen));
    EXPECT_EQ(h_->meta().gcMarkEpoch, 1u);
    EXPECT_EQ(h_->meta().gcMarkingActive, 0u);
    // No mutators raced this cycle: nothing shaded, nothing floating.
    EXPECT_EQ(h_->stats().lastGcShaded, 0u);
    EXPECT_EQ(h_->stats().lastGcFloating, 0u);

    h_->collect(&rt_->heap());
    EXPECT_EQ(h_->meta().gcMarkEpoch, 2u);
    EXPECT_EQ(h_->stats().collections, 2u);

    // The per-cycle record survives detach/reload.
    rt_->heaps().detachHeap("gc");
    PjhHeap *h2 = rt_->heaps().loadHeap("gc");
    EXPECT_EQ(h2->meta().gcMarkEpoch, 2u);
    EXPECT_EQ(h2->stats().lastGcMarked, static_cast<std::uint64_t>(kLen));
    EXPECT_EQ(h2->stats().markDiscards, 0u);
}

TEST_F(PjhGcTest, SatbBarrierKeepsSnapshotAliveOneCycle)
{
    h_->setGcConcurrent(true);
    // A long rooted list widens the marking window so the overwrite
    // below usually lands mid-mark; the assertions hold either way.
    const int kLen = 3000;
    Oop head;
    std::set<std::int64_t> old_values;
    for (int i = kLen - 1; i >= 0; --i) {
        head = pnode(i, head);
        old_values.insert(i);
    }
    h_->setRoot("head", head);

    std::atomic<bool> done{false};
    std::thread collector([&]() {
        h_->collect(&rt_->heap());
        done.store(true, std::memory_order_release);
    });
    while (!done.load(std::memory_order_acquire) &&
           !h_->markingConcurrently())
        std::this_thread::yield();
    bool during_mark;
    {
        // Drop the whole old list by republishing the root. Under
        // SATB the overwritten snapshot must survive *this* cycle.
        PjhHeap::MutatorSection ms(*h_);
        bool mark_before = h_->markingConcurrently();
        Oop fresh = rt_->pnewInstance(h_, "Node");
        fresh.setI64(valueOff_, 777777);
        h_->flushObject(fresh);
        h_->setRoot("head", fresh);
        // Phase moves kMarking -> kPaused monotonically within a
        // cycle, so marking observed on both sides brackets the ops.
        during_mark = mark_before && h_->markingConcurrently();
    }
    collector.join();

    EXPECT_EQ(h_->getRoot("head").getI64(valueOff_), 777777);
    std::set<std::int64_t> seen;
    h_->forEachObject(
        [&](Oop o) { seen.insert(o.getI64(valueOff_)); });
    for (std::int64_t v : old_values) {
        ASSERT_TRUE(seen.count(v))
            << "snapshot value " << v
            << " collected in the cycle it was dropped";
    }
    if (during_mark) {
        // The deletion barrier, not the initial snapshot, kept it.
        EXPECT_GE(h_->stats().lastGcShaded + h_->stats().lastGcFloating,
                  1u);
    }

    // The next cycle reclaims the dropped list: it is garbage now.
    h_->collect(&rt_->heap());
    std::size_t live = 0;
    h_->forEachObject([&](Oop) { ++live; });
    EXPECT_EQ(live, 1u);
}

} // namespace
} // namespace espresso
