/**
 * @file
 * ORM tests: enhancer registration and DDL, CRUD equivalence of the
 * JPA and PJO providers across all four JPAB models, field-level
 * tracking, data deduplication, and the JPAB drivers themselves.
 */

#include <gtest/gtest.h>

#include "orm/entity_manager.hh"
#include "orm/jpa_provider.hh"
#include "orm/jpab_model.hh"
#include "orm/pjo_provider.hh"
#include "util/logging.hh"

namespace espresso {
namespace orm {
namespace {

/** One database + enhancer + em per provider under test. */
struct OrmRig
{
    explicit OrmRig(std::unique_ptr<Provider> p, JpabModel model)
        : provider(std::move(p))
    {
        db::DatabaseConfig cfg;
        cfg.rowRegionSize = 16u << 20;
        cfg.rowsPerTable = 4096;
        database = std::make_unique<db::Database>(cfg);
        registerJpabModel(enhancer, model);
        enhancer.createTables(*database);
        em = std::make_unique<EntityManager>(database.get(),
                                             provider.get(), &enhancer);
    }

    std::unique_ptr<Provider> provider;
    std::unique_ptr<db::Database> database;
    Enhancer enhancer;
    std::unique_ptr<EntityManager> em;
};

class OrmProviderTest : public ::testing::TestWithParam<bool>
{
  protected:
    std::unique_ptr<Provider>
    makeProvider() const
    {
        if (GetParam())
            return std::make_unique<PjoProvider>();
        return std::make_unique<JpaProvider>();
    }
};

TEST_P(OrmProviderTest, BasicCrudLifecycle)
{
    OrmRig rig(makeProvider(), JpabModel::kBasic);
    EntityManager &em = *rig.em;

    // Create (paper Fig. 3's snippet).
    em.begin();
    Entity *p = em.newEntity("PERSON");
    p->set("ID", db::DbValue::ofI64(1));
    p->set("FIRSTNAME", db::DbValue::ofStr("Mingyu"));
    p->set("LASTNAME", db::DbValue::ofStr("Wu"));
    p->set("PHONE", db::DbValue::ofStr("555"));
    p->set("EMAIL", db::DbValue::ofStr("m@sjtu"));
    em.persist(p);
    em.commit();
    em.clear();

    // Retrieve.
    em.begin();
    Entity *q = em.find("PERSON", 1);
    ASSERT_NE(q, nullptr);
    EXPECT_EQ(q->get("FIRSTNAME").s, "Mingyu");
    EXPECT_EQ(q->get("EMAIL").s, "m@sjtu");
    EXPECT_EQ(em.find("PERSON", 999), nullptr);

    // Update.
    q->set("PHONE", db::DbValue::ofStr("556"));
    em.commit();
    em.clear();

    em.begin();
    Entity *r = em.find("PERSON", 1);
    EXPECT_EQ(r->get("PHONE").s, "556");
    EXPECT_EQ(r->get("FIRSTNAME").s, "Mingyu");

    // Delete.
    em.remove(r);
    em.commit();
    em.clear();

    em.begin();
    EXPECT_EQ(em.find("PERSON", 1), nullptr);
    em.commit();
}

TEST_P(OrmProviderTest, InheritanceMapsToOneFlatTable)
{
    OrmRig rig(makeProvider(), JpabModel::kExt);
    EntityManager &em = *rig.em;

    em.begin();
    Entity *e = em.newEntity("PERSONEXT");
    e->set("ID", db::DbValue::ofI64(3));
    e->set("FIRSTNAME", db::DbValue::ofStr("Ada")); // inherited field
    e->set("PHONE", db::DbValue::ofStr("777"));     // own field
    em.persist(e);
    em.commit();
    em.clear();

    em.begin();
    Entity *f = em.find("PERSONEXT", 3);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->get("FIRSTNAME").s, "Ada");
    EXPECT_EQ(f->get("PHONE").s, "777");
    EXPECT_EQ(f->descriptor().super->name, "PERSONBASE");
    em.commit();
}

TEST_P(OrmProviderTest, CollectionsRoundTripAndUpdate)
{
    OrmRig rig(makeProvider(), JpabModel::kCollection);
    EntityManager &em = *rig.em;

    em.begin();
    Entity *e = em.newEntity("PERSONCOLL");
    e->set("ID", db::DbValue::ofI64(9));
    e->set("NAME", db::DbValue::ofStr("Coll"));
    e->collection(0) = {db::DbValue::ofStr("a"),
                        db::DbValue::ofStr("b")};
    e->touchCollection(0);
    em.persist(e);
    em.commit();
    em.clear();

    em.begin();
    Entity *f = em.find("PERSONCOLL", 9);
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(f->collection(0).size(), 2u);
    EXPECT_EQ(f->collection(0)[0].s, "a");
    EXPECT_EQ(f->collection(0)[1].s, "b");

    f->collection(0).push_back(db::DbValue::ofStr("c"));
    f->touchCollection(0);
    em.commit();
    em.clear();

    em.begin();
    Entity *g = em.find("PERSONCOLL", 9);
    ASSERT_EQ(g->collection(0).size(), 3u);
    EXPECT_EQ(g->collection(0)[2].s, "c");

    // Removing the entity removes its collection rows.
    em.remove(g);
    em.commit();
    EXPECT_EQ(rig.database->rowCount("PERSONCOLL_PHONES"), 0u);
}

TEST_P(OrmProviderTest, NodeReferencesResolve)
{
    OrmRig rig(makeProvider(), JpabModel::kNode);
    EntityManager &em = *rig.em;

    em.begin();
    for (int i = 0; i < 7; ++i) {
        Entity *n = em.newEntity("TREENODE");
        n->set("ID", db::DbValue::ofI64(i));
        n->set("NAME", db::DbValue::ofStr("n" + std::to_string(i)));
        n->set("LEFTID", db::DbValue::ofI64(2 * i + 1 < 7 ? 2 * i + 1
                                                          : 0));
        n->set("RIGHTID", db::DbValue::ofI64(2 * i + 2 < 7 ? 2 * i + 2
                                                           : 0));
        em.persist(n);
    }
    em.commit();
    em.clear();

    // Follow foreign keys root -> right child -> right child.
    em.begin();
    Entity *root = em.find("TREENODE", 0);
    ASSERT_NE(root, nullptr);
    Entity *right = em.find("TREENODE", root->get("RIGHTID").i);
    ASSERT_NE(right, nullptr);
    EXPECT_EQ(right->get("NAME").s, "n2");
    Entity *rr = em.find("TREENODE", right->get("RIGHTID").i);
    EXPECT_EQ(rr->get("NAME").s, "n6");
    em.commit();
}

TEST_P(OrmProviderTest, JpabDriversRunAllOps)
{
    for (JpabModel model :
         {JpabModel::kBasic, JpabModel::kExt, JpabModel::kCollection,
          JpabModel::kNode}) {
        OrmRig rig(makeProvider(), model);
        const int kN = 120;
        JpabResult created =
            runJpabOp(*rig.em, model, JpabOp::kCreate, kN);
        EXPECT_EQ(created.operations, static_cast<std::uint64_t>(kN));
        EXPECT_EQ(rig.database->rowCount(jpabEntityName(model)),
                  static_cast<std::size_t>(kN));
        runJpabOp(*rig.em, model, JpabOp::kRetrieve, kN);
        runJpabOp(*rig.em, model, JpabOp::kUpdate, kN);
        JpabResult deleted =
            runJpabOp(*rig.em, model, JpabOp::kDelete, kN);
        EXPECT_EQ(deleted.operations, static_cast<std::uint64_t>(kN));
        EXPECT_EQ(rig.database->rowCount(jpabEntityName(model)), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(BothProviders, OrmProviderTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool> &info) {
                             return info.param ? "PJO" : "JPA";
                         });

TEST(OrmPjoTest, FieldLevelTrackingSendsOnlyDirtyColumns)
{
    OrmRig rig(std::make_unique<PjoProvider>(/*enable_dedup=*/false),
               JpabModel::kBasic);
    EntityManager &em = *rig.em;

    em.begin();
    Entity *p = em.newEntity("PERSON");
    p->set("ID", db::DbValue::ofI64(1));
    p->set("FIRSTNAME", db::DbValue::ofStr("Ann"));
    em.persist(p);
    em.commit();
    em.clear();

    em.begin();
    Entity *q = em.find("PERSON", 1);
    q->set("PHONE", db::DbValue::ofStr("123"));
    EXPECT_TRUE(q->stateManager().isDirty(
        q->descriptor().fieldIndex("PHONE")));
    EXPECT_FALSE(q->stateManager().isDirty(
        q->descriptor().fieldIndex("FIRSTNAME")));
    // Sabotage a clean local value: the masked write must not ship it.
    q->mutableValues()[q->descriptor().fieldIndex("FIRSTNAME")] =
        db::DbValue::ofStr("GARBAGE");
    em.commit();
    em.clear();

    em.begin();
    Entity *r = em.find("PERSON", 1);
    EXPECT_EQ(r->get("PHONE").s, "123");
    EXPECT_EQ(r->get("FIRSTNAME").s, "Ann"); // garbage was masked out
    em.commit();
}

TEST(OrmPjoTest, DataDeduplicationRedirectsReads)
{
    OrmRig rig(std::make_unique<PjoProvider>(/*enable_dedup=*/true),
               JpabModel::kBasic);
    EntityManager &em = *rig.em;

    em.begin();
    Entity *p = em.newEntity("PERSON");
    p->set("ID", db::DbValue::ofI64(1));
    p->set("FIRSTNAME", db::DbValue::ofStr("Ann"));
    em.persist(p);
    em.commit();

    // Post-commit, the DRAM copy is released, reads go to the
    // persistent copy (Fig. 14d).
    ASSERT_TRUE(p->stateManager().deduplicated());
    std::size_t fn = p->descriptor().fieldIndex("FIRSTNAME");
    EXPECT_EQ(p->localValues()[fn].type, db::DbType::kNull);
    EXPECT_EQ(p->get("FIRSTNAME").s, "Ann");

    // Copy-on-write shadow: a write stays local until commit.
    em.begin();
    p->set("FIRSTNAME", db::DbValue::ofStr("Annie"));
    EXPECT_EQ(p->get("FIRSTNAME").s, "Annie"); // shadow visible
    db::DbRecord backend;
    ASSERT_TRUE(rig.database->fetchRecord("PERSON", 1, &backend));
    EXPECT_EQ(backend.values[fn].s, "Ann"); // backend not yet touched
    em.commit();
    ASSERT_TRUE(rig.database->fetchRecord("PERSON", 1, &backend));
    EXPECT_EQ(backend.values[fn].s, "Annie");
}

TEST(OrmTest, EnhancerValidation)
{
    Enhancer enhancer;
    EntityDescriptor bad;
    bad.name = "BAD";
    bad.fields = {{"NAME", db::DbType::kStr, false, ""}};
    EXPECT_THROW(enhancer.registerEntity(bad), FatalError);

    EntityDescriptor orphan;
    orphan.name = "ORPHAN";
    orphan.superName = "MISSING";
    orphan.fields = {{"ID", db::DbType::kI64, false, ""}};
    EXPECT_THROW(enhancer.registerEntity(orphan), FatalError);
}

} // namespace
} // namespace orm
} // namespace espresso
