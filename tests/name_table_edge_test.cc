/**
 * @file
 * Edge-case suite for the striped name table and the undo log's
 * record path — the crash-path bugfix regressions of the
 * thread-safety PR:
 *  - lookups of over-long names miss instead of aborting the process
 *    (setRoot/hasRoot/getRoot must be safe on untrusted input);
 *  - zero-length undo records are ignored instead of underflowing
 *    into the previous entry's payload/checksum;
 *  - full-table probe wraparound, duplicate kind-vs-name collisions,
 *    and upsert semantics, single- and multi-threaded.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/espresso.hh"
#include "nvm/nvm_device.hh"
#include "pjh/name_table.hh"
#include "pjh/undo_log.hh"
#include "util/logging.hh"

namespace espresso {
namespace {

// ---------------------------------------------------------------------
// Over-long names: lookups miss, only insertion is fatal
// ---------------------------------------------------------------------

TEST(NameTableEdgeTest, OverLongLookupMissesInsteadOfAborting)
{
    NvmDevice dev(1u << 20);
    NameTable t(&dev, dev.toAddr(0), 64);
    t.insert("present", NameKind::kRoot, 1);

    std::string long_name(NameEntry::kMaxName + 1, 'x');
    EXPECT_EQ(t.find(long_name, NameKind::kRoot), nullptr);
    EXPECT_EQ(t.find(std::string(4096, 'y'), NameKind::kKlass), nullptr);
    // Storing one is still a caller error.
    EXPECT_THROW(t.insert(long_name, NameKind::kRoot, 2), FatalError);
    EXPECT_THROW(t.upsert(long_name, NameKind::kRoot, 2), FatalError);
    // A name of exactly the limit round-trips.
    std::string max_name(NameEntry::kMaxName, 'm');
    t.insert(max_name, NameKind::kRoot, 3);
    ASSERT_NE(t.find(max_name, NameKind::kRoot), nullptr);
}

TEST(NameTableEdgeTest, HeapRootLookupsAreSafeOnUntrustedNames)
{
    EspressoRuntime rt;
    rt.define(KlassDef{"Node", "", {{"value", FieldType::kI64}}, false});
    PjhHeap *heap = rt.heaps().createHeap("edge", 2u << 20);

    std::string hostile(300, 'z');
    EXPECT_FALSE(heap->hasRoot(hostile));
    EXPECT_TRUE(heap->getRoot(hostile).isNull());

    Oop n = rt.pnewInstance(heap, "Node");
    heap->flushObject(n);
    EXPECT_THROW(heap->setRoot(hostile, n), FatalError);
    // The failed publication left the table usable.
    heap->setRoot("ok", n);
    EXPECT_FALSE(heap->getRoot("ok").isNull());
}

// ---------------------------------------------------------------------
// Probe wraparound and collision behaviour
// ---------------------------------------------------------------------

TEST(NameTableEdgeTest, FullTableProbeWrapsAndTerminates)
{
    NvmDevice dev(1u << 20);
    const std::size_t cap = 8;
    NameTable t(&dev, dev.toAddr(0), cap);
    // Fill every slot; later inserts must wrap past the hash bucket
    // to find empties near the front of the table.
    for (std::size_t i = 0; i < cap; ++i)
        t.insert("w" + std::to_string(i), NameKind::kRoot, i);
    EXPECT_EQ(t.count(), cap);
    for (std::size_t i = 0; i < cap; ++i) {
        NameEntry *e = t.find("w" + std::to_string(i), NameKind::kRoot);
        ASSERT_NE(e, nullptr) << "w" << i;
        EXPECT_EQ(e->value, i);
    }
    // With zero empty slots the probe must still terminate: a miss
    // scans exactly one full round.
    EXPECT_EQ(t.find("absent", NameKind::kRoot), nullptr);
    EXPECT_THROW(t.insert("overflow", NameKind::kRoot, 0), FatalError);
    // Updating in a full table still works (no insertion needed).
    t.upsert("w3", NameKind::kRoot, 333);
    EXPECT_EQ(t.find("w3", NameKind::kRoot)->value, 333u);
}

TEST(NameTableEdgeTest, SameNameDifferentKindsCoexist)
{
    NvmDevice dev(1u << 20);
    NameTable t(&dev, dev.toAddr(0), 8);
    t.insert("dup", NameKind::kRoot, 10);
    t.insert("dup", NameKind::kKlass, 20);
    ASSERT_NE(t.find("dup", NameKind::kRoot), nullptr);
    ASSERT_NE(t.find("dup", NameKind::kKlass), nullptr);
    EXPECT_EQ(t.find("dup", NameKind::kRoot)->value, 10u);
    EXPECT_EQ(t.find("dup", NameKind::kKlass)->value, 20u);
    // Same (name, kind) pair is the only duplicate.
    EXPECT_THROW(t.insert("dup", NameKind::kRoot, 30), FatalError);
    t.upsert("dup", NameKind::kRoot, 30);
    EXPECT_EQ(t.find("dup", NameKind::kRoot)->value, 30u);
    EXPECT_EQ(t.find("dup", NameKind::kKlass)->value, 20u);
}

TEST(NameTableEdgeTest, ConcurrentUpsertsConvergeToOneEntry)
{
    NvmDevice dev(4u << 20);
    NameTable t(&dev, dev.toAddr(0), 256);
    constexpr int kThreads = 4;
    constexpr int kPerThread = 32;

    std::vector<std::thread> workers;
    for (int w = 0; w < kThreads; ++w) {
        workers.emplace_back([&t, w]() {
            for (int i = 0; i < kPerThread; ++i) {
                // Every thread hammers one shared name and owns a
                // private range.
                t.upsert("shared", NameKind::kRoot,
                         static_cast<Word>(w * 1000 + i));
                t.upsert("t" + std::to_string(w) + "-" +
                             std::to_string(i),
                         NameKind::kRoot, static_cast<Word>(i));
                t.find("shared", NameKind::kRoot);
            }
        });
    }
    for (auto &th : workers)
        th.join();

    // Exactly one "shared" entry survives, holding one of the
    // written values; every private name is present.
    std::size_t shared_entries = 0;
    t.forEach([&](NameEntry &e) {
        if (std::strcmp(e.name, "shared") == 0)
            ++shared_entries;
    });
    EXPECT_EQ(shared_entries, 1u);
    EXPECT_EQ(t.count(), 1u + kThreads * kPerThread);
    for (int w = 0; w < kThreads; ++w) {
        for (int i = 0; i < kPerThread; ++i) {
            ASSERT_NE(t.find("t" + std::to_string(w) + "-" +
                                 std::to_string(i),
                             NameKind::kRoot),
                      nullptr);
        }
    }
}

// ---------------------------------------------------------------------
// Undo log: zero-length records
// ---------------------------------------------------------------------

class UndoLogEdgeTest : public ::testing::Test
{
  protected:
    static constexpr std::size_t kLogSize = 16u << 10;
    static constexpr std::size_t kDataSize = 4096;

    UndoLogEdgeTest() : dev_((kLogSize + kDataSize) * 2)
    {
        log_ = UndoLog(&dev_, dev_.toAddr(0), kLogSize,
                       dev_.toAddr(kLogSize));
        data_ = dev_.toAddr(kLogSize);
    }

    Word *
    word(std::size_t i)
    {
        return reinterpret_cast<Word *>(data_) + i;
    }

    NvmDevice dev_;
    UndoLog log_;
    Addr data_ = 0;
};

TEST_F(UndoLogEdgeTest, ZeroLengthRecordDoesNotCorruptPreviousEntry)
{
    *word(0) = 0xAAAA;
    *word(1) = 0xBBBB;
    dev_.persist(data_, 2 * kWordSize);

    log_.begin();
    log_.record(reinterpret_cast<Addr>(word(0)), kWordSize);
    // The regression: a zero-length record used to write
    // old_bytes[-1], zeroing the previous entry's checksum word so
    // rollback silently dropped it.
    log_.record(reinterpret_cast<Addr>(word(1)), 0);
    *word(0) = 0x1111;
    *word(1) = 0x2222;
    dev_.persist(data_, 2 * kWordSize);
    log_.abort();

    EXPECT_EQ(*word(0), 0xAAAAu) << "guarded overwrite must roll back";
    // word(1) was recorded with zero length: nothing guarded,
    // nothing restored.
    EXPECT_EQ(*word(1), 0x2222u);
}

TEST_F(UndoLogEdgeTest, ZeroLengthOnlyTransactionCommitsAndAborts)
{
    log_.begin();
    log_.record(data_, 0);
    log_.commit();

    log_.begin();
    log_.record(data_, 0);
    log_.abort();

    // The log stays fully usable for real records.
    *word(2) = 7;
    dev_.persist(reinterpret_cast<Addr>(word(2)), kWordSize);
    log_.begin();
    log_.record(reinterpret_cast<Addr>(word(2)), kWordSize);
    *word(2) = 8;
    log_.abort();
    EXPECT_EQ(*word(2), 7u);
}

} // namespace
} // namespace espresso
