/**
 * @file
 * Crash-matrix driver: a table of step sequences built from the four
 * durability primitives — pnew (allocate + flushObject), flushField,
 * setRoot, and WAL commit — each swept against a power failure at
 * every persistence event, under both crash modes (conservative
 * discard-unflushed and random cache eviction).
 *
 * Where pjh_crash_test / db_crash_test each sweep one fixed workload,
 * this driver enumerates *orderings* of the primitives, so the
 * pairwise interactions (publish-before-flush, re-flush after
 * publish, interleaved allocation and publication, WAL commit
 * brackets of varying width) are all covered by one regression gate.
 *
 * Recovery invariants asserted after every injected crash (§3/§4):
 *  - the heap parses end to end (torn allocation tails repaired);
 *  - every published root is a well-formed object whose flushed
 *    field holds a value that was durably written at some point —
 *    never a torn or invented value;
 *  - committed WAL transactions are atomic: all statements or none;
 *  - the recovered instance stays fully usable (new allocations,
 *    publications and transactions succeed).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/espresso.hh"
#include "db/database.hh"
#include "nvm/crash_injector.hh"
#include "util/rng.hh"

namespace espresso {
namespace {

// ---------------------------------------------------------------------
// PJH-side matrix: sequences over pnew / flushField / setRoot
// ---------------------------------------------------------------------

/** One primitive step of a PJH sequence. */
enum class Step : std::uint8_t {
    kPnew,       ///< allocate a Node, init value, flushObject
    kFlushField, ///< overwrite value on the latest node, flushField
    kSetRoot,    ///< durably publish the latest node as a fresh root
};

using Sequence = std::vector<Step>;

/** The step orderings swept by the matrix. */
const std::vector<std::pair<const char *, Sequence>> &
sequences()
{
    using S = Step;
    static const std::vector<std::pair<const char *, Sequence>> kSeqs = {
        {"alloc-publish", {S::kPnew, S::kSetRoot, S::kPnew, S::kSetRoot}},
        {"alloc-burst-then-publish",
         {S::kPnew, S::kPnew, S::kPnew, S::kSetRoot}},
        {"flush-after-publish",
         {S::kPnew, S::kSetRoot, S::kFlushField, S::kFlushField}},
        {"flush-before-publish",
         {S::kPnew, S::kFlushField, S::kSetRoot, S::kFlushField,
          S::kSetRoot}},
        {"republish-mutated",
         {S::kPnew, S::kSetRoot, S::kFlushField, S::kSetRoot, S::kPnew,
          S::kFlushField, S::kSetRoot}},
    };
    return kSeqs;
}

KlassDef
nodeDef()
{
    return KlassDef{"Node",
                    "",
                    {{"value", FieldType::kI64}, {"next", FieldType::kRef}},
                    false};
}

constexpr const char *kHeapName = "matrix";

/** Environment for one sweep iteration plus the expected-state model. */
struct MatrixRig
{
    MatrixRig()
    {
        rt = std::make_unique<EspressoRuntime>();
        rt->define(nodeDef());
        valueOff = rt->fieldOffset("Node", "value");
        heap = rt->heaps().createHeap(kHeapName, 2u << 20);
        rt->heaps().deviceOf(kHeapName)->setInjector(&injector);
    }

    /**
     * Run @p seq to completion or SimulatedCrash. Tracks every value
     * durably written into a value field; a recovered root must read
     * back one of those.
     */
    void
    run(const Sequence &seq)
    {
        Oop node;
        std::int64_t next_value = 1;
        int root_idx = 0;
        for (Step s : seq) {
            switch (s) {
            case Step::kPnew:
                node = rt->pnewInstance(heap, "Node");
                node.setI64(valueOff, next_value);
                writtenValues.insert(next_value);
                ++next_value;
                heap->flushObject(node);
                break;
            case Step::kFlushField:
                ASSERT_FALSE(node.isNull());
                node.setI64(valueOff, next_value);
                writtenValues.insert(next_value);
                ++next_value;
                heap->flushField(node, valueOff);
                break;
            case Step::kSetRoot:
                ASSERT_FALSE(node.isNull());
                heap->setRoot("r" + std::to_string(root_idx++), node);
                break;
            }
        }
    }

    std::unique_ptr<EspressoRuntime> rt;
    PjhHeap *heap = nullptr;
    CrashInjector injector;
    std::uint32_t valueOff = 0;
    std::set<std::int64_t> writtenValues;
};

void
verifyRecovered(MatrixRig &rig, PjhHeap *h, const char *seq_name,
                std::uint64_t event)
{
    // Invariant 1: the heap parses end to end.
    std::size_t objects = 0;
    ASSERT_NO_THROW(h->forEachObject([&](Oop) { ++objects; }))
        << seq_name << " event " << event;

    // Invariant 2: every surviving root is a well-formed Node whose
    // value field reads back a value that was actually written —
    // recovery may lose an unfenced update but never invents one.
    for (int r = 0; r < 8; ++r) {
        Oop root = h->getRoot("r" + std::to_string(r));
        if (root.isNull())
            continue;
        ASSERT_EQ(root.klass()->name(), "Node")
            << seq_name << " event " << event << " root " << r;
        std::int64_t v = root.getI64(rig.valueOff);
        EXPECT_TRUE(rig.writtenValues.count(v))
            << seq_name << " event " << event << " root " << r
            << " holds invented value " << v;
    }

    // Invariant 3: the recovered heap accepts new work.
    Oop extra = rig.rt->pnewInstance(h, "Node");
    extra.setI64(rig.valueOff, 424242);
    h->flushObject(extra);
    h->setRoot("extra", extra);
    EXPECT_EQ(h->getRoot("extra").getI64(rig.valueOff), 424242)
        << seq_name << " event " << event;
}

/** Sweep one sequence: crash at every persistence event, recover, verify. */
void
sweepSequence(const char *name, const Sequence &seq, CrashMode mode,
              std::uint64_t seed)
{
    for (std::uint64_t event = 1;; ++event) {
        MatrixRig rig;
        rig.injector.arm(event);
        bool crashed = false;
        try {
            rig.run(seq);
        } catch (const SimulatedCrash &) {
            crashed = true;
        }
        rig.injector.disarm();
        if (testing::Test::HasFatalFailure())
            return;
        if (!crashed) {
            // Past the end of the event stream: verify the clean
            // detach/reload path too, then stop.
            rig.rt->heaps().detachHeap(kHeapName);
            PjhHeap *h = rig.rt->heaps().loadHeap(kHeapName);
            verifyRecovered(rig, h, name, 0);
            ASSERT_GT(event, 1u) << name << ": workload produced no events";
            break;
        }
        rig.rt->heaps().crashHeap(kHeapName, mode, seed + event);
        PjhHeap *h = rig.rt->heaps().loadHeap(kHeapName);
        verifyRecovered(rig, h, name, event);
    }
}

TEST(CrashMatrixTest, PjhSequencesConservative)
{
    for (const auto &[name, seq] : sequences())
        sweepSequence(name, seq, CrashMode::kDiscardUnflushed, 1);
}

TEST(CrashMatrixTest, PjhSequencesWithCacheEviction)
{
    for (const auto &[name, seq] : sequences())
        for (std::uint64_t seed : {101u, 202u})
            sweepSequence(name, seq, CrashMode::kEvictRandomLines, seed);
}

// ---------------------------------------------------------------------
// Multi-threaded PJH matrix: N allocator/root-mutator threads,
// crashed at randomized persistence events
// ---------------------------------------------------------------------

/**
 * Each worker allocates Nodes, stamps them with thread-unique
 * values, durably flushes them, and periodically publishes the
 * freshest one under a thread-private root name. A crash fires at a
 * randomized persistence event; the injector then kills every other
 * thread at its own next persistence point (power loss is global).
 *
 * Invariants after recovery (§4.1 extended with per-thread TLABs):
 *  - the heap parses end to end (at most one torn tail per TLAB,
 *    all plugged);
 *  - every surviving root is a well-formed Node holding a value some
 *    thread actually wrote — never torn or invented;
 *  - the recovered heap accepts new allocations and publications
 *    from multiple threads at once.
 */
struct MtRig
{
    static constexpr int kThreads = 4;
    static constexpr int kOpsPerThread = 60;

    MtRig()
    {
        rt = std::make_unique<EspressoRuntime>();
        rt->define(nodeDef());
        valueOff = rt->fieldOffset("Node", "value");
        heap = rt->heaps().createHeap(kHeapName, 8u << 20);
        rt->heaps().deviceOf(kHeapName)->setInjector(&injector);
    }

    /** Runs the workload; returns true when a crash fired. */
    bool
    run()
    {
        std::atomic<bool> crashed{false};
        std::vector<std::thread> workers;
        for (int w = 0; w < kThreads; ++w) {
            workers.emplace_back([this, w, &crashed]() {
                std::set<std::int64_t> written;
                try {
                    for (int i = 0; i < kOpsPerThread &&
                                    !crashed.load(
                                        std::memory_order_relaxed);
                         ++i) {
                        std::int64_t v = w * 1000000 + i;
                        Oop node = rt->pnewInstance(heap, "Node");
                        node.setI64(valueOff, v);
                        written.insert(v);
                        heap->flushObject(node);
                        if (i % 3 == 0) {
                            heap->setRoot("t" + std::to_string(w),
                                          node);
                        } else if (i % 3 == 1) {
                            // In-place mutation of the latest node.
                            std::int64_t v2 = v + 500000;
                            node.setI64(valueOff, v2);
                            written.insert(v2);
                            heap->flushField(node, valueOff);
                        }
                    }
                } catch (const SimulatedCrash &) {
                    crashed.store(true, std::memory_order_relaxed);
                }
                std::lock_guard<std::mutex> g(writtenMu);
                writtenValues.insert(written.begin(), written.end());
            });
        }
        for (auto &t : workers)
            t.join();
        return crashed.load();
    }

    std::unique_ptr<EspressoRuntime> rt;
    PjhHeap *heap = nullptr;
    CrashInjector injector;
    std::uint32_t valueOff = 0;
    std::mutex writtenMu;
    std::set<std::int64_t> writtenValues;
};

void
verifyMtRecovered(MtRig &rig, PjhHeap *h, std::uint64_t event)
{
    // Invariant 1: the heap parses end to end.
    std::size_t objects = 0;
    ASSERT_NO_THROW(h->forEachObject([&](Oop) { ++objects; }))
        << "mt event " << event;

    // Invariant 2: surviving roots are well-formed and hold only
    // values some thread durably wrote.
    for (int w = 0; w < MtRig::kThreads; ++w) {
        Oop root = h->getRoot("t" + std::to_string(w));
        if (root.isNull())
            continue;
        ASSERT_EQ(root.klass()->name(), "Node")
            << "mt event " << event << " thread " << w;
        std::int64_t v = root.getI64(rig.valueOff);
        EXPECT_TRUE(rig.writtenValues.count(v))
            << "mt event " << event << " root t" << w
            << " holds invented value " << v;
    }

    // Invariant 3: the recovered heap takes concurrent new work.
    std::vector<std::thread> workers;
    for (int w = 0; w < MtRig::kThreads; ++w) {
        workers.emplace_back([&rig, h, w]() {
            for (int i = 0; i < 8; ++i) {
                Oop extra = rig.rt->pnewInstance(h, "Node");
                extra.setI64(rig.valueOff, 777000 + w);
                h->flushObject(extra);
                h->setRoot("extra" + std::to_string(w), extra);
            }
        });
    }
    for (auto &t : workers)
        t.join();
    for (int w = 0; w < MtRig::kThreads; ++w) {
        EXPECT_EQ(h->getRoot("extra" + std::to_string(w))
                      .getI64(rig.valueOff),
                  777000 + w)
            << "mt event " << event;
    }
}

void
sweepMt(CrashMode mode, std::uint64_t seed, int iterations)
{
    // Size the random crash points against an uninterrupted run.
    std::uint64_t max_events;
    {
        MtRig probe;
        ASSERT_FALSE(probe.run());
        max_events = probe.injector.eventCount();
        ASSERT_GT(max_events, 0u);
    }

    Rng rng(seed);
    for (int it = 0; it < iterations; ++it) {
        std::uint64_t event = 1 + rng.nextBelow(max_events);
        MtRig rig;
        rig.injector.arm(event);
        bool crashed = rig.run();
        rig.injector.disarm();
        if (testing::Test::HasFatalFailure())
            return;
        if (!crashed) {
            // Thread interleaving reached fewer events this run;
            // exercise the clean detach/reload path instead.
            rig.rt->heaps().detachHeap(kHeapName);
            PjhHeap *h = rig.rt->heaps().loadHeap(kHeapName);
            verifyMtRecovered(rig, h, 0);
            continue;
        }
        rig.rt->heaps().crashHeap(kHeapName, mode, seed + event);
        PjhHeap *h = rig.rt->heaps().loadHeap(kHeapName);
        verifyMtRecovered(rig, h, event);
    }
}

TEST(CrashMatrixTest, MtAllocRootSweepConservative)
{
    sweepMt(CrashMode::kDiscardUnflushed, 31, 24);
}

TEST(CrashMatrixTest, MtAllocRootSweepWithCacheEviction)
{
    sweepMt(CrashMode::kEvictRandomLines, 57, 24);
}

// ---------------------------------------------------------------------
// GC matrix: crashes injected mid-collection (mark persists, slice
// compaction, finish), single- and multi-slice, then recovered via
// compact(resume=true)
// ---------------------------------------------------------------------

/**
 * A heap of rooted lists interleaved with garbage, collected with a
 * crash injected at a randomized persistence event of the collection
 * itself. Recovery replays only unfinished compaction slices.
 *
 * Invariants after recovery (§4.2/§4.3 extended with slices):
 *  - the heap parses end to end (inter-slice gaps plugged);
 *  - every root resolves to its full list — exact length, exact
 *    values, so no node was lost, invented, or moved twice (every
 *    value is unique; a double-move would surface as a duplicated
 *    or clobbered node);
 *  - every surviving object is one the workload wrote;
 *  - the recovered heap accepts new work and a follow-up clean
 *    collection that drops all remaining garbage.
 */
/** 48-byte list node: deliberately does NOT divide the 64 KiB region
 * size, so packed live objects straddle region boundaries and slice
 * planning must route cuts around them. */
KlassDef
gcNodeDef()
{
    return KlassDef{"GcNode",
                    "",
                    {{"value", FieldType::kI64},
                     {"next", FieldType::kRef},
                     {"pad1", FieldType::kI64},
                     {"pad2", FieldType::kI64}},
                    false};
}

struct GcRig
{
    static constexpr int kRoots = 6;
    static constexpr int kPerList = 400;
    static constexpr int kGarbagePerLive = 3;

    explicit GcRig(unsigned gc_threads)
    {
        rt = std::make_unique<EspressoRuntime>();
        rt->define(gcNodeDef());
        valueOff = rt->fieldOffset("GcNode", "value");
        nextOff = rt->fieldOffset("GcNode", "next");
        rt->heaps().setGcThreads(gc_threads);
        heap = rt->heaps().createHeap(kHeapName, 16u << 20);

        std::int64_t next_value = 1;
        for (int r = 0; r < kRoots; ++r) {
            Oop head;
            for (int i = 0; i < kPerList; ++i) {
                head = node(next_value, head);
                liveValues.insert(next_value);
                ++next_value;
                for (int g = 0; g < kGarbagePerLive; ++g) {
                    node(-next_value, Oop());
                    writtenValues.insert(-next_value);
                    ++next_value;
                }
            }
            heap->setRoot("r" + std::to_string(r), head);
        }
        writtenValues.insert(liveValues.begin(), liveValues.end());
        // Only the collection's own persistence events are swept.
        rt->heaps().deviceOf(kHeapName)->setInjector(&injector);
    }

    Oop
    node(std::int64_t v, Oop next)
    {
        Oop n = rt->pnewInstance(heap, "GcNode");
        n.setI64(valueOff, v);
        n.setRef(nextOff, next);
        heap->flushObject(n);
        return n;
    }

    std::unique_ptr<EspressoRuntime> rt;
    PjhHeap *heap = nullptr;
    CrashInjector injector;
    std::uint32_t valueOff = 0, nextOff = 0;
    std::set<std::int64_t> liveValues;
    std::set<std::int64_t> writtenValues;
};

void
verifyGcRecovered(GcRig &rig, PjhHeap *h, std::uint64_t event)
{
    // Invariant 1: the heap parses end to end, and every surviving
    // object holds a value the workload wrote, at most once each (a
    // node moved twice would appear twice or clobber a neighbour).
    std::multiset<std::int64_t> seen;
    ASSERT_NO_THROW(h->forEachObject([&](Oop o) {
        ASSERT_EQ(o.klass()->name(), "GcNode") << "gc event " << event;
        seen.insert(o.getI64(rig.valueOff));
    })) << "gc event "
        << event;
    for (std::int64_t v : seen) {
        EXPECT_TRUE(rig.writtenValues.count(v))
            << "gc event " << event << " invented value " << v;
        EXPECT_EQ(seen.count(v), 1u)
            << "gc event " << event << " value " << v
            << " duplicated (object moved twice?)";
    }
    // ... and no live node was lost.
    for (std::int64_t v : rig.liveValues) {
        ASSERT_EQ(seen.count(v), 1u)
            << "gc event " << event << " live value " << v << " lost";
    }

    // Invariant 2: every root resolves to its full, exact list.
    for (int r = 0; r < GcRig::kRoots; ++r) {
        Oop cur = h->getRoot("r" + std::to_string(r));
        int len = 0;
        std::int64_t prev = 0;
        while (!cur.isNull()) {
            ASSERT_EQ(cur.klass()->name(), "GcNode")
                << "gc event " << event << " root " << r;
            std::int64_t v = cur.getI64(rig.valueOff);
            ASSERT_TRUE(rig.liveValues.count(v))
                << "gc event " << event << " root " << r
                << " reaches non-live value " << v;
            // Lists were built head-first with ascending values.
            if (len > 0) {
                ASSERT_LT(v, prev)
                    << "gc event " << event << " root " << r;
            }
            prev = v;
            cur = Oop(cur.getRef(rig.nextOff));
            ASSERT_LE(++len, GcRig::kPerList)
                << "gc event " << event << " root " << r;
        }
        ASSERT_EQ(len, GcRig::kPerList)
            << "gc event " << event << " root " << r;
    }

    // Invariant 3: the recovered heap takes new work and a clean
    // follow-up collection that drops every remaining garbage node.
    Oop extra = rig.rt->pnewInstance(h, "GcNode");
    extra.setI64(rig.valueOff, 987654);
    h->flushObject(extra);
    h->setRoot("extra", extra);
    h->collect(nullptr);
    EXPECT_EQ(h->getRoot("extra").getI64(rig.valueOff), 987654)
        << "gc event " << event;
    std::size_t live_after = 0;
    h->forEachObject([&](Oop) { ++live_after; });
    EXPECT_EQ(live_after,
              static_cast<std::size_t>(GcRig::kRoots *
                                       GcRig::kPerList) +
                  1)
        << "gc event " << event;
}

void
sweepGc(CrashMode mode, std::uint64_t seed, int iterations,
        unsigned gc_threads)
{
    // Size the random crash points against an uninterrupted
    // collection (the injector only observes the GC: it is attached
    // after the workload is built).
    std::uint64_t max_events;
    {
        GcRig probe(gc_threads);
        probe.heap->collect(nullptr);
        max_events = probe.injector.eventCount();
        ASSERT_GT(max_events, 0u);
    }

    Rng rng(seed);
    bool saw_multi_slice_recovery = false;
    for (int it = 0; it < iterations; ++it) {
        GcRig rig(gc_threads);
        std::uint64_t event = 1 + rng.nextBelow(max_events);
        rig.injector.arm(event);
        bool crashed = false;
        try {
            rig.heap->collect(nullptr);
        } catch (const SimulatedCrash &) {
            crashed = true;
        }
        rig.injector.disarm();
        if (testing::Test::HasFatalFailure())
            return;
        if (!crashed) {
            // Event landed past the collection (worker interleaving
            // shifted the stream): verify the clean path instead.
            rig.rt->heaps().detachHeap(kHeapName);
            PjhHeap *h = rig.rt->heaps().loadHeap(kHeapName);
            verifyGcRecovered(rig, h, 0);
            continue;
        }
        rig.rt->heaps().crashHeap(kHeapName, mode, seed + event);
        PjhHeap *h = rig.rt->heaps().loadHeap(kHeapName);
        if (h->stats().recoveries > 0 && h->meta().gcSliceCount > 1)
            saw_multi_slice_recovery = true;
        verifyGcRecovered(rig, h, event);
        if (testing::Test::HasFatalFailure())
            return;
    }
    if (gc_threads > 1) {
        // The sweep must actually exercise multi-slice resume, not
        // just pre-compaction crashes.
        EXPECT_TRUE(saw_multi_slice_recovery)
            << "no iteration crashed inside a multi-slice compaction";
    }
}

TEST(CrashMatrixTest, GcSweepSingleSliceConservative)
{
    sweepGc(CrashMode::kDiscardUnflushed, 11, 10, 1);
}

TEST(CrashMatrixTest, GcSweepSingleSliceWithCacheEviction)
{
    sweepGc(CrashMode::kEvictRandomLines, 23, 10, 1);
}

TEST(CrashMatrixTest, GcSweepMultiSliceConservative)
{
    sweepGc(CrashMode::kDiscardUnflushed, 37, 14, 4);
}

TEST(CrashMatrixTest, GcSweepMultiSliceWithCacheEviction)
{
    sweepGc(CrashMode::kEvictRandomLines, 53, 14, 4);
}

// ---------------------------------------------------------------------
// Concurrent-marking matrix: mutator threads race a SATB cycle, power
// fails at a randomized persistence event of either side; recovery
// must resume (gcInProgress durable) or discard (gcMarkingActive
// alone) without losing, inventing, or double-moving an object
// ---------------------------------------------------------------------

/**
 * Pre-built rooted lists (the snapshot-live set, immutable during the
 * run) share the heap with garbage and with mutator threads that
 * allocate, flush, publish, link and unlink nodes *while* a
 * concurrent collection runs. Crash points come in two flavours:
 * uniformly random over the whole interleaved event stream, and
 * targeted — armed only once marking is observed overlapping the
 * mutators, so the sweep provably exercises the discard window
 * (gcMarkingActive persisted, gcInProgress not yet).
 *
 * Invariants after recovery:
 *  - the heap parses end to end;
 *  - no snapshot-live node is ever lost, invented, or moved twice,
 *    whichever path recovery took;
 *  - mutator roots never hold a value no thread durably wrote;
 *  - the recovered heap takes new work, and a clean follow-up
 *    concurrent cycle drops every remaining pre-crash garbage node.
 */
struct ConcRig
{
    static constexpr int kRoots = 4;
    static constexpr int kPerList = 250;
    static constexpr int kGarbagePerLive = 2;
    static constexpr int kMutators = 3;
    static constexpr int kOpsPerThread = 80;

    ConcRig()
    {
        rt = std::make_unique<EspressoRuntime>();
        rt->define(gcNodeDef());
        valueOff = rt->fieldOffset("GcNode", "value");
        nextOff = rt->fieldOffset("GcNode", "next");
        rt->heaps().setGcThreads(2);
        heap = rt->heaps().createHeap(kHeapName, 16u << 20);
        heap->setGcConcurrent(true);

        std::int64_t next_value = 1;
        for (int r = 0; r < kRoots; ++r) {
            Oop head;
            for (int i = 0; i < kPerList; ++i) {
                head = node(next_value, head);
                liveValues.insert(next_value);
                ++next_value;
                for (int g = 0; g < kGarbagePerLive; ++g) {
                    node(-next_value, Oop());
                    writtenValues.insert(-next_value);
                    ++next_value;
                }
            }
            heap->setRoot("r" + std::to_string(r), head);
        }
        writtenValues.insert(liveValues.begin(), liveValues.end());
        rt->heaps().deviceOf(kHeapName)->setInjector(&injector);
    }

    Oop
    node(std::int64_t v, Oop next)
    {
        Oop n = rt->pnewInstance(heap, "GcNode");
        n.setI64(valueOff, v);
        n.setRef(nextOff, next);
        heap->flushObject(n);
        return n;
    }

    /** One mutator: allocate/flush/publish/link/unlink under the
     * concurrent-mode contract (compound ops in a MutatorSection). */
    void
    mutate(int w, std::atomic<bool> &crashed)
    {
        std::set<std::int64_t> written;
        const std::string root = "mt" + std::to_string(w);
        try {
            for (int i = 0;
                 i < kOpsPerThread &&
                 !crashed.load(std::memory_order_relaxed);
                 ++i) {
                std::int64_t v = 10000000 + w * 1000000 + i;
                PjhHeap::MutatorSection ms(*heap);
                Oop n = rt->pnewInstance(heap, "GcNode");
                n.setI64(valueOff, v);
                written.insert(v);
                heap->flushObject(n);
                switch (i % 4) {
                case 0:
                    // Republish: drops the previous chain (deletion
                    // barrier shades it).
                    heap->setRoot(root, n);
                    break;
                case 1: {
                    // Push onto the chain (insertion barrier).
                    Oop head = heap->getRoot(root);
                    if (!head.isNull())
                        heap->storeRef(n, nextOff, head);
                    heap->setRoot(root, n);
                    break;
                }
                case 2: {
                    std::int64_t v2 = v + 500000;
                    n.setI64(valueOff, v2);
                    written.insert(v2);
                    heap->flushField(n, valueOff);
                    break;
                }
                case 3: {
                    // Unlink the chain tail (deletion barrier).
                    Oop head = heap->getRoot(root);
                    if (!head.isNull())
                        heap->storeRef(head, nextOff, Oop());
                    break;
                }
                }
            }
        } catch (const SimulatedCrash &) {
            crashed.store(true, std::memory_order_relaxed);
        }
        std::lock_guard<std::mutex> g(writtenMu);
        writtenValues.insert(written.begin(), written.end());
    }

    /**
     * Mutators race one concurrent collection. @p arm_after_marking
     * == 0: the caller pre-armed the injector. > 0: arm that many
     * events ahead once marking is observed overlapping the mutators
     * (lands the crash in or just past the marking window).
     */
    bool
    run(std::uint64_t arm_after_marking)
    {
        std::atomic<bool> crashed{false};
        std::atomic<bool> gc_done{false};
        std::vector<std::thread> workers;
        for (int w = 0; w < kMutators; ++w)
            workers.emplace_back(
                [this, w, &crashed]() { mutate(w, crashed); });
        std::thread collector([this, &crashed, &gc_done]() {
            try {
                heap->collect(nullptr);
            } catch (const SimulatedCrash &) {
                crashed.store(true, std::memory_order_relaxed);
            }
            gc_done.store(true, std::memory_order_release);
        });
        if (arm_after_marking > 0) {
            while (!gc_done.load(std::memory_order_acquire) &&
                   !heap->markingConcurrently())
                std::this_thread::yield();
            if (!gc_done.load(std::memory_order_acquire))
                injector.arm(arm_after_marking);
        }
        collector.join();
        for (auto &t : workers)
            t.join();
        return crashed.load();
    }

    std::unique_ptr<EspressoRuntime> rt;
    PjhHeap *heap = nullptr;
    CrashInjector injector;
    std::uint32_t valueOff = 0, nextOff = 0;
    std::set<std::int64_t> liveValues;
    std::mutex writtenMu;
    std::set<std::int64_t> writtenValues;
};

void
verifyConcRecovered(ConcRig &rig, PjhHeap *h, std::uint64_t event)
{
    // Invariant 1: the heap parses end to end, and the snapshot-live
    // set was neither lost nor duplicated (a node moved twice would
    // surface as a duplicate).
    std::multiset<std::int64_t> seen;
    ASSERT_NO_THROW(h->forEachObject([&](Oop o) {
        if (o.klass()->name() == "GcNode")
            seen.insert(o.getI64(rig.valueOff));
    })) << "conc event "
        << event;
    for (std::int64_t v : rig.liveValues) {
        ASSERT_EQ(seen.count(v), 1u)
            << "conc event " << event << " live value " << v
            << " lost or duplicated";
    }

    // Invariant 2: every pre-built root resolves its full exact list.
    for (int r = 0; r < ConcRig::kRoots; ++r) {
        Oop cur = h->getRoot("r" + std::to_string(r));
        int len = 0;
        std::int64_t prev = 0;
        while (!cur.isNull()) {
            ASSERT_EQ(cur.klass()->name(), "GcNode")
                << "conc event " << event << " root " << r;
            std::int64_t v = cur.getI64(rig.valueOff);
            ASSERT_TRUE(rig.liveValues.count(v))
                << "conc event " << event << " root " << r
                << " reaches non-live value " << v;
            if (len > 0) {
                ASSERT_LT(v, prev)
                    << "conc event " << event << " root " << r;
            }
            prev = v;
            cur = Oop(cur.getRef(rig.nextOff));
            ASSERT_LE(++len, ConcRig::kPerList)
                << "conc event " << event << " root " << r;
        }
        ASSERT_EQ(len, ConcRig::kPerList)
            << "conc event " << event << " root " << r;
    }

    // Invariant 3: mutator roots never hold an invented value.
    for (int w = 0; w < ConcRig::kMutators; ++w) {
        Oop root = h->getRoot("mt" + std::to_string(w));
        if (root.isNull())
            continue;
        ASSERT_EQ(root.klass()->name(), "GcNode")
            << "conc event " << event << " mt" << w;
        EXPECT_TRUE(rig.writtenValues.count(root.getI64(rig.valueOff)))
            << "conc event " << event << " root mt" << w
            << " holds invented value";
    }

    // Invariant 4: new work succeeds, and a clean follow-up
    // concurrent cycle drops every remaining pre-crash garbage node
    // while keeping the live set exact.
    Oop extra = rig.rt->pnewInstance(h, "GcNode");
    extra.setI64(rig.valueOff, 987654);
    h->flushObject(extra);
    h->setRoot("extra", extra);
    h->setGcConcurrent(true);
    h->collect(nullptr);
    EXPECT_EQ(h->getRoot("extra").getI64(rig.valueOff), 987654)
        << "conc event " << event;
    std::multiset<std::int64_t> after;
    h->forEachObject([&](Oop o) {
        if (o.klass()->name() == "GcNode")
            after.insert(o.getI64(rig.valueOff));
    });
    for (std::int64_t v : after) {
        EXPECT_GE(v, 0)
            << "conc event " << event << " garbage value " << v
            << " survived a clean collection";
    }
    for (std::int64_t v : rig.liveValues) {
        ASSERT_EQ(after.count(v), 1u)
            << "conc event " << event << " live value " << v
            << " lost by the follow-up collection";
    }
}

void
sweepConcGc(CrashMode mode, std::uint64_t seed, int iterations,
            bool target_marking)
{
    std::uint64_t max_events = 0;
    {
        ConcRig probe;
        ASSERT_FALSE(probe.run(0));
        max_events = probe.injector.eventCount();
        ASSERT_GT(max_events, 0u);
    }

    Rng rng(seed);
    int discards_seen = 0, resumes_seen = 0;
    for (int it = 0; it < iterations; ++it) {
        ConcRig rig;
        std::uint64_t event;
        bool crashed;
        if (target_marking) {
            event = 1 + rng.nextBelow(8);
            crashed = rig.run(event);
        } else {
            event = 1 + rng.nextBelow(max_events);
            rig.injector.arm(event);
            crashed = rig.run(0);
        }
        rig.injector.disarm();
        if (testing::Test::HasFatalFailure())
            return;
        if (!crashed) {
            // The cycle (or the whole run) finished first: verify the
            // clean detach/reload path instead.
            rig.rt->heaps().detachHeap(kHeapName);
            PjhHeap *h = rig.rt->heaps().loadHeap(kHeapName);
            verifyConcRecovered(rig, h, 0);
            continue;
        }
        rig.rt->heaps().crashHeap(kHeapName, mode, seed + event);
        PjhHeap *h = rig.rt->heaps().loadHeap(kHeapName);
        if (h->stats().markDiscards > 0)
            ++discards_seen;
        else if (h->stats().recoveries > 0)
            ++resumes_seen;
        verifyConcRecovered(rig, h, event);
        if (testing::Test::HasFatalFailure())
            return;
    }
    if (target_marking) {
        EXPECT_GT(discards_seen, 0)
            << "no crash landed inside the marking window";
    } else {
        EXPECT_GT(discards_seen + resumes_seen, 0)
            << "no crash landed inside the collection itself";
    }
}

TEST(CrashMatrixTest, ConcurrentGcOverlapSweepConservative)
{
    sweepConcGc(CrashMode::kDiscardUnflushed, 113, 10, false);
}

TEST(CrashMatrixTest, ConcurrentGcOverlapSweepWithCacheEviction)
{
    sweepConcGc(CrashMode::kEvictRandomLines, 127, 10, false);
}

TEST(CrashMatrixTest, ConcurrentGcMarkWindowSweepConservative)
{
    sweepConcGc(CrashMode::kDiscardUnflushed, 131, 8, true);
}

TEST(CrashMatrixTest, ConcurrentGcMarkWindowSweepWithCacheEviction)
{
    sweepConcGc(CrashMode::kEvictRandomLines, 137, 8, true);
}

// ---------------------------------------------------------------------
// WAL-side matrix: commit brackets of varying width
// ---------------------------------------------------------------------

/** One WAL scenario: statements inside one begin/commit bracket. */
struct WalScenario
{
    const char *name;
    std::vector<const char *> body;
};

const std::vector<WalScenario> &
walScenarios()
{
    static const std::vector<WalScenario> kScenarios = {
        {"single-update", {"UPDATE ACCT SET BAL = 150 WHERE ID = 1"}},
        {"transfer",
         {"UPDATE ACCT SET BAL = 70 WHERE ID = 1",
          "UPDATE ACCT SET BAL = 130 WHERE ID = 2"}},
        {"wide-commit",
         {"UPDATE ACCT SET BAL = 60 WHERE ID = 1",
          "UPDATE ACCT SET BAL = 140 WHERE ID = 2",
          "INSERT INTO ACCT (ID, BAL) VALUES (3, 0)",
          "INSERT INTO ACCT (ID, BAL) VALUES (4, 0)"}},
    };
    return kScenarios;
}

std::unique_ptr<db::Database>
makeDb()
{
    db::DatabaseConfig cfg;
    cfg.rowRegionSize = 4u << 20;
    cfg.rowsPerTable = 256;
    auto d = std::make_unique<db::Database>(cfg);
    d->executeSql("CREATE TABLE ACCT (ID BIGINT PRIMARY KEY, BAL BIGINT)");
    d->executeSql("INSERT INTO ACCT (ID, BAL) VALUES (1, 100)");
    d->executeSql("INSERT INTO ACCT (ID, BAL) VALUES (2, 100)");
    return d;
}

std::int64_t
balance(db::Database &d, int id)
{
    db::ResultSet r = d.executeSql(
        "SELECT BAL FROM ACCT WHERE ID = " + std::to_string(id));
    EXPECT_EQ(r.rows.size(), 1u);
    return r.rows.empty() ? -1 : r.rows[0][0].i;
}

/**
 * Crash at every WAL persistence event of @p sc; after recovery the
 * bracket must have applied completely or not at all.
 */
void
sweepWal(const WalScenario &sc, CrashMode mode, std::uint64_t seed)
{
    for (std::uint64_t event = 1;; ++event) {
        auto d = makeDb();
        CrashInjector inj;
        d->device().setInjector(&inj);
        inj.arm(event);
        bool crashed = false;
        try {
            d->begin();
            for (const char *sql : sc.body)
                d->executeSql(sql);
            d->commit();
        } catch (const SimulatedCrash &) {
            crashed = true;
        }
        inj.disarm();
        d->device().setInjector(nullptr);
        if (!crashed)
            break;

        d->crash(mode, seed + event);

        // Atomicity: either the pristine pre-state or the full
        // post-state of the bracket, nothing in between.
        std::int64_t a = balance(*d, 1), b = balance(*d, 2);
        std::size_t rows = d->rowCount("ACCT");
        bool before = a == 100 && b == 100 && rows == 2;
        bool after = false;
        if (std::string(sc.name) == "single-update")
            after = a == 150 && b == 100 && rows == 2;
        else if (std::string(sc.name) == "transfer")
            after = a == 70 && b == 130 && rows == 2;
        else
            after = a == 60 && b == 140 && rows == 4;
        EXPECT_TRUE(before || after)
            << sc.name << " event " << event << ": a=" << a << " b=" << b
            << " rows=" << rows;

        // The recovered database stays fully usable.
        d->executeSql("INSERT INTO ACCT (ID, BAL) VALUES (9, 1)");
        EXPECT_EQ(
            d->executeSql("SELECT * FROM ACCT WHERE ID = 9").rows.size(),
            1u)
            << sc.name << " event " << event;
    }
}

TEST(CrashMatrixTest, WalCommitConservative)
{
    for (const WalScenario &sc : walScenarios())
        sweepWal(sc, CrashMode::kDiscardUnflushed, 7);
}

TEST(CrashMatrixTest, WalCommitWithCacheEviction)
{
    for (const WalScenario &sc : walScenarios())
        sweepWal(sc, CrashMode::kEvictRandomLines, 7);
}

// ---------------------------------------------------------------------
// Fabric matrix: crash one shard (mid-pnew or mid-GC) while the other
// members keep serving; ring-manifest recovery from a crash between a
// shard's create and the manifest commit
// ---------------------------------------------------------------------

/**
 * A 4-member fabric with one victim shard. The injector is attached
 * to the victim's device only — a power failure in a fabric-per-shard
 * deployment takes out one device, not the machine — so the sweep
 * asserts the failure *stays* shard-local: the surviving members
 * serve routed pnew + roots while the victim is down, and per-shard
 * recovery (tail repair mid-pnew, compaction replay mid-GC) restores
 * the victim without touching the others.
 */
struct FabricRig
{
    static constexpr unsigned kShards = 4;
    static constexpr unsigned kVictim = 2;

    FabricRig()
    {
        rt = std::make_unique<EspressoRuntime>();
        rt->define(nodeDef());
        valueOff = rt->fieldOffset("Node", "value");
        PjhConfig cfg;
        cfg.dataSize = 4u << 20;
        fabric = rt->heaps().createFabric("fabmatrix", cfg, kShards);
        for (int i = 0; victimKeys.size() < 64; ++i) {
            std::string key = "vk" + std::to_string(i);
            if (fabric->shardIndexFor(key) == kVictim)
                victimKeys.push_back(key);
        }
        for (int i = 0; otherKeys.size() < 16; ++i) {
            std::string key = "ok" + std::to_string(i);
            if (fabric->shardIndexFor(key) != kVictim)
                otherKeys.push_back(key);
        }
        fabric->shardDevice(kVictim)->setInjector(&injector);
    }

    /** pnew+flush+publish on the victim until the crash fires;
     * returns true when it did. */
    bool
    runVictimPnew()
    {
        try {
            for (std::size_t i = 0; i < victimKeys.size(); ++i) {
                std::int64_t v = static_cast<std::int64_t>(i) + 1;
                Oop node = rt->pnewInstance(fabric, victimKeys[i],
                                            "Node");
                node.setI64(valueOff, v);
                writtenValues.insert(v);
                fabric->shard(kVictim)->flushObject(node);
                if (i % 2 == 0)
                    fabric->setRoot(victimKeys[i], node);
            }
        } catch (const SimulatedCrash &) {
            return true;
        }
        return false;
    }

    /** The surviving members must serve while the victim is down. */
    void
    assertOthersServe()
    {
        for (const std::string &key : otherKeys) {
            Oop node = rt->pnewInstance(fabric, key, "Node");
            node.setI64(valueOff, 31337);
            fabric->shardFor(key)->flushObject(node);
            fabric->setRoot(key, node);
            ASSERT_EQ(fabric->getRoot(key).getI64(valueOff), 31337)
                << key;
        }
    }

    /** Victim invariants after per-shard recovery. */
    void
    verifyVictimRecovered(std::uint64_t event)
    {
        PjhHeap *h = fabric->shard(kVictim);
        ASSERT_NE(h, nullptr);
        std::size_t objects = 0;
        ASSERT_NO_THROW(h->forEachObject([&](Oop) { ++objects; }))
            << "fabric event " << event;
        for (const std::string &key : victimKeys) {
            Oop root = fabric->getRoot(key);
            if (root.isNull())
                continue;
            ASSERT_EQ(root.klass()->name(), "Node")
                << "fabric event " << event << " " << key;
            EXPECT_TRUE(
                writtenValues.count(root.getI64(valueOff)))
                << "fabric event " << event << " " << key
                << " holds invented value";
        }
        // The whole fabric accepts new routed work.
        Oop extra =
            rt->pnewInstance(fabric, victimKeys[0], "Node");
        extra.setI64(valueOff, 424242);
        h->flushObject(extra);
        fabric->setRoot("extra", extra);
        EXPECT_EQ(fabric->getRoot("extra").getI64(valueOff), 424242)
            << "fabric event " << event;
    }

    std::unique_ptr<EspressoRuntime> rt;
    HeapFabric *fabric = nullptr;
    CrashInjector injector;
    std::uint32_t valueOff = 0;
    std::vector<std::string> victimKeys;
    std::vector<std::string> otherKeys;
    std::set<std::int64_t> writtenValues;
};

void
sweepFabricPnew(CrashMode mode, std::uint64_t seed, int iterations)
{
    std::uint64_t max_events;
    {
        FabricRig probe;
        ASSERT_FALSE(probe.runVictimPnew());
        max_events = probe.injector.eventCount();
        ASSERT_GT(max_events, 0u);
    }

    Rng rng(seed);
    for (int it = 0; it < iterations; ++it) {
        FabricRig rig;
        std::uint64_t event = 1 + rng.nextBelow(max_events);
        rig.injector.arm(event);
        bool crashed = rig.runVictimPnew();
        rig.injector.disarm();
        if (testing::Test::HasFatalFailure())
            return;
        if (!crashed)
            continue;
        // Victim is down, not yet recovered: the other members keep
        // serving through the ring.
        rig.assertOthersServe();
        if (testing::Test::HasFatalFailure())
            return;
        rig.fabric->crashShard(FabricRig::kVictim, mode, seed + event);
        rig.fabric->reattachShard(FabricRig::kVictim);
        rig.verifyVictimRecovered(event);
        if (testing::Test::HasFatalFailure())
            return;
    }
}

void
sweepFabricGc(CrashMode mode, std::uint64_t seed, int iterations)
{
    auto fillVictim = [](FabricRig &rig) {
        // Live roots interleaved with garbage on the victim.
        for (std::size_t i = 0; i < rig.victimKeys.size(); ++i) {
            std::int64_t v = static_cast<std::int64_t>(i) + 1;
            Oop node = rig.rt->pnewInstance(
                rig.fabric, rig.victimKeys[i], "Node");
            node.setI64(rig.valueOff, v);
            rig.writtenValues.insert(v);
            rig.fabric->shard(FabricRig::kVictim)->flushObject(node);
            if (i % 2 == 0)
                rig.fabric->setRoot(rig.victimKeys[i], node);
        }
    };

    std::uint64_t max_events;
    {
        FabricRig probe;
        probe.injector.disarm();
        fillVictim(probe);
        probe.injector.resetCount();
        probe.fabric->collectShard(FabricRig::kVictim);
        max_events = probe.injector.eventCount();
        ASSERT_GT(max_events, 0u);
    }

    Rng rng(seed);
    for (int it = 0; it < iterations; ++it) {
        FabricRig rig;
        fillVictim(rig);
        std::uint64_t event = 1 + rng.nextBelow(max_events);
        rig.injector.resetCount();
        rig.injector.arm(event);
        bool crashed = false;
        try {
            rig.fabric->collectShard(FabricRig::kVictim);
        } catch (const SimulatedCrash &) {
            crashed = true;
        }
        rig.injector.disarm();
        if (testing::Test::HasFatalFailure())
            return;
        if (!crashed)
            continue;
        rig.assertOthersServe();
        if (testing::Test::HasFatalFailure())
            return;
        // Per-shard recovery replays the interrupted collection.
        rig.fabric->crashShard(FabricRig::kVictim, mode, seed + event);
        rig.fabric->reattachShard(FabricRig::kVictim);
        rig.verifyVictimRecovered(event);
        if (testing::Test::HasFatalFailure())
            return;
        // A follow-up clean collection still works on the victim.
        rig.fabric->collectShard(FabricRig::kVictim);
        rig.verifyVictimRecovered(event);
        if (testing::Test::HasFatalFailure())
            return;
    }
}

/**
 * Sweep a power failure across every manifest persistence event of
 * fabric creation: declare, per-member format flags, final commit.
 * Recovery must either find no durable declaration (a crash before
 * the atomic creation point — the fabric never existed) or roll the
 * membership forward to the declared target, re-formatting members
 * that never reached their format flag.
 */
void
sweepFabricManifest(CrashMode mode, std::uint64_t seed)
{
    EspressoRuntime rt;
    rt.define(nodeDef());
    std::uint32_t value_off = rt.fieldOffset("Node", "value");

    for (std::uint64_t event = 1;; ++event) {
        CrashInjector injector;
        HeapFabric fabric(&rt.registry(), nullptr);
        fabric.setManifestInjector(&injector);
        injector.arm(event);
        PjhConfig cfg;
        cfg.dataSize = 1u << 20;
        FabricConfig fcfg;
        fcfg.shard = cfg;
        fcfg.shards = 4;
        bool crashed = false;
        try {
            fabric.create(fcfg);
        } catch (const SimulatedCrash &) {
            crashed = true;
        }
        injector.disarm();
        if (!crashed) {
            ASSERT_GT(event, 1u) << "creation produced no events";
            break;
        }

        fabric.crashAll(mode, seed + event);
        if (!fabric.manifestDeclared()) {
            // Crashed before the declaration fence: the fabric never
            // existed; nothing to recover.
            continue;
        }
        fabric.recover();
        ASSERT_EQ(fabric.shardCount(), 4u) << "event " << event;
        EXPECT_GE(fabric.epoch(), 1u) << "event " << event;
        for (unsigned s = 0; s < 4; ++s) {
            PjhHeap *h = fabric.shard(s);
            ASSERT_NE(h, nullptr) << "event " << event << " shard " << s;
            Oop node = h->allocInstance(
                rt.registry().resolve("Node", MemKind::kPersistent));
            node.setI64(value_off, 7);
            h->flushObject(node);
            h->setRoot("probe", node);
            EXPECT_EQ(h->getRoot("probe").getI64(value_off), 7)
                << "event " << event << " shard " << s;
        }
    }
}

TEST(CrashMatrixTest, FabricShardPnewSweepConservative)
{
    sweepFabricPnew(CrashMode::kDiscardUnflushed, 61, 16);
}

TEST(CrashMatrixTest, FabricShardPnewSweepWithCacheEviction)
{
    sweepFabricPnew(CrashMode::kEvictRandomLines, 67, 16);
}

TEST(CrashMatrixTest, FabricShardGcSweepConservative)
{
    sweepFabricGc(CrashMode::kDiscardUnflushed, 71, 10);
}

TEST(CrashMatrixTest, FabricShardGcSweepWithCacheEviction)
{
    sweepFabricGc(CrashMode::kEvictRandomLines, 73, 10);
}

/** Members binding @p name as a live kRoot, fabric-wide. */
unsigned
fabricRootBindings(HeapFabric &fabric, const std::string &name)
{
    unsigned n = 0;
    for (unsigned s = 0; s < RingManifestData::kMaxShards; ++s) {
        PjhHeap *h = fabric.shard(s);
        if (!h)
            continue;
        NameEntry *e = h->names().find(name, NameKind::kRoot);
        if (e && NameTable::readValue(e) != 0)
            ++n;
    }
    return n;
}

/**
 * Sweep a power failure across every persistence event of an online
 * membership change — the declare fence, joiner formats, each
 * streamed root move (clone, forward stub, old-binding retire,
 * migrated flags), the commit fence, and post-commit cleanup.
 * Recovery must land on exactly the old or the new membership with
 * every root present exactly once, holding its written value: no
 * lost, duplicated, or dangling root.
 *
 * The injector rides the manifest and every pre-change member
 * device. On grow the joiners are created mid-change, so their
 * writes cannot inject — the shrink sweep covers the destination
 * side instead (its destinations are surviving members).
 */
void
sweepFabricMigration(CrashMode mode, std::uint64_t seed, bool grow_dir)
{
    EspressoRuntime rt;
    rt.define(nodeDef());
    std::uint32_t value_off = rt.fieldOffset("Node", "value");
    auto *klass = rt.registry().resolve("Node", MemKind::kPersistent);
    const unsigned from = grow_dir ? 2 : 4;
    const unsigned target = grow_dir ? 4 : 2;
    constexpr int kRoots = 12;

    for (std::uint64_t event = 1;; ++event) {
        CrashInjector injector;
        HeapFabric fabric(&rt.registry(), nullptr);
        fabric.setManifestInjector(&injector);
        PjhConfig cfg;
        cfg.dataSize = 1u << 20;
        FabricConfig fcfg;
        fcfg.shard = cfg;
        fcfg.shards = from;
        fabric.create(fcfg);
        for (int i = 0; i < kRoots; ++i) {
            std::string key = "m" + std::to_string(i);
            PjhHeap *h = fabric.shard(fabric.shardIndexFor(key));
            Oop node = h->allocInstance(klass);
            node.setI64(value_off, 600 + i);
            h->flushObject(node);
            fabric.setRoot(key, node);
        }
        for (unsigned s = 0; s < from; ++s)
            fabric.shardDevice(s)->setInjector(&injector);
        fabric.manifestDevice()->setInjector(&injector);
        injector.resetCount();
        injector.arm(event);
        bool crashed = false;
        try {
            if (grow_dir)
                fabric.grow(target - from);
            else
                fabric.shrink(from - target);
        } catch (const SimulatedCrash &) {
            crashed = true;
        }
        injector.disarm();

        if (crashed) {
            fabric.crashAll(mode, seed + event);
            // The declare fence is the point of no return: recovery
            // rolls a declared change forward to the target, and an
            // undeclared one stays at the old membership.
            fabric.recover();
        }

        unsigned count = fabric.shardCount();
        ASSERT_TRUE(count == from || count == target)
            << "event " << event << ": membership " << count
            << " is neither old nor new";
        ASSERT_FALSE(fabric.migrating()) << "event " << event;
        for (int i = 0; i < kRoots; ++i) {
            std::string key = "m" + std::to_string(i);
            Oop r = fabric.getRoot(key);
            ASSERT_FALSE(r.isNull())
                << "event " << event << ": lost root " << key;
            EXPECT_EQ(r.getI64(value_off), 600 + i)
                << "event " << event << " " << key;
            EXPECT_EQ(fabricRootBindings(fabric, key), 1u)
                << "event " << event << " " << key;
        }
        // The fabric accepts new routed work post-recovery.
        std::string probe = "probe" + std::to_string(event);
        PjhHeap *h = fabric.shard(fabric.shardIndexFor(probe));
        ASSERT_NE(h, nullptr) << "event " << event;
        Oop extra = h->allocInstance(klass);
        extra.setI64(value_off, 31337);
        h->flushObject(extra);
        fabric.setRoot(probe, extra);
        EXPECT_EQ(fabric.getRoot(probe).getI64(value_off), 31337)
            << "event " << event;
        if (testing::Test::HasFatalFailure())
            return;
        if (!crashed) {
            ASSERT_GT(event, 1u)
                << "membership change produced no events";
            ASSERT_EQ(count, target) << "clean run must commit";
            break;
        }
    }
}

TEST(CrashMatrixTest, FabricGrowMigrationSweepConservative)
{
    sweepFabricMigration(CrashMode::kDiscardUnflushed, 97, true);
}

TEST(CrashMatrixTest, FabricGrowMigrationSweepWithCacheEviction)
{
    sweepFabricMigration(CrashMode::kEvictRandomLines, 101, true);
}

TEST(CrashMatrixTest, FabricShrinkMigrationSweepConservative)
{
    sweepFabricMigration(CrashMode::kDiscardUnflushed, 103, false);
}

TEST(CrashMatrixTest, FabricShrinkMigrationSweepWithCacheEviction)
{
    sweepFabricMigration(CrashMode::kEvictRandomLines, 107, false);
}

TEST(CrashMatrixTest, FabricManifestCreateSweepConservative)
{
    sweepFabricManifest(CrashMode::kDiscardUnflushed, 79);
}

TEST(CrashMatrixTest, FabricManifestCreateSweepWithCacheEviction)
{
    sweepFabricManifest(CrashMode::kEvictRandomLines, 83);
}

} // namespace
} // namespace espresso
