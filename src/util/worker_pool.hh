/**
 * @file
 * A small persistent worker-thread pool for fork/join phases.
 *
 * The parallel GC phases (mark, compact) need "run f(i) on N threads
 * and wait". Spawning fresh std::threads per collection would work,
 * but every short-lived thread permanently registers a per-thread
 * staging shard with each NvmDevice it flushes — a long-lived
 * process collecting periodically would grow that registry without
 * bound. A pool reuses the same threads across collections, bounding
 * shard growth and eliminating per-GC thread-start latency.
 */

#ifndef ESPRESSO_UTIL_WORKER_POOL_HH
#define ESPRESSO_UTIL_WORKER_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace espresso {

/** Lazily-grown fork/join thread pool. */
class WorkerPool
{
  public:
    WorkerPool() = default;
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /**
     * Run @p fn(0) .. @p fn(n-1) on pool threads and block until all
     * return. The pool grows to @p n threads on demand and never
     * shrinks. @p fn must not throw (wrap bodies that can). Not
     * reentrant: one run() at a time.
     */
    void run(unsigned n, const std::function<void(unsigned)> &fn);

  private:
    void threadMain(unsigned idx);

    std::mutex mu_;
    std::condition_variable workCv_; ///< workers wait for a round
    std::condition_variable doneCv_; ///< run() waits for completion
    const std::function<void(unsigned)> *fn_ = nullptr;
    /** Round counter; bumped by run(). A worker participates when it
     * has not yet seen the current round and its index is below the
     * round's width. */
    std::uint64_t round_ = 0;
    unsigned width_ = 0;     ///< workers participating this round
    unsigned remaining_ = 0; ///< participants still running
    bool stop_ = false;
    std::vector<std::thread> threads_;
};

} // namespace espresso

#endif // ESPRESSO_UTIL_WORKER_POOL_HH
