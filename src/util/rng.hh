/**
 * @file
 * Deterministic xorshift-based RNG for workloads and crash fuzzing.
 * std::mt19937_64 would work, but a tiny local generator keeps
 * benchmark inner loops cheap and reproducible across libstdc++s.
 */

#ifndef ESPRESSO_UTIL_RNG_HH
#define ESPRESSO_UTIL_RNG_HH

#include <cstdint>

namespace espresso {

/** xorshift128+ pseudo-random generator. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // splitmix64 to spread the seed.
        auto mix = [&seed]() {
            seed += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            return z ^ (z >> 31);
        };
        s0_ = mix();
        s1_ = mix();
    }

    std::uint64_t
    next()
    {
        std::uint64_t x = s0_;
        const std::uint64_t y = s1_;
        s0_ = y;
        x ^= x << 23;
        s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1_ + y;
    }

    /** Uniform value in [0, bound). @p bound must be nonzero. */
    std::uint64_t nextBelow(std::uint64_t bound) { return next() % bound; }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * (1.0 / (1ull << 53));
    }

    bool nextBool() { return next() & 1; }

  private:
    std::uint64_t s0_;
    std::uint64_t s1_;
};

} // namespace espresso

#endif // ESPRESSO_UTIL_RNG_HH
