/**
 * @file
 * Calibrated busy-wait used by latency models (NVM flush cost, PCJ's
 * JNI/native-call overhead).
 */

#ifndef ESPRESSO_UTIL_SPIN_HH
#define ESPRESSO_UTIL_SPIN_HH

#include <chrono>
#include <cstdint>

namespace espresso {

/** Busy-wait for @p ns nanoseconds; free when @p ns is zero. */
inline void
spinForNs(std::uint64_t ns)
{
    if (ns == 0)
        return;
    auto until = std::chrono::steady_clock::now() +
                 std::chrono::nanoseconds(ns);
    while (std::chrono::steady_clock::now() < until) {
        // spin
    }
}

} // namespace espresso

#endif // ESPRESSO_UTIL_SPIN_HH
