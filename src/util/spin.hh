/**
 * @file
 * Calibrated busy-wait used by latency models (NVM flush cost, PCJ's
 * JNI/native-call overhead), plus the test-and-test-and-set spinlock
 * used for short critical sections (striped name-table buckets).
 */

#ifndef ESPRESSO_UTIL_SPIN_HH
#define ESPRESSO_UTIL_SPIN_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>

namespace espresso {

/**
 * A tiny test-and-test-and-set spinlock. Meant for critical sections
 * of a few dozen instructions (bucket claims, counter bumps) where a
 * futex round-trip would dominate; anything that can block (I/O,
 * allocation, a long scan) belongs under a std::mutex instead.
 *
 * Works with std::lock_guard / std::unique_lock (Lockable concept).
 */
class SpinLock
{
  public:
    SpinLock() = default;
    SpinLock(const SpinLock &) = delete;
    SpinLock &operator=(const SpinLock &) = delete;

    void
    lock()
    {
        while (flag_.test_and_set(std::memory_order_acquire)) {
            // Spin on a plain load so contended waiters don't
            // ping-pong the cache line with RMW traffic. On an
            // oversubscribed host a preempted holder would otherwise
            // cost every waiter a scheduler quantum, so yield after a
            // bounded spin.
            std::uint32_t spins = 0;
            while (flag_.test(std::memory_order_relaxed)) {
                if (++spins == 4096) {
                    spins = 0;
                    std::this_thread::yield();
                }
            }
        }
    }

    bool
    try_lock()
    {
        return !flag_.test_and_set(std::memory_order_acquire);
    }

    void
    unlock()
    {
        flag_.clear(std::memory_order_release);
    }

  private:
    std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

/** RAII guard for SpinLock. */
using SpinGuard = std::lock_guard<SpinLock>;

/** Busy-wait for @p ns nanoseconds; free when @p ns is zero. */
inline void
spinForNs(std::uint64_t ns)
{
    if (ns == 0)
        return;
    auto until = std::chrono::steady_clock::now() +
                 std::chrono::nanoseconds(ns);
    while (std::chrono::steady_clock::now() < until) {
        // spin
    }
}

} // namespace espresso

#endif // ESPRESSO_UTIL_SPIN_HH
