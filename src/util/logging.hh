/**
 * @file
 * Minimal logging / fatal-error facility, modeled on gem5's
 * panic()/fatal()/warn() split: panic is an internal invariant
 * violation, fatal is a user-correctable condition.
 */

#ifndef ESPRESSO_UTIL_LOGGING_HH
#define ESPRESSO_UTIL_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace espresso {

/** Thrown by panic(): an internal invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Thrown by fatal(): the caller asked for something unsatisfiable. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Report an internal bug; never returns. */
[[noreturn]] void panic(const std::string &msg);

/** Report a user/configuration error; never returns. */
[[noreturn]] void fatal(const std::string &msg);

/** Print a non-fatal warning to stderr. */
void warn(const std::string &msg);

/** Enable/disable warn() output (tests silence it). */
void setWarningsEnabled(bool enabled);

namespace detail {

inline void formatInto(std::ostringstream &) {}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &v, const Rest &...rest)
{
    os << v;
    formatInto(os, rest...);
}

} // namespace detail

/** Build a message from stream-formattable pieces. */
template <typename... Args>
std::string
strCat(const Args &...args)
{
    std::ostringstream os;
    detail::formatInto(os, args...);
    return os.str();
}

} // namespace espresso

#endif // ESPRESSO_UTIL_LOGGING_HH
