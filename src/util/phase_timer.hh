/**
 * @file
 * Named-bucket execution-time accounting.
 *
 * The paper's Figures 4, 6 and 17 are breakdowns of where time goes
 * inside an operation (database vs transformation vs other, etc.).
 * PhaseTimer lets instrumented code attribute wall-clock intervals to
 * named buckets; the bench harnesses print the resulting shares.
 */

#ifndef ESPRESSO_UTIL_PHASE_TIMER_HH
#define ESPRESSO_UTIL_PHASE_TIMER_HH

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace espresso {

/** Accumulates nanoseconds into named phases. */
class PhaseTimer
{
  public:
    using Clock = std::chrono::steady_clock;

    /** Add @p ns nanoseconds to bucket @p phase. */
    void
    add(const std::string &phase, std::uint64_t ns)
    {
        buckets_[phase] += ns;
    }

    /** Total nanoseconds accumulated in @p phase (0 if absent). */
    std::uint64_t
    total(const std::string &phase) const
    {
        auto it = buckets_.find(phase);
        return it == buckets_.end() ? 0 : it->second;
    }

    /** Sum over all buckets. */
    std::uint64_t
    grandTotal() const
    {
        std::uint64_t sum = 0;
        for (const auto &kv : buckets_)
            sum += kv.second;
        return sum;
    }

    /** Fraction of the grand total spent in @p phase, in [0, 1]. */
    double share(const std::string &phase) const;

    /** All buckets, sorted by name. */
    std::vector<std::pair<std::string, std::uint64_t>> snapshot() const;

    void clear() { buckets_.clear(); }

  private:
    std::map<std::string, std::uint64_t> buckets_;
};

/**
 * RAII interval: attributes the enclosed scope's wall time to a bucket.
 * A null timer makes the scope free, so instrumented library code can
 * be used untimed.
 */
class PhaseScope
{
  public:
    PhaseScope(PhaseTimer *timer, std::string phase)
        : timer_(timer), phase_(std::move(phase)),
          start_(timer ? PhaseTimer::Clock::now()
                       : PhaseTimer::Clock::time_point())
    {}

    ~PhaseScope()
    {
        if (timer_) {
            auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          PhaseTimer::Clock::now() - start_)
                          .count();
            timer_->add(phase_, static_cast<std::uint64_t>(ns));
        }
    }

    PhaseScope(const PhaseScope &) = delete;
    PhaseScope &operator=(const PhaseScope &) = delete;

  private:
    PhaseTimer *timer_;
    std::string phase_;
    PhaseTimer::Clock::time_point start_;
};

} // namespace espresso

#endif // ESPRESSO_UTIL_PHASE_TIMER_HH
