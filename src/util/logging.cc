#include "util/logging.hh"

#include <cstdio>

namespace espresso {

namespace {
bool warningsEnabled = true;
} // namespace

void
panic(const std::string &msg)
{
    throw PanicError("panic: " + msg);
}

void
fatal(const std::string &msg)
{
    throw FatalError("fatal: " + msg);
}

void
warn(const std::string &msg)
{
    if (warningsEnabled)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
setWarningsEnabled(bool enabled)
{
    warningsEnabled = enabled;
}

} // namespace espresso
