#include "util/worker_pool.hh"

namespace espresso {

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> g(mu_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
WorkerPool::run(unsigned n, const std::function<void(unsigned)> &fn)
{
    if (n == 0)
        return;
    std::unique_lock<std::mutex> lock(mu_);
    while (threads_.size() < n) {
        unsigned idx = static_cast<unsigned>(threads_.size());
        threads_.emplace_back([this, idx]() { threadMain(idx); });
    }
    fn_ = &fn;
    width_ = n;
    remaining_ = n;
    ++round_;
    workCv_.notify_all();
    doneCv_.wait(lock, [this]() { return remaining_ == 0; });
    fn_ = nullptr;
}

void
WorkerPool::threadMain(unsigned idx)
{
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        workCv_.wait(lock, [&]() {
            return stop_ || (round_ != seen && idx < width_);
        });
        if (stop_)
            return;
        seen = round_;
        const std::function<void(unsigned)> *fn = fn_;
        lock.unlock();
        (*fn)(idx);
        lock.lock();
        if (--remaining_ == 0)
            doneCv_.notify_all();
    }
}

} // namespace espresso
