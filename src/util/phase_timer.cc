#include "util/phase_timer.hh"

namespace espresso {

double
PhaseTimer::share(const std::string &phase) const
{
    std::uint64_t sum = grandTotal();
    if (sum == 0)
        return 0.0;
    return static_cast<double>(total(phase)) / static_cast<double>(sum);
}

std::vector<std::pair<std::string, std::uint64_t>>
PhaseTimer::snapshot() const
{
    return {buckets_.begin(), buckets_.end()};
}

} // namespace espresso
