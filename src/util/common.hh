/**
 * @file
 * Common scalar types and alignment helpers used across Espresso.
 */

#ifndef ESPRESSO_UTIL_COMMON_HH
#define ESPRESSO_UTIL_COMMON_HH

#include <cstddef>
#include <cstdint>

namespace espresso {

/** A machine word; all heap storage is word-granular. */
using Word = std::uint64_t;

/**
 * An address inside a managed heap (volatile or persistent). Addresses
 * are raw pointers into the owning space's backing buffer; the null
 * reference is 0.
 */
using Addr = std::uintptr_t;

/** The null managed reference. */
constexpr Addr kNullAddr = 0;

/** Bytes per machine word. Object sizes are multiples of this. */
constexpr std::size_t kWordSize = sizeof(Word);

/** Cache line size assumed by the persistence model (x86). */
constexpr std::size_t kCacheLineSize = 64;

/** Round @p v up to the next multiple of @p align (a power of two). */
constexpr std::size_t
alignUp(std::size_t v, std::size_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Round @p v down to a multiple of @p align (a power of two). */
constexpr std::size_t
alignDown(std::size_t v, std::size_t align)
{
    return v & ~(align - 1);
}

/** True if @p v is a multiple of @p align (a power of two). */
constexpr bool
isAligned(std::size_t v, std::size_t align)
{
    return (v & (align - 1)) == 0;
}

} // namespace espresso

#endif // ESPRESSO_UTIL_COMMON_HH
