/**
 * @file
 * Bit vector over an externally supplied word buffer.
 *
 * Both the volatile old GC and the persistent PJH GC use bitmaps with
 * one bit per heap granule. The PJH variant must live inside the
 * persistent space so the mark state survives a crash, so the bitmap
 * does not own its storage: callers hand it a word buffer (volatile or
 * NVM-backed).
 */

#ifndef ESPRESSO_UTIL_BITMAP_HH
#define ESPRESSO_UTIL_BITMAP_HH

#include <atomic>
#include <cstddef>
#include <cstring>
#include <vector>

#include "util/common.hh"

namespace espresso {

/** A fixed-size bit vector viewing caller-owned storage. */
class BitmapView
{
  public:
    BitmapView() : words_(nullptr), numBits_(0) {}

    /**
     * @param words backing buffer, at least wordsFor(num_bits) words.
     * @param num_bits number of addressable bits.
     */
    BitmapView(Word *words, std::size_t num_bits)
        : words_(words), numBits_(num_bits)
    {}

    /** Words needed to back @p num_bits bits. */
    static constexpr std::size_t
    wordsFor(std::size_t num_bits)
    {
        return (num_bits + 63) / 64;
    }

    /** Bytes needed to back @p num_bits bits. */
    static constexpr std::size_t
    bytesFor(std::size_t num_bits)
    {
        return wordsFor(num_bits) * sizeof(Word);
    }

    std::size_t numBits() const { return numBits_; }
    Word *data() { return words_; }
    const Word *data() const { return words_; }
    std::size_t sizeBytes() const { return bytesFor(numBits_); }

    bool
    test(std::size_t bit) const
    {
        return (words_[bit / 64] >> (bit % 64)) & 1;
    }

    void set(std::size_t bit) { words_[bit / 64] |= Word(1) << (bit % 64); }

    /**
     * Atomically set @p bit; safe against concurrent setters sharing
     * the backing word. Returns true when this call flipped the bit
     * (it was previously clear) — the CAS-claim primitive the
     * parallel GC mark uses to push each object exactly once.
     */
    bool
    testAndSetAtomic(std::size_t bit)
    {
        Word mask = Word(1) << (bit % 64);
        Word old = std::atomic_ref<Word>(words_[bit / 64])
                       .fetch_or(mask, std::memory_order_acq_rel);
        return (old & mask) == 0;
    }

    /** Atomic read of @p bit (pre-claim fast path). */
    bool
    testAtomic(std::size_t bit) const
    {
        Word w = std::atomic_ref<Word>(
                     const_cast<Word &>(words_[bit / 64]))
                     .load(std::memory_order_relaxed);
        return (w >> (bit % 64)) & 1;
    }

    /** Atomically set @p bit without reporting the old value. */
    void
    setAtomic(std::size_t bit)
    {
        std::atomic_ref<Word>(words_[bit / 64])
            .fetch_or(Word(1) << (bit % 64), std::memory_order_relaxed);
    }

    /** Set all bits in [begin, end) with word-atomic ORs, safe
     * against concurrent range-setters whose ranges share boundary
     * words (adjacent live-bitmap objects). */
    void setRangeAtomic(std::size_t begin, std::size_t end);

    void
    clear(std::size_t bit)
    {
        words_[bit / 64] &= ~(Word(1) << (bit % 64));
    }

    /** Clear the entire bitmap. */
    void
    clearAll()
    {
        std::memset(words_, 0, bytesFor(numBits_));
    }

    /** Set all bits in [begin, end). */
    void setRange(std::size_t begin, std::size_t end);

    /** Count set bits in [begin, end). */
    std::size_t popcount(std::size_t begin, std::size_t end) const;

    /**
     * Find the first set bit at or after @p from, strictly before
     * @p limit. Returns @p limit when none exists.
     */
    std::size_t findNextSet(std::size_t from, std::size_t limit) const;

  private:
    Word *words_;
    std::size_t numBits_;
};

/** A bitmap that owns its storage (volatile-side uses). */
class OwnedBitmap : public BitmapView
{
  public:
    explicit OwnedBitmap(std::size_t num_bits)
        : BitmapView(), storage_(wordsFor(num_bits), 0)
    {
        *static_cast<BitmapView *>(this) =
            BitmapView(storage_.data(), num_bits);
    }

  private:
    std::vector<Word> storage_;
};

} // namespace espresso

#endif // ESPRESSO_UTIL_BITMAP_HH
