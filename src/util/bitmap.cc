#include "util/bitmap.hh"

#include <bit>

namespace espresso {

void
BitmapView::setRange(std::size_t begin, std::size_t end)
{
    for (std::size_t b = begin; b < end;) {
        if (b % 64 == 0 && b + 64 <= end) {
            data()[b / 64] = ~Word(0);
            b += 64;
        } else {
            set(b);
            ++b;
        }
    }
}

void
BitmapView::setRangeAtomic(std::size_t begin, std::size_t end)
{
    for (std::size_t b = begin; b < end;) {
        std::size_t word = b / 64;
        std::size_t word_end = (word + 1) * 64;
        std::size_t chunk_end = word_end < end ? word_end : end;
        Word mask;
        if (b % 64 == 0 && chunk_end == word_end)
            mask = ~Word(0);
        else // partial word: chunk_end - b < 64 here by construction
            mask = ((Word(1) << (chunk_end - b)) - 1) << (b % 64);
        std::atomic_ref<Word>(data()[word])
            .fetch_or(mask, std::memory_order_relaxed);
        b = chunk_end;
    }
}

std::size_t
BitmapView::popcount(std::size_t begin, std::size_t end) const
{
    std::size_t count = 0;
    std::size_t b = begin;
    while (b < end) {
        if (b % 64 == 0 && b + 64 <= end) {
            count += std::popcount(data()[b / 64]);
            b += 64;
        } else {
            count += test(b) ? 1 : 0;
            ++b;
        }
    }
    return count;
}

std::size_t
BitmapView::findNextSet(std::size_t from, std::size_t limit) const
{
    std::size_t b = from;
    while (b < limit) {
        if (b % 64 == 0) {
            // Skip whole zero words quickly.
            while (b + 64 <= limit && data()[b / 64] == 0)
                b += 64;
            if (b >= limit)
                break;
            if (b % 64 == 0) {
                Word w = data()[b / 64];
                if (w != 0) {
                    std::size_t hit = b + std::countr_zero(w);
                    return hit < limit ? hit : limit;
                }
                b += 64;
                continue;
            }
        }
        if (test(b))
            return b;
        ++b;
    }
    return limit;
}

} // namespace espresso
