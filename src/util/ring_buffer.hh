/**
 * @file
 * Fixed-capacity byte ring for per-connection write buffering.
 *
 * The net layer's backpressure primitive: a slow reader's pending
 * response bytes accumulate here, never beyond the configured cap —
 * an append that doesn't fit fails as a unit and the server hangs up
 * instead of buffering without bound. peek()/consume() expose the
 * front contiguous span so the drain path can write() straight from
 * the ring without re-copying.
 */

#ifndef ESPRESSO_UTIL_RING_BUFFER_HH
#define ESPRESSO_UTIL_RING_BUFFER_HH

#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

namespace espresso {

/** Single-threaded bounded FIFO of bytes. */
class RingBuffer
{
  public:
    explicit RingBuffer(std::size_t capacity) : buf_(capacity) {}

    std::size_t capacity() const { return buf_.size(); }
    std::size_t size() const { return size_; }
    std::size_t free() const { return buf_.size() - size_; }
    bool empty() const { return size_ == 0; }

    /** Append all of [data, data+n) or nothing; false on overflow. */
    bool
    write(const void *data, std::size_t n)
    {
        if (n > free())
            return false;
        const std::uint8_t *src =
            static_cast<const std::uint8_t *>(data);
        std::size_t tail = (head_ + size_) % buf_.size();
        std::size_t first = std::min(n, buf_.size() - tail);
        std::memcpy(buf_.data() + tail, src, first);
        std::memcpy(buf_.data(), src + first, n - first);
        size_ += n;
        return true;
    }

    /** The front contiguous span (empty when the ring is). */
    std::pair<const std::uint8_t *, std::size_t>
    peek() const
    {
        std::size_t first = std::min(size_, buf_.size() - head_);
        return {buf_.data() + head_, first};
    }

    /** Drop @p n consumed bytes from the front (n <= size()). */
    void
    consume(std::size_t n)
    {
        head_ = (head_ + n) % buf_.size();
        size_ -= n;
        if (size_ == 0)
            head_ = 0; // reset so future writes are one memcpy
    }

  private:
    std::vector<std::uint8_t> buf_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace espresso

#endif // ESPRESSO_UTIL_RING_BUFFER_HH
