/**
 * @file
 * RAII file-descriptor ownership for the net layer.
 */

#ifndef ESPRESSO_UTIL_FD_HH
#define ESPRESSO_UTIL_FD_HH

#include <unistd.h>

#include <utility>

namespace espresso {

/** Owns one fd; closes it on destruction. Move-only. */
class UniqueFd
{
  public:
    UniqueFd() = default;
    explicit UniqueFd(int fd) : fd_(fd) {}

    UniqueFd(UniqueFd &&other) noexcept : fd_(other.release()) {}

    UniqueFd &
    operator=(UniqueFd &&other) noexcept
    {
        if (this != &other)
            reset(other.release());
        return *this;
    }

    UniqueFd(const UniqueFd &) = delete;
    UniqueFd &operator=(const UniqueFd &) = delete;

    ~UniqueFd() { reset(); }

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }
    explicit operator bool() const { return valid(); }

    /** Close the held fd (if any) and adopt @p fd. */
    void
    reset(int fd = -1)
    {
        if (fd_ >= 0)
            ::close(fd_);
        fd_ = fd;
    }

    /** Give up ownership without closing. */
    int
    release()
    {
        return std::exchange(fd_, -1);
    }

  private:
    int fd_ = -1;
};

} // namespace espresso

#endif // ESPRESSO_UTIL_FD_HH
