/**
 * @file
 * Environment-variable knob parsing shared by the sharded layers.
 */

#ifndef ESPRESSO_UTIL_ENV_HH
#define ESPRESSO_UTIL_ENV_HH

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace espresso {

/**
 * Parse @p name as a positive unsigned; @p fallback when unset,
 * non-numeric, or non-positive. Strict: trailing garbage after the
 * digits ("4x", "16 shards") is rejected with a one-line warning
 * instead of being silently truncated to its numeric prefix —
 * a mistyped ESPRESSO_SHARDS should not quietly resize the fabric.
 * Trailing whitespace alone is tolerated.
 */
inline unsigned
envUnsigned(const char *name, unsigned fallback)
{
    const char *s = std::getenv(name);
    if (!s)
        return fallback;
    char *end = nullptr;
    long v = std::strtol(s, &end, 10);
    bool parsed = end != s;
    while (parsed && *end != '\0') {
        if (!std::isspace(static_cast<unsigned char>(*end))) {
            parsed = false;
            break;
        }
        ++end;
    }
    if (!parsed || v <= 0) {
        std::fprintf(stderr,
                     "espresso: ignoring %s=\"%s\" (want a positive "
                     "integer); using %u\n",
                     name, s, fallback);
        return fallback;
    }
    return static_cast<unsigned>(v);
}

} // namespace espresso

#endif // ESPRESSO_UTIL_ENV_HH
