/**
 * @file
 * Environment-variable knob parsing shared by the sharded layers.
 */

#ifndef ESPRESSO_UTIL_ENV_HH
#define ESPRESSO_UTIL_ENV_HH

#include <cstdlib>

namespace espresso {

/** Parse @p name as a positive unsigned; @p fallback when unset,
 * non-numeric, or non-positive. */
inline unsigned
envUnsigned(const char *name, unsigned fallback)
{
    if (const char *s = std::getenv(name)) {
        long v = std::atol(s);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    return fallback;
}

} // namespace espresso

#endif // ESPRESSO_UTIL_ENV_HH
