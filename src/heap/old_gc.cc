#include "heap/old_gc.hh"

#include <cstring>

#include "util/logging.hh"

namespace espresso {

OldGc::OldGc(VolatileHeap &heap)
    : h_(heap),
      startStorage_(BitmapView::wordsFor(
          MarkBitmap::bitsFor(heap.cfg_.oldSize)), 0),
      liveStorage_(startStorage_.size(), 0),
      marks_(heap.oldBase_, heap.cfg_.oldSize, startStorage_.data(),
             liveStorage_.data()),
      regions_(heap.oldBase_, heap.cfg_.oldSize, heap.cfg_.oldRegionSize)
{}

void
OldGc::collect()
{
    markFromRoots();
    regions_.buildSummary(marks_, h_.oldBase_);
    fixHeapExternalSlots();
    compact();
    h_.oldTop_ = regions_.newTop();
    h_.stats_.bytesCompactedOld += h_.oldTop_ - h_.oldBase_;
}

void
OldGc::markRef(Addr ref)
{
    if (ref == kNullAddr || !h_.inOld(ref))
        return;
    if (marks_.isMarked(ref))
        return;
    Oop obj(ref);
    marks_.markObject(ref, obj.sizeInBytes());
    markStack_.push_back(ref);
}

void
OldGc::markFromRoots()
{
    auto root_visitor = [this](Addr slot) { markRef(loadWord(slot)); };

    h_.visitAllRootSlots(root_visitor);

    // Survivor-space objects are roots for the old space (a full GC
    // always scavenges the young generation first).
    Addr a = h_.fromBase_;
    while (a < h_.fromTop_) {
        Oop o(a);
        o.forEachRefSlot(root_visitor);
        a += o.sizeInBytes();
    }
    a = h_.edenBase_;
    while (a < h_.edenTop_) {
        Oop o(a);
        o.forEachRefSlot(root_visitor);
        a += o.sizeInBytes();
    }

    while (!markStack_.empty()) {
        Oop obj(markStack_.back());
        markStack_.pop_back();
        obj.forEachRefSlot(
            [this](Addr slot) { markRef(loadWord(slot)); });
    }
}

void
OldGc::fixSlot(Addr slot)
{
    Addr ref = loadWord(slot);
    if (ref == kNullAddr || !h_.inOld(ref))
        return;
    storeWord(slot, regions_.forwardee(ref, marks_));
}

void
OldGc::fixHeapExternalSlots()
{
    auto visitor = [this](Addr slot) { fixSlot(slot); };
    h_.visitAllRootSlots(visitor);

    Addr a = h_.fromBase_;
    while (a < h_.fromTop_) {
        Oop o(a);
        o.forEachRefSlot(visitor);
        a += o.sizeInBytes();
    }
    a = h_.edenBase_;
    while (a < h_.edenTop_) {
        Oop o(a);
        o.forEachRefSlot(visitor);
        a += o.sizeInBytes();
    }
}

void
OldGc::compact()
{
    Addr scan = h_.oldBase_;
    Addr limit = h_.oldTop_;
    while (true) {
        Addr src = marks_.nextMarkedObject(scan, limit);
        if (src == kNullAddr)
            break;
        Oop obj(src);
        std::size_t size = obj.sizeInBytes();
        Addr dest = regions_.forwardee(src, marks_);
        if (dest != src) {
            std::memmove(reinterpret_cast<void *>(dest),
                         reinterpret_cast<const void *>(src), size);
        }
        // Rewrite old-space references inside the moved copy.
        Oop moved(dest);
        moved.forEachRefSlot([this](Addr slot) {
            Addr ref = loadWord(slot);
            if (ref != kNullAddr && h_.inOld(ref))
                storeWord(slot, regions_.forwardee(ref, marks_));
        });
        scan = src + size;
    }
}

} // namespace espresso
