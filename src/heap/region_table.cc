#include "heap/region_table.hh"

#include "util/logging.hh"

namespace espresso {

RegionTable::RegionTable(Addr base, std::size_t size,
                         std::size_t region_size)
    : base_(base), size_(size), regionSize_(region_size)
{
    if (!isAligned(region_size, kBlockSize))
        panic("RegionTable: region size must be a block multiple");
    if (!isAligned(size, region_size))
        panic("RegionTable: space size must be a region multiple");
    std::size_t n = size / region_size;
    liveBytes_.assign(n, 0);
    destBase_.assign(n, 0);
    blockPrefix_.assign(size / kBlockSize, 0);
}

void
RegionTable::buildSummary(const MarkBitmap &marks, Addr compact_base)
{
    std::size_t blocks_per_region = regionSize_ / kBlockSize;
    Addr cursor = compact_base;
    compactBase_ = compact_base;
    for (std::size_t r = 0; r < liveBytes_.size(); ++r) {
        Addr rbase = regionBase(r);
        std::size_t region_live = 0;
        for (std::size_t b = 0; b < blocks_per_region; ++b) {
            std::size_t gblock = r * blocks_per_region + b;
            blockPrefix_[gblock] = region_live;
            Addr bbase = rbase + b * kBlockSize;
            region_live +=
                marks.liveBytesInRange(bbase, bbase + kBlockSize);
        }
        liveBytes_[r] = region_live;
        destBase_[r] = cursor;
        cursor += region_live;
    }
    newTop_ = cursor;
}

void
RegionTable::buildSummary(const MarkBitmap &marks, Addr compact_base,
                          const std::vector<std::size_t> &slice_begins)
{
    buildSummary(marks, compact_base);
    applySlices(slice_begins);
}

void
RegionTable::applySlices(const std::vector<std::size_t> &slice_begins)
{
    std::size_t next_slice = 0;
    Addr cursor = compactBase_;
    for (std::size_t r = 0; r < liveBytes_.size(); ++r) {
        if (next_slice < slice_begins.size() &&
            slice_begins[next_slice] == r) {
            // A new compaction slice: its live data packs into its
            // own span. cursor <= regionBase always holds (sliding),
            // so this only ever moves the cursor up to the boundary.
            cursor = regionBase(r);
            ++next_slice;
        }
        destBase_[r] = cursor;
        cursor += liveBytes_[r];
    }
    newTop_ = cursor;
}

Addr
RegionTable::forwardee(Addr obj, const MarkBitmap &marks) const
{
    std::size_t r = regionIndex(obj);
    Addr block_base = alignDown(obj - base_, kBlockSize) + base_;
    std::size_t gblock = (obj - base_) / kBlockSize;
    std::size_t within = blockPrefix_[gblock] +
                         marks.liveBytesInRange(block_base, obj);
    return destBase_[r] + within;
}

} // namespace espresso
