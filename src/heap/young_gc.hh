/**
 * @file
 * Copying collection of the young generation (scavenge).
 *
 * Cheney-style: live young objects are evacuated into the empty
 * survivor space (or tenured into old after enough copies), the
 * original header is overwritten with a forwarding pointer, and all
 * root/old/external slots are redirected.
 */

#ifndef ESPRESSO_HEAP_YOUNG_GC_HH
#define ESPRESSO_HEAP_YOUNG_GC_HH

#include <vector>

#include "heap/volatile_heap.hh"

namespace espresso {

/** One scavenge pass; construct and call collect() once. */
class YoungGc
{
  public:
    explicit YoungGc(VolatileHeap &heap);

    void collect();

  private:
    void processSlot(Addr slot);
    Addr evacuate(Oop obj);

    VolatileHeap &h_;
    Addr toTop_;
    Addr scan_;
    std::vector<Addr> promotedToScan_;
    Addr oldTopAtStart_;
};

} // namespace espresso

#endif // ESPRESSO_HEAP_YOUNG_GC_HH
