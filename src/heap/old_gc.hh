/**
 * @file
 * Mark / summary / compact collection of the old space.
 *
 * The three phases match PSGC's old GC (paper §4.2's review): mark
 * live objects into a bitmap, summarize the bitmap into region-based
 * destination indices, then slide live objects down in address order
 * and rewrite every reference through the (pure) forwardee function.
 * PJH's crash-consistent collector reuses this exact structure with
 * NVM-resident mark state.
 */

#ifndef ESPRESSO_HEAP_OLD_GC_HH
#define ESPRESSO_HEAP_OLD_GC_HH

#include <vector>

#include "heap/mark_bitmap.hh"
#include "heap/region_table.hh"
#include "heap/volatile_heap.hh"

namespace espresso {

/** One full-compaction pass over the old space. */
class OldGc
{
  public:
    explicit OldGc(VolatileHeap &heap);

    void collect();

  private:
    void markFromRoots();
    void markRef(Addr ref);
    void compact();
    void fixHeapExternalSlots();
    void fixSlot(Addr slot);

    VolatileHeap &h_;
    std::vector<Word> startStorage_;
    std::vector<Word> liveStorage_;
    MarkBitmap marks_;
    RegionTable regions_;
    std::vector<Addr> markStack_;
};

} // namespace espresso

#endif // ESPRESSO_HEAP_OLD_GC_HH
