/**
 * @file
 * Summary-phase data: per-region destinations and block offsets.
 *
 * The summary phase of PSGC turns the mark bitmap into region-based
 * indices that answer forwardee(addr) — where a live object will be
 * moved. The computation is a pure function of the mark bitmap
 * (paper §4.2: "the summary phase is idempotent"), which is exactly
 * what makes PJH recovery possible: the table is volatile and simply
 * recomputed from the persisted bitmap after a crash.
 *
 * Destinations implement sliding compaction: live objects are packed
 * toward the space base in address order, so an object's destination
 * never exceeds its source address.
 */

#ifndef ESPRESSO_HEAP_REGION_TABLE_HH
#define ESPRESSO_HEAP_REGION_TABLE_HH

#include <cstddef>
#include <vector>

#include "heap/mark_bitmap.hh"
#include "util/common.hh"

namespace espresso {

/** Region-based compaction indices. */
class RegionTable
{
  public:
    /** Block granularity of the intra-region live-prefix cache. */
    static constexpr std::size_t kBlockSize = 512;

    RegionTable() = default;

    /**
     * @param base covered space base.
     * @param size covered bytes.
     * @param region_size region granularity (multiple of kBlockSize).
     */
    RegionTable(Addr base, std::size_t size, std::size_t region_size);

    /**
     * Recompute all indices from @p marks; live data slides down to
     * @p compact_base (normally the space base).
     */
    void buildSummary(const MarkBitmap &marks, Addr compact_base);

    /**
     * Slice-aware summary for region-parallel compaction: the
     * destination cursor additionally resets to the slice's own first
     * region base at every region index in @p slice_begins (sorted,
     * first element 0). Each slice therefore packs its live data into
     * its own region span, making slices fully independent — no
     * slice's destination range overlaps another slice's source
     * range, so workers can compact slices concurrently. The
     * inter-slice gaps left behind are plugged with filler objects by
     * the compactor. With the single slice {0} this is exactly the
     * classic global sliding summary.
     */
    void buildSummary(const MarkBitmap &marks, Addr compact_base,
                      const std::vector<std::size_t> &slice_begins);

    /**
     * Re-derive the destinations for a new slice partition from the
     * live counts of the last buildSummary — O(#regions), no bitmap
     * pass. This is all slicing changes: per-region live bytes and
     * block prefixes are partition-independent.
     */
    void applySlices(const std::vector<std::size_t> &slice_begins);

    /** Packed end (one past the last live destination byte) of the
     * region range [begin, end) — the filler-gap start for a slice. */
    Addr
    packedEnd(std::size_t begin, std::size_t end) const
    {
        if (end <= begin)
            return regionBase(begin);
        return destBase_[end - 1] + liveBytes_[end - 1];
    }

    /** Post-compaction allocation top. */
    Addr newTop() const { return newTop_; }

    /** Destination of the live object at @p obj. */
    Addr forwardee(Addr obj, const MarkBitmap &marks) const;

    std::size_t numRegions() const { return liveBytes_.size(); }
    std::size_t regionSize() const { return regionSize_; }

    std::size_t
    regionIndex(Addr a) const
    {
        return (a - base_) / regionSize_;
    }

    Addr
    regionBase(std::size_t idx) const
    {
        return base_ + idx * regionSize_;
    }

    std::size_t liveBytesInRegion(std::size_t idx) const
    {
        return liveBytes_[idx];
    }

    /** Destination address of the first live byte of region @p idx. */
    Addr destBase(std::size_t idx) const { return destBase_[idx]; }

  private:
    Addr base_ = 0;
    std::size_t size_ = 0;
    std::size_t regionSize_ = 0;
    Addr compactBase_ = 0; ///< from the last buildSummary
    Addr newTop_ = 0;
    std::vector<std::size_t> liveBytes_; ///< per region
    std::vector<Addr> destBase_;         ///< per region
    std::vector<std::size_t> blockPrefix_; ///< live bytes before block,
                                           ///< within its region
};

} // namespace espresso

#endif // ESPRESSO_HEAP_REGION_TABLE_HH
