/**
 * @file
 * Summary-phase data: per-region destinations and block offsets.
 *
 * The summary phase of PSGC turns the mark bitmap into region-based
 * indices that answer forwardee(addr) — where a live object will be
 * moved. The computation is a pure function of the mark bitmap
 * (paper §4.2: "the summary phase is idempotent"), which is exactly
 * what makes PJH recovery possible: the table is volatile and simply
 * recomputed from the persisted bitmap after a crash.
 *
 * Destinations implement sliding compaction: live objects are packed
 * toward the space base in address order, so an object's destination
 * never exceeds its source address.
 */

#ifndef ESPRESSO_HEAP_REGION_TABLE_HH
#define ESPRESSO_HEAP_REGION_TABLE_HH

#include <cstddef>
#include <vector>

#include "heap/mark_bitmap.hh"
#include "util/common.hh"

namespace espresso {

/** Region-based compaction indices. */
class RegionTable
{
  public:
    /** Block granularity of the intra-region live-prefix cache. */
    static constexpr std::size_t kBlockSize = 512;

    RegionTable() = default;

    /**
     * @param base covered space base.
     * @param size covered bytes.
     * @param region_size region granularity (multiple of kBlockSize).
     */
    RegionTable(Addr base, std::size_t size, std::size_t region_size);

    /**
     * Recompute all indices from @p marks; live data slides down to
     * @p compact_base (normally the space base).
     */
    void buildSummary(const MarkBitmap &marks, Addr compact_base);

    /** Post-compaction allocation top. */
    Addr newTop() const { return newTop_; }

    /** Destination of the live object at @p obj. */
    Addr forwardee(Addr obj, const MarkBitmap &marks) const;

    std::size_t numRegions() const { return liveBytes_.size(); }
    std::size_t regionSize() const { return regionSize_; }

    std::size_t
    regionIndex(Addr a) const
    {
        return (a - base_) / regionSize_;
    }

    Addr
    regionBase(std::size_t idx) const
    {
        return base_ + idx * regionSize_;
    }

    std::size_t liveBytesInRegion(std::size_t idx) const
    {
        return liveBytes_[idx];
    }

    /** Destination address of the first live byte of region @p idx. */
    Addr destBase(std::size_t idx) const { return destBase_[idx]; }

  private:
    Addr base_ = 0;
    std::size_t size_ = 0;
    std::size_t regionSize_ = 0;
    Addr newTop_ = 0;
    std::vector<std::size_t> liveBytes_; ///< per region
    std::vector<Addr> destBase_;         ///< per region
    std::vector<std::size_t> blockPrefix_; ///< live bytes before block,
                                           ///< within its region
};

} // namespace espresso

#endif // ESPRESSO_HEAP_REGION_TABLE_HH
