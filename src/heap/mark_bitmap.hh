/**
 * @file
 * Liveness bitmap for mark/summary/compact collections.
 *
 * Two bit vectors over 8-byte heap granules:
 *  - start bits: one bit at the first granule of each live object
 *    (drives object iteration during compaction/recovery);
 *  - live bits: every granule of a live object (drives destination
 *    computation by popcount, with no need to read object headers —
 *    essential for PJH recovery, where source headers of already
 *    moved objects may be overwritten).
 *
 * Storage is caller-owned so the PJH can place it inside the
 * persistent space and persist it at the end of the marking phase
 * (paper §4.2: "the mark bitmap can be seen as a sketch of the whole
 * heap ... it must be persisted before the objects start being
 * moved").
 */

#ifndef ESPRESSO_HEAP_MARK_BITMAP_HH
#define ESPRESSO_HEAP_MARK_BITMAP_HH

#include <cstddef>

#include "util/bitmap.hh"
#include "util/common.hh"

namespace espresso {

/** Liveness bitmap over [base, base+size). */
class MarkBitmap
{
  public:
    /** Heap granule covered by one bit. */
    static constexpr std::size_t kGranule = kWordSize;

    MarkBitmap() = default;

    /**
     * @param base first covered heap address (granule aligned).
     * @param size covered bytes.
     * @param start_words backing words for the start bits.
     * @param live_words backing words for the live bits.
     */
    MarkBitmap(Addr base, std::size_t size, Word *start_words,
               Word *live_words);

    /** Bits needed per vector for @p size covered bytes. */
    static constexpr std::size_t
    bitsFor(std::size_t size)
    {
        return size / kGranule;
    }

    /** Bytes of backing storage needed for ONE vector. */
    static constexpr std::size_t
    storageBytesFor(std::size_t size)
    {
        return BitmapView::bytesFor(bitsFor(size));
    }

    Addr base() const { return base_; }
    std::size_t coveredBytes() const { return size_; }

    /** Record a live object at @p obj spanning @p size bytes. */
    void markObject(Addr obj, std::size_t size);

    /**
     * Atomically claim the object at @p obj: set its start bit with a
     * word-level CAS and, when this call won the claim, set its live
     * bits. Returns true exactly once per object across concurrent
     * markers — the claim the parallel mark phase relies on to push
     * each object onto exactly one worker's stack.
     */
    bool
    tryMarkObject(Addr obj, std::size_t size)
    {
        std::size_t bit = bitIndex(obj);
        if (startBits_.testAtomic(bit))
            return false;
        if (!startBits_.testAndSetAtomic(bit))
            return false;
        liveBits_.setRangeAtomic(bit, bitIndex(obj + size));
        return true;
    }

    bool
    isMarked(Addr obj) const
    {
        return startBits_.test(bitIndex(obj));
    }

    /** Atomic start-bit test. Concurrent markers and the mutator
     * write barrier use it to skip already-marked objects *without*
     * reading their headers — an object published during a concurrent
     * cycle is always marked (born black or shaded on store) before
     * the reference escapes, so an unmarked object is pre-snapshot
     * and its header is safely readable. */
    bool
    isMarkedAtomic(Addr obj) const
    {
        return startBits_.testAtomic(bitIndex(obj));
    }

    /** Live bytes in [from, to) (popcount of live bits). */
    std::size_t
    liveBytesInRange(Addr from, Addr to) const
    {
        return liveBits_.popcount(bitIndex(from), bitIndex(to)) * kGranule;
    }

    /**
     * First marked object start at or after @p from, strictly below
     * @p limit; returns kNullAddr when none.
     */
    Addr nextMarkedObject(Addr from, Addr limit) const;

    /** Object size implied by the live bits at @p obj. */
    std::size_t liveSizeAt(Addr obj) const;

    void
    clearAll()
    {
        startBits_.clearAll();
        liveBits_.clearAll();
    }

    BitmapView &startBits() { return startBits_; }
    BitmapView &liveBits() { return liveBits_; }
    const BitmapView &startBits() const { return startBits_; }
    const BitmapView &liveBits() const { return liveBits_; }

  private:
    std::size_t
    bitIndex(Addr a) const
    {
        return (a - base_) / kGranule;
    }

    Addr base_ = 0;
    std::size_t size_ = 0;
    BitmapView startBits_;
    BitmapView liveBits_;
};

} // namespace espresso

#endif // ESPRESSO_HEAP_MARK_BITMAP_HH
