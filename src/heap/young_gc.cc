#include "heap/young_gc.hh"

#include <cstring>
#include <utility>

#include "util/logging.hh"

namespace espresso {

YoungGc::YoungGc(VolatileHeap &heap)
    : h_(heap), toTop_(heap.toBase_), scan_(heap.toBase_),
      oldTopAtStart_(heap.oldTop_)
{}

void
YoungGc::collect()
{
    auto visitor = [this](Addr slot) { processSlot(slot); };

    // Roots: handles, providers, external (PJH) spaces.
    h_.visitAllRootSlots(visitor);

    // Old-to-young references act as roots too (remembered set by
    // full old-space scan; a card table would narrow this).
    Addr a = h_.oldBase_;
    while (a < oldTopAtStart_) {
        Oop o(a);
        o.forEachRefSlot(visitor);
        a += o.sizeInBytes();
    }

    // Transitive closure: scan evacuated and promoted objects.
    while (scan_ < toTop_ || !promotedToScan_.empty()) {
        if (scan_ < toTop_) {
            Oop o(scan_);
            scan_ += o.sizeInBytes();
            o.forEachRefSlot(visitor);
        } else {
            Oop o(promotedToScan_.back());
            promotedToScan_.pop_back();
            o.forEachRefSlot(visitor);
        }
    }

    // Flip: eden empties, to-space becomes from-space.
    h_.edenTop_ = h_.edenBase_;
    std::swap(h_.fromBase_, h_.toBase_);
    std::swap(h_.fromLimit_, h_.toLimit_);
    h_.fromTop_ = toTop_;
}

void
YoungGc::processSlot(Addr slot)
{
    Addr ref = loadWord(slot);
    if (ref == kNullAddr)
        return;
    // Only eden and the current from-space hold evacuation
    // candidates; references already pointing into to-space (or
    // anywhere else) are final.
    bool in_eden = ref >= h_.edenBase_ && ref < h_.edenLimit_;
    bool in_from = ref >= h_.fromBase_ && ref < h_.fromLimit_;
    if (!in_eden && !in_from)
        return;
    Oop obj(ref);
    Addr dest =
        obj.isForwarded() ? obj.forwardee() : evacuate(obj);
    storeWord(slot, dest);
}

Addr
YoungGc::evacuate(Oop obj)
{
    std::size_t size = obj.sizeInBytes();
    unsigned age = obj.age();
    bool tenure = age + 1 >= h_.cfg_.tenureThreshold;

    Addr dest = kNullAddr;
    if (tenure)
        dest = h_.tryBump(h_.oldTop_, h_.oldLimit_, size);
    if (dest == kNullAddr)
        dest = h_.tryBump(toTop_, h_.toLimit_, size);
    if (dest == kNullAddr) {
        // Survivor overflow: promote instead.
        dest = h_.tryBump(h_.oldTop_, h_.oldLimit_, size);
        tenure = true;
    }
    if (dest == kNullAddr)
        fatal("young GC: promotion failure (old space full)");

    std::memcpy(reinterpret_cast<void *>(dest),
                reinterpret_cast<const void *>(obj.addr()), size);
    Oop moved(dest);
    moved.setAge(age + 1);
    obj.forwardTo(dest);

    if (tenure || dest >= h_.oldBase_) {
        promotedToScan_.push_back(dest);
        h_.stats_.bytesPromoted += size;
    }
    h_.stats_.bytesCopiedYoung += size;
    return dest;
}

} // namespace espresso
