#include "heap/volatile_heap.hh"

#include <algorithm>
#include <cstring>

#include "heap/old_gc.hh"
#include "heap/young_gc.hh"
#include "util/logging.hh"

namespace espresso {

VolatileHeap::VolatileHeap(const VolatileHeapConfig &cfg)
    : cfg_(cfg),
      storage_(cfg.edenSize + 2 * cfg.survivorSize + cfg.oldSize +
               kWordSize, 0)
{
    Addr base = reinterpret_cast<Addr>(storage_.data());
    base = alignUp(base, kWordSize);

    edenBase_ = edenTop_ = base;
    edenLimit_ = edenBase_ + cfg.edenSize;
    fromBase_ = fromTop_ = edenLimit_;
    fromLimit_ = fromBase_ + cfg.survivorSize;
    toBase_ = fromLimit_;
    toLimit_ = toBase_ + cfg.survivorSize;
    oldBase_ = oldTop_ = toLimit_;
    oldLimit_ = oldBase_ + cfg.oldSize;

    // DRAM-side SATB deletion barrier: handle overwrites/releases
    // report the dropped value to every external space, so a PJH
    // shard in concurrent mark never loses its last snapshot path
    // through a volatile root.
    handles_.setOverwriteHook(
        [this](Addr ref) { shadeExternalRef(ref); });
}

VolatileHeap::~VolatileHeap() = default;

bool
VolatileHeap::contains(Addr a) const
{
    return a >= edenBase_ && a < oldLimit_;
}

bool
VolatileHeap::inYoung(Addr a) const
{
    // Eden plus BOTH survivor spaces: the from/to roles swap every
    // scavenge, but the young generation's footprint is fixed
    // ([eden, old)), and membership must not depend on which
    // survivor space currently plays which role.
    return a >= edenBase_ && a < oldBase_;
}

bool
VolatileHeap::inOld(Addr a) const
{
    return a >= oldBase_ && a < oldLimit_;
}

Addr
VolatileHeap::tryBump(Addr &top, Addr limit, std::size_t size)
{
    if (top + size > limit)
        return kNullAddr;
    Addr a = top;
    top += size;
    return a;
}

void
VolatileHeap::initObject(Addr a, const Klass *k, std::uint64_t length,
                         std::size_t size)
{
    std::memset(reinterpret_cast<void *>(a), 0, size);
    Oop o(a);
    o.setKlass(k);
    if (k->isArray())
        o.setArrayLength(length);
}

Oop
VolatileHeap::allocRaw(const Klass *k, std::uint64_t length, bool allow_gc)
{
    std::size_t size = Oop::sizeFor(k, length);

    // Oversized objects go straight to the old space.
    if (size > cfg_.edenSize / 2) {
        Addr a = allocInOld(size);
        if (a == kNullAddr)
            fatal("volatile heap: cannot fit " + std::to_string(size) +
                  " bytes even in the old space");
        initObject(a, k, length, size);
        return Oop(a);
    }

    Addr a = tryBump(edenTop_, edenLimit_, size);
    if (a == kNullAddr && allow_gc) {
        collectYoung();
        a = tryBump(edenTop_, edenLimit_, size);
        if (a == kNullAddr) {
            collectFull();
            a = tryBump(edenTop_, edenLimit_, size);
        }
    }
    if (a == kNullAddr)
        fatal("volatile heap: out of memory allocating " +
              std::to_string(size) + " bytes");
    initObject(a, k, length, size);
    return Oop(a);
}

Oop
VolatileHeap::allocInstance(const Klass *k)
{
    if (!k || k->isArray())
        panic("allocInstance: not an instance klass");
    return allocRaw(k, 0, !inGc_);
}

Oop
VolatileHeap::allocArray(const Klass *k, std::uint64_t length)
{
    if (!k || !k->isArray())
        panic("allocArray: not an array klass");
    return allocRaw(k, length, !inGc_);
}

Addr
VolatileHeap::allocInOld(std::size_t size)
{
    Addr a = tryBump(oldTop_, oldLimit_, size);
    if (a == kNullAddr && !inGc_) {
        collectFull();
        a = tryBump(oldTop_, oldLimit_, size);
    }
    return a;
}

void
VolatileHeap::addExternalSpace(ExternalSpace *space)
{
    std::lock_guard<std::mutex> g(externalMu_);
    externalSpaces_.push_back(space);
}

void
VolatileHeap::removeExternalSpace(ExternalSpace *space)
{
    std::lock_guard<std::mutex> g(externalMu_);
    std::erase(externalSpaces_, space);
}

void
VolatileHeap::shadeExternalRef(Addr ref)
{
    if (ref == kNullAddr)
        return;
    std::lock_guard<std::mutex> g(externalMu_);
    for (ExternalSpace *space : externalSpaces_)
        space->shadeOverwrittenRef(ref);
}

void
VolatileHeap::addRootProvider(
    std::function<void(const SlotVisitor &)> provider)
{
    rootProviders_.push_back(std::move(provider));
}

void
VolatileHeap::visitAllRootSlots(const SlotVisitor &visitor)
{
    handles_.forEachSlot(visitor);
    for (auto &provider : rootProviders_)
        provider(visitor);
    // Snapshot under the lock: a concurrent fabric create may be
    // wiring new shards while a collection walks the list (the new
    // space is empty until the wiring returns, so either view is
    // consistent).
    std::vector<ExternalSpace *> spaces;
    {
        std::lock_guard<std::mutex> g(externalMu_);
        spaces = externalSpaces_;
    }
    for (ExternalSpace *space : spaces)
        space->forEachOutRefSlot(visitor);
}

void
VolatileHeap::collectYoung()
{
    inGc_ = true;
    YoungGc gc(*this);
    gc.collect();
    inGc_ = false;
    ++stats_.youngCollections;
}

void
VolatileHeap::collectFull()
{
    inGc_ = true;
    {
        YoungGc young(*this);
        young.collect();
    }
    {
        OldGc old(*this);
        old.collect();
    }
    inGc_ = false;
    ++stats_.youngCollections;
    ++stats_.oldCollections;
}

void
VolatileHeap::forEachOldObject(const std::function<void(Oop)> &fn) const
{
    Addr a = oldBase_;
    while (a < oldTop_) {
        Oop o(a);
        fn(o);
        a += o.sizeInBytes();
    }
}

void
VolatileHeap::forEachObject(const std::function<void(Oop)> &fn) const
{
    Addr a = edenBase_;
    while (a < edenTop_) {
        Oop o(a);
        fn(o);
        a += o.sizeInBytes();
    }
    a = fromBase_;
    while (a < fromTop_) {
        Oop o(a);
        fn(o);
        a += o.sizeInBytes();
    }
    forEachOldObject(fn);
}

} // namespace espresso
