/**
 * @file
 * The volatile generational heap (Parallel Scavenge analog).
 *
 * Layout: [eden][survivor-from][survivor-to][old]. Objects allocate
 * by bumping eden; young collections copy survivors between the
 * survivor spaces and tenure them into old after kTenureThreshold
 * copies; old collections run the same mark/summary/compact algorithm
 * the PJH extends (paper §3.1: PJH "resembles the old GC in PSGC").
 *
 * Cross-heap references: spaces outside this heap (PJH instances) may
 * hold references into it; they register as ExternalSpace providers
 * whose out-slots are treated as roots and fixed up after moves.
 */

#ifndef ESPRESSO_HEAP_VOLATILE_HEAP_HH
#define ESPRESSO_HEAP_VOLATILE_HEAP_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/handles.hh"
#include "runtime/klass.hh"
#include "runtime/oop.hh"
#include "util/common.hh"

namespace espresso {

/** Visitor over addresses of reference slots. */
using SlotVisitor = std::function<void(Addr)>;

/** A foreign space that may reference volatile objects. */
class ExternalSpace
{
  public:
    virtual ~ExternalSpace() = default;

    /** Visit every slot that may hold a ref into the volatile heap. */
    virtual void forEachOutRefSlot(const SlotVisitor &visitor) = 0;

    /**
     * SATB deletion-barrier hook for the DRAM side: @p ref is the
     * value a volatile root slot (a handle) is about to stop
     * holding, and may point into this space. A space running a
     * concurrent mark shades it into its SATB buffer; values outside
     * the space — and spaces not marking — ignore the call.
     * Default: no-op.
     */
    virtual void shadeOverwrittenRef(Addr ref) { (void)ref; }
};

/** Sizing knobs for the volatile heap. */
struct VolatileHeapConfig
{
    std::size_t edenSize = 4u << 20;
    std::size_t survivorSize = 1u << 20;
    std::size_t oldSize = 32u << 20;
    unsigned tenureThreshold = 2;
    std::size_t oldRegionSize = 64u << 10;
};

/** GC counters. */
struct GcStats
{
    std::uint64_t youngCollections = 0;
    std::uint64_t oldCollections = 0;
    std::uint64_t bytesPromoted = 0;
    std::uint64_t bytesCopiedYoung = 0;
    std::uint64_t bytesCompactedOld = 0;
};

class YoungGc;
class OldGc;

/** The DRAM heap: allocation plus both collectors. */
class VolatileHeap
{
  public:
    explicit VolatileHeap(const VolatileHeapConfig &cfg = {});
    ~VolatileHeap();

    VolatileHeap(const VolatileHeap &) = delete;
    VolatileHeap &operator=(const VolatileHeap &) = delete;

    /** @name Allocation */
    /// @{
    /**
     * Allocate and zero-initialize an instance of @p k (the `new`
     * analog). Runs GC on demand; throws FatalError when even a full
     * collection cannot satisfy the request.
     */
    Oop allocInstance(const Klass *k);

    /** Allocate and zero an array of @p k (an array class). */
    Oop allocArray(const Klass *k, std::uint64_t length);
    /// @}

    /** @name Roots */
    /// @{
    HandleRegistry &handles() { return handles_; }

    void addExternalSpace(ExternalSpace *space);
    void removeExternalSpace(ExternalSpace *space);

    /** Fan a DRAM-side deletion-barrier event out to every external
     * space (see ExternalSpace::shadeOverwrittenRef); wired into the
     * handle registry's overwrite hook at construction. */
    void shadeExternalRef(Addr ref);

    /** Extra root-slot provider (e.g. PJH root tables). */
    void addRootProvider(std::function<void(const SlotVisitor &)> provider);
    /// @}

    /** @name Collection */
    /// @{
    void collectYoung();
    void collectFull();
    /// @}

    /** @name Geometry */
    /// @{
    bool contains(Addr a) const;
    bool inYoung(Addr a) const;
    bool inOld(Addr a) const;
    std::size_t edenUsed() const { return edenTop_ - edenBase_; }
    std::size_t oldUsed() const { return oldTop_ - oldBase_; }
    /// @}

    const GcStats &stats() const { return stats_; }
    const VolatileHeapConfig &config() const { return cfg_; }

    /** Walk all live objects in the old space (debug/verify). */
    void forEachOldObject(const std::function<void(Oop)> &fn) const;

    /** Walk every object in eden, survivor and old space. */
    void forEachObject(const std::function<void(Oop)> &fn) const;

  private:
    friend class YoungGc;
    friend class OldGc;

    Addr tryBump(Addr &top, Addr limit, std::size_t size);
    Oop allocRaw(const Klass *k, std::uint64_t length, bool allow_gc);
    void initObject(Addr a, const Klass *k, std::uint64_t length,
                    std::size_t size);
    Addr allocInOld(std::size_t size);
    void visitAllRootSlots(const SlotVisitor &visitor);

    VolatileHeapConfig cfg_;
    std::vector<std::uint8_t> storage_;

    Addr edenBase_, edenTop_, edenLimit_;
    Addr fromBase_, fromTop_, fromLimit_;
    Addr toBase_, toLimit_;
    Addr oldBase_, oldTop_, oldLimit_;

    HandleRegistry handles_;
    /** Guards externalSpaces_: fabric/heap creation may wire shards
     * from several threads while a volatile collection walks the
     * list. */
    mutable std::mutex externalMu_;
    std::vector<ExternalSpace *> externalSpaces_;
    std::vector<std::function<void(const SlotVisitor &)>> rootProviders_;
    GcStats stats_;
    bool inGc_ = false;
};

} // namespace espresso

#endif // ESPRESSO_HEAP_VOLATILE_HEAP_HH
