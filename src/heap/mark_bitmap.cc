#include "heap/mark_bitmap.hh"

#include "util/logging.hh"

namespace espresso {

MarkBitmap::MarkBitmap(Addr base, std::size_t size, Word *start_words,
                       Word *live_words)
    : base_(base), size_(size),
      startBits_(start_words, bitsFor(size)),
      liveBits_(live_words, bitsFor(size))
{
    if (!isAligned(base, kGranule) || !isAligned(size, kGranule))
        panic("MarkBitmap: unaligned coverage");
}

void
MarkBitmap::markObject(Addr obj, std::size_t size)
{
    if (obj < base_ || obj + size > base_ + size_)
        panic("MarkBitmap::markObject out of coverage");
    std::size_t first = bitIndex(obj);
    startBits_.set(first);
    liveBits_.setRange(first, first + size / kGranule);
}

Addr
MarkBitmap::nextMarkedObject(Addr from, Addr limit) const
{
    std::size_t bit =
        startBits_.findNextSet(bitIndex(from), bitIndex(limit));
    if (bit == bitIndex(limit))
        return kNullAddr;
    return base_ + bit * kGranule;
}

std::size_t
MarkBitmap::liveSizeAt(Addr obj) const
{
    // The live bits of one object form a run that ends either at an
    // unset bit or at the start bit of the next object.
    std::size_t bit = bitIndex(obj);
    std::size_t limit = bitsFor(size_);
    std::size_t end = bit + 1;
    while (end < limit && liveBits_.test(end) && !startBits_.test(end))
        ++end;
    return (end - bit) * kGranule;
}

} // namespace espresso
