#include "pjh/undo_log.hh"

#include <cstring>
#include <vector>

#include "nvm/nvm_device.hh"
#include "util/logging.hh"

namespace espresso {

UndoLog::UndoLog(NvmDevice *device, Addr base, std::size_t size,
                 Addr data_base)
    : device_(device), base_(base), size_(size), dataBase_(data_base)
{}

bool
UndoLog::active() const
{
    return open_ || header()->active != 0;
}

Word
UndoLog::entryChecksum(const LogEntry &entry, const Word *bytes,
                       std::size_t words)
{
    Word h = 0x9e3779b97f4a7c15ull;
    auto mix = [&h](Word v) {
        h ^= v;
        h *= 0xbf58476d1ce4e5b9ull;
        h ^= h >> 29;
    };
    mix(entry.offset);
    mix(entry.length);
    mix(entry.seq);
    for (std::size_t i = 0; i < words; ++i)
        mix(bytes[i]);
    return h;
}

void
UndoLog::begin()
{
    if (open_)
        panic("UndoLog::begin: transaction already open");
    // Lazy activation: the header becomes durable with the first
    // record. A crash before any record leaves the previous retired
    // header durable — correct, nothing was overwritten yet.
    LogHeader *h = header();
    h->count = 0;
    h->used = 0;
    h->seq += 1;
    h->active = 1;
    open_ = true;
}

void
UndoLog::record(Addr addr, std::size_t len)
{
    if (!open_)
        panic("UndoLog::record outside a transaction");
    // A zero-length record has nothing to restore; writing one would
    // index old_bytes[-1] below and corrupt the previous entry's
    // payload or checksum.
    if (len == 0)
        return;
    LogHeader *h = header();
    std::size_t padded = alignUp(len, kWordSize);
    std::size_t entry_bytes = sizeof(LogEntry) + padded;
    if (kCacheLineSize + h->used + entry_bytes > size_)
        fatal("UndoLog: log area full");

    Addr entry_addr = payloadBase() + h->used;
    auto *entry = reinterpret_cast<LogEntry *>(entry_addr);
    entry->offset = addr - dataBase_;
    entry->length = len;
    entry->seq = h->seq;
    auto *old_bytes = reinterpret_cast<Word *>(entry + 1);
    old_bytes[padded / kWordSize - 1] = 0;
    std::memcpy(old_bytes, reinterpret_cast<const void *>(addr), len);
    entry->checksum =
        entryChecksum(*entry, old_bytes, padded / kWordSize);

    h->used += entry_bytes;
    h->count += 1;
    // One fence covers entry and header. An eviction may publish the
    // header ahead of the entry, but the seq+checksum let rollback
    // discard such torn tails (whose guarded overwrites also never
    // became durable, since they happen after this fence).
    device_->flush(entry_addr, entry_bytes);
    device_->flush(reinterpret_cast<Addr>(h), sizeof(LogHeader));
    device_->fence();
}

void
UndoLog::commit()
{
    if (!open_)
        panic("UndoLog::commit outside a transaction");
    // Persist the new values at every logged location, then retire.
    LogHeader *h = header();
    Addr cursor = payloadBase();
    for (Word i = 0; i < h->count; ++i) {
        auto *entry = reinterpret_cast<LogEntry *>(cursor);
        device_->flush(dataBase_ + entry->offset, entry->length);
        cursor += sizeof(LogEntry) + alignUp(entry->length, kWordSize);
    }
    device_->fence();
    retire();
}

void
UndoLog::abort()
{
    if (!open_)
        panic("UndoLog::abort outside a transaction");
    rollback();
    retire();
}

void
UndoLog::recover()
{
    if (header()->active) {
        rollback();
        retire();
    }
}

void
UndoLog::rollback()
{
    LogHeader *h = header();
    // Collect the valid prefix: entries of this transaction with an
    // intact checksum.
    std::vector<LogEntry *> entries;
    Addr cursor = payloadBase();
    for (Word i = 0; i < h->count; ++i) {
        if (cursor + sizeof(LogEntry) > base_ + size_)
            break;
        auto *entry = reinterpret_cast<LogEntry *>(cursor);
        std::size_t padded = alignUp(entry->length, kWordSize);
        if (entry->seq != h->seq ||
            cursor + sizeof(LogEntry) + padded > base_ + size_ ||
            entry->checksum !=
                entryChecksum(*entry,
                              reinterpret_cast<const Word *>(entry + 1),
                              padded / kWordSize)) {
            break; // torn tail: its overwrite never became durable
        }
        entries.push_back(entry);
        cursor += sizeof(LogEntry) + padded;
    }
    // Newest-first so overlapping records restore the oldest state.
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
        LogEntry *entry = *it;
        std::memcpy(reinterpret_cast<void *>(dataBase_ + entry->offset),
                    entry + 1, entry->length);
        device_->flush(dataBase_ + entry->offset, entry->length);
    }
    device_->fence();
}

void
UndoLog::retire()
{
    LogHeader *h = header();
    h->active = 0;
    device_->persist(reinterpret_cast<Addr>(&h->active), sizeof(Word));
    open_ = false;
}

} // namespace espresso
