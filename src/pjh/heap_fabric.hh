/**
 * @file
 * HeapFabric — many PJH instances behind one API (the sharded
 * runtime).
 *
 * The paper's heap manager (§3.3, Table 1) names one PJH per device;
 * a fabric scales that horizontally: N PjhHeap shards, each on its
 * own NvmDevice, behind a consistent-hash ring (ShardRouter) that
 * routes root names and allocation keys to shards. Membership is
 * durable in a RingManifest on the fabric's own small manifest
 * device, so a reboot (or a crash mid-create) re-attaches every
 * member shard deterministically.
 *
 * Contracts:
 *  - Routing: a route key (root name, database pk) picks exactly one
 *    shard via the ring; a 1-shard fabric behaves exactly like the
 *    classic single PjhHeap.
 *  - Roots: setRoot(name, obj) registers the root in the name table
 *    of the shard that *owns* obj (its home shard), even when the
 *    ring routes the name elsewhere — that keeps cross-shard
 *    references legal: the home shard's GC pins the object through
 *    its own name table and rewrites the entry when compaction moves
 *    it, while every other shard's GC ignores out-of-heap values.
 *    getRoot(name) probes the ring shard first and falls back to the
 *    other members, so lookups stay O(1) for ring-local roots (the
 *    common case: pnew routed by the same key) and stay correct for
 *    remote-shard roots.
 *  - GC: collectShard(i) quiesces shard i only — allocation and
 *    roots on every other shard proceed (the quiescence scope is
 *    the shard, not the process). In concurrent mode
 *    (setGcConcurrent / ESPRESSO_GC_CONCURRENT) even shard i's own
 *    traffic overlaps the marking phase and blocks only for the
 *    snapshot and remark+compact safepoints. collectAll() fans
 *    independent per-shard collections across a fabric-level
 *    worker pool (ESPRESSO_FABRIC_GC_WORKERS, default: one worker
 *    per shard).
 *  - Recovery: recover() re-attaches members from the manifest;
 *    members flagged formatted but not yet committed (a crash
 *    between shard create and manifest commit) are rolled forward,
 *    members that never reached the formatted flag are re-formatted
 *    from the manifest's stored sizing, then the membership is
 *    re-committed. Per-shard crash recovery (torn tails, interrupted
 *    compactions) is PjhHeap::attach's job and stays per-shard.
 *
 * Elastic membership (grow/shrink) is ONLINE: traffic keeps flowing
 * while members join or leave. The durable protocol mirrors fabric
 * creation — declareMigration() fences a checksummed intent record,
 * per-member migrated flags persist incremental progress, and the
 * membership commit() fence (epoch += 1, shardCount = target) is the
 * atomic switch; recover() rolls a declared change forward and a
 * torn declare reads as "nothing happened". While a change is in
 * flight the fabric routes by an epoch PAIR: writes (pnew, null
 * publishes) follow the next ring so new data lands on its
 * post-change home, reads probe the next ring, then the committed
 * ring — following forwarding stubs (NameKind::kForward) the
 * migration leaves in the old home's name table — then every member.
 * The commit fence retires the forwards.
 *
 * Lifecycle membership operations (create, recover, detach,
 * crashShard, crashAll, reattachShard, migrate) are not thread-safe
 * against each other or against traffic on the affected shard.
 * grow/shrink are the exception by design: they serialize against
 * each other on an internal mutex and run concurrently with
 * allocation and root traffic — but not with collections of source
 * members (object closures are streamed with plain reads, the same
 * quiescence class as collect()). HeapManager serializes the
 * named-fabric registry, and per-shard quiescence is the caller's
 * contract (same as collect()).
 */

#ifndef ESPRESSO_PJH_HEAP_FABRIC_HH
#define ESPRESSO_PJH_HEAP_FABRIC_HH

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "heap/volatile_heap.hh"
#include "nvm/decision_log.hh"
#include "nvm/nvm_device.hh"
#include "pjh/pjh_heap.hh"
#include "pjh/shard_router.hh"
#include "runtime/klass_registry.hh"
#include "util/spin.hh"
#include "util/worker_pool.hh"

namespace espresso {

/** Creation-time shape of a fabric. */
struct FabricConfig
{
    /** Sizing applied to every shard. */
    PjhConfig shard;

    /** Member count; 0 resolves ESPRESSO_SHARDS, then 1. */
    unsigned shards = 0;

    /** Ring points per shard; 0 resolves ESPRESSO_SHARD_VNODES, then
     * ShardRouter::kDefaultVnodes. */
    unsigned vnodes = 0;
};

/** One consistent-hash fabric of PJH shards. */
class HeapFabric
{
  public:
    /**
     * @param registry runtime class directory.
     * @param volatile_heap DRAM heap for cross-heap GC wiring (may
     *        be null for standalone fabrics).
     * @param nvm_cfg knobs applied to every device this fabric
     *        creates (shards and manifest).
     */
    HeapFabric(KlassRegistry *registry, VolatileHeap *volatile_heap,
               NvmConfig nvm_cfg = {});
    ~HeapFabric();

    HeapFabric(const HeapFabric &) = delete;
    HeapFabric &operator=(const HeapFabric &) = delete;

    /** Resolve a shard count of 0 (ESPRESSO_SHARDS, then 1). */
    static unsigned shardsFromEnv();

    /** @name Lifecycle */
    /// @{
    /** Format the manifest and every shard (crash-tolerant; see
     * RingManifest). The fabric ends attached. */
    void create(const FabricConfig &cfg);

    /** Attach (or crash-recover) a fabric from its durable manifest
     * and shard devices. */
    void recover(SafetyLevel safety = SafetyLevel::kUserGuaranteed);

    /** Make every member live: full recover() when the fabric is
     * down, per-member reattach for individually crashed shards
     * (the loadHeap path must never hand back a null member). */
    void ensureAttached(SafetyLevel safety =
                            SafetyLevel::kUserGuaranteed);

    /** Clean shutdown of every attached shard + the manifest. */
    void detach();

    /** True while the fabric's shards are attached (individual
     * members may still be down after crashShard). */
    bool attached() const { return !heaps_.empty(); }

    /** True when create() ever committed durable state (exists on
     * devices, attached or not). */
    bool
    exists() const
    {
        return manifestDev_ != nullptr;
    }
    /// @}

    /** @name Geometry */
    /// @{
    /** Member slots in use (during a grow this already counts the
     * joining members; individual slots may be crashed/null). */
    unsigned
    shardCount() const
    {
        return memberSlots_.load(std::memory_order_acquire);
    }

    /** Committed membership epoch. */
    std::uint64_t epoch() const;

    /** Shard @p i, or nullptr while that member is crashed. */
    PjhHeap *shard(unsigned i) const;

    NvmDevice *shardDevice(unsigned i) const;
    NvmDevice *manifestDevice() const { return manifestDev_.get(); }

    /** The committed epoch's ring. */
    const ShardRouter &router() const;

    /** True while a membership change is streaming keys. */
    bool migrating() const;
    /// @}

    /** @name Routing (read side: the committed epoch's ring) */
    /// @{
    unsigned shardIndexFor(const std::string &route_key) const;

    /** Ring shard for a name/route key (must be attached). */
    PjhHeap *shardFor(const std::string &route_key) const;

    /** Ring shard for an integer key (database pks). */
    PjhHeap *shardForKey(std::uint64_t key) const;

    /** @name Write-epoch routing
     * During a membership change these follow the NEXT ring, so new
     * allocations land on their post-change home and need no
     * migration; with no change in flight they equal the committed
     * ring. The runtime's pnew paths route through these. */
    /// @{
    unsigned shardIndexForWrite(const std::string &route_key) const;
    PjhHeap *shardForWrite(const std::string &route_key) const;
    PjhHeap *shardForKeyWrite(std::uint64_t key) const;
    /// @}

    /** Attached shard whose data heap owns @p obj, or nullptr. */
    PjhHeap *homeOf(Oop obj) const;
    /// @}

    /**
     * @name Elastic membership (online grow/shrink)
     *
     * Durable state machine, same checksummed-declare pattern as
     * creation:
     *
     *   declareMigration(target)  -- fence; the change now durably
     *                                exists and recovery rolls it
     *                                forward
     *   [format + markFormatted]  -- joining members, grow only
     *   markMigrated(s)           -- after source member s's remapped
     *                                roots are durably re-homed
     *   commit                    -- epoch += 1, shardCount = target;
     *                                the atomic membership switch
     *   [retire forwards, drop leavers, clearMigration]
     *
     * Migration streams each remapped root's object closure to its
     * new home shard, publishes the root there, leaves a
     * NameKind::kForward stub (value = dest member + 1) in the old
     * home's name table, then nulls the old binding — in that order,
     * so a reader that misses the old binding is guaranteed (by the
     * name table's release/acquire value discipline) to see the
     * forward and the new binding. A crash replays the member's
     * sweep idempotently: already-moved roots are skipped (their
     * destination binding is non-null). After the commit fence the
     * forwards are retired (value 0) and, on shrink, the evacuated
     * members are torn down.
     *
     * Caller contract: one membership change at a time (internally
     * serialized), every current member attached, and no concurrent
     * collect() on source members while the change streams closures.
     */
    /// @{
    /** Add @p added members and re-home ring-remapped keys. */
    void grow(unsigned added);

    /** Evacuate and remove the last @p removed members. */
    void shrink(unsigned removed);

    /** Per-member occupancy (live members only). */
    struct Occupancy
    {
        unsigned shard;
        std::size_t used;
        std::size_t capacity;
    };
    std::vector<Occupancy> occupancy() const;

    /**
     * Fabric-aware load balancer, now a thin policy layer on the
     * migration machinery: when any live member's data occupancy is
     * at or above @p high_water (fraction of capacity), grow by
     * @p add_shards so the ring spreads its keys. Returns true when
     * a grow ran.
     */
    bool balance(double high_water, unsigned add_shards = 1);
    /// @}

    /**
     * @name Fabric-routed roots (Table 1, sharded)
     *
     * setRoot publishes on the object's home shard, then nulls any
     * stale binding other shards still carry; racing setRoots of the
     * same name are serialized by a per-name stripe lock, so the
     * last writer wins (same guarantee as the single-heap upsert).
     *
     * Republication across shards is crash-atomic (PR 6): before the
     * new publication, setRoot records a durable intent {name, home
     * shard} in a DecisionLog region on the manifest device and
     * clears it after the stale-entry sweep. recover() replays
     * surviving intents: if the new home's binding durably landed,
     * the sweep is completed (roll forward); if not, the old
     * fully-swept binding is still current and stays (roll back) —
     * either way the fabric reads one complete publication, never a
     * mix. Two exceptions fall back to the pre-PR-6 contract (crash
     * between publication and sweep leaves the previous, still-valid
     * binding visible): single-shard fabrics skip intents (nothing
     * to sweep), and names longer than the intent payload capacity
     * (DecisionLog::kMaxPayload bytes).
     *
     * Root-op vs. GC contract (PR 8 retired the PR 5 limitation):
     *  - Against a shard in *concurrent* collection (see
     *    PjhHeap::setGcConcurrent) root operations proceed throughout
     *    the marking overlap — every fabric probe routes through the
     *    shard's guarded accessors, so reads and publishes are
     *    barrier-shaded and block only for the shard's brief
     *    safepoints (initial snapshot, remark+compact).
     *  - Against a shard in *STW* collection the old contract stands:
     *    root operations on that shard fall under its stop-the-world
     *    contract, exactly like any mutator access to a collecting
     *    heap. Ring-homed names (the key-routed pnew-then-publish
     *    pattern) only ever touch their own shard, so they proceed
     *    freely during other shards' collections either way.
     */
    /// @{
    void setRoot(const std::string &name, Oop obj);
    Oop getRoot(const std::string &name) const;
    bool hasRoot(const std::string &name) const;
    /// @}

    /** @name GC coordinator */
    /// @{
    /** Collect shard @p i only; other shards keep allocating. */
    void collectShard(unsigned i);

    /** Independent per-shard collections, fanned across the
     * fabric-level worker pool. */
    void collectAll();

    /** Concurrent collectAll() workers (ESPRESSO_FABRIC_GC_WORKERS;
     * default one per shard). */
    unsigned gcWorkers() const { return gcWorkers_; }
    void setGcWorkers(unsigned n);

    /** Per-shard parallel mark/compact knob, applied to every
     * member (current and future). 0 restores the per-heap default. */
    void setGcThreads(unsigned n);

    /** Per-shard concurrent-marking knob (see
     * PjhHeap::setGcConcurrent), applied to every member (current
     * and future): collectShard/collectAll then pause each shard
     * only for the snapshot and remark+compact safepoints instead of
     * the whole cycle. */
    void setGcConcurrent(bool on);
    /// @}

    /** @name Failure simulation (tests, crash sweeps) */
    /// @{
    /** Power-fail member @p i only: its volatile state drops, its
     * device reverts to the durable image; other members keep
     * serving. */
    void crashShard(unsigned i, CrashMode mode = CrashMode::kDiscardUnflushed,
                    std::uint64_t seed = 1);

    /** Re-attach a crashed member (per-shard recovery). */
    PjhHeap *reattachShard(unsigned i,
                           SafetyLevel safety = SafetyLevel::kUserGuaranteed);

    /** Power-fail the whole fabric (all shards + manifest). */
    void crashAll(CrashMode mode = CrashMode::kDiscardUnflushed,
                  std::uint64_t seed = 1);

    /** Migrate every device to a fresh mapping (forces the rebase
     * scan on the next recover()). Fabric must not be attached. */
    void migrate();

    /** Install a crash injector on the manifest device (applied at
     * create() if the device does not exist yet), so crash sweeps
     * can fire between a shard's format and the manifest commit. */
    void setManifestInjector(CrashInjector *injector);

    /** True when the manifest's durable declaration fence completed
     * (creation's atomic point; false means the fabric never
     * existed and recover() would refuse). */
    bool
    manifestDeclared() const
    {
        return manifest_.declared();
    }
    /// @}

  private:
    /** One epoch pair of rings, published atomically so traffic
     * threads read a consistent (committed, next, migrating) triple.
     * Old instances stay alive until fabric destruction — a reader
     * may still hold one. */
    struct FabricRouting
    {
        ShardRouter committed;
        ShardRouter next;
        bool migrating = false;
    };

    void wireShard(PjhHeap *heap);
    void unwireShard(PjhHeap *heap);
    void dropShardHeap(unsigned i);

    const FabricRouting *
    routingRef() const
    {
        return routing_.load(std::memory_order_acquire);
    }

    /** Publish a new routing epoch pair (membership contexts only). */
    void publishRouting(ShardRouter committed, ShardRouter next,
                        bool migrating);

    /** Publish member @p k's heap pointer for lock-free readers and
     * raise the slot high-water mark. */
    void publishMember(unsigned k, PjhHeap *heap);

    /** Validate + declare a change to @p target members, then drive
     * it to completion (caller holds membershipMu_). */
    void changeMembershipLocked(unsigned target);

    /** Drive a declared migration record to completion: bring
     * joiners up, stream each source member, commit, retire
     * forwards, tear down leavers. Idempotent — also the crash
     * roll-forward path recover() re-enters. */
    void completeMembershipChangeLocked();

    /** Stream member @p s's remapped roots to their new homes. */
    void migrateMember(unsigned s, const ShardRouter &old_ring,
                       const ShardRouter &new_ring, bool grow_dir);

    /** Move one root: clone its closure, publish on the new home,
     * leave a forward, null the old binding. */
    void migrateRoot(PjhHeap *src, const std::string &name,
                     unsigned dest_idx);

    /** Deep-copy @p obj's intra-shard closure from @p src to @p dst
     * (refs between closure members are remapped; refs out of the
     * source shard are carried verbatim). */
    Oop cloneClosure(PjhHeap *src, PjhHeap *dst, Oop obj) const;

    /** Retire (zero) every kForward stub on member @p s. */
    void retireForwards(unsigned s);

    /** Post-commit cleanup: retire forwards on the change's source
     * members, tear down evacuated members (shrink), durably clear
     * the migration record. Idempotent; also the crash roll-forward
     * path for a crash after the commit fence. */
    void finishMigrationCleanupLocked();

    /** Byte offset of the root-intent DecisionLog region on the
     * manifest device. */
    static std::size_t rootIntentsOff();

    /** Rebuild the intent-log view and roll surviving setRoot
     * intents forward/back (end of recover(), heaps attached). */
    void replayRootIntents();

    /** Format shard @p k on a fresh device sized for @p cfg. */
    void formatShard(unsigned k, const PjhConfig &cfg);

    KlassRegistry *registry_;
    VolatileHeap *volatileHeap_;
    NvmConfig nvmCfg_;

    std::unique_ptr<NvmDevice> manifestDev_;
    RingManifest manifest_;
    /** Durable setRoot republication intents, one slot per name
     * stripe (the stripe lock serializes its slot's writers). */
    DecisionLog rootIntents_;
    std::vector<std::unique_ptr<NvmDevice>> devices_;
    /** One slot per member; a crashed member's slot is null until
     * reattachShard(). Empty vector = fabric not attached. */
    std::vector<std::unique_ptr<PjhHeap>> heaps_;

    /** Lock-free mirror of heaps_ for traffic threads: grow/shrink
     * resize the owning vectors while allocators route, so hot paths
     * never touch the vectors themselves. */
    std::array<std::atomic<PjhHeap *>, RingManifestData::kMaxShards>
        live_{};
    /** Member-slot high-water mark (shardCount()). */
    std::atomic<unsigned> memberSlots_{0};

    /** Current epoch pair; history keeps old pairs alive for
     * readers that loaded them before a swap. */
    std::atomic<const FabricRouting *> routing_{nullptr};
    std::vector<std::unique_ptr<FabricRouting>> routingHistory_;

    /** Serializes grow/shrink (and their crash-resume) runs. */
    std::mutex membershipMu_;

    /** Fabric-level GC coordinator pool (distinct from each heap's
     * own mark/compact pool). */
    WorkerPool gcPool_;
    unsigned gcWorkers_ = 0;

    /** Fabric-wide per-shard GC thread override; 0 = heap default. */
    unsigned gcThreads_ = 0;

    /** Fabric-wide concurrent-marking override; -1 = heap default
     * (ESPRESSO_GC_CONCURRENT), else forced 0/1 on every member. */
    int gcConcurrent_ = -1;

    /** Pending manifest injector until create() makes the device. */
    CrashInjector *manifestInjector_ = nullptr;

    /** Serializes racing fabric setRoots of one name, so a publish
     * and its stale-entry sweep are atomic against each other (two
     * concurrent republications can otherwise null each other's
     * fresh binding). */
    static constexpr std::size_t kRootStripes = 16;
    mutable SpinLock rootLocks_[kRootStripes];
};

} // namespace espresso

#endif // ESPRESSO_PJH_HEAP_FABRIC_HH
