#include "pjh/heap_fabric.hh"

#include <atomic>
#include <cstring>
#include <exception>
#include <mutex>
#include <unordered_map>

#include "runtime/klass.hh"
#include "util/env.hh"
#include "util/logging.hh"

namespace espresso {

unsigned
HeapFabric::shardsFromEnv()
{
    return envUnsigned("ESPRESSO_SHARDS", 1);
}

HeapFabric::HeapFabric(KlassRegistry *registry,
                       VolatileHeap *volatile_heap, NvmConfig nvm_cfg)
    : registry_(registry), volatileHeap_(volatile_heap),
      nvmCfg_(nvm_cfg)
{}

HeapFabric::~HeapFabric()
{
    for (auto &h : heaps_)
        if (h)
            unwireShard(h.get());
}

void
HeapFabric::wireShard(PjhHeap *heap)
{
    if (gcThreads_ != 0)
        heap->setGcThreads(gcThreads_);
    if (gcConcurrent_ >= 0)
        heap->setGcConcurrent(gcConcurrent_ != 0);
    if (volatileHeap_) {
        volatileHeap_->addExternalSpace(heap);
        VolatileHeap *vh = volatileHeap_;
        heap->setGcTrigger([heap, vh]() { heap->collect(vh); });
    } else {
        heap->setGcTrigger([heap]() { heap->collect(nullptr); });
    }
}

void
HeapFabric::unwireShard(PjhHeap *heap)
{
    if (volatileHeap_)
        volatileHeap_->removeExternalSpace(heap);
}

void
HeapFabric::formatShard(unsigned k, const PjhConfig &cfg)
{
    if (devices_.size() <= k)
        devices_.resize(k + 1);
    if (!devices_[k]) {
        PjhMetadata scratch{};
        std::size_t total = computeLayout(cfg, scratch);
        devices_[k] = std::make_unique<NvmDevice>(total, nvmCfg_);
    } else {
        // Re-formatting a member whose create crashed part-way
        // (recovery roll-forward): wipe the device first — the
        // partial format may have left durable name-table or klass
        // state behind (PjhHeap::create only rewrites the metadata
        // area), and under random-eviction crashes even torn lines
        // can read as valid.
        std::memset(devices_[k]->base(), 0, devices_[k]->size());
        devices_[k]->shutdownClean();
    }
    auto heap = PjhHeap::create(devices_[k].get(), cfg, registry_);
    wireShard(heap.get());
    if (heaps_.size() <= k)
        heaps_.resize(k + 1);
    heaps_[k] = std::move(heap);
    publishMember(k, heaps_[k].get());
}

void
HeapFabric::publishMember(unsigned k, PjhHeap *heap)
{
    live_[k].store(heap, std::memory_order_release);
    unsigned cur = memberSlots_.load(std::memory_order_relaxed);
    while (cur < k + 1 &&
           !memberSlots_.compare_exchange_weak(
               cur, k + 1, std::memory_order_release,
               std::memory_order_relaxed)) {
    }
}

void
HeapFabric::publishRouting(ShardRouter committed, ShardRouter next,
                           bool migrating)
{
    auto rt = std::make_unique<FabricRouting>();
    rt->committed = std::move(committed);
    rt->next = std::move(next);
    rt->migrating = migrating;
    routing_.store(rt.get(), std::memory_order_release);
    routingHistory_.push_back(std::move(rt));
}

void
HeapFabric::create(const FabricConfig &cfg)
{
    if (exists())
        fatal("HeapFabric::create: fabric already exists");
    unsigned shards = cfg.shards ? cfg.shards : shardsFromEnv();
    unsigned vnodes = cfg.vnodes
                          ? cfg.vnodes
                          : envUnsigned("ESPRESSO_SHARD_VNODES",
                                        ShardRouter::kDefaultVnodes);
    if (shards > RingManifestData::kMaxShards)
        fatal("HeapFabric::create: shard count exceeds manifest "
              "capacity");

    manifestDev_ = std::make_unique<NvmDevice>(
        rootIntentsOff() + DecisionLog::bytesFor(kRootStripes),
        nvmCfg_);
    if (manifestInjector_)
        manifestDev_->setInjector(manifestInjector_);
    manifest_ = RingManifest(manifestDev_.get());
    // The declaration fence is the atomic creation point; everything
    // after it is rolled forward by recover() if power fails.
    manifest_.declare(shards, vnodes, cfg.shard);
    for (unsigned k = 0; k < shards; ++k) {
        formatShard(k, cfg.shard);
        manifest_.markFormatted(k);
    }
    manifest_.commit(shards);
    // The intent region formats after the membership commit: a crash
    // anywhere before this point leaves an invalid intent header,
    // which replayRootIntents()'s recover() reads as an empty log
    // and re-formats.
    rootIntents_ =
        DecisionLog(manifestDev_.get(), rootIntentsOff(), kRootStripes);
    rootIntents_.format();
    ShardRouter ring(shards, vnodes);
    publishRouting(ring, ring, false);
}

void
HeapFabric::recover(SafetyLevel safety)
{
    if (!exists())
        fatal("HeapFabric::recover: fabric was never created");
    // A crashed create may leave partially attached members behind;
    // recovery always starts from volatile zero.
    for (auto &h : heaps_)
        if (h)
            unwireShard(h.get());
    heaps_.clear();
    for (auto &slot : live_)
        slot.store(nullptr, std::memory_order_relaxed);
    memberSlots_.store(0, std::memory_order_release);

    manifest_ = RingManifest(manifestDev_.get());
    if (!manifest_.declared())
        fatal("HeapFabric::recover: manifest was never durably "
              "declared");
    const RingManifestData &d = manifest_.data();
    // shardCount == 0 means the original create never committed; its
    // declared target is the membership to roll forward to. A
    // non-zero count is the committed membership (possibly changed
    // by grow/shrink since creation) and must NOT be reset to the
    // creation target.
    unsigned creating =
        d.shardCount == 0 ? static_cast<unsigned>(d.targetShardCount)
                          : 0;
    unsigned n = creating ? creating
                          : static_cast<unsigned>(d.shardCount);
    bool migr = manifest_.migrationDeclared();
    // A declared-but-uncommitted migration rolls forward below; its
    // joining members (grow) attach or format here too.
    unsigned bound =
        migr ? std::max(n, static_cast<unsigned>(d.migrTarget)) : n;
    PjhConfig shard_cfg = manifest_.shardConfig();

    if (devices_.size() < bound)
        devices_.resize(bound);
    heaps_.resize(bound);
    for (unsigned k = 0; k < bound; ++k) {
        if (d.memberState[k] == RingManifestData::kMemberFormatted &&
            devices_[k]) {
            // Committed or rolled-forward member: per-shard recovery
            // (tail repair, interrupted compaction, rebase) happens
            // inside attach.
            auto heap = PjhHeap::attach(devices_[k].get(), registry_,
                                        safety);
            wireShard(heap.get());
            heaps_[k] = std::move(heap);
            publishMember(k, heaps_[k].get());
        } else {
            // The create (or grow) crashed before this member's
            // format was durably flagged: its device holds garbage
            // (or was never made). Re-format from the manifest's
            // sizing.
            formatShard(k, shard_cfg);
            manifest_.markFormatted(k);
        }
    }
    memberSlots_.store(bound, std::memory_order_release);
    if (creating)
        manifest_.commit(creating);
    n = static_cast<unsigned>(manifest_.data().shardCount);
    ShardRouter ring(n, static_cast<unsigned>(d.vnodes));
    publishRouting(ring, ring, false);
    replayRootIntents();

    if (migr) {
        // The declare fence passed but the commit fence did not:
        // roll the membership change forward (members whose durable
        // migrated flag is set are skipped; per-root moves are
        // idempotent).
        std::lock_guard<std::mutex> g(membershipMu_);
        completeMembershipChangeLocked();
    } else if (manifest_.migrationStale()) {
        // The commit fence passed but cleanup did not: retire the
        // forwards and tear down evacuated members.
        std::lock_guard<std::mutex> g(membershipMu_);
        finishMigrationCleanupLocked();
    }
}

std::size_t
HeapFabric::rootIntentsOff()
{
    return alignUp(RingManifest::persistedBytes(), kCacheLineSize);
}

void
HeapFabric::replayRootIntents()
{
    rootIntents_ =
        DecisionLog(manifestDev_.get(), rootIntentsOff(), kRootStripes);
    for (const DecisionLog::Record &r : rootIntents_.recover()) {
        if (r.kind != DecisionLog::kKindRootIntent) {
            rootIntents_.clear(r.slot);
            continue;
        }
        const std::string &name = r.payload;
        bool null_publish = r.txnId != 0;
        PjhHeap *target =
            r.argA < heaps_.size() ? heaps_[r.argA].get() : nullptr;
        if (null_publish) {
            // Unpublish replay is idempotent: null the binding
            // everywhere, whether or not the original got that far.
            for (const auto &h : heaps_)
                if (h && !h->getRoot(name).isNull())
                    h->setRoot(name, Oop());
        } else if (target && !target->getRoot(name).isNull()) {
            // The new home's binding durably landed: complete the
            // stale-entry sweep (roll forward).
            for (const auto &h : heaps_) {
                if (!h || h.get() == target)
                    continue;
                if (!h->getRoot(name).isNull())
                    h->setRoot(name, Oop());
            }
        }
        // else: the publication never landed; the old fully-swept
        // binding is still current (roll back = do nothing).
        rootIntents_.clear(r.slot);
    }
}

void
HeapFabric::ensureAttached(SafetyLevel safety)
{
    if (!attached()) {
        recover(safety);
        return;
    }
    for (unsigned i = 0; i < shardCount(); ++i)
        if (devices_[i] && !heaps_[i])
            reattachShard(i, safety);
}

void
HeapFabric::detach()
{
    if (!attached())
        fatal("HeapFabric::detach: fabric is not attached");
    for (auto &h : heaps_) {
        if (!h)
            continue;
        h->detach();
        unwireShard(h.get());
    }
    heaps_.clear();
    for (auto &slot : live_)
        slot.store(nullptr, std::memory_order_relaxed);
    manifestDev_->shutdownClean();
}

std::uint64_t
HeapFabric::epoch() const
{
    return manifest_.declared() ? manifest_.data().epoch : 0;
}

PjhHeap *
HeapFabric::shard(unsigned i) const
{
    return i < RingManifestData::kMaxShards
               ? live_[i].load(std::memory_order_acquire)
               : nullptr;
}

NvmDevice *
HeapFabric::shardDevice(unsigned i) const
{
    return i < devices_.size() ? devices_[i].get() : nullptr;
}

const ShardRouter &
HeapFabric::router() const
{
    static const ShardRouter kEmpty;
    const FabricRouting *rt = routingRef();
    return rt ? rt->committed : kEmpty;
}

bool
HeapFabric::migrating() const
{
    const FabricRouting *rt = routingRef();
    return rt && rt->migrating;
}

unsigned
HeapFabric::shardIndexFor(const std::string &route_key) const
{
    return router().shardForName(route_key);
}

unsigned
HeapFabric::shardIndexForWrite(const std::string &route_key) const
{
    const FabricRouting *rt = routingRef();
    if (!rt)
        fatal("HeapFabric: routing before create/recover");
    return rt->next.shardForName(route_key);
}

PjhHeap *
HeapFabric::shardFor(const std::string &route_key) const
{
    PjhHeap *h = shard(router().shardForName(route_key));
    if (!h)
        fatal("HeapFabric: route '" + route_key +
              "' targets a detached shard");
    return h;
}

PjhHeap *
HeapFabric::shardForKey(std::uint64_t key) const
{
    PjhHeap *h = shard(router().shardForKey(key));
    if (!h)
        fatal("HeapFabric: key routes to a detached shard");
    return h;
}

PjhHeap *
HeapFabric::shardForWrite(const std::string &route_key) const
{
    PjhHeap *h = shard(shardIndexForWrite(route_key));
    if (!h)
        fatal("HeapFabric: route '" + route_key +
              "' targets a detached shard");
    return h;
}

PjhHeap *
HeapFabric::shardForKeyWrite(std::uint64_t key) const
{
    const FabricRouting *rt = routingRef();
    if (!rt)
        fatal("HeapFabric: routing before create/recover");
    PjhHeap *h = shard(rt->next.shardForKey(key));
    if (!h)
        fatal("HeapFabric: key routes to a detached shard");
    return h;
}

PjhHeap *
HeapFabric::homeOf(Oop obj) const
{
    if (obj.isNull())
        return nullptr;
    unsigned n = shardCount();
    for (unsigned i = 0; i < n; ++i) {
        PjhHeap *h = shard(i);
        if (h && h->containsData(obj.addr()))
            return h;
    }
    return nullptr;
}

void
HeapFabric::setRoot(const std::string &name, Oop obj)
{
    PjhHeap *home = homeOf(obj);
    if (obj && !home)
        fatal("HeapFabric::setRoot: object is not in any shard");
    // The ring shard only matters for a null publish; a non-null
    // object goes to its live home shard even while the name's ring
    // shard is crashed (failures must stay shard-local). A null
    // publish (unpublish) with the ring member down degrades to the
    // stale-entry sweep alone: every live binding is nulled, and the
    // crashed member's own entry — if it is the home — falls under
    // the membership quiescence contract until reattach.
    // A null publish lands on the WRITE ring's shard: during a
    // membership change the name's post-change home is where future
    // lookups probe first.
    const FabricRouting *rt = routingRef();
    if (!rt)
        fatal("HeapFabric::setRoot: fabric is not attached");
    PjhHeap *target =
        home ? home : shard(rt->next.shardForName(name));
    // One name, one writer at a time: without this, two racing
    // republications could each null the other's fresh binding.
    // The same stripe also serializes against the migration sweep
    // moving this name, so a publish and a move never interleave.
    std::size_t stripe = ShardRouter::hashName(name) % kRootStripes;
    SpinGuard g(rootLocks_[stripe]);
    // Durable republication intent (slot = stripe: the stripe lock
    // makes the slot exclusively ours). A crash anywhere between
    // here and the clear below is rolled forward or back by
    // replayRootIntents(), so the fabric recovers to exactly one
    // complete publication. Single-shard fabrics have no sweep to
    // tear, and over-long names fall back to the legacy contract.
    unsigned n = shardCount();
    bool intent = n > 1 && rootIntents_.valid() &&
                  DecisionLog::payloadFits(name.size());
    if (intent) {
        unsigned target_idx = ~0u;
        for (unsigned i = 0; i < n; ++i)
            if (shard(i) == target)
                target_idx = i;
        rootIntents_.publish(static_cast<unsigned>(stripe),
                             DecisionLog::kKindRootIntent,
                             /*txn_id=*/obj.isNull() ? 1 : 0,
                             /*arg_a=*/target_idx, name.data(),
                             name.size());
    }
    if (target)
        target->setRoot(name, obj);
    // Republication may move a name's home shard; null out stale
    // entries elsewhere so lookups do not resurrect the old binding
    // (the name table has no deletion, but a null value reads as a
    // miss at the fabric level). Forwarding stubs left by a
    // migration are retired the same way: the fresh publication
    // supersedes whatever move left them behind.
    for (unsigned i = 0; i < n; ++i) {
        PjhHeap *h = shard(i);
        if (!h)
            continue;
        if (h != target && !h->getRoot(name).isNull())
            h->setRoot(name, Oop());
        NameEntry *f = h->names().find(name, NameKind::kForward);
        if (f && NameTable::readValue(f) != 0)
            h->names().updateValue(f, 0);
    }
    if (intent)
        rootIntents_.clear(static_cast<unsigned>(stripe));
}

Oop
HeapFabric::getRoot(const std::string &name) const
{
    const FabricRouting *rt = routingRef();
    if (!rt)
        return Oop();
    // Probe one member: its kRoot binding first; on a miss, its
    // kForward stub (a migration moved the name away mid-change).
    // The move publishes dest-binding, then forward, then nulls the
    // source binding — all release-ordered — so a reader that sees
    // the nulled source is guaranteed to see the forward and the
    // destination binding.
    auto probe = [&](unsigned idx, bool follow) -> Oop {
        PjhHeap *h = shard(idx);
        if (!h)
            return Oop();
        // kRoot reads go through the shard's guarded accessor: they
        // wait out the shard's GC safepoints and load-shade the
        // result under a concurrent mark (the PR 8 root-op
        // contract). kForward stubs hold member indices, not heap
        // refs, so the raw read stays.
        Oop o = h->getRoot(name);
        if (!o.isNull())
            return o;
        if (follow) {
            NameEntry *f = h->names().find(name, NameKind::kForward);
            if (f) {
                Word fv = NameTable::readValue(f);
                if (fv) {
                    PjhHeap *d =
                        shard(static_cast<unsigned>(fv) - 1);
                    if (d) {
                        Oop o2 = d->getRoot(name);
                        if (!o2.isNull())
                            return o2;
                    }
                }
            }
        }
        return Oop();
    };
    // Write ring first (post-change home, also the committed ring
    // when no change is in flight)...
    unsigned w = rt->next.shardForName(name);
    Oop o = probe(w, false);
    if (!o.isNull())
        return o;
    // ...then the committed ring's shard, following its forward.
    if (rt->migrating) {
        unsigned c = rt->committed.shardForName(name);
        if (c != w) {
            o = probe(c, true);
            if (!o.isNull())
                return o;
        }
    }
    // Fallback scan for non-ring-homed roots (objects published on
    // their home shard), forwards followed.
    unsigned n = shardCount();
    for (unsigned i = 0; i < n; ++i) {
        if (i == w)
            continue;
        o = probe(i, true);
        if (!o.isNull())
            return o;
    }
    return Oop();
}

bool
HeapFabric::hasRoot(const std::string &name) const
{
    if (!getRoot(name).isNull())
        return true;
    const FabricRouting *rt = routingRef();
    if (!rt)
        return false;
    PjhHeap *ring = shard(rt->next.shardForName(name));
    return ring && ring->hasRoot(name);
}

void
HeapFabric::collectShard(unsigned i)
{
    PjhHeap *h = shard(i);
    if (!h)
        fatal("HeapFabric::collectShard: shard is not attached");
    h->collect(volatileHeap_);
}

void
HeapFabric::collectAll()
{
    std::vector<unsigned> live;
    for (unsigned i = 0; i < shardCount(); ++i)
        if (shard(i))
            live.push_back(i);
    if (live.empty())
        return;

    unsigned workers = gcWorkers_
                           ? gcWorkers_
                           : envUnsigned("ESPRESSO_FABRIC_GC_WORKERS",
                                         static_cast<unsigned>(
                                             live.size()));
    workers = std::min<unsigned>(
        std::max(workers, 1u), static_cast<unsigned>(live.size()));
    if (workers <= 1) {
        for (unsigned i : live)
            collectShard(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::mutex err_mu;
    std::exception_ptr err;
    gcPool_.run(workers, [&](unsigned) {
        try {
            for (;;) {
                std::size_t n =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (n >= live.size())
                    return;
                collectShard(live[n]);
            }
        } catch (...) {
            std::lock_guard<std::mutex> g(err_mu);
            if (!err)
                err = std::current_exception();
        }
    });
    if (err)
        std::rethrow_exception(err);
}

void
HeapFabric::setGcWorkers(unsigned n)
{
    gcWorkers_ = n;
}

void
HeapFabric::setGcThreads(unsigned n)
{
    gcThreads_ = n;
    for (auto &h : heaps_)
        if (h)
            h->setGcThreads(n);
}

void
HeapFabric::setGcConcurrent(bool on)
{
    gcConcurrent_ = on ? 1 : 0;
    for (auto &h : heaps_)
        if (h)
            h->setGcConcurrent(on);
}

void
HeapFabric::dropShardHeap(unsigned i)
{
    if (i < RingManifestData::kMaxShards)
        live_[i].store(nullptr, std::memory_order_release);
    if (i < heaps_.size() && heaps_[i]) {
        unwireShard(heaps_[i].get());
        heaps_[i].reset();
    }
}

void
HeapFabric::crashShard(unsigned i, CrashMode mode, std::uint64_t seed)
{
    if (i >= devices_.size() || !devices_[i])
        fatal("HeapFabric::crashShard: no such shard");
    dropShardHeap(i);
    devices_[i]->crash(mode, seed);
}

PjhHeap *
HeapFabric::reattachShard(unsigned i, SafetyLevel safety)
{
    if (!attached())
        fatal("HeapFabric::reattachShard: fabric is not attached");
    if (i >= devices_.size() || !devices_[i])
        fatal("HeapFabric::reattachShard: no such shard");
    if (heaps_[i])
        return heaps_[i].get();
    auto heap = PjhHeap::attach(devices_[i].get(), registry_, safety);
    wireShard(heap.get());
    heaps_[i] = std::move(heap);
    publishMember(i, heaps_[i].get());
    return heaps_[i].get();
}

void
HeapFabric::crashAll(CrashMode mode, std::uint64_t seed)
{
    for (unsigned i = 0; i < heaps_.size(); ++i)
        dropShardHeap(i);
    heaps_.clear();
    for (std::size_t i = 0; i < devices_.size(); ++i)
        if (devices_[i])
            devices_[i]->crash(mode, seed + i);
    if (manifestDev_)
        manifestDev_->crash(mode, seed + 0x4d414e49ull);
}

void
HeapFabric::setManifestInjector(CrashInjector *injector)
{
    manifestInjector_ = injector;
    if (manifestDev_)
        manifestDev_->setInjector(injector);
}

void
HeapFabric::migrate()
{
    if (attached())
        fatal("HeapFabric::migrate: detach or crash the fabric first");
    auto remap = [this](std::unique_ptr<NvmDevice> &dev) {
        if (!dev)
            return;
        auto fresh = std::make_unique<NvmDevice>(dev->size(), nvmCfg_);
        std::memcpy(fresh->base(), dev->base(), dev->size());
        fresh->shutdownClean();
        dev = std::move(fresh);
    };
    for (auto &dev : devices_)
        remap(dev);
    remap(manifestDev_);
    manifest_ = RingManifest(manifestDev_.get());
}

// ---------------------------------------------------------------------
// Elastic membership: online grow/shrink with key migration
// ---------------------------------------------------------------------

void
HeapFabric::grow(unsigned added)
{
    if (added == 0)
        return;
    std::lock_guard<std::mutex> g(membershipMu_);
    if (!attached())
        fatal("HeapFabric::grow: fabric is not attached");
    changeMembershipLocked(
        static_cast<unsigned>(manifest_.data().shardCount) + added);
}

void
HeapFabric::shrink(unsigned removed)
{
    if (removed == 0)
        return;
    std::lock_guard<std::mutex> g(membershipMu_);
    if (!attached())
        fatal("HeapFabric::shrink: fabric is not attached");
    unsigned from = static_cast<unsigned>(manifest_.data().shardCount);
    if (removed >= from)
        fatal("HeapFabric::shrink: cannot remove every member");
    changeMembershipLocked(from - removed);
}

void
HeapFabric::changeMembershipLocked(unsigned target)
{
    const RingManifestData &d = manifest_.data();
    unsigned from = static_cast<unsigned>(d.shardCount);
    if (from == 0)
        fatal("HeapFabric: membership change before creation "
              "committed");
    if (target == 0 || target > RingManifestData::kMaxShards)
        fatal("HeapFabric: membership target out of range");
    if (target == from)
        return;
    if (manifest_.migrationDeclared())
        fatal("HeapFabric: a membership change is already declared");
    // Every source member must be live: its roots are about to be
    // streamed (a crashed member's keys cannot move).
    unsigned src_begin = target > from ? 0 : target;
    for (unsigned s = src_begin; s < from; ++s)
        if (!shard(s))
            fatal("HeapFabric: membership change with a crashed "
                  "member; reattach it first");
    // The declaration fence: past this point a crash rolls the
    // change forward (recover() re-enters the completion below).
    manifest_.declareMigration(target);
    completeMembershipChangeLocked();
}

void
HeapFabric::completeMembershipChangeLocked()
{
    const RingManifestData &d = manifest_.data();
    unsigned from = static_cast<unsigned>(d.migrFrom);
    unsigned target = static_cast<unsigned>(d.migrTarget);
    bool grow_dir = target > from;
    PjhConfig shard_cfg = manifest_.shardConfig();

    // 1. Bring joining members up (grow). On crash-resume a joiner
    // whose format was durably flagged re-attached in recover();
    // the rest (re-)format here.
    for (unsigned k = from; k < target; ++k) {
        if (shard(k))
            continue;
        formatShard(k, shard_cfg);
        manifest_.markFormatted(k);
    }

    // 2. Route by the epoch pair: writes land on the next ring,
    // reads probe next, then committed + forwards.
    ShardRouter old_ring(from, static_cast<unsigned>(d.vnodes));
    ShardRouter new_ring(target, static_cast<unsigned>(d.vnodes));
    publishRouting(old_ring, new_ring, true);

    // 3. Stream each source member's remapped roots to their new
    // homes; the durable migrated flag makes a crashed change resume
    // where it left off.
    unsigned src_begin = grow_dir ? 0 : target;
    for (unsigned s = src_begin; s < from; ++s) {
        if (manifest_.memberMigrated(s))
            continue;
        migrateMember(s, old_ring, new_ring, grow_dir);
        manifest_.markMigrated(s);
    }

    // 4. The commit fence: the new membership (and epoch) is
    // durable; old-epoch state is now garbage to clean up.
    manifest_.commitMembership();
    publishRouting(new_ring, new_ring, false);

    // 5. Post-commit cleanup (also recover()'s stale-record path).
    finishMigrationCleanupLocked();
}

void
HeapFabric::finishMigrationCleanupLocked()
{
    const RingManifestData &d = manifest_.data();
    unsigned from = static_cast<unsigned>(d.migrFrom);
    unsigned target = static_cast<unsigned>(d.migrTarget);
    bool grow_dir = target > from;
    if (grow_dir) {
        // The commit fence retired the old epoch; the forwards are
        // now dead weight in the source name tables.
        for (unsigned s = 0; s < from; ++s)
            retireForwards(s);
    } else {
        // Tear evacuated members down: volatile first, then their
        // durable formatted flags (a crash between re-runs this
        // cleanup from the stale record).
        for (unsigned k = target; k < from; ++k) {
            dropShardHeap(k);
            if (k < devices_.size())
                devices_[k].reset();
            manifest_.clearMember(k);
        }
        memberSlots_.store(target, std::memory_order_release);
    }
    manifest_.clearMigration();
}

void
HeapFabric::retireForwards(unsigned s)
{
    PjhHeap *h = shard(s);
    if (!h)
        return;
    std::vector<std::string> names;
    h->names().forEach([&](NameEntry &e) {
        if (e.kind == static_cast<Word>(NameKind::kForward) &&
            NameTable::readValue(&e) != 0)
            names.emplace_back(e.name);
    });
    for (const std::string &name : names) {
        std::size_t stripe =
            ShardRouter::hashName(name) % kRootStripes;
        SpinGuard g(rootLocks_[stripe]);
        NameEntry *f = h->names().find(name, NameKind::kForward);
        if (f && NameTable::readValue(f) != 0)
            h->names().updateValue(f, 0);
    }
}

void
HeapFabric::migrateMember(unsigned s, const ShardRouter &old_ring,
                          const ShardRouter &new_ring, bool grow_dir)
{
    PjhHeap *src = shard(s);
    if (!src)
        fatal("HeapFabric: migrating a crashed member");
    // Snapshot the candidate names first (forEach holds no locks);
    // each move re-checks its entry under the name's stripe lock, so
    // roots republished concurrently are handled by whichever of the
    // two (move, setRoot) runs second.
    std::vector<std::pair<std::string, unsigned>> moves;
    src->names().forEach([&](NameEntry &e) {
        if (e.kind != static_cast<Word>(NameKind::kRoot))
            return;
        if (NameTable::readValue(&e) == 0)
            return;
        std::string name(e.name);
        unsigned dest = new_ring.shardForName(name);
        if (dest == s)
            return;
        // Grow moves only this member's ring-remapped names; roots
        // parked here because their object lives here (homeOf
        // publication) stay — the object is not remapped by the
        // ring. Shrink evacuates everything.
        if (grow_dir && old_ring.shardForName(name) != s)
            return;
        moves.emplace_back(std::move(name), dest);
    });
    for (const auto &mv : moves)
        migrateRoot(src, mv.first, mv.second);
}

void
HeapFabric::migrateRoot(PjhHeap *src, const std::string &name,
                        unsigned dest_idx)
{
    PjhHeap *dst = shard(dest_idx);
    if (!dst)
        fatal("HeapFabric: migration destination is not live");
    // Same stripe as setRoot: a move and a republication of one name
    // never interleave.
    std::size_t stripe = ShardRouter::hashName(name) % kRootStripes;
    SpinGuard g(rootLocks_[stripe]);
    NameEntry *se = src->names().find(name, NameKind::kRoot);
    if (!se)
        return;
    Word val = NameTable::readValue(se);
    if (val == 0)
        return; // republished away since the scan
    Oop obj(val);
    if (!src->containsData(obj.addr()))
        return; // foreign-homed value; not ours to move
    // Crash-resume idempotency: a previous attempt may have durably
    // published the destination binding already — never clone twice
    // (the dest copy is the one readers may have seen).
    Oop copy = dst->getRoot(name);
    if (copy.isNull()) {
        copy = cloneClosure(src, dst, obj);
        dst->setRoot(name, copy);
    }
    // Publication order is the read path's correctness argument:
    // dest binding (above), then the forward, then null the source
    // binding — each a release-publish — so a reader that misses
    // the source binding sees the forward and the dest binding.
    src->names().upsert(name, NameKind::kForward, dest_idx + 1);
    src->setRoot(name, Oop());
}

Oop
HeapFabric::cloneClosure(PjhHeap *src, PjhHeap *dst, Oop obj) const
{
    // Pass 1: discover the intra-shard closure and allocate shells
    // on the destination. References out of the source shard (other
    // members' objects, pinned by their own name tables) carry over
    // verbatim.
    std::unordered_map<Addr, Oop> moved;
    std::vector<Oop> order;
    std::vector<Oop> work{obj};
    while (!work.empty()) {
        Oop o = work.back();
        work.pop_back();
        if (moved.count(o.addr()))
            continue;
        const Klass *k = o.klass();
        Oop copy = k->isArray() ? dst->allocArray(k, o.arrayLength())
                                : dst->allocInstance(k);
        moved.emplace(o.addr(), copy);
        order.push_back(o);
        o.forEachRefSlot([&](Addr slot) {
            Word ref = loadWord(slot);
            if (ref && src->containsData(ref))
                work.push_back(Oop(ref));
        });
    }
    // Pass 2: copy bodies, remap intra-closure references, persist.
    for (Oop o : order) {
        Oop copy = moved[o.addr()];
        const Klass *k = o.klass();
        std::size_t hdr = k->isArray()
                              ? ObjectLayout::kArrayHeaderSize
                              : ObjectLayout::kHeaderSize;
        std::size_t sz = o.sizeInBytes();
        if (sz > hdr)
            std::memcpy(
                reinterpret_cast<void *>(copy.addr() + hdr),
                reinterpret_cast<const void *>(o.addr() + hdr),
                sz - hdr);
        copy.forEachRefSlot([&](Addr slot) {
            Word ref = loadWord(slot);
            auto it = moved.find(ref);
            if (it != moved.end())
                storeWord(slot, it->second.addr());
        });
        dst->flushObject(copy);
    }
    return moved[obj.addr()];
}

std::vector<HeapFabric::Occupancy>
HeapFabric::occupancy() const
{
    std::vector<Occupancy> out;
    unsigned n = shardCount();
    for (unsigned i = 0; i < n; ++i) {
        PjhHeap *h = shard(i);
        if (h)
            out.push_back({i, h->dataUsed(), h->dataCapacity()});
    }
    return out;
}

bool
HeapFabric::balance(double high_water, unsigned add_shards)
{
    if (add_shards == 0)
        return false;
    bool pressed = false;
    for (const Occupancy &o : occupancy()) {
        if (o.capacity == 0)
            continue;
        double frac = static_cast<double>(o.used) /
                      static_cast<double>(o.capacity);
        if (frac >= high_water)
            pressed = true;
    }
    if (!pressed)
        return false;
    unsigned from = static_cast<unsigned>(manifest_.data().shardCount);
    if (from + add_shards > RingManifestData::kMaxShards)
        return false;
    grow(add_shards);
    return true;
}

} // namespace espresso
