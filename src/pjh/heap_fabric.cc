#include "pjh/heap_fabric.hh"

#include <atomic>
#include <cstring>
#include <exception>
#include <mutex>

#include "util/env.hh"
#include "util/logging.hh"

namespace espresso {

unsigned
HeapFabric::shardsFromEnv()
{
    return envUnsigned("ESPRESSO_SHARDS", 1);
}

HeapFabric::HeapFabric(KlassRegistry *registry,
                       VolatileHeap *volatile_heap, NvmConfig nvm_cfg)
    : registry_(registry), volatileHeap_(volatile_heap),
      nvmCfg_(nvm_cfg)
{}

HeapFabric::~HeapFabric()
{
    for (auto &h : heaps_)
        if (h)
            unwireShard(h.get());
}

void
HeapFabric::wireShard(PjhHeap *heap)
{
    if (gcThreads_ != 0)
        heap->setGcThreads(gcThreads_);
    if (volatileHeap_) {
        volatileHeap_->addExternalSpace(heap);
        VolatileHeap *vh = volatileHeap_;
        heap->setGcTrigger([heap, vh]() { heap->collect(vh); });
    } else {
        heap->setGcTrigger([heap]() { heap->collect(nullptr); });
    }
}

void
HeapFabric::unwireShard(PjhHeap *heap)
{
    if (volatileHeap_)
        volatileHeap_->removeExternalSpace(heap);
}

void
HeapFabric::formatShard(unsigned k, const PjhConfig &cfg)
{
    if (devices_.size() <= k)
        devices_.resize(k + 1);
    if (!devices_[k]) {
        PjhMetadata scratch{};
        std::size_t total = computeLayout(cfg, scratch);
        devices_[k] = std::make_unique<NvmDevice>(total, nvmCfg_);
    } else {
        // Re-formatting a member whose create crashed part-way
        // (recovery roll-forward): wipe the device first — the
        // partial format may have left durable name-table or klass
        // state behind (PjhHeap::create only rewrites the metadata
        // area), and under random-eviction crashes even torn lines
        // can read as valid.
        std::memset(devices_[k]->base(), 0, devices_[k]->size());
        devices_[k]->shutdownClean();
    }
    auto heap = PjhHeap::create(devices_[k].get(), cfg, registry_);
    wireShard(heap.get());
    if (heaps_.size() <= k)
        heaps_.resize(k + 1);
    heaps_[k] = std::move(heap);
}

void
HeapFabric::create(const FabricConfig &cfg)
{
    if (exists())
        fatal("HeapFabric::create: fabric already exists");
    unsigned shards = cfg.shards ? cfg.shards : shardsFromEnv();
    unsigned vnodes = cfg.vnodes
                          ? cfg.vnodes
                          : envUnsigned("ESPRESSO_SHARD_VNODES",
                                        ShardRouter::kDefaultVnodes);
    if (shards > RingManifestData::kMaxShards)
        fatal("HeapFabric::create: shard count exceeds manifest "
              "capacity");

    manifestDev_ = std::make_unique<NvmDevice>(
        rootIntentsOff() + DecisionLog::bytesFor(kRootStripes),
        nvmCfg_);
    if (manifestInjector_)
        manifestDev_->setInjector(manifestInjector_);
    manifest_ = RingManifest(manifestDev_.get());
    // The declaration fence is the atomic creation point; everything
    // after it is rolled forward by recover() if power fails.
    manifest_.declare(shards, vnodes, cfg.shard);
    for (unsigned k = 0; k < shards; ++k) {
        formatShard(k, cfg.shard);
        manifest_.markFormatted(k);
    }
    manifest_.commit(shards);
    // The intent region formats after the membership commit: a crash
    // anywhere before this point leaves an invalid intent header,
    // which replayRootIntents()'s recover() reads as an empty log
    // and re-formats.
    rootIntents_ =
        DecisionLog(manifestDev_.get(), rootIntentsOff(), kRootStripes);
    rootIntents_.format();
    router_ = ShardRouter(shards, vnodes);
}

void
HeapFabric::recover(SafetyLevel safety)
{
    if (!exists())
        fatal("HeapFabric::recover: fabric was never created");
    // A crashed create may leave partially attached members behind;
    // recovery always starts from volatile zero.
    for (auto &h : heaps_)
        if (h)
            unwireShard(h.get());
    heaps_.clear();

    manifest_ = RingManifest(manifestDev_.get());
    if (!manifest_.declared())
        fatal("HeapFabric::recover: manifest was never durably "
              "declared");
    const RingManifestData &d = manifest_.data();
    unsigned target = static_cast<unsigned>(d.targetShardCount);
    PjhConfig shard_cfg = manifest_.shardConfig();

    devices_.resize(target);
    heaps_.resize(target);
    for (unsigned k = 0; k < target; ++k) {
        if (d.memberState[k] == RingManifestData::kMemberFormatted &&
            devices_[k]) {
            // Committed or rolled-forward member: per-shard recovery
            // (tail repair, interrupted compaction, rebase) happens
            // inside attach.
            auto heap = PjhHeap::attach(devices_[k].get(), registry_,
                                        safety);
            wireShard(heap.get());
            heaps_[k] = std::move(heap);
        } else {
            // The create crashed before this member's format was
            // durably flagged: its device holds garbage (or was
            // never made). Re-format from the manifest's sizing.
            formatShard(k, shard_cfg);
            manifest_.markFormatted(k);
        }
    }
    if (d.shardCount != target)
        manifest_.commit(target);
    router_ = ShardRouter(target,
                          static_cast<unsigned>(d.vnodes));
    replayRootIntents();
}

std::size_t
HeapFabric::rootIntentsOff()
{
    return alignUp(RingManifest::persistedBytes(), kCacheLineSize);
}

void
HeapFabric::replayRootIntents()
{
    rootIntents_ =
        DecisionLog(manifestDev_.get(), rootIntentsOff(), kRootStripes);
    for (const DecisionLog::Record &r : rootIntents_.recover()) {
        if (r.kind != DecisionLog::kKindRootIntent) {
            rootIntents_.clear(r.slot);
            continue;
        }
        const std::string &name = r.payload;
        bool null_publish = r.txnId != 0;
        PjhHeap *target =
            r.argA < heaps_.size() ? heaps_[r.argA].get() : nullptr;
        if (null_publish) {
            // Unpublish replay is idempotent: null the binding
            // everywhere, whether or not the original got that far.
            for (const auto &h : heaps_)
                if (h && !h->getRoot(name).isNull())
                    h->setRoot(name, Oop());
        } else if (target && !target->getRoot(name).isNull()) {
            // The new home's binding durably landed: complete the
            // stale-entry sweep (roll forward).
            for (const auto &h : heaps_) {
                if (!h || h.get() == target)
                    continue;
                if (!h->getRoot(name).isNull())
                    h->setRoot(name, Oop());
            }
        }
        // else: the publication never landed; the old fully-swept
        // binding is still current (roll back = do nothing).
        rootIntents_.clear(r.slot);
    }
}

void
HeapFabric::ensureAttached(SafetyLevel safety)
{
    if (!attached()) {
        recover(safety);
        return;
    }
    for (unsigned i = 0; i < shardCount(); ++i)
        if (devices_[i] && !heaps_[i])
            reattachShard(i, safety);
}

void
HeapFabric::detach()
{
    if (!attached())
        fatal("HeapFabric::detach: fabric is not attached");
    for (auto &h : heaps_) {
        if (!h)
            continue;
        h->detach();
        unwireShard(h.get());
    }
    heaps_.clear();
    manifestDev_->shutdownClean();
}

std::uint64_t
HeapFabric::epoch() const
{
    return manifest_.declared() ? manifest_.data().epoch : 0;
}

PjhHeap *
HeapFabric::shard(unsigned i) const
{
    return i < heaps_.size() ? heaps_[i].get() : nullptr;
}

NvmDevice *
HeapFabric::shardDevice(unsigned i) const
{
    return i < devices_.size() ? devices_[i].get() : nullptr;
}

PjhHeap *
HeapFabric::shardFor(const std::string &route_key) const
{
    PjhHeap *h = shard(router_.shardForName(route_key));
    if (!h)
        fatal("HeapFabric: route '" + route_key +
              "' targets a detached shard");
    return h;
}

PjhHeap *
HeapFabric::shardForKey(std::uint64_t key) const
{
    PjhHeap *h = shard(router_.shardForKey(key));
    if (!h)
        fatal("HeapFabric: key routes to a detached shard");
    return h;
}

PjhHeap *
HeapFabric::homeOf(Oop obj) const
{
    if (obj.isNull())
        return nullptr;
    for (const auto &h : heaps_)
        if (h && h->containsData(obj.addr()))
            return h.get();
    return nullptr;
}

void
HeapFabric::setRoot(const std::string &name, Oop obj)
{
    PjhHeap *home = homeOf(obj);
    if (obj && !home)
        fatal("HeapFabric::setRoot: object is not in any shard");
    // The ring shard only matters for a null publish; a non-null
    // object goes to its live home shard even while the name's ring
    // shard is crashed (failures must stay shard-local). A null
    // publish (unpublish) with the ring member down degrades to the
    // stale-entry sweep alone: every live binding is nulled, and the
    // crashed member's own entry — if it is the home — falls under
    // the membership quiescence contract until reattach.
    PjhHeap *target =
        home ? home : shard(router_.shardForName(name));
    // One name, one writer at a time: without this, two racing
    // republications could each null the other's fresh binding.
    std::size_t stripe = ShardRouter::hashName(name) % kRootStripes;
    SpinGuard g(rootLocks_[stripe]);
    // Durable republication intent (slot = stripe: the stripe lock
    // makes the slot exclusively ours). A crash anywhere between
    // here and the clear below is rolled forward or back by
    // replayRootIntents(), so the fabric recovers to exactly one
    // complete publication. Single-shard fabrics have no sweep to
    // tear, and over-long names fall back to the legacy contract.
    bool intent = shardCount() > 1 && rootIntents_.valid() &&
                  DecisionLog::payloadFits(name.size());
    if (intent) {
        unsigned target_idx = ~0u;
        for (unsigned i = 0; i < heaps_.size(); ++i)
            if (heaps_[i].get() == target)
                target_idx = i;
        rootIntents_.publish(static_cast<unsigned>(stripe),
                             DecisionLog::kKindRootIntent,
                             /*txn_id=*/obj.isNull() ? 1 : 0,
                             /*arg_a=*/target_idx, name.data(),
                             name.size());
    }
    if (target)
        target->setRoot(name, obj);
    // Republication may move a name's home shard; null out stale
    // entries elsewhere so lookups do not resurrect the old binding
    // (the name table has no deletion, but a null value reads as a
    // miss at the fabric level).
    for (const auto &h : heaps_) {
        if (!h || h.get() == target)
            continue;
        if (!h->getRoot(name).isNull())
            h->setRoot(name, Oop());
    }
    if (intent)
        rootIntents_.clear(static_cast<unsigned>(stripe));
}

Oop
HeapFabric::getRoot(const std::string &name) const
{
    PjhHeap *ring = shard(router_.shardForName(name));
    if (ring) {
        Oop o = ring->getRoot(name);
        if (!o.isNull())
            return o;
    }
    for (const auto &h : heaps_) {
        if (!h || h.get() == ring)
            continue;
        Oop o = h->getRoot(name);
        if (!o.isNull())
            return o;
    }
    return Oop();
}

bool
HeapFabric::hasRoot(const std::string &name) const
{
    if (!getRoot(name).isNull())
        return true;
    PjhHeap *ring = shard(router_.shardForName(name));
    return ring && ring->hasRoot(name);
}

void
HeapFabric::collectShard(unsigned i)
{
    PjhHeap *h = shard(i);
    if (!h)
        fatal("HeapFabric::collectShard: shard is not attached");
    h->collect(volatileHeap_);
}

void
HeapFabric::collectAll()
{
    std::vector<unsigned> live;
    for (unsigned i = 0; i < shardCount(); ++i)
        if (shard(i))
            live.push_back(i);
    if (live.empty())
        return;

    unsigned workers = gcWorkers_
                           ? gcWorkers_
                           : envUnsigned("ESPRESSO_FABRIC_GC_WORKERS",
                                         static_cast<unsigned>(
                                             live.size()));
    workers = std::min<unsigned>(
        std::max(workers, 1u), static_cast<unsigned>(live.size()));
    if (workers <= 1) {
        for (unsigned i : live)
            collectShard(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::mutex err_mu;
    std::exception_ptr err;
    gcPool_.run(workers, [&](unsigned) {
        try {
            for (;;) {
                std::size_t n =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (n >= live.size())
                    return;
                collectShard(live[n]);
            }
        } catch (...) {
            std::lock_guard<std::mutex> g(err_mu);
            if (!err)
                err = std::current_exception();
        }
    });
    if (err)
        std::rethrow_exception(err);
}

void
HeapFabric::setGcWorkers(unsigned n)
{
    gcWorkers_ = n;
}

void
HeapFabric::setGcThreads(unsigned n)
{
    gcThreads_ = n;
    for (auto &h : heaps_)
        if (h)
            h->setGcThreads(n);
}

void
HeapFabric::dropShardHeap(unsigned i)
{
    if (i < heaps_.size() && heaps_[i]) {
        unwireShard(heaps_[i].get());
        heaps_[i].reset();
    }
}

void
HeapFabric::crashShard(unsigned i, CrashMode mode, std::uint64_t seed)
{
    if (i >= devices_.size() || !devices_[i])
        fatal("HeapFabric::crashShard: no such shard");
    dropShardHeap(i);
    devices_[i]->crash(mode, seed);
}

PjhHeap *
HeapFabric::reattachShard(unsigned i, SafetyLevel safety)
{
    if (!attached())
        fatal("HeapFabric::reattachShard: fabric is not attached");
    if (i >= devices_.size() || !devices_[i])
        fatal("HeapFabric::reattachShard: no such shard");
    if (heaps_[i])
        return heaps_[i].get();
    auto heap = PjhHeap::attach(devices_[i].get(), registry_, safety);
    wireShard(heap.get());
    heaps_[i] = std::move(heap);
    return heaps_[i].get();
}

void
HeapFabric::crashAll(CrashMode mode, std::uint64_t seed)
{
    for (unsigned i = 0; i < heaps_.size(); ++i)
        dropShardHeap(i);
    heaps_.clear();
    for (std::size_t i = 0; i < devices_.size(); ++i)
        if (devices_[i])
            devices_[i]->crash(mode, seed + i);
    if (manifestDev_)
        manifestDev_->crash(mode, seed + 0x4d414e49ull);
}

void
HeapFabric::setManifestInjector(CrashInjector *injector)
{
    manifestInjector_ = injector;
    if (manifestDev_)
        manifestDev_->setInjector(injector);
}

void
HeapFabric::migrate()
{
    if (attached())
        fatal("HeapFabric::migrate: detach or crash the fabric first");
    auto remap = [this](std::unique_ptr<NvmDevice> &dev) {
        if (!dev)
            return;
        auto fresh = std::make_unique<NvmDevice>(dev->size(), nvmCfg_);
        std::memcpy(fresh->base(), dev->base(), dev->size());
        fresh->shutdownClean();
        dev = std::move(fresh);
    };
    for (auto &dev : devices_)
        remap(dev);
    remap(manifestDev_);
    manifest_ = RingManifest(manifestDev_.get());
}

} // namespace espresso
