/**
 * @file
 * Crash recovery for an interrupted persistent-space collection
 * (paper §4.3).
 *
 * Activated by attach/loadHeap when the metadata area says a
 * collection was in flight. The three steps mirror the paper:
 *  1. fetch the persisted mark bitmap (the marking phase's result);
 *  2. redo the summary phase, regenerating the volatile region
 *     indices from the bitmap (idempotent);
 *  3. use the region bitmap to skip fully processed regions and the
 *     per-object timestamps to skip completed objects, then finish
 *     the compaction with the identical protocol — sourcing from the
 *     bounce buffer when it owns the object being redone.
 *
 * Runs before the rebase scan, so all persistent pointer values are
 * still expressed in the stored address space; the compactor's delta
 * translates stored to physical addresses.
 */

#ifndef ESPRESSO_PJH_PJH_RECOVERY_HH
#define ESPRESSO_PJH_PJH_RECOVERY_HH

#include <cstddef>

#include "pjh/pjh_heap.hh"

namespace espresso {

/** Completes an interrupted PJH collection. */
class PjhRecovery
{
  public:
    /**
     * @param heap the heap being attached (views set up, not bound).
     * @param delta physical minus stored base address.
     */
    PjhRecovery(PjhHeap &heap, std::ptrdiff_t delta);

    /** Run recovery; clears the in-collection flag on success. */
    void run();

    /**
     * Discard an uncommitted concurrent-marking cycle (the crash hit
     * mutator/marker overlap: gcMarkingActive is set but gcInProgress
     * never was). The heap itself is untouched — marking writes only
     * the bitmaps, which no reader trusts outside gcInProgress — so
     * discarding is just retiring the epoch record: clear the flag,
     * count the discard, persist both.
     */
    void discardMarkingCycle();

  private:
    PjhHeap &h_;
    std::ptrdiff_t delta_;
};

} // namespace espresso

#endif // ESPRESSO_PJH_PJH_RECOVERY_HH
