/**
 * @file
 * The external name manager of §3.3 plus the Table-1 API surface.
 *
 * Maps heap names to NVM devices (the NVDIMM inventory), attaches and
 * detaches PjhHeap instances, wires attached heaps into the volatile
 * collectors, and — for tests and the crash-recovery example —
 * simulates power failures and reboots, including the "mapped at a
 * different address" reboot that exercises the rebase scan.
 */

#ifndef ESPRESSO_PJH_HEAP_MANAGER_HH
#define ESPRESSO_PJH_HEAP_MANAGER_HH

#include <map>
#include <memory>
#include <string>

#include "heap/volatile_heap.hh"
#include "nvm/nvm_device.hh"
#include "pjh/pjh_heap.hh"
#include "runtime/klass_registry.hh"

namespace espresso {

/** Owns all named PJH instances of one runtime. */
class HeapManager
{
  public:
    /**
     * @param registry runtime class directory.
     * @param volatile_heap DRAM heap for cross-heap GC wiring (may be
     *        null for standalone persistent heaps).
     * @param nvm_cfg latency/behaviour knobs applied to new devices.
     */
    HeapManager(KlassRegistry *registry, VolatileHeap *volatile_heap,
                NvmConfig nvm_cfg = {});
    ~HeapManager();

    HeapManager(const HeapManager &) = delete;
    HeapManager &operator=(const HeapManager &) = delete;

    /** @name Table 1 */
    /// @{
    /** Create a PJH instance with @p data_size bytes of object space. */
    PjhHeap *createHeap(const std::string &name, std::size_t data_size);

    /** Create with full sizing control. */
    PjhHeap *createHeap(const std::string &name, const PjhConfig &cfg);

    /** Load (attach) a pre-existing instance into the runtime. */
    PjhHeap *loadHeap(const std::string &name,
                      SafetyLevel safety = SafetyLevel::kUserGuaranteed);

    /** True if a PJH instance with this name exists (loaded or not). */
    bool existsHeap(const std::string &name) const;
    /// @}

    /** The loaded heap, or nullptr. */
    PjhHeap *heap(const std::string &name) const;

    /** Cleanly detach a loaded heap (clean shutdown semantics). */
    void detachHeap(const std::string &name);

    /**
     * Simulate a power failure on @p name: all volatile state is
     * dropped and the device reverts to its durable image.
     */
    void crashHeap(const std::string &name,
                   CrashMode mode = CrashMode::kDiscardUnflushed,
                   std::uint64_t seed = 1);

    /**
     * Simulate a reboot in which the OS cannot map the heap at its
     * address hint: the durable image is migrated to a fresh device
     * (new virtual addresses), forcing the rebase scan on next load.
     */
    void migrateHeap(const std::string &name);

    /** Device backing @p name (for fault injection), or nullptr. */
    NvmDevice *deviceOf(const std::string &name) const;

    /**
     * GC worker threads for every heap this manager owns: applied to
     * all currently loaded heaps and to every heap created or loaded
     * afterwards. 0 restores each heap's own default
     * (ESPRESSO_GC_THREADS or 1).
     */
    void setGcThreads(unsigned n);

    KlassRegistry &registry() { return *registry_; }

  private:
    void wireHeap(const std::string &name, PjhHeap *heap);
    void unwireHeap(PjhHeap *heap);

    KlassRegistry *registry_;
    VolatileHeap *volatileHeap_;
    NvmConfig nvmCfg_;
    /** Manager-wide GC thread override; 0 = per-heap default. */
    unsigned gcThreads_ = 0;
    std::map<std::string, std::unique_ptr<NvmDevice>> devices_;
    std::map<std::string, std::unique_ptr<PjhHeap>> heaps_;
};

} // namespace espresso

#endif // ESPRESSO_PJH_HEAP_MANAGER_HH
