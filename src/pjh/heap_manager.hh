/**
 * @file
 * The external name manager of §3.3 plus the Table-1 API surface,
 * sharded: every named heap is a HeapFabric.
 *
 * Maps heap names to fabrics (each fabric: a consistent-hash ring of
 * PJH shards, one NvmDevice per shard, plus a durable ring manifest),
 * attaches and detaches them, wires attached shards into the volatile
 * collectors, and — for tests and the crash-recovery example —
 * simulates power failures and reboots, including the "mapped at a
 * different address" reboot that exercises the rebase scan.
 *
 * The classic Table-1 single-heap API (createHeap/loadHeap/heap/...)
 * is unchanged and is implemented as a 1-shard fabric, so existing
 * callers see exactly the old semantics. createFabric/loadFabric/
 * fabric expose the sharded surface.
 *
 * Thread safety: the named-fabric registry is guarded by one mutex —
 * create/load/exists/heap/fabric/detach/crash/migrate may race freely
 * (a duplicate createHeap still fails fatally, but deterministically).
 * Traffic *inside* a fabric (allocation, roots, per-shard GC) never
 * takes the registry lock.
 */

#ifndef ESPRESSO_PJH_HEAP_MANAGER_HH
#define ESPRESSO_PJH_HEAP_MANAGER_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "heap/volatile_heap.hh"
#include "nvm/nvm_device.hh"
#include "pjh/heap_fabric.hh"
#include "pjh/pjh_heap.hh"
#include "runtime/klass_registry.hh"

namespace espresso {

/** Owns all named fabrics (and thus PJH instances) of one runtime. */
class HeapManager
{
  public:
    /**
     * @param registry runtime class directory.
     * @param volatile_heap DRAM heap for cross-heap GC wiring (may be
     *        null for standalone persistent heaps).
     * @param nvm_cfg latency/behaviour knobs applied to new devices.
     */
    HeapManager(KlassRegistry *registry, VolatileHeap *volatile_heap,
                NvmConfig nvm_cfg = {});
    ~HeapManager();

    HeapManager(const HeapManager &) = delete;
    HeapManager &operator=(const HeapManager &) = delete;

    /** @name Table 1 (single-heap surface: a 1-shard fabric) */
    /// @{
    /** Create a PJH instance with @p data_size bytes of object space. */
    PjhHeap *createHeap(const std::string &name, std::size_t data_size);

    /** Create with full sizing control. */
    PjhHeap *createHeap(const std::string &name, const PjhConfig &cfg);

    /** Load (attach) a pre-existing instance into the runtime. */
    PjhHeap *loadHeap(const std::string &name,
                      SafetyLevel safety = SafetyLevel::kUserGuaranteed);

    /** True if a PJH instance with this name exists (loaded or not). */
    bool existsHeap(const std::string &name) const;
    /// @}

    /** @name Fabrics (the sharded surface) */
    /// @{
    /**
     * Create a named fabric of @p shards PJH instances (0 resolves
     * ESPRESSO_SHARDS, then 1), each sized by @p shard_cfg, routed by
     * a consistent-hash ring with @p vnodes points per shard (0:
     * ESPRESSO_SHARD_VNODES, then 64).
     */
    HeapFabric *createFabric(const std::string &name,
                             const PjhConfig &shard_cfg,
                             unsigned shards = 0, unsigned vnodes = 0);

    /** Attach (or crash-recover) an existing fabric. */
    HeapFabric *loadFabric(const std::string &name,
                           SafetyLevel safety =
                               SafetyLevel::kUserGuaranteed);

    /** The named fabric (attached or not), or nullptr. */
    HeapFabric *fabric(const std::string &name) const;
    /// @}

    /** The loaded heap (shard 0 of the fabric), or nullptr. */
    PjhHeap *heap(const std::string &name) const;

    /** Cleanly detach a loaded fabric (clean shutdown semantics). */
    void detachHeap(const std::string &name);

    /**
     * Simulate a power failure on @p name: all volatile state is
     * dropped and every member device reverts to its durable image.
     */
    void crashHeap(const std::string &name,
                   CrashMode mode = CrashMode::kDiscardUnflushed,
                   std::uint64_t seed = 1);

    /**
     * Simulate a reboot in which the OS cannot map the heap at its
     * address hint: the durable images migrate to fresh devices
     * (new virtual addresses), forcing the rebase scan on next load.
     */
    void migrateHeap(const std::string &name);

    /** Device backing shard 0 of @p name (for fault injection), or
     * nullptr. */
    NvmDevice *deviceOf(const std::string &name) const;

    /**
     * GC worker threads for every heap this manager owns: applied to
     * all currently loaded shards and to every fabric created or
     * loaded afterwards. 0 restores each heap's own default
     * (ESPRESSO_GC_THREADS or 1).
     */
    void setGcThreads(unsigned n);

    /**
     * Concurrent-marking mode for every heap this manager owns:
     * applied to all currently loaded shards and to every fabric
     * created afterwards (see PjhHeap::setGcConcurrent). Until the
     * first call, each heap follows ESPRESSO_GC_CONCURRENT.
     */
    void setGcConcurrent(bool on);

    KlassRegistry &registry() { return *registry_; }

  private:
    /** Registry lookups (callers hold mu_). */
    HeapFabric *findFabric(const std::string &name) const;

    KlassRegistry *registry_;
    VolatileHeap *volatileHeap_;
    NvmConfig nvmCfg_;
    /** Manager-wide GC thread override; 0 = per-heap default. */
    unsigned gcThreads_ = 0;

    /** Manager-wide concurrent-marking override; -1 = per-heap
     * default (ESPRESSO_GC_CONCURRENT). */
    int gcConcurrent_ = -1;

    /** Guards fabrics_ and gcThreads_ against concurrent
     * create/load/detach/crash/lookup. */
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<HeapFabric>> fabrics_;
};

} // namespace espresso

#endif // ESPRESSO_PJH_HEAP_MANAGER_HH
