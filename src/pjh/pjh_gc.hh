/**
 * @file
 * Crash-consistent collection of the persistent space (paper §4.2).
 *
 * The algorithm is PSGC's old GC (mark / summary / compact) with the
 * persistence protocol layered on:
 *
 *  1. Mark into the NVM-resident bitmaps; persist them, then the
 *     incremented global timestamp (staling every object), then the
 *     compaction-slice plan, the root redo journal (new values for
 *     every root-table entry, computed from the idempotent summary),
 *     and finally the in-collection flag.
 *  2. Apply the journal (idempotent), then slide live objects down
 *     in ascending address order. Each object is copied, its
 *     references rewritten through the summary's pure forwardee
 *     function, its content persisted, and only then its header
 *     timestamp set to the global stamp and persisted — the
 *     timestamp is the "processed" marker recovery inspects.
 *     Self-overlapping moves stage the source in the persistent
 *     bounce buffer (owner tag persisted before the destination is
 *     touched), preserving the undo-by-source property. Fully
 *     evacuated regions are recorded in the region bitmap and in the
 *     owning slice's durable cursor.
 *  3. Persist the new top, retire the TLAB slot table (compaction
 *     subsumed every chunk), clear the in-collection flag, then
 *     repair the volatile side (handles, DRAM objects) — all
 *     recomputable.
 *
 * Both phases are region-parallel (the paper's §4.2 bitmap design
 * permits region-granular compaction):
 *
 *  - **Mark** runs gcThreads workers with per-worker mark stacks and
 *    work stealing. An object is claimed by an atomic CAS on its
 *    start bit, so it is pushed onto exactly one worker's stack.
 *    Roots are partitioned across workers: each scans a stripe of
 *    name-table slots and a stripe of the pre-collected DRAM slots.
 *  - **Compact** partitions the used regions into up to gcThreads
 *    slices balanced by live bytes. Each slice packs its live data
 *    into its own region span (see RegionTable::buildSummary's
 *    slice-aware overload), making slices disjoint in both source
 *    and destination, so workers compact them concurrently; sliding
 *    within a slice stays sequential, preserving the torn-object
 *    repair invariants. Inter-slice gaps are plugged with filler
 *    objects (reclaimed by the next collection). The slice plan is
 *    persisted in PjhMetadata before the in-collection flag, and
 *    each slice durably advances a per-slice region cursor, so
 *    compact(resume=true) recovery rebuilds the identical summary
 *    and replays only unfinished slices.
 *
 * With gcThreads == 1 the plan is a single slice starting at the
 * space base — exactly the classic global sliding compaction.
 *
 * PjhCompactor holds the shared machinery; PjhRecovery (§4.3) drives
 * the same compactor in resume mode with a remap delta.
 */

#ifndef ESPRESSO_PJH_PJH_GC_HH
#define ESPRESSO_PJH_PJH_GC_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "heap/region_table.hh"
#include "pjh/pjh_heap.hh"

namespace espresso {

/** Summary + crash-consistent compaction shared by GC and recovery.
 *
 * All persistent state (slot values, root entries) is expressed in
 * the heap's *stored* address space; @p delta translates stored to
 * physical addresses and is zero during online collection.
 */
class PjhCompactor
{
  public:
    PjhCompactor(PjhHeap &heap, std::ptrdiff_t delta);

    /** Rebuild the region indices from the (persisted) mark bitmap,
     * as one global sliding slice (pre-planning summary). */
    void buildSummary();

    /**
     * Partition the used regions into at most @p threads slices
     * balanced by live bytes, persist the plan (count + per-slice
     * {begin, end, cursor=begin}) into the metadata area, and
     * rebuild the summary slice-aware. Slices whose inter-slice gap
     * would be a single word (too small for a filler header) are
     * merged with their successor. Must run after buildSummary() and
     * before writeRootJournal().
     */
    void planSlices(unsigned threads);

    /** Recovery path: adopt the persisted slice plan and rebuild the
     * slice-aware summary from it. */
    void loadSlices();

    /** Write the root redo journal (new value per root entry). */
    void writeRootJournal();

    /** (Re)apply the journal to the root-table entries. Idempotent. */
    void applyRootJournal();

    /**
     * Process every marked object, slice by slice, with up to
     * @p workers threads claiming whole slices.
     * @param resume skip regions below each slice's durable cursor or
     *        recorded in the region bitmap, and objects whose
     *        destination already carries the current timestamp.
     */
    void compact(bool resume, unsigned workers = 1);

    /** Persist the new top, retire the TLAB slots, and clear the
     * in-collection flag. */
    void finish();

    /** Post-compaction destination of stored-space address @p v. */
    Addr forwardStored(Addr stored) const;

    Addr newTopPhys() const;

  private:
    void processSlice(std::size_t s, bool resume,
                      const std::atomic<bool> *abort);
    void processObject(Addr src_phys, std::size_t size);
    void copyWithFixups(Addr src_phys, Addr dest_phys, std::size_t size);

    /** Cover an inter-slice gap with a durable filler object so the
     * compacted heap parses end to end. */
    void plugSliceGap(Addr gap, std::size_t bytes);

    /** True when no live object straddles region @p r's base — the
     * precondition for cutting a slice boundary there. */
    bool boundaryIsObjectAligned(std::size_t r) const;

    std::size_t usedRegions() const;

    PjhHeap &h_;
    NvmDevice &dev_;
    std::ptrdiff_t delta_; ///< physical = stored + delta
    Addr dataPhys_;
    Addr dataStored_;
    RegionTable regions_;
    std::uint16_t stamp_;
    /** First region index of each planned slice (mirrors the
     * persisted plan; drives the slice-aware summary). */
    std::vector<std::size_t> sliceBegins_;
    /** Serializes the shared bounce buffer across slice workers; the
     * owner-tag protocol keeps single-owner semantics durable. */
    std::mutex bounceMu_;
};

/** One online persistent-space collection. */
class PjhGc
{
  public:
    PjhGc(PjhHeap &heap, VolatileHeap *volatile_heap);

    /** Classic stop-the-world cycle (quiesced mutators). */
    void collect();

    /**
     * Concurrent SATB cycle (see PjhHeap::setGcConcurrent): initial
     * safepoint snapshots the roots and arms the durable
     * marking-epoch record; marking then overlaps mutators (write
     * barrier shades into the SATB buffer, allocations are born
     * black); a final safepoint remarks to fixpoint, commits the
     * snapshot (bitmaps + slice plan + gcInProgress), and runs the
     * same sliced compaction as the STW path. A crash before the
     * commit point discards the cycle on attach; after it, recovery
     * resumes the compaction exactly as for an STW crash.
     */
    void collectConcurrent();

  private:
    void markPhase();
    void parallelMark(unsigned num_workers);
    /** Trace from the snapshot roots while mutators run, draining
     * the heap's SATB buffer as it fills. */
    void traceConcurrent(unsigned num_workers);
    /** Safepoint fixpoint: rescan all roots + drain the SATB residue
     * (mutators drained, so the fixpoint is exact). */
    void remark();
    /** Flip to kPaused and drain mutator brackets. */
    void pauseMutators();
    void markRef(Addr ref);
    bool isFillerRef(Addr ref) const;
    void visitDramSlots(const SlotVisitor &visitor);
    void fixVolatileSide(const PjhCompactor &compactor);
    /** Shared tail: stale stamp, summary/plan/journal, compact,
     * finish, volatile fixup. Returns the compact-phase ns. */
    std::uint64_t commitAndCompact(unsigned workers, bool concurrent);
    /** Persist the per-cycle stats block (gcLastMarked through
     * gcLastFloating, one flush range + fence) and mirror it into
     * PjhStats. STW cycles pass zeros for the concurrent fields so a
     * post-crash reader never sees a stale overlap figure. */
    void persistCycleStats(std::uint64_t marked, std::uint64_t conc_ns,
                           std::uint64_t remark_ns, std::uint64_t shaded,
                           std::uint64_t floating);

    PjhHeap &h_;
    VolatileHeap *vh_;
    std::vector<Addr> markStack_;
    /** Root *values* captured at the initial safepoint (slot
     * addresses can go stale while the volatile side runs). */
    std::vector<Addr> snapshotRoots_;
    std::uint64_t markedCount_ = 0;
};

} // namespace espresso

#endif // ESPRESSO_PJH_PJH_GC_HH
