/**
 * @file
 * Crash-consistent collection of the persistent space (paper §4.2).
 *
 * The algorithm is PSGC's old GC (mark / summary / compact) with the
 * persistence protocol layered on:
 *
 *  1. Mark into the NVM-resident bitmaps; persist them, then the
 *     incremented global timestamp (staling every object), then the
 *     root redo journal (new values for every root-table entry,
 *     computed from the idempotent summary), and finally the
 *     in-collection flag.
 *  2. Apply the journal (idempotent), then slide live objects down
 *     in ascending address order. Each object is copied, its
 *     references rewritten through the summary's pure forwardee
 *     function, its content persisted, and only then its header
 *     timestamp set to the global stamp and persisted — the
 *     timestamp is the "processed" marker recovery inspects.
 *     Self-overlapping moves stage the source in the persistent
 *     bounce buffer (owner tag persisted before the destination is
 *     touched), preserving the undo-by-source property. Fully
 *     evacuated regions are recorded in the region bitmap.
 *  3. Persist the new top, clear the in-collection flag, then repair
 *     the volatile side (handles, DRAM objects) — all recomputable.
 *
 * PjhCompactor holds the shared machinery; PjhRecovery (§4.3) drives
 * the same compactor in resume mode with a remap delta.
 */

#ifndef ESPRESSO_PJH_PJH_GC_HH
#define ESPRESSO_PJH_PJH_GC_HH

#include <cstdint>

#include "heap/region_table.hh"
#include "pjh/pjh_heap.hh"

namespace espresso {

/** Summary + crash-consistent compaction shared by GC and recovery.
 *
 * All persistent state (slot values, root entries) is expressed in
 * the heap's *stored* address space; @p delta translates stored to
 * physical addresses and is zero during online collection.
 */
class PjhCompactor
{
  public:
    PjhCompactor(PjhHeap &heap, std::ptrdiff_t delta);

    /** Rebuild the region indices from the (persisted) mark bitmap. */
    void buildSummary();

    /** Write the root redo journal (new value per root entry). */
    void writeRootJournal();

    /** (Re)apply the journal to the root-table entries. Idempotent. */
    void applyRootJournal();

    /**
     * Process every marked object in ascending order.
     * @param resume skip regions recorded in the region bitmap and
     *        objects whose destination already carries the current
     *        timestamp.
     */
    void compact(bool resume);

    /** Persist the new top and clear the in-collection flag. */
    void finish();

    /** Post-compaction destination of stored-space address @p v. */
    Addr forwardStored(Addr stored) const;

    Addr newTopPhys() const;

  private:
    void processObject(Addr src_phys, std::size_t size);
    void copyWithFixups(Addr src_phys, Addr dest_phys, std::size_t size);

    PjhHeap &h_;
    NvmDevice &dev_;
    std::ptrdiff_t delta_; ///< physical = stored + delta
    Addr dataPhys_;
    Addr dataStored_;
    RegionTable regions_;
    std::uint16_t stamp_;
};

/** One online persistent-space collection. */
class PjhGc
{
  public:
    PjhGc(PjhHeap &heap, VolatileHeap *volatile_heap);

    void collect();

  private:
    void markPhase();
    void markRef(Addr ref);
    void visitDramSlots(const SlotVisitor &visitor);
    void fixVolatileSide(const PjhCompactor &compactor);

    PjhHeap &h_;
    VolatileHeap *vh_;
    std::vector<Addr> markStack_;
    std::uint64_t markedCount_ = 0;
};

} // namespace espresso

#endif // ESPRESSO_PJH_PJH_GC_HH
