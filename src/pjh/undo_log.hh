/**
 * @file
 * A simple persistent undo log for application-level ACID updates.
 *
 * The paper's microbenchmark comparison adds "ACID guarantee by
 * providing a simple undo log" to the PJH collections so they match
 * PCJ's transactional semantics (§6.2). This is that log: before a
 * transactional store, the old bytes are recorded and persisted;
 * commit persists the new data and retires the log; abort — or
 * attach-time recovery after a crash mid-transaction — rolls the old
 * bytes back.
 *
 * Persistence protocol: begin() is free (the header becomes durable
 * with the first record); each record costs one fence, covering both
 * the entry and the header. Because an evicted cache line can
 * publish the header without its entry, every entry carries the
 * transaction sequence number and a checksum; rollback only applies
 * the valid prefix of the log, which is exactly the set of records
 * whose fence (and therefore whose guarded overwrite) could have
 * happened.
 *
 * Log records address data by data-heap offset, so they stay valid
 * across remaps. Collections must not run while a transaction is
 * open (objects would move under the log).
 */

#ifndef ESPRESSO_PJH_UNDO_LOG_HH
#define ESPRESSO_PJH_UNDO_LOG_HH

#include <cstdint>

#include "util/common.hh"

namespace espresso {

class NvmDevice;

/** Persistent undo log over a fixed NVM area. */
class UndoLog
{
  public:
    UndoLog() = default;

    /**
     * @param device owning device.
     * @param base working-image address of the log area.
     * @param size log area capacity in bytes.
     * @param data_base data-heap base (offsets are relative to it).
     */
    UndoLog(NvmDevice *device, Addr base, std::size_t size,
            Addr data_base);

    /** Open a transaction (one at a time). */
    void begin();

    /** True while a transaction is open in this attach. */
    bool active() const;

    /**
     * Log the current bytes at [addr, addr+len) — must lie in the
     * data heap — and persist the record. Call before overwriting.
     */
    void record(Addr addr, std::size_t len);

    /** Persist all data mutated at the logged locations, then retire
     * the log. */
    void commit();

    /** Roll every logged location back and retire the log. */
    void abort();

    /** Attach-time recovery: roll back iff a transaction was open. */
    void recover();

  private:
    struct LogHeader
    {
        Word active;
        Word count;
        Word used;
        Word seq; ///< transaction sequence number
    };

    struct LogEntry
    {
        Word offset; ///< data-heap offset
        Word length;
        Word seq;      ///< owning transaction
        Word checksum; ///< over offset/length/seq/old bytes
        // old bytes follow, padded to a word multiple
    };

    static Word entryChecksum(const LogEntry &entry, const Word *bytes,
                              std::size_t words);

    void rollback();
    void retire();

    LogHeader *header() const { return reinterpret_cast<LogHeader *>(base_); }
    Addr payloadBase() const { return base_ + kCacheLineSize; }

    NvmDevice *device_ = nullptr;
    Addr base_ = 0;
    std::size_t size_ = 0;
    Addr dataBase_ = 0;
    bool open_ = false;
};

} // namespace espresso

#endif // ESPRESSO_PJH_UNDO_LOG_HH
