#include "pjh/pjh_gc.hh"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <exception>
#include <thread>

#include "pjh/klass_segment.hh"
#include "util/logging.hh"

namespace espresso {

namespace {

/** One root-redo-journal record. */
struct RootJournalEntry
{
    Word slotIndex;  ///< name-table slot
    Word destOffset; ///< new value, as a data-heap offset
};

/** One parallel-mark worker's claimed-object stack. Thieves lock the
 * owner's mutex and take the coldest half from the bottom. */
struct MarkWorker
{
    std::mutex mu;
    std::vector<Addr> stack;
    std::uint64_t marked = 0;
};

std::uint64_t
gcNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

// ---------------------------------------------------------------------
// PjhCompactor
// ---------------------------------------------------------------------

PjhCompactor::PjhCompactor(PjhHeap &heap, std::ptrdiff_t delta)
    : h_(heap), dev_(heap.device()), delta_(delta),
      dataPhys_(heap.dataBase_),
      dataStored_(heap.dataBase_ - static_cast<Addr>(delta)),
      regions_(heap.dataBase_, heap.meta_->dataSize,
               heap.meta_->regionSize),
      stamp_(static_cast<std::uint16_t>(heap.meta_->globalTimestamp))
{}

std::size_t
PjhCompactor::usedRegions() const
{
    const PjhMetadata *meta = h_.meta_;
    return (meta->topOffset + meta->regionSize - 1) / meta->regionSize;
}

bool
PjhCompactor::boundaryIsObjectAligned(std::size_t r) const
{
    // A slice boundary is only legal where no live object straddles
    // it: the boundary granule must be dead, or be an object start.
    // A straddler would otherwise be split between two independent
    // destination cursors — its copied tail would collide with the
    // inter-slice gap filler while the next slice's destinations
    // leave a matching unparseable hole (and its source tail lies in
    // another worker's slice).
    Addr boundary = dataPhys_ + r * h_.meta_->regionSize;
    std::size_t bit = (boundary - dataPhys_) / MarkBitmap::kGranule;
    return !h_.marks_.liveBits().test(bit) ||
           h_.marks_.startBits().test(bit);
}

void
PjhCompactor::buildSummary()
{
    regions_.buildSummary(h_.marks_, dataPhys_);
}

void
PjhCompactor::planSlices(unsigned threads)
{
    PjhMetadata *meta = h_.meta_;
    std::size_t used = usedRegions();
    std::size_t want = std::max<std::size_t>(threads, 1);
    want = std::min({want, PjhMetadata::kMaxGcSlices,
                     std::max<std::size_t>(used, 1)});

    struct Span
    {
        std::size_t begin, end;
    };
    std::vector<Span> slices;
    if (used == 0) {
        slices.push_back({0, 0});
    } else {
        std::size_t total_live = 0;
        for (std::size_t r = 0; r < used; ++r)
            total_live += regions_.liveBytesInRegion(r);
        std::size_t target = std::max<std::size_t>(
            (total_live + want - 1) / want, 1);
        std::size_t begin = 0, acc = 0;
        for (std::size_t r = 0; r < used; ++r) {
            acc += regions_.liveBytesInRegion(r);
            bool last_region = r + 1 == used;
            if (last_region) {
                slices.push_back({begin, used});
            } else if (acc >= target && slices.size() + 1 < want &&
                       boundaryIsObjectAligned(r + 1)) {
                slices.push_back({begin, r + 1});
                begin = r + 1;
                acc = 0;
            }
        }
        // A slice whose inter-slice gap would be exactly one word
        // cannot be covered by a filler header: merge it into its
        // successor (the last slice's gap lies above the final top
        // and needs no filler).
        auto slice_live = [&](const Span &s) {
            std::size_t live = 0;
            for (std::size_t r = s.begin; r < s.end; ++r)
                live += regions_.liveBytesInRegion(r);
            return live;
        };
        for (std::size_t i = 0; i + 1 < slices.size();) {
            std::size_t span =
                (slices[i].end - slices[i].begin) * meta->regionSize;
            if (span - slice_live(slices[i]) == kWordSize) {
                slices[i].end = slices[i + 1].end;
                slices.erase(slices.begin() +
                             static_cast<std::ptrdiff_t>(i) + 1);
            } else {
                ++i;
            }
        }
    }

    // Persist the plan before gcInProgress is raised: recovery must
    // rebuild the *identical* slice-aware summary.
    meta->gcSliceCount = slices.size();
    for (std::size_t i = 0; i < slices.size(); ++i)
        meta->setGcSlice(i, slices[i].begin, slices[i].end,
                         slices[i].begin);
    dev_.flush(reinterpret_cast<Addr>(&meta->gcSliceCount),
               sizeof(Word));
    dev_.flush(reinterpret_cast<Addr>(meta->gcSlices),
               slices.size() * PjhMetadata::kGcSliceWords *
                   sizeof(Word));
    dev_.fence();

    sliceBegins_.clear();
    for (const Span &s : slices)
        sliceBegins_.push_back(s.begin);
    // Re-derive only the destinations: the per-region live counts
    // from buildSummary() are partition-independent.
    regions_.applySlices(sliceBegins_);
}

void
PjhCompactor::loadSlices()
{
    const PjhMetadata *meta = h_.meta_;
    std::size_t n = meta->gcSliceCount;
    if (n == 0 || n > PjhMetadata::kMaxGcSlices)
        panic("PJH recovery: corrupt compaction-slice table");
    sliceBegins_.clear();
    for (std::size_t i = 0; i < n; ++i)
        sliceBegins_.push_back(meta->gcSliceBegin(i));
    regions_.buildSummary(h_.marks_, dataPhys_, sliceBegins_);
}

Addr
PjhCompactor::forwardStored(Addr stored) const
{
    Addr phys = stored + static_cast<Addr>(delta_);
    return regions_.forwardee(phys, h_.marks_) - dataPhys_ + dataStored_;
}

Addr
PjhCompactor::newTopPhys() const
{
    return regions_.newTop();
}

void
PjhCompactor::writeRootJournal()
{
    PjhMetadata *meta = h_.meta_;
    auto *journal = reinterpret_cast<RootJournalEntry *>(
        reinterpret_cast<Addr>(dev_.base()) + meta->rootJournalOff);
    Word count = 0;
    h_.names_.forEach([&](NameEntry &e) {
        if (e.kind != static_cast<Word>(NameKind::kRoot) ||
            e.value == kNullAddr) {
            return;
        }
        Addr stored = e.value;
        Addr phys = stored + static_cast<Addr>(delta_);
        if (!h_.containsData(phys))
            return;
        if (count >= meta->rootJournalCapacity)
            panic("PJH GC: root journal overflow");
        journal[count].slotIndex = h_.names_.indexOf(&e);
        journal[count].destOffset =
            (regions_.forwardee(phys, h_.marks_)) - dataPhys_;
        ++count;
    });
    dev_.flush(reinterpret_cast<Addr>(journal),
               count * sizeof(RootJournalEntry));
    meta->rootJournalCount = count;
    dev_.flush(reinterpret_cast<Addr>(&meta->rootJournalCount),
               sizeof(Word));
    dev_.fence();
}

void
PjhCompactor::applyRootJournal()
{
    PjhMetadata *meta = h_.meta_;
    auto *journal = reinterpret_cast<RootJournalEntry *>(
        reinterpret_cast<Addr>(dev_.base()) + meta->rootJournalOff);
    bool dirty = false;
    for (Word i = 0; i < meta->rootJournalCount; ++i) {
        NameEntry *e = h_.names_.entryAt(journal[i].slotIndex);
        Word new_value = dataStored_ + journal[i].destOffset;
        if (e->value != new_value) {
            e->value = new_value;
            dev_.flush(reinterpret_cast<Addr>(&e->value), sizeof(Word));
            dirty = true;
        }
    }
    if (dirty)
        dev_.fence();
}

void
PjhCompactor::copyWithFixups(Addr src_phys, Addr dest_phys,
                             std::size_t size)
{
    if (dest_phys != src_phys) {
        std::memmove(reinterpret_cast<void *>(dest_phys),
                     reinterpret_cast<const void *>(src_phys), size);
    }
    // Rewrite data-heap references through the summary; the klass
    // ref is segment-relative and does not move.
    Oop moved(dest_phys);
    Word kraw = moved.klassRefRaw();
    auto *img = reinterpret_cast<const KlassImage *>(
        static_cast<Addr>((kraw & ~Oop::kKlassPersistentTag) +
                          static_cast<Addr>(delta_)));
    auto fix = [&](Addr slot) {
        Addr v = loadWord(slot);
        if (v == kNullAddr)
            return;
        Addr phys = v + static_cast<Addr>(delta_);
        if (h_.containsData(phys))
            storeWord(slot, forwardStored(v));
    };
    if (img->isArray()) {
        if (img->elemType() == FieldType::kRef) {
            std::uint64_t n = moved.arrayLength();
            for (std::uint64_t i = 0; i < n; ++i)
                fix(moved.elemAddr(i, kWordSize));
        }
    } else {
        const FieldImage *fields = img->fields();
        for (Word i = 0; i < img->fieldCount; ++i) {
            if (static_cast<FieldType>(fields[i].type) == FieldType::kRef)
                fix(moved.addr() + fields[i].offset);
        }
    }
}

void
PjhCompactor::processObject(Addr src_phys, std::size_t size)
{
    PjhMetadata *meta = h_.meta_;
    Addr dest_phys = regions_.forwardee(src_phys, h_.marks_);
    Oop dest(dest_phys);
    Oop src(src_phys);
    Word src_off = src_phys - dataPhys_;

    bool overlap =
        dest_phys < src_phys + size && src_phys < dest_phys + size;

    if (!overlap) {
        // Plain evacuation: the intact source is the undo log. Note:
        // unlike the paper's region evacuation, sliding compaction
        // may later reuse this source address as another object's
        // destination, so the source header must NOT be stamped —
        // only the copied header carries the current timestamp.
        copyWithFixups(src_phys, dest_phys, size);
        dev_.flush(dest_phys, size);
        dev_.fence();
        dest.setGcTimestamp(stamp_);
        dev_.persist(dest_phys, kWordSize);
        (void)src;
        return;
    }

    if (dest_phys == src_phys) {
        // In place. If no reference actually changes, content is
        // already correct — only the timestamp needs to move.
        bool changed = false;
        pjhRawForEachRefSlotWithDelta(src, delta_, [&](Addr slot) {
            Addr v = loadWord(slot);
            if (v == kNullAddr)
                return;
            Addr phys = v + static_cast<Addr>(delta_);
            if (h_.containsData(phys) && forwardStored(v) != v)
                changed = true;
        });
        if (!changed) {
            dest.setGcTimestamp(stamp_);
            dev_.persist(dest_phys, kWordSize);
            return;
        }
    }

    // Overlapping (or in-place-with-changes) move: stage the source
    // in the bounce buffer so recovery keeps an intact undo copy.
    // The buffer is shared across slice workers; the lock keeps the
    // owner-tag protocol single-owner, so a crash still finds at
    // most one staged object, and its whole protocol (stage, tag,
    // move, stamp) is durable before the next owner is tagged.
    std::lock_guard<std::mutex> bounce_guard(bounceMu_);
    Addr bounce = reinterpret_cast<Addr>(dev_.base()) + meta->bounceOff;
    if (size > meta->bounceSize)
        panic("PJH GC: object exceeds bounce buffer");
    std::memcpy(reinterpret_cast<void *>(bounce),
                reinterpret_cast<const void *>(src_phys), size);
    dev_.flush(bounce, size);
    dev_.fence();
    meta->bounceOwnerOffset = src_off;
    dev_.persist(reinterpret_cast<Addr>(&meta->bounceOwnerOffset),
                 sizeof(Word));

    std::memmove(reinterpret_cast<void *>(dest_phys),
                 reinterpret_cast<const void *>(bounce), size);
    copyWithFixups(dest_phys, dest_phys, size);
    dev_.flush(dest_phys, size);
    dev_.fence();
    dest.setGcTimestamp(stamp_);
    dev_.persist(dest_phys, kWordSize);
}

void
PjhCompactor::plugSliceGap(Addr gap, std::size_t bytes)
{
    // Recovery runs pre-rebase: express the filler's klass ref in
    // the stored address space (delta_ == 0 online).
    h_.writeFillerHeader(
        gap, bytes,
        h_.fillerInstanceImage_ - static_cast<Addr>(delta_),
        h_.fillerArrayImage_ - static_cast<Addr>(delta_));
    // Full persist (not just a staged flush): the filler must be
    // durable before the slice cursor is even *written* — an
    // unfenced dirty cursor line can survive a crash under random
    // cache eviction, and "slice done" must always imply "gap
    // parses".
    dev_.persist(gap, bytes >= ObjectLayout::kArrayHeaderSize
                          ? ObjectLayout::kArrayHeaderSize
                          : ObjectLayout::kHeaderSize);
}

void
PjhCompactor::processSlice(std::size_t s, bool resume,
                           const std::atomic<bool> *abort)
{
    PjhMetadata *meta = h_.meta_;
    Addr limit = dataPhys_ + meta->topOffset;
    std::size_t begin = meta->gcSliceBegin(s);
    std::size_t end = meta->gcSliceEnd(s);
    std::size_t start = begin;
    if (resume)
        start = std::max<std::size_t>(start, meta->gcSliceCursor(s));

    for (std::size_t r = start; r < end; ++r) {
        if (abort && abort->load(std::memory_order_relaxed))
            return;
        Addr rbase = dataPhys_ + r * meta->regionSize;
        bool any = false;
        if (rbase < limit && !(resume && h_.regionBits_.test(r))) {
            Addr rend = rbase + meta->regionSize;
            Addr scan = rbase;
            while (true) {
                if (abort && abort->load(std::memory_order_relaxed))
                    return;
                Addr src = h_.marks_.nextMarkedObject(
                    scan, rend < limit ? rend : limit);
                if (src == kNullAddr)
                    break;
                any = true;
                std::size_t size = h_.marks_.liveSizeAt(src);
                bool done = false;
                if (resume) {
                    Addr dest_phys = regions_.forwardee(src, h_.marks_);
                    // Recovery redo check: a destination header
                    // already carrying the current stamp means this
                    // object's protocol completed before the crash.
                    // If the bounce buffer owns this source, the
                    // staged copy is the authoritative source.
                    if (Oop(dest_phys).gcTimestamp() == stamp_)
                        done = true;
                    else if (meta->bounceOwnerOffset ==
                             src - dataPhys_) {
                        // Redo from the bounce copy: the source bytes
                        // may be half-overwritten by the crashed move.
                        Addr bounce =
                            reinterpret_cast<Addr>(dev_.base()) +
                            meta->bounceOff;
                        std::memcpy(reinterpret_cast<void *>(src),
                                    reinterpret_cast<const void *>(
                                        bounce),
                                    size);
                    }
                }
                if (!done)
                    processObject(src, size);
                scan = src + size;
            }
        }
        // Before the final cursor advance, plug the inter-slice gap
        // so "slice done" durably implies "heap parses through it".
        // The last slice's gap lies above the new top.
        if (r + 1 == end && s + 1 < meta->gcSliceCount) {
            Addr packed = regions_.packedEnd(begin, end);
            Addr gap_end = dataPhys_ + end * meta->regionSize;
            if (packed < gap_end)
                plugSliceGap(packed, gap_end - packed);
        }
        // Durable progress: region bitmap bit (concurrent slices may
        // share a bitmap word — set atomically) plus the slice's
        // cursor, committed with one fence after the region's
        // objects are durable.
        if (any) {
            h_.regionBits_.setAtomic(r);
            dev_.flush(reinterpret_cast<Addr>(
                           h_.regionBits_.data() + r / 64),
                       sizeof(Word));
        }
        meta->setGcSliceCursor(s, r + 1);
        dev_.flush(
            reinterpret_cast<Addr>(
                &meta->gcSlices[s * PjhMetadata::kGcSliceWords]),
            PjhMetadata::kGcSliceWords * sizeof(Word));
        dev_.fence();
    }
}

void
PjhCompactor::compact(bool resume, unsigned workers)
{
    PjhMetadata *meta = h_.meta_;
    std::size_t num_slices = meta->gcSliceCount;
    if (num_slices == 0 || num_slices > PjhMetadata::kMaxGcSlices)
        panic("PJH GC: compact without a planned slice table");

    unsigned effective =
        static_cast<unsigned>(std::min<std::size_t>(
            std::max(workers, 1u), num_slices));
    if (effective <= 1) {
        for (std::size_t s = 0; s < num_slices; ++s)
            processSlice(s, resume, nullptr);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> abort{false};
    std::mutex err_mu;
    std::exception_ptr err;
    auto body = [&]() {
        try {
            for (;;) {
                std::size_t s =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (s >= num_slices ||
                    abort.load(std::memory_order_relaxed))
                    return;
                processSlice(s, resume, &abort);
            }
        } catch (...) {
            {
                std::lock_guard<std::mutex> g(err_mu);
                if (!err)
                    err = std::current_exception();
            }
            abort.store(true, std::memory_order_relaxed);
        }
    };

    h_.gcPool_.run(effective, [&](unsigned) { body(); });
    // A SimulatedCrash (or any worker failure) propagates to the
    // caller once every worker has stopped touching the device.
    if (err)
        std::rethrow_exception(err);
}

void
PjhCompactor::finish()
{
    PjhMetadata *meta = h_.meta_;
    Word new_top_off = regions_.newTop() - dataPhys_;
    meta->topOffset = new_top_off;
    dev_.persist(reinterpret_cast<Addr>(&meta->topOffset), sizeof(Word));
    // Compaction rewrote the heap under every registered TLAB chunk:
    // retire the slot table *before* the in-collection flag drops,
    // so an unclean reboot can never run tail repair against stale
    // chunk bounds on a compacted heap.
    h_.clearTlabSlots();
    meta->gcInProgress = 0;
    dev_.persist(reinterpret_cast<Addr>(&meta->gcInProgress),
                 sizeof(Word));
    h_.top_ = dataPhys_ + new_top_off;
    // Invalidate the per-thread windows so the next allocation of
    // each thread carves afresh.
    h_.tlabEpoch_.fetch_add(1, std::memory_order_release);
}

// ---------------------------------------------------------------------
// PjhGc
// ---------------------------------------------------------------------

PjhGc::PjhGc(PjhHeap &heap, VolatileHeap *volatile_heap)
    : h_(heap), vh_(volatile_heap)
{}

bool
PjhGc::isFillerRef(Addr ref) const
{
    Addr img = Oop(ref).klassImage();
    return img == h_.fillerInstanceImage_ || img == h_.fillerArrayImage_;
}

void
PjhGc::markRef(Addr ref)
{
    if (ref == kNullAddr || !h_.containsData(ref))
        return;
    if (h_.marks_.isMarked(ref))
        return;
    // Filler space (retired TLAB tails, repaired gaps) is never
    // user-reachable; a stale volatile slot pointing at it must not
    // resurrect it.
    if (isFillerRef(ref))
        return;
    Oop obj(ref);
    h_.marks_.markObject(ref, pjhRawObjectSize(obj));
    ++markedCount_;
    markStack_.push_back(ref);
}

void
PjhGc::visitDramSlots(const SlotVisitor &visitor)
{
    if (!vh_)
        return;
    vh_->handles().forEachSlot(visitor);
    vh_->forEachObject([&](Oop o) { o.forEachRefSlot(visitor); });
}

void
PjhGc::markPhase()
{
    h_.marks_.clearAll();
    h_.regionBits_.clearAll();
    markedCount_ = 0;

    unsigned workers = h_.gcThreads();
    if (workers > 1) {
        parallelMark(workers);
        return;
    }

    auto root_visitor = [this](Addr slot) { markRef(loadWord(slot)); };

    h_.names_.forEach([&](NameEntry &e) {
        if (e.kind == static_cast<Word>(NameKind::kRoot))
            markRef(e.value);
    });
    visitDramSlots(root_visitor);

    while (!markStack_.empty()) {
        Oop obj(markStack_.back());
        markStack_.pop_back();
        pjhRawForEachRefSlot(obj, root_visitor);
    }
}

void
PjhGc::parallelMark(unsigned num_workers)
{
    // DRAM root slots are enumerated once (the volatile-side visitors
    // are not range-addressable) and striped across workers, like the
    // name-table index space.
    std::vector<Addr> dram_slots;
    visitDramSlots([&](Addr slot) { dram_slots.push_back(slot); });

    std::vector<MarkWorker> workers(num_workers);
    std::atomic<std::uint64_t> pending{0};
    std::atomic<unsigned> roots_done{0};
    std::atomic<bool> failed{false};

    // Claim an object for worker @p me: the CAS on the start bit
    // guarantees exactly one worker pushes it.
    auto claim = [&](Addr ref, MarkWorker &me) {
        if (ref == kNullAddr || !h_.containsData(ref))
            return;
        if (isFillerRef(ref))
            return;
        Oop obj(ref);
        std::size_t size = pjhRawObjectSize(obj);
        if (!h_.marks_.tryMarkObject(ref, size))
            return;
        ++me.marked;
        pending.fetch_add(1, std::memory_order_acq_rel);
        std::lock_guard<std::mutex> g(me.mu);
        me.stack.push_back(ref);
    };

    std::size_t name_cap = h_.names_.capacity();
    std::size_t n_dram = dram_slots.size();
    std::mutex err_mu;
    std::exception_ptr err;

    auto body = [&](unsigned wi) {
        MarkWorker &me = workers[wi];
        // Root stripe 1: name-table slots [lo, hi).
        std::size_t lo = name_cap * wi / num_workers;
        std::size_t hi = name_cap * (wi + 1) / num_workers;
        for (std::size_t i = lo; i < hi; ++i) {
            NameEntry *e = h_.names_.entryAt(i);
            if (e->state == NameEntry::kValid &&
                e->kind == static_cast<Word>(NameKind::kRoot))
                claim(e->value, me);
        }
        // Root stripe 2: pre-collected DRAM slots.
        std::size_t dlo = n_dram * wi / num_workers;
        std::size_t dhi = n_dram * (wi + 1) / num_workers;
        for (std::size_t i = dlo; i < dhi; ++i)
            claim(loadWord(dram_slots[i]), me);
        roots_done.fetch_add(1, std::memory_order_acq_rel);

        // Trace: drain the local stack, steal when empty. Workers
        // may only exit once every root stripe is scanned and no
        // claimed object is still unscanned (pending == 0).
        for (;;) {
            Addr obj = kNullAddr;
            {
                std::lock_guard<std::mutex> g(me.mu);
                if (!me.stack.empty()) {
                    obj = me.stack.back();
                    me.stack.pop_back();
                }
            }
            if (obj == kNullAddr) {
                for (unsigned t = 1; t < num_workers && obj == kNullAddr;
                     ++t) {
                    MarkWorker &victim =
                        workers[(wi + t) % num_workers];
                    std::vector<Addr> loot;
                    {
                        std::lock_guard<std::mutex> g(victim.mu);
                        if (!victim.stack.empty()) {
                            std::size_t take =
                                (victim.stack.size() + 1) / 2;
                            loot.assign(victim.stack.begin(),
                                        victim.stack.begin() +
                                            static_cast<std::ptrdiff_t>(
                                                take));
                            victim.stack.erase(
                                victim.stack.begin(),
                                victim.stack.begin() +
                                    static_cast<std::ptrdiff_t>(take));
                        }
                    }
                    if (!loot.empty()) {
                        obj = loot.back();
                        loot.pop_back();
                        if (!loot.empty()) {
                            std::lock_guard<std::mutex> g(me.mu);
                            me.stack.insert(me.stack.end(),
                                            loot.begin(), loot.end());
                        }
                    }
                }
            }
            if (obj != kNullAddr) {
                pjhRawForEachRefSlot(Oop(obj), [&](Addr slot) {
                    claim(loadWord(slot), me);
                });
                pending.fetch_sub(1, std::memory_order_acq_rel);
                continue;
            }
            if (failed.load(std::memory_order_acquire))
                break;
            if (roots_done.load(std::memory_order_acquire) ==
                    num_workers &&
                pending.load(std::memory_order_acquire) == 0)
                break;
            std::this_thread::yield();
        }
    };

    auto guarded = [&](unsigned wi) {
        try {
            body(wi);
        } catch (...) {
            {
                std::lock_guard<std::mutex> g(err_mu);
                if (!err)
                    err = std::current_exception();
            }
            // Marking performs no persistence events, so failures
            // here are programming errors (panic/fatal throw); the
            // flag lets sibling workers exit without touching the
            // pending counter, which they may still be decrementing.
            failed.store(true, std::memory_order_release);
        }
    };

    h_.gcPool_.run(num_workers, guarded);
    if (err)
        std::rethrow_exception(err);

    for (const MarkWorker &w : workers)
        markedCount_ += w.marked;
}

void
PjhGc::fixVolatileSide(const PjhCompactor &compactor)
{
    auto fixer = [&](Addr slot) {
        Addr ref = loadWord(slot);
        if (ref == kNullAddr || !h_.containsData(ref))
            return;
        // Only marked objects have meaningful forwardees: a stale
        // volatile slot pointing at filler space (or anything else
        // the mark phase did not reach) must not be forwarded into
        // whatever garbage now occupies that destination.
        if (!h_.marks_.isMarked(ref))
            return;
        storeWord(slot, compactor.forwardStored(ref));
    };
    visitDramSlots(fixer);
}

void
PjhGc::collect()
{
    NvmDevice &dev = h_.device();
    PjhMetadata *meta = h_.meta_;
    unsigned workers = h_.gcThreads();

    // --- Mark, then persist the heap sketch. -------------------------
    std::uint64_t t_mark = gcNowNs();
    markPhase();
    Addr base = reinterpret_cast<Addr>(dev.base());
    dev.flush(base + meta->markStartOff, meta->markBytes);
    dev.flush(base + meta->markLiveOff, meta->markBytes);
    dev.flush(base + meta->regionBitmapOff, meta->regionBitmapBytes);
    dev.fence();
    h_.mutableStats().lastGcMarkNs = gcNowNs() - t_mark;

    h_.mutableStats().lastGcCompactNs =
        commitAndCompact(workers, /*concurrent=*/false);
    persistCycleStats(markedCount_, 0, 0, 0, 0);
}

std::uint64_t
PjhGc::commitAndCompact(unsigned workers, bool concurrent)
{
    NvmDevice &dev = h_.device();
    PjhMetadata *meta = h_.meta_;

    // --- Stale every object (bump + persist the global stamp). ------
    meta->globalTimestamp += 1;
    meta->bounceOwnerOffset = kNoneWord;
    dev.flush(reinterpret_cast<Addr>(&meta->globalTimestamp),
              sizeof(Word));
    dev.flush(reinterpret_cast<Addr>(&meta->bounceOwnerOffset),
              sizeof(Word));
    dev.fence();

    // --- Summary + slice plan + root journal, then arm recovery. ----
    PjhCompactor compactor(h_, 0);
    compactor.buildSummary();
    compactor.planSlices(workers);
    compactor.writeRootJournal();
    meta->gcInProgress = 1;
    dev.persist(reinterpret_cast<Addr>(&meta->gcInProgress),
                sizeof(Word));
    if (concurrent) {
        // The snapshot is committed: compaction owns recovery from
        // here (gcInProgress wins over gcMarkingActive on attach), so
        // the marking-epoch record retires. Strictly after the
        // gcInProgress persist — the reverse order would leave a
        // crash window where neither flag is set over a half-moved
        // heap.
        meta->gcMarkingActive = 0;
        dev.persist(reinterpret_cast<Addr>(&meta->gcMarkingActive),
                    sizeof(Word));
    }

    // --- Compact (slice-parallel). -----------------------------------
    std::uint64_t t_compact = gcNowNs();
    compactor.applyRootJournal();
    compactor.compact(/*resume=*/false, workers);
    compactor.finish();
    std::uint64_t compact_ns = gcNowNs() - t_compact;

    // --- Volatile side is recomputable; repair it last. --------------
    fixVolatileSide(compactor);
    return compact_ns;
}

void
PjhGc::persistCycleStats(std::uint64_t marked, std::uint64_t conc_ns,
                         std::uint64_t remark_ns, std::uint64_t shaded,
                         std::uint64_t floating)
{
    NvmDevice &dev = h_.device();
    PjhMetadata *meta = h_.meta_;
    meta->gcLastMarked = marked;
    meta->gcCollections += 1;
    meta->gcLastConcMarkNs = conc_ns;
    meta->gcLastRemarkNs = remark_ns;
    meta->gcLastShaded = shaded;
    meta->gcLastFloating = floating;
    // One contiguous block (gcLastMarked .. gcLastFloating), flushed
    // with the same discipline as the other metadata words so a
    // post-crash reader never sees stale values.
    dev.flush(reinterpret_cast<Addr>(&meta->gcLastMarked),
              reinterpret_cast<Addr>(&meta->gcLastFloating) +
                  sizeof(Word) -
                  reinterpret_cast<Addr>(&meta->gcLastMarked));
    dev.fence();

    PjhStats &st = h_.mutableStats();
    st.lastGcMarked = marked;
    st.lastGcConcMarkNs = conc_ns;
    st.lastGcRemarkNs = remark_ns;
    st.lastGcShaded = shaded;
    st.lastGcFloating = floating;
}

// ---------------------------------------------------------------------
// Concurrent SATB cycle
// ---------------------------------------------------------------------

void
PjhGc::pauseMutators()
{
    h_.gcPhase_.store(static_cast<unsigned>(GcPhase::kPaused),
                      std::memory_order_seq_cst);
    while (h_.allocsInFlight_.load(std::memory_order_seq_cst) != 0 ||
           h_.rootOpsInFlight_.load(std::memory_order_seq_cst) != 0) {
        // Die as the simulated power cut rather than wait for a
        // mutator the injector already killed mid-bracket.
        CrashInjector *inj = h_.device().injector();
        if (inj && inj->tripped())
            throw SimulatedCrash();
        std::this_thread::yield();
    }
}

void
PjhGc::traceConcurrent(unsigned num_workers)
{
    std::vector<MarkWorker> workers(num_workers);
    std::atomic<std::uint64_t> pending{0};
    std::atomic<unsigned> roots_done{0};
    std::atomic<bool> failed{false};

    // Claim for worker @p me. Unlike the STW claim, the atomic
    // marked-test comes *before* the header read: refs loaded from
    // slots mutators are actively writing may point at objects
    // allocated during the cycle (born black / shaded on store),
    // whose headers this thread has no happens-before edge to. An
    // unmarked object is pre-snapshot and fully visible.
    auto claim = [&](Addr ref, MarkWorker &me) {
        if (ref == kNullAddr || !h_.containsData(ref))
            return;
        if (h_.marks_.isMarkedAtomic(ref))
            return;
        if (isFillerRef(ref))
            return;
        Oop obj(ref);
        std::size_t size = pjhRawObjectSize(obj);
        if (!h_.marks_.tryMarkObject(ref, size))
            return;
        ++me.marked;
        pending.fetch_add(1, std::memory_order_acq_rel);
        std::lock_guard<std::mutex> g(me.mu);
        me.stack.push_back(ref);
    };

    std::size_t n_roots = snapshotRoots_.size();
    std::mutex err_mu;
    std::exception_ptr err;

    auto body = [&](unsigned wi) {
        MarkWorker &me = workers[wi];
        // Root stripe: snapshot values captured at the initial
        // safepoint (already filtered to non-null).
        std::size_t lo = n_roots * wi / num_workers;
        std::size_t hi = n_roots * (wi + 1) / num_workers;
        for (std::size_t i = lo; i < hi; ++i)
            claim(snapshotRoots_[i], me);
        roots_done.fetch_add(1, std::memory_order_acq_rel);

        // Trace: local stack, then steal-half, then drain the SATB
        // buffer mutators are filling. Exiting with a non-empty SATB
        // buffer is benign — the remark safepoint sweeps the residue;
        // exiting with pending != 0 is not (a claimed object would
        // never be scanned), hence the termination condition.
        for (;;) {
            Addr obj = kNullAddr;
            {
                std::lock_guard<std::mutex> g(me.mu);
                if (!me.stack.empty()) {
                    obj = me.stack.back();
                    me.stack.pop_back();
                }
            }
            if (obj == kNullAddr) {
                for (unsigned t = 1; t < num_workers && obj == kNullAddr;
                     ++t) {
                    MarkWorker &victim =
                        workers[(wi + t) % num_workers];
                    std::vector<Addr> loot;
                    {
                        std::lock_guard<std::mutex> g(victim.mu);
                        if (!victim.stack.empty()) {
                            std::size_t take =
                                (victim.stack.size() + 1) / 2;
                            loot.assign(victim.stack.begin(),
                                        victim.stack.begin() +
                                            static_cast<std::ptrdiff_t>(
                                                take));
                            victim.stack.erase(
                                victim.stack.begin(),
                                victim.stack.begin() +
                                    static_cast<std::ptrdiff_t>(take));
                        }
                    }
                    if (!loot.empty()) {
                        obj = loot.back();
                        loot.pop_back();
                        if (!loot.empty()) {
                            std::lock_guard<std::mutex> g(me.mu);
                            me.stack.insert(me.stack.end(),
                                            loot.begin(), loot.end());
                        }
                    }
                }
            }
            if (obj == kNullAddr) {
                // SATB entries are already claimed (the barrier owns
                // the CAS); only their children need scanning, so
                // they enter the pending protocol here.
                std::vector<Addr> satb;
                {
                    std::lock_guard<std::mutex> g(h_.satbMu_);
                    satb.swap(h_.satbBuffer_);
                }
                if (!satb.empty()) {
                    pending.fetch_add(satb.size(),
                                      std::memory_order_acq_rel);
                    obj = satb.back();
                    satb.pop_back();
                    if (!satb.empty()) {
                        std::lock_guard<std::mutex> g(me.mu);
                        me.stack.insert(me.stack.end(), satb.begin(),
                                        satb.end());
                    }
                }
            }
            if (obj != kNullAddr) {
                pjhRawForEachRefSlot(Oop(obj), [&](Addr slot) {
                    claim(loadWord(slot), me);
                });
                pending.fetch_sub(1, std::memory_order_acq_rel);
                continue;
            }
            if (failed.load(std::memory_order_acquire))
                break;
            if (roots_done.load(std::memory_order_acquire) ==
                    num_workers &&
                pending.load(std::memory_order_acquire) == 0)
                break;
            std::this_thread::yield();
        }
    };

    auto guarded = [&](unsigned wi) {
        try {
            body(wi);
        } catch (...) {
            {
                std::lock_guard<std::mutex> g(err_mu);
                if (!err)
                    err = std::current_exception();
            }
            failed.store(true, std::memory_order_release);
        }
    };

    h_.gcPool_.run(num_workers, guarded);
    if (err)
        std::rethrow_exception(err);

    for (const MarkWorker &w : workers)
        markedCount_ += w.marked;
}

void
PjhGc::remark()
{
    // Mutators are drained, so this runs single-threaded against a
    // quiesced heap — the plain STW marking machinery applies.
    //
    // 1. SATB residue the markers never drained: entries are already
    //    marked, only their children need scanning.
    {
        std::lock_guard<std::mutex> g(h_.satbMu_);
        for (Addr ref : h_.satbBuffer_)
            markStack_.push_back(ref);
        h_.satbBuffer_.clear();
    }
    // 2. Current roots, re-enumerated fresh: name-table entries and
    //    DRAM slots may have been written since the snapshot (new
    //    values were insertion-shaded, but a slot filled from a
    //    pre-snapshot local needs this rescan).
    auto root_visitor = [this](Addr slot) { markRef(loadWord(slot)); };
    h_.names_.forEach([&](NameEntry &e) {
        if (e.kind == static_cast<Word>(NameKind::kRoot))
            markRef(e.value);
    });
    visitDramSlots(root_visitor);
    // 3. Fixpoint.
    while (!markStack_.empty()) {
        Oop obj(markStack_.back());
        markStack_.pop_back();
        pjhRawForEachRefSlot(obj, root_visitor);
    }
}

void
PjhGc::collectConcurrent()
{
    NvmDevice &dev = h_.device();
    PjhMetadata *meta = h_.meta_;
    unsigned workers = std::max(1u, h_.gcThreads());

    // Lift the safepoint (and the ownership flag) on every exit path:
    // a SimulatedCrash mid-cycle must not strand mutators spinning in
    // waitWhilePaused on a phase nobody will ever clear.
    struct PhaseReset
    {
        PjhHeap &h;
        ~PhaseReset()
        {
            h.gcActive_.store(false, std::memory_order_seq_cst);
            h.gcPhase_.store(static_cast<unsigned>(GcPhase::kIdle),
                             std::memory_order_seq_cst);
        }
    } phase_reset{h_};

    // --- Initial safepoint: arm the epoch record, snapshot roots. ---
    std::uint64_t t0 = gcNowNs();
    pauseMutators();
    h_.gcActive_.store(true, std::memory_order_seq_cst);

    h_.marks_.clearAll();
    h_.regionBits_.clearAll();
    markedCount_ = 0;
    h_.shadeCount_.store(0, std::memory_order_relaxed);
    h_.bornBlack_.store(0, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> g(h_.satbMu_);
        h_.satbBuffer_.clear();
    }

    // Durable marking-epoch record, armed before any bitmap line of
    // this cycle can reach media: recovery finding it without
    // gcInProgress knows the bitmaps may be torn and discards the
    // cycle (see PjhMetadata::gcMarkingActive).
    meta->gcMarkingActive = 1;
    meta->gcMarkEpoch += 1;
    dev.flush(reinterpret_cast<Addr>(&meta->gcMarkingActive),
              2 * sizeof(Word));
    dev.fence();

    // Snapshot root *values*, not slot addresses: the volatile side
    // keeps running under the concurrent trace, and its own GC may
    // move the DRAM objects those slots live in.
    snapshotRoots_.clear();
    h_.names_.forEach([&](NameEntry &e) {
        if (e.kind == static_cast<Word>(NameKind::kRoot) &&
            e.value != kNullAddr)
            snapshotRoots_.push_back(e.value);
    });
    visitDramSlots([&](Addr slot) {
        Addr v = loadWord(slot);
        if (v != kNullAddr)
            snapshotRoots_.push_back(v);
    });

    // --- Concurrent trace: markers race mutators. -------------------
    h_.gcPhase_.store(static_cast<unsigned>(GcPhase::kMarking),
                      std::memory_order_seq_cst);
    std::uint64_t initial_pause_ns = gcNowNs() - t0;
    std::uint64_t t_conc = gcNowNs();
    traceConcurrent(workers);
    std::uint64_t conc_ns = gcNowNs() - t_conc;

    // --- Final safepoint: remark to fixpoint, persist the sketch. ---
    std::uint64_t t_remark = gcNowNs();
    pauseMutators();
    remark();
    Addr base = reinterpret_cast<Addr>(dev.base());
    dev.flush(base + meta->markStartOff, meta->markBytes);
    dev.flush(base + meta->markLiveOff, meta->markBytes);
    dev.flush(base + meta->regionBitmapOff, meta->regionBitmapBytes);
    dev.fence();
    std::uint64_t remark_ns = gcNowNs() - t_remark;
    h_.mutableStats().lastGcMarkNs = conc_ns + remark_ns;

    // --- Commit + compact: same tail as the STW cycle. --------------
    h_.mutableStats().lastGcCompactNs =
        commitAndCompact(workers, /*concurrent=*/true);

    std::uint64_t shaded =
        h_.shadeCount_.load(std::memory_order_relaxed);
    std::uint64_t born = h_.bornBlack_.load(std::memory_order_relaxed);
    persistCycleStats(markedCount_ + shaded + born, conc_ns, remark_ns,
                      shaded, shaded + born);
    // Mutator-visible stop time: initial pause plus remark-to-finish
    // (mutators stay paused through compaction; PhaseReset lifts the
    // safepoint when we return).
    h_.mutableStats().lastGcPauseNs =
        initial_pause_ns + (gcNowNs() - t_remark);
}

} // namespace espresso
