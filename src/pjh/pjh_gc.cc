#include "pjh/pjh_gc.hh"

#include <cstring>

#include "pjh/klass_segment.hh"
#include "util/logging.hh"

namespace espresso {

namespace {

/** One root-redo-journal record. */
struct RootJournalEntry
{
    Word slotIndex;  ///< name-table slot
    Word destOffset; ///< new value, as a data-heap offset
};

} // namespace

// ---------------------------------------------------------------------
// PjhCompactor
// ---------------------------------------------------------------------

PjhCompactor::PjhCompactor(PjhHeap &heap, std::ptrdiff_t delta)
    : h_(heap), dev_(heap.device()), delta_(delta),
      dataPhys_(heap.dataBase_),
      dataStored_(heap.dataBase_ - static_cast<Addr>(delta)),
      regions_(heap.dataBase_, heap.meta_->dataSize,
               heap.meta_->regionSize),
      stamp_(static_cast<std::uint16_t>(heap.meta_->globalTimestamp))
{}

void
PjhCompactor::buildSummary()
{
    regions_.buildSummary(h_.marks_, dataPhys_);
}

Addr
PjhCompactor::forwardStored(Addr stored) const
{
    Addr phys = stored + static_cast<Addr>(delta_);
    return regions_.forwardee(phys, h_.marks_) - dataPhys_ + dataStored_;
}

Addr
PjhCompactor::newTopPhys() const
{
    return regions_.newTop();
}

void
PjhCompactor::writeRootJournal()
{
    PjhMetadata *meta = h_.meta_;
    auto *journal = reinterpret_cast<RootJournalEntry *>(
        reinterpret_cast<Addr>(dev_.base()) + meta->rootJournalOff);
    Word count = 0;
    h_.names_.forEach([&](NameEntry &e) {
        if (e.kind != static_cast<Word>(NameKind::kRoot) ||
            e.value == kNullAddr) {
            return;
        }
        Addr stored = e.value;
        Addr phys = stored + static_cast<Addr>(delta_);
        if (!h_.containsData(phys))
            return;
        if (count >= meta->rootJournalCapacity)
            panic("PJH GC: root journal overflow");
        journal[count].slotIndex = h_.names_.indexOf(&e);
        journal[count].destOffset =
            (regions_.forwardee(phys, h_.marks_)) - dataPhys_;
        ++count;
    });
    dev_.flush(reinterpret_cast<Addr>(journal),
               count * sizeof(RootJournalEntry));
    meta->rootJournalCount = count;
    dev_.flush(reinterpret_cast<Addr>(&meta->rootJournalCount),
               sizeof(Word));
    dev_.fence();
}

void
PjhCompactor::applyRootJournal()
{
    PjhMetadata *meta = h_.meta_;
    auto *journal = reinterpret_cast<RootJournalEntry *>(
        reinterpret_cast<Addr>(dev_.base()) + meta->rootJournalOff);
    bool dirty = false;
    for (Word i = 0; i < meta->rootJournalCount; ++i) {
        NameEntry *e = h_.names_.entryAt(journal[i].slotIndex);
        Word new_value = dataStored_ + journal[i].destOffset;
        if (e->value != new_value) {
            e->value = new_value;
            dev_.flush(reinterpret_cast<Addr>(&e->value), sizeof(Word));
            dirty = true;
        }
    }
    if (dirty)
        dev_.fence();
}

void
PjhCompactor::copyWithFixups(Addr src_phys, Addr dest_phys,
                             std::size_t size)
{
    if (dest_phys != src_phys) {
        std::memmove(reinterpret_cast<void *>(dest_phys),
                     reinterpret_cast<const void *>(src_phys), size);
    }
    // Rewrite data-heap references through the summary; the klass
    // ref is segment-relative and does not move.
    Oop moved(dest_phys);
    Word kraw = moved.klassRefRaw();
    auto *img = reinterpret_cast<const KlassImage *>(
        static_cast<Addr>((kraw & ~Oop::kKlassPersistentTag) +
                          static_cast<Addr>(delta_)));
    auto fix = [&](Addr slot) {
        Addr v = loadWord(slot);
        if (v == kNullAddr)
            return;
        Addr phys = v + static_cast<Addr>(delta_);
        if (h_.containsData(phys))
            storeWord(slot, forwardStored(v));
    };
    if (img->isArray()) {
        if (img->elemType() == FieldType::kRef) {
            std::uint64_t n = moved.arrayLength();
            for (std::uint64_t i = 0; i < n; ++i)
                fix(moved.elemAddr(i, kWordSize));
        }
    } else {
        const FieldImage *fields = img->fields();
        for (Word i = 0; i < img->fieldCount; ++i) {
            if (static_cast<FieldType>(fields[i].type) == FieldType::kRef)
                fix(moved.addr() + fields[i].offset);
        }
    }
}

void
PjhCompactor::processObject(Addr src_phys, std::size_t size)
{
    PjhMetadata *meta = h_.meta_;
    Addr dest_phys = regions_.forwardee(src_phys, h_.marks_);
    Oop dest(dest_phys);
    Oop src(src_phys);
    Word src_off = src_phys - dataPhys_;

    bool overlap =
        dest_phys < src_phys + size && src_phys < dest_phys + size;

    if (!overlap) {
        // Plain evacuation: the intact source is the undo log. Note:
        // unlike the paper's region evacuation, sliding compaction
        // may later reuse this source address as another object's
        // destination, so the source header must NOT be stamped —
        // only the copied header carries the current timestamp.
        copyWithFixups(src_phys, dest_phys, size);
        dev_.flush(dest_phys, size);
        dev_.fence();
        dest.setGcTimestamp(stamp_);
        dev_.persist(dest_phys, kWordSize);
        (void)src;
        return;
    }

    if (dest_phys == src_phys) {
        // In place. If no reference actually changes, content is
        // already correct — only the timestamp needs to move.
        bool changed = false;
        pjhRawForEachRefSlotWithDelta(src, delta_, [&](Addr slot) {
            Addr v = loadWord(slot);
            if (v == kNullAddr)
                return;
            Addr phys = v + static_cast<Addr>(delta_);
            if (h_.containsData(phys) && forwardStored(v) != v)
                changed = true;
        });
        if (!changed) {
            dest.setGcTimestamp(stamp_);
            dev_.persist(dest_phys, kWordSize);
            return;
        }
    }

    // Overlapping (or in-place-with-changes) move: stage the source
    // in the bounce buffer so recovery keeps an intact undo copy.
    Addr bounce = reinterpret_cast<Addr>(dev_.base()) + meta->bounceOff;
    if (size > meta->bounceSize)
        panic("PJH GC: object exceeds bounce buffer");
    std::memcpy(reinterpret_cast<void *>(bounce),
                reinterpret_cast<const void *>(src_phys), size);
    dev_.flush(bounce, size);
    dev_.fence();
    meta->bounceOwnerOffset = src_off;
    dev_.persist(reinterpret_cast<Addr>(&meta->bounceOwnerOffset),
                 sizeof(Word));

    std::memmove(reinterpret_cast<void *>(dest_phys),
                 reinterpret_cast<const void *>(bounce), size);
    copyWithFixups(dest_phys, dest_phys, size);
    dev_.flush(dest_phys, size);
    dev_.fence();
    dest.setGcTimestamp(stamp_);
    dev_.persist(dest_phys, kWordSize);
}

void
PjhCompactor::compact(bool resume)
{
    PjhMetadata *meta = h_.meta_;
    Addr limit = dataPhys_ + meta->topOffset;
    std::size_t num_regions = meta->dataSize / meta->regionSize;

    for (std::size_t r = 0; r < num_regions; ++r) {
        Addr rbase = dataPhys_ + r * meta->regionSize;
        if (rbase >= limit)
            break;
        if (resume && h_.regionBits_.test(r))
            continue;
        Addr rend = rbase + meta->regionSize;
        Addr scan = rbase;
        bool any = false;
        while (true) {
            Addr src = h_.marks_.nextMarkedObject(
                scan, rend < limit ? rend : limit);
            if (src == kNullAddr)
                break;
            any = true;
            std::size_t size = h_.marks_.liveSizeAt(src);
            bool done = false;
            if (resume) {
                Addr dest_phys = regions_.forwardee(src, h_.marks_);
                // Recovery redo check: a destination header already
                // carrying the current stamp means this object's
                // protocol completed before the crash. If the bounce
                // buffer owns this source, the staged copy is the
                // authoritative source.
                if (Oop(dest_phys).gcTimestamp() == stamp_)
                    done = true;
                else if (meta->bounceOwnerOffset == src - dataPhys_) {
                    // Redo from the bounce copy: the source bytes may
                    // be half-overwritten by the crashed move.
                    Addr bounce =
                        reinterpret_cast<Addr>(dev_.base()) +
                        meta->bounceOff;
                    std::memcpy(reinterpret_cast<void *>(src),
                                reinterpret_cast<const void *>(bounce),
                                size);
                }
            }
            if (!done)
                processObject(src, size);
            scan = src + size;
        }
        // Mark the region fully processed so recovery can skip it.
        if (any) {
            h_.regionBits_.set(r);
            dev_.flush(reinterpret_cast<Addr>(
                           h_.regionBits_.data() + r / 64),
                       sizeof(Word));
            dev_.fence();
        }
    }
}

void
PjhCompactor::finish()
{
    PjhMetadata *meta = h_.meta_;
    Word new_top_off = regions_.newTop() - dataPhys_;
    meta->topOffset = new_top_off;
    dev_.persist(reinterpret_cast<Addr>(&meta->topOffset), sizeof(Word));
    meta->gcInProgress = 0;
    dev_.persist(reinterpret_cast<Addr>(&meta->gcInProgress),
                 sizeof(Word));
    h_.top_ = dataPhys_ + new_top_off;
    // Compaction rewrote the heap under every active TLAB: retire
    // the registered chunks and invalidate the per-thread windows so
    // the next allocation of each thread carves afresh.
    h_.clearTlabSlots();
    h_.tlabEpoch_.fetch_add(1, std::memory_order_release);
}

// ---------------------------------------------------------------------
// PjhGc
// ---------------------------------------------------------------------

PjhGc::PjhGc(PjhHeap &heap, VolatileHeap *volatile_heap)
    : h_(heap), vh_(volatile_heap)
{}

void
PjhGc::markRef(Addr ref)
{
    if (ref == kNullAddr || !h_.containsData(ref))
        return;
    if (h_.marks_.isMarked(ref))
        return;
    Oop obj(ref);
    h_.marks_.markObject(ref, pjhRawObjectSize(obj));
    ++markedCount_;
    markStack_.push_back(ref);
}

void
PjhGc::visitDramSlots(const SlotVisitor &visitor)
{
    if (!vh_)
        return;
    vh_->handles().forEachSlot(visitor);
    vh_->forEachObject([&](Oop o) { o.forEachRefSlot(visitor); });
}

void
PjhGc::markPhase()
{
    h_.marks_.clearAll();
    h_.regionBits_.clearAll();
    markedCount_ = 0;

    auto root_visitor = [this](Addr slot) { markRef(loadWord(slot)); };

    h_.names_.forEach([&](NameEntry &e) {
        if (e.kind == static_cast<Word>(NameKind::kRoot))
            markRef(e.value);
    });
    visitDramSlots(root_visitor);

    while (!markStack_.empty()) {
        Oop obj(markStack_.back());
        markStack_.pop_back();
        pjhRawForEachRefSlot(obj, root_visitor);
    }
}

void
PjhGc::fixVolatileSide(const PjhCompactor &compactor)
{
    auto fixer = [&](Addr slot) {
        Addr ref = loadWord(slot);
        if (ref != kNullAddr && h_.containsData(ref))
            storeWord(slot, compactor.forwardStored(ref));
    };
    visitDramSlots(fixer);
}

void
PjhGc::collect()
{
    NvmDevice &dev = h_.device();
    PjhMetadata *meta = h_.meta_;

    // --- Mark, then persist the heap sketch. -------------------------
    markPhase();
    Addr base = reinterpret_cast<Addr>(dev.base());
    dev.flush(base + meta->markStartOff, meta->markBytes);
    dev.flush(base + meta->markLiveOff, meta->markBytes);
    dev.flush(base + meta->regionBitmapOff, meta->regionBitmapBytes);
    dev.fence();

    // --- Stale every object (bump + persist the global stamp). ------
    meta->globalTimestamp += 1;
    meta->bounceOwnerOffset = kNoneWord;
    dev.flush(reinterpret_cast<Addr>(&meta->globalTimestamp),
              sizeof(Word));
    dev.flush(reinterpret_cast<Addr>(&meta->bounceOwnerOffset),
              sizeof(Word));
    dev.fence();

    // --- Summary (idempotent) + root journal, then arm recovery. ----
    PjhCompactor compactor(h_, 0);
    compactor.buildSummary();
    compactor.writeRootJournal();
    meta->gcInProgress = 1;
    dev.persist(reinterpret_cast<Addr>(&meta->gcInProgress),
                sizeof(Word));

    // --- Compact. -----------------------------------------------------
    compactor.applyRootJournal();
    compactor.compact(/*resume=*/false);
    compactor.finish();

    // --- Volatile side is recomputable; repair it last. --------------
    fixVolatileSide(compactor);
    h_.mutableStats().lastGcMarked = markedCount_;
}

} // namespace espresso
