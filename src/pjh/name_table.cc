#include "pjh/name_table.hh"

#include <cstring>

#include "nvm/nvm_device.hh"
#include "util/logging.hh"

namespace espresso {

NameTable::NameTable(NvmDevice *device, Addr base, std::size_t capacity)
    : device_(device), base_(base), capacity_(capacity)
{}

std::size_t
NameTable::hashName(const std::string &name)
{
    // FNV-1a.
    std::uint64_t h = 1469598103934665603ull;
    for (char c : name) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 1099511628211ull;
    }
    return h;
}

NameEntry *
NameTable::find(const std::string &name, NameKind kind) const
{
    if (name.size() > NameEntry::kMaxName)
        fatal("name table: name too long: " + name);
    std::size_t start = hashName(name) % capacity_;
    for (std::size_t i = 0; i < capacity_; ++i) {
        NameEntry &e = entries()[(start + i) % capacity_];
        if (e.state == NameEntry::kEmpty)
            return nullptr;
        if (e.state == NameEntry::kValid &&
            e.kind == static_cast<Word>(kind) &&
            std::strncmp(e.name, name.c_str(), NameEntry::kMaxName) == 0) {
            return &e;
        }
    }
    return nullptr;
}

void
NameTable::insert(const std::string &name, NameKind kind, Word value)
{
    if (name.empty())
        fatal("name table: empty name");
    if (name.size() > NameEntry::kMaxName)
        fatal("name table: name too long: " + name);
    if (find(name, kind))
        fatal("name table: duplicate name: " + name);

    std::size_t start = hashName(name) % capacity_;
    for (std::size_t i = 0; i < capacity_; ++i) {
        NameEntry &e = entries()[(start + i) % capacity_];
        if (e.state != NameEntry::kEmpty)
            continue;

        // Crash-consistent publication: payload first, then the
        // state word; a crash in between leaves an ignorable slot.
        e.kind = static_cast<Word>(kind);
        e.value = value;
        e.reserved = 0;
        std::memset(e.name, 0, sizeof(e.name));
        std::memcpy(e.name, name.c_str(), name.size());
        device_->persist(reinterpret_cast<Addr>(&e), sizeof(NameEntry));

        e.state = NameEntry::kValid;
        device_->persist(reinterpret_cast<Addr>(&e.state), sizeof(Word));
        return;
    }
    fatal("name table: full (capacity " + std::to_string(capacity_) + ")");
}

void
NameTable::updateValue(NameEntry *entry, Word value)
{
    entry->value = value;
    device_->persist(reinterpret_cast<Addr>(&entry->value), sizeof(Word));
}

void
NameTable::forEach(const std::function<void(NameEntry &)> &fn) const
{
    for (std::size_t i = 0; i < capacity_; ++i) {
        NameEntry &e = entries()[i];
        if (e.state == NameEntry::kValid)
            fn(e);
    }
}

std::size_t
NameTable::count() const
{
    std::size_t n = 0;
    forEach([&n](NameEntry &) { ++n; });
    return n;
}

} // namespace espresso
