#include "pjh/name_table.hh"

#include <cstring>

#include "nvm/nvm_device.hh"
#include "util/logging.hh"

namespace espresso {

namespace {

inline Word
loadState(const NameEntry &e)
{
    return std::atomic_ref<Word>(const_cast<Word &>(e.state))
        .load(std::memory_order_acquire);
}

inline void
publishState(NameEntry &e, Word state)
{
    std::atomic_ref<Word>(e.state).store(state,
                                         std::memory_order_release);
}

} // namespace

NameTable::NameTable(NvmDevice *device, Addr base, std::size_t capacity)
    : device_(device), base_(base), capacity_(capacity),
      locks_(std::make_unique<SpinLock[]>(kStripes))
{}

std::size_t
NameTable::hashName(const std::string &name)
{
    // FNV-1a.
    std::uint64_t h = 1469598103934665603ull;
    for (char c : name) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 1099511628211ull;
    }
    return h;
}

NameEntry *
NameTable::find(const std::string &name, NameKind kind) const
{
    if (name.size() > NameEntry::kMaxName)
        return nullptr; // cannot be stored, so cannot be present
    std::size_t start = hashName(name) % capacity_;
    for (std::size_t i = 0; i < capacity_; ++i) {
        NameEntry &e = entries()[(start + i) % capacity_];
        Word state = loadState(e);
        if (state == NameEntry::kEmpty)
            return nullptr;
        if (state == NameEntry::kValid &&
            e.kind == static_cast<Word>(kind) &&
            std::strncmp(e.name, name.c_str(), NameEntry::kMaxName) == 0) {
            return &e;
        }
    }
    return nullptr;
}

bool
NameTable::probeAndClaim(const std::string &name, NameKind kind,
                         Word value, bool update_existing)
{
    std::size_t start = hashName(name) % capacity_;
    for (std::size_t i = 0; i < capacity_; ++i) {
        std::size_t idx = (start + i) % capacity_;
        NameEntry &e = entries()[idx];
        Word state = loadState(e);
        if (state == NameEntry::kValid) {
            if (e.kind == static_cast<Word>(kind) &&
                std::strncmp(e.name, name.c_str(),
                             NameEntry::kMaxName) == 0) {
                if (!update_existing)
                    return false;
                updateValue(&e, value);
                return true;
            }
            continue;
        }
        // Empty under the acquire load: claim it under its stripe
        // lock. A racing claimer may beat us — re-examine the same
        // bucket as valid in that case (no empty bucket is ever
        // skipped, which is what makes duplicate detection sound).
        SpinGuard g(stripeFor(idx));
        if (loadState(e) != NameEntry::kEmpty) {
            --i;
            continue;
        }
        // Crash-consistent publication: payload first, then the
        // state word; a crash in between leaves an ignorable slot.
        e.kind = static_cast<Word>(kind);
        std::atomic_ref<Word>(e.value).store(value,
                                             std::memory_order_relaxed);
        e.reserved = 0;
        std::memset(e.name, 0, sizeof(e.name));
        std::memcpy(e.name, name.c_str(), name.size());
        device_->persist(reinterpret_cast<Addr>(&e), sizeof(NameEntry));

        publishState(e, NameEntry::kValid);
        device_->persist(reinterpret_cast<Addr>(&e.state), sizeof(Word));
        return true;
    }
    fatal("name table: full (capacity " + std::to_string(capacity_) + ")");
}

void
NameTable::insert(const std::string &name, NameKind kind, Word value)
{
    if (name.empty())
        fatal("name table: empty name");
    if (name.size() > NameEntry::kMaxName)
        fatal("name table: name too long: " + name);
    if (!probeAndClaim(name, kind, value, /*update_existing=*/false))
        fatal("name table: duplicate name: " + name);
}

void
NameTable::upsert(const std::string &name, NameKind kind, Word value)
{
    if (name.empty())
        fatal("name table: empty name");
    if (name.size() > NameEntry::kMaxName)
        fatal("name table: name too long: " + name);
    probeAndClaim(name, kind, value, /*update_existing=*/true);
}

void
NameTable::updateValue(NameEntry *entry, Word value)
{
    std::atomic_ref<Word>(entry->value).store(value,
                                              std::memory_order_release);
    device_->persist(reinterpret_cast<Addr>(&entry->value), sizeof(Word));
}

void
NameTable::forEach(const std::function<void(NameEntry &)> &fn) const
{
    for (std::size_t i = 0; i < capacity_; ++i) {
        NameEntry &e = entries()[i];
        if (loadState(e) == NameEntry::kValid)
            fn(e);
    }
}

std::size_t
NameTable::count() const
{
    std::size_t n = 0;
    forEach([&n](NameEntry &) { ++n; });
    return n;
}

} // namespace espresso
