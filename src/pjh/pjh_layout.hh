/**
 * @file
 * On-NVM layout of a Persistent Java Heap instance.
 *
 * A PJH occupies one NvmDevice (paper Fig. 7/8):
 *
 *   [metadata area][name table][Klass segment][root journal]
 *   [mark bitmap: start bits][mark bitmap: live bits]
 *   [region bitmap][bounce buffer][data heap]
 *
 * The metadata area holds the address hint, heap size, the persisted
 * replica of the allocation top, the global GC timestamp, the
 * in-collection flag, and the offsets of every other component —
 * everything needed to reload or recover the heap (paper §3.1, Fig 8).
 *
 * All cross-restart state is stored as device offsets except object
 * data itself: object klass refs and reference fields hold absolute
 * virtual addresses, which is why a reload at a different base
 * address needs the thorough rebase scan of §3.3.
 */

#ifndef ESPRESSO_PJH_PJH_LAYOUT_HH
#define ESPRESSO_PJH_PJH_LAYOUT_HH

#include <cstdint>

#include "util/common.hh"

namespace espresso {

/** Marker for "no value" offsets. */
constexpr Word kNoneWord = ~Word(0);

/** Creation-time sizing of a PJH instance. */
struct PjhConfig
{
    /** Data-heap capacity in bytes (rounded to a region multiple). */
    std::size_t dataSize = 16u << 20;

    /** Name table capacity (entries). */
    std::size_t nameTableCapacity = 1024;

    /** Klass segment capacity in bytes. */
    std::size_t klassSegSize = 256u << 10;

    /** GC region granularity. */
    std::size_t regionSize = 64u << 10;

    /**
     * Bounce buffer capacity; also the maximum single-object size the
     * heap accepts, since the crash-consistent GC stages overlapping
     * moves through the bounce buffer.
     */
    std::size_t bounceSize = 1u << 20;

    /** Application undo-log capacity (ACID helper, §6.2). */
    std::size_t undoLogSize = 256u << 10;

    /**
     * Per-thread TLAB chunk size (bytes). Each allocating thread
     * carves private chunks of this size from the shared top under
     * the heap lock and bumps inside them lock-free; larger chunks
     * amortize the carve lock better but waste more tail space on
     * detach. Overridable at runtime with ESPRESSO_TLAB_BYTES.
     */
    std::size_t tlabSize = 64u << 10;
};

/** The persistent metadata area (device offset 0). */
struct PjhMetadata
{
    static constexpr Word kMagic = 0x455350524a480001ull; // "ESPRJH",v1
    static constexpr Word kVersion = 4;

    /** Maximum concurrently registered TLAB chunks. Threads beyond
     * this fall back to fully locked, immediately durable
     * allocation. */
    static constexpr std::size_t kMaxTlabSlots = 64;

    /** Words per TLAB slot: {startOffset, endOffset} plus padding to
     * a full cache line so two threads never persist the same line
     * when registering their chunks. */
    static constexpr std::size_t kTlabSlotWords = 8;

    /** Maximum compaction slices of one collection (also the upper
     * bound on useful gcThreads). */
    static constexpr std::size_t kMaxGcSlices = 32;

    /** Words per GC-slice slot: {beginRegion, endRegion,
     * cursorRegion} plus padding to a full cache line so concurrent
     * slice workers never persist the same line when advancing their
     * cursors. */
    static constexpr std::size_t kGcSliceWords = 8;

    Word magic;
    Word version;

    /** Virtual address of the data heap at last save (paper: address
     * hint, used to remap the heap to the same place). */
    Word addressHint;

    /** Total device size in bytes (paper: heap size). */
    Word heapSize;

    /** 1 when the heap was detached cleanly; 0 while attached. An
     * unclean attach repairs the allocation tail before use. */
    Word cleanShutdown;

    /** Persisted replica of the allocation top (data-heap offset). */
    Word topOffset;

    /** Persisted allocation top of the Klass segment. */
    Word klassSegTopOffset;

    /** Current GC epoch (paper §4.2 timestamp). */
    Word globalTimestamp;

    /** 1 between the start of a compaction and its completion. */
    Word gcInProgress;

    /** Data-heap offset of the object staged in the bounce buffer,
     * or kNoneWord. */
    Word bounceOwnerOffset;

    /** Number of valid entries in the root redo journal. */
    Word rootJournalCount;

    /** @name Component placement (device offsets / element counts) */
    /// @{
    Word nameTableOff;
    Word nameTableCapacity;
    Word klassSegOff;
    Word klassSegSize;
    Word rootJournalOff;
    Word rootJournalCapacity;
    Word markStartOff;
    Word markLiveOff;
    Word markBytes;
    Word regionBitmapOff;
    Word regionBitmapBytes;
    Word regionSize;
    Word bounceOff;
    Word bounceSize;
    Word undoLogOff;
    Word undoLogSize;
    Word dataOff;
    Word dataSize;
    /// @}

    /** Persisted TLAB chunk size (bytes); 0 on pre-TLAB images. */
    Word tlabBytes;

    /** Pad so the TLAB slot table below starts cache-line aligned
     * (the metadata area begins at device offset 0). */
    Word tlabPad[10];

    /**
     * The active-TLAB registry (§4.1 extended for concurrency): slot
     * i holds the data-heap offsets [start, end) of the chunk a
     * thread is currently bumping into, or start == end == 0 when
     * free. Chunks keep a filler object covering [bump, end) at all
     * times, so recovery repairs at most one torn tail per slot —
     * a torn allocation inside a registered chunk is plugged up to
     * the chunk's end, never past it.
     */
    Word tlabSlots[kMaxTlabSlots * kTlabSlotWords];

    Word
    tlabSlotStart(std::size_t i) const
    {
        return tlabSlots[i * kTlabSlotWords];
    }

    Word
    tlabSlotEnd(std::size_t i) const
    {
        return tlabSlots[i * kTlabSlotWords + 1];
    }

    void
    setTlabSlot(std::size_t i, Word start, Word end)
    {
        tlabSlots[i * kTlabSlotWords] = start;
        tlabSlots[i * kTlabSlotWords + 1] = end;
    }

    /** @name Persistent GC statistics (§4.2 bookkeeping)
     *
     * Written with the same flush+fence discipline as the other
     * metadata words at the end of every collection, so post-crash
     * readers never see stale values. */
    /// @{
    Word gcLastMarked;  ///< objects marked by the last collection
    Word gcCollections; ///< completed collections over the heap's life
    /// @}

    /** Number of compaction slices planned for the in-progress (or
     * most recent) collection; persisted before gcInProgress is
     * raised so recovery rebuilds the identical slice-aware summary. */
    Word gcSliceCount;

    /** @name Concurrent-marking epoch record
     *
     * gcMarkingActive is persisted (flush+fence) *before* the first
     * mark-bitmap line of a concurrent cycle is dirtied and cleared
     * only after the cycle either commits its mark state (gcInProgress
     * raised — compaction owns recovery from here) or finishes. The
     * recovery rule is therefore: gcInProgress set → the snapshot is
     * provably durable, resume the compaction; gcMarkingActive alone →
     * the crash hit mutator/marker overlap, the bitmap may be torn,
     * discard the cycle (clear bitmaps, bump gcMarkDiscards). */
    /// @{
    Word gcMarkingActive; ///< 1 while a concurrent mark is in flight
    Word gcMarkEpoch;     ///< cycles started (concurrent or STW)
    Word gcMarkDiscards;  ///< cycles discarded by crash recovery
    /// @}

    /** @name Per-cycle pause/overlap stats (persisted with the two
     * words above at the end of every collection) */
    /// @{
    Word gcLastConcMarkNs; ///< concurrent-mark wall time (0 when STW)
    Word gcLastRemarkNs;   ///< final remark pause (0 when STW)
    Word gcLastShaded;     ///< refs shaded by the write barrier
    Word gcLastFloating;   ///< floating-garbage upper bound
                           ///< (shaded + born-black allocations)
    /// @}

    /** Pad so the GC slice table below stays cache-line aligned. */
    Word gcStatsPad[6];

    /**
     * The per-slice compaction progress table (§4.2 extended for
     * region parallelism): slot i holds {beginRegion, endRegion,
     * cursorRegion}. A slice's worker processes regions
     * [beginRegion, endRegion) in ascending order and durably
     * advances cursorRegion past each completed region, so
     * compact(resume=true) recovery replays only the regions at or
     * past each slice's cursor. One cache line per slot: concurrent
     * workers never flush each other's lines.
     */
    Word gcSlices[kMaxGcSlices * kGcSliceWords];

    Word
    gcSliceBegin(std::size_t i) const
    {
        return gcSlices[i * kGcSliceWords];
    }

    Word
    gcSliceEnd(std::size_t i) const
    {
        return gcSlices[i * kGcSliceWords + 1];
    }

    Word
    gcSliceCursor(std::size_t i) const
    {
        return gcSlices[i * kGcSliceWords + 2];
    }

    void
    setGcSlice(std::size_t i, Word begin, Word end, Word cursor)
    {
        gcSlices[i * kGcSliceWords] = begin;
        gcSlices[i * kGcSliceWords + 1] = end;
        gcSlices[i * kGcSliceWords + 2] = cursor;
    }

    void
    setGcSliceCursor(std::size_t i, Word cursor)
    {
        gcSlices[i * kGcSliceWords + 2] = cursor;
    }
};

static_assert(offsetof(PjhMetadata, tlabSlots) % 64 == 0,
              "each TLAB slot must own a whole cache line");
static_assert(sizeof(PjhMetadata::tlabSlots) ==
                  PjhMetadata::kMaxTlabSlots * 64,
              "one cache line per TLAB slot");
static_assert(offsetof(PjhMetadata, gcSlices) % 64 == 0,
              "each GC slice slot must own a whole cache line");
static_assert(sizeof(PjhMetadata::gcSlices) ==
                  PjhMetadata::kMaxGcSlices * 64,
              "one cache line per GC slice slot");

/**
 * Compute component offsets for @p cfg.
 *
 * @return total device bytes required; fills @p meta's placement
 * fields (identity fields are left untouched).
 */
std::size_t computeLayout(const PjhConfig &cfg, PjhMetadata &meta);

} // namespace espresso

#endif // ESPRESSO_PJH_PJH_LAYOUT_HH
