/**
 * @file
 * On-NVM layout of a Persistent Java Heap instance.
 *
 * A PJH occupies one NvmDevice (paper Fig. 7/8):
 *
 *   [metadata area][name table][Klass segment][root journal]
 *   [mark bitmap: start bits][mark bitmap: live bits]
 *   [region bitmap][bounce buffer][data heap]
 *
 * The metadata area holds the address hint, heap size, the persisted
 * replica of the allocation top, the global GC timestamp, the
 * in-collection flag, and the offsets of every other component —
 * everything needed to reload or recover the heap (paper §3.1, Fig 8).
 *
 * All cross-restart state is stored as device offsets except object
 * data itself: object klass refs and reference fields hold absolute
 * virtual addresses, which is why a reload at a different base
 * address needs the thorough rebase scan of §3.3.
 */

#ifndef ESPRESSO_PJH_PJH_LAYOUT_HH
#define ESPRESSO_PJH_PJH_LAYOUT_HH

#include <cstdint>

#include "util/common.hh"

namespace espresso {

/** Marker for "no value" offsets. */
constexpr Word kNoneWord = ~Word(0);

/** Creation-time sizing of a PJH instance. */
struct PjhConfig
{
    /** Data-heap capacity in bytes (rounded to a region multiple). */
    std::size_t dataSize = 16u << 20;

    /** Name table capacity (entries). */
    std::size_t nameTableCapacity = 1024;

    /** Klass segment capacity in bytes. */
    std::size_t klassSegSize = 256u << 10;

    /** GC region granularity. */
    std::size_t regionSize = 64u << 10;

    /**
     * Bounce buffer capacity; also the maximum single-object size the
     * heap accepts, since the crash-consistent GC stages overlapping
     * moves through the bounce buffer.
     */
    std::size_t bounceSize = 1u << 20;

    /** Application undo-log capacity (ACID helper, §6.2). */
    std::size_t undoLogSize = 256u << 10;
};

/** The persistent metadata area (device offset 0). */
struct PjhMetadata
{
    static constexpr Word kMagic = 0x455350524a480001ull; // "ESPRJH",v1
    static constexpr Word kVersion = 1;

    Word magic;
    Word version;

    /** Virtual address of the data heap at last save (paper: address
     * hint, used to remap the heap to the same place). */
    Word addressHint;

    /** Total device size in bytes (paper: heap size). */
    Word heapSize;

    /** 1 when the heap was detached cleanly; 0 while attached. An
     * unclean attach repairs the allocation tail before use. */
    Word cleanShutdown;

    /** Persisted replica of the allocation top (data-heap offset). */
    Word topOffset;

    /** Persisted allocation top of the Klass segment. */
    Word klassSegTopOffset;

    /** Current GC epoch (paper §4.2 timestamp). */
    Word globalTimestamp;

    /** 1 between the start of a compaction and its completion. */
    Word gcInProgress;

    /** Data-heap offset of the object staged in the bounce buffer,
     * or kNoneWord. */
    Word bounceOwnerOffset;

    /** Number of valid entries in the root redo journal. */
    Word rootJournalCount;

    /** @name Component placement (device offsets / element counts) */
    /// @{
    Word nameTableOff;
    Word nameTableCapacity;
    Word klassSegOff;
    Word klassSegSize;
    Word rootJournalOff;
    Word rootJournalCapacity;
    Word markStartOff;
    Word markLiveOff;
    Word markBytes;
    Word regionBitmapOff;
    Word regionBitmapBytes;
    Word regionSize;
    Word bounceOff;
    Word bounceSize;
    Word undoLogOff;
    Word undoLogSize;
    Word dataOff;
    Word dataSize;
    /// @}
};

/**
 * Compute component offsets for @p cfg.
 *
 * @return total device bytes required; fills @p meta's placement
 * fields (identity fields are left untouched).
 */
std::size_t computeLayout(const PjhConfig &cfg, PjhMetadata &meta);

} // namespace espresso

#endif // ESPRESSO_PJH_PJH_LAYOUT_HH
