#include "pjh/pjh_recovery.hh"

#include "pjh/pjh_gc.hh"
#include "util/logging.hh"

namespace espresso {

PjhRecovery::PjhRecovery(PjhHeap &heap, std::ptrdiff_t delta)
    : h_(heap), delta_(delta)
{}

void
PjhRecovery::run()
{
    if (!h_.meta().gcInProgress)
        panic("PjhRecovery::run without an interrupted collection");

    PjhCompactor compactor(h_, delta_);
    // Step 1 is implicit: the mark bitmap is read in place from NVM.
    // Step 2: regenerate the volatile summary from the persisted
    // bitmap and the persisted compaction-slice plan — recovery must
    // compute the exact forwardees the crashed collection used.
    compactor.loadSlices();
    // Step 3: finish the collection with the same algorithm. The
    // per-slice durable cursors limit the replay to unfinished
    // slices; replayed objects whose destination header already
    // carries the current stamp are skipped, so nothing moves twice.
    compactor.applyRootJournal();
    compactor.compact(/*resume=*/true);
    compactor.finish();
}

} // namespace espresso
