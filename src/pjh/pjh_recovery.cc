#include "pjh/pjh_recovery.hh"

#include "pjh/pjh_gc.hh"
#include "util/logging.hh"

namespace espresso {

PjhRecovery::PjhRecovery(PjhHeap &heap, std::ptrdiff_t delta)
    : h_(heap), delta_(delta)
{}

void
PjhRecovery::run()
{
    if (!h_.meta().gcInProgress)
        panic("PjhRecovery::run without an interrupted collection");

    PjhCompactor compactor(h_, delta_);
    // Step 1 is implicit: the mark bitmap is read in place from NVM.
    // Step 2: regenerate the volatile summary from the persisted
    // bitmap and the persisted compaction-slice plan — recovery must
    // compute the exact forwardees the crashed collection used.
    compactor.loadSlices();
    // Step 3: finish the collection with the same algorithm. The
    // per-slice durable cursors limit the replay to unfinished
    // slices; replayed objects whose destination header already
    // carries the current stamp are skipped, so nothing moves twice.
    compactor.applyRootJournal();
    compactor.compact(/*resume=*/true);
    compactor.finish();

    // A concurrent cycle that reached the commit point leaves its
    // marking-epoch record set (it is cleared after gcInProgress is
    // raised, and the crash may have hit between the two persists or
    // anywhere in the compaction). The collection is now complete;
    // retire the record so the next attach doesn't discard a cycle
    // that in fact finished.
    PjhMetadata *meta = &h_.meta();
    if (meta->gcMarkingActive) {
        meta->gcMarkingActive = 0;
        h_.device().persist(
            reinterpret_cast<Addr>(&meta->gcMarkingActive),
            sizeof(Word));
    }
}

void
PjhRecovery::discardMarkingCycle()
{
    PjhMetadata *meta = &h_.meta();
    if (meta->gcInProgress || !meta->gcMarkingActive)
        panic("PjhRecovery::discardMarkingCycle: not an uncommitted "
              "marking cycle");
    meta->gcMarkingActive = 0;
    meta->gcMarkDiscards += 1;
    h_.device().flush(reinterpret_cast<Addr>(&meta->gcMarkingActive),
                      sizeof(Word));
    h_.device().flush(reinterpret_cast<Addr>(&meta->gcMarkDiscards),
                      sizeof(Word));
    h_.device().fence();
}

} // namespace espresso
