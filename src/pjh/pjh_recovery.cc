#include "pjh/pjh_recovery.hh"

#include "pjh/pjh_gc.hh"
#include "util/logging.hh"

namespace espresso {

PjhRecovery::PjhRecovery(PjhHeap &heap, std::ptrdiff_t delta)
    : h_(heap), delta_(delta)
{}

void
PjhRecovery::run()
{
    if (!h_.meta().gcInProgress)
        panic("PjhRecovery::run without an interrupted collection");

    PjhCompactor compactor(h_, delta_);
    // Step 1 is implicit: the mark bitmap is read in place from NVM.
    // Step 2: regenerate the volatile summary from it.
    compactor.buildSummary();
    // Step 3: finish the collection with the same algorithm.
    compactor.applyRootJournal();
    compactor.compact(/*resume=*/true);
    compactor.finish();
}

} // namespace espresso
