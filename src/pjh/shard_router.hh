/**
 * @file
 * Consistent-hash routing and the durable ring manifest of a
 * HeapFabric.
 *
 * A fabric spreads named roots and allocations over N PJH instances
 * (each on its own NvmDevice). The ShardRouter is the volatile
 * routing structure: a consistent-hash ring of shard * vnodes points,
 * so a name or key deterministically picks one shard and growing the
 * membership by one shard remaps only ~1/(N+1) of the key space.
 *
 * The RingManifest is the durable side: a small, fixed-layout region
 * on the fabric's own manifest device recording the target
 * membership, the per-shard sizing needed to rebuild an unformatted
 * member, a per-member "formatted" flag, and the committed shard
 * count + epoch. Creation is crash-tolerant:
 *
 *   declare(target, vnodes, cfg)   -- one fence; the fabric now
 *                                     durably exists with 0 members
 *   markFormatted(k)               -- after shard k's own device is
 *                                     durably formatted
 *   commit(n)                      -- epoch++, shardCount = n
 *
 * A crash between a shard's format and the final commit leaves
 * memberState[k] behind; recovery rolls such members forward
 * (re-attaching them) and re-formats members that never reached the
 * flag, then re-commits — so fabric creation is atomic at the
 * declare() fence and idempotent afterwards.
 */

#ifndef ESPRESSO_PJH_SHARD_ROUTER_HH
#define ESPRESSO_PJH_SHARD_ROUTER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "pjh/pjh_layout.hh"
#include "util/common.hh"

namespace espresso {

class NvmDevice;

/** Volatile consistent-hash ring over shard indices [0, N). */
class ShardRouter
{
  public:
    /** Virtual nodes per shard when the caller passes 0. */
    static constexpr unsigned kDefaultVnodes = 64;

    ShardRouter() = default;

    /** Build the ring for @p shards members with @p vnodes points
     * each (0 selects kDefaultVnodes). */
    ShardRouter(unsigned shards, unsigned vnodes);

    unsigned shardCount() const { return shards_; }
    unsigned vnodes() const { return vnodes_; }

    /** Shard owning @p hash (wraps past the highest ring point). */
    unsigned shardForHash(std::uint64_t hash) const;

    /** Route a root/route name. */
    unsigned
    shardForName(const std::string &name) const
    {
        return shardForHash(hashName(name));
    }

    /** Route an integer key (database primary keys). */
    unsigned
    shardForKey(std::uint64_t key) const
    {
        return shardForHash(mix(key));
    }

    /** Remap diff against another epoch's ring: true when @p hash
     * routes to a different shard on @p next than on this ring. */
    bool
    remapped(const ShardRouter &next, std::uint64_t hash) const
    {
        return shardForHash(hash) != next.shardForHash(hash);
    }

    /** FNV-1a with a finalizer; stable across processes. */
    static std::uint64_t hashName(const std::string &name);

    /** splitmix64 finalizer; stable across processes. */
    static std::uint64_t mix(std::uint64_t v);

  private:
    struct Point
    {
        std::uint64_t hash;
        unsigned shard;

        bool
        operator<(const Point &o) const
        {
            return hash < o.hash || (hash == o.hash && shard < o.shard);
        }
    };

    std::vector<Point> ring_;
    unsigned shards_ = 0;
    unsigned vnodes_ = 0;
};

/** The persistent manifest record (manifest-device offset 0). */
struct RingManifestData
{
    static constexpr Word kMagic = 0x45535052464d4e01ull; // "ESPRFAB",v1
    static constexpr Word kVersion = 1;
    static constexpr std::size_t kMaxShards = 64;

    Word magic;
    Word version;

    /** Bumped by every committed membership change. */
    Word epoch;

    /** Committed member count; members [0, shardCount) are live. */
    Word shardCount;

    /** Declared target membership of the in-progress (or completed)
     * create; recovery drives shardCount up to this. */
    Word targetShardCount;

    Word vnodes;

    /** @name Per-shard PjhConfig (uniform across members), so
     * recovery can re-format a member that crashed mid-create. */
    /// @{
    Word dataSize;
    Word nameTableCapacity;
    Word klassSegSize;
    Word regionSize;
    Word bounceSize;
    Word undoLogSize;
    Word tlabSize;
    /// @}

    /**
     * Checksum over the declaration fields (version, target, vnodes,
     * per-shard sizing). The declaration spans more than one cache
     * line, and under random-eviction crashes each unfenced dirty
     * line survives independently — so a magic word alone could
     * survive a torn declare. declared() therefore requires the
     * checksum too; a half-persisted declaration reads as "never
     * declared". epoch/shardCount/memberState are deliberately
     * excluded: they change after the declare and every reachable
     * combination of old/new values is a consistent state recovery
     * rolls forward from.
     */
    Word declChecksum;

    Word pad[2];

    /** 1 once member k's own device is durably formatted. */
    Word memberState[kMaxShards];

    /**
     * @name In-progress membership change (grow/shrink)
     *
     * A durable migration record, declared with the same
     * checksummed-declare pattern as fabric creation: the header
     * below occupies one cache line, and migrCheck folds the fields
     * that define the change — so a torn declare reads back as "no
     * change in progress" and the declare fence is the atomic point
     * past which recovery rolls the change forward. migrEpoch pins
     * the record to the epoch it was declared under: once commit()
     * bumps the epoch the record is stale, and recovery only has
     * post-commit cleanup (forward retirement, member teardown) left.
     */
    /// @{
    Word migrTarget; ///< declared new member count (0 = none)
    Word migrFrom;   ///< member count the change started from
    Word migrEpoch;  ///< epoch the change was declared under
    Word migrCheck;  ///< checksum over the three fields above
    Word migrPad[4];
    /** 1 once source member k's remapped roots are fully streamed. */
    Word migrDone[kMaxShards];
    /// @}

    static constexpr Word kMemberEmpty = 0;
    static constexpr Word kMemberFormatted = 1;

    /** The declaration checksum (FNV-mix over the declared fields). */
    Word computeDeclChecksum() const;

    /** The migration-record checksum (FNV-mix over the header). */
    Word computeMigrChecksum() const;
};

/** View over the manifest region of the fabric's manifest device. */
class RingManifest
{
  public:
    RingManifest() = default;

    /** @param device the fabric's manifest device (offset 0). */
    explicit RingManifest(NvmDevice *device);

    /** Bytes the manifest region needs. */
    static constexpr std::size_t
    persistedBytes()
    {
        return sizeof(RingManifestData);
    }

    /** True when the device carries a valid, committed declaration. */
    bool declared() const;

    /**
     * Durably declare a fabric: zero membership, record the target
     * count, vnodes and per-shard sizing. One fence; the atomic
     * creation point.
     */
    void declare(unsigned target_shards, unsigned vnodes,
                 const PjhConfig &shard_cfg);

    /** Durably flag member @p k as formatted. */
    void markFormatted(unsigned k);

    /** Durably clear member @p k's formatted flag (shrink teardown). */
    void clearMember(unsigned k);

    /** Commit the membership: shardCount = @p n, epoch += 1. */
    void commit(unsigned n);

    /** @name Membership-change (grow/shrink) migration record */
    /// @{

    /** True when a declared migration is pending under the current
     * epoch (the commit fence has not retired it yet). */
    bool migrationDeclared() const;

    /** True when the record survived its own commit fence: the epoch
     * moved past migrEpoch, so only post-commit cleanup remains. */
    bool migrationStale() const;

    /**
     * Durably declare a membership change to @p target members. Two
     * fences: the first retires any stale per-member done flags, the
     * second — the atomic declaration point — publishes the
     * checksummed header. After it, recovery rolls the change
     * forward; before it, nothing happened.
     */
    void declareMigration(unsigned target);

    /** Durably flag source member @p k as fully migrated. */
    void markMigrated(unsigned k);

    bool memberMigrated(unsigned k) const;

    /** The commit fence: shardCount = migrTarget, epoch += 1. The
     * membership change is now durable; the record goes stale. */
    void commitMembership();

    /** Durably retire the migration record after cleanup. */
    void clearMigration();

    /// @}

    const RingManifestData &data() const { return *d_; }

    /** Rebuild the stored per-shard PjhConfig. */
    PjhConfig shardConfig() const;

  private:
    NvmDevice *dev_ = nullptr;
    RingManifestData *d_ = nullptr;
};

} // namespace espresso

#endif // ESPRESSO_PJH_SHARD_ROUTER_HH
