#include "pjh/pjh_layout.hh"

#include "heap/mark_bitmap.hh"
#include "util/logging.hh"

namespace espresso {

namespace {

/** 128-byte name-table entries (see NameTable). */
constexpr std::size_t kNameEntryBytes = 128;

/** 16-byte root-journal entries (slot index, new value). */
constexpr std::size_t kJournalEntryBytes = 16;

} // namespace

std::size_t
computeLayout(const PjhConfig &cfg, PjhMetadata &meta)
{
    std::size_t data_size = alignUp(cfg.dataSize, cfg.regionSize);
    std::size_t mark_bytes =
        alignUp(MarkBitmap::storageBytesFor(data_size), kCacheLineSize);
    std::size_t num_regions = data_size / cfg.regionSize;
    std::size_t region_bitmap_bytes =
        alignUp(BitmapView::bytesFor(num_regions), kCacheLineSize);

    std::size_t off = alignUp(sizeof(PjhMetadata), kCacheLineSize);

    meta.nameTableOff = off;
    meta.nameTableCapacity = cfg.nameTableCapacity;
    off += cfg.nameTableCapacity * kNameEntryBytes;

    meta.klassSegOff = off;
    meta.klassSegSize = alignUp(cfg.klassSegSize, kCacheLineSize);
    off += meta.klassSegSize;

    meta.rootJournalOff = off;
    meta.rootJournalCapacity = cfg.nameTableCapacity;
    off += cfg.nameTableCapacity * kJournalEntryBytes;
    off = alignUp(off, kCacheLineSize);

    meta.markStartOff = off;
    off += mark_bytes;
    meta.markLiveOff = off;
    off += mark_bytes;
    meta.markBytes = mark_bytes;

    meta.regionBitmapOff = off;
    meta.regionBitmapBytes = region_bitmap_bytes;
    meta.regionSize = cfg.regionSize;
    off += region_bitmap_bytes;

    meta.bounceOff = off;
    meta.bounceSize = alignUp(cfg.bounceSize, kCacheLineSize);
    off += meta.bounceSize;

    meta.undoLogOff = off;
    meta.undoLogSize = alignUp(cfg.undoLogSize, kCacheLineSize);
    off += meta.undoLogSize;

    off = alignUp(off, kCacheLineSize);
    meta.dataOff = off;
    meta.dataSize = data_size;
    off += data_size;

    return off;
}

} // namespace espresso
