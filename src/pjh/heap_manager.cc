#include "pjh/heap_manager.hh"

#include <cstring>

#include "util/logging.hh"

namespace espresso {

HeapManager::HeapManager(KlassRegistry *registry,
                         VolatileHeap *volatile_heap, NvmConfig nvm_cfg)
    : registry_(registry), volatileHeap_(volatile_heap), nvmCfg_(nvm_cfg)
{}

HeapManager::~HeapManager()
{
    for (auto &kv : heaps_)
        unwireHeap(kv.second.get());
}

void
HeapManager::setGcThreads(unsigned n)
{
    gcThreads_ = n;
    // n == 0 restores each heap's own default (PjhHeap::setGcThreads
    // interprets 0 the same way).
    for (auto &kv : heaps_)
        kv.second->setGcThreads(n);
}

void
HeapManager::wireHeap(const std::string &name, PjhHeap *heap)
{
    if (gcThreads_ != 0)
        heap->setGcThreads(gcThreads_);
    if (volatileHeap_) {
        volatileHeap_->addExternalSpace(heap);
        VolatileHeap *vh = volatileHeap_;
        heap->setGcTrigger([heap, vh]() { heap->collect(vh); });
        // Persistent roots keep DRAM referents alive: the volatile
        // collectors already see them through the external space.
    } else {
        heap->setGcTrigger([heap]() { heap->collect(nullptr); });
    }
    (void)name;
}

void
HeapManager::unwireHeap(PjhHeap *heap)
{
    if (volatileHeap_)
        volatileHeap_->removeExternalSpace(heap);
}

PjhHeap *
HeapManager::createHeap(const std::string &name, std::size_t data_size)
{
    PjhConfig cfg;
    cfg.dataSize = data_size;
    return createHeap(name, cfg);
}

PjhHeap *
HeapManager::createHeap(const std::string &name, const PjhConfig &cfg)
{
    if (existsHeap(name))
        fatal("createHeap: heap '" + name + "' already exists");
    PjhMetadata scratch{};
    std::size_t total = computeLayout(cfg, scratch);
    auto device = std::make_unique<NvmDevice>(total, nvmCfg_);
    auto heap = PjhHeap::create(device.get(), cfg, registry_);
    PjhHeap *raw = heap.get();
    wireHeap(name, raw);
    devices_[name] = std::move(device);
    heaps_[name] = std::move(heap);
    return raw;
}

PjhHeap *
HeapManager::loadHeap(const std::string &name, SafetyLevel safety)
{
    auto hit = heaps_.find(name);
    if (hit != heaps_.end())
        return hit->second.get();
    auto dit = devices_.find(name);
    if (dit == devices_.end())
        fatal("loadHeap: no heap named '" + name + "'");
    auto heap = PjhHeap::attach(dit->second.get(), registry_, safety);
    PjhHeap *raw = heap.get();
    wireHeap(name, raw);
    heaps_[name] = std::move(heap);
    return raw;
}

bool
HeapManager::existsHeap(const std::string &name) const
{
    return devices_.count(name) != 0;
}

PjhHeap *
HeapManager::heap(const std::string &name) const
{
    auto it = heaps_.find(name);
    return it == heaps_.end() ? nullptr : it->second.get();
}

void
HeapManager::detachHeap(const std::string &name)
{
    auto it = heaps_.find(name);
    if (it == heaps_.end())
        fatal("detachHeap: heap '" + name + "' is not loaded");
    it->second->detach();
    unwireHeap(it->second.get());
    heaps_.erase(it);
}

void
HeapManager::crashHeap(const std::string &name, CrashMode mode,
                       std::uint64_t seed)
{
    auto dit = devices_.find(name);
    if (dit == devices_.end())
        fatal("crashHeap: no heap named '" + name + "'");
    auto hit = heaps_.find(name);
    if (hit != heaps_.end()) {
        unwireHeap(hit->second.get());
        heaps_.erase(hit);
    }
    dit->second->crash(mode, seed);
}

void
HeapManager::migrateHeap(const std::string &name)
{
    auto dit = devices_.find(name);
    if (dit == devices_.end())
        fatal("migrateHeap: no heap named '" + name + "'");
    if (heaps_.count(name))
        fatal("migrateHeap: detach or crash '" + name + "' first");

    NvmDevice &old_dev = *dit->second;
    auto fresh = std::make_unique<NvmDevice>(old_dev.size(), nvmCfg_);
    // Move the durable image byte-for-byte onto the new device (same
    // DIMM contents, different virtual mapping).
    std::memcpy(fresh->base(), old_dev.base(), old_dev.size());
    fresh->shutdownClean();
    dit->second = std::move(fresh);
}

NvmDevice *
HeapManager::deviceOf(const std::string &name) const
{
    auto it = devices_.find(name);
    return it == devices_.end() ? nullptr : it->second.get();
}

} // namespace espresso
