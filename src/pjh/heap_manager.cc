#include "pjh/heap_manager.hh"

#include "util/logging.hh"

namespace espresso {

HeapManager::HeapManager(KlassRegistry *registry,
                         VolatileHeap *volatile_heap, NvmConfig nvm_cfg)
    : registry_(registry), volatileHeap_(volatile_heap), nvmCfg_(nvm_cfg)
{}

HeapManager::~HeapManager() = default;

HeapFabric *
HeapManager::findFabric(const std::string &name) const
{
    // A reserved-but-unbuilt entry (mid-createFabric) reads as
    // absent: racing a lookup against an in-flight create of the
    // same name is the caller's coordination problem, and a null
    // here keeps every accessor's not-found path honest.
    auto it = fabrics_.find(name);
    return it == fabrics_.end() ? nullptr : it->second.get();
}

void
HeapManager::setGcThreads(unsigned n)
{
    std::lock_guard<std::mutex> g(mu_);
    gcThreads_ = n;
    // n == 0 restores each heap's own default (PjhHeap::setGcThreads
    // interprets 0 the same way).
    for (auto &kv : fabrics_)
        kv.second->setGcThreads(n);
}

void
HeapManager::setGcConcurrent(bool on)
{
    std::lock_guard<std::mutex> g(mu_);
    gcConcurrent_ = on ? 1 : 0;
    for (auto &kv : fabrics_)
        if (kv.second)
            kv.second->setGcConcurrent(on);
}

PjhHeap *
HeapManager::createHeap(const std::string &name, std::size_t data_size)
{
    PjhConfig cfg;
    cfg.dataSize = data_size;
    return createHeap(name, cfg);
}

PjhHeap *
HeapManager::createHeap(const std::string &name, const PjhConfig &cfg)
{
    // The classic single-heap surface is exactly a 1-shard fabric.
    return createFabric(name, cfg, 1)->shard(0);
}

HeapFabric *
HeapManager::createFabric(const std::string &name,
                          const PjhConfig &shard_cfg, unsigned shards,
                          unsigned vnodes)
{
    unsigned gc_threads;
    int gc_concurrent;
    {
        // Reserve the name only; the multi-device format below must
        // not stall unrelated registry lookups. A reserved-but-
        // unbuilt entry reads as "exists" to duplicate creates and
        // as "not found" to lookups until it is published.
        std::lock_guard<std::mutex> g(mu_);
        if (fabrics_.count(name))
            fatal("createHeap: heap '" + name + "' already exists");
        fabrics_[name] = nullptr;
        gc_threads = gcThreads_;
        gc_concurrent = gcConcurrent_;
    }

    auto fabric = std::make_unique<HeapFabric>(registry_, volatileHeap_,
                                               nvmCfg_);
    if (gc_threads != 0)
        fabric->setGcThreads(gc_threads);
    if (gc_concurrent >= 0)
        fabric->setGcConcurrent(gc_concurrent != 0);
    FabricConfig fcfg;
    fcfg.shard = shard_cfg;
    fcfg.shards = shards;
    fcfg.vnodes = vnodes;
    try {
        // A simulated power failure mid-create propagates with the
        // reservation released; the crash sweeps re-run creation
        // against a standalone HeapFabric instead, which keeps its
        // devices.
        fabric->create(fcfg);
    } catch (...) {
        std::lock_guard<std::mutex> g(mu_);
        fabrics_.erase(name);
        throw;
    }

    HeapFabric *raw = fabric.get();
    std::lock_guard<std::mutex> g(mu_);
    fabrics_[name] = std::move(fabric);
    return raw;
}

PjhHeap *
HeapManager::loadHeap(const std::string &name, SafetyLevel safety)
{
    return loadFabric(name, safety)->shard(0);
}

HeapFabric *
HeapManager::loadFabric(const std::string &name, SafetyLevel safety)
{
    std::lock_guard<std::mutex> g(mu_);
    HeapFabric *fabric = findFabric(name);
    if (!fabric)
        fatal("loadHeap: no heap named '" + name + "'");
    // Full recovery when the fabric is down, per-member reattach
    // when only some shards were crashed — loadHeap must never
    // return a null member.
    fabric->ensureAttached(safety);
    return fabric;
}

bool
HeapManager::existsHeap(const std::string &name) const
{
    // Count reservations too: a name mid-create already "exists"
    // (a duplicate createHeap of it fails), matching that check.
    std::lock_guard<std::mutex> g(mu_);
    return fabrics_.count(name) != 0;
}

HeapFabric *
HeapManager::fabric(const std::string &name) const
{
    std::lock_guard<std::mutex> g(mu_);
    return findFabric(name);
}

PjhHeap *
HeapManager::heap(const std::string &name) const
{
    std::lock_guard<std::mutex> g(mu_);
    HeapFabric *fabric = findFabric(name);
    return fabric && fabric->attached() ? fabric->shard(0) : nullptr;
}

void
HeapManager::detachHeap(const std::string &name)
{
    std::lock_guard<std::mutex> g(mu_);
    HeapFabric *fabric = findFabric(name);
    if (!fabric || !fabric->attached())
        fatal("detachHeap: heap '" + name + "' is not loaded");
    fabric->detach();
}

void
HeapManager::crashHeap(const std::string &name, CrashMode mode,
                       std::uint64_t seed)
{
    std::lock_guard<std::mutex> g(mu_);
    HeapFabric *fabric = findFabric(name);
    if (!fabric)
        fatal("crashHeap: no heap named '" + name + "'");
    fabric->crashAll(mode, seed);
}

void
HeapManager::migrateHeap(const std::string &name)
{
    std::lock_guard<std::mutex> g(mu_);
    HeapFabric *fabric = findFabric(name);
    if (!fabric)
        fatal("migrateHeap: no heap named '" + name + "'");
    if (fabric->attached())
        fatal("migrateHeap: detach or crash '" + name + "' first");
    fabric->migrate();
}

NvmDevice *
HeapManager::deviceOf(const std::string &name) const
{
    std::lock_guard<std::mutex> g(mu_);
    HeapFabric *fabric = findFabric(name);
    return fabric ? fabric->shardDevice(0) : nullptr;
}

} // namespace espresso
