#include "pjh/klass_segment.hh"

#include <cstring>

#include "nvm/nvm_device.hh"
#include "util/logging.hh"

namespace espresso {

bool
pjhRawHeaderValid(Oop o, Addr seg_base, std::size_t seg_size)
{
    if (!o.hasKlassImage())
        return false;
    Addr image = o.klassImage();
    if (image < seg_base || image + sizeof(KlassImage) > seg_base + seg_size)
        return false;
    return reinterpret_cast<const KlassImage *>(image)->pkr.magic ==
           PersistentKlassRef::kMagic;
}

std::size_t
pjhRawObjectSize(Oop o)
{
    const KlassImage *img = pjhRawImage(o);
    if (img->isArray()) {
        std::size_t esz = elementSize(img->elemType());
        return alignUp(ObjectLayout::kArrayHeaderSize +
                           o.arrayLength() * esz,
                       kWordSize);
    }
    return alignUp(img->instanceSize, kWordSize);
}

void
pjhRawForEachRefSlotWithDelta(Oop o, std::ptrdiff_t delta,
                              const std::function<void(Addr)> &visitor)
{
    auto *img = reinterpret_cast<const KlassImage *>(static_cast<Addr>(
        (o.klassRefRaw() & ~Oop::kKlassPersistentTag) + delta));
    if (img->isArray()) {
        if (img->elemType() != FieldType::kRef)
            return;
        std::uint64_t n = o.arrayLength();
        for (std::uint64_t i = 0; i < n; ++i)
            visitor(o.elemAddr(i, kWordSize));
        return;
    }
    const FieldImage *fields = img->fields();
    for (Word i = 0; i < img->fieldCount; ++i) {
        if (static_cast<FieldType>(fields[i].type) == FieldType::kRef)
            visitor(o.addr() + fields[i].offset);
    }
}

void
pjhRawForEachRefSlot(Oop o, const std::function<void(Addr)> &visitor)
{
    const KlassImage *img = pjhRawImage(o);
    if (img->isArray()) {
        if (img->elemType() != FieldType::kRef)
            return;
        std::uint64_t n = o.arrayLength();
        for (std::uint64_t i = 0; i < n; ++i)
            visitor(o.elemAddr(i, kWordSize));
        return;
    }
    const FieldImage *fields = img->fields();
    for (Word i = 0; i < img->fieldCount; ++i) {
        if (static_cast<FieldType>(fields[i].type) == FieldType::kRef)
            visitor(o.addr() + fields[i].offset);
    }
}

KlassSegment::KlassSegment(NvmDevice *device, Addr base, std::size_t size,
                           PjhMetadata *meta, NameTable *names)
    : device_(device), base_(base), size_(size), meta_(meta), names_(names)
{}

Addr
KlassSegment::imageFor(const Klass *k) const
{
    std::lock_guard<std::recursive_mutex> g(*mu_);
    auto it = imageByLogicalId_.find(k->logicalId());
    return it == imageByLogicalId_.end() ? kNullAddr : it->second;
}

std::size_t
KlassSegment::imageCount() const
{
    std::size_t n = 0;
    names_->forEach([&n](NameEntry &e) {
        if (e.kind == static_cast<Word>(NameKind::kKlass))
            ++n;
    });
    return n;
}

Addr
KlassSegment::ensureImage(const Klass *k, KlassRegistry &registry)
{
    std::lock_guard<std::recursive_mutex> g(*mu_);
    if (Addr cached = imageFor(k))
        return cached;

    // The name table may know it from a previous attach of this
    // process; otherwise write a fresh image.
    if (NameEntry *e = names_->find(k->name(), NameKind::kKlass)) {
        Addr image = base_ + e->value;
        imageByLogicalId_[k->logicalId()] = image;
        return image;
    }
    return writeImage(k, registry);
}

Addr
KlassSegment::writeImage(const Klass *k, KlassRegistry &registry)
{
    if (k->name().size() > KlassImage::kMaxName)
        fatal("Klass segment: class name too long: " + k->name());

    // Supers first so superOff can be recorded.
    Word super_off = kNoneWord;
    if (k->super())
        super_off = ensureImage(k->super(), registry) - base_;

    std::size_t field_count = k->isArray() ? 0 : k->fields().size();
    std::size_t img_size =
        alignUp(KlassImage::sizeFor(field_count), kWordSize);
    Word top = meta_->klassSegTopOffset;
    if (top + img_size > size_)
        fatal("Klass segment: full while adding " + k->name());

    Addr image_addr = base_ + top;
    auto *img = reinterpret_cast<KlassImage *>(image_addr);
    std::memset(img, 0, img_size);
    img->pkr.magic = PersistentKlassRef::kMagic;
    img->pkr.runtimeKlass =
        registry.physicalFor(k, MemKind::kPersistent);
    img->totalSize = img_size;
    img->flags = 0;
    if (k->isArray()) {
        img->flags |= KlassImage::kFlagArray;
        img->flags |= Word(static_cast<std::uint8_t>(k->elemType()))
                      << KlassImage::kElemTypeShift;
    }
    if (k->persistentOnly())
        img->flags |= KlassImage::kFlagPersistentOnly;
    img->instanceSize = k->instanceSize();
    img->fieldCount = field_count;
    img->superOff = super_off;
    std::memcpy(img->name, k->name().c_str(), k->name().size());
    for (std::size_t i = 0; i < field_count; ++i) {
        const FieldDesc &f = k->fields()[i];
        if (f.name.size() > FieldImage::kMaxName)
            fatal("Klass segment: field name too long: " + f.name);
        FieldImage &fi = img->fields()[i];
        std::memcpy(fi.name, f.name.c_str(), f.name.size());
        fi.type = static_cast<std::uint32_t>(f.type);
        fi.offset = f.offset;
    }

    // Publication order (crash-consistent): image content, then the
    // segment top, then the name-table entry that makes it visible.
    device_->persist(image_addr, img_size);
    meta_->klassSegTopOffset = top + img_size;
    device_->persist(reinterpret_cast<Addr>(&meta_->klassSegTopOffset),
                     sizeof(Word));
    names_->insert(k->name(), NameKind::kKlass, image_addr - base_);

    imageByLogicalId_[k->logicalId()] = image_addr;
    return image_addr;
}

Klass *
KlassSegment::bindImage(Addr image_addr, KlassRegistry &registry)
{
    auto *img = reinterpret_cast<KlassImage *>(image_addr);
    if (img->pkr.magic != PersistentKlassRef::kMagic)
        panic("Klass segment: corrupted image during bind");

    std::string name(img->name);
    Klass *persistent_k = nullptr;

    if (img->isArray()) {
        FieldType et = img->elemType();
        if (et == FieldType::kRef) {
            // "[L<elem>;" — the element class must be resolvable.
            if (name.size() < 4 || name[0] != '[' || name[1] != 'L' ||
                name.back() != ';') {
                panic("Klass segment: malformed array class name " + name);
            }
            std::string elem_name = name.substr(2, name.size() - 3);
            Klass *elem = registry.find(elem_name);
            if (!elem) {
                // The element class may have its own image bound
                // later in this pass; bind it eagerly.
                NameEntry *e = names_->find(elem_name, NameKind::kKlass);
                if (!e)
                    fatal("loadHeap: element class " + elem_name +
                          " of " + name +
                          " is neither defined nor imaged");
                elem = bindImage(base_ + e->value, registry);
            }
            persistent_k =
                registry.arrayOfRefs(elem, MemKind::kPersistent);
        } else if (name == std::string("[") + fieldTypeCode(et)) {
            persistent_k = registry.arrayOf(et, MemKind::kPersistent);
        } else {
            // A non-canonically named primitive array (the PJH's
            // filler-array class): bind it to its own logical id so
            // it never shadows the canonical class's image.
            persistent_k =
                registry.arrayOfNamed(name, et, MemKind::kPersistent);
        }
    } else {
        // Rebuild the class definition from the image; inherited
        // fields belong to the (recursively bound) superclass.
        KlassDef def;
        def.name = name;
        def.persistentOnly = img->flags & KlassImage::kFlagPersistentOnly;
        std::size_t inherited = 0;
        if (img->superOff != kNoneWord) {
            Klass *super = bindImage(base_ + img->superOff, registry);
            def.superName = super->name();
            inherited = super->fields().size();
        }
        for (Word i = inherited; i < img->fieldCount; ++i) {
            const FieldImage &fi = img->fields()[i];
            def.fields.emplace_back(
                std::string(fi.name),
                static_cast<FieldType>(fi.type));
        }
        // define() validates shape against a pre-existing definition
        // and is fatal on mismatch (schema evolution unsupported).
        Klass *logical = registry.define(def);
        persistent_k = registry.physicalFor(logical, MemKind::kPersistent);
    }

    // In-place reinitialization: rewrite only the volatile slot.
    img->pkr.runtimeKlass = persistent_k;
    imageByLogicalId_[persistent_k->logicalId()] = image_addr;
    return persistent_k;
}

void
KlassSegment::bindAll(KlassRegistry &registry)
{
    std::lock_guard<std::recursive_mutex> g(*mu_);
    names_->forEach([this, &registry](NameEntry &e) {
        if (e.kind == static_cast<Word>(NameKind::kKlass))
            bindImage(base_ + e.value, registry);
    });
}

} // namespace espresso
