/**
 * @file
 * The PJH Klass segment (paper §3.1, §3.3).
 *
 * Every Klass used by a persistent object gets a KlassImage in the
 * segment: a self-describing, persistent record of the class's
 * logical identity and layout (name, flags, flattened field table,
 * super link). Object headers point at their image (tagged, see
 * Oop), so the image doubles as a place-holder that is
 * "reinitialized in place" at loadHeap: binding just rewrites the
 * volatile runtimeKlass slot at the front of each image, leaving all
 * class pointers in the data heap valid. This is what makes heap
 * loading proportional to the number of Klasses rather than objects
 * (paper §3.3, Fig. 18).
 *
 * The images are also the heap's type oracle when no binding exists
 * yet: GC recovery and safety scans read layout straight from the
 * image bytes via the pjhRaw* helpers.
 */

#ifndef ESPRESSO_PJH_KLASS_SEGMENT_HH
#define ESPRESSO_PJH_KLASS_SEGMENT_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "pjh/name_table.hh"
#include "pjh/pjh_layout.hh"
#include "runtime/klass_registry.hh"
#include "runtime/oop.hh"

namespace espresso {

class NvmDevice;

/** One field record inside a KlassImage. */
struct FieldImage
{
    static constexpr std::size_t kMaxName = 55;

    char name[kMaxName + 1];
    std::uint32_t type;   ///< FieldType
    std::uint32_t offset; ///< byte offset from object start
};

static_assert(sizeof(FieldImage) == 64, "FieldImage must stay 64 bytes");

/** The persistent image of one Klass. */
struct KlassImage
{
    static constexpr std::size_t kMaxName = 63;
    static constexpr Word kFlagArray = 1u << 0;
    static constexpr Word kFlagPersistentOnly = 1u << 1;
    static constexpr unsigned kElemTypeShift = 8;

    PersistentKlassRef pkr; ///< magic + volatile runtime binding
    Word totalSize;         ///< bytes including field table
    Word flags;
    Word instanceSize;      ///< header-inclusive instance bytes
    Word fieldCount;        ///< flattened (inherited first)
    Word superOff;          ///< segment offset of super image or kNoneWord
    Word reserved;
    char name[kMaxName + 1];
    // FieldImage fields[fieldCount] follows.

    FieldImage *
    fields()
    {
        return reinterpret_cast<FieldImage *>(this + 1);
    }

    const FieldImage *
    fields() const
    {
        return reinterpret_cast<const FieldImage *>(this + 1);
    }

    FieldType
    elemType() const
    {
        return static_cast<FieldType>((flags >> kElemTypeShift) & 0xff);
    }

    bool isArray() const { return flags & kFlagArray; }

    static std::size_t
    sizeFor(std::size_t field_count)
    {
        return sizeof(KlassImage) + field_count * sizeof(FieldImage);
    }
};

static_assert(sizeof(KlassImage) == 128, "KlassImage header is 128 bytes");

/** @name Raw object inspection (no runtime binding required) */
/// @{

/** The KlassImage an object's header points at. */
inline const KlassImage *
pjhRawImage(Oop o)
{
    return reinterpret_cast<const KlassImage *>(o.klassImage());
}

/** True when @p o's header points at a plausible image. */
bool pjhRawHeaderValid(Oop o, Addr seg_base, std::size_t seg_size);

/** Object footprint from image data alone. */
std::size_t pjhRawObjectSize(Oop o);

/** Visit every reference-slot address of @p o using image layout. */
void pjhRawForEachRefSlot(Oop o,
                          const std::function<void(Addr)> &visitor);

/**
 * Same, but for a heap whose stored addresses are @p delta bytes
 * below their current physical location (pre-rebase attach).
 */
void pjhRawForEachRefSlotWithDelta(
    Oop o, std::ptrdiff_t delta,
    const std::function<void(Addr)> &visitor);
/// @}

/** Manages the Klass segment of one PJH instance. */
class KlassSegment
{
  public:
    KlassSegment() = default;

    /**
     * @param device owning device.
     * @param base working-image address of the segment.
     * @param size segment capacity in bytes.
     * @param meta metadata area (holds the persisted segment top).
     * @param names the heap's name table (Klass entries live there).
     */
    KlassSegment(NvmDevice *device, Addr base, std::size_t size,
                 PjhMetadata *meta, NameTable *names);

    /**
     * Return the image address for logical class @p k, writing and
     * publishing a new image (crash-consistently) on first use.
     * @p k may be any physical alias. Thread-safe: concurrent calls
     * for the same class publish exactly one image.
     */
    Addr ensureImage(const Klass *k, KlassRegistry &registry);

    /**
     * Class reinitialization at loadHeap: bind every image in the
     * segment to a live (persistent-kind) Klass, defining classes in
     * the registry from image data when the application has not
     * already done so. O(#Klasses).
     */
    void bindAll(KlassRegistry &registry);

    /** Image address for @p k, or kNullAddr when none exists yet. */
    Addr imageFor(const Klass *k) const;

    /** Number of images (== Klass entries in the name table). */
    std::size_t imageCount() const;

    Addr base() const { return base_; }
    std::size_t size() const { return size_; }

    bool
    containsImage(Addr a) const
    {
        return a >= base_ && a < base_ + size_;
    }

  private:
    Addr writeImage(const Klass *k, KlassRegistry &registry);
    Klass *bindImage(Addr image_addr, KlassRegistry &registry);

    NvmDevice *device_ = nullptr;
    Addr base_ = 0;
    std::size_t size_ = 0;
    PjhMetadata *meta_ = nullptr;
    NameTable *names_ = nullptr;
    std::map<std::uint32_t, Addr> imageByLogicalId_;
    /** Serializes image creation/binding and the cache map; writeImage
     * recurses into supers, hence recursive. unique_ptr keeps the
     * segment move-assignable (setupViews rebuilds it). */
    std::unique_ptr<std::recursive_mutex> mu_ =
        std::make_unique<std::recursive_mutex>();
};

} // namespace espresso

#endif // ESPRESSO_PJH_KLASS_SEGMENT_HH
