/**
 * @file
 * The PJH name table (paper §3.1).
 *
 * Maps string constants to two kinds of entries:
 *  - Klass entries: the Klass-segment offset of a KlassImage, written
 *    by the JVM when an object of a new class is first pnew'ed;
 *  - root entries: the absolute address of a root object, managed by
 *    the user through setRoot/getRoot — the only entry points into
 *    the data heap after a reboot.
 *
 * Open-addressed, fixed 128-byte entries in NVM. Crash-consistent
 * insertion: the payload (kind, name, value) is persisted before the
 * state word flips to valid, so a torn insert reads as an empty slot.
 *
 * Concurrency: entries only ever transition empty -> valid (there is
 * no deletion), which makes lookups lock-free — `find` probes with
 * acquire loads of the state word and the release store in the
 * publishing insert orders the payload before it. Mutation (claiming
 * a bucket, updating a root value) is serialized per bucket range by
 * a small array of striped spinlocks; a probe holds at most one
 * stripe lock at a time, so stripes never deadlock even when a probe
 * wraps around the table.
 */

#ifndef ESPRESSO_PJH_NAME_TABLE_HH
#define ESPRESSO_PJH_NAME_TABLE_HH

#include <atomic>
#include <functional>
#include <memory>
#include <string>

#include "util/common.hh"
#include "util/spin.hh"

namespace espresso {

class NvmDevice;

/** Entry kinds. */
enum class NameKind : Word
{
    kKlass = 0,
    kRoot = 1,

    /**
     * Membership-change forwarding stub: the named root moved to
     * another shard. value = destination member index + 1, or 0 once
     * the move's commit fence retired the forward. The kind is part
     * of a slot's identity, so a forward never overwrites the name's
     * kRoot entry — readers probe kRoot first and follow the forward
     * only on a miss, which with the table's release-publish /
     * acquire-read value discipline makes the follow lock-free.
     */
    kForward = 2,
};

/** One persistent name-table slot. */
struct NameEntry
{
    static constexpr std::size_t kMaxName = 95;

    Word state; ///< 0 empty, 1 valid
    Word kind;
    Word value;
    Word reserved;
    char name[kMaxName + 1];

    static constexpr Word kEmpty = 0;
    static constexpr Word kValid = 1;
};

static_assert(sizeof(NameEntry) == 128, "NameEntry must stay 128 bytes");

/** View over the persistent name-table area. */
class NameTable
{
  public:
    /** Bucket-range stripes serializing mutation. */
    static constexpr std::size_t kStripes = 16;

    NameTable() = default;

    /**
     * @param device owning device (for persistence calls).
     * @param base working-image address of the table.
     * @param capacity number of entries.
     */
    NameTable(NvmDevice *device, Addr base, std::size_t capacity);

    NameTable(NameTable &&) = default;
    NameTable &operator=(NameTable &&) = default;
    NameTable(const NameTable &) = delete;
    NameTable &operator=(const NameTable &) = delete;

    /**
     * Insert a (name, kind, value) binding crash-consistently.
     * Fails fatally when the name already exists with this kind or
     * the table is full. Safe against concurrent inserts/upserts.
     */
    void insert(const std::string &name, NameKind kind, Word value);

    /**
     * Atomically insert-or-update: bind @p name to @p value, updating
     * the existing entry's value in place when the (name, kind) pair
     * is already present. This is the concurrent setRoot entry point;
     * two racing upserts of the same name leave exactly one entry.
     */
    void upsert(const std::string &name, NameKind kind, Word value);

    /**
     * Find an entry; nullptr when absent. Lock-free; names longer
     * than NameEntry::kMaxName can never be stored, so they simply
     * miss (they are not an error — lookups must be safe on
     * untrusted input).
     */
    NameEntry *find(const std::string &name, NameKind kind) const;

    /**
     * Atomically (8-byte) update an existing entry's value and
     * persist it.
     */
    void updateValue(NameEntry *entry, Word value);

    /** Atomic read of an entry's value. */
    static Word
    readValue(const NameEntry *entry)
    {
        return std::atomic_ref<Word>(const_cast<Word &>(entry->value))
            .load(std::memory_order_acquire);
    }

    /** Visit every valid entry. */
    void forEach(const std::function<void(NameEntry &)> &fn) const;

    /** Number of valid entries. */
    std::size_t count() const;

    std::size_t capacity() const { return capacity_; }

    /** Slot index of @p entry (for the root journal). */
    std::size_t
    indexOf(const NameEntry *entry) const
    {
        return entry - entries();
    }

    NameEntry *
    entryAt(std::size_t idx) const
    {
        return entries() + idx;
    }

  private:
    NameEntry *
    entries() const
    {
        return reinterpret_cast<NameEntry *>(base_);
    }

    SpinLock &
    stripeFor(std::size_t bucket) const
    {
        return locks_[bucket * kStripes / capacity_];
    }

    static std::size_t hashName(const std::string &name);

    /** Shared probe for insert/upsert; @p update_existing selects the
     * duplicate policy. Returns false on a duplicate that was not
     * updated. */
    bool probeAndClaim(const std::string &name, NameKind kind, Word value,
                       bool update_existing);

    NvmDevice *device_ = nullptr;
    Addr base_ = 0;
    std::size_t capacity_ = 0;
    std::unique_ptr<SpinLock[]> locks_;
};

} // namespace espresso

#endif // ESPRESSO_PJH_NAME_TABLE_HH
