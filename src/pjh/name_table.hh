/**
 * @file
 * The PJH name table (paper §3.1).
 *
 * Maps string constants to two kinds of entries:
 *  - Klass entries: the Klass-segment offset of a KlassImage, written
 *    by the JVM when an object of a new class is first pnew'ed;
 *  - root entries: the absolute address of a root object, managed by
 *    the user through setRoot/getRoot — the only entry points into
 *    the data heap after a reboot.
 *
 * Open-addressed, fixed 128-byte entries in NVM. Crash-consistent
 * insertion: the payload (kind, name, value) is persisted before the
 * state word flips to valid, so a torn insert reads as an empty slot.
 */

#ifndef ESPRESSO_PJH_NAME_TABLE_HH
#define ESPRESSO_PJH_NAME_TABLE_HH

#include <functional>
#include <string>

#include "util/common.hh"

namespace espresso {

class NvmDevice;

/** Entry kinds. */
enum class NameKind : Word
{
    kKlass = 0,
    kRoot = 1,
};

/** One persistent name-table slot. */
struct NameEntry
{
    static constexpr std::size_t kMaxName = 95;

    Word state; ///< 0 empty, 1 valid
    Word kind;
    Word value;
    Word reserved;
    char name[kMaxName + 1];

    static constexpr Word kEmpty = 0;
    static constexpr Word kValid = 1;
};

static_assert(sizeof(NameEntry) == 128, "NameEntry must stay 128 bytes");

/** View over the persistent name-table area. */
class NameTable
{
  public:
    NameTable() = default;

    /**
     * @param device owning device (for persistence calls).
     * @param base working-image address of the table.
     * @param capacity number of entries.
     */
    NameTable(NvmDevice *device, Addr base, std::size_t capacity);

    /**
     * Insert a (name, kind, value) binding crash-consistently.
     * Fails fatally when the name already exists with this kind or
     * the table is full.
     */
    void insert(const std::string &name, NameKind kind, Word value);

    /** Find an entry; nullptr when absent. */
    NameEntry *find(const std::string &name, NameKind kind) const;

    /**
     * Atomically (8-byte) update an existing entry's value and
     * persist it.
     */
    void updateValue(NameEntry *entry, Word value);

    /** Visit every valid entry. */
    void forEach(const std::function<void(NameEntry &)> &fn) const;

    /** Number of valid entries. */
    std::size_t count() const;

    std::size_t capacity() const { return capacity_; }

    /** Slot index of @p entry (for the root journal). */
    std::size_t
    indexOf(const NameEntry *entry) const
    {
        return entry - entries();
    }

    NameEntry *
    entryAt(std::size_t idx) const
    {
        return entries() + idx;
    }

  private:
    NameEntry *
    entries() const
    {
        return reinterpret_cast<NameEntry *>(base_);
    }

    static std::size_t hashName(const std::string &name);

    NvmDevice *device_ = nullptr;
    Addr base_ = 0;
    std::size_t capacity_ = 0;
};

} // namespace espresso

#endif // ESPRESSO_PJH_NAME_TABLE_HH
