#include "pjh/pjh_heap.hh"

#include <chrono>
#include <cstring>

#include "pjh/pjh_gc.hh"
#include "pjh/pjh_recovery.hh"
#include "util/logging.hh"

namespace espresso {

namespace {

/** Zero-field class used to plug sub-array-sized allocation holes. */
constexpr const char *kFillerClassName = "espresso.Filler";

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

PjhHeap::PjhHeap(NvmDevice *device, KlassRegistry *registry)
    : dev_(device), registry_(registry)
{}

PjhHeap::~PjhHeap() = default;

void
PjhHeap::setupViews()
{
    Addr base = reinterpret_cast<Addr>(dev_->base());
    meta_ = reinterpret_cast<PjhMetadata *>(base);
    names_ = NameTable(dev_, base + meta_->nameTableOff,
                       meta_->nameTableCapacity);
    klasses_ = KlassSegment(dev_, base + meta_->klassSegOff,
                            meta_->klassSegSize, meta_, &names_);
    dataBase_ = base + meta_->dataOff;
    top_ = dataBase_ + meta_->topOffset;
    marks_ = MarkBitmap(
        dataBase_, meta_->dataSize,
        reinterpret_cast<Word *>(base + meta_->markStartOff),
        reinterpret_cast<Word *>(base + meta_->markLiveOff));
    regionBits_ = BitmapView(
        reinterpret_cast<Word *>(base + meta_->regionBitmapOff),
        meta_->dataSize / meta_->regionSize);
    undoLog_ = UndoLog(dev_, base + meta_->undoLogOff,
                       meta_->undoLogSize, dataBase_);
}

std::unique_ptr<PjhHeap>
PjhHeap::create(NvmDevice *device, const PjhConfig &cfg,
                KlassRegistry *registry)
{
    PjhMetadata scratch{};
    std::size_t total = computeLayout(cfg, scratch);
    if (device->size() < total)
        fatal(strCat("PJH create: device too small (", device->size(),
                     " < ", total, " bytes)"));

    auto heap = std::unique_ptr<PjhHeap>(new PjhHeap(device, registry));
    auto *meta = reinterpret_cast<PjhMetadata *>(device->base());
    std::memset(meta, 0, sizeof(PjhMetadata));
    *meta = scratch;
    meta->magic = PjhMetadata::kMagic;
    meta->version = PjhMetadata::kVersion;
    meta->heapSize = device->size();
    meta->cleanShutdown = 0;
    meta->topOffset = 0;
    meta->klassSegTopOffset = 0;
    meta->globalTimestamp = 1;
    meta->gcInProgress = 0;
    meta->bounceOwnerOffset = kNoneWord;
    meta->rootJournalCount = 0;

    heap->setupViews();
    meta->addressHint = heap->dataBase_;
    device->persist(reinterpret_cast<Addr>(meta), sizeof(PjhMetadata));

    // Pre-publish the filler Klasses used for tail repair so a
    // recovery never needs to create metadata.
    registry->define(KlassDef{kFillerClassName, "", {}, false});
    heap->klasses_.ensureImage(
        registry->resolve(kFillerClassName, MemKind::kPersistent),
        *registry);
    heap->klasses_.ensureImage(
        registry->arrayOf(FieldType::kI64, MemKind::kPersistent),
        *registry);
    return heap;
}

std::unique_ptr<PjhHeap>
PjhHeap::attach(NvmDevice *device, KlassRegistry *registry,
                SafetyLevel safety)
{
    std::uint64_t t0 = nowNs();
    auto heap = std::unique_ptr<PjhHeap>(new PjhHeap(device, registry));
    auto *meta = reinterpret_cast<PjhMetadata *>(device->base());
    if (meta->magic != PjhMetadata::kMagic)
        fatal("PJH attach: no heap on this device (bad magic)");
    if (meta->version != PjhMetadata::kVersion)
        fatal("PJH attach: version mismatch");
    if (meta->heapSize != device->size())
        fatal("PJH attach: device size changed");

    heap->safety_ = safety;
    heap->setupViews();

    // The remap delta: stored addresses + delta = current addresses.
    std::ptrdiff_t delta =
        static_cast<std::ptrdiff_t>(heap->dataBase_) -
        static_cast<std::ptrdiff_t>(meta->addressHint);
    if (delta % static_cast<std::ptrdiff_t>(kWordSize) != 0)
        panic("PJH attach: misaligned remap delta");

    if (meta->gcInProgress) {
        PjhRecovery recovery(*heap, delta);
        recovery.run();
        ++heap->stats_.recoveries;
    }
    // Application-level rollback happens while pointer values are
    // still expressed in the stored address space.
    heap->undoLog_.recover();
    if (!meta->cleanShutdown) {
        heap->repairAllocationTail(delta);
    }
    if (delta != 0) {
        heap->rebase(delta);
        ++heap->stats_.rebases;
    }

    std::uint64_t t_bind = nowNs();
    heap->klasses_.bindAll(*registry);
    heap->stats_.lastLoadBindNs = nowNs() - t_bind;

    std::uint64_t t_safety = nowNs();
    if (safety == SafetyLevel::kZeroing)
        heap->zeroingScan();
    heap->stats_.lastLoadSafetyNs = nowNs() - t_safety;

    meta->cleanShutdown = 0;
    device->persist(reinterpret_cast<Addr>(&meta->cleanShutdown),
                    sizeof(Word));
    heap->stats_.lastLoadNs = nowNs() - t0;
    return heap;
}

void
PjhHeap::detach()
{
    meta_->cleanShutdown = 1;
    // An orderly power-down drains the caches (ADR); model it as a
    // device-level clean shutdown.
    dev_->shutdownClean();
}

void
PjhHeap::setGcTrigger(std::function<void()> trigger)
{
    gcTrigger_ = std::move(trigger);
}

std::size_t
PjhHeap::rawSizeWithDelta(Oop o, std::ptrdiff_t delta) const
{
    Word kraw = o.klassRefRaw();
    auto *img = reinterpret_cast<const KlassImage *>(
        static_cast<Addr>((kraw & ~Oop::kKlassPersistentTag) + delta));
    if (img->isArray()) {
        return alignUp(ObjectLayout::kArrayHeaderSize +
                           o.arrayLength() * elementSize(img->elemType()),
                       kWordSize);
    }
    return alignUp(img->instanceSize, kWordSize);
}

Oop
PjhHeap::allocRaw(const Klass *k, std::uint64_t length)
{
    // Phase 1 (§4.1): resolve the Klass / Klass image.
    const Klass *pk = registry_->physicalFor(k, MemKind::kPersistent);
    Addr image = klasses_.ensureImage(pk, *registry_);

    std::size_t size = Oop::sizeFor(pk, length);
    if (size > meta_->bounceSize)
        fatal(strCat("PJH: object of ", size,
                     " bytes exceeds the bounce-buffer bound (",
                     meta_->bounceSize, ")"));

    if (top_ + size > dataBase_ + meta_->dataSize) {
        if (gcTrigger_)
            gcTrigger_();
        if (top_ + size > dataBase_ + meta_->dataSize)
            fatal("PJH: out of persistent memory");
    }

    // Phase 2: bump the top and persist its replica before anything
    // references the new space.
    Addr a = top_;
    top_ += size;
    meta_->topOffset = top_ - dataBase_;
    dev_->flush(reinterpret_cast<Addr>(&meta_->topOffset), sizeof(Word));

    // Durably zero the body so a crash can never leave garbage
    // reference bits behind the published header.
    std::memset(reinterpret_cast<void *>(a), 0, size);
    dev_->flush(a, size);
    dev_->fence(); // commits the top replica and the zero fill

    // Phase 3: initialize and persist the header; the Klass-pointer
    // persist is the publication point.
    Oop o(a);
    o.setGcTimestamp(static_cast<std::uint16_t>(meta_->globalTimestamp));
    o.setKlassImage(image);
    std::size_t header = ObjectLayout::kHeaderSize;
    if (pk->isArray()) {
        o.setArrayLength(length);
        header = ObjectLayout::kArrayHeaderSize;
    }
    dev_->persist(a, header);

    ++stats_.allocations;
    stats_.bytesAllocated += size;
    return o;
}

Oop
PjhHeap::allocInstance(const Klass *k)
{
    if (!k || k->isArray())
        panic("PJH allocInstance: not an instance klass");
    return allocRaw(k, 0);
}

Oop
PjhHeap::allocArray(const Klass *k, std::uint64_t length)
{
    if (!k || !k->isArray())
        panic("PJH allocArray: not an array klass");
    return allocRaw(k, length);
}

void
PjhHeap::setRoot(const std::string &name, Oop obj)
{
    if (obj && !containsData(obj.addr()))
        fatal("setRoot: object is not in this persistent heap");
    if (NameEntry *e = names_.find(name, NameKind::kRoot)) {
        names_.updateValue(e, obj.addr());
        return;
    }
    names_.insert(name, NameKind::kRoot, obj.addr());
}

Oop
PjhHeap::getRoot(const std::string &name) const
{
    NameEntry *e = names_.find(name, NameKind::kRoot);
    return e ? Oop(e->value) : Oop();
}

bool
PjhHeap::hasRoot(const std::string &name) const
{
    return names_.find(name, NameKind::kRoot) != nullptr;
}

void
PjhHeap::flushField(Oop obj, std::uint32_t offset)
{
    // Work set is bounded to 8 bytes to preserve atomicity (§3.5).
    dev_->persist(obj.addr() + offset, kWordSize);
}

void
PjhHeap::flushArrayElement(Oop obj, std::uint64_t index)
{
    const Klass *k = obj.klass();
    std::size_t esz = elementSize(k->elemType());
    dev_->persist(obj.elemAddr(index, esz), esz);
}

void
PjhHeap::flushObject(Oop obj)
{
    // All fields, one trailing fence (§3.5 coarse-grained flush).
    dev_->flush(obj.addr(), obj.sizeInBytes());
    dev_->fence();
}

void
PjhHeap::checkRefStore(Oop obj, Oop value) const
{
    if (!value)
        return;
    const Klass *k = obj.klass();
    bool restricted =
        k->persistentOnly() || safety_ == SafetyLevel::kTypeBased;
    if (restricted && !containsData(value.addr())) {
        throw MemorySafetyError(
            strCat("type-based safety: storing a non-persistent "
                   "reference into ",
                   k->name()));
    }
}

void
PjhHeap::storeRef(Oop obj, std::uint32_t offset, Oop value)
{
    checkRefStore(obj, value);
    obj.setRef(offset, value);
}

void
PjhHeap::storeRefElement(Oop obj, std::uint64_t index, Oop value)
{
    checkRefStore(obj, value);
    obj.setRefElem(index, value.addr());
}

void
PjhHeap::forEachObject(const std::function<void(Oop)> &fn) const
{
    Addr a = dataBase_;
    while (a < top_) {
        Oop o(a);
        if (!pjhRawHeaderValid(o, klasses_.base(), klasses_.size()))
            panic("PJH walk: unparseable object (missing tail repair?)");
        fn(o);
        a += pjhRawObjectSize(o);
    }
}

void
PjhHeap::forEachRefSlot(const std::function<void(Addr)> &fn) const
{
    forEachObject([&fn](Oop o) { pjhRawForEachRefSlot(o, fn); });
}

void
PjhHeap::forEachOutRefSlot(const SlotVisitor &visitor)
{
    forEachRefSlot([this, &visitor](Addr slot) {
        Addr ref = loadWord(slot);
        if (ref != kNullAddr && !dev_->contains(ref))
            visitor(slot);
    });
}

void
PjhHeap::repairAllocationTail(std::ptrdiff_t delta)
{
    Addr seg_base_stored =
        reinterpret_cast<Addr>(dev_->base()) + meta_->klassSegOff -
        static_cast<Addr>(delta);
    Addr a = dataBase_;
    Addr junk = kNullAddr;
    while (a < top_) {
        Oop o(a);
        Word kraw = o.klassRefRaw();
        bool valid = (kraw & Oop::kKlassPersistentTag) &&
                     (kraw & ~Oop::kKlassPersistentTag) >= seg_base_stored &&
                     (kraw & ~Oop::kKlassPersistentTag) <
                         seg_base_stored + meta_->klassSegSize;
        if (valid) {
            auto *img = reinterpret_cast<const KlassImage *>(
                static_cast<Addr>((kraw & ~Oop::kKlassPersistentTag) +
                                  delta));
            valid = img->pkr.magic == PersistentKlassRef::kMagic;
        }
        std::size_t size = valid ? rawSizeWithDelta(o, delta) : 0;
        if (!valid || a + size > top_) {
            junk = a;
            break;
        }
        a += size;
    }
    if (junk == kNullAddr)
        return;

    // A torn allocation leaves junk only as a suffix below the
    // persisted top; overwrite it with a filler object.
    std::size_t gap = top_ - junk;
    Oop filler(junk);
    const char *klass_name;
    if (gap >= ObjectLayout::kArrayHeaderSize) {
        klass_name = "[J";
    } else {
        klass_name = kFillerClassName;
    }
    NameEntry *e = names_.find(klass_name, NameKind::kKlass);
    if (!e)
        panic("tail repair: filler Klass image missing");
    Addr image_phys = reinterpret_cast<Addr>(dev_->base()) +
                      meta_->klassSegOff + e->value;
    // The heap is still expressed in stored addresses at this point.
    Addr image_stored = image_phys - static_cast<Addr>(delta);
    filler.setMarkWord(0);
    filler.setGcTimestamp(
        static_cast<std::uint16_t>(meta_->globalTimestamp));
    filler.setKlassImage(image_stored);
    if (gap >= ObjectLayout::kArrayHeaderSize) {
        filler.setArrayLength(
            (gap - ObjectLayout::kArrayHeaderSize) / kWordSize);
        dev_->persist(junk, ObjectLayout::kArrayHeaderSize);
    } else {
        dev_->persist(junk, ObjectLayout::kHeaderSize);
    }
    ++stats_.tailRepairs;
}

void
PjhHeap::rebase(std::ptrdiff_t delta)
{
    Addr dev_base = reinterpret_cast<Addr>(dev_->base());
    Addr stored_dev_base = dev_base - static_cast<Addr>(delta);
    std::size_t dev_size = dev_->size();
    auto in_stored_device = [&](Addr v) {
        return v >= stored_dev_base && v < stored_dev_base + dev_size;
    };

    Addr a = dataBase_;
    while (a < top_) {
        Oop o(a);
        Word kraw = o.klassRefRaw();
        std::size_t size = rawSizeWithDelta(o, delta);
        auto *img = reinterpret_cast<const KlassImage *>(
            static_cast<Addr>((kraw & ~Oop::kKlassPersistentTag) + delta));
        if (img->pkr.magic != PersistentKlassRef::kMagic)
            panic("rebase: unparseable heap");

        o.setKlassRefRaw(kraw + static_cast<Word>(delta));

        auto fix = [&](Addr slot) {
            Addr v = loadWord(slot);
            if (v != kNullAddr && in_stored_device(v))
                storeWord(slot, v + static_cast<Addr>(delta));
        };
        if (img->isArray()) {
            if (img->elemType() == FieldType::kRef) {
                std::uint64_t n = o.arrayLength();
                for (std::uint64_t i = 0; i < n; ++i)
                    fix(o.elemAddr(i, kWordSize));
            }
        } else {
            const FieldImage *fields = img->fields();
            for (Word i = 0; i < img->fieldCount; ++i) {
                if (static_cast<FieldType>(fields[i].type) ==
                    FieldType::kRef) {
                    fix(o.addr() + fields[i].offset);
                }
            }
        }
        a += size;
    }

    // Root entries hold absolute data-heap addresses.
    names_.forEach([&](NameEntry &e) {
        if (e.kind == static_cast<Word>(NameKind::kRoot) &&
            e.value != kNullAddr && in_stored_device(e.value)) {
            e.value += static_cast<Word>(delta);
        }
    });

    meta_->addressHint = dataBase_;
    // The scan touched pointers all over the heap; make the new
    // expression durable in one sweep.
    dev_->flush(dev_base, dev_size);
    dev_->fence();
}

void
PjhHeap::zeroingScan()
{
    bool dirty = false;
    forEachObject([&](Oop o) {
        pjhRawForEachRefSlot(o, [&](Addr slot) {
            Addr v = loadWord(slot);
            if (v != kNullAddr && !containsData(v)) {
                storeWord(slot, kNullAddr);
                dev_->flush(slot, kWordSize);
                dirty = true;
            }
        });
    });
    names_.forEach([&](NameEntry &e) {
        if (e.kind == static_cast<Word>(NameKind::kRoot) &&
            e.value != kNullAddr && !containsData(e.value)) {
            e.value = kNullAddr;
            dev_->flush(reinterpret_cast<Addr>(&e.value), kWordSize);
            dirty = true;
        }
    });
    if (dirty)
        dev_->fence();
}

void
PjhHeap::collect(VolatileHeap *volatile_heap)
{
    std::uint64_t t0 = nowNs();
    PjhGc gc(*this, volatile_heap);
    gc.collect();
    ++stats_.collections;
    stats_.lastGcPauseNs = nowNs() - t0;
}

} // namespace espresso
