#include "pjh/pjh_heap.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <unordered_map>
#include <vector>

#include "pjh/pjh_gc.hh"
#include "pjh/pjh_recovery.hh"
#include "util/logging.hh"

namespace espresso {

namespace {

/** Zero-field class used to plug sub-array-sized allocation holes. */
constexpr const char *kFillerClassName = "espresso.Filler";

/** Variable-length filler covering TLAB tails and repaired gaps.
 * Deliberately non-canonical so heap walks can tell it apart from
 * user "[J" arrays. */
constexpr const char *kFillerArrayClassName = "espresso.Filler[]";

// Every allocation covers at least an instance header, which is what
// lets tail repair assume any gap it must plug can hold a filler
// header (see plugFillerGap).
static_assert(ObjectLayout::kHeaderSize >= 2 * kWordSize,
              "filler headers need mark + klass words");
static_assert(ObjectLayout::kArrayHeaderSize ==
                  ObjectLayout::kHeaderSize + kWordSize,
              "gap classification below assumes one length word");

std::atomic<std::uint64_t> g_heapSerial{1};

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::size_t
tlabBytesFromEnv(std::size_t stored)
{
    if (const char *s = std::getenv("ESPRESSO_TLAB_BYTES")) {
        long v = std::atol(s);
        if (v > 0)
            return alignUp(static_cast<std::size_t>(v), kWordSize);
    }
    return stored;
}

unsigned
gcThreadsFromEnv()
{
    if (const char *s = std::getenv("ESPRESSO_GC_THREADS")) {
        long v = std::atol(s);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    return 1;
}

bool
gcConcurrentFromEnv()
{
    if (const char *s = std::getenv("ESPRESSO_GC_CONCURRENT"))
        return s[0] != '\0' && s[0] != '0';
    return false;
}

/** RAII allocation-epoch bracket (see allocGuardEnter). */
struct AllocGuard
{
    explicit AllocGuard(PjhHeap &h) : h_(h) { h_.allocGuardEnter(); }
    ~AllocGuard() { h_.allocGuardExit(); }
    AllocGuard(const AllocGuard &) = delete;
    AllocGuard &operator=(const AllocGuard &) = delete;

    PjhHeap &h_;
};

/**
 * Per-thread re-entrancy depths for the allocation-epoch guard,
 * keyed by heap. A thread already inside its own epoch (a
 * MutatorSection, or a guarded op calling another) must not back out
 * at a safepoint request: the collector's drain is waiting for *this*
 * thread, so backing out and spinning would deadlock. A slot is live
 * only while its depth is non-zero, so a destroyed heap can never be
 * observed through a stale slot.
 */
struct GuardTls
{
    static constexpr int kSlots = 8;
    const void *heap[kSlots] = {};
    unsigned depth[kSlots] = {};
};
thread_local GuardTls t_guardTls;

unsigned *
guardDepthFind(const void *h)
{
    for (int i = 0; i < GuardTls::kSlots; ++i)
        if (t_guardTls.heap[i] == h && t_guardTls.depth[i] > 0)
            return &t_guardTls.depth[i];
    return nullptr;
}

unsigned &
guardDepthClaim(const void *h)
{
    for (int i = 0; i < GuardTls::kSlots; ++i)
        if (t_guardTls.heap[i] == h && t_guardTls.depth[i] > 0)
            return t_guardTls.depth[i];
    for (int i = 0; i < GuardTls::kSlots; ++i) {
        if (t_guardTls.depth[i] == 0) {
            t_guardTls.heap[i] = h;
            return t_guardTls.depth[i];
        }
    }
    panic("PJH: guard sections nested across too many heaps");
}

} // namespace

PjhHeap::PjhHeap(NvmDevice *device, KlassRegistry *registry)
    : dev_(device), registry_(registry),
      serial_(g_heapSerial.fetch_add(1, std::memory_order_relaxed))
{
    gcThreads_.store(gcThreadsFromEnv(), std::memory_order_relaxed);
    gcConcurrent_.store(gcConcurrentFromEnv(), std::memory_order_relaxed);
}

void
PjhHeap::setGcThreads(unsigned n)
{
    if (n == 0)
        n = gcThreadsFromEnv(); // restore the default
    if (n > PjhMetadata::kMaxGcSlices)
        n = static_cast<unsigned>(PjhMetadata::kMaxGcSlices);
    gcThreads_.store(n, std::memory_order_relaxed);
}

void
PjhHeap::allocGuardEnter()
{
    unsigned &depth = guardDepthClaim(this);
    if (depth > 0) {
        // Re-entrant: this thread already holds the epoch, so a
        // pending safepoint is waiting on *us* — proceed even while
        // kPaused instead of backing out (which would deadlock the
        // collector's drain against our own outer bracket).
        ++depth;
        allocsInFlight_.fetch_add(1, std::memory_order_seq_cst);
        return;
    }
    for (;;) {
        allocsInFlight_.fetch_add(1, std::memory_order_seq_cst);
        unsigned ph = gcPhase_.load(std::memory_order_seq_cst);
        if (ph == static_cast<unsigned>(GcPhase::kPaused)) {
            // A concurrent cycle's safepoint is in force: back out so
            // the collector's drain completes, wait it out, retry.
            allocsInFlight_.fetch_sub(1, std::memory_order_seq_cst);
            waitWhilePaused();
            continue;
        }
        if (ph == static_cast<unsigned>(GcPhase::kIdle) &&
            gcActive_.load(std::memory_order_seq_cst)) {
#ifndef NDEBUG
            allocsInFlight_.fetch_sub(1, std::memory_order_seq_cst);
            panic("PJH: pnew raced collect(); STW collections "
                  "require quiesced mutators");
#endif
        }
        depth = 1;
        return;
    }
}

void
PjhHeap::allocGuardExit()
{
    if (unsigned *depth = guardDepthFind(this))
        --*depth;
    allocsInFlight_.fetch_sub(1, std::memory_order_seq_cst);
}

void
PjhHeap::waitWhilePaused() const
{
    while (gcPhase_.load(std::memory_order_acquire) ==
           static_cast<unsigned>(GcPhase::kPaused)) {
        // Die with a simulated power failure instead of spinning on a
        // safepoint whose collector was killed by one.
        CrashInjector *inj = dev_->injector();
        if (inj && inj->tripped())
            throw SimulatedCrash();
        std::this_thread::yield();
    }
}

void
PjhHeap::rootOpGuardEnter() const
{
    // Inside this thread's own allocation epoch (a MutatorSection
    // bracketing a compound op) a pending safepoint waits for us, so
    // the root op proceeds even while kPaused — see allocGuardEnter.
    const bool in_own_epoch = guardDepthFind(this) != nullptr;
    for (;;) {
        rootOpsInFlight_.fetch_add(1, std::memory_order_seq_cst);
        if (in_own_epoch ||
            gcPhase_.load(std::memory_order_seq_cst) !=
                static_cast<unsigned>(GcPhase::kPaused)) {
            // No STW check here: root reads legitimately probe shards
            // that are STW-collecting (the fabric's fallback scan
            // visits every member); that contract is the caller's.
            return;
        }
        rootOpsInFlight_.fetch_sub(1, std::memory_order_seq_cst);
        waitWhilePaused();
    }
}

void
PjhHeap::rootOpGuardExit() const
{
    rootOpsInFlight_.fetch_sub(1, std::memory_order_seq_cst);
}

void
PjhHeap::shade(Addr ref) const
{
    if (gcPhase_.load(std::memory_order_acquire) !=
        static_cast<unsigned>(GcPhase::kMarking))
        return;
    if (ref == kNullAddr || !containsData(ref))
        return;
    // Marked-test *before* the header reads: a ref published during
    // the cycle points at an already-marked object (born black or
    // shaded on store) whose header may still be in flight from this
    // thread's perspective; an unmarked object is pre-snapshot and
    // fully visible (initial-safepoint happens-before).
    if (marks_.isMarkedAtomic(ref))
        return;
    Oop obj(ref);
    Addr img = obj.klassImage();
    if (img == fillerInstanceImage_ || img == fillerArrayImage_)
        return;
    // The claim CAS is shared with the markers: whoever wins owns the
    // push, so the object lands on exactly one scan queue.
    auto &self = const_cast<PjhHeap &>(*this);
    if (!self.marks_.tryMarkObject(ref, pjhRawObjectSize(obj)))
        return;
    shadeCount_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> g(satbMu_);
    satbBuffer_.push_back(ref);
}

void
PjhHeap::shadeFieldIfRef(Oop obj, std::uint32_t offset) const
{
    if (gcPhase_.load(std::memory_order_acquire) !=
        static_cast<unsigned>(GcPhase::kMarking))
        return;
    // flushField can't observe the overwritten value — shade the
    // stored one, but only when the Klass image declares a reference
    // field at this offset (shading a primitive word that happens to
    // alias a heap address would dereference a non-header).
    auto *img = reinterpret_cast<const KlassImage *>(obj.klassImage());
    if (img->isArray())
        return;
    const FieldImage *fields = img->fields();
    for (Word i = 0; i < img->fieldCount; ++i) {
        if (fields[i].offset == offset) {
            if (static_cast<FieldType>(fields[i].type) == FieldType::kRef)
                shade(loadWord(obj.addr() + offset));
            return;
        }
    }
}

void
PjhHeap::triggerGcOutsideGuard()
{
    // Step outside the allocation-epoch bracket for the triggered
    // collection: this thread is no longer mid-allocation, and
    // collect() would otherwise count it as a racing mutator.
    // Re-enter even when the collection throws (simulated crash,
    // panic) — the caller's AllocGuard unwinds too.
    allocGuardExit();
    try {
        gcTrigger_();
    } catch (...) {
        allocGuardEnter();
        throw;
    }
    allocGuardEnter();
}

PjhHeap::~PjhHeap() = default;

void
PjhHeap::setupViews()
{
    Addr base = reinterpret_cast<Addr>(dev_->base());
    meta_ = reinterpret_cast<PjhMetadata *>(base);
    names_ = NameTable(dev_, base + meta_->nameTableOff,
                       meta_->nameTableCapacity);
    klasses_ = KlassSegment(dev_, base + meta_->klassSegOff,
                            meta_->klassSegSize, meta_, &names_);
    dataBase_ = base + meta_->dataOff;
    top_ = dataBase_ + meta_->topOffset;
    marks_ = MarkBitmap(
        dataBase_, meta_->dataSize,
        reinterpret_cast<Word *>(base + meta_->markStartOff),
        reinterpret_cast<Word *>(base + meta_->markLiveOff));
    regionBits_ = BitmapView(
        reinterpret_cast<Word *>(base + meta_->regionBitmapOff),
        meta_->dataSize / meta_->regionSize);
    undoLog_ = UndoLog(dev_, base + meta_->undoLogOff,
                       meta_->undoLogSize, dataBase_);
    tlabBytes_ = tlabBytesFromEnv(meta_->tlabBytes);
    if (tlabBytes_ < ObjectLayout::kArrayHeaderSize)
        tlabBytes_ = PjhConfig().tlabSize;
}

void
PjhHeap::cacheFillerImages()
{
    NameEntry *inst = names_.find(kFillerClassName, NameKind::kKlass);
    NameEntry *arr = names_.find(kFillerArrayClassName, NameKind::kKlass);
    if (!inst || !arr)
        panic("PJH: filler Klass images missing");
    Addr seg = reinterpret_cast<Addr>(dev_->base()) + meta_->klassSegOff;
    fillerInstanceImage_ = seg + inst->value;
    fillerArrayImage_ = seg + arr->value;
}

std::unique_ptr<PjhHeap>
PjhHeap::create(NvmDevice *device, const PjhConfig &cfg,
                KlassRegistry *registry)
{
    PjhMetadata scratch{};
    std::size_t total = computeLayout(cfg, scratch);
    if (device->size() < total)
        fatal(strCat("PJH create: device too small (", device->size(),
                     " < ", total, " bytes)"));

    auto heap = std::unique_ptr<PjhHeap>(new PjhHeap(device, registry));
    auto *meta = reinterpret_cast<PjhMetadata *>(device->base());
    std::memset(meta, 0, sizeof(PjhMetadata));
    *meta = scratch;
    meta->magic = PjhMetadata::kMagic;
    meta->version = PjhMetadata::kVersion;
    meta->heapSize = device->size();
    meta->cleanShutdown = 0;
    meta->topOffset = 0;
    meta->klassSegTopOffset = 0;
    meta->globalTimestamp = 1;
    meta->gcInProgress = 0;
    meta->bounceOwnerOffset = kNoneWord;
    meta->rootJournalCount = 0;
    meta->tlabBytes = alignUp(
        std::max(cfg.tlabSize,
                 static_cast<std::size_t>(ObjectLayout::kArrayHeaderSize)),
        kWordSize);

    heap->setupViews();
    meta->addressHint = heap->dataBase_;
    device->persist(reinterpret_cast<Addr>(meta), sizeof(PjhMetadata));

    // Pre-publish the filler Klasses used for TLAB tails and tail
    // repair so a recovery never needs to create metadata.
    registry->define(KlassDef{kFillerClassName, "", {}, false});
    heap->klasses_.ensureImage(
        registry->resolve(kFillerClassName, MemKind::kPersistent),
        *registry);
    heap->klasses_.ensureImage(
        registry->arrayOfNamed(kFillerArrayClassName, FieldType::kI64,
                               MemKind::kPersistent),
        *registry);
    heap->cacheFillerImages();
    return heap;
}

std::unique_ptr<PjhHeap>
PjhHeap::attach(NvmDevice *device, KlassRegistry *registry,
                SafetyLevel safety)
{
    std::uint64_t t0 = nowNs();
    auto heap = std::unique_ptr<PjhHeap>(new PjhHeap(device, registry));
    auto *meta = reinterpret_cast<PjhMetadata *>(device->base());
    if (meta->magic != PjhMetadata::kMagic)
        fatal("PJH attach: no heap on this device (bad magic)");
    if (meta->version != PjhMetadata::kVersion)
        fatal("PJH attach: version mismatch");
    if (meta->heapSize != device->size())
        fatal("PJH attach: device size changed");

    heap->safety_ = safety;
    heap->setupViews();
    heap->cacheFillerImages();

    // The remap delta: stored addresses + delta = current addresses.
    std::ptrdiff_t delta =
        static_cast<std::ptrdiff_t>(heap->dataBase_) -
        static_cast<std::ptrdiff_t>(meta->addressHint);
    if (delta % static_cast<std::ptrdiff_t>(kWordSize) != 0)
        panic("PJH attach: misaligned remap delta");

    if (meta->gcInProgress) {
        PjhRecovery recovery(*heap, delta);
        recovery.run();
        ++heap->stats_.recoveries;
    } else if (meta->gcMarkingActive) {
        // The crash hit mutator/marker overlap: the cycle's snapshot
        // never committed (gcInProgress was still down, so the mark
        // bitmap may be torn on media). Discard the cycle cleanly —
        // the heap itself is untouched by marking.
        PjhRecovery recovery(*heap, delta);
        recovery.discardMarkingCycle();
        ++heap->stats_.recoveries;
    }
    // Application-level rollback happens while pointer values are
    // still expressed in the stored address space.
    heap->undoLog_.recover();
    if (!meta->cleanShutdown) {
        heap->repairAllocationTail(delta);
    }
    if (delta != 0) {
        heap->rebase(delta);
        ++heap->stats_.rebases;
    }
    // The chunks described by the slot table belong to the previous
    // attach; they are fully parseable now, so retire them all.
    heap->clearTlabSlots();

    std::uint64_t t_bind = nowNs();
    heap->klasses_.bindAll(*registry);
    heap->stats_.lastLoadBindNs = nowNs() - t_bind;

    std::uint64_t t_safety = nowNs();
    if (safety == SafetyLevel::kZeroing)
        heap->zeroingScan();
    heap->stats_.lastLoadSafetyNs = nowNs() - t_safety;

    meta->cleanShutdown = 0;
    device->persist(reinterpret_cast<Addr>(&meta->cleanShutdown),
                    sizeof(Word));
    // GC statistics live in the metadata area (persisted with the
    // usual flush+fence discipline at the end of every collection);
    // seed the volatile mirror so post-crash readers see them.
    heap->stats_.collections = meta->gcCollections;
    heap->stats_.lastGcMarked = meta->gcLastMarked;
    heap->stats_.lastGcConcMarkNs = meta->gcLastConcMarkNs;
    heap->stats_.lastGcRemarkNs = meta->gcLastRemarkNs;
    heap->stats_.lastGcShaded = meta->gcLastShaded;
    heap->stats_.lastGcFloating = meta->gcLastFloating;
    heap->stats_.markDiscards = meta->gcMarkDiscards;
    heap->stats_.lastLoadNs = nowNs() - t0;
    return heap;
}

void
PjhHeap::detach()
{
    meta_->cleanShutdown = 1;
    // An orderly power-down drains the caches (ADR); model it as a
    // device-level clean shutdown.
    dev_->shutdownClean();
}

void
PjhHeap::setGcTrigger(std::function<void()> trigger)
{
    gcTrigger_ = std::move(trigger);
}

std::size_t
PjhHeap::rawSizeWithDelta(Oop o, std::ptrdiff_t delta) const
{
    Word kraw = o.klassRefRaw();
    auto *img = reinterpret_cast<const KlassImage *>(
        static_cast<Addr>((kraw & ~Oop::kKlassPersistentTag) + delta));
    if (img->isArray()) {
        return alignUp(ObjectLayout::kArrayHeaderSize +
                           o.arrayLength() * elementSize(img->elemType()),
                       kWordSize);
    }
    return alignUp(img->instanceSize, kWordSize);
}

// ---------------------------------------------------------------------
// Allocation: per-thread TLABs over a locked shared top (§4.1)
// ---------------------------------------------------------------------

PjhHeap::ThreadTlab &
PjhHeap::threadTlab() const
{
    // Keyed by heap serial: serials are never reused, so entries of
    // destroyed heaps can never alias a live one.
    thread_local std::unordered_map<std::uint64_t, ThreadTlab> tlabs;
    return tlabs[serial_];
}

void
PjhHeap::writeFillerHeader(Addr a, std::size_t gap, Addr instance_image,
                           Addr array_image)
{
    // Unreachable by construction: every allocation and chunk
    // remainder is at least kHeaderSize (see the static_asserts at
    // the top of this file and the fit rules in tlabReserve /
    // carveChunk), and repair only plugs allocation boundaries.
    if (gap < ObjectLayout::kHeaderSize)
        panic("PJH: filler gap below the minimum allocation size");
    if (instance_image == 0) {
        instance_image = fillerInstanceImage_;
        array_image = fillerArrayImage_;
    }
    Oop f(a);
    f.setMarkWord(0);
    f.setGcTimestamp(static_cast<std::uint16_t>(meta_->globalTimestamp));
    if (gap >= ObjectLayout::kArrayHeaderSize) {
        f.setKlassImage(array_image);
        f.setArrayLength(
            (gap - ObjectLayout::kArrayHeaderSize) / kWordSize);
    } else {
        // gap == kHeaderSize: the zero-field filler instance.
        f.setKlassImage(instance_image);
    }
}

bool
PjhHeap::carveChunk(ThreadTlab &t, std::size_t min_size)
{
    std::size_t want = alignUp(std::max(min_size, tlabBytes_), kWordSize);
    // The first allocation must leave a coverable remainder (0 or at
    // least a filler header).
    if (want - min_size == kWordSize)
        want += kWordSize;

    for (int attempt = 0;; ++attempt) {
        {
            std::lock_guard<std::mutex> g(topMu_);
            Addr a = top_.load(std::memory_order_relaxed);
            std::size_t avail = dataBase_ + meta_->dataSize - a;
            std::size_t chunk = std::min(want, avail);
            if (chunk >= min_size && chunk - min_size == kWordSize)
                chunk -= kWordSize; // keep the remainder coverable
            if (chunk >= min_size) {
                if (t.slot == kSlotUnassigned) {
                    std::uint32_t s = nextTlabSlot_.fetch_add(
                        1, std::memory_order_relaxed);
                    t.slot = s < PjhMetadata::kMaxTlabSlots
                                 ? static_cast<int>(s)
                                 : kSlotless;
                }
                if (t.slot == kSlotless)
                    return false;

                // Crash-consistent handoff: the whole chunk becomes
                // one durable filler before the top replica (and
                // then the slot registration) publishes it, so the
                // heap parses end to end at every step.
                std::memset(reinterpret_cast<void *>(a), 0, chunk);
                writeFillerHeader(a, chunk);
                dev_->flush(a, chunk);
                dev_->fence();

                meta_->topOffset = a + chunk - dataBase_;
                dev_->persist(reinterpret_cast<Addr>(&meta_->topOffset),
                              sizeof(Word));
                top_.store(a + chunk, std::memory_order_release);

                meta_->setTlabSlot(static_cast<std::size_t>(t.slot),
                                   a - dataBase_,
                                   a + chunk - dataBase_);
                dev_->persist(
                    reinterpret_cast<Addr>(
                        &meta_->tlabSlots[static_cast<std::size_t>(
                                              t.slot) *
                                          PjhMetadata::kTlabSlotWords]),
                    2 * kWordSize);

                t.bump = a;
                t.end = a + chunk;
                t.epoch = tlabEpoch_.load(std::memory_order_relaxed);
                return true;
            }
        }
        if (!gcTrigger_ || attempt > 0)
            fatal("PJH: out of persistent memory");
        triggerGcOutsideGuard();
    }
}

Addr
PjhHeap::tlabReserve(ThreadTlab &t, std::size_t size)
{
    for (;;) {
        if (t.bump != 0 &&
            t.epoch == tlabEpoch_.load(std::memory_order_relaxed)) {
            std::size_t avail = t.end - t.bump;
            if (avail >= size) {
                std::size_t rem = avail - size;
                if (rem == 0 || rem >= ObjectLayout::kHeaderSize) {
                    Addr a = t.bump;
                    if (rem > 0) {
                        // Re-establish the trailing filler before
                        // the object can be published: a crash
                        // between the two persists parses as the
                        // old, larger filler still covering [a,
                        // end).
                        writeFillerHeader(a + size, rem);
                        dev_->persist(
                            a + size,
                            std::min(rem, static_cast<std::size_t>(
                                              ObjectLayout::
                                                  kArrayHeaderSize)));
                    }
                    t.bump = a + size;
                    return a;
                }
            }
        }
        // Unusable chunk (none yet, stale epoch, too small, or an
        // uncoverable 8-byte tail would remain): abandon it — its
        // trailing filler is already durable — and carve afresh.
        t.bump = t.end = 0;
        if (!carveChunk(t, size))
            return kNullAddr;
    }
}

Oop
PjhHeap::allocSlotless(const Klass *pk, Addr image, std::uint64_t length,
                       std::size_t size)
{
    // Threads beyond the slot table allocate under the heap lock and
    // publish everything before releasing it: any torn state is then
    // provably the global allocation tail (no later carve can start),
    // which repairAllocationTail plugs without a slot registration.
    for (int attempt = 0;; ++attempt) {
        {
            std::lock_guard<std::mutex> g(topMu_);
            Addr a = top_.load(std::memory_order_relaxed);
            if (a + size <= dataBase_ + meta_->dataSize) {
                std::memset(reinterpret_cast<void *>(a), 0, size);
                Oop o(a);
                o.setGcTimestamp(
                    static_cast<std::uint16_t>(meta_->globalTimestamp));
                o.setKlassImage(image);
                if (pk->isArray())
                    o.setArrayLength(length);
                dev_->flush(a, size);
                meta_->topOffset = a + size - dataBase_;
                dev_->flush(reinterpret_cast<Addr>(&meta_->topOffset),
                            sizeof(Word));
                dev_->fence();
                top_.store(a + size, std::memory_order_release);
                return o;
            }
        }
        if (!gcTrigger_ || attempt > 0)
            fatal("PJH: out of persistent memory");
        triggerGcOutsideGuard();
    }
}

Oop
PjhHeap::allocRaw(const Klass *k, std::uint64_t length)
{
    AllocGuard quiescence_guard(*this);
    ThreadTlab &t = threadTlab();

    // Phase 1 (§4.1): resolve the Klass / Klass image.
    const Klass *pk;
    Addr image;
    if (t.cachedKlass == k) {
        pk = t.cachedPk;
        image = t.cachedImage;
    } else {
        pk = registry_->physicalFor(k, MemKind::kPersistent);
        image = klasses_.ensureImage(pk, *registry_);
        t.cachedKlass = k;
        t.cachedPk = pk;
        t.cachedImage = image;
    }

    std::size_t size = Oop::sizeFor(pk, length);
    if (size > meta_->bounceSize)
        fatal(strCat("PJH: object of ", size,
                     " bytes exceeds the bounce-buffer bound (",
                     meta_->bounceSize, ")"));

    // Phase 2: reserve TLAB space; the chunk's trailing filler is
    // durably re-established past the reservation first.
    Addr a = tlabReserve(t, size);
    if (a == kNullAddr) {
        Oop o = allocSlotless(pk, image, length, size);
        bornBlackIfMarking(o.addr(), size);
        stats_.allocations.fetch_add(1, std::memory_order_relaxed);
        stats_.bytesAllocated.fetch_add(size, std::memory_order_relaxed);
        return o;
    }

    // Phase 3: initialize and persist the header over the old filler
    // header; the Klass-pointer persist is the publication point.
    // Bytes beyond the old filler header are durably zero from the
    // carve-time fill.
    Oop o(a);
    o.setMarkWord(0);
    o.setGcTimestamp(static_cast<std::uint16_t>(meta_->globalTimestamp));
    o.setKlassImage(image);
    std::size_t header = ObjectLayout::kHeaderSize;
    if (pk->isArray()) {
        o.setArrayLength(length);
        header = ObjectLayout::kArrayHeaderSize;
    } else if (size > ObjectLayout::kHeaderSize) {
        // Clear the old filler's length word, now the first field.
        storeWord(a + ObjectLayout::kHeaderSize, 0);
        header = ObjectLayout::kArrayHeaderSize;
    }
    dev_->persist(a, header);
    bornBlackIfMarking(a, size);

    stats_.allocations.fetch_add(1, std::memory_order_relaxed);
    stats_.bytesAllocated.fetch_add(size, std::memory_order_relaxed);
    return o;
}

void
PjhHeap::bornBlackIfMarking(Addr a, std::size_t size)
{
    // Objects allocated during a concurrent cycle are born black:
    // they survive the cycle unconditionally and markers never scan
    // them (their outgoing references are covered by the store
    // barrier and the remark root rescan). The phase is stable here —
    // the allocation guard is held, so the cycle cannot reach a
    // safepoint mid-allocation. Marked per object, not per chunk, so
    // the live bits stay object-granular for liveSizeAt.
    if (gcPhase_.load(std::memory_order_acquire) ==
        static_cast<unsigned>(GcPhase::kMarking)) {
        marks_.tryMarkObject(a, size);
        bornBlack_.fetch_add(1, std::memory_order_relaxed);
    }
}

Oop
PjhHeap::allocInstance(const Klass *k)
{
    if (!k || k->isArray())
        panic("PJH allocInstance: not an instance klass");
    return allocRaw(k, 0);
}

Oop
PjhHeap::allocArray(const Klass *k, std::uint64_t length)
{
    if (!k || !k->isArray())
        panic("PJH allocArray: not an array klass");
    return allocRaw(k, length);
}

void
PjhHeap::setRoot(const std::string &name, Oop obj)
{
    if (obj && !containsData(obj.addr()))
        fatal("setRoot: object is not in this persistent heap");
    RootOpGuard guard(*this);
    // SATB deletion barrier: the overwritten referent may be the last
    // snapshot path to its subgraph. (Shading the value we observed
    // is enough even if another setRoot interleaves: a value stored
    // *during* the cycle is either born black or covered by the
    // shading of its own snapshot paths.)
    if (markingConcurrently()) {
        if (NameEntry *e = names_.find(name, NameKind::kRoot))
            shade(NameTable::readValue(e));
        shade(obj.addr());
    }
    names_.upsert(name, NameKind::kRoot, obj.addr());
}

Oop
PjhHeap::getRoot(const std::string &name) const
{
    RootOpGuard guard(*this);
    NameEntry *e = names_.find(name, NameKind::kRoot);
    Oop obj = e ? Oop(NameTable::readValue(e)) : Oop();
    // Load barrier: the caller may delete the root next and keep the
    // only reference in a local, which no marker can see.
    if (obj)
        shade(obj.addr());
    return obj;
}

bool
PjhHeap::hasRoot(const std::string &name) const
{
    RootOpGuard guard(*this);
    return names_.find(name, NameKind::kRoot) != nullptr;
}

void
PjhHeap::flushField(Oop obj, std::uint32_t offset)
{
    RootOpGuard guard(*this);
    // Write barrier half for raw setRef users: the overwritten value
    // is gone by flush time, so shade the stored one (see the
    // concurrent-mode contract in the header).
    shadeFieldIfRef(obj, offset);
    // Work set is bounded to 8 bytes to preserve atomicity (§3.5).
    dev_->persist(obj.addr() + offset, kWordSize);
}

void
PjhHeap::flushArrayElement(Oop obj, std::uint64_t index)
{
    RootOpGuard guard(*this);
    const Klass *k = obj.klass();
    std::size_t esz = elementSize(k->elemType());
    if (k->elemType() == FieldType::kRef && markingConcurrently())
        shade(loadWord(obj.elemAddr(index, kWordSize)));
    dev_->persist(obj.elemAddr(index, esz), esz);
}

void
PjhHeap::flushObject(Oop obj)
{
    RootOpGuard guard(*this);
    if (markingConcurrently())
        pjhRawForEachRefSlot(obj,
                             [this](Addr slot) { shade(loadWord(slot)); });
    // All fields, one trailing fence (§3.5 coarse-grained flush).
    dev_->flush(obj.addr(), obj.sizeInBytes());
    dev_->fence();
}

void
PjhHeap::checkRefStore(Oop obj, Oop value) const
{
    if (!value)
        return;
    const Klass *k = obj.klass();
    bool restricted =
        k->persistentOnly() || safety_ == SafetyLevel::kTypeBased;
    if (restricted && !containsData(value.addr())) {
        throw MemorySafetyError(
            strCat("type-based safety: storing a non-persistent "
                   "reference into ",
                   k->name()));
    }
}

void
PjhHeap::storeRef(Oop obj, std::uint32_t offset, Oop value)
{
    checkRefStore(obj, value);
    RootOpGuard guard(*this);
    if (markingConcurrently()) {
        // Deletion barrier (SATB: the overwritten referent may be the
        // last snapshot path to its subgraph) plus an insertion shade
        // of the stored value, which covers references obtained just
        // before the cycle's snapshot and published into an
        // already-scanned object.
        shade(loadWord(obj.addr() + offset));
        shade(value.addr());
    }
    obj.setRef(offset, value);
}

void
PjhHeap::storeRefElement(Oop obj, std::uint64_t index, Oop value)
{
    checkRefStore(obj, value);
    RootOpGuard guard(*this);
    if (markingConcurrently()) {
        shade(loadWord(obj.elemAddr(index, kWordSize)));
        shade(value.addr());
    }
    obj.setRefElem(index, value.addr());
}

void
PjhHeap::forEachObject(const std::function<void(Oop)> &fn) const
{
    Addr a = dataBase_;
    Addr top = dataTop();
    while (a < top) {
        Oop o(a);
        if (!pjhRawHeaderValid(o, klasses_.base(), klasses_.size()))
            panic("PJH walk: unparseable object (missing tail repair?)");
        Addr img = o.klassImage();
        if (img != fillerInstanceImage_ && img != fillerArrayImage_)
            fn(o);
        a += pjhRawObjectSize(o);
    }
}

void
PjhHeap::forEachRefSlot(const std::function<void(Addr)> &fn) const
{
    forEachObject([&fn](Oop o) { pjhRawForEachRefSlot(o, fn); });
}

void
PjhHeap::forEachOutRefSlot(const SlotVisitor &visitor)
{
    forEachRefSlot([this, &visitor](Addr slot) {
        Addr ref = loadWord(slot);
        if (ref != kNullAddr && !dev_->contains(ref))
            visitor(slot);
    });
}

// ---------------------------------------------------------------------
// Recovery: tail repair with at most one torn tail per TLAB
// ---------------------------------------------------------------------

void
PjhHeap::plugFillerGap(Addr junk, Addr end, std::ptrdiff_t delta)
{
    std::size_t gap = end - junk;
    // The heap is still expressed in stored addresses at this point.
    writeFillerHeader(junk, gap,
                      fillerInstanceImage_ - static_cast<Addr>(delta),
                      fillerArrayImage_ - static_cast<Addr>(delta));
    dev_->persist(junk, gap >= ObjectLayout::kArrayHeaderSize
                            ? ObjectLayout::kArrayHeaderSize
                            : ObjectLayout::kHeaderSize);
    ++stats_.tailRepairs;
}

void
PjhHeap::clearTlabSlots()
{
    bool dirty = false;
    for (std::size_t i = 0; i < PjhMetadata::kMaxTlabSlots; ++i) {
        if (meta_->tlabSlotStart(i) != 0 || meta_->tlabSlotEnd(i) != 0) {
            meta_->setTlabSlot(i, 0, 0);
            dev_->flush(
                reinterpret_cast<Addr>(
                    &meta_->tlabSlots[i * PjhMetadata::kTlabSlotWords]),
                2 * kWordSize);
            dirty = true;
        }
    }
    if (dirty)
        dev_->fence();
}

void
PjhHeap::repairAllocationTail(std::ptrdiff_t delta)
{
    Addr seg_base_stored =
        reinterpret_cast<Addr>(dev_->base()) + meta_->klassSegOff -
        static_cast<Addr>(delta);

    // Registered TLAB chunks bound how far a torn allocation can
    // reach: junk inside a chunk is plugged to the chunk's end, and
    // parsing resumes there. Slot words are persisted as one cache
    // line, so a slot is either a real chunk or all-zero — but be
    // defensive about garbage anyway.
    struct ChunkBound
    {
        Addr start;
        Addr end;
    };
    std::vector<ChunkBound> chunks;
    for (std::size_t i = 0; i < PjhMetadata::kMaxTlabSlots; ++i) {
        Word s = meta_->tlabSlotStart(i);
        Word e = meta_->tlabSlotEnd(i);
        if (s == 0 && e == 0)
            continue;
        if (s >= e || e > meta_->dataSize ||
            !isAligned(s, kWordSize) || !isAligned(e, kWordSize)) {
            continue;
        }
        chunks.push_back({dataBase_ + s, dataBase_ + e});
    }
    std::sort(chunks.begin(), chunks.end(),
              [](const ChunkBound &a, const ChunkBound &b) {
                  return a.start < b.start;
              });
    auto chunkContaining = [&](Addr a) -> const ChunkBound * {
        for (const ChunkBound &c : chunks) {
            if (a >= c.start && a < c.end)
                return &c;
            if (c.start > a)
                break;
        }
        return nullptr;
    };

    Addr top = top_.load(std::memory_order_relaxed);
    Addr a = dataBase_;
    while (a < top) {
        const ChunkBound *c = chunkContaining(a);
        // Objects never span a registered chunk's end.
        Addr limit = c ? c->end : top;

        Oop o(a);
        Word kraw = o.klassRefRaw();
        bool valid = (kraw & Oop::kKlassPersistentTag) &&
                     (kraw & ~Oop::kKlassPersistentTag) >= seg_base_stored &&
                     (kraw & ~Oop::kKlassPersistentTag) <
                         seg_base_stored + meta_->klassSegSize;
        if (valid) {
            auto *img = reinterpret_cast<const KlassImage *>(
                static_cast<Addr>((kraw & ~Oop::kKlassPersistentTag) +
                                  delta));
            valid = img->pkr.magic == PersistentKlassRef::kMagic;
        }
        std::size_t size = valid ? rawSizeWithDelta(o, delta) : 0;
        if (valid && a + size <= limit) {
            a += size;
            continue;
        }

        // A torn allocation: plug the gap up to the owning chunk's
        // end, or — outside any registered chunk — up to the top,
        // which is then provably the final carve.
        plugFillerGap(a, limit, delta);
        if (!c)
            return;
        a = limit;
    }
}

void
PjhHeap::rebase(std::ptrdiff_t delta)
{
    Addr dev_base = reinterpret_cast<Addr>(dev_->base());
    Addr stored_dev_base = dev_base - static_cast<Addr>(delta);
    std::size_t dev_size = dev_->size();
    auto in_stored_device = [&](Addr v) {
        return v >= stored_dev_base && v < stored_dev_base + dev_size;
    };

    Addr a = dataBase_;
    Addr top = top_.load(std::memory_order_relaxed);
    while (a < top) {
        Oop o(a);
        Word kraw = o.klassRefRaw();
        std::size_t size = rawSizeWithDelta(o, delta);
        auto *img = reinterpret_cast<const KlassImage *>(
            static_cast<Addr>((kraw & ~Oop::kKlassPersistentTag) + delta));
        if (img->pkr.magic != PersistentKlassRef::kMagic)
            panic("rebase: unparseable heap");

        o.setKlassRefRaw(kraw + static_cast<Word>(delta));

        auto fix = [&](Addr slot) {
            Addr v = loadWord(slot);
            if (v != kNullAddr && in_stored_device(v))
                storeWord(slot, v + static_cast<Addr>(delta));
        };
        if (img->isArray()) {
            if (img->elemType() == FieldType::kRef) {
                std::uint64_t n = o.arrayLength();
                for (std::uint64_t i = 0; i < n; ++i)
                    fix(o.elemAddr(i, kWordSize));
            }
        } else {
            const FieldImage *fields = img->fields();
            for (Word i = 0; i < img->fieldCount; ++i) {
                if (static_cast<FieldType>(fields[i].type) ==
                    FieldType::kRef) {
                    fix(o.addr() + fields[i].offset);
                }
            }
        }
        a += size;
    }

    // Root entries hold absolute data-heap addresses.
    names_.forEach([&](NameEntry &e) {
        if (e.kind == static_cast<Word>(NameKind::kRoot) &&
            e.value != kNullAddr && in_stored_device(e.value)) {
            e.value += static_cast<Word>(delta);
        }
    });

    meta_->addressHint = dataBase_;
    // The scan touched pointers all over the heap; make the new
    // expression durable in one sweep.
    dev_->flush(dev_base, dev_size);
    dev_->fence();
}

void
PjhHeap::zeroingScan()
{
    bool dirty = false;
    forEachObject([&](Oop o) {
        pjhRawForEachRefSlot(o, [&](Addr slot) {
            Addr v = loadWord(slot);
            if (v != kNullAddr && !containsData(v)) {
                storeWord(slot, kNullAddr);
                dev_->flush(slot, kWordSize);
                dirty = true;
            }
        });
    });
    names_.forEach([&](NameEntry &e) {
        if (e.kind == static_cast<Word>(NameKind::kRoot) &&
            e.value != kNullAddr && !containsData(e.value)) {
            e.value = kNullAddr;
            dev_->flush(reinterpret_cast<Addr>(&e.value), kWordSize);
            dirty = true;
        }
    });
    if (dirty)
        dev_->fence();
}

void
PjhHeap::collect(VolatileHeap *volatile_heap)
{
    // Whole cycles are serialized: a mutator-triggered collect that
    // lost the race blocks here (its allocation guard is released by
    // triggerGcOutsideGuard, so the winner's safepoints still drain),
    // then runs its own cycle against the freshly compacted heap.
    std::lock_guard<std::mutex> cycle(gcCycleMu_);
    std::uint64_t t0 = nowNs();

    if (gcConcurrent()) {
        // Concurrent SATB cycle: PjhGc drives the phase transitions
        // and pause accounting itself. gcActive_ is raised only after
        // the phase leaves kIdle so the STW panic branch in
        // allocGuardEnter can never misfire on a concurrent cycle.
        PjhGc gc(*this, volatile_heap);
        gc.collectConcurrent();
        ++stats_.collections;
        return;
    }

    // Quiescence check (see the header contract): flag the
    // collection, then look for in-flight allocations. seq_cst on
    // both sides guarantees a racing allocator and this collector
    // cannot both miss each other.
    gcActive_.store(true, std::memory_order_seq_cst);
    struct ActiveReset
    {
        std::atomic<bool> &flag;
        ~ActiveReset() { flag.store(false, std::memory_order_seq_cst); }
    } reset{gcActive_};
    if (allocsInFlight_.load(std::memory_order_seq_cst) != 0) {
#ifndef NDEBUG
        panic("PJH collect(): an allocation is in flight; collections "
              "are stop-the-world and require quiesced mutators");
#endif
    }
    PjhGc gc(*this, volatile_heap);
    gc.collect();
    ++stats_.collections;
    stats_.lastGcPauseNs = nowNs() - t0;
}

} // namespace espresso
