#include "pjh/shard_router.hh"

#include <algorithm>
#include <cstring>

#include "nvm/nvm_device.hh"
#include "util/logging.hh"

namespace espresso {

// ---------------------------------------------------------------------
// ShardRouter
// ---------------------------------------------------------------------

std::uint64_t
ShardRouter::mix(std::uint64_t v)
{
    // splitmix64 finalizer: full-avalanche, cheap, stable.
    v += 0x9e3779b97f4a7c15ull;
    v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ull;
    v = (v ^ (v >> 27)) * 0x94d049bb133111ebull;
    return v ^ (v >> 31);
}

std::uint64_t
ShardRouter::hashName(const std::string &name)
{
    std::uint64_t h = 0xcbf29ce484222325ull; // FNV offset basis
    for (unsigned char c : name)
        h = (h ^ c) * 0x100000001b3ull; // FNV prime
    return mix(h);
}

ShardRouter::ShardRouter(unsigned shards, unsigned vnodes)
    : shards_(shards), vnodes_(vnodes ? vnodes : kDefaultVnodes)
{
    if (shards_ == 0)
        fatal("ShardRouter: zero shards");
    // Domain-separate the vnode points from the key-hash domain.
    // Integer keys route via mix(pk) directly, and mix is a
    // bijection: deriving points as mix((s << 32) | v) made every
    // pk < vnodes collide exactly with one of member 0's points, so
    // small primary keys all piled onto member 0. A salted second
    // mix round keeps the point set disjoint from the hash of any
    // structured key.
    constexpr std::uint64_t kPointSalt = 0xe5a7ca7e5a1ad5e5ull;
    ring_.reserve(static_cast<std::size_t>(shards_) * vnodes_);
    for (unsigned s = 0; s < shards_; ++s) {
        for (unsigned v = 0; v < vnodes_; ++v) {
            std::uint64_t point =
                mix(mix((static_cast<std::uint64_t>(s) << 32) | v) ^
                    kPointSalt);
            ring_.push_back({point, s});
        }
    }
    std::sort(ring_.begin(), ring_.end());
}

unsigned
ShardRouter::shardForHash(std::uint64_t hash) const
{
    if (ring_.empty())
        fatal("ShardRouter: routing through an empty ring");
    // First ring point at or past the hash; wrap to the lowest point.
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), hash,
        [](const Point &p, std::uint64_t h) { return p.hash < h; });
    if (it == ring_.end())
        it = ring_.begin();
    return it->shard;
}

// ---------------------------------------------------------------------
// RingManifest
// ---------------------------------------------------------------------

Word
RingManifestData::computeDeclChecksum() const
{
    Word h = 0xcbf29ce484222325ull;
    auto fold = [&h](Word v) {
        h = (h ^ v) * 0x100000001b3ull;
        h = ShardRouter::mix(h);
    };
    fold(version);
    fold(targetShardCount);
    fold(vnodes);
    fold(dataSize);
    fold(nameTableCapacity);
    fold(klassSegSize);
    fold(regionSize);
    fold(bounceSize);
    fold(undoLogSize);
    fold(tlabSize);
    return h;
}

Word
RingManifestData::computeMigrChecksum() const
{
    Word h = 0xcbf29ce484222325ull;
    auto fold = [&h](Word v) {
        h = (h ^ v) * 0x100000001b3ull;
        h = ShardRouter::mix(h);
    };
    fold(version);
    fold(migrTarget);
    fold(migrFrom);
    fold(migrEpoch);
    return h;
}

RingManifest::RingManifest(NvmDevice *device) : dev_(device)
{
    if (device->size() < persistedBytes())
        fatal("RingManifest: manifest device too small");
    d_ = reinterpret_cast<RingManifestData *>(device->base());
}

bool
RingManifest::declared() const
{
    return d_ && d_->magic == RingManifestData::kMagic &&
           d_->version == RingManifestData::kVersion &&
           d_->targetShardCount >= 1 &&
           d_->targetShardCount <= RingManifestData::kMaxShards &&
           d_->declChecksum == d_->computeDeclChecksum();
}

void
RingManifest::declare(unsigned target_shards, unsigned vnodes,
                      const PjhConfig &shard_cfg)
{
    if (target_shards == 0 ||
        target_shards > RingManifestData::kMaxShards)
        fatal("RingManifest: shard count out of range");
    std::memset(d_, 0, sizeof(*d_));
    d_->version = RingManifestData::kVersion;
    d_->epoch = 0;
    d_->shardCount = 0;
    d_->targetShardCount = target_shards;
    d_->vnodes = vnodes ? vnodes : ShardRouter::kDefaultVnodes;
    d_->dataSize = shard_cfg.dataSize;
    d_->nameTableCapacity = shard_cfg.nameTableCapacity;
    d_->klassSegSize = shard_cfg.klassSegSize;
    d_->regionSize = shard_cfg.regionSize;
    d_->bounceSize = shard_cfg.bounceSize;
    d_->undoLogSize = shard_cfg.undoLogSize;
    d_->tlabSize = shard_cfg.tlabSize;
    d_->declChecksum = d_->computeDeclChecksum();
    // One fence commits the whole declaration; the checksum (and the
    // magic) make it atomic even when a crash persists a random
    // subset of its cache lines, so a torn declare reads back as
    // "never declared" and a complete one as a fully declared,
    // zero-member fabric.
    d_->magic = RingManifestData::kMagic;
    dev_->flush(reinterpret_cast<Addr>(d_), sizeof(*d_));
    dev_->fence();
}

void
RingManifest::markFormatted(unsigned k)
{
    d_->memberState[k] = RingManifestData::kMemberFormatted;
    dev_->persist(reinterpret_cast<Addr>(&d_->memberState[k]),
                  sizeof(Word));
}

void
RingManifest::clearMember(unsigned k)
{
    d_->memberState[k] = RingManifestData::kMemberEmpty;
    dev_->persist(reinterpret_cast<Addr>(&d_->memberState[k]),
                  sizeof(Word));
}

bool
RingManifest::migrationDeclared() const
{
    return declared() && d_->migrTarget >= 1 &&
           d_->migrTarget <= RingManifestData::kMaxShards &&
           d_->migrCheck == d_->computeMigrChecksum() &&
           d_->migrEpoch == d_->epoch;
}

bool
RingManifest::migrationStale() const
{
    return declared() && d_->migrTarget >= 1 &&
           d_->migrTarget <= RingManifestData::kMaxShards &&
           d_->migrCheck == d_->computeMigrChecksum() &&
           d_->migrEpoch != d_->epoch;
}

void
RingManifest::declareMigration(unsigned target)
{
    if (target == 0 || target > RingManifestData::kMaxShards)
        fatal("RingManifest: migration target out of range");
    // Fence 1: retire any done flags left by a previous change. The
    // header is written after its own fence so a crash between the
    // two reads as "never declared" with clean flags — the header
    // line and the flag lines would otherwise persist independently.
    std::memset(d_->migrDone, 0, sizeof(d_->migrDone));
    dev_->flush(reinterpret_cast<Addr>(d_->migrDone),
                sizeof(d_->migrDone));
    dev_->fence();
    // Fence 2: the atomic declaration point. Header + checksum live
    // on one cache line; a torn persist fails the checksum.
    d_->migrTarget = target;
    d_->migrFrom = d_->shardCount;
    d_->migrEpoch = d_->epoch;
    d_->migrCheck = d_->computeMigrChecksum();
    dev_->flush(reinterpret_cast<Addr>(&d_->migrTarget),
                4 * sizeof(Word));
    dev_->fence();
}

void
RingManifest::markMigrated(unsigned k)
{
    d_->migrDone[k] = 1;
    dev_->persist(reinterpret_cast<Addr>(&d_->migrDone[k]),
                  sizeof(Word));
}

bool
RingManifest::memberMigrated(unsigned k) const
{
    return d_->migrDone[k] == 1;
}

void
RingManifest::commitMembership()
{
    commit(static_cast<unsigned>(d_->migrTarget));
}

void
RingManifest::clearMigration()
{
    d_->migrTarget = 0;
    d_->migrFrom = 0;
    d_->migrEpoch = 0;
    d_->migrCheck = 0;
    std::memset(d_->migrDone, 0, sizeof(d_->migrDone));
    dev_->flush(reinterpret_cast<Addr>(&d_->migrTarget),
                4 * sizeof(Word));
    dev_->flush(reinterpret_cast<Addr>(d_->migrDone),
                sizeof(d_->migrDone));
    dev_->fence();
}

void
RingManifest::commit(unsigned n)
{
    d_->epoch += 1;
    d_->shardCount = n;
    dev_->flush(reinterpret_cast<Addr>(&d_->epoch), sizeof(Word));
    dev_->flush(reinterpret_cast<Addr>(&d_->shardCount), sizeof(Word));
    dev_->fence();
}

PjhConfig
RingManifest::shardConfig() const
{
    PjhConfig cfg;
    cfg.dataSize = d_->dataSize;
    cfg.nameTableCapacity = d_->nameTableCapacity;
    cfg.klassSegSize = d_->klassSegSize;
    cfg.regionSize = d_->regionSize;
    cfg.bounceSize = d_->bounceSize;
    cfg.undoLogSize = d_->undoLogSize;
    cfg.tlabSize = d_->tlabSize;
    return cfg;
}

} // namespace espresso
