/**
 * @file
 * Persistent Java Heap — the paper's core contribution (§3, §4).
 *
 * A PjhHeap lives inside one NvmDevice and provides:
 *  - pnew-style allocation of managed objects in NVM with the
 *    crash-consistent protocol of §4.1 (top replica persisted before
 *    the header, header persisted before the object is usable);
 *  - the name table (setRoot/getRoot) and Klass segment;
 *  - field/array/object flush APIs (§3.5);
 *  - the three loadable memory-safety levels (§3.4);
 *  - attach-time recovery, allocation-tail repair, and the
 *    remap rebase scan (§3.3) when the heap cannot be mapped at its
 *    address hint;
 *  - root scanning glue so the volatile collectors see NVM→DRAM
 *    references (flexible cross-heap pointers, §3.2).
 *
 * Garbage collection lives in PjhGc; crash recovery in PjhRecovery.
 */

#ifndef ESPRESSO_PJH_PJH_HEAP_HH
#define ESPRESSO_PJH_PJH_HEAP_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "heap/mark_bitmap.hh"
#include "heap/volatile_heap.hh"
#include "nvm/nvm_device.hh"
#include "pjh/klass_segment.hh"
#include "pjh/name_table.hh"
#include "pjh/pjh_layout.hh"
#include "pjh/undo_log.hh"
#include "runtime/klass_registry.hh"
#include "runtime/oop.hh"
#include "util/worker_pool.hh"

namespace espresso {

/** Memory-safety level applied when a heap is loaded (§3.4). */
enum class SafetyLevel
{
    /** Volatile out-pointers are the user's problem; O(#Klasses)
     * loading. */
    kUserGuaranteed,

    /** Loading scans the whole heap and nullifies out-pointers;
     * stale accesses become null dereferences. O(#objects). */
    kZeroing,

    /** Stores of non-persistent references into persistentOnly
     * classes are refused by the write barrier. */
    kTypeBased,
};

/** Thrown by the type-based write barrier. */
class MemorySafetyError : public std::runtime_error
{
  public:
    explicit MemorySafetyError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Counters and load-phase timings. The allocation counters are
 * atomic (pnew runs concurrently); the rest are written from
 * single-threaded phases (attach, GC, recovery). */
struct PjhStats
{
    std::atomic<std::uint64_t> allocations{0};
    std::atomic<std::uint64_t> bytesAllocated{0};
    std::uint64_t collections = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t tailRepairs = 0;
    std::uint64_t rebases = 0;
    std::uint64_t lastLoadNs = 0;
    std::uint64_t lastLoadBindNs = 0;
    std::uint64_t lastLoadSafetyNs = 0;
    /** Mutator-visible stop time: the whole collection when STW, the
     * initial + remark/compact pauses when concurrent. */
    std::uint64_t lastGcPauseNs = 0;
    std::uint64_t lastGcMarkNs = 0;
    std::uint64_t lastGcCompactNs = 0;
    std::uint64_t lastGcMarked = 0;
    /** @name Concurrent-cycle observability (0 after an STW cycle) */
    /// @{
    std::uint64_t lastGcConcMarkNs = 0; ///< marking overlapped with mutators
    std::uint64_t lastGcRemarkNs = 0;   ///< final remark pause alone
    std::uint64_t lastGcShaded = 0;     ///< write-barrier shades
    std::uint64_t lastGcFloating = 0;   ///< floating-garbage upper bound
    std::uint64_t markDiscards = 0;     ///< cycles discarded by recovery
    /// @}
};

/**
 * Collection phase a mutator can observe (concurrent mode).
 *
 *  - kIdle: no cycle (or an STW collection, which quiesces mutators
 *    by contract instead of by phase).
 *  - kMarking: snapshot-at-the-beginning marking overlaps mutators;
 *    allocation, root, flush and ref-store APIs proceed under the
 *    write barrier.
 *  - kPaused: a brief safepoint (initial root snapshot, or the final
 *    remark + sliced compaction). Mutator APIs block until it lifts.
 */
enum class GcPhase : unsigned
{
    kIdle = 0,
    kMarking = 1,
    kPaused = 2,
};

/** One attached PJH instance. */
class PjhHeap : public ExternalSpace
{
  public:
    /**
     * Format @p device as a fresh PJH and attach it.
     * @param device backing NVM (must be at least computeLayout()'s
     *        total for @p cfg).
     * @param cfg creation-time sizing.
     * @param registry the runtime's class directory.
     */
    static std::unique_ptr<PjhHeap> create(NvmDevice *device,
                                           const PjhConfig &cfg,
                                           KlassRegistry *registry);

    /**
     * Attach an existing PJH (the loadHeap analog): run recovery if
     * a collection was interrupted, repair the allocation tail after
     * an unclean shutdown, rebase if the mapping moved away from the
     * address hint, reinitialize Klass images in place, and apply
     * @p safety.
     */
    static std::unique_ptr<PjhHeap> attach(NvmDevice *device,
                                           KlassRegistry *registry,
                                           SafetyLevel safety);

    ~PjhHeap() override;

    /** Clean shutdown: everything durable, cleanShutdown flag set. */
    void detach();

    /**
     * @name Allocation (the pnew bytecodes, §3.2 / §4.1)
     *
     * Thread-safe: each thread bumps a private TLAB chunk carved
     * from the shared top under the heap lock. Chunk handoff is
     * crash-consistent — a chunk is formatted as one durable filler
     * object before the top replica publishes it and is then
     * registered in the metadata's TLAB slot table, and every
     * allocation re-establishes a trailing filler over the chunk's
     * unused tail before the object header is persisted. Recovery
     * therefore repairs at most one torn tail per TLAB. STW
     * collections require the caller to ensure no thread allocates
     * during collect(); in concurrent mode allocation overlaps
     * marking (objects are born black) and blocks only during the
     * cycle's brief safepoints.
     */
    /// @{
    Oop allocInstance(const Klass *k);
    Oop allocArray(const Klass *k, std::uint64_t length);

    /** Invoked when the data heap is full; should trigger a
     * collection. Unset → allocation failure is fatal. */
    void setGcTrigger(std::function<void()> trigger);
    /// @}

    /**
     * @name Roots (Table 1)
     *
     * Thread-safe: backed by the striped name table. Lookups are
     * lock-free; publication takes one bucket-range spinlock.
     * Over-long names are never stored, so lookups of them simply
     * miss (setRoot of one is still fatal).
     */
    /// @{
    void setRoot(const std::string &name, Oop obj);
    Oop getRoot(const std::string &name) const;
    bool hasRoot(const std::string &name) const;
    /// @}

    /** @name Persistence guarantee APIs (§3.5) */
    /// @{
    /** Persist one 8-byte field (Field.flush analog). */
    void flushField(Oop obj, std::uint32_t offset);

    /** Persist one array element (Array.flush analog). */
    void flushArrayElement(Oop obj, std::uint64_t index);

    /** Persist all data words of @p obj with a single fence. */
    void flushObject(Oop obj);
    /// @}

    /**
     * Reference store with the write barrier: enforces type-based
     * safety and keeps the NVM→DRAM remembered behaviour observable.
     */
    void storeRef(Oop obj, std::uint32_t offset, Oop value);

    /** Type-based-checked array-element store. */
    void storeRefElement(Oop obj, std::uint64_t index, Oop value);

    /** @name Geometry */
    /// @{
    bool
    containsData(Addr a) const
    {
        return a >= dataBase_ && a < dataBase_ + meta_->dataSize;
    }

    Addr dataBase() const { return dataBase_; }
    Addr dataTop() const { return top_.load(std::memory_order_acquire); }

    /** Bytes below the shared top, including carved-but-unused TLAB
     * chunk tails (they are reclaimed by the next collection). */
    std::size_t dataUsed() const { return dataTop() - dataBase_; }

    std::size_t dataCapacity() const { return meta_->dataSize; }
    /// @}

    /** Walk every live-or-dead user object in allocation order.
     * Filler objects (TLAB tails, repaired gaps) are skipped. */
    void forEachObject(const std::function<void(Oop)> &fn) const;

    /** Walk every reference slot of every object. */
    void forEachRefSlot(const std::function<void(Addr)> &fn) const;

    /** ExternalSpace: slots referencing DRAM (for the volatile GC). */
    void forEachOutRefSlot(const SlotVisitor &visitor) override;

    /** ExternalSpace: DRAM-side SATB deletion barrier — a volatile
     * root slot (handle) dropped @p ref, which may be the last
     * snapshot path into this heap. No-op unless a concurrent cycle
     * is marking and @p ref lands in our data space. */
    void shadeOverwrittenRef(Addr ref) override { shade(ref); }

    /**
     * Full persistent-space collection (System.gc() analog);
     * @p volatile_heap supplies DRAM→NVM roots (may be null).
     *
     * STW mode precondition: mutators are quiesced — no thread may be
     * inside an allocation (or start one) for the duration of the
     * call. The allocation-epoch guard makes a racing allocator panic
     * in debug builds; in release builds the precondition is the
     * caller's responsibility (this documented contract).
     *
     * Concurrent mode (setGcConcurrent) drops that precondition:
     * mutators may allocate and mutate throughout marking; they are
     * only stopped for the initial snapshot and the remark+compact
     * window (see the mode's contract above). Cycles are serialized;
     * a second caller blocks, then runs its own full cycle.
     */
    void collect(VolatileHeap *volatile_heap);

    /**
     * @name GC parallelism knob
     *
     * Worker threads used by the persistent mark and compact phases.
     * 1 (the default) is the classic serial stop-the-world path;
     * higher values fan mark work and compaction slices out across
     * threads, bounded by PjhMetadata::kMaxGcSlices. Defaults to
     * ESPRESSO_GC_THREADS when set; passing 0 restores that default.
     */
    /// @{
    unsigned
    gcThreads() const
    {
        return gcThreads_.load(std::memory_order_relaxed);
    }

    void setGcThreads(unsigned n);
    /// @}

    /**
     * @name Concurrent (SATB) collection mode
     *
     * Off (the default), collect() is the classic stop-the-world
     * cycle. On, collect() runs snapshot-at-the-beginning marking
     * concurrently with mutators: a brief initial pause snapshots the
     * roots and flips the marking phase, marker threads then race
     * mutators under the deletion/insertion write barrier (see
     * storeRef / setRoot / flushField), objects allocated during the
     * cycle are born black, and only the final remark plus the sliced
     * compaction stop mutators. Defaults to ESPRESSO_GC_CONCURRENT
     * when set.
     *
     * Contract while a concurrent cycle is marking:
     *  - reference mutations must go through storeRef /
     *    storeRefElement / setRoot (the barrier shades both the
     *    overwritten and the stored referent); a raw Oop::setRef is
     *    only safe when followed by flushField of the same slot
     *    before the cycle's remark;
     *  - a reference obtained before the cycle began (pnew result,
     *    getRoot) must be stored into a scannable location — or the
     *    compound op wrapped in a MutatorSection, which holds off the
     *    cycle's safepoints — before the thread yields for a full
     *    cycle, since there is no stack scanning.
     */
    /// @{
    bool
    gcConcurrent() const
    {
        return gcConcurrent_.load(std::memory_order_relaxed);
    }

    void
    setGcConcurrent(bool on)
    {
        gcConcurrent_.store(on, std::memory_order_relaxed);
    }

    /** Phase observed by mutators; kIdle during STW collections. */
    GcPhase
    gcPhase() const
    {
        return static_cast<GcPhase>(
            gcPhase_.load(std::memory_order_acquire));
    }

    /** True while marking overlaps mutators (root/alloc/flush ops
     * proceed under the barrier instead of blocking). */
    bool
    markingConcurrently() const
    {
        return gcPhase() == GcPhase::kMarking;
    }

    /**
     * RAII mutator section: while held, a concurrent cycle cannot
     * reach a safepoint (the collector's pause drains all sections
     * first), so raw references stay valid across the bracketed
     * compound operation. Cheap (one atomic inc/dec); may block
     * briefly at entry while a safepoint is in force. Nests with
     * itself and with the allocation guard: guarded ops (pnew,
     * setRoot, flushField, storeRef, ...) called inside a section
     * proceed even as a safepoint is being requested — the collector
     * waits for the outermost bracket to exit.
     */
    class MutatorSection
    {
      public:
        explicit MutatorSection(PjhHeap &h) : h_(h)
        {
            h_.allocGuardEnter();
        }
        ~MutatorSection() { h_.allocGuardExit(); }
        MutatorSection(const MutatorSection &) = delete;
        MutatorSection &operator=(const MutatorSection &) = delete;

      private:
        PjhHeap &h_;
    };
    /// @}

    /**
     * @name Allocation-epoch guard (collect() quiescence check)
     *
     * Every allocation brackets its heap-mutating window with
     * enter/exit; an STW collect() raises the GC-active flag and
     * checks the in-flight count. Both sides use seq_cst so at least
     * one of a racing (allocator, collector) pair observes the other
     * — the race then fails loudly (debug panic) instead of silently
     * corrupting the heap. In release builds the check compiles to
     * nothing beyond the counter and the documented precondition on
     * collect() stands. In concurrent mode the same counter doubles
     * as the safepoint drain: entry spins while the phase is kPaused,
     * and the collector's pause waits for the count to reach zero.
     * Public for the internal RAII bracket; not part of the user API.
     */
    /// @{
    void allocGuardEnter();
    void allocGuardExit();

    /** True while a collect() owns this heap — lets a fabric
     * coordinator (or a test) observe a shard-local pause without
     * racing on the persistent in-collection flag. */
    bool
    collecting() const
    {
        return gcActive_.load(std::memory_order_acquire);
    }
    /// @}

    NvmDevice &device() { return *dev_; }
    PjhMetadata &meta() { return *meta_; }
    UndoLog &undoLog() { return undoLog_; }
    NameTable &names() { return names_; }
    KlassSegment &klasses() { return klasses_; }
    KlassRegistry &registry() { return *registry_; }
    SafetyLevel safety() const { return safety_; }
    const PjhStats &stats() const { return stats_; }
    PjhStats &mutableStats() { return stats_; }

  private:
    friend class PjhGc;
    friend class PjhCompactor;
    friend class PjhRecovery;

    PjhHeap(NvmDevice *device, KlassRegistry *registry);

    static constexpr int kSlotUnassigned = -1;
    /** No slot available: fall back to fully locked allocation. */
    static constexpr int kSlotless = -2;

    /** One thread's private allocation window into this heap. */
    struct ThreadTlab
    {
        Addr bump = 0;              ///< next free byte
        Addr end = 0;               ///< chunk end (exclusive)
        int slot = kSlotUnassigned; ///< metadata TLAB slot index
        std::uint64_t epoch = 0;    ///< tlabEpoch_ at carve time
        /** One-entry pnew resolution cache (klass -> persistent
         * alias + image); hit on ~every allocation of a hot class,
         * skipping two mutexes on the fast path. */
        const Klass *cachedKlass = nullptr;
        const Klass *cachedPk = nullptr;
        Addr cachedImage = 0;
    };

    void setupViews();
    void cacheFillerImages();
    Oop allocRaw(const Klass *k, std::uint64_t length);

    /** This thread's TLAB for this heap instance. */
    ThreadTlab &threadTlab() const;

    /**
     * Reserve @p size bytes in @p t's chunk, re-establishing the
     * durable trailing filler first; carves a new chunk (possibly
     * triggering a collection) when the current one cannot serve the
     * request. Returns kNullAddr when the thread must use the
     * slotless locked path. On return the caller owns [addr,
     * addr+size): bytes past the old filler header are durably zero
     * and the caller must write and persist the object header.
     */
    Addr tlabReserve(ThreadTlab &t, std::size_t size);

    /** Carve and register a fresh chunk of at least @p min_size.
     * False when the thread has no TLAB slot (slotless fallback). */
    bool carveChunk(ThreadTlab &t, std::size_t min_size);

    /** Fully locked, immediately durable allocation for threads
     * beyond the TLAB slot table. */
    Oop allocSlotless(const Klass *pk, Addr image, std::uint64_t length,
                      std::size_t size);

    /** Born-black marking for objects allocated while a concurrent
     * cycle is tracing (caller holds the allocation guard). */
    void bornBlackIfMarking(Addr a, std::size_t size);

    /**
     * Write a filler header covering [a, a+gap) (working image only;
     * the caller persists). The image addresses default to the
     * cached physical ones; repair passes them re-expressed in the
     * stored address space.
     */
    void writeFillerHeader(Addr a, std::size_t gap,
                           Addr instance_image = 0, Addr array_image = 0);

    void repairAllocationTail(std::ptrdiff_t delta);

    /** Overwrite [junk, end) with a filler parseable in the stored
     * address space (repair helper). */
    void plugFillerGap(Addr junk, Addr end, std::ptrdiff_t delta);

    /** Clear and persist every TLAB slot (attach / post-GC). */
    void clearTlabSlots();

    /** Invoke the GC trigger with the allocation-epoch guard
     * released, restoring it even on an exception. */
    void triggerGcOutsideGuard();

    /**
     * @name Concurrent-marking internals (write barrier + safepoint)
     */
    /// @{
    /** Root/flush-op bracket: like the allocation guard but without
     * the STW debug panic — root reads legitimately probe shards that
     * are STW-collecting (the fabric's fallback scan). Blocks while
     * the phase is kPaused. Const: called from const read paths. */
    void rootOpGuardEnter() const;
    void rootOpGuardExit() const;

    /** Spin until the collector lifts the safepoint. */
    void waitWhilePaused() const;

    /**
     * SATB shade: claim @p ref in the mark bitmap and queue it for
     * the markers to scan. No-op unless the phase is kMarking and
     * @p ref is a non-filler data-heap object start. Must be called
     * with an alloc/root-op guard held (the safepoint drain is what
     * keeps a shade from racing the remark's bitmap fixpoint).
     */
    void shade(Addr ref) const;

    /** Shade the current value of @p obj's slot at @p offset iff the
     * Klass image declares a reference field there (flushField can't
     * see the overwritten value, so it shades the stored one). */
    void shadeFieldIfRef(Oop obj, std::uint32_t offset) const;

    /** RAII root-op bracket. */
    struct RootOpGuard
    {
        explicit RootOpGuard(const PjhHeap &h) : h_(h)
        {
            h_.rootOpGuardEnter();
        }
        ~RootOpGuard() { h_.rootOpGuardExit(); }
        RootOpGuard(const RootOpGuard &) = delete;
        RootOpGuard &operator=(const RootOpGuard &) = delete;
        const PjhHeap &h_;
    };
    /// @}

    void rebase(std::ptrdiff_t delta);
    void zeroingScan();
    void checkRefStore(Oop obj, Oop value) const;

    /** Object size via the Klass image, honoring a not-yet-rebased
     * heap (@p delta = physical - stored address). */
    std::size_t rawSizeWithDelta(Oop o, std::ptrdiff_t delta) const;

    NvmDevice *dev_;
    KlassRegistry *registry_;
    PjhMetadata *meta_ = nullptr;
    NameTable names_;
    KlassSegment klasses_;
    Addr dataBase_ = 0;
    std::atomic<Addr> top_{0};
    MarkBitmap marks_;
    BitmapView regionBits_;
    UndoLog undoLog_;
    SafetyLevel safety_ = SafetyLevel::kUserGuaranteed;
    std::function<void()> gcTrigger_;
    PjhStats stats_;

    /** Serializes chunk carving and the shared-top publication. */
    std::mutex topMu_;
    /** Heap identity for the thread-local TLAB map; never reused. */
    std::uint64_t serial_;
    /** Bumped whenever a collection invalidates every TLAB. */
    std::atomic<std::uint64_t> tlabEpoch_{1};
    /** Next free metadata TLAB slot. */
    std::atomic<std::uint32_t> nextTlabSlot_{0};
    /** Chunk size (bytes); meta_->tlabBytes, or ESPRESSO_TLAB_BYTES. */
    std::size_t tlabBytes_ = 0;
    /** GC worker threads (mark + compact); see setGcThreads(). */
    std::atomic<unsigned> gcThreads_{1};
    /** Persistent worker team for the parallel GC phases: reusing
     * threads across collections bounds the per-thread NVM staging
     * shards the device registers and skips thread-start latency. */
    WorkerPool gcPool_;
    /** Allocations currently inside their heap-mutating window. */
    std::atomic<std::uint32_t> allocsInFlight_{0};
    /** True while collect() owns the heap. */
    std::atomic<bool> gcActive_{false};
    /** Serializes whole collection cycles (a mutator-triggered
     * collect that lost the race simply runs after the winner). */
    std::mutex gcCycleMu_;
    /** Concurrent-mode collection phase (GcPhase). */
    std::atomic<unsigned> gcPhase_{0};
    /** Root/flush ops currently inside their bracket. */
    mutable std::atomic<std::uint32_t> rootOpsInFlight_{0};
    /** Concurrent (SATB) mode knob; ESPRESSO_GC_CONCURRENT default. */
    std::atomic<bool> gcConcurrent_{false};
    /** SATB buffer: shaded (already claimed) objects whose children
     * the markers still have to scan. */
    mutable std::mutex satbMu_;
    mutable std::vector<Addr> satbBuffer_;
    /** Per-cycle barrier counters (reset at each cycle's start). */
    mutable std::atomic<std::uint64_t> shadeCount_{0};
    std::atomic<std::uint64_t> bornBlack_{0};
    /** Cached filler KlassImage addresses for walk skipping. */
    Addr fillerInstanceImage_ = 0;
    Addr fillerArrayImage_ = 0;
};

} // namespace espresso

#endif // ESPRESSO_PJH_PJH_HEAP_HH
