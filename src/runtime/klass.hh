/**
 * @file
 * Runtime class metadata (the OpenJDK "Klass" analog).
 *
 * A Klass describes the layout of instances: flattened field table
 * (including superclass fields), instance size, and the oop map (the
 * offsets of reference fields) that the collectors and safety checks
 * walk. Array Klasses carry an element type and, for object arrays,
 * an element Klass.
 *
 * Alias Klasses (paper §3.2): because objects of one logical class can
 * live in both DRAM and NVM, there can be two physical Klasses for the
 * same logical class — one in the Meta Space, one (an image) in a
 * PJH Klass segment. Physical Klasses sharing a logical id are
 * aliases; type checks compare logical ids, never physical pointers.
 */

#ifndef ESPRESSO_RUNTIME_KLASS_HH
#define ESPRESSO_RUNTIME_KLASS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/value.hh"
#include "util/common.hh"

namespace espresso {

/** Which memory kind a physical Klass serves. */
enum class MemKind : std::uint8_t
{
    kVolatile = 0,  ///< DRAM (the normal Java heap)
    kPersistent = 1 ///< NVM (a PJH instance)
};

/** One declared field. */
struct FieldDesc
{
    std::string name;
    FieldType type;
    std::uint32_t offset; ///< byte offset from object start
};

/** Object header geometry (shared by all spaces). */
struct ObjectLayout
{
    static constexpr std::uint32_t kMarkOffset = 0;
    static constexpr std::uint32_t kKlassOffset = 8;
    static constexpr std::uint32_t kHeaderSize = 16;
    static constexpr std::uint32_t kArrayLengthOffset = 16;
    static constexpr std::uint32_t kArrayHeaderSize = 24;
};

class Klass;

/** Declarative description used to define a logical class. */
struct KlassDef
{
    std::string name;
    std::string superName; ///< empty for none
    std::vector<std::pair<std::string, FieldType>> fields;
    /** Type-based safety (§3.4): instances may only reference
     * persistent objects. */
    bool persistentOnly = false;
};

/** Runtime class metadata. */
class Klass
{
  public:
    /** @name Identity */
    /// @{
    std::uint32_t logicalId() const { return logicalId_; }
    const std::string &name() const { return name_; }
    MemKind memKind() const { return memKind_; }
    const Klass *super() const { return super_; }

    /** True if @p other is this class or a superclass of it. */
    bool isSubtypeOf(const Klass *other) const;

    /** True if the two physical Klasses denote one logical class. */
    bool
    sameLogical(const Klass *other) const
    {
        return other && logicalId_ == other->logicalId();
    }
    /// @}

    /** @name Instance shape */
    /// @{
    bool isArray() const { return isArray_; }
    FieldType elemType() const { return elemType_; }
    const Klass *elemKlass() const { return elemKlass_; }
    std::uint32_t instanceSize() const { return instanceSize_; }
    bool persistentOnly() const { return persistentOnly_; }

    /** Flattened fields, superclass fields first. */
    const std::vector<FieldDesc> &fields() const { return fields_; }

    /** Offsets of reference fields (the oop map). */
    const std::vector<std::uint32_t> &refOffsets() const
    {
        return refOffsets_;
    }

    /** Byte offset of field @p field_name; panics when absent. */
    std::uint32_t fieldOffset(const std::string &field_name) const;

    /** Field descriptor by name, or nullptr. */
    const FieldDesc *findField(const std::string &field_name) const;
    /// @}

  private:
    friend class KlassRegistry;

    Klass() = default;

    std::uint32_t logicalId_ = 0;
    std::string name_;
    MemKind memKind_ = MemKind::kVolatile;
    const Klass *super_ = nullptr;
    std::vector<FieldDesc> fields_;
    std::vector<std::uint32_t> refOffsets_;
    std::uint32_t instanceSize_ = ObjectLayout::kHeaderSize;
    bool isArray_ = false;
    FieldType elemType_ = FieldType::kRef;
    const Klass *elemKlass_ = nullptr;
    bool persistentOnly_ = false;
};

} // namespace espresso

#endif // ESPRESSO_RUNTIME_KLASS_HH
