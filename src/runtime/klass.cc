#include "runtime/klass.hh"

#include "util/logging.hh"

namespace espresso {

bool
Klass::isSubtypeOf(const Klass *other) const
{
    if (!other)
        return false;
    for (const Klass *k = this; k; k = k->super_) {
        if (k->sameLogical(other))
            return true;
    }
    return false;
}

std::uint32_t
Klass::fieldOffset(const std::string &field_name) const
{
    const FieldDesc *f = findField(field_name);
    if (!f)
        panic("Klass " + name_ + " has no field '" + field_name + "'");
    return f->offset;
}

const FieldDesc *
Klass::findField(const std::string &field_name) const
{
    for (const FieldDesc &f : fields_) {
        if (f.name == field_name)
            return &f;
    }
    return nullptr;
}

} // namespace espresso
