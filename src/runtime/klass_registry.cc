#include "runtime/klass_registry.hh"

#include "util/logging.hh"

namespace espresso {

KlassRegistry::KlassRegistry() = default;
KlassRegistry::~KlassRegistry() = default;

KlassRegistry::LogicalClass *
KlassRegistry::logicalOf(const std::string &name)
{
    auto it = logical_.find(name);
    return it == logical_.end() ? nullptr : it->second.get();
}

Klass *
KlassRegistry::define(const KlassDef &def)
{
    std::lock_guard<std::recursive_mutex> g(mu_);
    if (LogicalClass *existing = logicalOf(def.name)) {
        Klass *k = existing->physical[0];
        if (!shapeMatches(k, def))
            fatal("class " + def.name + " redefined with a different shape");
        return k;
    }

    const Klass *super = nullptr;
    if (!def.superName.empty()) {
        super = find(def.superName);
        if (!super)
            fatal("superclass " + def.superName + " of " + def.name +
                  " is not defined");
        if (super->isArray())
            fatal("cannot extend array class " + def.superName);
    }

    auto lc = std::make_unique<LogicalClass>();
    lc->def = def;
    LogicalClass *lcp = lc.get();
    logical_[def.name] = std::move(lc);
    return newPhysical(*lcp, MemKind::kVolatile);
}

Klass *
KlassRegistry::newPhysical(LogicalClass &lc, MemKind kind)
{
    auto owned = std::unique_ptr<Klass>(new Klass());
    Klass *k = owned.get();
    allKlasses_.push_back(std::move(owned));

    const KlassDef &def = lc.def;
    k->name_ = def.name;
    k->memKind_ = kind;
    k->persistentOnly_ = def.persistentOnly;

    const Klass *super = nullptr;
    if (!def.superName.empty()) {
        // The superclass alias of the same kind keeps subtype walks
        // within one memory kind, matching the Klass-segment layout.
        super = physicalFor(find(def.superName), kind);
    }
    k->super_ = super;

    std::uint32_t offset = ObjectLayout::kHeaderSize;
    if (super) {
        k->fields_ = super->fields_;
        k->refOffsets_ = super->refOffsets_;
        offset = super->instanceSize_;
    }
    for (const auto &[fname, ftype] : def.fields) {
        // Every instance field occupies one 8-byte slot; this keeps
        // oop maps and accessors uniform (documented in DESIGN.md).
        k->fields_.push_back(FieldDesc{fname, ftype, offset});
        if (ftype == FieldType::kRef)
            k->refOffsets_.push_back(offset);
        offset += kWordSize;
    }
    k->instanceSize_ = offset;

    // Allocate a stable logical id shared by all aliases.
    if (lc.physical[0] == nullptr && lc.physical[1] == nullptr)
        k->logicalId_ = nextLogicalId_++;
    else
        k->logicalId_ = (lc.physical[0] ? lc.physical[0] : lc.physical[1])
                            ->logicalId();

    lc.physical[static_cast<int>(kind)] = k;
    return k;
}

Klass *
KlassRegistry::find(const std::string &name) const
{
    std::lock_guard<std::recursive_mutex> g(mu_);
    auto it = logical_.find(name);
    if (it == logical_.end())
        return nullptr;
    return it->second->physical[0] ? it->second->physical[0]
                                   : it->second->physical[1];
}

Klass *
KlassRegistry::resolve(const std::string &name, MemKind kind)
{
    std::lock_guard<std::recursive_mutex> g(mu_);
    LogicalClass *lc = logicalOf(name);
    if (!lc)
        fatal("resolve: class " + name + " is not defined");
    Klass *k = lc->physical[static_cast<int>(kind)];
    if (!k)
        k = newPhysical(*lc, kind);
    // The single constant-pool slot: last resolution wins.
    lc->resolvedSlot = k;
    return k;
}

Klass *
KlassRegistry::physicalFor(const Klass *k, MemKind kind)
{
    std::lock_guard<std::recursive_mutex> g(mu_);
    if (!k)
        panic("physicalFor: null klass");
    if (k->memKind() == kind)
        return const_cast<Klass *>(k);
    LogicalClass *lc = logicalOf(k->name());
    if (!lc)
        panic("physicalFor: unregistered klass " + k->name());
    Klass *alias = lc->physical[static_cast<int>(kind)];
    return alias ? alias : newPhysical(*lc, kind);
}

Klass *
KlassRegistry::makeArrayKlass(const std::string &name, FieldType elem,
                              const Klass *elem_klass, MemKind kind)
{
    LogicalClass *lc = logicalOf(name);
    if (!lc) {
        auto owned = std::make_unique<LogicalClass>();
        owned->def.name = name;
        lc = owned.get();
        logical_[name] = std::move(owned);
    }
    if (Klass *k = lc->physical[static_cast<int>(kind)])
        return k;

    auto owned = std::unique_ptr<Klass>(new Klass());
    Klass *k = owned.get();
    allKlasses_.push_back(std::move(owned));
    k->name_ = name;
    k->memKind_ = kind;
    k->isArray_ = true;
    k->elemType_ = elem;
    k->elemKlass_ = elem_klass;
    k->instanceSize_ = ObjectLayout::kArrayHeaderSize;
    if (lc->physical[0] == nullptr && lc->physical[1] == nullptr)
        k->logicalId_ = nextLogicalId_++;
    else
        k->logicalId_ = (lc->physical[0] ? lc->physical[0] : lc->physical[1])
                            ->logicalId();
    lc->physical[static_cast<int>(kind)] = k;
    lc->resolvedSlot = k;
    return k;
}

Klass *
KlassRegistry::arrayOf(FieldType elem, MemKind kind)
{
    std::lock_guard<std::recursive_mutex> g(mu_);
    if (elem == FieldType::kRef)
        panic("arrayOf(kRef): use arrayOfRefs");
    std::string name = std::string("[") + fieldTypeCode(elem);
    return makeArrayKlass(name, elem, nullptr, kind);
}

Klass *
KlassRegistry::arrayOfRefs(const Klass *elem, MemKind kind)
{
    std::lock_guard<std::recursive_mutex> g(mu_);
    if (!elem)
        panic("arrayOfRefs: null element class");
    std::string name = "[L" + elem->name() + ";";
    return makeArrayKlass(name, FieldType::kRef, elem, kind);
}

Klass *
KlassRegistry::arrayOfNamed(const std::string &name, FieldType elem,
                            MemKind kind)
{
    std::lock_guard<std::recursive_mutex> g(mu_);
    if (elem == FieldType::kRef)
        panic("arrayOfNamed(kRef): use arrayOfRefs");
    return makeArrayKlass(name, elem, nullptr, kind);
}

void
KlassRegistry::checkCast(const Klass *obj_klass,
                         const std::string &target_name)
{
    std::lock_guard<std::recursive_mutex> g(mu_);
    LogicalClass *lc = logicalOf(target_name);
    if (!lc)
        fatal("checkCast: class " + target_name + " is not defined");

    if (strict_) {
        // Stock-JVM behaviour (Fig. 10): compare the physical Klass
        // chain against the constant pool's resolved slot.
        const Klass *slot = lc->resolvedSlot;
        for (const Klass *k = obj_klass; k; k = k->super()) {
            if (k == slot)
                return;
        }
        throw ClassCastException(
            strCat("cannot cast ", obj_klass ? obj_klass->name() : "null",
                   " (physical Klass mismatch) to ", target_name));
    }

    if (!instanceOf(obj_klass, target_name))
        throw ClassCastException(
            strCat("cannot cast ", obj_klass ? obj_klass->name() : "null",
                   " to ", target_name));
}

bool
KlassRegistry::instanceOf(const Klass *obj_klass,
                          const std::string &target_name)
{
    std::lock_guard<std::recursive_mutex> g(mu_);
    if (!obj_klass)
        return false;
    LogicalClass *lc = logicalOf(target_name);
    if (!lc)
        return false;
    const Klass *target =
        lc->physical[0] ? lc->physical[0] : lc->physical[1];
    return obj_klass->isSubtypeOf(target);
}

KlassDef
KlassRegistry::defOf(const Klass *k) const
{
    std::lock_guard<std::recursive_mutex> g(mu_);
    if (!k || k->isArray())
        panic("defOf: not an instance klass");
    auto it = logical_.find(k->name());
    if (it == logical_.end())
        panic("defOf: unregistered klass " + k->name());
    return it->second->def;
}

bool
KlassRegistry::shapeMatches(const Klass *k, const KlassDef &def)
{
    if (!k)
        return false;
    std::size_t inherited =
        k->super() ? k->super()->fields().size() : 0;
    if (k->fields().size() - inherited != def.fields.size())
        return false;
    for (std::size_t i = 0; i < def.fields.size(); ++i) {
        const FieldDesc &f = k->fields()[inherited + i];
        if (f.name != def.fields[i].first || f.type != def.fields[i].second)
            return false;
    }
    std::string super_name = k->super() ? k->super()->name() : "";
    return super_name == def.superName;
}

} // namespace espresso
