#include "runtime/oop.hh"

#include "util/logging.hh"

namespace espresso {

const Klass *
Oop::klass() const
{
    Word ref = klassRefRaw();
    if (ref == 0)
        panic("Oop::klass: object has a null klass ref");
    if (ref & kKlassPersistentTag) {
        auto *pkr = reinterpret_cast<const PersistentKlassRef *>(
            ref & ~kKlassPersistentTag);
        if (pkr->magic != PersistentKlassRef::kMagic)
            panic("Oop::klass: corrupted KlassImage magic");
        if (!pkr->runtimeKlass)
            panic("Oop::klass: KlassImage not reinitialized "
                  "(missing loadHeap?)");
        return pkr->runtimeKlass;
    }
    return reinterpret_cast<const Klass *>(ref);
}

std::size_t
Oop::sizeInBytes() const
{
    return sizeFor(klass(), klass()->isArray() ? arrayLength() : 0);
}

std::size_t
Oop::sizeFor(const Klass *k, std::uint64_t array_len)
{
    if (k->isArray()) {
        std::size_t esz = elementSize(k->elemType());
        return alignUp(ObjectLayout::kArrayHeaderSize + array_len * esz,
                       kWordSize);
    }
    return alignUp(k->instanceSize(), kWordSize);
}

} // namespace espresso
