/**
 * @file
 * The class directory: logical classes, physical (per-memory-kind)
 * Klasses, array Klasses, and constant-pool-style symbol resolution.
 *
 * OpenJDK keeps one slot per class symbol in each constant pool; after
 * resolution the slot holds a Klass address. The paper's Fig. 10 shows
 * how this breaks when one logical class materializes as two physical
 * Klasses (DRAM + NVM): the slot flips to whichever was resolved last
 * and an unrelated-looking ClassCastException surfaces. The registry
 * reproduces that single-slot behaviour and implements the fix —
 * alias-aware type checks on logical ids. `setStrictPhysicalTypeCheck`
 * re-enables the broken stock behaviour so tests can demonstrate the
 * failure.
 */

#ifndef ESPRESSO_RUNTIME_KLASS_REGISTRY_HH
#define ESPRESSO_RUNTIME_KLASS_REGISTRY_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/klass.hh"

namespace espresso {

/** The analog of java.lang.ClassCastException. */
class ClassCastException : public std::runtime_error
{
  public:
    explicit ClassCastException(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Owns all Klass metadata for one runtime instance. */
class KlassRegistry
{
  public:
    KlassRegistry();
    KlassRegistry(const KlassRegistry &) = delete;
    KlassRegistry &operator=(const KlassRegistry &) = delete;
    ~KlassRegistry();

    /**
     * Define a logical class; returns its volatile physical Klass.
     * The superclass, if named, must already be defined. Redefining
     * an existing name with an identical shape returns the existing
     * Klass; a different shape is fatal.
     */
    Klass *define(const KlassDef &def);

    /** Volatile physical Klass by name, or nullptr. */
    Klass *find(const std::string &name) const;

    /**
     * Constant-pool resolution: fetch the physical Klass of @p name
     * for memory kind @p kind, creating the alias on first use, and
     * record it in the class's single resolved slot.
     */
    Klass *resolve(const std::string &name, MemKind kind);

    /** The alias of @p k for @p kind (may be @p k itself). */
    Klass *physicalFor(const Klass *k, MemKind kind);

    /** Primitive array class, e.g. arrayOf(kI64) is "[J". */
    Klass *arrayOf(FieldType elem, MemKind kind = MemKind::kVolatile);

    /** Object array class "[L<name>;". */
    Klass *arrayOfRefs(const Klass *elem, MemKind kind = MemKind::kVolatile);

    /**
     * A primitive array class under a non-canonical name, with its
     * own logical id. The PJH uses this for its filler-array class,
     * which must be distinguishable from user "[J" arrays when heap
     * walks skip dead filler space.
     */
    Klass *arrayOfNamed(const std::string &name, FieldType elem,
                        MemKind kind = MemKind::kVolatile);

    /**
     * checkcast: verify an object of physical class @p obj_klass can
     * be cast to @p target_name; throws ClassCastException otherwise.
     * Honors the strict/alias mode.
     */
    void checkCast(const Klass *obj_klass, const std::string &target_name);

    /** instanceof with alias-aware semantics (never throws). */
    bool instanceOf(const Klass *obj_klass, const std::string &target_name);

    /**
     * Reproduce the stock-JVM bug of Fig. 10: type checks compare the
     * physical Klass against the constant pool's resolved slot.
     */
    void setStrictPhysicalTypeCheck(bool strict) { strict_ = strict; }
    bool strictPhysicalTypeCheck() const { return strict_; }

    /** Reconstruct a KlassDef from a defined class (for Klass images). */
    KlassDef defOf(const Klass *k) const;

    /** True if @p k matches @p def field-for-field. */
    static bool shapeMatches(const Klass *k, const KlassDef &def);

    std::size_t
    numLogical() const
    {
        std::lock_guard<std::recursive_mutex> g(mu_);
        return logical_.size();
    }

  private:
    struct LogicalClass
    {
        KlassDef def;
        Klass *physical[2] = {nullptr, nullptr}; // by MemKind
        Klass *resolvedSlot = nullptr;           // constant-pool slot
    };

    Klass *newPhysical(LogicalClass &lc, MemKind kind);
    LogicalClass *logicalOf(const std::string &name);
    Klass *makeArrayKlass(const std::string &name, FieldType elem,
                          const Klass *elem_klass, MemKind kind);

    std::map<std::string, std::unique_ptr<LogicalClass>> logical_;
    std::vector<std::unique_ptr<Klass>> allKlasses_;
    std::uint32_t nextLogicalId_ = 1;
    bool strict_ = false;
    /** Guards the directory maps; pnew resolution runs concurrently
     * with class definition. Recursive: define/resolve re-enter
     * through find/physicalFor. */
    mutable std::recursive_mutex mu_;
};

} // namespace espresso

#endif // ESPRESSO_RUNTIME_KLASS_REGISTRY_HH
