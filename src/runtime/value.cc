#include "runtime/value.hh"

#include "util/logging.hh"

namespace espresso {

std::size_t
elementSize(FieldType t)
{
    switch (t) {
      case FieldType::kRef:
      case FieldType::kI64:
      case FieldType::kF64:
        return 8;
      case FieldType::kI32:
      case FieldType::kF32:
        return 4;
      case FieldType::kI16:
      case FieldType::kChar:
        return 2;
      case FieldType::kBool:
      case FieldType::kI8:
        return 1;
    }
    panic("unknown FieldType");
}

const char *
fieldTypeName(FieldType t)
{
    switch (t) {
      case FieldType::kRef: return "ref";
      case FieldType::kBool: return "bool";
      case FieldType::kI8: return "i8";
      case FieldType::kI16: return "i16";
      case FieldType::kI32: return "i32";
      case FieldType::kI64: return "i64";
      case FieldType::kF32: return "f32";
      case FieldType::kF64: return "f64";
      case FieldType::kChar: return "char";
    }
    panic("unknown FieldType");
}

char
fieldTypeCode(FieldType t)
{
    switch (t) {
      case FieldType::kRef: return 'L';
      case FieldType::kBool: return 'Z';
      case FieldType::kI8: return 'B';
      case FieldType::kI16: return 'S';
      case FieldType::kI32: return 'I';
      case FieldType::kI64: return 'J';
      case FieldType::kF32: return 'F';
      case FieldType::kF64: return 'D';
      case FieldType::kChar: return 'C';
    }
    panic("unknown FieldType");
}

} // namespace espresso
