#include "runtime/handles.hh"

#include "util/logging.hh"

namespace espresso {

Oop
Handle::get() const
{
    if (!registry_)
        panic("Handle::get on an invalid handle");
    return Oop(registry_->slots_[index_]);
}

void
Handle::set(Oop o)
{
    if (!registry_)
        panic("Handle::set on an invalid handle");
    Addr old = registry_->slots_[index_];
    if (old != kNullAddr && old != o.addr() && registry_->overwriteHook_)
        registry_->overwriteHook_(old);
    registry_->slots_[index_] = o.addr();
}

Handle
HandleRegistry::create(Oop o)
{
    std::size_t idx;
    if (!freeList_.empty()) {
        idx = freeList_.back();
        freeList_.pop_back();
        slots_[idx] = o.addr();
        live_[idx] = true;
    } else {
        idx = slots_.size();
        slots_.push_back(o.addr());
        live_.push_back(true);
    }
    return Handle(this, idx);
}

void
HandleRegistry::release(Handle h)
{
    if (h.registry_ != this)
        panic("HandleRegistry::release: foreign handle");
    if (!live_[h.index_])
        panic("HandleRegistry::release: double release");
    if (slots_[h.index_] != kNullAddr && overwriteHook_)
        overwriteHook_(slots_[h.index_]);
    live_[h.index_] = false;
    slots_[h.index_] = kNullAddr;
    freeList_.push_back(h.index_);
}

std::size_t
HandleRegistry::liveCount() const
{
    std::size_t n = 0;
    for (bool b : live_)
        n += b ? 1 : 0;
    return n;
}

} // namespace espresso
