/**
 * @file
 * Field type tags for the reflective object model.
 *
 * Espresso's GC and safety checks need full knowledge of object
 * layout (HotSpot gets this from Klass oop maps). Every managed field
 * is therefore described by a FieldType; reference fields are what
 * the collectors trace and what zeroing safety nullifies.
 */

#ifndef ESPRESSO_RUNTIME_VALUE_HH
#define ESPRESSO_RUNTIME_VALUE_HH

#include <cstdint>
#include <string>

namespace espresso {

/** The type of a managed field or array element. */
enum class FieldType : std::uint8_t
{
    kRef = 0, ///< reference to another managed object
    kBool,
    kI8,
    kI16,
    kI32,
    kI64,
    kF32,
    kF64,
    kChar, ///< UTF-16 code unit (Java char)
};

/** Size in bytes of an array element of @p t. */
std::size_t elementSize(FieldType t);

/** Human-readable name ("ref", "i64", ...). */
const char *fieldTypeName(FieldType t);

/** JVM-descriptor-style one-letter code used in array class names. */
char fieldTypeCode(FieldType t);

} // namespace espresso

#endif // ESPRESSO_RUNTIME_VALUE_HH
