/**
 * @file
 * Ordinary object pointer: typed access to a managed object.
 *
 * Object layout (all spaces, volatile and persistent):
 *
 *   instance:  [mark word 8B][klass ref 8B][field slots ...]
 *   array:     [mark word 8B][klass ref 8B][length 8B][elements ...]
 *
 * Mark word bits:
 *   bit  0      forwarded flag (young GC); when set the whole word is
 *               the forwarding address with bit 0 set
 *   bits 1..7   tenuring age
 *   bits 48..63 PJH GC timestamp (paper §4.2: reserved PSGC header
 *               bits reused once the object leaves the young space)
 *
 * Klass ref: volatile objects store the Klass* directly; persistent
 * objects store the address of their KlassImage in the PJH Klass
 * segment, tagged with bit 0 (both are 8-byte aligned). The image
 * begins with a PersistentKlassRef whose runtimeKlass slot is
 * reinitialized in place at loadHeap — which is exactly why heap
 * loading is O(#Klasses), not O(#objects) (paper §3.3, Fig. 18).
 */

#ifndef ESPRESSO_RUNTIME_OOP_HH
#define ESPRESSO_RUNTIME_OOP_HH

#include <atomic>
#include <cstdint>
#include <cstring>

#include "runtime/klass.hh"
#include "util/common.hh"

namespace espresso {

/** The volatile-bound prefix of a persistent KlassImage. */
struct PersistentKlassRef
{
    static constexpr Word kMagic = 0x4b4c415353494d47ull; // "KLASSIMG"

    Word magic;
    /** In-place binding to the live Klass; rewritten at every
     * loadHeap, garbage after a crash until then. */
    Klass *runtimeKlass;
};

/**
 * Raw word load/store helpers.
 *
 * Relaxed-atomic (plain movs on x86-64): independent shard GCs of a
 * HeapFabric may concurrently scan the same DRAM root-slot set — each
 * collector only rewrites slots pointing into its own heap, so two
 * never store to one slot, but one may load a word another is
 * storing. Word-atomicity makes that read see either value, never a
 * torn mix.
 */
inline Word
loadWord(Addr a)
{
    return std::atomic_ref<Word>(*reinterpret_cast<Word *>(a))
        .load(std::memory_order_relaxed);
}

inline void
storeWord(Addr a, Word v)
{
    std::atomic_ref<Word>(*reinterpret_cast<Word *>(a))
        .store(v, std::memory_order_relaxed);
}

/** A (possibly null) reference to a managed object. */
class Oop
{
  public:
    static constexpr Word kForwardedBit = 1;
    static constexpr unsigned kAgeShift = 1;
    static constexpr Word kAgeMask = Word(0x7f) << kAgeShift;
    static constexpr unsigned kTimestampShift = 48;
    static constexpr Word kKlassPersistentTag = 1;

    Oop() : addr_(kNullAddr) {}
    explicit Oop(Addr a) : addr_(a) {}

    Addr addr() const { return addr_; }
    bool isNull() const { return addr_ == kNullAddr; }
    explicit operator bool() const { return !isNull(); }
    bool operator==(const Oop &o) const { return addr_ == o.addr_; }

    /** @name Header access */
    /// @{
    Word markWord() const { return loadWord(addr_); }
    void setMarkWord(Word w) { storeWord(addr_, w); }

    Word
    klassRefRaw() const
    {
        return loadWord(addr_ + ObjectLayout::kKlassOffset);
    }

    void
    setKlassRefRaw(Word v)
    {
        storeWord(addr_ + ObjectLayout::kKlassOffset, v);
    }

    void
    setKlass(const Klass *k)
    {
        setKlassRefRaw(reinterpret_cast<Word>(k));
    }

    /** Point the header at a persistent KlassImage (tagged). */
    void
    setKlassImage(Addr image)
    {
        setKlassRefRaw(image | kKlassPersistentTag);
    }

    bool
    hasKlassImage() const
    {
        return klassRefRaw() & kKlassPersistentTag;
    }

    /** The KlassImage address, when hasKlassImage(). */
    Addr
    klassImage() const
    {
        return klassRefRaw() & ~kKlassPersistentTag;
    }

    /** Resolve the runtime Klass (through the image when persistent). */
    const Klass *klass() const;
    /// @}

    /** @name Young-GC forwarding */
    /// @{
    bool isForwarded() const { return markWord() & kForwardedBit; }

    Addr
    forwardee() const
    {
        return static_cast<Addr>(markWord() & ~kForwardedBit);
    }

    void forwardTo(Addr dest) { setMarkWord(Word(dest) | kForwardedBit); }

    unsigned
    age() const
    {
        return static_cast<unsigned>((markWord() & kAgeMask) >> kAgeShift);
    }

    void
    setAge(unsigned a)
    {
        setMarkWord((markWord() & ~kAgeMask) |
                    ((Word(a) << kAgeShift) & kAgeMask));
    }
    /// @}

    /** @name PJH GC timestamp (paper §4.2) */
    /// @{
    std::uint16_t
    gcTimestamp() const
    {
        return static_cast<std::uint16_t>(markWord() >> kTimestampShift);
    }

    void
    setGcTimestamp(std::uint16_t ts)
    {
        Word w = markWord() & ((Word(1) << kTimestampShift) - 1);
        setMarkWord(w | (Word(ts) << kTimestampShift));
    }
    /// @}

    /** @name Field access (byte offsets from object start) */
    /// @{
    Addr getRef(std::uint32_t off) const { return loadWord(addr_ + off); }
    void setRef(std::uint32_t off, Addr v) { storeWord(addr_ + off, v); }
    void setRef(std::uint32_t off, Oop v) { setRef(off, v.addr()); }

    std::int64_t
    getI64(std::uint32_t off) const
    {
        return static_cast<std::int64_t>(loadWord(addr_ + off));
    }

    void
    setI64(std::uint32_t off, std::int64_t v)
    {
        storeWord(addr_ + off, static_cast<Word>(v));
    }

    double
    getF64(std::uint32_t off) const
    {
        double d;
        std::memcpy(&d, reinterpret_cast<void *>(addr_ + off), sizeof(d));
        return d;
    }

    void
    setF64(std::uint32_t off, double v)
    {
        std::memcpy(reinterpret_cast<void *>(addr_ + off), &v, sizeof(v));
    }

    std::int32_t
    getI32(std::uint32_t off) const
    {
        return static_cast<std::int32_t>(getI64(off));
    }

    void setI32(std::uint32_t off, std::int32_t v) { setI64(off, v); }

    bool getBool(std::uint32_t off) const { return getI64(off) != 0; }
    void setBool(std::uint32_t off, bool v) { setI64(off, v ? 1 : 0); }
    /// @}

    /** @name Arrays */
    /// @{
    std::uint64_t
    arrayLength() const
    {
        return loadWord(addr_ + ObjectLayout::kArrayLengthOffset);
    }

    void
    setArrayLength(std::uint64_t n)
    {
        storeWord(addr_ + ObjectLayout::kArrayLengthOffset, n);
    }

    /** Address of element @p idx given element size @p esz. */
    Addr
    elemAddr(std::uint64_t idx, std::size_t esz) const
    {
        return addr_ + ObjectLayout::kArrayHeaderSize + idx * esz;
    }

    Addr
    getRefElem(std::uint64_t idx) const
    {
        return loadWord(elemAddr(idx, kWordSize));
    }

    void
    setRefElem(std::uint64_t idx, Addr v)
    {
        storeWord(elemAddr(idx, kWordSize), v);
    }
    /// @}

    /** Total object footprint in bytes (word aligned). */
    std::size_t sizeInBytes() const;

    /** Size an object of @p k with @p array_len elements would have. */
    static std::size_t sizeFor(const Klass *k, std::uint64_t array_len);

    /**
     * Invoke @p visitor(slot_address) for every reference slot in
     * this object (instance ref fields or ref-array elements).
     */
    template <typename Visitor>
    void
    forEachRefSlot(Visitor &&visitor) const
    {
        const Klass *k = klass();
        if (k->isArray()) {
            if (k->elemType() != FieldType::kRef)
                return;
            std::uint64_t n = arrayLength();
            for (std::uint64_t i = 0; i < n; ++i)
                visitor(elemAddr(i, kWordSize));
        } else {
            for (std::uint32_t off : k->refOffsets())
                visitor(addr_ + off);
        }
    }

  private:
    Addr addr_;
};

} // namespace espresso

#endif // ESPRESSO_RUNTIME_OOP_HH
