/**
 * @file
 * GC-visible root handles.
 *
 * The collectors move objects, so code that holds references across a
 * possible GC must hold them in handles: slots the GC can find and
 * update. This plays the role of HotSpot's handle area + VM roots.
 */

#ifndef ESPRESSO_RUNTIME_HANDLES_HH
#define ESPRESSO_RUNTIME_HANDLES_HH

#include <cstddef>
#include <functional>
#include <vector>

#include "runtime/oop.hh"
#include "util/common.hh"

namespace espresso {

class HandleRegistry;

/** A GC-updated root slot. Valid while its registry lives. */
class Handle
{
  public:
    Handle() : registry_(nullptr), index_(0) {}

    Oop get() const;
    void set(Oop o);
    bool valid() const { return registry_ != nullptr; }

  private:
    friend class HandleRegistry;
    Handle(HandleRegistry *r, std::size_t i) : registry_(r), index_(i) {}

    HandleRegistry *registry_;
    std::size_t index_;
};

/** Owns all root slots for one runtime instance. */
class HandleRegistry
{
  public:
    /** Create a root holding @p o. */
    Handle create(Oop o = Oop());

    /** Drop a root (its slot is recycled). */
    void release(Handle h);

    /** Visit the address of every live root slot. */
    template <typename Visitor>
    void
    forEachSlot(Visitor &&visitor)
    {
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            if (live_[i])
                visitor(reinterpret_cast<Addr>(&slots_[i]));
        }
    }

    std::size_t liveCount() const;

    /**
     * Deletion-barrier hook (SATB): invoked with every non-null
     * value a live slot stops holding (Handle::set overwrite,
     * release), *before* the slot changes. External spaces running a
     * concurrent mark use it to shade the dropped reference; unset
     * by default.
     */
    void
    setOverwriteHook(std::function<void(Addr)> hook)
    {
        overwriteHook_ = std::move(hook);
    }

  private:
    friend class Handle;

    std::vector<Addr> slots_;
    std::vector<bool> live_;
    std::vector<std::size_t> freeList_;
    std::function<void(Addr)> overwriteHook_;
};

} // namespace espresso

#endif // ESPRESSO_RUNTIME_HANDLES_HH
