/**
 * @file
 * Flush/fence-boundary fault injection.
 *
 * The durable state of an NvmDevice only changes at persistence events
 * (flush stages lines, fence commits them). Sweeping a simulated crash
 * across every such event therefore covers every distinct durable
 * state a real power failure could leave behind. Tests arm the
 * injector with an event ordinal; when the device reaches it, a
 * SimulatedCrash is thrown, the test discards all volatile state,
 * calls NvmDevice::crash() and re-runs recovery.
 */

#ifndef ESPRESSO_NVM_CRASH_INJECTOR_HH
#define ESPRESSO_NVM_CRASH_INJECTOR_HH

#include <atomic>
#include <cstdint>
#include <exception>

namespace espresso {

/** Thrown at an armed persistence event to simulate a power failure. */
class SimulatedCrash : public std::exception
{
  public:
    const char *
    what() const noexcept override
    {
        return "simulated crash at persistence event";
    }
};

/** Counts persistence events and fires at an armed ordinal. */
class CrashInjector
{
  public:
    /**
     * Arm the injector: the @p fire_at_event -th future event (1-based
     * from now) throws SimulatedCrash. Resets the event counter.
     */
    void arm(std::uint64_t fire_at_event);

    /** Disarm; events are still counted. */
    void disarm();

    /** Reset the event counter without changing armed state. */
    void resetCount();

    /**
     * Record one persistence event; throws once the armed ordinal is
     * reached. Thread-safe: concurrent events take unique ordinals,
     * and every event at or past the target throws, so after one
     * thread "loses power" every other thread dies at its own next
     * persistence point instead of racing on.
     */
    void onEvent();

    std::uint64_t eventCount() const { return count_.load(); }
    bool armed() const { return armed_.load(); }

    /**
     * True once the armed ordinal has been reached: power is gone.
     * Passive (does not count an event) — spin/wait loops that
     * perform no persistence poll this so a thread blocked on a
     * dead thread's lock still dies instead of hanging the sweep.
     */
    bool
    tripped() const
    {
        return armed_.load() && target_.load() > 0 &&
               count_.load() >= target_.load();
    }

    /** The most recently armed target (valid even after disarm). */
    std::uint64_t armedTarget() const { return target_.load(); }

  private:
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> target_{0};
    std::atomic<bool> armed_{false};
};

} // namespace espresso

#endif // ESPRESSO_NVM_CRASH_INJECTOR_HH
