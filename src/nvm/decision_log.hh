/**
 * @file
 * A small durable intent/decision log over a region of an NvmDevice.
 *
 * Two-phase protocols need one durable word that marks the point of
 * no return: the 2PC coordinator's commit decision, and the fabric's
 * root-republication intent. Both are "write a record, fence, do the
 * multi-home work, clear the record" — so they share this log.
 *
 * Layout: a one-cache-line header {magic, idReserve, checksum}
 * followed by fixed-size 256-byte slots. A slot spans several cache
 * lines and under random-eviction crashes each unfenced line survives
 * independently, so every record carries a checksum over all fields
 * and payload: a torn record validates as dead, which is exactly the
 * presumed-abort contract (no durable decision => abort).
 *
 * publish() is flush + fence: the record is the commit point.
 * clear() is flush without fence: replay of a cleared-but-resurfaced
 * record must be idempotent, and both users are (a commit record for
 * an already-retired transaction resolves against zero prepared
 * members; a root intent replays to the state it already produced).
 */

#ifndef ESPRESSO_NVM_DECISION_LOG_HH
#define ESPRESSO_NVM_DECISION_LOG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/common.hh"

namespace espresso {

class NvmDevice;

class DecisionLog
{
  public:
    /** @name Record kinds */
    /// @{
    static constexpr Word kKindTxnCommit = 1;  ///< 2PC commit decision
    static constexpr Word kKindRootIntent = 2; ///< root republication
    /// @}

    static constexpr std::size_t kSlotBytes = 256;

    /** Fixed slot fields: state, kind, txnId, argA, payloadLen,
     * checksum. */
    static constexpr std::size_t kMaxPayload =
        kSlotBytes - 6 * kWordSize;

    /** A live record surfaced by recover(). */
    struct Record
    {
        unsigned slot;
        Word kind;
        Word txnId;
        Word argA;
        std::string payload;
    };

    DecisionLog() = default;

    /** View over [offset, offset + bytesFor(slots)) of @p dev. Call
     * format() or recover() before use. */
    DecisionLog(NvmDevice *dev, std::size_t offset, unsigned slots);

    /** Region bytes needed for @p slots slots. */
    static constexpr std::size_t
    bytesFor(unsigned slots)
    {
        return kCacheLineSize + std::size_t(slots) * kSlotBytes;
    }

    bool valid() const { return dev_ != nullptr; }
    unsigned slotCount() const { return slots_; }

    static bool
    payloadFits(std::size_t len)
    {
        return len <= kMaxPayload;
    }

    /** Format the region: all slots dead, id space reset. One
     * fence. */
    void format();

    /** Open-time recovery: format if the header is invalid (never
     * initialised or torn), then return every checksum-valid live
     * record. Also advances the durable id reservation. */
    std::vector<Record> recover();

    /** Durably reserve @p count transaction ids; returns the first.
     * Ids are unique across crashes (the reservation itself is
     * fenced before any id is handed out). Never returns 0. */
    Word reserveIdBlock(Word count);

    /** Durably publish a record into @p slot (flush + fence). This
     * is the commit point of whatever protocol uses it. */
    void publish(unsigned slot, Word kind, Word txn_id, Word arg_a,
                 const void *payload, std::size_t payload_len);

    /** Mark @p slot dead (flush, deliberately no fence — see file
     * comment on idempotent replay). */
    void clear(unsigned slot);

  private:
    struct HeaderData
    {
        Word magic;
        Word idReserve;
        Word check;
    };

    struct SlotData
    {
        Word state; ///< 1 = live, 0 = dead
        Word kind;
        Word txnId;
        Word argA;
        Word payloadLen;
        Word check;
        // payload bytes follow, up to kMaxPayload
    };

    static constexpr Word kMagic = 0x4553505244454349ull; // "ESPRDECI"

    HeaderData *headerAt() const;
    SlotData *slotAt(unsigned slot) const;
    static Word headerChecksum(const HeaderData *h);
    static Word slotChecksum(const SlotData *s);

    NvmDevice *dev_ = nullptr;
    std::size_t off_ = 0;
    unsigned slots_ = 0;

    /** Volatile cursor into the durably reserved id block. */
    Word nextId_ = 0;
    Word idLimit_ = 0;
};

} // namespace espresso

#endif // ESPRESSO_NVM_DECISION_LOG_HH
