#include "nvm/decision_log.hh"

#include <cstring>

#include "nvm/nvm_device.hh"
#include "util/logging.hh"

namespace espresso {

namespace {

/** Ids handed out per durable reservation. */
constexpr Word kIdBlock = Word(1) << 16;

Word
fnv1a(Word seed, const void *data, std::size_t n)
{
    Word h = seed;
    const auto *p = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

constexpr Word kFnvBasis = 1469598103934665603ull;

} // namespace

DecisionLog::DecisionLog(NvmDevice *dev, std::size_t offset,
                         unsigned slots)
    : dev_(dev), off_(offset), slots_(slots)
{
    if (offset % kCacheLineSize != 0)
        fatal("decision log: region offset not line-aligned");
    if (offset + bytesFor(slots) > dev->size())
        fatal("decision log: region exceeds device");
}

DecisionLog::HeaderData *
DecisionLog::headerAt() const
{
    return reinterpret_cast<HeaderData *>(dev_->toAddr(off_));
}

DecisionLog::SlotData *
DecisionLog::slotAt(unsigned slot) const
{
    return reinterpret_cast<SlotData *>(
        dev_->toAddr(off_ + kCacheLineSize + slot * kSlotBytes));
}

Word
DecisionLog::headerChecksum(const HeaderData *h)
{
    Word c = fnv1a(kFnvBasis, &h->magic, sizeof(Word));
    return fnv1a(c, &h->idReserve, sizeof(Word));
}

Word
DecisionLog::slotChecksum(const SlotData *s)
{
    Word c = fnv1a(kFnvBasis, &s->kind, 4 * sizeof(Word));
    return fnv1a(c, s + 1, s->payloadLen);
}

void
DecisionLog::format()
{
    HeaderData *h = headerAt();
    h->magic = kMagic;
    h->idReserve = kIdBlock;
    h->check = headerChecksum(h);
    for (unsigned i = 0; i < slots_; ++i) {
        SlotData *s = slotAt(i);
        std::memset(s, 0, kSlotBytes);
        dev_->flush(reinterpret_cast<Addr>(s), kSlotBytes);
    }
    dev_->flush(reinterpret_cast<Addr>(h), sizeof(HeaderData));
    dev_->fence();
    nextId_ = 1;
    idLimit_ = kIdBlock;
}

std::vector<DecisionLog::Record>
DecisionLog::recover()
{
    HeaderData *h = headerAt();
    if (h->magic != kMagic || h->check != headerChecksum(h)) {
        format();
        return {};
    }
    std::vector<Record> live;
    for (unsigned i = 0; i < slots_; ++i) {
        SlotData *s = slotAt(i);
        if (s->state != 1)
            continue;
        if (s->payloadLen > kMaxPayload ||
            s->check != slotChecksum(s)) {
            // Torn record: the decision never became durable, so by
            // the presumed-abort contract it does not exist. Scrub
            // it so a later line eviction cannot resurrect it.
            std::memset(s, 0, kSlotBytes);
            dev_->flush(reinterpret_cast<Addr>(s), kSlotBytes);
            continue;
        }
        Record r;
        r.slot = i;
        r.kind = s->kind;
        r.txnId = s->txnId;
        r.argA = s->argA;
        r.payload.assign(reinterpret_cast<const char *>(s + 1),
                         s->payloadLen);
        live.push_back(std::move(r));
    }
    // Advance the id space past anything the previous incarnation
    // could have used, durably, before handing out a single id.
    nextId_ = h->idReserve;
    idLimit_ = h->idReserve + kIdBlock;
    h->idReserve = idLimit_;
    h->check = headerChecksum(h);
    dev_->persist(reinterpret_cast<Addr>(h), sizeof(HeaderData));
    return live;
}

Word
DecisionLog::reserveIdBlock(Word count)
{
    if (count == 0)
        count = 1;
    if (nextId_ == 0 || nextId_ + count > idLimit_) {
        HeaderData *h = headerAt();
        nextId_ = h->idReserve;
        Word block = count > kIdBlock ? count : kIdBlock;
        idLimit_ = h->idReserve + block;
        h->idReserve = idLimit_;
        h->check = headerChecksum(h);
        dev_->persist(reinterpret_cast<Addr>(h), sizeof(HeaderData));
    }
    Word first = nextId_;
    nextId_ += count;
    return first;
}

void
DecisionLog::publish(unsigned slot, Word kind, Word txn_id, Word arg_a,
                     const void *payload, std::size_t payload_len)
{
    if (slot >= slots_)
        fatal("decision log: slot out of range");
    if (payload_len > kMaxPayload)
        fatal("decision log: payload too large");
    SlotData *s = slotAt(slot);
    s->kind = kind;
    s->txnId = txn_id;
    s->argA = arg_a;
    s->payloadLen = payload_len;
    if (payload_len != 0)
        std::memcpy(s + 1, payload, payload_len);
    s->check = slotChecksum(s);
    s->state = 1;
    dev_->flush(reinterpret_cast<Addr>(s), kSlotBytes);
    dev_->fence();
}

void
DecisionLog::clear(unsigned slot)
{
    SlotData *s = slotAt(slot);
    s->state = 0;
    dev_->flush(reinterpret_cast<Addr>(s), sizeof(Word));
    // No fence: see the file comment — replay is idempotent.
}

} // namespace espresso
