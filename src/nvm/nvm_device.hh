/**
 * @file
 * Emulated byte-addressable non-volatile memory.
 *
 * Model: the CPU reads and writes a @e working image through ordinary
 * loads/stores (the device hands out a raw pointer). Durability is a
 * separate @e durable image. `flush(addr, len)` stages the covered
 * cache lines (clwb/clflush); `fence()` copies every staged line from
 * the working image into the durable image (sfence draining the write
 * pipeline to the DIMM). On a crash, the working image is rebuilt
 * from the durable image — optionally keeping a seeded random subset
 * of unflushed dirty lines to model uncontrolled cache eviction.
 *
 * This reproduces the failure semantics the paper's §4 protocols are
 * designed against, on commodity DRAM (the paper itself ran on a
 * Viking NVDIMM, which is architecturally ordinary memory plus
 * flush-controlled durability). Flush/fence latency knobs let the
 * benchmarks model the persistence-instruction overhead measured in
 * §6.4.
 */

#ifndef ESPRESSO_NVM_NVM_DEVICE_HH
#define ESPRESSO_NVM_NVM_DEVICE_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "nvm/crash_injector.hh"
#include "util/common.hh"
#include "util/spin.hh"

namespace espresso {

/** Tunables for an NvmDevice. */
struct NvmConfig
{
    /** Busy-wait applied per flushed cache line (models clflush). */
    std::uint64_t flushLatencyNs = 0;

    /** Busy-wait applied per fence (models sfence + queue drain). */
    std::uint64_t fenceLatencyNs = 0;

    /**
     * When true, the fence-latency wait yields the host CPU instead
     * of busy-spinning. A real sfence stalls only the issuing core;
     * on a container with fewer host cores than modeled threads a
     * busy-wait would serialize stalls that real hardware overlaps,
     * so throughput benchmarks (ycsb_lite) enable this to let
     * sibling threads run during a fence drain.
     */
    bool fenceWaitYields = false;

    /**
     * When true, the modeled fence drain holds this device's write
     * queue: concurrent fences on one device serialize their latency
     * waits, modeling a per-DIMM write-bandwidth bound (the paper's
     * one-PJH-per-device Table 1 inventory is exactly what a fabric
     * shards against). The wait sleeps rather than spins, so drains
     * on *different* devices overlap regardless of host core count.
     * Off by default: the per-core stall model above stays the
     * behavior every existing benchmark calibrated against.
     */
    bool fenceDrainSerialized = false;

    /**
     * When false, flush/fence perform no latency and no staging and a
     * crash loses everything since the last clean shutdown. Used as
     * the "remove all clflush" baseline of §6.4.
     */
    bool persistenceEnabled = true;
};

/** How a simulated power failure treats unflushed data. */
enum class CrashMode
{
    /** Only fenced data survives (most conservative). */
    kDiscardUnflushed,

    /**
     * Fenced data survives; each other dirty line independently
     * survives with probability 1/2 (seeded), modeling lines that
     * happened to be evicted from the cache before the failure.
     */
    kEvictRandomLines,
};

/** Persistence-event statistics (atomic: flush/fence run
 * concurrently from allocating threads). */
struct NvmStats
{
    std::atomic<std::uint64_t> flushCalls{0};
    std::atomic<std::uint64_t> linesFlushed{0};
    std::atomic<std::uint64_t> fences{0};
};

/** An emulated NVM DIMM. */
class NvmDevice
{
  public:
    /**
     * @param size capacity in bytes (rounded up to a cache line).
     * @param cfg latency/behaviour knobs.
     */
    explicit NvmDevice(std::size_t size, NvmConfig cfg = {});

    NvmDevice(const NvmDevice &) = delete;
    NvmDevice &operator=(const NvmDevice &) = delete;

    std::size_t size() const { return size_; }
    const NvmConfig &config() const { return cfg_; }
    NvmConfig &config() { return cfg_; }

    /** Base of the working image; all managed addresses point here. */
    std::uint8_t *base() { return working_.data(); }
    const std::uint8_t *base() const { return working_.data(); }

    /** Address of byte offset @p off in the working image. */
    Addr
    toAddr(std::size_t off) const
    {
        return reinterpret_cast<Addr>(working_.data()) + off;
    }

    /** Offset of working-image address @p a. */
    std::size_t
    toOffset(Addr a) const
    {
        return a - reinterpret_cast<Addr>(working_.data());
    }

    /** True if @p a points into this device's working image. */
    bool
    contains(Addr a) const
    {
        Addr b = reinterpret_cast<Addr>(working_.data());
        return a >= b && a < b + size_;
    }

    /**
     * Stage the cache lines covering [addr, addr+len) for durability
     * (clwb). Durable only after the next fence(). Staging is
     * per-thread (as clwb/sfence order a single core's stores), so
     * concurrent flushes never contend.
     */
    void flush(Addr addr, std::size_t len);

    /** Commit the calling thread's staged lines to the durable image
     * (sfence). */
    void fence();

    /** flush + fence convenience for a single datum. */
    void
    persist(Addr addr, std::size_t len)
    {
        flush(addr, len);
        fence();
    }

    /** Simulate a power failure; the working image becomes whatever
     * survived, and all staged-but-unfenced state is dropped. */
    void crash(CrashMode mode = CrashMode::kDiscardUnflushed,
               std::uint64_t seed = 1);

    /** Clean shutdown: everything becomes durable (msync + unmount). */
    void shutdownClean();

    /** Write the durable image to @p path. */
    void saveDurable(const std::string &path) const;

    /** Replace both images with the file contents (clean boot). */
    void loadDurable(const std::string &path);

    const NvmStats &stats() const { return stats_; }

    void
    resetStats()
    {
        stats_.flushCalls = 0;
        stats_.linesFlushed = 0;
        stats_.fences = 0;
    }

    /** Fault injection hook; null disables injection. */
    void setInjector(CrashInjector *injector) { injector_ = injector; }
    CrashInjector *injector() { return injector_; }

  private:
    /** One thread's staged line offsets; duplicates are harmless
     * (the commit is an idempotent copy), so a vector beats a hash
     * set here. */
    struct StagingShard
    {
        std::vector<std::size_t> staged;
    };

    void commitLine(std::size_t line_off);

    /** The calling thread's shard for this device (registered on
     * first use). */
    StagingShard &localShard();

    /** Drop every thread's staged lines (crash / clean shutdown /
     * image load — callers are quiesced by contract). */
    void clearAllShards();

    std::size_t size_;
    NvmConfig cfg_;
    std::vector<std::uint8_t> working_;
    std::vector<std::uint8_t> durable_;
    /** Device identity for the thread-local shard cache; never
     * reused across devices. */
    std::uint64_t serial_;
    /** All shards ever handed out, one per touching thread. */
    std::vector<std::unique_ptr<StagingShard>> shards_;
    std::mutex shardMu_;
    /**
     * Striped per-line commit locks: two threads may legally fence
     * the same metadata cache line, so each line's durable copy must
     * be exclusive — but lines hash to independent stripes, so
     * concurrent fences of disjoint data (parallel GC slice workers,
     * allocator TLAB traffic) commit without contending on one
     * global mutex.
     */
    static constexpr std::size_t kCommitStripes = 64;
    std::array<SpinLock, kCommitStripes> commitLocks_;
    /** Write-queue token for fenceDrainSerialized. */
    std::mutex drainMu_;
    NvmStats stats_;
    CrashInjector *injector_ = nullptr;
};

} // namespace espresso

#endif // ESPRESSO_NVM_NVM_DEVICE_HH
