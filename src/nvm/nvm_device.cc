#include "nvm/nvm_device.hh"

#include <chrono>
#include <cstring>
#include <fstream>

#include "util/logging.hh"
#include "util/rng.hh"
#include "util/spin.hh"

namespace espresso {

namespace {

void
spinFor(std::uint64_t ns)
{
    if (ns == 0)
        return;
    if (ns < 50) {
        // Sub-50ns delays are below the clock-read floor of a timed
        // spin; approximate with a calibrated arithmetic loop
        // (~1ns/iteration on current hardware).
        volatile std::uint64_t sink = 0;
        for (std::uint64_t i = 0; i < ns; ++i)
            sink = sink + 1;
        return;
    }
    spinForNs(ns);
}

} // namespace

NvmDevice::NvmDevice(std::size_t size, NvmConfig cfg)
    : size_(alignUp(size, kCacheLineSize)), cfg_(cfg),
      working_(size_, 0), durable_(size_, 0)
{
    if (size == 0)
        fatal("NvmDevice: zero-sized device");
}

void
NvmDevice::flush(Addr addr, std::size_t len)
{
    if (!cfg_.persistenceEnabled)
        return;
    if (injector_)
        injector_->onEvent();
    if (len == 0)
        return;

    std::size_t off = toOffset(addr);
    if (off >= size_ || off + len > size_)
        panic("NvmDevice::flush out of range");

    std::size_t first = alignDown(off, kCacheLineSize);
    std::size_t last = alignUp(off + len, kCacheLineSize);
    ++stats_.flushCalls;
    for (std::size_t line = first; line < last; line += kCacheLineSize) {
        if (staged_.empty() || staged_.back() != line)
            staged_.push_back(line);
        ++stats_.linesFlushed;
        spinFor(cfg_.flushLatencyNs);
    }
}

void
NvmDevice::fence()
{
    if (!cfg_.persistenceEnabled)
        return;
    if (injector_)
        injector_->onEvent();
    ++stats_.fences;
    for (std::size_t line : staged_)
        commitLine(line);
    staged_.clear();
    spinFor(cfg_.fenceLatencyNs);
}

void
NvmDevice::commitLine(std::size_t line_off)
{
    std::memcpy(durable_.data() + line_off, working_.data() + line_off,
                kCacheLineSize);
}

void
NvmDevice::crash(CrashMode mode, std::uint64_t seed)
{
    staged_.clear();
    if (mode == CrashMode::kEvictRandomLines) {
        // Each dirty-but-unfenced line may have been evicted to the
        // DIMM before power was lost.
        Rng rng(seed);
        for (std::size_t line = 0; line < size_; line += kCacheLineSize) {
            if (std::memcmp(working_.data() + line, durable_.data() + line,
                            kCacheLineSize) != 0 &&
                rng.nextBool()) {
                commitLine(line);
            }
        }
    }
    std::memcpy(working_.data(), durable_.data(), size_);
}

void
NvmDevice::shutdownClean()
{
    staged_.clear();
    std::memcpy(durable_.data(), working_.data(), size_);
}

void
NvmDevice::saveDurable(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("NvmDevice: cannot open " + path + " for writing");
    out.write(reinterpret_cast<const char *>(durable_.data()),
              static_cast<std::streamsize>(size_));
    if (!out)
        fatal("NvmDevice: short write to " + path);
}

void
NvmDevice::loadDurable(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("NvmDevice: cannot open " + path + " for reading");
    in.read(reinterpret_cast<char *>(durable_.data()),
            static_cast<std::streamsize>(size_));
    if (in.gcount() != static_cast<std::streamsize>(size_))
        fatal("NvmDevice: short read from " + path);
    staged_.clear();
    std::memcpy(working_.data(), durable_.data(), size_);
}

} // namespace espresso
