#include "nvm/nvm_device.hh"

#include <chrono>
#include <cstring>
#include <fstream>
#include <thread>
#include <unordered_map>

#include "util/logging.hh"
#include "util/rng.hh"
#include "util/spin.hh"

namespace espresso {

namespace {

std::atomic<std::uint64_t> g_deviceSerial{1};

void
yieldFor(std::uint64_t ns)
{
    if (ns == 0)
        return;
    auto until = std::chrono::steady_clock::now() +
                 std::chrono::nanoseconds(ns);
    while (std::chrono::steady_clock::now() < until)
        std::this_thread::yield();
}

void
sleepFor(std::uint64_t ns)
{
    if (ns == 0)
        return;
    std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

void
spinFor(std::uint64_t ns)
{
    if (ns == 0)
        return;
    if (ns < 50) {
        // Sub-50ns delays are below the clock-read floor of a timed
        // spin; approximate with a calibrated arithmetic loop
        // (~1ns/iteration on current hardware).
        volatile std::uint64_t sink = 0;
        for (std::uint64_t i = 0; i < ns; ++i)
            sink = sink + 1;
        return;
    }
    spinForNs(ns);
}

} // namespace

NvmDevice::NvmDevice(std::size_t size, NvmConfig cfg)
    : size_(alignUp(size, kCacheLineSize)), cfg_(cfg),
      working_(size_, 0), durable_(size_, 0),
      serial_(g_deviceSerial.fetch_add(1, std::memory_order_relaxed))
{
    if (size == 0)
        fatal("NvmDevice: zero-sized device");
}

NvmDevice::StagingShard &
NvmDevice::localShard()
{
    // Per-thread cache: device serial -> this thread's shard.
    // Serials are never reused, so stale entries for destroyed
    // devices are dead weight, never dangling lookups.
    thread_local std::unordered_map<std::uint64_t, StagingShard *> cache;
    StagingShard *&slot = cache[serial_];
    if (!slot) {
        auto shard = std::make_unique<StagingShard>();
        slot = shard.get();
        std::lock_guard<std::mutex> g(shardMu_);
        shards_.push_back(std::move(shard));
    }
    return *slot;
}

void
NvmDevice::clearAllShards()
{
    std::lock_guard<std::mutex> g(shardMu_);
    for (auto &shard : shards_)
        shard->staged.clear();
}

void
NvmDevice::flush(Addr addr, std::size_t len)
{
    if (!cfg_.persistenceEnabled)
        return;
    if (injector_)
        injector_->onEvent();
    if (len == 0)
        return;

    std::size_t off = toOffset(addr);
    if (off >= size_ || off + len > size_)
        panic("NvmDevice::flush out of range");

    std::vector<std::size_t> &staged = localShard().staged;
    std::size_t first = alignDown(off, kCacheLineSize);
    std::size_t last = alignUp(off + len, kCacheLineSize);
    stats_.flushCalls.fetch_add(1, std::memory_order_relaxed);
    for (std::size_t line = first; line < last; line += kCacheLineSize) {
        if (staged.empty() || staged.back() != line)
            staged.push_back(line);
        stats_.linesFlushed.fetch_add(1, std::memory_order_relaxed);
        spinFor(cfg_.flushLatencyNs);
    }
}

void
NvmDevice::fence()
{
    if (!cfg_.persistenceEnabled)
        return;
    if (injector_)
        injector_->onEvent();
    stats_.fences.fetch_add(1, std::memory_order_relaxed);
    std::vector<std::size_t> &staged = localShard().staged;
    if (!staged.empty()) {
        // Two threads may stage the same line (adjacent metadata
        // words); serialize per line — via its stripe lock — so the
        // durable image never sees a half-merged line, while fences
        // of disjoint lines proceed in parallel.
        for (std::size_t line : staged) {
            SpinGuard g(commitLocks_[(line / kCacheLineSize) %
                                     kCommitStripes]);
            commitLine(line);
        }
    }
    staged.clear();
    if (cfg_.fenceDrainSerialized) {
        // One drain at a time per device (per-DIMM bandwidth bound);
        // a sleeping drain frees the host CPU, so drains on sibling
        // devices overlap even on a single-core host.
        std::lock_guard<std::mutex> g(drainMu_);
        sleepFor(cfg_.fenceLatencyNs);
    } else if (cfg_.fenceWaitYields) {
        yieldFor(cfg_.fenceLatencyNs);
    } else {
        spinFor(cfg_.fenceLatencyNs);
    }
}

void
NvmDevice::commitLine(std::size_t line_off)
{
    std::memcpy(durable_.data() + line_off, working_.data() + line_off,
                kCacheLineSize);
}

void
NvmDevice::crash(CrashMode mode, std::uint64_t seed)
{
    clearAllShards();
    if (mode == CrashMode::kEvictRandomLines) {
        // Each dirty-but-unfenced line may have been evicted to the
        // DIMM before power was lost.
        Rng rng(seed);
        for (std::size_t line = 0; line < size_; line += kCacheLineSize) {
            if (std::memcmp(working_.data() + line, durable_.data() + line,
                            kCacheLineSize) != 0 &&
                rng.nextBool()) {
                commitLine(line);
            }
        }
    }
    std::memcpy(working_.data(), durable_.data(), size_);
}

void
NvmDevice::shutdownClean()
{
    clearAllShards();
    std::memcpy(durable_.data(), working_.data(), size_);
}

void
NvmDevice::saveDurable(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("NvmDevice: cannot open " + path + " for writing");
    out.write(reinterpret_cast<const char *>(durable_.data()),
              static_cast<std::streamsize>(size_));
    if (!out)
        fatal("NvmDevice: short write to " + path);
}

void
NvmDevice::loadDurable(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("NvmDevice: cannot open " + path + " for reading");
    in.read(reinterpret_cast<char *>(durable_.data()),
            static_cast<std::streamsize>(size_));
    if (in.gcount() != static_cast<std::streamsize>(size_))
        fatal("NvmDevice: short read from " + path);
    clearAllShards();
    std::memcpy(working_.data(), durable_.data(), size_);
}

} // namespace espresso
