#include "nvm/crash_injector.hh"

namespace espresso {

void
CrashInjector::arm(std::uint64_t fire_at_event)
{
    armed_ = true;
    target_ = fire_at_event;
    count_ = 0;
}

void
CrashInjector::disarm()
{
    armed_ = false;
}

void
CrashInjector::resetCount()
{
    count_ = 0;
}

void
CrashInjector::onEvent()
{
    ++count_;
    if (armed_ && count_ == target_)
        throw SimulatedCrash();
}

} // namespace espresso
