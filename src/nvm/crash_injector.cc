#include "nvm/crash_injector.hh"

namespace espresso {

void
CrashInjector::arm(std::uint64_t fire_at_event)
{
    target_ = fire_at_event;
    count_ = 0;
    armed_ = true;
}

void
CrashInjector::disarm()
{
    armed_ = false;
}

void
CrashInjector::resetCount()
{
    count_ = 0;
}

void
CrashInjector::onEvent()
{
    std::uint64_t n = count_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (armed_.load(std::memory_order_relaxed) &&
        n >= target_.load(std::memory_order_relaxed)) {
        throw SimulatedCrash();
    }
}

} // namespace espresso
