#include "orm/entity_manager.hh"

#include "util/logging.hh"

namespace espresso {
namespace orm {

EntityManager::EntityManager(db::Database *database, Provider *provider,
                             const Enhancer *enhancer)
    : db_(database), provider_(provider), enhancer_(enhancer)
{}

void
EntityManager::setPhaseTimer(PhaseTimer *timer)
{
    timer_ = timer;
    db_->setPhaseTimer(timer);
}

void
EntityManager::begin()
{
    if (inTx_)
        fatal("EntityManager: transaction already open");
    db_->begin();
    inTx_ = true;
}

Entity *
EntityManager::newEntity(const std::string &entity_name)
{
    owned_.push_back(enhancer_->enhanceNew(entity_name));
    return owned_.back().get();
}

void
EntityManager::persist(Entity *entity)
{
    if (entity->stateManager().state() != EntityState::kTransient)
        fatal("EntityManager::persist: entity is already managed");
    entity->stateManager().setState(EntityState::kManaged);
    pendingNew_.push_back(entity);
}

Entity *
EntityManager::find(const std::string &entity_name, std::int64_t pk)
{
    auto key = std::make_pair(entity_name, pk);
    auto it = cache_.find(key);
    if (it != cache_.end())
        return it->second;

    const EntityDescriptor *desc = enhancer_->descriptor(entity_name);
    if (!desc)
        fatal("EntityManager::find: unknown entity " + entity_name);
    std::unique_ptr<Entity> loaded =
        provider_->readEntity(*db_, *desc, pk, timer_);
    if (!loaded)
        return nullptr;
    loaded->stateManager().setState(EntityState::kManaged);
    Entity *raw = loaded.get();
    owned_.push_back(std::move(loaded));
    cache_[key] = raw;
    return raw;
}

void
EntityManager::remove(Entity *entity)
{
    entity->stateManager().setState(EntityState::kRemoved);
}

void
EntityManager::commit()
{
    if (!inTx_)
        fatal("EntityManager::commit without begin");

    // New entities first (referential ordering is the app's job, as
    // in JPA without cascade resolution).
    for (Entity *e : pendingNew_) {
        if (e->stateManager().state() == EntityState::kRemoved)
            continue;
        provider_->writeEntity(*db_, *e, /*is_new=*/true, timer_);
        e->stateManager().clearDirty();
        e->stateManager().clearCollectionsDirty();
        cache_[{e->descriptor().name, e->pk()}] = e;
    }

    // Dirty managed entities and removals.
    for (auto &kv : cache_) {
        Entity *e = kv.second;
        StateManager &sm = e->stateManager();
        if (sm.state() == EntityState::kRemoved) {
            provider_->removeEntity(*db_, e->descriptor(), e->pk(),
                                    timer_);
            continue;
        }
        bool pending_new = false;
        for (Entity *n : pendingNew_)
            pending_new |= n == e;
        if (!pending_new && (sm.anyDirty() || sm.collectionsDirty())) {
            provider_->writeEntity(*db_, *e, /*is_new=*/false, timer_);
            sm.clearDirty();
            sm.clearCollectionsDirty();
        }
    }

    db_->commit();
    inTx_ = false;

    for (Entity *e : pendingNew_) {
        if (e->stateManager().state() != EntityState::kRemoved)
            provider_->postCommit(*db_, *e);
    }
    pendingNew_.clear();

    // Drop removed entities from the cache.
    for (auto it = cache_.begin(); it != cache_.end();) {
        if (it->second->stateManager().state() == EntityState::kRemoved)
            it = cache_.erase(it);
        else
            ++it;
    }
}

void
EntityManager::clear()
{
    if (inTx_)
        fatal("EntityManager::clear inside a transaction");
    cache_.clear();
    pendingNew_.clear();
    owned_.clear();
}

} // namespace orm
} // namespace espresso
