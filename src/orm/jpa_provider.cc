#include "orm/jpa_provider.hh"

#include <sstream>

#include "util/logging.hh"

namespace espresso {
namespace orm {

namespace {

std::string
buildInsert(const EntityDescriptor &desc, const Entity &entity)
{
    std::ostringstream sql;
    sql << "INSERT INTO " << desc.name << " (";
    for (std::size_t i = 0; i < desc.fields.size(); ++i) {
        if (i)
            sql << ", ";
        sql << desc.fields[i].name;
    }
    sql << ") VALUES (";
    for (std::size_t i = 0; i < desc.fields.size(); ++i) {
        if (i)
            sql << ", ";
        sql << db::toSqlLiteral(entity.localValues()[i]);
    }
    sql << ")";
    return sql.str();
}

std::string
buildUpdate(const EntityDescriptor &desc, const Entity &entity)
{
    std::ostringstream sql;
    sql << "UPDATE " << desc.name << " SET ";
    bool first = true;
    for (std::size_t i = 0; i < desc.fields.size(); ++i) {
        if (i == desc.pkIndex ||
            !entity.stateManager().isDirty(i))
            continue;
        if (!first)
            sql << ", ";
        first = false;
        sql << desc.fields[i].name << " = "
            << db::toSqlLiteral(entity.localValues()[i]);
    }
    sql << " WHERE " << desc.fields[desc.pkIndex].name << " = "
        << entity.pk();
    return first ? std::string() : sql.str();
}

std::string
buildCollectionInsert(const EntityDescriptor &desc,
                      const std::string &field, std::int64_t parent,
                      std::int64_t idx, const db::DbValue &value)
{
    std::ostringstream sql;
    sql << "INSERT INTO " << desc.collectionTable(field)
        << " (ROWID, PARENT, IDX, VAL) VALUES ("
        << parent * 4096 + idx << ", " << parent << ", " << idx << ", "
        << db::toSqlLiteral(value) << ")";
    return sql.str();
}

} // namespace

void
JpaProvider::writeEntity(db::Database &database, Entity &entity,
                         bool is_new, PhaseTimer *timer)
{
    const EntityDescriptor &desc = entity.descriptor();

    std::string sql;
    {
        PhaseScope scope(timer, "transformation");
        sql = is_new ? buildInsert(desc, entity)
                     : buildUpdate(desc, entity);
    }
    if (!sql.empty())
        database.executeSql(sql);

    if (is_new || entity.stateManager().collectionsDirty()) {
        for (std::size_t c = 0; c < desc.collections.size(); ++c) {
            const std::string &field = desc.collections[c];
            if (!is_new) {
                std::string del;
                {
                    PhaseScope scope(timer, "transformation");
                    del = "DELETE FROM " + desc.collectionTable(field) +
                          " WHERE PARENT = " +
                          std::to_string(entity.pk());
                }
                database.executeSql(del);
            }
            const auto &elems = entity.collection(c);
            for (std::size_t i = 0; i < elems.size(); ++i) {
                std::string ins;
                {
                    PhaseScope scope(timer, "transformation");
                    ins = buildCollectionInsert(
                        desc, field, entity.pk(),
                        static_cast<std::int64_t>(i), elems[i]);
                }
                database.executeSql(ins);
            }
        }
    }
}

std::unique_ptr<Entity>
JpaProvider::readEntity(db::Database &database,
                        const EntityDescriptor &desc, std::int64_t pk,
                        PhaseTimer *timer)
{
    std::string sql;
    {
        PhaseScope scope(timer, "transformation");
        sql = "SELECT * FROM " + desc.name + " WHERE " +
              desc.fields[desc.pkIndex].name + " = " +
              std::to_string(pk);
    }
    db::ResultSet rs = database.executeSql(sql);
    if (rs.rows.empty())
        return nullptr;

    std::unique_ptr<Entity> entity;
    {
        // Result-set to object mapping is transformation work too.
        PhaseScope scope(timer, "transformation");
        entity = std::make_unique<Entity>(&desc);
        for (std::size_t i = 0; i < desc.fields.size(); ++i)
            entity->mutableValues()[i] = rs.rows[0][i];
    }

    for (std::size_t c = 0; c < desc.collections.size(); ++c) {
        std::string csql;
        {
            PhaseScope scope(timer, "transformation");
            csql = "SELECT * FROM " +
                   desc.collectionTable(desc.collections[c]) +
                   " WHERE PARENT = " + std::to_string(pk);
        }
        db::ResultSet crs = database.executeSql(csql);
        PhaseScope scope(timer, "transformation");
        auto &elems = entity->collection(c);
        elems.assign(crs.rows.size(), db::DbValue());
        for (const auto &row : crs.rows) {
            std::size_t idx = static_cast<std::size_t>(row[2].i);
            if (idx < elems.size())
                elems[idx] = row[3];
        }
    }
    return entity;
}

void
JpaProvider::removeEntity(db::Database &database,
                          const EntityDescriptor &desc, std::int64_t pk,
                          PhaseTimer *timer)
{
    for (const std::string &field : desc.collections) {
        std::string del;
        {
            PhaseScope scope(timer, "transformation");
            del = "DELETE FROM " + desc.collectionTable(field) +
                  " WHERE PARENT = " + std::to_string(pk);
        }
        database.executeSql(del);
    }
    std::string sql;
    {
        PhaseScope scope(timer, "transformation");
        sql = "DELETE FROM " + desc.name + " WHERE " +
              desc.fields[desc.pkIndex].name + " = " +
              std::to_string(pk);
    }
    database.executeSql(sql);
}

} // namespace orm
} // namespace espresso
