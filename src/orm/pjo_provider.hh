/**
 * @file
 * The PJO provider (paper §5, Fig. 13/14).
 *
 * Entities are shipped to the backend as DBPersistable records: the
 * typed field values plus the StateManager's field-level dirty
 * bitmap, with no SQL in between — "the SQL transformation phase is
 * removed". After a successful commit the provider enables data
 * deduplication: the entity's fields are redirected to the persisted
 * copy and the DRAM values can be reclaimed; subsequent writes go
 * through copy-on-write shadow fields (§5).
 */

#ifndef ESPRESSO_ORM_PJO_PROVIDER_HH
#define ESPRESSO_ORM_PJO_PROVIDER_HH

#include "orm/entity_manager.hh"

namespace espresso {
namespace orm {

/** Direct DBPersistable data movement. */
class PjoProvider : public Provider
{
  public:
    /** @param enable_dedup turn on §5 data deduplication. */
    explicit PjoProvider(bool enable_dedup = true)
        : dedup_(enable_dedup)
    {}

    const char *name() const override { return "H2-PJO"; }

    void writeEntity(db::Database &database, Entity &entity,
                     bool is_new, PhaseTimer *timer) override;

    std::unique_ptr<Entity> readEntity(db::Database &database,
                                       const EntityDescriptor &desc,
                                       std::int64_t pk,
                                       PhaseTimer *timer) override;

    void removeEntity(db::Database &database,
                      const EntityDescriptor &desc, std::int64_t pk,
                      PhaseTimer *timer) override;

    void postCommit(db::Database &database, Entity &entity) override;

  private:
    bool dedup_;
};

} // namespace orm
} // namespace espresso

#endif // ESPRESSO_ORM_PJO_PROVIDER_HH
