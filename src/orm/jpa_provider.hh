/**
 * @file
 * The JPA provider (DataNucleus-over-JDBC analog, paper Fig. 1).
 *
 * Every operation round-trips through SQL text: entities are
 * formatted into INSERT/UPDATE/DELETE/SELECT statements (literal
 * quoting and all), the database re-tokenizes and re-parses them,
 * and query results are mapped back into entity objects. All of
 * that string work is attributed to the "transformation" phase —
 * the 41.9% slice of the paper's Fig. 4.
 */

#ifndef ESPRESSO_ORM_JPA_PROVIDER_HH
#define ESPRESSO_ORM_JPA_PROVIDER_HH

#include "orm/entity_manager.hh"

namespace espresso {
namespace orm {

/** SQL-text data movement. */
class JpaProvider : public Provider
{
  public:
    const char *name() const override { return "H2-JPA"; }

    void writeEntity(db::Database &database, Entity &entity,
                     bool is_new, PhaseTimer *timer) override;

    std::unique_ptr<Entity> readEntity(db::Database &database,
                                       const EntityDescriptor &desc,
                                       std::int64_t pk,
                                       PhaseTimer *timer) override;

    void removeEntity(db::Database &database,
                      const EntityDescriptor &desc, std::int64_t pk,
                      PhaseTimer *timer) override;
};

} // namespace orm
} // namespace espresso

#endif // ESPRESSO_ORM_JPA_PROVIDER_HH
