#include "orm/pjo_provider.hh"

namespace espresso {
namespace orm {

void
PjoProvider::writeEntity(db::Database &database, Entity &entity,
                         bool is_new, PhaseTimer *timer)
{
    const EntityDescriptor &desc = entity.descriptor();

    db::DbRecord record;
    {
        // Building the DBPersistable view: reference the entity's
        // typed values directly — no text formatting.
        PhaseScope scope(timer, "transformation");
        record.values = entity.localValues();
        record.dirtyMask = is_new
                               ? ~0ull
                               : entity.stateManager().dirtyMask();
    }
    database.persistRecord(desc.name, record);

    if (is_new || entity.stateManager().collectionsDirty()) {
        for (std::size_t c = 0; c < desc.collections.size(); ++c) {
            const std::string table =
                desc.collectionTable(desc.collections[c]);
            if (!is_new) {
                // Replace the collection rows wholesale.
                std::vector<std::int64_t> stale;
                database.scanEq(
                    table, "PARENT", db::DbValue::ofI64(entity.pk()),
                    [&](const std::vector<db::DbValue> &row) {
                        stale.push_back(row[0].i);
                    });
                for (std::int64_t rowid : stale)
                    database.deleteRecord(table, rowid);
            }
            const auto &elems = entity.collection(c);
            for (std::size_t i = 0; i < elems.size(); ++i) {
                db::DbRecord child;
                child.values = {
                    db::DbValue::ofI64(entity.pk() * 4096 +
                                       static_cast<std::int64_t>(i)),
                    db::DbValue::ofI64(entity.pk()),
                    db::DbValue::ofI64(static_cast<std::int64_t>(i)),
                    elems[i]};
                database.persistRecord(table, child);
            }
        }
    }
}

std::unique_ptr<Entity>
PjoProvider::readEntity(db::Database &database,
                        const EntityDescriptor &desc, std::int64_t pk,
                        PhaseTimer *timer)
{
    db::DbRecord record;
    if (!database.fetchRecord(desc.name, pk, &record))
        return nullptr;

    std::unique_ptr<Entity> entity;
    {
        PhaseScope scope(timer, "transformation");
        entity = std::make_unique<Entity>(&desc);
        entity->mutableValues() = std::move(record.values);
    }

    for (std::size_t c = 0; c < desc.collections.size(); ++c) {
        auto &elems = entity->collection(c);
        database.scanEq(desc.collectionTable(desc.collections[c]),
                        "PARENT", db::DbValue::ofI64(pk),
                        [&](const std::vector<db::DbValue> &row) {
                            std::size_t idx =
                                static_cast<std::size_t>(row[2].i);
                            if (elems.size() <= idx)
                                elems.resize(idx + 1);
                            elems[idx] = row[3];
                        });
    }
    return entity;
}

void
PjoProvider::removeEntity(db::Database &database,
                          const EntityDescriptor &desc, std::int64_t pk,
                          PhaseTimer *)
{
    for (const std::string &field : desc.collections) {
        const std::string table = desc.collectionTable(field);
        std::vector<std::int64_t> stale;
        database.scanEq(table, "PARENT", db::DbValue::ofI64(pk),
                        [&](const std::vector<db::DbValue> &row) {
                            stale.push_back(row[0].i);
                        });
        for (std::int64_t rowid : stale)
            database.deleteRecord(table, rowid);
    }
    database.deleteRecord(desc.name, pk);
}

void
PjoProvider::postCommit(db::Database &database, Entity &entity)
{
    if (!dedup_)
        return;
    // Data deduplication (§5, Fig. 14d): redirect reads to the
    // persisted copy and release the volatile duplicates.
    const EntityDescriptor *desc = &entity.descriptor();
    std::int64_t pk = entity.pk();
    db::Database *dbp = &database;
    entity.stateManager().enableDeduplication(
        [dbp, desc, pk](std::size_t field) {
            db::DbRecord record;
            if (!dbp->fetchRecord(desc->name, pk, &record))
                return db::DbValue::null();
            return record.values[field];
        });
    for (std::size_t i = 0; i < entity.mutableValues().size(); ++i) {
        if (i == desc->pkIndex)
            continue;
        // Reclaim the DRAM copy (strings dominate).
        entity.mutableValues()[i] = db::DbValue::null();
    }
}

} // namespace orm
} // namespace espresso
