/**
 * @file
 * The JPAB benchmark models and CRUD drivers (paper §6.3, Table 2):
 *
 *  - BasicTest:      flat Person entity;
 *  - ExtTest:        inheritance (PERSONBASE -> PERSONEXT);
 *  - CollectionTest: entity with an element collection (phones);
 *  - NodeTest:       entities with foreign-key-like references.
 *
 * The drivers run Create / Retrieve / Update / Delete sweeps through
 * an EntityManager and report throughput, so the same code measures
 * H2-JPA and H2-PJO by swapping the provider (Fig. 16/17).
 */

#ifndef ESPRESSO_ORM_JPAB_MODEL_HH
#define ESPRESSO_ORM_JPAB_MODEL_HH

#include <cstdint>
#include <string>

#include "orm/entity_manager.hh"

namespace espresso {
namespace orm {

/** The four JPAB test cases. */
enum class JpabModel
{
    kBasic,
    kExt,
    kCollection,
    kNode,
};

const char *jpabModelName(JpabModel model);

/** Concrete entity name the drivers instantiate. */
const char *jpabEntityName(JpabModel model);

/** Register the model's entity classes with @p enhancer. */
void registerJpabModel(Enhancer &enhancer, JpabModel model);

/** CRUD operations measured by JPAB. */
enum class JpabOp
{
    kCreate,
    kRetrieve,
    kUpdate,
    kDelete,
};

const char *jpabOpName(JpabOp op);

/** One driver result. */
struct JpabResult
{
    std::uint64_t operations = 0;
    std::uint64_t elapsedNs = 0;

    double
    opsPerSec() const
    {
        return elapsedNs == 0
                   ? 0.0
                   : 1e9 * static_cast<double>(operations) /
                         static_cast<double>(elapsedNs);
    }
};

/**
 * Run one CRUD sweep of @p n entities (commit every @p batch ops).
 * kCreate populates ids [0, n); the other ops expect them present
 * (kDelete consumes them).
 */
JpabResult runJpabOp(EntityManager &em, JpabModel model, JpabOp op,
                     int n, int batch = 50);

} // namespace orm
} // namespace espresso

#endif // ESPRESSO_ORM_JPAB_MODEL_HH
