#include "orm/jpab_model.hh"

#include <chrono>

#include "util/logging.hh"

namespace espresso {
namespace orm {

namespace {

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void
fillNew(Entity *e, JpabModel model, int i)
{
    e->set("ID", db::DbValue::ofI64(i));
    switch (model) {
      case JpabModel::kBasic:
        e->set("FIRSTNAME", db::DbValue::ofStr("First" +
                                               std::to_string(i)));
        e->set("LASTNAME",
               db::DbValue::ofStr("Last" + std::to_string(i)));
        e->set("PHONE", db::DbValue::ofStr("+1-555-000-" +
                                           std::to_string(i % 10000)));
        e->set("EMAIL", db::DbValue::ofStr("p" + std::to_string(i) +
                                           "@example.com"));
        break;
      case JpabModel::kExt:
        e->set("FIRSTNAME", db::DbValue::ofStr("First" +
                                               std::to_string(i)));
        e->set("LASTNAME",
               db::DbValue::ofStr("Last" + std::to_string(i)));
        e->set("PHONE", db::DbValue::ofStr("+1-555-111-" +
                                           std::to_string(i % 10000)));
        e->set("EMAIL", db::DbValue::ofStr("x" + std::to_string(i) +
                                           "@example.com"));
        break;
      case JpabModel::kCollection: {
        e->set("NAME", db::DbValue::ofStr("Coll" + std::to_string(i)));
        auto &phones = e->collection(0);
        phones = {db::DbValue::ofStr("h-" + std::to_string(i)),
                  db::DbValue::ofStr("w-" + std::to_string(i)),
                  db::DbValue::ofStr("m-" + std::to_string(i))};
        e->touchCollection(0);
        break;
      }
      case JpabModel::kNode:
        e->set("NAME", db::DbValue::ofStr("Node" + std::to_string(i)));
        // Foreign-key-like references to already created nodes,
        // forming an implicit binary tree.
        e->set("LEFTID", db::DbValue::ofI64(i > 0 ? (i - 1) / 2 : 0));
        e->set("RIGHTID",
               db::DbValue::ofI64(i > 1 ? (i - 2) / 2 : 0));
        break;
    }
}

void
mutate(Entity *e, JpabModel model, int i)
{
    switch (model) {
      case JpabModel::kBasic:
      case JpabModel::kExt:
        e->set("PHONE", db::DbValue::ofStr("+1-555-999-" +
                                           std::to_string(i % 10000)));
        break;
      case JpabModel::kCollection: {
        auto &phones = e->collection(0);
        phones.push_back(
            db::DbValue::ofStr("extra-" + std::to_string(i)));
        e->touchCollection(0);
        break;
      }
      case JpabModel::kNode:
        e->set("NAME",
               db::DbValue::ofStr("Node'" + std::to_string(i)));
        break;
    }
}

} // namespace

const char *
jpabModelName(JpabModel model)
{
    switch (model) {
      case JpabModel::kBasic: return "BasicTest";
      case JpabModel::kExt: return "ExtTest";
      case JpabModel::kCollection: return "CollectionTest";
      case JpabModel::kNode: return "NodeTest";
    }
    panic("unknown JpabModel");
}

const char *
jpabEntityName(JpabModel model)
{
    switch (model) {
      case JpabModel::kBasic: return "PERSON";
      case JpabModel::kExt: return "PERSONEXT";
      case JpabModel::kCollection: return "PERSONCOLL";
      case JpabModel::kNode: return "TREENODE";
    }
    panic("unknown JpabModel");
}

const char *
jpabOpName(JpabOp op)
{
    switch (op) {
      case JpabOp::kCreate: return "Create";
      case JpabOp::kRetrieve: return "Retrieve";
      case JpabOp::kUpdate: return "Update";
      case JpabOp::kDelete: return "Delete";
    }
    panic("unknown JpabOp");
}

void
registerJpabModel(Enhancer &enhancer, JpabModel model)
{
    using db::DbType;
    switch (model) {
      case JpabModel::kBasic: {
        EntityDescriptor person;
        person.name = "PERSON";
        person.fields = {{"ID", DbType::kI64, false, ""},
                         {"FIRSTNAME", DbType::kStr, false, ""},
                         {"LASTNAME", DbType::kStr, false, ""},
                         {"PHONE", DbType::kStr, false, ""},
                         {"EMAIL", DbType::kStr, false, ""}};
        enhancer.registerEntity(person);
        break;
      }
      case JpabModel::kExt: {
        EntityDescriptor base;
        base.name = "PERSONBASE";
        base.fields = {{"ID", DbType::kI64, false, ""},
                       {"FIRSTNAME", DbType::kStr, false, ""},
                       {"LASTNAME", DbType::kStr, false, ""}};
        enhancer.registerEntity(base);
        EntityDescriptor ext;
        ext.name = "PERSONEXT";
        ext.superName = "PERSONBASE";
        ext.fields = {{"PHONE", DbType::kStr, false, ""},
                      {"EMAIL", DbType::kStr, false, ""}};
        enhancer.registerEntity(ext);
        break;
      }
      case JpabModel::kCollection: {
        EntityDescriptor coll;
        coll.name = "PERSONCOLL";
        coll.fields = {{"ID", DbType::kI64, false, ""},
                       {"NAME", DbType::kStr, false, ""}};
        coll.collections = {"PHONES"};
        enhancer.registerEntity(coll);
        break;
      }
      case JpabModel::kNode: {
        EntityDescriptor node;
        node.name = "TREENODE";
        node.fields = {{"ID", DbType::kI64, false, ""},
                       {"NAME", DbType::kStr, false, ""},
                       {"LEFTID", DbType::kI64, true, "TREENODE"},
                       {"RIGHTID", DbType::kI64, true, "TREENODE"}};
        enhancer.registerEntity(node);
        break;
      }
    }
}

JpabResult
runJpabOp(EntityManager &em, JpabModel model, JpabOp op, int n,
          int batch)
{
    const char *entity = jpabEntityName(model);
    JpabResult result;
    std::uint64_t t0 = nowNs();

    int done = 0;
    while (done < n) {
        int upto = std::min(n, done + batch);
        em.begin();
        for (int i = done; i < upto; ++i) {
            switch (op) {
              case JpabOp::kCreate: {
                Entity *e = em.newEntity(entity);
                fillNew(e, model, i);
                em.persist(e);
                break;
              }
              case JpabOp::kRetrieve: {
                Entity *e = em.find(entity, i);
                if (!e)
                    fatal("jpab: missing entity during retrieve");
                // Touch the payload like JPAB's getters do.
                (void)e->get(1);
                if (model == JpabModel::kCollection)
                    (void)e->collection(0).size();
                break;
              }
              case JpabOp::kUpdate: {
                Entity *e = em.find(entity, i);
                if (!e)
                    fatal("jpab: missing entity during update");
                mutate(e, model, i);
                break;
              }
              case JpabOp::kDelete: {
                Entity *e = em.find(entity, i);
                if (!e)
                    fatal("jpab: missing entity during delete");
                em.remove(e);
                break;
              }
            }
            ++result.operations;
        }
        em.commit();
        em.clear();
        done = upto;
    }

    result.elapsedNs = nowNs() - t0;
    return result;
}

} // namespace orm
} // namespace espresso
