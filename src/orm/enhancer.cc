#include "orm/enhancer.hh"

#include "util/logging.hh"

namespace espresso {
namespace orm {

const EntityDescriptor &
Enhancer::registerEntity(EntityDescriptor desc)
{
    if (entities_.count(desc.name))
        fatal("enhancer: entity " + desc.name + " already registered");

    auto owned = std::make_unique<EntityDescriptor>(std::move(desc));
    EntityDescriptor *d = owned.get();

    if (!d->superName.empty()) {
        const EntityDescriptor *super = descriptor(d->superName);
        if (!super)
            fatal("enhancer: superclass " + d->superName +
                  " of " + d->name + " is not registered");
        d->super = super;
        // Flatten: inherited columns (and the pk) come first.
        std::vector<EntityField> flat = super->fields;
        flat.insert(flat.end(), d->fields.begin(), d->fields.end());
        d->fields = std::move(flat);
        d->pkIndex = super->pkIndex;
        for (const std::string &c : super->collections)
            d->collections.push_back(c);
    }

    if (d->fields.empty() ||
        d->fields[d->pkIndex].type != db::DbType::kI64) {
        fatal("enhancer: entity " + d->name +
              " needs a BIGINT primary key field");
    }
    if (d->fields.size() > 62)
        fatal("enhancer: too many columns in " + d->name);

    entities_[d->name] = std::move(owned);
    return *d;
}

const EntityDescriptor *
Enhancer::descriptor(const std::string &name) const
{
    auto it = entities_.find(name);
    return it == entities_.end() ? nullptr : it->second.get();
}

void
Enhancer::createTables(db::Database &database) const
{
    for (const auto &kv : entities_) {
        const EntityDescriptor &d = *kv.second;
        if (!database.catalog().find(d.name))
            database.createTable(d.tableSchema());
        for (const std::string &c : d.collections) {
            if (!database.catalog().find(d.collectionTable(c)))
                database.createTable(d.collectionSchema(c));
        }
    }
}

std::unique_ptr<Entity>
Enhancer::enhanceNew(const std::string &name) const
{
    const EntityDescriptor *d = descriptor(name);
    if (!d)
        fatal("enhancer: entity " + name + " is not registered");
    return std::make_unique<Entity>(d);
}

} // namespace orm
} // namespace espresso
