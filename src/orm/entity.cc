#include "orm/entity.hh"

#include "util/logging.hh"

namespace espresso {
namespace orm {

std::size_t
EntityDescriptor::fieldIndex(const std::string &field_name) const
{
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (fields[i].name == field_name)
            return i;
    }
    panic("entity " + name + " has no field " + field_name);
}

db::TableSchema
EntityDescriptor::tableSchema() const
{
    db::TableSchema schema;
    schema.name = name;
    for (const EntityField &f : fields)
        schema.columns.push_back({f.name, f.type});
    schema.pkColumn = pkIndex;
    return schema;
}

std::string
EntityDescriptor::collectionTable(const std::string &field) const
{
    return name + "_" + field;
}

db::TableSchema
EntityDescriptor::collectionSchema(const std::string &field) const
{
    db::TableSchema schema;
    schema.name = collectionTable(field);
    schema.columns = {{"ROWID", db::DbType::kI64},
                      {"PARENT", db::DbType::kI64},
                      {"IDX", db::DbType::kI64},
                      {"VAL", db::DbType::kStr}};
    schema.pkColumn = 0;
    schema.indexColumn = 1; // PARENT lookups dominate
    return schema;
}

Entity::Entity(const EntityDescriptor *desc)
    : desc_(desc), values_(desc->fields.size()),
      collections_(desc->collections.size())
{
    for (std::size_t i = 0; i < desc_->fields.size(); ++i) {
        if (desc_->fields[i].type == db::DbType::kI64 ||
            desc_->fields[i].isReference) {
            values_[i] = db::DbValue::ofI64(0);
        }
    }
}

std::int64_t
Entity::pk() const
{
    return values_[desc_->pkIndex].i;
}

db::DbValue
Entity::get(std::size_t index) const
{
    // Deduplicated fields live in the backend; only copy-on-write
    // shadows (dirty fields) remain local (§5).
    if (sm_.deduplicated() && !sm_.isDirty(index) &&
        index != desc_->pkIndex) {
        return sm_.readThrough(index);
    }
    return values_[index];
}

void
Entity::set(std::size_t index, db::DbValue v)
{
    if (index >= values_.size())
        panic("entity field index out of range");
    // Copy-on-write shadow under deduplication: the write stays in
    // DRAM until commit ships the dirty fields.
    values_[index] = std::move(v);
    sm_.markDirty(index);
}

std::vector<db::DbValue> &
Entity::collection(std::size_t index)
{
    return collections_.at(index);
}

const std::vector<db::DbValue> &
Entity::collection(std::size_t index) const
{
    return collections_.at(index);
}

void
Entity::touchCollection(std::size_t)
{
    sm_.markCollectionsDirty();
}

} // namespace orm
} // namespace espresso
