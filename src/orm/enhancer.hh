/**
 * @file
 * The enhancer: entity-class registration and "bytecode
 * instrumentation" (paper §2.1). Registering a descriptor is the
 * @persistable annotation; enhanceNew() is the enhancer's rewrite
 * that implants a StateManager into every instance. The enhancer
 * also derives the relational DDL for the registered classes.
 */

#ifndef ESPRESSO_ORM_ENHANCER_HH
#define ESPRESSO_ORM_ENHANCER_HH

#include <map>
#include <memory>
#include <string>

#include "db/database.hh"
#include "orm/entity.hh"

namespace espresso {
namespace orm {

/** Registry of enhanced entity classes. */
class Enhancer
{
  public:
    /**
     * Register an entity class. @p desc.superName, when set, must
     * already be registered; its fields are inherited (flattened
     * single-table mapping). The first own field of a root class
     * must be the BIGINT primary key.
     */
    const EntityDescriptor &registerEntity(EntityDescriptor desc);

    const EntityDescriptor *descriptor(const std::string &name) const;

    /** Issue DDL for every registered class and collection table. */
    void createTables(db::Database &database) const;

    /** Instantiate an enhanced (StateManager-attached) instance. */
    std::unique_ptr<Entity> enhanceNew(const std::string &name) const;

  private:
    std::map<std::string, std::unique_ptr<EntityDescriptor>> entities_;
};

} // namespace orm
} // namespace espresso

#endif // ESPRESSO_ORM_ENHANCER_HH
