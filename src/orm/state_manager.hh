/**
 * @file
 * StateManager — the per-instance control object the enhancer
 * attaches to every managed entity (paper Fig. 14a): lifecycle
 * state, the field-level dirty bitmap (§5 "field-level tracking"),
 * and the data-deduplication read-through hook (§5, Fig. 14d).
 */

#ifndef ESPRESSO_ORM_STATE_MANAGER_HH
#define ESPRESSO_ORM_STATE_MANAGER_HH

#include <cstdint>
#include <functional>

#include "db/value_codec.hh"

namespace espresso {
namespace orm {

/** Entity lifecycle. */
enum class EntityState
{
    kTransient, ///< created, not yet persisted
    kManaged,   ///< tracked by an EntityManager
    kRemoved,   ///< scheduled for deletion at commit
};

/** Per-entity management state. */
class StateManager
{
  public:
    EntityState state() const { return state_; }
    void setState(EntityState s) { state_ = s; }

    /** @name Field-level dirty tracking */
    /// @{
    std::uint64_t dirtyMask() const { return dirtyMask_; }
    void markDirty(std::size_t field) { dirtyMask_ |= 1ull << field; }
    bool isDirty(std::size_t field) const
    {
        return dirtyMask_ & (1ull << field);
    }
    bool anyDirty() const { return dirtyMask_ != 0; }
    void clearDirty() { dirtyMask_ = 0; }

    bool collectionsDirty() const { return collectionsDirty_; }
    void markCollectionsDirty() { collectionsDirty_ = true; }
    void clearCollectionsDirty() { collectionsDirty_ = false; }
    /// @}

    /** @name Data deduplication (§5) */
    /// @{
    bool deduplicated() const { return static_cast<bool>(readThrough_); }

    /** Install the backend read hook; local copies may be dropped. */
    void
    enableDeduplication(
        std::function<db::DbValue(std::size_t)> read_through)
    {
        readThrough_ = std::move(read_through);
    }

    db::DbValue
    readThrough(std::size_t field) const
    {
        return readThrough_(field);
    }

    void disableDeduplication() { readThrough_ = nullptr; }
    /// @}

  private:
    EntityState state_ = EntityState::kTransient;
    std::uint64_t dirtyMask_ = 0;
    bool collectionsDirty_ = false;
    std::function<db::DbValue(std::size_t)> readThrough_;
};

} // namespace orm
} // namespace espresso

#endif // ESPRESSO_ORM_STATE_MANAGER_HH
