/**
 * @file
 * EntityManager and the provider strategy (paper Figs. 1 & 13).
 *
 * The application-facing API is identical for both providers —
 * begin / newEntity / persist / find / remove / commit — which is the
 * paper's backward-compatibility claim: swapping JPA for PJO requires
 * no application changes. What differs is how a provider moves data
 * between managed entities and the backend database:
 *
 *  - JpaProvider: objects → SQL text → (db re-parses) → rows, and
 *    result rows → entities, on every operation;
 *  - PjoProvider: objects are shipped as typed DBPersistable records
 *    with a field-level dirty mask, plus data deduplication after
 *    commit.
 */

#ifndef ESPRESSO_ORM_ENTITY_MANAGER_HH
#define ESPRESSO_ORM_ENTITY_MANAGER_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "db/database.hh"
#include "orm/enhancer.hh"
#include "orm/entity.hh"
#include "util/phase_timer.hh"

namespace espresso {
namespace orm {

/** Data-movement strategy between entities and the database. */
class Provider
{
  public:
    virtual ~Provider() = default;

    virtual const char *name() const = 0;

    /** Ship a new or dirty entity to the backend. */
    virtual void writeEntity(db::Database &database, Entity &entity,
                             bool is_new, PhaseTimer *timer) = 0;

    /** Load an entity by primary key (nullptr when absent). */
    virtual std::unique_ptr<Entity>
    readEntity(db::Database &database, const EntityDescriptor &desc,
               std::int64_t pk, PhaseTimer *timer) = 0;

    /** Delete an entity (and its collection rows). */
    virtual void removeEntity(db::Database &database,
                              const EntityDescriptor &desc,
                              std::int64_t pk, PhaseTimer *timer) = 0;

    /** Post-commit hook (PJO data deduplication). */
    virtual void postCommit(db::Database &, Entity &) {}
};

/** The em of the paper's code snippets. */
class EntityManager
{
  public:
    EntityManager(db::Database *database, Provider *provider,
                  const Enhancer *enhancer);

    /** Attribute time to @p timer (also forwarded to the database). */
    void setPhaseTimer(PhaseTimer *timer);

    /** em.getTransaction().begin() */
    void begin();

    /** Create a managed-to-be entity instance (owned by this em). */
    Entity *newEntity(const std::string &entity_name);

    /** em.persist(p): schedule for insertion at commit. */
    void persist(Entity *entity);

    /** Load (or return the cached managed copy of) an entity. */
    Entity *find(const std::string &entity_name, std::int64_t pk);

    /** Schedule a managed entity for deletion. */
    void remove(Entity *entity);

    /** em.getTransaction().commit(): flush all pending changes. */
    void commit();

    /** Drop the first-level cache (entities become invalid). */
    void clear();

    db::Database &database() { return *db_; }
    Provider &provider() { return *provider_; }

  private:
    db::Database *db_;
    Provider *provider_;
    const Enhancer *enhancer_;
    PhaseTimer *timer_ = nullptr;
    bool inTx_ = false;

    std::vector<std::unique_ptr<Entity>> owned_;
    std::vector<Entity *> pendingNew_;
    std::map<std::pair<std::string, std::int64_t>, Entity *> cache_;
};

} // namespace orm
} // namespace espresso

#endif // ESPRESSO_ORM_ENTITY_MANAGER_HH
