/**
 * @file
 * Entity model for the persistence layer (§2.1, §5).
 *
 * An EntityDescriptor is what the DataNucleus enhancer derives from
 * an annotated class: the flattened column list (superclass fields
 * first — inheritance maps to a single table), the primary key,
 * element collections (mapped to child tables), and foreign-key
 * reference fields. An Entity is one enhanced instance: its values,
 * plus the StateManager the enhancer attaches for lifecycle and
 * field-level dirty tracking.
 */

#ifndef ESPRESSO_ORM_ENTITY_HH
#define ESPRESSO_ORM_ENTITY_HH

#include <functional>
#include <string>
#include <vector>

#include "db/catalog.hh"
#include "db/value_codec.hh"
#include "orm/state_manager.hh"

namespace espresso {
namespace orm {

/** One persistent field (a table column). */
struct EntityField
{
    std::string name;
    db::DbType type = db::DbType::kI64;
    bool isReference = false; ///< foreign key to another entity
    std::string refTarget;    ///< referenced entity name
};

/** Enhanced class metadata. */
class EntityDescriptor
{
  public:
    std::string name; ///< class name == table name (upper case)
    std::string superName;
    const EntityDescriptor *super = nullptr;
    std::vector<EntityField> fields; ///< flattened, [0] is the pk
    std::vector<std::string> collections;

    std::size_t pkIndex = 0;

    std::size_t fieldIndex(const std::string &field_name) const;

    /** Main table schema. */
    db::TableSchema tableSchema() const;

    /** Child-table name for collection @p field. */
    std::string collectionTable(const std::string &field) const;

    /** Child-table schema: ROWID pk | PARENT | IDX | VALUE. */
    db::TableSchema collectionSchema(const std::string &field) const;
};

/** One enhanced, managed instance. */
class Entity
{
  public:
    explicit Entity(const EntityDescriptor *desc);

    const EntityDescriptor &descriptor() const { return *desc_; }
    StateManager &stateManager() { return sm_; }
    const StateManager &stateManager() const { return sm_; }

    std::int64_t pk() const;

    /** Read field @p index; honors data deduplication (§5): a
     * deduplicated, non-shadowed field reads through to the backend
     * copy instead of DRAM. */
    db::DbValue get(std::size_t index) const;

    db::DbValue
    get(const std::string &field) const
    {
        return get(desc_->fieldIndex(field));
    }

    /** Write field @p index; records the dirty bit (field-level
     * tracking) and, when deduplicated, performs the copy-on-write
     * shadow update instead of touching the persistent copy. */
    void set(std::size_t index, db::DbValue v);

    void
    set(const std::string &field, db::DbValue v)
    {
        set(desc_->fieldIndex(field), std::move(v));
    }

    /** Raw (provider-side) access bypassing dedup redirection. */
    const std::vector<db::DbValue> &localValues() const { return values_; }
    std::vector<db::DbValue> &mutableValues() { return values_; }

    /** Collection field content (index into descriptor().collections). */
    std::vector<db::DbValue> &collection(std::size_t index);
    const std::vector<db::DbValue> &collection(std::size_t index) const;

    /** Mark a collection dirty (whole-collection granularity). */
    void touchCollection(std::size_t index);

  private:
    const EntityDescriptor *desc_;
    std::vector<db::DbValue> values_;
    std::vector<std::vector<db::DbValue>> collections_;
    StateManager sm_;
};

} // namespace orm
} // namespace espresso

#endif // ESPRESSO_ORM_ENTITY_HH
