#include "net/connection.hh"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "db/catalog.hh"
#include "db/database.hh"
#include "db/sharded_database.hh"
#include "db/wal.hh"
#include "util/logging.hh"

namespace espresso {
namespace net {

namespace {

WireStatus
mapCode(db::StatusCode c)
{
    switch (c) {
    case db::StatusCode::kOk:
        return WireStatus::kOk;
    case db::StatusCode::kWalFull:
        return WireStatus::kWalFull;
    case db::StatusCode::kDeadlock:
        return WireStatus::kDeadlock;
    case db::StatusCode::kConflict:
        return WireStatus::kConflict;
    case db::StatusCode::kMisuse:
        return WireStatus::kMisuse;
    case db::StatusCode::kAborted:
        return WireStatus::kAborted;
    case db::StatusCode::kBusy:
        return WireStatus::kBusy;
    }
    return WireStatus::kError;
}

bool
opHasFlag(WireOp op)
{
    return op == WireOp::kUpdate || op == WireOp::kDel;
}

} // namespace

Connection::Connection(Server *srv, EventLoop *loop, unsigned worker,
                       UniqueFd fd, std::uint64_t id)
    : srv_(srv), db_(srv->db_), loop_(loop), worker_(worker),
      fd_(std::move(fd)), id_(id),
      // A full-size response frame must fit an *empty* ring or it
      // could never drain; a slow reader still overflows on the
      // second one.
      wbuf_(std::max(srv->cfg_.writeBufBytes,
                     kMaxPayload + kWireHeaderBytes + 4096))
{}

Connection::~Connection() = default;

void
Connection::start()
{
    interest_ = EPOLLIN;
    auto self = shared_from_this();
    loop_->add(fd_.get(), interest_, [self](std::uint32_t ev) {
        self->onEvents(ev);
    });
}

void
Connection::onEvents(std::uint32_t ev)
{
    if (closed_)
        return;
    if (ev & (EPOLLERR | EPOLLHUP)) {
        close();
        return;
    }
    if (ev & EPOLLOUT) {
        flushWrite();
        if (!closed_)
            updateInterest();
    }
    if (closed_)
        return;
    if (ev & EPOLLIN)
        readable();
}

void
Connection::readable()
{
    const std::size_t chunk = srv_->cfg_.readBufBytes;
    for (;;) {
        std::size_t old = rbuf_.size();
        rbuf_.resize(old + chunk);
        ssize_t n = ::read(fd_.get(), rbuf_.data() + old, chunk);
        if (n > 0) {
            rbuf_.resize(old + static_cast<std::size_t>(n));
            if (static_cast<std::size_t>(n) < chunk)
                break;
            // Bound the unparsed backlog; level-triggered epoll
            // re-delivers what we leave in the kernel.
            if (rbuf_.size() - rhead_ >
                kMaxPayload + kWireHeaderBytes + chunk)
                break;
            continue;
        }
        rbuf_.resize(old);
        if (n == 0) {
            close();
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        close();
        return;
    }
    processBuffer();
}

void
Connection::processBuffer()
{
    while (!closed_ && !paused_) {
        FrameView f;
        ParseResult pr = tryParseFrame(rbuf_.data() + rhead_,
                                       rbuf_.size() - rhead_, &f);
        if (pr == ParseResult::kNeedMore)
            break;
        if (pr != ParseResult::kFrame) {
            // Corrupt framing: the stream can't be resynchronized.
            srv_->stats_.protocolErrors.fetch_add(
                1, std::memory_order_relaxed);
            close();
            return;
        }
        srv_->stats_.frames.fetch_add(1, std::memory_order_relaxed);
        execFrame(f);
        if (closed_)
            return;
        rhead_ += f.frameBytes();
    }
    if (rhead_ > 0 &&
        (rhead_ == rbuf_.size() || rhead_ >= srv_->cfg_.readBufBytes)) {
        rbuf_.erase(rbuf_.begin(),
                    rbuf_.begin() +
                        static_cast<std::ptrdiff_t>(rhead_));
        rhead_ = 0;
    }
    updateInterest();
}

void
Connection::execFrame(const FrameView &f)
{
    SlotPtr slot = pushSlot();
    WireReader r(f);
    switch (f.op) {
    case WireOp::kPing:
        fillSimple(slot, f.op, WireStatus::kOk);
        return;
    case WireOp::kCreateTable:
        opCreateTable(r, slot);
        return;
    case WireOp::kGet:
    case WireOp::kScanEq:
    case WireOp::kRowCount:
        opRead(f.op, r, slot);
        return;
    case WireOp::kPut:
    case WireOp::kInsert:
    case WireOp::kUpdate:
    case WireOp::kDel:
        opWrite(f.op, r, slot);
        return;
    case WireOp::kBegin:
        opBegin(r, slot);
        return;
    case WireOp::kCommit:
    case WireOp::kRollback:
        opFinishTxn(f.op, slot);
        return;
    }
    // Unknown opcode in a well-formed frame: answer, keep the
    // stream.
    fillSimple(slot, f.op, WireStatus::kBadRequest);
}

void
Connection::opCreateTable(WireReader &r, const SlotPtr &slot)
{
    db::TableSchema schema;
    schema.name = r.getStr();
    std::uint16_t pk_col = r.getU16();
    std::uint16_t idx_col = r.getU16();
    std::uint16_t ncols = r.getU16();
    if (!r.ok() || ncols == 0 || ncols > db::Catalog::kMaxColumns) {
        fillSimple(slot, WireOp::kCreateTable, WireStatus::kBadRequest);
        return;
    }
    for (std::uint16_t i = 0; i < ncols; ++i) {
        db::ColumnDef col;
        col.name = r.getStr();
        std::uint8_t type = r.getU8();
        if (!r.ok() || type > static_cast<std::uint8_t>(
                                  db::DbType::kStr)) {
            fillSimple(slot, WireOp::kCreateTable,
                       WireStatus::kBadRequest);
            return;
        }
        col.type = static_cast<db::DbType>(type);
        schema.columns.push_back(std::move(col));
    }
    if (!r.atEnd() || pk_col >= ncols) {
        fillSimple(slot, WireOp::kCreateTable, WireStatus::kBadRequest);
        return;
    }
    schema.pkColumn = pk_col;
    schema.indexColumn = idx_col == 0xffff
                             ? db::TableSchema::kNoIndex
                             : idx_col;
    try {
        db_->createTable(schema);
        fillSimple(slot, WireOp::kCreateTable, WireStatus::kOk);
    } catch (const std::exception &) {
        fillSimple(slot, WireOp::kCreateTable, WireStatus::kError);
    }
}

void
Connection::opRead(WireOp op, WireReader &r, const SlotPtr &slot)
{
    std::string table = r.getStr();
    std::int64_t pk = 0;
    std::string column;
    db::DbValue needle;
    if (op == WireOp::kGet)
        pk = r.getI64();
    else if (op == WireOp::kScanEq) {
        column = r.getStr();
        needle = r.getValue();
    }
    if (!r.ok() || !r.atEnd()) {
        fillSimple(slot, op, WireStatus::kBadRequest);
        return;
    }
    if (txnId_ != 0) {
        if (txnDead_) {
            fillSimple(slot, op, WireStatus::kAborted);
            return;
        }
        if (!db_->bindDetached(txnId_)) {
            fillSimple(slot, op, WireStatus::kMisuse);
            return;
        }
    }
    WireWriter w;
    WireStatus st = WireStatus::kOk;
    bool have_payload = false;
    try {
        switch (op) {
        case WireOp::kGet: {
            db::DbRecord rec;
            if (db_->fetchRecord(table, pk, &rec)) {
                w.begin(op, static_cast<std::uint16_t>(WireStatus::kOk));
                w.putRow(rec.values);
                w.finish();
                have_payload = true;
            } else {
                st = WireStatus::kNotFound;
            }
            break;
        }
        case WireOp::kScanEq: {
            w.begin(op, static_cast<std::uint16_t>(WireStatus::kOk));
            std::size_t count_at = w.size();
            w.putU32(0);
            std::uint32_t n = 0;
            db_->scanEq(table, column, needle,
                        [&](const std::vector<db::DbValue> &row) {
                            w.putRow(row);
                            ++n;
                        });
            w.patchU32(count_at, n);
            w.finish();
            if (w.size() > kMaxPayload + kWireHeaderBytes) {
                st = WireStatus::kError; // result exceeds a frame
            } else {
                have_payload = true;
            }
            break;
        }
        default: { // kRowCount
            std::size_t rows = db_->rowCount(table);
            w.begin(op, static_cast<std::uint16_t>(WireStatus::kOk));
            w.putU64(rows);
            w.finish();
            have_payload = true;
            break;
        }
        }
    } catch (const db::TxnAbortError &e) {
        st = mapCode(e.code());
        if (txnId_ != 0)
            txnDead_ = true;
    } catch (const std::exception &) {
        st = WireStatus::kError;
    }
    if (txnId_ != 0)
        db_->unbindDetached(txnId_);
    if (have_payload)
        fillPayload(slot, std::move(w));
    else
        fillSimple(slot, op, st);
}

std::uint8_t
Connection::execWriteStmt(db::Database *member, WireOp op,
                          const std::string &table,
                          const db::DbRecord &rec, std::int64_t pk)
{
    switch (op) {
    case WireOp::kPut:
    case WireOp::kInsert:
        if (member != nullptr)
            member->persistRecord(table, rec);
        else
            db_->persistRecord(table, rec);
        return 1;
    case WireOp::kUpdate:
        if (member != nullptr)
            return member->updateRecord(table, rec) ? 1 : 0;
        return db_->updateRecord(table, rec) ? 1 : 0;
    default: // kDel
        if (member != nullptr)
            return member->deleteRecord(table, pk) ? 1 : 0;
        return db_->deleteRecord(table, pk) ? 1 : 0;
    }
}

void
Connection::opWrite(WireOp op, WireReader &r, const SlotPtr &slot)
{
    std::string table = r.getStr();
    db::DbRecord rec;
    std::int64_t pk = 0;
    if (op == WireOp::kDel) {
        pk = r.getI64();
    } else {
        rec.dirtyMask = r.getU64();
        rec.values = r.getRow();
    }
    if (!r.ok() || !r.atEnd()) {
        fillSimple(slot, op, WireStatus::kBadRequest);
        return;
    }

    if (txnId_ != 0) {
        // Explicit bracket: bind, execute through the routed sharded
        // path, unbind. The response is immediate — durability is
        // the commit's contract.
        if (txnDead_) {
            fillSimple(slot, op, WireStatus::kAborted);
            return;
        }
        if (!db_->bindDetached(txnId_)) {
            fillSimple(slot, op, WireStatus::kMisuse);
            return;
        }
        WireStatus st = WireStatus::kOk;
        std::uint8_t flag = 0;
        try {
            flag = execWriteStmt(nullptr, op, table, rec, pk);
        } catch (const db::TxnAbortError &e) {
            st = mapCode(e.code());
            txnDead_ = true;
        } catch (const db::WalFullError &) {
            st = WireStatus::kWalFull;
            txnDead_ = true;
        } catch (const std::exception &) {
            st = WireStatus::kError; // statement failed; bracket lives
        }
        db_->unbindDetached(txnId_);
        if (st == WireStatus::kOk && opHasFlag(op)) {
            WireWriter w;
            w.begin(op, static_cast<std::uint16_t>(st));
            w.putU8(flag);
            w.finish();
            fillPayload(slot, std::move(w));
        } else {
            fillSimple(slot, op, st);
        }
        return;
    }

    // Auto-commit. Resolve the routing pk first.
    if (op != WireOp::kDel) {
        const db::TableSchema *schema =
            db_->shard(0).catalog().find(table);
        if (schema == nullptr) {
            fillSimple(slot, op, WireStatus::kError);
            return;
        }
        if (rec.values.size() != schema->columns.size() ||
            rec.values[schema->pkColumn].type != db::DbType::kI64) {
            fillSimple(slot, op, WireStatus::kBadRequest);
            return;
        }
        pk = rec.values[schema->pkColumn].i;
    }

    if (db_->migrating()) {
        // Mid-repartition a write may probe two member homes inside
        // a 2PC bracket; that path may block, so it runs on the
        // committer pool.
        auto db = db_;
        runOnPool(
            op, slot,
            [db, op, table = std::move(table), rec = std::move(rec),
             pk]() {
                PoolResult out;
                out.hasFlag = opHasFlag(op);
                try {
                    std::uint8_t flag = 0;
                    switch (op) {
                    case WireOp::kPut:
                    case WireOp::kInsert:
                        db->persistRecord(table, rec);
                        flag = 1;
                        break;
                    case WireOp::kUpdate:
                        flag = db->updateRecord(table, rec) ? 1 : 0;
                        break;
                    default:
                        flag = db->deleteRecord(table, pk) ? 1 : 0;
                        break;
                    }
                    out.flag = flag;
                } catch (const db::TxnAbortError &e) {
                    out.status = mapCode(e.code());
                } catch (const db::WalFullError &) {
                    out.status = WireStatus::kWalFull;
                } catch (const std::exception &) {
                    out.status = WireStatus::kError;
                }
                return out;
            },
            false);
        return;
    }

    // The pipelining fast path: execute the row mutation now on the
    // worker (so this connection's next frame sees it), park the
    // member session, and let the group-commit drainer make it
    // durable — concurrent connections' fences coalesce there. The
    // response completes from the drainer callback, in slot order.
    if (!srv_->admit(worker_)) {
        srv_->stats_.admissionRejects.fetch_add(
            1, std::memory_order_relaxed);
        fillSimple(slot, op, WireStatus::kBusy);
        return;
    }
    db::Database &member = db_->shardForPk(pk);
    std::uint64_t sid = 0;
    db::Status bst = member.beginDetached({}, &sid);
    if (!bst.isOk()) {
        srv_->noteWorkDone(worker_);
        srv_->stats_.admissionRejects.fetch_add(
            1, std::memory_order_relaxed);
        fillSimple(slot, op, mapCode(bst.code()));
        return;
    }
    if (!member.bindDetached(sid)) {
        (void)member.rollbackDetached(sid);
        srv_->noteWorkDone(worker_);
        fillSimple(slot, op, WireStatus::kError);
        return;
    }
    WireStatus st = WireStatus::kOk;
    std::uint8_t flag = 0;
    try {
        flag = execWriteStmt(&member, op, table, rec, pk);
    } catch (const db::TxnAbortError &e) {
        st = mapCode(e.code());
    } catch (const db::WalFullError &) {
        st = WireStatus::kWalFull;
    } catch (const std::exception &) {
        st = WireStatus::kError;
    }
    member.unbindDetached(sid);
    if (st != WireStatus::kOk) {
        (void)member.rollbackDetached(sid); // dispose the session
        srv_->noteWorkDone(worker_);
        fillSimple(slot, op, st);
        return;
    }
    auto self = shared_from_this();
    member.commitDetachedAsync(
        sid, [this, self, slot, op, flag](db::Status s) {
            loop_->post([this, self, slot, op, flag, s] {
                srv_->noteWorkDone(worker_);
                if (closed_)
                    return;
                if (s.isOk())
                    srv_->stats_.txnsCommitted.fetch_add(
                        1, std::memory_order_relaxed);
                if (s.isOk() && opHasFlag(op)) {
                    WireWriter w;
                    w.begin(op, static_cast<std::uint16_t>(
                                    WireStatus::kOk));
                    w.putU8(flag);
                    w.finish();
                    fillPayload(slot, std::move(w));
                } else {
                    fillSimple(slot, op, mapCode(s.code()));
                }
                updateInterest();
            });
        });
}

void
Connection::opBegin(WireReader &r, const SlotPtr &slot)
{
    std::uint8_t iso = r.getU8();
    if (!r.ok() || !r.atEnd() || iso > 1) {
        fillSimple(slot, WireOp::kBegin, WireStatus::kBadRequest);
        return;
    }
    if (txnId_ != 0) {
        fillSimple(slot, WireOp::kBegin, WireStatus::kMisuse);
        return;
    }
    db::TxnOptions opts;
    opts.isolation = iso == 1 ? db::Isolation::kSnapshot
                              : db::Isolation::kReadUncommitted;
    std::uint64_t bid = 0;
    db::Status s = db_->beginDetached(opts, &bid);
    if (!s.isOk()) {
        srv_->stats_.admissionRejects.fetch_add(
            1, std::memory_order_relaxed);
        fillSimple(slot, WireOp::kBegin, mapCode(s.code()));
        return;
    }
    txnId_ = bid;
    txnDead_ = false;
    WireWriter w;
    w.begin(WireOp::kBegin,
            static_cast<std::uint16_t>(WireStatus::kOk));
    w.putU64(bid);
    w.finish();
    fillPayload(slot, std::move(w));
}

void
Connection::opFinishTxn(WireOp op, const SlotPtr &slot)
{
    if (txnId_ == 0) {
        fillSimple(slot, op, WireStatus::kMisuse);
        return;
    }
    std::uint64_t bid = txnId_;
    bool commit = op == WireOp::kCommit;
    auto db = db_;
    auto *srv = srv_;
    runOnPool(
        op, slot,
        [db, srv, bid, commit]() {
            PoolResult out;
            db::Status s = commit ? db->commitDetached(bid)
                                  : db->rollbackDetached(bid);
            out.status = mapCode(s.code());
            if (commit && s.isOk())
                srv->stats_.txnsCommitted.fetch_add(
                    1, std::memory_order_relaxed);
            else
                srv->stats_.txnsAborted.fetch_add(
                    1, std::memory_order_relaxed);
            return out;
        },
        true);
}

void
Connection::runOnPool(WireOp op, const SlotPtr &slot,
                      std::function<PoolResult()> job, bool ends_txn)
{
    if (!srv_->admit(worker_)) {
        srv_->stats_.admissionRejects.fetch_add(
            1, std::memory_order_relaxed);
        fillSimple(slot, op, WireStatus::kBusy);
        return;
    }
    paused_ = true;
    updateInterest();
    auto self = shared_from_this();
    srv_->submitJob([this, self, op, slot, ends_txn,
                     job = std::move(job)]() {
        PoolResult pr;
        try {
            pr = job();
        } catch (const std::exception &) {
            pr = PoolResult{};
            pr.status = WireStatus::kError;
        }
        loop_->post([this, self, op, slot, ends_txn, pr] {
            srv_->noteWorkDone(worker_);
            if (closed_)
                return;
            paused_ = false;
            if (ends_txn) {
                // The bracket was consumed whatever the outcome.
                txnId_ = 0;
                txnDead_ = false;
            }
            if (pr.status == WireStatus::kOk && pr.hasFlag) {
                WireWriter w;
                w.begin(op, static_cast<std::uint16_t>(pr.status));
                w.putU8(pr.flag);
                w.finish();
                fillPayload(slot, std::move(w));
            } else {
                fillSimple(slot, op, pr.status);
            }
            if (closed_)
                return;
            processBuffer(); // resume the pipeline
        });
    });
}

Connection::SlotPtr
Connection::pushSlot()
{
    SlotPtr slot = std::make_shared<Slot>();
    slots_.push_back(slot);
    return slot;
}

void
Connection::fillSimple(const SlotPtr &slot, WireOp op, WireStatus st)
{
    WireWriter w;
    w.begin(op, static_cast<std::uint16_t>(st));
    w.finish();
    fillPayload(slot, std::move(w));
}

void
Connection::fillPayload(const SlotPtr &slot, WireWriter &&w)
{
    slot->bytes = w.bytes();
    slot->ready = true;
    flushSlots();
}

void
Connection::flushSlots()
{
    if (closed_)
        return;
    while (!slots_.empty() && slots_.front()->ready) {
        Slot &s = *slots_.front();
        if (!wbuf_.write(s.bytes.data(), s.bytes.size())) {
            flushWrite();
            if (closed_)
                return;
            if (!wbuf_.write(s.bytes.data(), s.bytes.size())) {
                // Slow reader: bounded buffering, then hang up.
                close(true);
                return;
            }
        }
        slots_.pop_front();
    }
    flushWrite();
}

void
Connection::flushWrite()
{
    while (!closed_ && !wbuf_.empty()) {
        std::pair<const std::uint8_t *, std::size_t> span =
            wbuf_.peek();
        // MSG_NOSIGNAL: a hung-up peer is a close, not a SIGPIPE.
        ssize_t n = ::send(fd_.get(), span.first, span.second,
                           MSG_NOSIGNAL);
        if (n > 0) {
            wbuf_.consume(static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        if (n < 0 && errno == EINTR)
            continue;
        close();
        return;
    }
    updateInterest();
}

void
Connection::updateInterest()
{
    if (closed_)
        return;
    std::uint32_t want = 0;
    if (!paused_ && slots_.size() < srv_->cfg_.queueDepth)
        want |= EPOLLIN;
    if (!wbuf_.empty())
        want |= EPOLLOUT;
    if (want != interest_) {
        loop_->mod(fd_.get(), want);
        interest_ = want;
    }
}

void
Connection::close(bool overflow)
{
    if (closed_)
        return;
    closed_ = true;
    if (overflow)
        srv_->stats_.overflowDisconnects.fetch_add(
            1, std::memory_order_relaxed);
    srv_->stats_.closed.fetch_add(1, std::memory_order_relaxed);
    if (fd_.valid()) {
        loop_->del(fd_.get());
        fd_.reset();
    }
    slots_.clear();
    rbuf_.clear();
    rhead_ = 0;
    if (txnId_ != 0) {
        // Mid-transaction disconnect: roll the parked bracket back
        // on the pool so its WAL shard tokens and row locks free
        // even though the client is gone.
        std::uint64_t bid = txnId_;
        txnId_ = 0;
        srv_->forceAdmit(worker_);
        auto *srv = srv_;
        auto db = db_;
        unsigned worker = worker_;
        srv_->submitJob([srv, db, bid, worker]() {
            (void)db->rollbackDetached(bid);
            srv->stats_.txnsAborted.fetch_add(
                1, std::memory_order_relaxed);
            srv->noteWorkDone(worker);
        });
    }
    srv_->connectionClosed(id_);
}

} // namespace net
} // namespace espresso
