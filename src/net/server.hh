/**
 * @file
 * The wire front door: a reactor TCP server over ShardedDatabase.
 *
 * Thread architecture:
 *
 *  - one acceptor thread blocks in accept() and deals connections to
 *    the worker loops round-robin;
 *  - N worker EventLoops (ESPRESSO_NET_WORKERS) own the connections:
 *    parse frames, execute statements, and never block on another
 *    session — begins are nowait (kBusy when the engine is
 *    saturated), row-lock waits are bounded, and commit durability
 *    is handed off;
 *  - auto-commit write durability parks in the group-commit
 *    coordinator via commitDetachedAsync (the drainer thread batches
 *    concurrent connections' fences and completes the responses);
 *  - a small committer pool runs the operations that may legally
 *    block: explicit-transaction commit/rollback (2PC fences) and
 *    mid-migration routed writes. A connection is paused while a
 *    pool op of its runs, preserving its in-order semantics.
 *
 * Overload degrades instead of collapsing: per-worker in-flight work
 * above ServerConfig::queueDepth answers kBusy without executing
 * (admission control), and a slow reader whose response bytes
 * overflow the bounded write buffer is disconnected.
 */

#ifndef ESPRESSO_NET_SERVER_HH
#define ESPRESSO_NET_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/event_loop.hh"
#include "util/fd.hh"

namespace espresso {

namespace db {
class ShardedDatabase;
}

namespace net {

class Connection;

/** Wire server sizing and knobs. */
struct ServerConfig
{
    std::string host = "127.0.0.1";

    /** 0 binds an ephemeral port; Server::port() reports it. */
    std::uint16_t port = 0;

    /** Worker event loops; 0 resolves ESPRESSO_NET_WORKERS, then
     * 2. */
    unsigned workers = 0;

    /** Committer-pool threads (blocking commit/rollback, migration
     * fallbacks). */
    unsigned committers = 2;

    /** Per-worker in-flight op ceiling before admission answers
     * kBusy; 0 resolves ESPRESSO_NET_QUEUE_DEPTH, then 128. */
    unsigned queueDepth = 0;

    /** Per-connection response buffer cap; overflowing it (slow
     * reader) disconnects. */
    std::size_t writeBufBytes = 1u << 20;

    /** Per-connection read chunk size. */
    std::size_t readBufBytes = 64u << 10;
};

/** Monotonic server counters (relaxed; read via Server::stats). */
struct ServerStats
{
    std::uint64_t accepted = 0;
    std::uint64_t closed = 0;
    std::uint64_t frames = 0;
    std::uint64_t admissionRejects = 0;  ///< kBusy without executing
    std::uint64_t overflowDisconnects = 0;
    std::uint64_t protocolErrors = 0; ///< bad magic/version/length
    std::uint64_t txnsCommitted = 0;
    std::uint64_t txnsAborted = 0;
};

/** One listening wire endpoint over a ShardedDatabase. */
class Server
{
  public:
    Server(db::ShardedDatabase *db, const ServerConfig &cfg = {});
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, listen, spawn loops + acceptor + committers. */
    void start();

    /** Stop accepting, close every connection, drain in-flight work,
     * join every thread (idempotent). */
    void stop();

    /** The bound port (after start()). */
    std::uint16_t port() const { return port_; }

    unsigned workers() const
    {
        return static_cast<unsigned>(loops_.size());
    }

    ServerStats stats() const;

    /** Open connection count. */
    std::size_t connectionCount() const;

  private:
    friend class Connection;

    void acceptLoop();
    void adoptConnection(UniqueFd fd);

    /** Run @p job on the committer pool. */
    void submitJob(std::function<void()> job);
    void committerLoop();

    /** @name Per-worker admission accounting */
    /// @{
    /** Claim one in-flight op slot; false (nothing claimed) above
     * the queue-depth watermark. */
    bool admit(unsigned worker);
    /** Claim unconditionally (cleanup work that must run). */
    void forceAdmit(unsigned worker);
    void noteWorkDone(unsigned worker);
    /// @}

    void connectionClosed(std::uint64_t id);

    db::ShardedDatabase *db_;
    ServerConfig cfg_;

    UniqueFd listenFd_;
    std::uint16_t port_ = 0;
    std::thread acceptor_;
    std::atomic<bool> stopping_{false};
    bool started_ = false;

    std::vector<std::unique_ptr<EventLoop>> loops_;
    std::atomic<unsigned> nextLoop_{0};

    /** In-flight deferred ops per worker (async commits + pool
     * jobs), the admission-control watermark. */
    std::unique_ptr<std::atomic<unsigned>[]> workerLoad_;
    /** Total in-flight deferred ops (stop() drains this to zero
     * before the loops die). */
    std::atomic<unsigned> totalLoad_{0};

    mutable std::mutex connMu_;
    std::unordered_map<std::uint64_t, std::shared_ptr<Connection>>
        conns_;
    std::atomic<std::uint64_t> connIds_{1};

    std::mutex jobMu_;
    std::condition_variable jobCv_;
    std::deque<std::function<void()>> jobs_;
    bool jobStop_ = false;
    std::vector<std::thread> committers_;

    struct StatsCells
    {
        std::atomic<std::uint64_t> accepted{0};
        std::atomic<std::uint64_t> closed{0};
        std::atomic<std::uint64_t> frames{0};
        std::atomic<std::uint64_t> admissionRejects{0};
        std::atomic<std::uint64_t> overflowDisconnects{0};
        std::atomic<std::uint64_t> protocolErrors{0};
        std::atomic<std::uint64_t> txnsCommitted{0};
        std::atomic<std::uint64_t> txnsAborted{0};
    };
    StatsCells stats_;
};

} // namespace net
} // namespace espresso

#endif // ESPRESSO_NET_SERVER_HH
