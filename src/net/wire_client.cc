#include "net/wire_client.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace espresso {
namespace net {

void
encodePing(WireWriter &w)
{
    w.begin(WireOp::kPing);
    w.finish();
}

void
encodeCreateTable(WireWriter &w, const db::TableSchema &schema)
{
    w.begin(WireOp::kCreateTable);
    w.putStr(schema.name);
    w.putU16(static_cast<std::uint16_t>(schema.pkColumn));
    w.putU16(schema.indexColumn == db::TableSchema::kNoIndex
                 ? 0xffff
                 : static_cast<std::uint16_t>(schema.indexColumn));
    w.putU16(static_cast<std::uint16_t>(schema.columns.size()));
    for (const db::ColumnDef &c : schema.columns) {
        w.putStr(c.name);
        w.putU8(static_cast<std::uint8_t>(c.type));
    }
    w.finish();
}

void
encodeGet(WireWriter &w, const std::string &table, std::int64_t pk)
{
    w.begin(WireOp::kGet);
    w.putStr(table);
    w.putI64(pk);
    w.finish();
}

void
encodePut(WireWriter &w, const std::string &table,
          const std::vector<db::DbValue> &row,
          std::uint64_t dirty_mask, WireOp op)
{
    w.begin(op);
    w.putStr(table);
    w.putU64(dirty_mask);
    w.putRow(row);
    w.finish();
}

void
encodeUpdate(WireWriter &w, const std::string &table,
             const std::vector<db::DbValue> &row,
             std::uint64_t dirty_mask)
{
    encodePut(w, table, row, dirty_mask, WireOp::kUpdate);
}

void
encodeDel(WireWriter &w, const std::string &table, std::int64_t pk)
{
    w.begin(WireOp::kDel);
    w.putStr(table);
    w.putI64(pk);
    w.finish();
}

void
encodeScanEq(WireWriter &w, const std::string &table,
             const std::string &column, const db::DbValue &v)
{
    w.begin(WireOp::kScanEq);
    w.putStr(table);
    w.putStr(column);
    w.putValue(v);
    w.finish();
}

void
encodeRowCount(WireWriter &w, const std::string &table)
{
    w.begin(WireOp::kRowCount);
    w.putStr(table);
    w.finish();
}

void
encodeBegin(WireWriter &w, bool snapshot)
{
    w.begin(WireOp::kBegin);
    w.putU8(snapshot ? 1 : 0);
    w.finish();
}

void
encodeCommit(WireWriter &w)
{
    w.begin(WireOp::kCommit);
    w.finish();
}

void
encodeRollback(WireWriter &w)
{
    w.begin(WireOp::kRollback);
    w.finish();
}

bool
WireClient::connect(const std::string &host, std::uint16_t port)
{
    fd_.reset(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd_.valid())
        return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        fd_.reset();
        return false;
    }
    if (::connect(fd_.get(), reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        fd_.reset();
        return false;
    }
    int one = 1;
    ::setsockopt(fd_.get(), IPPROTO_TCP, TCP_NODELAY, &one,
                 sizeof(one));
    return true;
}

bool
WireClient::sendRaw(const void *data, std::size_t n)
{
    const std::uint8_t *p = static_cast<const std::uint8_t *>(data);
    while (n > 0) {
        // MSG_NOSIGNAL: a peer that hung up mid-send is a false
        // return, not a SIGPIPE.
        ssize_t w = ::send(fd_.get(), p, n, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += w;
        n -= static_cast<std::size_t>(w);
    }
    return true;
}

bool
WireClient::sendFrames(const WireWriter &w)
{
    return sendRaw(w.bytes().data(), w.size());
}

bool
WireClient::recvFrame(std::vector<std::uint8_t> *frame, FrameView *view)
{
    for (;;) {
        FrameView f;
        ParseResult pr =
            tryParseFrame(rbuf_.data(), rbuf_.size(), &f);
        if (pr == ParseResult::kFrame) {
            frame->assign(rbuf_.begin(),
                          rbuf_.begin() + static_cast<std::ptrdiff_t>(
                                              f.frameBytes()));
            rbuf_.erase(rbuf_.begin(),
                        rbuf_.begin() + static_cast<std::ptrdiff_t>(
                                            f.frameBytes()));
            if (tryParseFrame(frame->data(), frame->size(), view) !=
                ParseResult::kFrame)
                return false;
            return true;
        }
        if (pr != ParseResult::kNeedMore)
            return false;
        std::uint8_t chunk[4096];
        ssize_t n = ::read(fd_.get(), chunk, sizeof(chunk));
        if (n == 0)
            return false;
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        rbuf_.insert(rbuf_.end(), chunk, chunk + n);
    }
}

WireStatus
WireClient::roundTrip(const WireWriter &w,
                      std::vector<std::uint8_t> *frame, FrameView *view)
{
    std::vector<std::uint8_t> local_frame;
    FrameView local_view;
    if (frame == nullptr)
        frame = &local_frame;
    if (view == nullptr)
        view = &local_view;
    if (!sendFrames(w))
        return WireStatus::kError;
    if (!recvFrame(frame, view))
        return WireStatus::kError;
    return static_cast<WireStatus>(view->status);
}

WireStatus
WireClient::ping()
{
    WireWriter w;
    encodePing(w);
    return roundTrip(w, nullptr, nullptr);
}

WireStatus
WireClient::createTable(const db::TableSchema &schema)
{
    WireWriter w;
    encodeCreateTable(w, schema);
    return roundTrip(w, nullptr, nullptr);
}

WireStatus
WireClient::put(const std::string &table,
                const std::vector<db::DbValue> &row,
                std::uint64_t dirty_mask)
{
    WireWriter w;
    encodePut(w, table, row, dirty_mask);
    return roundTrip(w, nullptr, nullptr);
}

WireStatus
WireClient::get(const std::string &table, std::int64_t pk,
                std::vector<db::DbValue> *row_out)
{
    WireWriter w;
    encodeGet(w, table, pk);
    std::vector<std::uint8_t> frame;
    FrameView view;
    WireStatus st = roundTrip(w, &frame, &view);
    if (st == WireStatus::kOk && row_out != nullptr) {
        WireReader r(view);
        *row_out = r.getRow();
        if (!r.ok())
            return WireStatus::kError;
    }
    return st;
}

WireStatus
WireClient::update(const std::string &table,
                   const std::vector<db::DbValue> &row,
                   std::uint64_t dirty_mask, bool *updated)
{
    WireWriter w;
    encodeUpdate(w, table, row, dirty_mask);
    std::vector<std::uint8_t> frame;
    FrameView view;
    WireStatus st = roundTrip(w, &frame, &view);
    if (st == WireStatus::kOk && updated != nullptr) {
        WireReader r(view);
        *updated = r.getU8() != 0;
    }
    return st;
}

WireStatus
WireClient::del(const std::string &table, std::int64_t pk, bool *erased)
{
    WireWriter w;
    encodeDel(w, table, pk);
    std::vector<std::uint8_t> frame;
    FrameView view;
    WireStatus st = roundTrip(w, &frame, &view);
    if (st == WireStatus::kOk && erased != nullptr) {
        WireReader r(view);
        *erased = r.getU8() != 0;
    }
    return st;
}

WireStatus
WireClient::scanEq(const std::string &table, const std::string &column,
                   const db::DbValue &v,
                   std::vector<std::vector<db::DbValue>> *rows_out)
{
    WireWriter w;
    encodeScanEq(w, table, column, v);
    std::vector<std::uint8_t> frame;
    FrameView view;
    WireStatus st = roundTrip(w, &frame, &view);
    if (st == WireStatus::kOk && rows_out != nullptr) {
        WireReader r(view);
        std::uint32_t n = r.getU32();
        rows_out->clear();
        for (std::uint32_t i = 0; i < n && r.ok(); ++i)
            rows_out->push_back(r.getRow());
        if (!r.ok())
            return WireStatus::kError;
    }
    return st;
}

WireStatus
WireClient::rowCount(const std::string &table, std::uint64_t *n)
{
    WireWriter w;
    encodeRowCount(w, table);
    std::vector<std::uint8_t> frame;
    FrameView view;
    WireStatus st = roundTrip(w, &frame, &view);
    if (st == WireStatus::kOk && n != nullptr) {
        WireReader r(view);
        *n = r.getU64();
    }
    return st;
}

WireStatus
WireClient::begin(bool snapshot, std::uint64_t *txn_id)
{
    WireWriter w;
    encodeBegin(w, snapshot);
    std::vector<std::uint8_t> frame;
    FrameView view;
    WireStatus st = roundTrip(w, &frame, &view);
    if (st == WireStatus::kOk && txn_id != nullptr) {
        WireReader r(view);
        *txn_id = r.getU64();
    }
    return st;
}

WireStatus
WireClient::commit()
{
    WireWriter w;
    encodeCommit(w);
    return roundTrip(w, nullptr, nullptr);
}

WireStatus
WireClient::rollback()
{
    WireWriter w;
    encodeRollback(w);
    return roundTrip(w, nullptr, nullptr);
}

} // namespace net
} // namespace espresso
