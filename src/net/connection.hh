/**
 * @file
 * One wire connection, owned by one worker EventLoop.
 *
 * Frames execute strictly in arrival order and respond strictly in
 * arrival order, but responding is decoupled from executing: each
 * frame claims a response slot up front, and a deferred op (an
 * async auto-commit, a pool-side transaction commit) fills its slot
 * when it completes — later frames' responses queue behind it. That
 * is what makes pipelining profitable: a client streaming K
 * auto-commit writes gets K row mutations executed back-to-back on
 * the worker while their K durability fences coalesce in the
 * group-commit drainer.
 *
 * Statement execution maps onto the engine's detached sessions:
 *
 *  - auto-commit write: route by pk, open a nowait detached session
 *    on the owning member, execute, park, commitDetachedAsync — the
 *    response fires from the drainer's completion;
 *  - explicit transaction: kBegin opens a sharded detached bracket;
 *    each op binds it, executes, unbinds; kCommit/kRollback run on
 *    the committer pool (2PC may fence several times) with the
 *    connection paused so in-order semantics hold;
 *  - reads execute inline on the worker (lock-free row probes).
 *
 * Failure containment: an engine abort (WAL-full, deadlock victim,
 * bounded-wait kBusy, snapshot conflict) kills the enclosing
 * transaction; the connection answers the mapped status and rejects
 * further ops in that bracket with kAborted until the client sends
 * kCommit/kRollback (which reports the original abort reason).
 * A malformed stream (bad magic/version, oversize length) hangs up;
 * a disconnect with an open bracket rolls it back on the pool so no
 * WAL shard token or row lock outlives the connection.
 */

#ifndef ESPRESSO_NET_CONNECTION_HH
#define ESPRESSO_NET_CONNECTION_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "net/server.hh"
#include "net/wire_protocol.hh"
#include "util/fd.hh"
#include "util/ring_buffer.hh"

namespace espresso {

namespace db {
class Database;
struct DbRecord;
}

namespace net {

/** One accepted socket and its in-order pipeline state. All methods
 * run on the owning worker loop thread. */
class Connection : public std::enable_shared_from_this<Connection>
{
  public:
    Connection(Server *srv, EventLoop *loop, unsigned worker,
               UniqueFd fd, std::uint64_t id);
    ~Connection();

    /** Register with the loop (loop thread). */
    void start();

    /** Tear down: deregister, roll back an open bracket, unregister
     * from the server (idempotent; loop thread). */
    void close(bool overflow = false);

    std::uint64_t id() const { return id_; }

    /** The owning worker loop (close() must be posted there). */
    EventLoop *loop() const { return loop_; }

  private:
    /** One in-order response: claimed when the request frame is
     * executed, filled when its (possibly deferred) result is
     * known. shared_ptr so a completion outliving the connection's
     * slot queue never dangles. */
    struct Slot
    {
        bool ready = false;
        std::vector<std::uint8_t> bytes;
    };
    using SlotPtr = std::shared_ptr<Slot>;

    /** A pool-delegated op's result. */
    struct PoolResult
    {
        WireStatus status = WireStatus::kOk;
        std::uint8_t flag = 0; ///< updated/erased marker ops
        bool hasFlag = false;
    };

    void onEvents(std::uint32_t ev);
    void readable();

    /** Parse + execute every complete frame in rbuf_ (stops while
     * paused). */
    void processBuffer();
    void execFrame(const FrameView &f);

    /** @name Op handlers */
    /// @{
    void opCreateTable(WireReader &r, const SlotPtr &slot);
    void opRead(WireOp op, WireReader &r, const SlotPtr &slot);
    void opWrite(WireOp op, WireReader &r, const SlotPtr &slot);
    void opBegin(WireReader &r, const SlotPtr &slot);
    void opFinishTxn(WireOp op, const SlotPtr &slot);
    /// @}

    /** Execute one write statement against the bound engine; throws
     * the engine's abort errors through. */
    std::uint8_t execWriteStmt(db::Database *member, WireOp op,
                               const std::string &table,
                               const db::DbRecord &rec,
                               std::int64_t pk);

    /** Run @p job on the committer pool with the connection paused;
     * @p ends_txn clears the bracket on completion. */
    void runOnPool(WireOp op, const SlotPtr &slot,
                   std::function<PoolResult()> job, bool ends_txn);

    /** @name Response plumbing */
    /// @{
    SlotPtr pushSlot();
    void fillSimple(const SlotPtr &slot, WireOp op, WireStatus st);
    void fillPayload(const SlotPtr &slot, WireWriter &&w);
    void flushSlots();
    void flushWrite();
    void updateInterest();
    /// @}

    Server *srv_;
    db::ShardedDatabase *db_;
    EventLoop *loop_;
    unsigned worker_;
    UniqueFd fd_;
    std::uint64_t id_;

    std::vector<std::uint8_t> rbuf_;
    std::size_t rhead_ = 0;
    RingBuffer wbuf_;
    std::deque<SlotPtr> slots_;

    std::uint32_t interest_ = 0;
    bool closed_ = false;
    /** A pool op is in flight; no further frames execute until its
     * completion (read interest is dropped). */
    bool paused_ = false;

    /** Open sharded detached-bracket id (0 = auto-commit mode). */
    std::uint64_t txnId_ = 0;
    /** The engine killed the bracket mid-statement; ops answer
     * kAborted until the client closes the bracket. */
    bool txnDead_ = false;
};

} // namespace net
} // namespace espresso

#endif // ESPRESSO_NET_CONNECTION_HH
