/**
 * @file
 * Blocking wire client (tests, tools) and the request encoders the
 * nonblocking bench driver shares with it.
 *
 * The sync API is strictly request/response; pipelining clients
 * (bench/wire_bench) encode requests with the encode* helpers, write
 * them back-to-back on their own nonblocking sockets, and match the
 * in-order responses themselves. sendRaw() exists so protocol tests
 * can emit torn/hostile byte sequences.
 */

#ifndef ESPRESSO_NET_WIRE_CLIENT_HH
#define ESPRESSO_NET_WIRE_CLIENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "db/catalog.hh"
#include "net/wire_protocol.hh"
#include "util/fd.hh"

namespace espresso {
namespace net {

/** @name Request encoders (append one request frame to @p w) */
/// @{
void encodePing(WireWriter &w);
void encodeCreateTable(WireWriter &w, const db::TableSchema &schema);
void encodeGet(WireWriter &w, const std::string &table,
               std::int64_t pk);
void encodePut(WireWriter &w, const std::string &table,
               const std::vector<db::DbValue> &row,
               std::uint64_t dirty_mask = ~0ull,
               WireOp op = WireOp::kPut);
void encodeUpdate(WireWriter &w, const std::string &table,
                  const std::vector<db::DbValue> &row,
                  std::uint64_t dirty_mask = ~0ull);
void encodeDel(WireWriter &w, const std::string &table,
               std::int64_t pk);
void encodeScanEq(WireWriter &w, const std::string &table,
                  const std::string &column, const db::DbValue &v);
void encodeRowCount(WireWriter &w, const std::string &table);
void encodeBegin(WireWriter &w, bool snapshot);
void encodeCommit(WireWriter &w);
void encodeRollback(WireWriter &w);
/// @}

/** One blocking client connection. */
class WireClient
{
  public:
    WireClient() = default;
    ~WireClient() = default;

    WireClient(const WireClient &) = delete;
    WireClient &operator=(const WireClient &) = delete;

    /** Connect (blocking); false on failure. */
    bool connect(const std::string &host, std::uint16_t port);

    void closeConn() { fd_.reset(); }
    bool connected() const { return fd_.valid(); }

    /** The raw socket (tests: abrupt close, shutdown). */
    int fd() const { return fd_.get(); }

    /** Write raw bytes as-is (torn-frame tests); false on error. */
    bool sendRaw(const void *data, std::size_t n);

    /** Write every frame queued in @p w; false on error. */
    bool sendFrames(const WireWriter &w);

    /** Block for one response frame; false on EOF/error. @p frame
     * owns the bytes @p view points into. */
    bool recvFrame(std::vector<std::uint8_t> *frame, FrameView *view);

    /** @name Sync ops (send one request, await its response) */
    /// @{
    WireStatus ping();
    WireStatus createTable(const db::TableSchema &schema);
    WireStatus put(const std::string &table,
                   const std::vector<db::DbValue> &row,
                   std::uint64_t dirty_mask = ~0ull);
    WireStatus get(const std::string &table, std::int64_t pk,
                   std::vector<db::DbValue> *row_out);
    WireStatus update(const std::string &table,
                      const std::vector<db::DbValue> &row,
                      std::uint64_t dirty_mask, bool *updated);
    WireStatus del(const std::string &table, std::int64_t pk,
                   bool *erased);
    WireStatus scanEq(const std::string &table,
                      const std::string &column, const db::DbValue &v,
                      std::vector<std::vector<db::DbValue>> *rows_out);
    WireStatus rowCount(const std::string &table, std::uint64_t *n);
    WireStatus begin(bool snapshot, std::uint64_t *txn_id);
    WireStatus commit();
    WireStatus rollback();
    /// @}

  private:
    /** Send @p w, receive one frame, surface its status; payload via
     * @p view/@p frame when non-null. */
    WireStatus roundTrip(const WireWriter &w,
                         std::vector<std::uint8_t> *frame,
                         FrameView *view);

    UniqueFd fd_;
    /** Unconsumed bytes past the last parsed frame. */
    std::vector<std::uint8_t> rbuf_;
};

} // namespace net
} // namespace espresso

#endif // ESPRESSO_NET_WIRE_CLIENT_HH
