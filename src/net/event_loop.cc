#include "net/event_loop.hh"

#include <sys/epoll.h>
#include <sys/eventfd.h>

#include <array>
#include <cerrno>

#include "util/logging.hh"

namespace espresso {
namespace net {

EventLoop::EventLoop()
{
    epollFd_.reset(::epoll_create1(EPOLL_CLOEXEC));
    if (!epollFd_)
        fatal("net: epoll_create1 failed");
    wakeFd_.reset(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
    if (!wakeFd_)
        fatal("net: eventfd failed");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wakeFd_.get();
    if (::epoll_ctl(epollFd_.get(), EPOLL_CTL_ADD, wakeFd_.get(),
                    &ev) != 0)
        fatal("net: epoll_ctl(wakefd) failed");
}

EventLoop::~EventLoop()
{
    stop();
}

void
EventLoop::start()
{
    thread_ = std::thread([this] { run(); });
}

void
EventLoop::stop()
{
    if (!thread_.joinable())
        return;
    stop_.store(true, std::memory_order_release);
    wake();
    thread_.join();
}

void
EventLoop::wake()
{
    std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n =
        ::write(wakeFd_.get(), &one, sizeof(one));
}

void
EventLoop::post(std::function<void()> fn)
{
    if (inLoopThread()) {
        fn();
        return;
    }
    {
        std::lock_guard<std::mutex> g(postMu_);
        posted_.push_back(std::move(fn));
    }
    wake();
}

void
EventLoop::add(int fd, std::uint32_t events, IoFn fn)
{
    handlers_[fd] = std::move(fn);
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    if (::epoll_ctl(epollFd_.get(), EPOLL_CTL_ADD, fd, &ev) != 0)
        fatal("net: epoll_ctl(add) failed");
}

void
EventLoop::mod(int fd, std::uint32_t events)
{
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    if (::epoll_ctl(epollFd_.get(), EPOLL_CTL_MOD, fd, &ev) != 0)
        fatal("net: epoll_ctl(mod) failed");
}

void
EventLoop::del(int fd)
{
    handlers_.erase(fd);
    ::epoll_ctl(epollFd_.get(), EPOLL_CTL_DEL, fd, nullptr);
}

void
EventLoop::drainPosted()
{
    std::vector<std::function<void()>> batch;
    {
        std::lock_guard<std::mutex> g(postMu_);
        batch.swap(posted_);
    }
    for (std::function<void()> &fn : batch)
        fn();
}

void
EventLoop::run()
{
    threadId_.store(std::this_thread::get_id(),
                    std::memory_order_release);
    std::array<epoll_event, 64> events;
    while (!stop_.load(std::memory_order_acquire)) {
        int n = ::epoll_wait(epollFd_.get(), events.data(),
                             static_cast<int>(events.size()), -1);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            fatal("net: epoll_wait failed");
        }
        for (int i = 0; i < n; ++i) {
            int fd = events[i].data.fd;
            if (fd == wakeFd_.get()) {
                std::uint64_t drain;
                while (::read(wakeFd_.get(), &drain, sizeof(drain)) >
                       0) {
                }
                continue;
            }
            // Look the handler up per event: an earlier handler in
            // this batch may have closed this fd. Invoke a copy —
            // the handler itself may del() this fd, and erasing the
            // map entry must not destroy a std::function whose
            // call frame is live.
            auto it = handlers_.find(fd);
            if (it != handlers_.end()) {
                IoFn fn = it->second;
                fn(events[i].events);
            }
        }
        drainPosted();
    }
    drainPosted();
}

} // namespace net
} // namespace espresso
