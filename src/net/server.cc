#include "net/server.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "db/sharded_database.hh"
#include "net/connection.hh"
#include "util/env.hh"
#include "util/logging.hh"

namespace espresso {
namespace net {

namespace {

void
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        fatal("net: fcntl(O_NONBLOCK) failed");
}

} // namespace

Server::Server(db::ShardedDatabase *db, const ServerConfig &cfg)
    : db_(db), cfg_(cfg)
{
    if (cfg_.workers == 0)
        cfg_.workers = envUnsigned("ESPRESSO_NET_WORKERS", 2);
    if (cfg_.workers == 0)
        cfg_.workers = 1;
    if (cfg_.queueDepth == 0)
        cfg_.queueDepth = envUnsigned("ESPRESSO_NET_QUEUE_DEPTH", 128);
    if (cfg_.queueDepth == 0)
        cfg_.queueDepth = 1;
    if (cfg_.committers == 0)
        cfg_.committers = 1;
}

Server::~Server()
{
    stop();
}

void
Server::start()
{
    if (started_)
        fatal("net: server started twice");
    started_ = true;

    listenFd_.reset(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!listenFd_.valid())
        fatal("net: socket() failed");
    int one = 1;
    ::setsockopt(listenFd_.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(cfg_.port);
    if (::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) != 1)
        fatal("net: bad listen address " + cfg_.host);
    if (::bind(listenFd_.get(),
               reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0)
        fatal("net: bind failed");
    if (::listen(listenFd_.get(), 1024) != 0)
        fatal("net: listen failed");

    sockaddr_in bound{};
    socklen_t blen = sizeof(bound);
    if (::getsockname(listenFd_.get(),
                      reinterpret_cast<sockaddr *>(&bound),
                      &blen) != 0)
        fatal("net: getsockname failed");
    port_ = ntohs(bound.sin_port);

    workerLoad_ =
        std::make_unique<std::atomic<unsigned>[]>(cfg_.workers);
    for (unsigned i = 0; i < cfg_.workers; ++i)
        workerLoad_[i].store(0, std::memory_order_relaxed);

    loops_.reserve(cfg_.workers);
    for (unsigned i = 0; i < cfg_.workers; ++i) {
        loops_.push_back(std::make_unique<EventLoop>());
        loops_.back()->start();
    }
    for (unsigned i = 0; i < cfg_.committers; ++i)
        committers_.emplace_back([this] { committerLoop(); });
    acceptor_ = std::thread([this] { acceptLoop(); });
}

void
Server::acceptLoop()
{
    for (;;) {
        int fd = ::accept(listenFd_.get(), nullptr, nullptr);
        if (fd < 0) {
            if (stopping_.load(std::memory_order_acquire))
                return;
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            // The listen socket was shut down under us.
            return;
        }
        if (stopping_.load(std::memory_order_acquire)) {
            ::close(fd);
            return;
        }
        adoptConnection(UniqueFd(fd));
    }
}

void
Server::adoptConnection(UniqueFd fd)
{
    setNonBlocking(fd.get());
    int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one,
                 sizeof(one));

    unsigned idx = nextLoop_.fetch_add(1, std::memory_order_relaxed) %
                   static_cast<unsigned>(loops_.size());
    EventLoop *loop = loops_[idx].get();
    std::uint64_t id =
        connIds_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_shared<Connection>(this, loop, idx,
                                             std::move(fd), id);
    {
        std::lock_guard<std::mutex> g(connMu_);
        conns_.emplace(id, conn);
    }
    stats_.accepted.fetch_add(1, std::memory_order_relaxed);
    loop->post([conn] { conn->start(); });
}

void
Server::submitJob(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> g(jobMu_);
        jobs_.push_back(std::move(job));
    }
    jobCv_.notify_one();
}

void
Server::committerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lk(jobMu_);
            jobCv_.wait(lk,
                        [this] { return jobStop_ || !jobs_.empty(); });
            if (jobs_.empty())
                return; // jobStop_, queue drained
            job = std::move(jobs_.front());
            jobs_.pop_front();
        }
        job();
    }
}

bool
Server::admit(unsigned worker)
{
    std::atomic<unsigned> &load = workerLoad_[worker];
    unsigned cur = load.load(std::memory_order_relaxed);
    for (;;) {
        if (cur >= cfg_.queueDepth)
            return false;
        if (load.compare_exchange_weak(cur, cur + 1,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed))
            break;
    }
    totalLoad_.fetch_add(1, std::memory_order_acq_rel);
    return true;
}

void
Server::forceAdmit(unsigned worker)
{
    workerLoad_[worker].fetch_add(1, std::memory_order_acq_rel);
    totalLoad_.fetch_add(1, std::memory_order_acq_rel);
}

void
Server::noteWorkDone(unsigned worker)
{
    workerLoad_[worker].fetch_sub(1, std::memory_order_acq_rel);
    totalLoad_.fetch_sub(1, std::memory_order_acq_rel);
}

void
Server::connectionClosed(std::uint64_t id)
{
    std::lock_guard<std::mutex> g(connMu_);
    conns_.erase(id);
}

std::size_t
Server::connectionCount() const
{
    std::lock_guard<std::mutex> g(connMu_);
    return conns_.size();
}

ServerStats
Server::stats() const
{
    ServerStats out;
    out.accepted = stats_.accepted.load(std::memory_order_relaxed);
    out.closed = stats_.closed.load(std::memory_order_relaxed);
    out.frames = stats_.frames.load(std::memory_order_relaxed);
    out.admissionRejects =
        stats_.admissionRejects.load(std::memory_order_relaxed);
    out.overflowDisconnects =
        stats_.overflowDisconnects.load(std::memory_order_relaxed);
    out.protocolErrors =
        stats_.protocolErrors.load(std::memory_order_relaxed);
    out.txnsCommitted =
        stats_.txnsCommitted.load(std::memory_order_relaxed);
    out.txnsAborted =
        stats_.txnsAborted.load(std::memory_order_relaxed);
    return out;
}

void
Server::stop()
{
    if (!started_ || stopping_.exchange(true))
        return;

    // 1. Stop accepting: shut the listen socket down so the
    //    blocking accept() returns, then join the acceptor.
    if (listenFd_.valid())
        ::shutdown(listenFd_.get(), SHUT_RDWR);
    if (acceptor_.joinable())
        acceptor_.join();
    listenFd_.reset();

    // 2. Close every connection on its own loop (close() rolls open
    //    brackets back on the pool).
    std::vector<std::shared_ptr<Connection>> open;
    {
        std::lock_guard<std::mutex> g(connMu_);
        for (auto &kv : conns_)
            open.push_back(kv.second);
    }
    for (auto &conn : open)
        conn->loop()->post([conn] { conn->close(); });

    // 3. Drain in-flight deferred work (async commits, pool jobs):
    //    their completions still need the loops alive.
    while (totalLoad_.load(std::memory_order_acquire) != 0 ||
           connectionCount() != 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    // 4. Stop the committer pool (queue is drained by now).
    {
        std::lock_guard<std::mutex> g(jobMu_);
        jobStop_ = true;
    }
    jobCv_.notify_all();
    for (std::thread &t : committers_)
        t.join();
    committers_.clear();

    // 5. Stop the loops.
    for (auto &loop : loops_)
        loop->stop();
    loops_.clear();
}

} // namespace net
} // namespace espresso
