/**
 * @file
 * The espresso wire protocol: length-prefixed binary frames over a
 * byte stream.
 *
 * Frame layout (all integers little-endian):
 *
 *   | u32 magic 'ESPW' | u8 version | u8 opcode | u16 status |
 *   | u32 length | length bytes of payload |
 *
 * The 12-byte header is identical in both directions; requests carry
 * status = 0, responses echo the request opcode and carry the result
 * in status. Payloads are typed values (u8 tag + fixed or
 * length-prefixed body) composed into rows (u16 column count +
 * values). A frame never exceeds kMaxPayload — an oversize length
 * prefix is a protocol violation and the server hangs up (it cannot
 * resynchronize a stream whose framing it no longer trusts); an
 * unknown opcode inside a well-formed frame is answered with
 * kBadRequest and the stream continues.
 *
 * Transactions are explicit frames (kBegin/kCommit/kRollback)
 * bracketing ordinary ops; everything outside a bracket
 * auto-commits. Clients may pipeline: the server executes a
 * connection's frames in order and responds in order, but parks
 * commit durability in the group-commit coordinator so concurrent
 * connections' fences coalesce.
 */

#ifndef ESPRESSO_NET_WIRE_PROTOCOL_HH
#define ESPRESSO_NET_WIRE_PROTOCOL_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "db/value_codec.hh"

namespace espresso {
namespace net {

constexpr std::uint32_t kWireMagic = 0x45535057; // 'ESPW'
constexpr std::uint8_t kWireVersion = 1;
constexpr std::size_t kWireHeaderBytes = 12;

/** Payload ceiling: bounds per-connection read buffering and makes
 * a corrupt length prefix detectable. */
constexpr std::size_t kMaxPayload = 1u << 20;

enum class WireOp : std::uint8_t
{
    kPing = 1,
    kGet = 2,         ///< table, pk -> row
    kPut = 3,         ///< table, row (upsert by pk)
    kDel = 4,         ///< table, pk
    kInsert = 5,      ///< table, row (SQL-surface alias of put)
    kUpdate = 6,      ///< table, row, dirty mask -> u8 updated
    kScanEq = 7,      ///< table, column, value -> u32 n, rows
    kRowCount = 8,    ///< table -> u64
    kBegin = 9,       ///< u8 isolation -> u64 txn id
    kCommit = 10,
    kRollback = 11,
    kCreateTable = 12,
};

/** Response status (u16 in the header). */
enum class WireStatus : std::uint16_t
{
    kOk = 0,
    kNotFound = 1,
    /** Saturated: a begin/admission kBusy was NOT executed (retry
     * as-is); a kBusy on an op inside a transaction means the whole
     * transaction was aborted. */
    kBusy = 2,
    kAborted = 3,
    kWalFull = 4,
    kDeadlock = 5,
    kConflict = 6,
    kMisuse = 7,
    kBadRequest = 8,
    kError = 10,
};

const char *wireStatusName(WireStatus s);

/** A parsed frame pointing into the receive buffer. */
struct FrameView
{
    WireOp op = WireOp::kPing;
    std::uint16_t status = 0;
    const std::uint8_t *payload = nullptr;
    std::size_t length = 0;

    /** Header + payload bytes this frame consumed. */
    std::size_t frameBytes() const { return kWireHeaderBytes + length; }
};

enum class ParseResult
{
    kNeedMore, ///< incomplete header or payload; read more bytes
    kFrame,    ///< *out is valid
    kBadMagic, ///< stream corrupt; hang up
    kBadVersion,
    kTooLarge, ///< length prefix exceeds kMaxPayload; hang up
};

inline std::uint16_t
loadU16(const std::uint8_t *p)
{
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

inline std::uint32_t
loadU32(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

inline std::uint64_t
loadU64(const std::uint8_t *p)
{
    return static_cast<std::uint64_t>(loadU32(p)) |
           (static_cast<std::uint64_t>(loadU32(p + 4)) << 32);
}

/** Parse one frame from [data, data+n); see ParseResult. */
inline ParseResult
tryParseFrame(const std::uint8_t *data, std::size_t n, FrameView *out)
{
    if (n < kWireHeaderBytes)
        return ParseResult::kNeedMore;
    if (loadU32(data) != kWireMagic)
        return ParseResult::kBadMagic;
    if (data[4] != kWireVersion)
        return ParseResult::kBadVersion;
    std::uint32_t length = loadU32(data + 8);
    if (length > kMaxPayload)
        return ParseResult::kTooLarge;
    if (n < kWireHeaderBytes + length)
        return ParseResult::kNeedMore;
    out->op = static_cast<WireOp>(data[5]);
    out->status = loadU16(data + 6);
    out->payload = data + kWireHeaderBytes;
    out->length = length;
    return ParseResult::kFrame;
}

/** Append-only frame builder. */
class WireWriter
{
  public:
    /** Start a frame; payload length is patched by finish(). */
    void
    begin(WireOp op, std::uint16_t status = 0)
    {
        frameStart_ = buf_.size();
        putU32(kWireMagic);
        putU8(kWireVersion);
        putU8(static_cast<std::uint8_t>(op));
        putU16(status);
        putU32(0); // length placeholder
    }

    void
    finish()
    {
        std::uint32_t length = static_cast<std::uint32_t>(
            buf_.size() - frameStart_ - kWireHeaderBytes);
        std::uint8_t *p = buf_.data() + frameStart_ + 8;
        p[0] = static_cast<std::uint8_t>(length);
        p[1] = static_cast<std::uint8_t>(length >> 8);
        p[2] = static_cast<std::uint8_t>(length >> 16);
        p[3] = static_cast<std::uint8_t>(length >> 24);
    }

    /** Overwrite 4 bytes at @p offset (e.g. a count written before
     * the elements were). */
    void
    patchU32(std::size_t offset, std::uint32_t v)
    {
        buf_[offset] = static_cast<std::uint8_t>(v);
        buf_[offset + 1] = static_cast<std::uint8_t>(v >> 8);
        buf_[offset + 2] = static_cast<std::uint8_t>(v >> 16);
        buf_[offset + 3] = static_cast<std::uint8_t>(v >> 24);
    }

    void putU8(std::uint8_t v) { buf_.push_back(v); }

    void
    putU16(std::uint16_t v)
    {
        buf_.push_back(static_cast<std::uint8_t>(v));
        buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    }

    void
    putU32(std::uint32_t v)
    {
        putU16(static_cast<std::uint16_t>(v));
        putU16(static_cast<std::uint16_t>(v >> 16));
    }

    void
    putU64(std::uint64_t v)
    {
        putU32(static_cast<std::uint32_t>(v));
        putU32(static_cast<std::uint32_t>(v >> 32));
    }

    void putI64(std::int64_t v) { putU64(static_cast<std::uint64_t>(v)); }

    void
    putStr(const std::string &s)
    {
        putU32(static_cast<std::uint32_t>(s.size()));
        buf_.insert(buf_.end(), s.begin(), s.end());
    }

    void
    putValue(const db::DbValue &v)
    {
        putU8(static_cast<std::uint8_t>(v.type));
        switch (v.type) {
        case db::DbType::kNull:
            break;
        case db::DbType::kI64:
            putI64(v.i);
            break;
        case db::DbType::kF64: {
            std::uint64_t bits;
            std::memcpy(&bits, &v.d, sizeof(bits));
            putU64(bits);
            break;
        }
        case db::DbType::kStr:
            putStr(v.s);
            break;
        }
    }

    void
    putRow(const std::vector<db::DbValue> &row)
    {
        putU16(static_cast<std::uint16_t>(row.size()));
        for (const db::DbValue &v : row)
            putValue(v);
    }

    const std::vector<std::uint8_t> &bytes() const { return buf_; }
    std::size_t size() const { return buf_.size(); }
    void clear() { buf_.clear(); }

  private:
    std::vector<std::uint8_t> buf_;
    std::size_t frameStart_ = 0;
};

/** Bounds-checked payload cursor; any overrun latches ok() false and
 * subsequent reads return zero values (one check at the end). */
class WireReader
{
  public:
    WireReader(const std::uint8_t *data, std::size_t n)
        : data_(data), n_(n)
    {}

    explicit WireReader(const FrameView &f)
        : WireReader(f.payload, f.length)
    {}

    bool ok() const { return ok_; }
    bool atEnd() const { return pos_ == n_; }

    std::uint8_t
    getU8()
    {
        if (!need(1))
            return 0;
        return data_[pos_++];
    }

    std::uint16_t
    getU16()
    {
        if (!need(2))
            return 0;
        std::uint16_t v = loadU16(data_ + pos_);
        pos_ += 2;
        return v;
    }

    std::uint32_t
    getU32()
    {
        if (!need(4))
            return 0;
        std::uint32_t v = loadU32(data_ + pos_);
        pos_ += 4;
        return v;
    }

    std::uint64_t
    getU64()
    {
        if (!need(8))
            return 0;
        std::uint64_t v = loadU64(data_ + pos_);
        pos_ += 8;
        return v;
    }

    std::int64_t getI64() { return static_cast<std::int64_t>(getU64()); }

    std::string
    getStr()
    {
        std::uint32_t len = getU32();
        if (!need(len))
            return {};
        std::string s(reinterpret_cast<const char *>(data_ + pos_),
                      len);
        pos_ += len;
        return s;
    }

    db::DbValue
    getValue()
    {
        std::uint8_t tag = getU8();
        switch (static_cast<db::DbType>(tag)) {
        case db::DbType::kNull:
            return db::DbValue::null();
        case db::DbType::kI64:
            return db::DbValue::ofI64(getI64());
        case db::DbType::kF64: {
            std::uint64_t bits = getU64();
            double d;
            std::memcpy(&d, &bits, sizeof(d));
            return db::DbValue::ofF64(d);
        }
        case db::DbType::kStr:
            return db::DbValue::ofStr(getStr());
        }
        ok_ = false; // unknown tag: poison the read
        return db::DbValue::null();
    }

    std::vector<db::DbValue>
    getRow()
    {
        std::uint16_t count = getU16();
        std::vector<db::DbValue> row;
        // A hostile count can't make us reserve more than the
        // payload could actually hold (1 byte per value minimum).
        if (count > n_ - std::min<std::size_t>(pos_, n_)) {
            ok_ = false;
            return row;
        }
        row.reserve(count);
        for (std::uint16_t i = 0; i < count && ok_; ++i)
            row.push_back(getValue());
        return row;
    }

  private:
    bool
    need(std::size_t n)
    {
        if (n_ - pos_ < n) {
            ok_ = false;
            pos_ = n_;
            return false;
        }
        return true;
    }

    const std::uint8_t *data_;
    std::size_t n_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

inline const char *
wireStatusName(WireStatus s)
{
    switch (s) {
    case WireStatus::kOk:
        return "ok";
    case WireStatus::kNotFound:
        return "not-found";
    case WireStatus::kBusy:
        return "busy";
    case WireStatus::kAborted:
        return "aborted";
    case WireStatus::kWalFull:
        return "wal-full";
    case WireStatus::kDeadlock:
        return "deadlock";
    case WireStatus::kConflict:
        return "conflict";
    case WireStatus::kMisuse:
        return "misuse";
    case WireStatus::kBadRequest:
        return "bad-request";
    case WireStatus::kError:
        return "error";
    }
    return "unknown";
}

} // namespace net
} // namespace espresso

#endif // ESPRESSO_NET_WIRE_PROTOCOL_HH
