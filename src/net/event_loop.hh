/**
 * @file
 * One epoll reactor thread.
 *
 * The wire server runs one EventLoop per worker plus one acceptor;
 * each loop owns its registered fds exclusively — add/mod/del are
 * loop-thread-only, and cross-thread work arrives through post(),
 * which enqueues a closure and wakes the loop via an eventfd. Level
 * -triggered dispatch: a handler that cannot make progress must
 * deregister the interest it cannot serve (e.g. a paused connection
 * drops EPOLLIN) or the loop busy-wakes.
 */

#ifndef ESPRESSO_NET_EVENT_LOOP_HH
#define ESPRESSO_NET_EVENT_LOOP_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/fd.hh"

namespace espresso {
namespace net {

/** A single-threaded epoll dispatcher. */
class EventLoop
{
  public:
    /** Invoked with the epoll event mask for the fd. */
    using IoFn = std::function<void(std::uint32_t)>;

    EventLoop();
    ~EventLoop();

    EventLoop(const EventLoop &) = delete;
    EventLoop &operator=(const EventLoop &) = delete;

    /** Spawn the loop thread. */
    void start();

    /** Ask the loop to exit and join it (idempotent). Pending posted
     * closures run before exit. */
    void stop();

    /** Run @p fn on the loop thread (thread-safe; runs inline when
     * already on it). */
    void post(std::function<void()> fn);

    /** @name fd registration (loop thread only) */
    /// @{
    void add(int fd, std::uint32_t events, IoFn fn);
    void mod(int fd, std::uint32_t events);
    void del(int fd);
    /// @}

    bool inLoopThread() const
    {
        return std::this_thread::get_id() ==
               threadId_.load(std::memory_order_acquire);
    }

  private:
    void run();
    void wake();
    void drainPosted();

    UniqueFd epollFd_;
    UniqueFd wakeFd_; ///< eventfd: post()/stop() kick epoll_wait
    std::thread thread_;
    std::atomic<std::thread::id> threadId_{};
    std::atomic<bool> stop_{false};

    std::mutex postMu_;
    std::vector<std::function<void()>> posted_;

    /** Loop-thread-only handler table. */
    std::unordered_map<int, IoFn> handlers_;
};

} // namespace net
} // namespace espresso

#endif // ESPRESSO_NET_EVENT_LOOP_HH
