/**
 * @file
 * The Espresso runtime facade — the library's public entry point.
 *
 * Bundles the class registry, the volatile generational heap and the
 * persistent-heap manager, and exposes the paper's programming model:
 *
 *   EspressoRuntime rt;
 *   rt.define({"Person", "", {{"id", FieldType::kI64},
 *                             {"name", FieldType::kRef}}});
 *   PjhHeap *h = rt.heaps().createHeap("Jimmy", 16 << 20);
 *   Oop p = rt.pnewInstance(h, "Person");          // pnew Person(...)
 *   p.setI64(rt.fieldOffset("Person", "id"), 42);
 *   h->flushField(p, rt.fieldOffset("Person", "id"));
 *   h->setRoot("Jimmy_info", p);
 *
 * `new` is newInstance/newArray (DRAM); `pnew` and its three array
 * bytecodes are pnewInstance/pnewArray (NVM). Both go through the
 * constant-pool-style resolution that makes alias Klasses necessary
 * (paper §3.2, Fig. 10).
 */

#ifndef ESPRESSO_CORE_ESPRESSO_HH
#define ESPRESSO_CORE_ESPRESSO_HH

#include <memory>
#include <string>

#include "heap/volatile_heap.hh"
#include "nvm/nvm_device.hh"
#include "pjh/heap_fabric.hh"
#include "pjh/heap_manager.hh"
#include "pjh/pjh_heap.hh"
#include "runtime/klass_registry.hh"

namespace espresso {

/** Top-level runtime configuration. */
struct EspressoConfig
{
    VolatileHeapConfig volatileHeap;
    NvmConfig nvm;
};

/** One Espresso runtime instance (the modified-JVM analog). */
class EspressoRuntime
{
  public:
    explicit EspressoRuntime(const EspressoConfig &cfg = {});
    ~EspressoRuntime();

    EspressoRuntime(const EspressoRuntime &) = delete;
    EspressoRuntime &operator=(const EspressoRuntime &) = delete;

    KlassRegistry &registry() { return registry_; }
    VolatileHeap &heap() { return volatileHeap_; }
    HandleRegistry &handles() { return volatileHeap_.handles(); }
    HeapManager &heaps() { return heapManager_; }

    /** Define a logical class. */
    Klass *define(const KlassDef &def) { return registry_.define(def); }

    /** Field offset shorthand. */
    std::uint32_t fieldOffset(const std::string &klass,
                              const std::string &field) const;

    /** @name new — volatile allocation */
    /// @{
    Oop newInstance(const std::string &klass_name);
    Oop newI64Array(std::uint64_t length);
    Oop newCharArray(std::uint64_t length);
    Oop newRefArray(const std::string &elem_klass, std::uint64_t length);

    /** Allocate a DRAM char-array holding @p s (a Java String stand-in). */
    Oop newString(const std::string &s);
    /// @}

    /** @name pnew — persistent allocation (§3.2) */
    /// @{
    Oop pnewInstance(PjhHeap *heap, const std::string &klass_name);
    Oop pnewI64Array(PjhHeap *heap, std::uint64_t length);
    Oop pnewCharArray(PjhHeap *heap, std::uint64_t length);
    Oop pnewRefArray(PjhHeap *heap, const std::string &elem_klass,
                     std::uint64_t length);

    /** Allocate a persistent char-array holding @p s. */
    Oop pnewString(PjhHeap *heap, const std::string &s);
    /// @}

    /**
     * @name pnew, fabric-routed
     *
     * Sharded variants: @p route_key picks the shard through the
     * fabric's consistent-hash ring, so allocations with the same key
     * land on the same PJH instance (and on the shard
     * `fabric->setRoot(route_key, ...)` routes to, keeping the
     * common allocate-then-publish pattern single-shard). The
     * single-heap overloads above are exactly these calls on a
     * 1-shard fabric.
     */
    /// @{
    Oop pnewInstance(HeapFabric *fabric, const std::string &route_key,
                     const std::string &klass_name);
    Oop pnewI64Array(HeapFabric *fabric, const std::string &route_key,
                     std::uint64_t length);
    Oop pnewCharArray(HeapFabric *fabric, const std::string &route_key,
                      std::uint64_t length);
    Oop pnewRefArray(HeapFabric *fabric, const std::string &route_key,
                     const std::string &elem_klass,
                     std::uint64_t length);

    /** Allocate a persistent char-array holding @p s on the shard
     * @p route_key routes to. */
    Oop pnewString(HeapFabric *fabric, const std::string &route_key,
                   const std::string &s);
    /// @}

    /** Decode a char-array back into a std::string. */
    static std::string readString(Oop char_array);

    /** checkcast sugar: throws ClassCastException on failure. */
    void
    checkCast(Oop obj, const std::string &klass_name)
    {
        registry_.checkCast(obj ? obj.klass() : nullptr, klass_name);
    }

  private:
    KlassRegistry registry_;
    VolatileHeap volatileHeap_;
    HeapManager heapManager_;
};

} // namespace espresso

#endif // ESPRESSO_CORE_ESPRESSO_HH
