#include "core/espresso.hh"

#include "util/logging.hh"

namespace espresso {

EspressoRuntime::EspressoRuntime(const EspressoConfig &cfg)
    : registry_(), volatileHeap_(cfg.volatileHeap),
      heapManager_(&registry_, &volatileHeap_, cfg.nvm)
{}

EspressoRuntime::~EspressoRuntime() = default;

std::uint32_t
EspressoRuntime::fieldOffset(const std::string &klass,
                             const std::string &field) const
{
    const Klass *k = registry_.find(klass);
    if (!k)
        fatal("fieldOffset: class " + klass + " is not defined");
    return k->fieldOffset(field);
}

Oop
EspressoRuntime::newInstance(const std::string &klass_name)
{
    return volatileHeap_.allocInstance(
        registry_.resolve(klass_name, MemKind::kVolatile));
}

Oop
EspressoRuntime::newI64Array(std::uint64_t length)
{
    return volatileHeap_.allocArray(
        registry_.arrayOf(FieldType::kI64, MemKind::kVolatile), length);
}

Oop
EspressoRuntime::newCharArray(std::uint64_t length)
{
    return volatileHeap_.allocArray(
        registry_.arrayOf(FieldType::kChar, MemKind::kVolatile), length);
}

Oop
EspressoRuntime::newRefArray(const std::string &elem_klass,
                             std::uint64_t length)
{
    Klass *elem = registry_.find(elem_klass);
    if (!elem)
        fatal("newRefArray: class " + elem_klass + " is not defined");
    return volatileHeap_.allocArray(
        registry_.arrayOfRefs(elem, MemKind::kVolatile), length);
}

Oop
EspressoRuntime::newString(const std::string &s)
{
    Oop arr = newCharArray(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        *reinterpret_cast<std::uint16_t *>(arr.elemAddr(i, 2)) =
            static_cast<std::uint8_t>(s[i]);
    }
    return arr;
}

Oop
EspressoRuntime::pnewInstance(PjhHeap *heap, const std::string &klass_name)
{
    return heap->allocInstance(
        registry_.resolve(klass_name, MemKind::kPersistent));
}

Oop
EspressoRuntime::pnewI64Array(PjhHeap *heap, std::uint64_t length)
{
    return heap->allocArray(
        registry_.arrayOf(FieldType::kI64, MemKind::kPersistent), length);
}

Oop
EspressoRuntime::pnewCharArray(PjhHeap *heap, std::uint64_t length)
{
    return heap->allocArray(
        registry_.arrayOf(FieldType::kChar, MemKind::kPersistent),
        length);
}

Oop
EspressoRuntime::pnewRefArray(PjhHeap *heap, const std::string &elem_klass,
                              std::uint64_t length)
{
    Klass *elem = registry_.find(elem_klass);
    if (!elem)
        fatal("pnewRefArray: class " + elem_klass + " is not defined");
    return heap->allocArray(
        registry_.arrayOfRefs(elem, MemKind::kPersistent), length);
}

Oop
EspressoRuntime::pnewString(PjhHeap *heap, const std::string &s)
{
    Oop arr = pnewCharArray(heap, s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        *reinterpret_cast<std::uint16_t *>(arr.elemAddr(i, 2)) =
            static_cast<std::uint8_t>(s[i]);
    }
    heap->flushObject(arr);
    return arr;
}

// Fabric-routed pnew goes through the write-epoch ring: during a
// membership change new objects land on their post-change home shard
// and need no migration; otherwise it equals the committed ring.
Oop
EspressoRuntime::pnewInstance(HeapFabric *fabric,
                              const std::string &route_key,
                              const std::string &klass_name)
{
    return pnewInstance(fabric->shardForWrite(route_key), klass_name);
}

Oop
EspressoRuntime::pnewI64Array(HeapFabric *fabric,
                              const std::string &route_key,
                              std::uint64_t length)
{
    return pnewI64Array(fabric->shardForWrite(route_key), length);
}

Oop
EspressoRuntime::pnewCharArray(HeapFabric *fabric,
                               const std::string &route_key,
                               std::uint64_t length)
{
    return pnewCharArray(fabric->shardForWrite(route_key), length);
}

Oop
EspressoRuntime::pnewRefArray(HeapFabric *fabric,
                              const std::string &route_key,
                              const std::string &elem_klass,
                              std::uint64_t length)
{
    return pnewRefArray(fabric->shardForWrite(route_key), elem_klass, length);
}

Oop
EspressoRuntime::pnewString(HeapFabric *fabric,
                            const std::string &route_key,
                            const std::string &s)
{
    return pnewString(fabric->shardForWrite(route_key), s);
}

std::string
EspressoRuntime::readString(Oop char_array)
{
    std::string out;
    std::uint64_t n = char_array.arrayLength();
    out.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        out.push_back(static_cast<char>(
            *reinterpret_cast<std::uint16_t *>(char_array.elemAddr(i, 2))));
    }
    return out;
}

} // namespace espresso
