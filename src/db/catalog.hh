/**
 * @file
 * Schema catalog: table definitions, persisted in a fixed-format
 * region of the database device so a reopened database knows its own
 * schema.
 *
 * Threading contract: createTable()/reload() are DDL and must be
 * serialized by the caller (Database holds its DDL mutex) and must
 * not run concurrently with DML. Concurrent readers of tables() are
 * safe across a createTable because the backing vector reserves
 * kMaxTables up front — existing TableSchema references never move.
 */

#ifndef ESPRESSO_DB_CATALOG_HH
#define ESPRESSO_DB_CATALOG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "db/value_codec.hh"
#include "util/common.hh"

namespace espresso {

class NvmDevice;

namespace db {

/** One column. */
struct ColumnDef
{
    std::string name;
    DbType type = DbType::kI64;
};

/** One table: first column is always the BIGINT primary key unless
 * @p pkColumn says otherwise. */
struct TableSchema
{
    static constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

    std::string name;
    std::vector<ColumnDef> columns;
    std::size_t pkColumn = 0;

    /** Optional secondary equality index (BIGINT column). */
    std::size_t indexColumn = kNoIndex;

    /** Index of @p column_name, or npos. */
    std::size_t columnIndex(const std::string &column_name) const;

    /** Bytes per stored row (state+rowid header plus value slots,
     * cache-line aligned so concurrent rows never share a line). */
    std::size_t rowBytes() const;
};

/** In-memory catalog with a persistent backing region. */
class Catalog
{
  public:
    static constexpr std::size_t kMaxTables = 64;
    static constexpr std::size_t kMaxColumns = 30;

    Catalog() = default;

    /** @param device backing device; @param base region address;
     * region size is persistedBytes(). */
    Catalog(NvmDevice *device, Addr base);

    static constexpr std::size_t
    persistedBytes()
    {
        return kMaxTables * kTableRecordBytes + kCacheLineSize;
    }

    /** Register and persist a table definition. */
    const TableSchema &createTable(const TableSchema &schema);

    const TableSchema *find(const std::string &name) const;

    const std::vector<TableSchema> &tables() const { return tables_; }

    /** Index of @p name in tables(), or npos. */
    std::size_t tableIndex(const std::string &name) const;

    /** Rebuild the in-memory view from the persistent region. */
    void reload();

  private:
    static constexpr std::size_t kTableRecordBytes = 64 + 24 +
                                                     kMaxColumns * 64;

    void persistTable(std::size_t index);

    NvmDevice *device_ = nullptr;
    Addr base_ = 0;
    std::vector<TableSchema> tables_;
};

} // namespace db
} // namespace espresso

#endif // ESPRESSO_DB_CATALOG_HH
