#include "db/catalog.hh"

#include <cstring>

#include "nvm/nvm_device.hh"
#include "runtime/oop.hh"
#include "util/logging.hh"

namespace espresso {
namespace db {

std::size_t
TableSchema::columnIndex(const std::string &column_name) const
{
    for (std::size_t i = 0; i < columns.size(); ++i) {
        if (columns[i].name == column_name)
            return i;
    }
    return static_cast<std::size_t>(-1);
}

std::size_t
TableSchema::rowBytes() const
{
    // Cache-line aligned so concurrent transactions on adjacent rows
    // never share a line: the group-commit drain copies whole lines
    // while other threads encode their own rows.
    return alignUp(16 + columns.size() * kValueSlotBytes,
                   kCacheLineSize);
}

Catalog::Catalog(NvmDevice *device, Addr base)
    : device_(device), base_(base)
{
    // Pin the schema storage: concurrent DML holds references into
    // tables() while DDL appends (see the threading contract).
    tables_.reserve(kMaxTables);
}

const TableSchema &
Catalog::createTable(const TableSchema &schema)
{
    if (find(schema.name))
        fatal("db: table " + schema.name + " already exists");
    if (tables_.size() >= kMaxTables)
        fatal("db: too many tables");
    if (schema.columns.empty() || schema.columns.size() > kMaxColumns)
        fatal("db: bad column count for " + schema.name);
    if (schema.name.size() > 63)
        fatal("db: table name too long");
    if (schema.pkColumn >= schema.columns.size())
        fatal("db: primary key column out of range");
    tables_.push_back(schema);
    persistTable(tables_.size() - 1);
    return tables_.back();
}

void
Catalog::persistTable(std::size_t index)
{
    // Record: name[64] | ncols | pk | ncols * (name[56], type word).
    Addr rec = base_ + kCacheLineSize + index * kTableRecordBytes;
    const TableSchema &t = tables_[index];
    std::memset(reinterpret_cast<void *>(rec), 0, kTableRecordBytes);
    std::memcpy(reinterpret_cast<void *>(rec), t.name.c_str(),
                t.name.size());
    storeWord(rec + 64, t.columns.size());
    storeWord(rec + 72, t.pkColumn);
    storeWord(rec + 80, t.indexColumn);
    for (std::size_t c = 0; c < t.columns.size(); ++c) {
        Addr col = rec + 88 + c * 64;
        if (t.columns[c].name.size() > 55)
            fatal("db: column name too long: " + t.columns[c].name);
        std::memcpy(reinterpret_cast<void *>(col),
                    t.columns[c].name.c_str(), t.columns[c].name.size());
        storeWord(col + 56,
                  static_cast<Word>(t.columns[c].type));
    }
    device_->persist(rec, kTableRecordBytes);
    // Publish the count last.
    storeWord(base_, tables_.size());
    device_->persist(base_, kWordSize);
}

void
Catalog::reload()
{
    tables_.clear();
    tables_.reserve(kMaxTables);
    Word count = loadWord(base_);
    for (Word i = 0; i < count; ++i) {
        Addr rec = base_ + kCacheLineSize + i * kTableRecordBytes;
        TableSchema t;
        t.name = reinterpret_cast<const char *>(rec);
        Word ncols = loadWord(rec + 64);
        t.pkColumn = loadWord(rec + 72);
        t.indexColumn = loadWord(rec + 80);
        for (Word c = 0; c < ncols; ++c) {
            Addr col = rec + 88 + c * 64;
            ColumnDef def;
            def.name = reinterpret_cast<const char *>(col);
            def.type = static_cast<DbType>(loadWord(col + 56));
            t.columns.push_back(def);
        }
        tables_.push_back(std::move(t));
    }
}

const TableSchema *
Catalog::find(const std::string &name) const
{
    for (const TableSchema &t : tables_) {
        if (t.name == name)
            return &t;
    }
    return nullptr;
}

std::size_t
Catalog::tableIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < tables_.size(); ++i) {
        if (tables_[i].name == name)
            return i;
    }
    return static_cast<std::size_t>(-1);
}

} // namespace db
} // namespace espresso
