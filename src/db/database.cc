#include "db/database.hh"

#include <cstdlib>

#include "nvm/crash_injector.hh"
#include "util/logging.hh"

namespace espresso {
namespace db {

namespace {

std::atomic<std::uint64_t> g_dbSerial{1};

/** Unique per thread lifetime, never recycled (unlike thread ids). */
std::atomic<std::uint64_t> g_threadToken{1};

std::uint64_t
threadToken()
{
    static thread_local std::uint64_t token =
        g_threadToken.fetch_add(1, std::memory_order_relaxed);
    return token;
}

std::uint64_t
groupCommitWindowFromEnv()
{
    if (const char *s = std::getenv("ESPRESSO_DB_GROUP_COMMIT")) {
        long long v = std::atoll(s);
        if (v > 0)
            return static_cast<std::uint64_t>(v);
    }
    return 0;
}

} // namespace

Database::Database(const DatabaseConfig &cfg, NvmConfig nvm_cfg)
    : cfg_(cfg),
      serial_(g_dbSerial.fetch_add(1, std::memory_order_relaxed))
{
    if (cfg_.groupCommitWindowUs == DatabaseConfig::kWindowFromEnv)
        cfg_.groupCommitWindowUs = groupCommitWindowFromEnv();

    std::size_t catalog_off = alignUp(64, kCacheLineSize);
    std::size_t wal_off =
        catalog_off + alignUp(Catalog::persistedBytes(), kCacheLineSize);
    rowsOff_ = wal_off + alignUp(cfg.walSize, kCacheLineSize);
    std::size_t total = rowsOff_ + alignUp(cfg.rowRegionSize,
                                           kCacheLineSize);

    dev_ = std::make_unique<NvmDevice>(total, nvm_cfg);
    Addr base = reinterpret_cast<Addr>(dev_->base());
    catalog_ = Catalog(dev_.get(), base + catalog_off);
    wal_ = std::make_unique<Wal>(dev_.get(), base + wal_off,
                                 cfg_.walSize, cfg_.walShards);
    rows_ = std::make_unique<RowStore>(dev_.get(), base + rowsOff_,
                                       cfg_.rowRegionSize, &catalog_,
                                       cfg_.rowsPerTable);
    coordinator_ = std::make_unique<CommitCoordinator>(
        dev_.get(), cfg_.groupCommitWindowUs * 1000);
}

Database::~Database() = default;

Database::TxContext &
Database::txContext()
{
    struct Cache
    {
        std::uint64_t serial = 0;
        std::uint64_t gen = 0;
        TxContext *ctx = nullptr;
    };
    static thread_local Cache cache;
    std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (cache.serial == serial_ && cache.gen == gen)
        return *cache.ctx;
    SpinGuard g(ctxMu_);
    auto &slot = ctxs_[threadToken()];
    if (!slot) {
        slot = std::make_unique<TxContext>();
        slot->shardId = nextShard_.fetch_add(1, std::memory_order_relaxed) %
                        wal_->shardCount();
        slot->rowTx.token = slot->shardId + 1;
    }
    cache = Cache{serial_, gen, slot.get()};
    return *slot;
}

Database::TxContext *
Database::txContextIfAny() const
{
    SpinGuard g(ctxMu_);
    auto it = ctxs_.find(threadToken());
    return it == ctxs_.end() ? nullptr : it->second.get();
}

void
Database::beginTx(TxContext &ctx)
{
    WalShard &shard = wal_->shard(ctx.shardId);
    // One transaction per shard: extra threads mapped to the same
    // shard queue here.
    shard.acquireTx();
    shard.begin();
    coordinator_->txnBegan();
}

void
Database::commitTx(TxContext &ctx)
{
    WalShard &shard = wal_->shard(ctx.shardId);
    if (shard.entryCount() == 0)
        shard.retireEmpty(); // nothing written: no fences, no batch
    else
        coordinator_->commit(shard);
    rows_->finishCommit(ctx.rowTx);
    shard.releaseTx();
    coordinator_->txnEnded();
    ctx.lastOutcome = TxOutcome::kCommitted;
}

void
Database::rollbackTx(TxContext &ctx, TxOutcome outcome)
{
    WalShard &shard = wal_->shard(ctx.shardId);
    shard.rollbackAndRetire([this](Addr addr, std::size_t len) {
        rows_->reconcileRange(addr, len);
    });
    rows_->finishRollback(ctx.rowTx);
    shard.releaseTx();
    coordinator_->txnEnded();
    ctx.lastOutcome = outcome;
}

template <typename Fn>
ResultSet
Database::mutate(Fn &&fn)
{
    TxContext &ctx = txContext();
    bool own = !ctx.explicitTx;
    if (own)
        beginTx(ctx);
    ResultSet rs;
    try {
        rs = fn(ctx);
    } catch (const WalFullError &e) {
        // Recoverable: undo what the transaction already wrote and
        // surface the outcome; the database stays usable. Rethrown
        // as WalFullError so callers can distinguish "transaction
        // too big" from genuine engine failures by type.
        rollbackTx(ctx, TxOutcome::kRolledBackWalFull);
        if (!own) {
            ctx.explicitTx = false;
            ctx.aborted = true;
        }
        throw WalFullError(
            strCat("db: transaction rolled back: ", e.what()));
    } catch (const SimulatedCrash &) {
        throw; // power failed mid-statement; recovery sorts it out
    } catch (...) {
        // The statement died before mutating rows (bad column, dup
        // pk, full table): an auto-txn rolls back; an explicit txn
        // stays open for the caller to decide.
        if (own)
            rollbackTx(ctx, TxOutcome::kRolledBack);
        throw;
    }
    if (own)
        commitTx(ctx);
    return rs;
}

void
Database::begin()
{
    TxContext &ctx = txContext();
    if (ctx.explicitTx)
        fatal("db: nested transactions are not supported");
    ctx.aborted = false;
    beginTx(ctx);
    ctx.explicitTx = true;
}

void
Database::commit()
{
    TxContext &ctx = txContext();
    if (!ctx.explicitTx) {
        if (ctx.aborted) {
            ctx.aborted = false;
            fatal("db: transaction was already rolled back "
                  "(undo log full)");
        }
        fatal("db: commit without begin");
    }
    ctx.explicitTx = false;
    commitTx(ctx);
}

void
Database::rollback()
{
    TxContext &ctx = txContext();
    if (!ctx.explicitTx) {
        if (ctx.aborted) {
            ctx.aborted = false; // already rolled back by the engine
            return;
        }
        fatal("db: rollback without begin");
    }
    ctx.explicitTx = false;
    rollbackTx(ctx, TxOutcome::kRolledBack);
}

bool
Database::inTransaction() const
{
    TxContext *ctx = txContextIfAny();
    return ctx && ctx->explicitTx;
}

TxOutcome
Database::lastTxOutcome() const
{
    TxContext *ctx = txContextIfAny();
    return ctx ? ctx->lastOutcome : TxOutcome::kNone;
}

unsigned
Database::currentTxShard()
{
    return txContext().shardId;
}

std::size_t
Database::tableIndexOrDie(const std::string &table)
{
    std::size_t idx = catalog_.tableIndex(table);
    if (idx == static_cast<std::size_t>(-1))
        fatal("db: no such table " + table);
    return idx;
}

ResultSet
Database::executeCreateTable(const TableSchema &schema)
{
    std::lock_guard<std::mutex> g(ddlMu_);
    catalog_.createTable(schema);
    rows_->ensureRegions();
    return ResultSet{};
}

void
Database::createTable(const TableSchema &schema)
{
    PhaseScope scope(timer_, "database");
    executeCreateTable(schema);
}

void
Database::persistRecord(const std::string &table, const DbRecord &record)
{
    PhaseScope scope(timer_, "database");
    std::size_t t = tableIndexOrDie(table);
    const TableSchema &schema = catalog_.tables()[t];
    if (record.values.size() != schema.columns.size())
        fatal("db: record shape mismatch for " + table);
    mutate([&](TxContext &ctx) {
        WalShard &shard = wal_->shard(ctx.shardId);
        std::int64_t pk = record.values[schema.pkColumn].i;
        if (!rows_->update(t, pk, record.values, record.dirtyMask,
                           shard, ctx.rowTx))
            if (!rows_->insert(t, record.values, shard, ctx.rowTx))
                fatal("db: persistRecord failed for " + table);
        return ResultSet{};
    });
}

bool
Database::fetchRecord(const std::string &table, std::int64_t pk,
                      DbRecord *out)
{
    PhaseScope scope(timer_, "database");
    std::size_t t = tableIndexOrDie(table);
    return rows_->fetch(t, pk, &out->values);
}

bool
Database::deleteRecord(const std::string &table, std::int64_t pk)
{
    PhaseScope scope(timer_, "database");
    std::size_t t = tableIndexOrDie(table);
    bool erased = false;
    mutate([&](TxContext &ctx) {
        erased = rows_->erase(t, pk, wal_->shard(ctx.shardId),
                              ctx.rowTx);
        return ResultSet{};
    });
    return erased;
}

void
Database::scanEq(const std::string &table, const std::string &column,
                 const DbValue &v,
                 const std::function<void(const std::vector<DbValue> &)>
                     &fn)
{
    PhaseScope scope(timer_, "database");
    std::size_t t = tableIndexOrDie(table);
    std::size_t c = catalog_.tables()[t].columnIndex(column);
    if (c == static_cast<std::size_t>(-1))
        fatal("db: no such column " + column);
    rows_->scanEq(t, c, v, fn);
}

std::size_t
Database::rowCount(const std::string &table)
{
    return rows_->rowCount(tableIndexOrDie(table));
}

ResultSet
Database::executeSql(const std::string &sql)
{
    // The JDBC path: text -> tokens -> AST -> typed execution.
    SqlStatement stmt;
    {
        PhaseScope scope(timer_, "transformation");
        stmt = parseSql(sql);
    }
    PhaseScope scope(timer_, "database");
    return execute(stmt);
}

ResultSet
Database::execute(const SqlStatement &stmt)
{
    ResultSet rs;
    switch (stmt.kind) {
      case SqlStatement::Kind::kCreateTable:
        return executeCreateTable(stmt.schema);
      case SqlStatement::Kind::kInsert: {
        std::size_t t = tableIndexOrDie(stmt.table);
        const TableSchema &schema = catalog_.tables()[t];
        std::vector<DbValue> row(schema.columns.size());
        for (std::size_t i = 0; i < stmt.insertColumns.size(); ++i) {
            std::size_t c = schema.columnIndex(stmt.insertColumns[i]);
            if (c == static_cast<std::size_t>(-1))
                fatal("db: no such column " + stmt.insertColumns[i]);
            row[c] = stmt.insertValues[i];
        }
        return mutate([&](TxContext &ctx) {
            ResultSet out;
            if (!rows_->insert(t, row, wal_->shard(ctx.shardId),
                               ctx.rowTx))
                fatal("db: duplicate primary key inserting into " +
                      stmt.table);
            out.affected = 1;
            return out;
        });
      }
      case SqlStatement::Kind::kSelect: {
        std::size_t t = tableIndexOrDie(stmt.table);
        const TableSchema &schema = catalog_.tables()[t];
        std::vector<std::size_t> cols;
        if (stmt.selectAll) {
            for (std::size_t c = 0; c < schema.columns.size(); ++c)
                cols.push_back(c);
        } else {
            for (const std::string &name : stmt.selectColumns) {
                std::size_t c = schema.columnIndex(name);
                if (c == static_cast<std::size_t>(-1))
                    fatal("db: no such column " + name);
                cols.push_back(c);
            }
        }
        for (std::size_t c : cols)
            rs.columns.push_back(schema.columns[c].name);

        auto emit = [&](const std::vector<DbValue> &row) {
            std::vector<DbValue> projected;
            projected.reserve(cols.size());
            for (std::size_t c : cols)
                projected.push_back(row[c]);
            rs.rows.push_back(std::move(projected));
        };

        if (stmt.hasWhere) {
            std::size_t wc = schema.columnIndex(stmt.whereColumn);
            if (wc == static_cast<std::size_t>(-1))
                fatal("db: no such column " + stmt.whereColumn);
            if (wc == schema.pkColumn &&
                stmt.whereValue.type == DbType::kI64) {
                std::vector<DbValue> row;
                if (rows_->fetch(t, stmt.whereValue.i, &row))
                    emit(row);
            } else {
                rows_->scanEq(t, wc, stmt.whereValue, emit);
            }
        } else {
            rows_->scanAll(t, emit);
        }
        return rs;
      }
      case SqlStatement::Kind::kUpdate: {
        std::size_t t = tableIndexOrDie(stmt.table);
        const TableSchema &schema = catalog_.tables()[t];
        if (schema.columnIndex(stmt.whereColumn) != schema.pkColumn)
            fatal("db: UPDATE supports pk predicates only");
        std::vector<DbValue> row(schema.columns.size());
        std::uint64_t mask = 0;
        for (const auto &[col, val] : stmt.assignments) {
            std::size_t c = schema.columnIndex(col);
            if (c == static_cast<std::size_t>(-1))
                fatal("db: no such column " + col);
            row[c] = val;
            mask |= 1ull << c;
        }
        return mutate([&](TxContext &ctx) {
            ResultSet out;
            out.affected = rows_->update(t, stmt.whereValue.i, row,
                                         mask, wal_->shard(ctx.shardId),
                                         ctx.rowTx)
                               ? 1
                               : 0;
            return out;
        });
      }
      case SqlStatement::Kind::kDelete: {
        std::size_t t = tableIndexOrDie(stmt.table);
        const TableSchema &schema = catalog_.tables()[t];
        std::size_t wc = schema.columnIndex(stmt.whereColumn);
        return mutate([&](TxContext &ctx) {
            ResultSet out;
            WalShard &shard = wal_->shard(ctx.shardId);
            if (wc == schema.pkColumn &&
                stmt.whereValue.type == DbType::kI64) {
                out.affected = rows_->erase(t, stmt.whereValue.i, shard,
                                            ctx.rowTx)
                                   ? 1
                                   : 0;
            } else {
                // Non-pk delete: collect pks then erase.
                std::vector<std::int64_t> pks;
                rows_->scanEq(t, wc, stmt.whereValue,
                              [&](const std::vector<DbValue> &row) {
                                  pks.push_back(row[schema.pkColumn].i);
                              });
                for (std::int64_t pk : pks)
                    out.affected +=
                        rows_->erase(t, pk, shard, ctx.rowTx) ? 1 : 0;
            }
            return out;
        });
      }
    }
    panic("db: unhandled statement kind");
}

void
Database::crash(CrashMode mode, std::uint64_t seed)
{
    {
        SpinGuard g(ctxMu_);
        ctxs_.clear();
        generation_.fetch_add(1, std::memory_order_release);
    }
    coordinator_->resetAfterCrash();
    dev_->crash(mode, seed);
    wal_->recover();
    catalog_.reload();
    rows_ = std::make_unique<RowStore>(
        dev_.get(), reinterpret_cast<Addr>(dev_->base()) + rowsOff_,
        cfg_.rowRegionSize, &catalog_, cfg_.rowsPerTable);
    rows_->syncWithCatalog();
}

} // namespace db
} // namespace espresso
