#include "db/database.hh"

#include "util/logging.hh"

namespace espresso {
namespace db {

/** Opens a statement-scoped transaction unless one is active. */
class Database::AutoTx
{
  public:
    explicit AutoTx(Database &database) : db_(database)
    {
        if (!db_.explicitTx_) {
            db_.wal_.begin();
            own_ = true;
        }
    }

    ~AutoTx()
    {
        if (own_ && db_.wal_.active())
            db_.wal_.commit();
    }

  private:
    Database &db_;
    bool own_ = false;
};

Database::Database(const DatabaseConfig &cfg, NvmConfig nvm_cfg)
    : cfg_(cfg)
{
    std::size_t catalog_off = alignUp(64, kCacheLineSize);
    std::size_t wal_off =
        catalog_off + alignUp(Catalog::persistedBytes(), kCacheLineSize);
    rowsOff_ = wal_off + alignUp(cfg.walSize, kCacheLineSize);
    std::size_t total = rowsOff_ + alignUp(cfg.rowRegionSize,
                                           kCacheLineSize);

    dev_ = std::make_unique<NvmDevice>(total, nvm_cfg);
    Addr base = reinterpret_cast<Addr>(dev_->base());
    catalog_ = Catalog(dev_.get(), base + catalog_off);
    wal_ = Wal(dev_.get(), base + wal_off, cfg.walSize);
    rows_ = RowStore(dev_.get(), base + rowsOff_, cfg.rowRegionSize,
                     &catalog_, cfg.rowsPerTable);
}

Database::~Database() = default;

void
Database::begin()
{
    if (explicitTx_)
        fatal("db: nested transactions are not supported");
    wal_.begin();
    explicitTx_ = true;
}

void
Database::commit()
{
    if (!explicitTx_)
        fatal("db: commit without begin");
    wal_.commit();
    explicitTx_ = false;
}

void
Database::rollback()
{
    if (!explicitTx_)
        fatal("db: rollback without begin");
    wal_.rollbackAndRetire();
    explicitTx_ = false;
    // Volatile indexes may now disagree with the rows; rebuild.
    rows_.syncWithCatalog();
}

std::size_t
Database::tableIndexOrDie(const std::string &table)
{
    std::size_t idx = catalog_.tableIndex(table);
    if (idx == static_cast<std::size_t>(-1))
        fatal("db: no such table " + table);
    return idx;
}

void
Database::createTable(const TableSchema &schema)
{
    PhaseScope scope(timer_, "database");
    catalog_.createTable(schema);
    rows_.syncWithCatalog();
}

void
Database::persistRecord(const std::string &table, const DbRecord &record)
{
    PhaseScope scope(timer_, "database");
    std::size_t t = tableIndexOrDie(table);
    const TableSchema &schema = catalog_.tables()[t];
    if (record.values.size() != schema.columns.size())
        fatal("db: record shape mismatch for " + table);
    AutoTx tx(*this);
    std::int64_t pk = record.values[schema.pkColumn].i;
    if (!rows_.update(t, pk, record.values, record.dirtyMask, wal_))
        if (!rows_.insert(t, record.values, wal_))
            fatal("db: persistRecord failed for " + table);
}

bool
Database::fetchRecord(const std::string &table, std::int64_t pk,
                      DbRecord *out)
{
    PhaseScope scope(timer_, "database");
    std::size_t t = tableIndexOrDie(table);
    return rows_.fetch(t, pk, &out->values);
}

bool
Database::deleteRecord(const std::string &table, std::int64_t pk)
{
    PhaseScope scope(timer_, "database");
    std::size_t t = tableIndexOrDie(table);
    AutoTx tx(*this);
    return rows_.erase(t, pk, wal_);
}

void
Database::scanEq(const std::string &table, const std::string &column,
                 const DbValue &v,
                 const std::function<void(const std::vector<DbValue> &)>
                     &fn)
{
    PhaseScope scope(timer_, "database");
    std::size_t t = tableIndexOrDie(table);
    std::size_t c = catalog_.tables()[t].columnIndex(column);
    if (c == static_cast<std::size_t>(-1))
        fatal("db: no such column " + column);
    rows_.scanEq(t, c, v, fn);
}

std::size_t
Database::rowCount(const std::string &table)
{
    return rows_.rowCount(tableIndexOrDie(table));
}

ResultSet
Database::executeSql(const std::string &sql)
{
    // The JDBC path: text -> tokens -> AST -> typed execution.
    SqlStatement stmt;
    {
        PhaseScope scope(timer_, "transformation");
        stmt = parseSql(sql);
    }
    PhaseScope scope(timer_, "database");
    return execute(stmt);
}

ResultSet
Database::execute(const SqlStatement &stmt)
{
    ResultSet rs;
    switch (stmt.kind) {
      case SqlStatement::Kind::kCreateTable: {
        catalog_.createTable(stmt.schema);
        rows_.syncWithCatalog();
        return rs;
      }
      case SqlStatement::Kind::kInsert: {
        std::size_t t = tableIndexOrDie(stmt.table);
        const TableSchema &schema = catalog_.tables()[t];
        std::vector<DbValue> row(schema.columns.size());
        for (std::size_t i = 0; i < stmt.insertColumns.size(); ++i) {
            std::size_t c = schema.columnIndex(stmt.insertColumns[i]);
            if (c == static_cast<std::size_t>(-1))
                fatal("db: no such column " + stmt.insertColumns[i]);
            row[c] = stmt.insertValues[i];
        }
        AutoTx tx(*this);
        if (!rows_.insert(t, row, wal_))
            fatal("db: duplicate primary key inserting into " +
                  stmt.table);
        rs.affected = 1;
        return rs;
      }
      case SqlStatement::Kind::kSelect: {
        std::size_t t = tableIndexOrDie(stmt.table);
        const TableSchema &schema = catalog_.tables()[t];
        std::vector<std::size_t> cols;
        if (stmt.selectAll) {
            for (std::size_t c = 0; c < schema.columns.size(); ++c)
                cols.push_back(c);
        } else {
            for (const std::string &name : stmt.selectColumns) {
                std::size_t c = schema.columnIndex(name);
                if (c == static_cast<std::size_t>(-1))
                    fatal("db: no such column " + name);
                cols.push_back(c);
            }
        }
        for (std::size_t c : cols)
            rs.columns.push_back(schema.columns[c].name);

        auto emit = [&](const std::vector<DbValue> &row) {
            std::vector<DbValue> projected;
            projected.reserve(cols.size());
            for (std::size_t c : cols)
                projected.push_back(row[c]);
            rs.rows.push_back(std::move(projected));
        };

        if (stmt.hasWhere) {
            std::size_t wc = schema.columnIndex(stmt.whereColumn);
            if (wc == static_cast<std::size_t>(-1))
                fatal("db: no such column " + stmt.whereColumn);
            if (wc == schema.pkColumn &&
                stmt.whereValue.type == DbType::kI64) {
                std::vector<DbValue> row;
                if (rows_.fetch(t, stmt.whereValue.i, &row))
                    emit(row);
            } else {
                rows_.scanEq(t, wc, stmt.whereValue, emit);
            }
        } else {
            rows_.scanAll(t, emit);
        }
        return rs;
      }
      case SqlStatement::Kind::kUpdate: {
        std::size_t t = tableIndexOrDie(stmt.table);
        const TableSchema &schema = catalog_.tables()[t];
        if (schema.columnIndex(stmt.whereColumn) != schema.pkColumn)
            fatal("db: UPDATE supports pk predicates only");
        std::vector<DbValue> row(schema.columns.size());
        std::uint64_t mask = 0;
        for (const auto &[col, val] : stmt.assignments) {
            std::size_t c = schema.columnIndex(col);
            if (c == static_cast<std::size_t>(-1))
                fatal("db: no such column " + col);
            row[c] = val;
            mask |= 1ull << c;
        }
        AutoTx tx(*this);
        rs.affected =
            rows_.update(t, stmt.whereValue.i, row, mask, wal_) ? 1 : 0;
        return rs;
      }
      case SqlStatement::Kind::kDelete: {
        std::size_t t = tableIndexOrDie(stmt.table);
        const TableSchema &schema = catalog_.tables()[t];
        AutoTx tx(*this);
        std::size_t wc = schema.columnIndex(stmt.whereColumn);
        if (wc == schema.pkColumn &&
            stmt.whereValue.type == DbType::kI64) {
            rs.affected =
                rows_.erase(t, stmt.whereValue.i, wal_) ? 1 : 0;
        } else {
            // Non-pk delete: collect pks then erase.
            std::vector<std::int64_t> pks;
            rows_.scanEq(t, wc, stmt.whereValue,
                         [&](const std::vector<DbValue> &row) {
                             pks.push_back(row[schema.pkColumn].i);
                         });
            for (std::int64_t pk : pks)
                rs.affected += rows_.erase(t, pk, wal_) ? 1 : 0;
        }
        return rs;
      }
    }
    panic("db: unhandled statement kind");
}

void
Database::crash(CrashMode mode, std::uint64_t seed)
{
    explicitTx_ = false;
    dev_->crash(mode, seed);
    wal_.recover();
    catalog_.reload();
    rows_ = RowStore(dev_.get(),
                     reinterpret_cast<Addr>(dev_->base()) + rowsOff_,
                     cfg_.rowRegionSize, &catalog_, cfg_.rowsPerTable);
    rows_.syncWithCatalog();
}

} // namespace db
} // namespace espresso
