#include "db/database.hh"

#include <cstdlib>
#include <cstring>

#include "nvm/crash_injector.hh"
#include "util/logging.hh"

namespace espresso {
namespace db {

namespace {

std::atomic<std::uint64_t> g_dbSerial{1};

/** Unique per thread lifetime, never recycled (unlike thread ids). */
std::atomic<std::uint64_t> g_threadToken{1};

std::uint64_t
threadToken()
{
    static thread_local std::uint64_t token =
        g_threadToken.fetch_add(1, std::memory_order_relaxed);
    return token;
}

/** Fast path for txContext(): the last (database serial, generation,
 * context) this thread resolved. File-scope (not function-local) so
 * the detached-session bind/unbind/detach paths can invalidate it
 * when they swap the thread's slot out from under the cache. */
struct CtxCache
{
    std::uint64_t serial = 0;
    std::uint64_t gen = 0;
    void *ctx = nullptr;
};
thread_local CtxCache g_ctxCache;

/** Row-lock wait bound for nowait (wire) transactions: this many
 * 256-spin rounds, then abort kBusy. Long enough to ride out a
 * committing holder, short enough that an event-loop worker stalls
 * for microseconds, not milliseconds. */
constexpr std::uint32_t kNetLockSpinRounds = 16;

std::uint64_t
groupCommitWindowFromEnv()
{
    if (const char *s = std::getenv("ESPRESSO_DB_GROUP_COMMIT")) {
        if (std::strcmp(s, "auto") == 0)
            return DatabaseConfig::kWindowAuto;
        long long v = std::atoll(s);
        if (v > 0)
            return static_cast<std::uint64_t>(v);
    }
    return 0;
}

} // namespace

Database::Database(const DatabaseConfig &cfg, NvmConfig nvm_cfg,
                   SnapshotClock *shared_clock)
    : cfg_(cfg),
      serial_(g_dbSerial.fetch_add(1, std::memory_order_relaxed))
{
    if (cfg_.groupCommitWindowUs == DatabaseConfig::kWindowFromEnv)
        cfg_.groupCommitWindowUs = groupCommitWindowFromEnv();

    std::size_t catalog_off = alignUp(64, kCacheLineSize);
    std::size_t wal_off =
        catalog_off + alignUp(Catalog::persistedBytes(), kCacheLineSize);
    rowsOff_ = wal_off + alignUp(cfg.walSize, kCacheLineSize);
    std::size_t total = rowsOff_ + alignUp(cfg.rowRegionSize,
                                           kCacheLineSize);

    dev_ = std::make_unique<NvmDevice>(total, nvm_cfg);
    Addr base = reinterpret_cast<Addr>(dev_->base());
    catalog_ = Catalog(dev_.get(), base + catalog_off);
    wal_ = std::make_unique<Wal>(dev_.get(), base + wal_off,
                                 cfg_.walSize, cfg_.walShards);
    if (shared_clock != nullptr) {
        clock_ = shared_clock;
    } else {
        ownedClock_ = std::make_unique<SnapshotClock>();
        clock_ = ownedClock_.get();
    }
    ctrls_ = std::make_unique<TxnCtrl[]>(wal_->shardCount());
    rows_ = std::make_unique<RowStore>(
        dev_.get(), base + rowsOff_, cfg_.rowRegionSize, &catalog_,
        cfg_.rowsPerTable, ctrls_.get(), wal_->shardCount(), clock_);
    std::uint64_t window_ns =
        cfg_.groupCommitWindowUs == DatabaseConfig::kWindowAuto
            ? CommitCoordinator::kAutoWindow
            : cfg_.groupCommitWindowUs * 1000;
    coordinator_ =
        std::make_unique<CommitCoordinator>(dev_.get(), window_ns);
}

Database::~Database() = default;

Database::TxContext &
Database::txContext()
{
    std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (g_ctxCache.serial == serial_ && g_ctxCache.gen == gen)
        return *static_cast<TxContext *>(g_ctxCache.ctx);
    SpinGuard g(ctxMu_);
    auto &slot = ctxs_[threadToken()];
    if (!slot) {
        slot = std::make_unique<TxContext>();
        slot->shardId = nextShard_.fetch_add(1, std::memory_order_relaxed) %
                        wal_->shardCount();
        slot->rowTx.token = slot->shardId + 1;
    }
    g_ctxCache = CtxCache{serial_, gen, slot.get()};
    return *slot;
}

Database::TxContext *
Database::txContextIfAny() const
{
    SpinGuard g(ctxMu_);
    auto it = ctxs_.find(threadToken());
    return it == ctxs_.end() ? nullptr : it->second.get();
}

bool
Database::beginTx(TxContext &ctx, Isolation iso, Word bracket_snapshot,
                  bool nowait)
{
    if (nowait) {
        // Admission control: claim any free shard token (starting at
        // the context's home shard) or decline — never queue. This
        // naturally caps concurrent wire write sessions at the shard
        // count.
        unsigned n = wal_->shardCount();
        unsigned chosen = n;
        for (unsigned i = 0; i < n; ++i) {
            unsigned cand = (ctx.shardId + i) % n;
            if (wal_->shard(cand).tryAcquireTx()) {
                chosen = cand;
                break;
            }
        }
        if (chosen == n)
            return false;
        ctx.shardId = chosen;
        ctx.rowTx.token = chosen + 1;
    } else {
        // One transaction per shard: extra threads mapped to the
        // same shard queue here.
        wal_->shard(ctx.shardId).acquireTx();
    }
    WalShard &shard = wal_->shard(ctx.shardId);
    ctx.rowTx.maxSpinRounds = nowait ? kNetLockSpinRounds : 0;

    ctx.isolation = iso;
    if (iso == Isolation::kSnapshot) {
        if (bracket_snapshot != kNoSnapshot) {
            // A sharded bracket registered one snapshot for every
            // member; re-registering here would read a different
            // clock value.
            ctx.snapshot = bracket_snapshot;
            ctx.ownsSnapshot = false;
        } else {
            ctx.snapshot = clock_->beginSnapshot();
            ctx.ownsSnapshot = true;
        }
    } else {
        ctx.snapshot = kNoSnapshot;
        ctx.ownsSnapshot = false;
    }
    ctx.rowTx.saveImages = clock_->enterWriter();
    ctx.rowTx.snapshot = ctx.snapshot;

    // Fresh control-block state before any marker can reference it.
    TxnCtrl &c = ctrls_[ctx.shardId];
    std::uint64_t seq =
        txnSeqCounter_.fetch_add(1, std::memory_order_relaxed);
    ctx.txnSeq = seq;
    c.commitTs.store(0, std::memory_order_relaxed);
    c.waitingFor.store(0, std::memory_order_relaxed);
    c.seq.store(seq, std::memory_order_release);

    shard.begin();
    coordinator_->txnBegan();
    return true;
}

void
Database::finishCommitLocal(TxContext &ctx)
{
    Word ts = 0;
    if (ctx.rowTx.saveImages) {
        // Allocate + publish the commit timestamp in one clock
        // critical section: a snapshot begun before sees none of
        // this transaction, one begun after sees all of it.
        SpinGuard g(clock_->mu);
        ts = ++clock_->clock;
        ctrls_[ctx.shardId].commitTs.store(ts,
                                           std::memory_order_release);
    }
    rows_->finishCommit(ctx.rowTx, ts);
    endTxCommon(ctx);
}

void
Database::endTxCommon(TxContext &ctx)
{
    clock_->exitWriter(ctx.rowTx.saveImages);
    ctx.rowTx.saveImages = false;
    ctx.rowTx.snapshot = kNoSnapshot;
    if (ctx.ownsSnapshot)
        clock_->endSnapshot(ctx.snapshot);
    ctx.snapshot = kNoSnapshot;
    ctx.ownsSnapshot = false;
    // Shard release comes after row stamping (finishCommit /
    // finishRollback): no new transaction reuses this token while
    // its markers are still being resolved away.
    wal_->shard(ctx.shardId).releaseTx();
    coordinator_->txnEnded();
}

void
Database::commitTx(TxContext &ctx)
{
    WalShard &shard = wal_->shard(ctx.shardId);
    if (shard.entryCount() == 0)
        shard.retireEmpty(); // nothing written: no fences, no batch
    else
        coordinator_->commit(shard);
    finishCommitLocal(ctx);
    ctx.lastOutcome = TxOutcome::kCommitted;
}

void
Database::rollbackTx(TxContext &ctx, TxOutcome outcome)
{
    WalShard &shard = wal_->shard(ctx.shardId);
    shard.rollbackAndRetire(
        [this](Addr addr, std::size_t len) {
            rows_->reconcileRange(addr, len);
        },
        [this](Addr dst, const std::uint8_t *src, std::size_t len) {
            rows_->restoreRange(dst, src, len);
        });
    // Invalidate the control block: a marker that somehow survived
    // the restore is stale and resolves through the version chain.
    ctrls_[ctx.shardId].seq.store(
        txnSeqCounter_.fetch_add(1, std::memory_order_relaxed),
        std::memory_order_release);
    rows_->finishRollback(ctx.rowTx);
    endTxCommon(ctx);
    ctx.lastOutcome = outcome;
}

template <typename Fn>
ResultSet
Database::mutate(Fn &&fn)
{
    TxContext &ctx = txContext();
    bool own = !ctx.explicitTx;
    if (own)
        beginTx(ctx);
    ResultSet rs;
    try {
        rs = fn(ctx);
    } catch (const WalFullError &e) {
        // Recoverable: undo what the transaction already wrote and
        // surface the outcome; the database stays usable. Rethrown
        // as WalFullError so callers can distinguish "transaction
        // too big" from genuine engine failures by type.
        rollbackTx(ctx, TxOutcome::kRolledBackWalFull);
        if (!own) {
            ctx.explicitTx = false;
            ctx.aborted = true;
            ctx.abortCode = StatusCode::kWalFull;
        }
        throw WalFullError(
            strCat("db: transaction rolled back: ", e.what()));
    } catch (const TxnAbortError &e) {
        // Deadlock victim or snapshot write conflict: the whole
        // transaction rolls back (auto and explicit alike — the
        // write locks must drop to break the cycle).
        rollbackTx(ctx, e.code() == StatusCode::kDeadlock
                            ? TxOutcome::kRolledBackDeadlock
                            : TxOutcome::kRolledBackConflict);
        if (!own) {
            ctx.explicitTx = false;
            ctx.aborted = true;
            ctx.abortCode = e.code();
        }
        throw;
    } catch (const SimulatedCrash &) {
        throw; // power failed mid-statement; recovery sorts it out
    } catch (...) {
        // The statement died before mutating rows (bad column, dup
        // pk, full table): an auto-txn rolls back; an explicit txn
        // stays open for the caller to decide.
        if (own)
            rollbackTx(ctx, TxOutcome::kRolledBack);
        throw;
    }
    if (own)
        commitTx(ctx);
    return rs;
}

Txn
Database::beginTxn(const TxnOptions &opts)
{
    TxContext &ctx = txContext();
    if (ctx.explicitTx)
        fatal("db: nested transactions are not supported");
    ctx.aborted = false;
    ctx.abortCode = StatusCode::kOk;
    beginTx(ctx, opts.isolation);
    ctx.explicitTx = true;
    return Txn(this, nullptr, ctx.txnSeq, ctx.snapshot);
}

Status
Database::commitHandle(std::uint64_t seq)
{
    TxContext *ctx = txContextIfAny();
    if (ctx == nullptr || ctx->txnSeq != seq)
        return Status::make(StatusCode::kMisuse,
                            "db: commit on a foreign or stale "
                            "transaction handle");
    if (!ctx->explicitTx) {
        if (ctx->aborted) {
            // The engine already rolled this transaction back
            // mid-statement; report why.
            ctx->aborted = false;
            StatusCode code = ctx->abortCode == StatusCode::kOk
                                  ? StatusCode::kAborted
                                  : ctx->abortCode;
            return Status::make(
                code, "db: transaction was rolled back by the engine");
        }
        return Status::make(StatusCode::kMisuse,
                            "db: transaction already finished");
    }
    ctx->explicitTx = false;
    commitTx(*ctx);
    return Status::ok();
}

Status
Database::rollbackHandle(std::uint64_t seq)
{
    TxContext *ctx = txContextIfAny();
    if (ctx == nullptr || ctx->txnSeq != seq)
        return Status::make(StatusCode::kMisuse,
                            "db: rollback on a foreign or stale "
                            "transaction handle");
    if (!ctx->explicitTx) {
        if (ctx->aborted) {
            ctx->aborted = false;
            return Status::ok(); // already rolled back, as requested
        }
        return Status::make(StatusCode::kMisuse,
                            "db: transaction already finished");
    }
    ctx->explicitTx = false;
    rollbackTx(*ctx, TxOutcome::kRolledBack);
    return Status::ok();
}

bool
Database::handleActive(std::uint64_t seq) const
{
    TxContext *ctx = txContextIfAny();
    return ctx != nullptr && ctx->explicitTx && ctx->txnSeq == seq;
}

void
Database::beginWith(Isolation iso, Word bracket_snapshot)
{
    TxContext &ctx = txContext();
    if (ctx.explicitTx)
        fatal("db: nested transactions are not supported");
    ctx.aborted = false;
    ctx.abortCode = StatusCode::kOk;
    beginTx(ctx, iso, bracket_snapshot);
    ctx.explicitTx = true;
}

bool
Database::beginWithTry(Isolation iso, Word bracket_snapshot)
{
    TxContext &ctx = txContext();
    if (ctx.explicitTx)
        fatal("db: nested transactions are not supported");
    ctx.aborted = false;
    ctx.abortCode = StatusCode::kOk;
    if (!beginTx(ctx, iso, bracket_snapshot, /*nowait=*/true))
        return false;
    ctx.explicitTx = true;
    return true;
}

Status
Database::beginDetached(const TxnOptions &opts, std::uint64_t *id_out)
{
    *id_out = 0;
    auto ctx = std::make_unique<TxContext>();
    ctx->shardId = nextShard_.fetch_add(1, std::memory_order_relaxed) %
                   wal_->shardCount();
    ctx->rowTx.token = ctx->shardId + 1;
    if (!beginTx(*ctx, opts.isolation, kNoSnapshot, /*nowait=*/true))
        return Status::make(StatusCode::kBusy,
                            "db: every undo-log shard is carrying a "
                            "transaction; retry");
    ctx->explicitTx = true;

    std::uint64_t id =
        detachedIdCounter_.fetch_add(1, std::memory_order_relaxed);
    SpinGuard g(ctxMu_);
    DetachedSession &s = detached_[id];
    s.ctx = std::move(ctx);
    *id_out = id;
    return Status::ok();
}

bool
Database::bindDetached(std::uint64_t id)
{
    SpinGuard g(ctxMu_);
    auto it = detached_.find(id);
    if (it == detached_.end() || it->second.boundToken != 0)
        return false;
    auto &slot = ctxs_[threadToken()];
    if (slot && slot->explicitTx)
        return false; // binder has its own open transaction
    it->second.stash = std::move(slot);
    slot = std::move(it->second.ctx);
    it->second.boundToken = threadToken();
    g_ctxCache = CtxCache{};
    return true;
}

void
Database::unbindDetached(std::uint64_t id)
{
    SpinGuard g(ctxMu_);
    auto it = detached_.find(id);
    if (it == detached_.end() || it->second.boundToken != threadToken())
        fatal("db: unbind of a session not bound to this thread");
    auto &slot = ctxs_[threadToken()];
    it->second.ctx = std::move(slot);
    slot = std::move(it->second.stash);
    it->second.boundToken = 0;
    g_ctxCache = CtxCache{};
}

std::uint64_t
Database::detachCurrentTx()
{
    SpinGuard g(ctxMu_);
    auto it = ctxs_.find(threadToken());
    if (it == ctxs_.end() || !it->second || !it->second->explicitTx)
        fatal("db: detach without an open transaction");
    std::uint64_t id =
        detachedIdCounter_.fetch_add(1, std::memory_order_relaxed);
    DetachedSession &s = detached_[id];
    s.ctx = std::move(it->second);
    g_ctxCache = CtxCache{};
    return id;
}

std::unique_ptr<Database::TxContext>
Database::takeDetached(std::uint64_t id)
{
    SpinGuard g(ctxMu_);
    auto it = detached_.find(id);
    if (it == detached_.end())
        fatal("db: unknown detached session");
    if (it->second.boundToken != 0)
        fatal("db: finishing a detached session while it is bound");
    std::unique_ptr<TxContext> ctx = std::move(it->second.ctx);
    detached_.erase(it);
    return ctx;
}

Status
Database::commitDetached(std::uint64_t id)
{
    std::unique_ptr<TxContext> ctx = takeDetached(id);
    if (!ctx->explicitTx) {
        if (ctx->aborted) {
            StatusCode code = ctx->abortCode == StatusCode::kOk
                                  ? StatusCode::kAborted
                                  : ctx->abortCode;
            return Status::make(
                code, "db: transaction was rolled back by the engine");
        }
        return Status::make(StatusCode::kMisuse,
                            "db: transaction already finished");
    }
    ctx->explicitTx = false;
    commitTx(*ctx);
    return Status::ok();
}

Status
Database::rollbackDetached(std::uint64_t id)
{
    std::unique_ptr<TxContext> ctx = takeDetached(id);
    if (!ctx->explicitTx) {
        if (ctx->aborted)
            return Status::ok(); // already rolled back, as requested
        return Status::make(StatusCode::kMisuse,
                            "db: transaction already finished");
    }
    ctx->explicitTx = false;
    rollbackTx(*ctx, TxOutcome::kRolledBack);
    return Status::ok();
}

void
Database::commitDetachedAsync(std::uint64_t id,
                              std::function<void(Status)> done)
{
    std::unique_ptr<TxContext> ctx = takeDetached(id);
    if (!ctx->explicitTx) {
        if (ctx->aborted) {
            StatusCode code = ctx->abortCode == StatusCode::kOk
                                  ? StatusCode::kAborted
                                  : ctx->abortCode;
            done(Status::make(
                code, "db: transaction was rolled back by the engine"));
        } else {
            done(Status::make(StatusCode::kMisuse,
                              "db: transaction already finished"));
        }
        return;
    }
    ctx->explicitTx = false;
    WalShard &shard = wal_->shard(ctx->shardId);
    if (shard.entryCount() == 0) {
        // Nothing written: no fences, no batch — complete inline.
        shard.retireEmpty();
        finishCommitLocal(*ctx);
        ctx->lastOutcome = TxOutcome::kCommitted;
        done(Status::ok());
        return;
    }
    TxContext *raw = ctx.release();
    coordinator_->commitAsync(
        shard, [this, raw, done](std::exception_ptr err) {
            std::unique_ptr<TxContext> reclaim(raw);
            if (err) {
                // The drain died of a simulated power failure; the
                // session's durability is whatever recovery decides.
                done(Status::make(StatusCode::kAborted,
                                  "db: commit drain failed"));
                return;
            }
            finishCommitLocal(*reclaim);
            reclaim->lastOutcome = TxOutcome::kCommitted;
            done(Status::ok());
        });
}

std::size_t
Database::detachedCount() const
{
    SpinGuard g(ctxMu_);
    return detached_.size();
}

unsigned
Database::busyWalShards() const
{
    unsigned n = 0;
    for (unsigned i = 0; i < wal_->shardCount(); ++i)
        if (wal_->shard(i).txHeld())
            ++n;
    return n;
}

bool
Database::prepareTx2pc(Word txn_id)
{
    TxContext &ctx = txContext();
    if (!ctx.explicitTx)
        fatal("db: prepare without an open transaction");
    WalShard &shard = wal_->shard(ctx.shardId);
    if (shard.entryCount() == 0)
        return false; // nothing logged: yes-vote, no prepared state
    shard.prepare(txn_id);
    return true;
}

void
Database::publishCommitTsLocked(Word ts)
{
    TxContext &ctx = txContext();
    ctrls_[ctx.shardId].commitTs.store(ts, std::memory_order_release);
}

void
Database::finishPreparedTx(Word ts, bool prepared)
{
    TxContext &ctx = txContext();
    if (!ctx.explicitTx)
        fatal("db: finishPrepared without an open transaction");
    ctx.explicitTx = false;
    WalShard &shard = wal_->shard(ctx.shardId);
    if (prepared)
        shard.finishPrepared();
    else
        shard.retireEmpty();
    rows_->finishCommit(ctx.rowTx, ctx.rowTx.saveImages ? ts : 0);
    endTxCommon(ctx);
    ctx.lastOutcome = TxOutcome::kCommitted;
}

void
Database::begin()
{
    TxContext &ctx = txContext();
    if (ctx.explicitTx)
        fatal("db: nested transactions are not supported");
    ctx.aborted = false;
    ctx.abortCode = StatusCode::kOk;
    beginTx(ctx);
    ctx.explicitTx = true;
}

void
Database::commit()
{
    TxContext &ctx = txContext();
    if (!ctx.explicitTx) {
        if (ctx.aborted) {
            ctx.aborted = false;
            fatal("db: transaction was already rolled back "
                  "(undo log full)");
        }
        fatal("db: commit without begin");
    }
    ctx.explicitTx = false;
    commitTx(ctx);
}

void
Database::rollback()
{
    TxContext &ctx = txContext();
    if (!ctx.explicitTx) {
        if (ctx.aborted) {
            ctx.aborted = false; // already rolled back by the engine
            return;
        }
        fatal("db: rollback without begin");
    }
    ctx.explicitTx = false;
    rollbackTx(ctx, TxOutcome::kRolledBack);
}

bool
Database::inTransaction() const
{
    TxContext *ctx = txContextIfAny();
    return ctx && ctx->explicitTx;
}

TxOutcome
Database::lastTxOutcome() const
{
    TxContext *ctx = txContextIfAny();
    return ctx ? ctx->lastOutcome : TxOutcome::kNone;
}

unsigned
Database::currentTxShard()
{
    return txContext().shardId;
}

Word
Database::currentSnapshot() const
{
    TxContext *ctx = txContextIfAny();
    return (ctx != nullptr && ctx->explicitTx) ? ctx->snapshot
                                               : kNoSnapshot;
}

std::size_t
Database::tableIndexOrDie(const std::string &table)
{
    std::size_t idx = catalog_.tableIndex(table);
    if (idx == static_cast<std::size_t>(-1))
        fatal("db: no such table " + table);
    return idx;
}

ResultSet
Database::executeCreateTable(const TableSchema &schema)
{
    std::lock_guard<std::mutex> g(ddlMu_);
    catalog_.createTable(schema);
    rows_->ensureRegions();
    return ResultSet{};
}

void
Database::createTable(const TableSchema &schema)
{
    PhaseScope scope(timer_, "database");
    executeCreateTable(schema);
}

void
Database::persistRecord(const std::string &table, const DbRecord &record)
{
    PhaseScope scope(timer_, "database");
    std::size_t t = tableIndexOrDie(table);
    const TableSchema &schema = catalog_.tables()[t];
    if (record.values.size() != schema.columns.size())
        fatal("db: record shape mismatch for " + table);
    mutate([&](TxContext &ctx) {
        WalShard &shard = wal_->shard(ctx.shardId);
        std::int64_t pk = record.values[schema.pkColumn].i;
        if (!rows_->update(t, pk, record.values, record.dirtyMask,
                           shard, ctx.rowTx))
            if (!rows_->insert(t, record.values, shard, ctx.rowTx))
                fatal("db: persistRecord failed for " + table);
        return ResultSet{};
    });
}

bool
Database::updateRecord(const std::string &table,
                       const DbRecord &record)
{
    PhaseScope scope(timer_, "database");
    std::size_t t = tableIndexOrDie(table);
    const TableSchema &schema = catalog_.tables()[t];
    if (record.values.size() != schema.columns.size())
        fatal("db: record shape mismatch for " + table);
    bool updated = false;
    mutate([&](TxContext &ctx) {
        std::int64_t pk = record.values[schema.pkColumn].i;
        updated = rows_->update(t, pk, record.values,
                                record.dirtyMask,
                                wal_->shard(ctx.shardId), ctx.rowTx);
        return ResultSet{};
    });
    return updated;
}

bool
Database::fetchRecord(const std::string &table, std::int64_t pk,
                      DbRecord *out)
{
    PhaseScope scope(timer_, "database");
    std::size_t t = tableIndexOrDie(table);
    return rows_->fetch(t, pk, &out->values, currentSnapshot());
}

bool
Database::fetchForUpdate(const std::string &table, std::int64_t pk,
                         DbRecord *out)
{
    PhaseScope scope(timer_, "database");
    std::size_t t = tableIndexOrDie(table);
    bool found = false;
    mutate([&](TxContext &ctx) {
        found = rows_->fetchOwned(t, pk, &out->values, ctx.rowTx);
        return ResultSet{};
    });
    if (found)
        out->dirtyMask = ~0ull;
    return found;
}

void
Database::forEachPk(const std::string &table,
                    const std::function<void(std::int64_t)> &fn)
{
    PhaseScope scope(timer_, "database");
    std::size_t t = tableIndexOrDie(table);
    std::size_t pk_col = catalog_.tables()[t].pkColumn;
    rows_->scanAll(t, [&](const std::vector<DbValue> &row) {
        fn(row[pk_col].i);
    });
}

std::size_t
Database::versionChainDepth(const std::string &table, std::int64_t pk)
{
    return rows_->versionChainDepth(tableIndexOrDie(table), pk);
}

bool
Database::deleteRecord(const std::string &table, std::int64_t pk)
{
    PhaseScope scope(timer_, "database");
    std::size_t t = tableIndexOrDie(table);
    bool erased = false;
    mutate([&](TxContext &ctx) {
        erased = rows_->erase(t, pk, wal_->shard(ctx.shardId),
                              ctx.rowTx);
        return ResultSet{};
    });
    return erased;
}

void
Database::scanEq(const std::string &table, const std::string &column,
                 const DbValue &v,
                 const std::function<void(const std::vector<DbValue> &)>
                     &fn)
{
    PhaseScope scope(timer_, "database");
    std::size_t t = tableIndexOrDie(table);
    std::size_t c = catalog_.tables()[t].columnIndex(column);
    if (c == static_cast<std::size_t>(-1))
        fatal("db: no such column " + column);
    rows_->scanEq(t, c, v, fn, currentSnapshot());
}

bool
Database::fetchRecordAt(const std::string &table, std::int64_t pk,
                        DbRecord *out, Word snapshot)
{
    PhaseScope scope(timer_, "database");
    std::size_t t = tableIndexOrDie(table);
    return rows_->fetch(t, pk, &out->values, snapshot);
}

void
Database::scanEqAt(const std::string &table, const std::string &column,
                   const DbValue &v,
                   const std::function<void(const std::vector<DbValue> &)>
                       &fn,
                   Word snapshot)
{
    PhaseScope scope(timer_, "database");
    std::size_t t = tableIndexOrDie(table);
    std::size_t c = catalog_.tables()[t].columnIndex(column);
    if (c == static_cast<std::size_t>(-1))
        fatal("db: no such column " + column);
    rows_->scanEq(t, c, v, fn, snapshot);
}

std::size_t
Database::rowCount(const std::string &table)
{
    return rows_->rowCount(tableIndexOrDie(table));
}

ResultSet
Database::executeSql(const std::string &sql)
{
    // The JDBC path: text -> tokens -> AST -> typed execution.
    SqlStatement stmt;
    {
        PhaseScope scope(timer_, "transformation");
        stmt = parseSql(sql);
    }
    PhaseScope scope(timer_, "database");
    return execute(stmt);
}

ResultSet
Database::execute(const SqlStatement &stmt)
{
    ResultSet rs;
    switch (stmt.kind) {
      case SqlStatement::Kind::kCreateTable:
        return executeCreateTable(stmt.schema);
      case SqlStatement::Kind::kInsert: {
        std::size_t t = tableIndexOrDie(stmt.table);
        const TableSchema &schema = catalog_.tables()[t];
        std::vector<DbValue> row(schema.columns.size());
        for (std::size_t i = 0; i < stmt.insertColumns.size(); ++i) {
            std::size_t c = schema.columnIndex(stmt.insertColumns[i]);
            if (c == static_cast<std::size_t>(-1))
                fatal("db: no such column " + stmt.insertColumns[i]);
            row[c] = stmt.insertValues[i];
        }
        return mutate([&](TxContext &ctx) {
            ResultSet out;
            if (!rows_->insert(t, row, wal_->shard(ctx.shardId),
                               ctx.rowTx))
                fatal("db: duplicate primary key inserting into " +
                      stmt.table);
            out.affected = 1;
            return out;
        });
      }
      case SqlStatement::Kind::kSelect: {
        std::size_t t = tableIndexOrDie(stmt.table);
        const TableSchema &schema = catalog_.tables()[t];
        Word snap = currentSnapshot();
        std::vector<std::size_t> cols;
        if (stmt.selectAll) {
            for (std::size_t c = 0; c < schema.columns.size(); ++c)
                cols.push_back(c);
        } else {
            for (const std::string &name : stmt.selectColumns) {
                std::size_t c = schema.columnIndex(name);
                if (c == static_cast<std::size_t>(-1))
                    fatal("db: no such column " + name);
                cols.push_back(c);
            }
        }
        for (std::size_t c : cols)
            rs.columns.push_back(schema.columns[c].name);

        auto emit = [&](const std::vector<DbValue> &row) {
            std::vector<DbValue> projected;
            projected.reserve(cols.size());
            for (std::size_t c : cols)
                projected.push_back(row[c]);
            rs.rows.push_back(std::move(projected));
        };

        if (stmt.hasWhere) {
            std::size_t wc = schema.columnIndex(stmt.whereColumn);
            if (wc == static_cast<std::size_t>(-1))
                fatal("db: no such column " + stmt.whereColumn);
            if (wc == schema.pkColumn &&
                stmt.whereValue.type == DbType::kI64) {
                std::vector<DbValue> row;
                if (rows_->fetch(t, stmt.whereValue.i, &row, snap))
                    emit(row);
            } else {
                rows_->scanEq(t, wc, stmt.whereValue, emit, snap);
            }
        } else {
            rows_->scanAll(t, emit, snap);
        }
        return rs;
      }
      case SqlStatement::Kind::kUpdate: {
        std::size_t t = tableIndexOrDie(stmt.table);
        const TableSchema &schema = catalog_.tables()[t];
        if (schema.columnIndex(stmt.whereColumn) != schema.pkColumn)
            fatal("db: UPDATE supports pk predicates only");
        std::vector<DbValue> row(schema.columns.size());
        std::uint64_t mask = 0;
        for (const auto &[col, val] : stmt.assignments) {
            std::size_t c = schema.columnIndex(col);
            if (c == static_cast<std::size_t>(-1))
                fatal("db: no such column " + col);
            row[c] = val;
            mask |= 1ull << c;
        }
        return mutate([&](TxContext &ctx) {
            ResultSet out;
            out.affected = rows_->update(t, stmt.whereValue.i, row,
                                         mask, wal_->shard(ctx.shardId),
                                         ctx.rowTx)
                               ? 1
                               : 0;
            return out;
        });
      }
      case SqlStatement::Kind::kDelete: {
        std::size_t t = tableIndexOrDie(stmt.table);
        const TableSchema &schema = catalog_.tables()[t];
        std::size_t wc = schema.columnIndex(stmt.whereColumn);
        return mutate([&](TxContext &ctx) {
            ResultSet out;
            WalShard &shard = wal_->shard(ctx.shardId);
            if (wc == schema.pkColumn &&
                stmt.whereValue.type == DbType::kI64) {
                out.affected = rows_->erase(t, stmt.whereValue.i, shard,
                                            ctx.rowTx)
                                   ? 1
                                   : 0;
            } else {
                // Non-pk delete: collect pks then erase.
                std::vector<std::int64_t> pks;
                rows_->scanEq(t, wc, stmt.whereValue,
                              [&](const std::vector<DbValue> &row) {
                                  pks.push_back(row[schema.pkColumn].i);
                              });
                for (std::int64_t pk : pks)
                    out.affected +=
                        rows_->erase(t, pk, shard, ctx.rowTx) ? 1 : 0;
            }
            return out;
        });
      }
    }
    panic("db: unhandled statement kind");
}

void
Database::crash(CrashMode mode, std::uint64_t seed,
                const WalShard::ResolveFn &is_committed)
{
    {
        SpinGuard g(ctxMu_);
        ctxs_.clear();
        // Parked sessions died with the power; their shard tokens
        // are re-zeroed by recovery below.
        detached_.clear();
        generation_.fetch_add(1, std::memory_order_release);
    }
    coordinator_->resetAfterCrash();
    // Shared clocks are reset once per member — idempotent, and the
    // quiesced-caller contract makes the repeats harmless. The clock
    // value itself ratchets back up from recovered row versions.
    clock_->resetAfterCrash();
    for (unsigned i = 0; i < wal_->shardCount(); ++i) {
        ctrls_[i].seq.store(0, std::memory_order_relaxed);
        ctrls_[i].commitTs.store(0, std::memory_order_relaxed);
        ctrls_[i].waitingFor.store(0, std::memory_order_relaxed);
    }
    dev_->crash(mode, seed);
    wal_->recover(is_committed);
    catalog_.reload();
    rows_ = std::make_unique<RowStore>(
        dev_.get(), reinterpret_cast<Addr>(dev_->base()) + rowsOff_,
        cfg_.rowRegionSize, &catalog_, cfg_.rowsPerTable, ctrls_.get(),
        wal_->shardCount(), clock_);
    rows_->syncWithCatalog();
}

} // namespace db
} // namespace espresso
