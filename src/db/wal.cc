#include "db/wal.hh"

#include <cstring>
#include <thread>

#include "nvm/nvm_device.hh"

namespace espresso {
namespace db {

namespace {

/** Entries per segment are bounded so epochSeq can pack both. */
constexpr Word kSeqBits = 20;
constexpr Word kMaxEntries = Word(1) << kSeqBits;

Word
makeEpochSeq(Word epoch, Word seq)
{
    return (epoch << kSeqBits) | (seq & (kMaxEntries - 1));
}

} // namespace

WalShard::WalShard(NvmDevice *device, Addr base, std::size_t size,
                   unsigned id)
    : device_(device), base_(base), size_(size), id_(id)
{}

bool
WalShard::active() const
{
    return header()->active != 0;
}

void
WalShard::begin()
{
    if (active())
        panic(strCat("db wal: shard ", id_,
                     ": transaction already open"));
    Header *h = header();
    h->count = 0;
    h->used = 0;
    h->epoch += 1;
    h->active = 1;
    h->prepared = 0;
    device_->flush(base_, sizeof(Header));
    // No fence: the first logRange's fence publishes the header
    // together with the first entry; an empty transaction has
    // nothing to roll back either way.
    logged_.clear();
}

Word
WalShard::checksum(const Entry *entry)
{
    // FNV-1a over the identifying fields and the payload.
    Word h = 1469598103934665603ull;
    auto mix = [&h](const void *data, std::size_t n) {
        const auto *p = static_cast<const std::uint8_t *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            h ^= p[i];
            h *= 1099511628211ull;
        }
    };
    mix(&entry->deviceOffset, sizeof(Word));
    mix(&entry->length, sizeof(Word));
    mix(&entry->epochSeq, sizeof(Word));
    mix(entry + 1, entry->length);
    return h;
}

void
WalShard::logRange(Addr addr, std::size_t len)
{
    if (!active())
        panic(strCat("db wal: shard ", id_,
                     ": logRange outside a transaction"));
    auto it = logged_.find(addr);
    if (it != logged_.end() && it->second >= len)
        return; // old image already durable for this range
    Header *h = header();
    std::size_t entry_bytes = sizeof(Entry) + alignUp(len, kWordSize);
    if (h->used + entry_bytes > capacity() || h->count + 1 >= kMaxEntries)
        throw WalFullError(strCat(
            "db wal: shard ", id_, ": undo segment full (used ",
            h->used, " of ", capacity(), " bytes, entry needs ",
            entry_bytes, ")"));
    Addr entry_addr = payload() + h->used;
    auto *entry = reinterpret_cast<Entry *>(entry_addr);
    entry->deviceOffset = device_->toOffset(addr);
    entry->length = len;
    entry->epochSeq = makeEpochSeq(h->epoch, h->count);
    std::memcpy(entry + 1, reinterpret_cast<const void *>(addr), len);
    entry->check = checksum(entry);
    device_->flush(entry_addr, entry_bytes);
    h->used += entry_bytes;
    h->count += 1;
    device_->flush(base_, sizeof(Header));
    // One fence publishes entry + header (+ the begin's active bit).
    // At most the tail entry can be torn by a power failure, and its
    // target row has not been overwritten yet.
    device_->fence();
    logged_[addr] = std::max(it != logged_.end() ? it->second : 0, len);
}

void
WalShard::stageCommit()
{
    Header *h = header();
    Addr cursor = payload();
    for (Word i = 0; i < h->count; ++i) {
        auto *entry = reinterpret_cast<Entry *>(cursor);
        device_->flush(device_->toAddr(entry->deviceOffset),
                       entry->length);
        cursor += sizeof(Entry) + alignUp(entry->length, kWordSize);
    }
}

void
WalShard::stageRetire()
{
    Header *h = header();
    h->active = 0;
    h->prepared = 0;
    h->committed += 1;
    device_->flush(base_, sizeof(Header));
    logged_.clear();
}

void
WalShard::prepare(Word txn_id)
{
    if (!active())
        panic(strCat("db wal: shard ", id_,
                     ": prepare outside a transaction"));
    if (txn_id == 0)
        panic(strCat("db wal: shard ", id_, ": prepare with id 0"));
    // Stage the new row images and the prepared mark, then one fence:
    // after it, this member can be rolled forward by header state
    // alone (nothing further needs to be copied in).
    stageCommit();
    Header *h = header();
    h->prepared = txn_id;
    device_->flush(base_, sizeof(Header));
    device_->fence();
}

void
WalShard::finishPrepared()
{
    Header *h = header();
    if (!active() || h->prepared == 0)
        panic(strCat("db wal: shard ", id_,
                     ": finishPrepared without a prepared txn"));
    h->active = 0;
    h->prepared = 0;
    h->committed += 1;
    device_->persist(base_, sizeof(Header));
    logged_.clear();
}

void
WalShard::commitEager()
{
    if (!active())
        panic(strCat("db wal: shard ", id_,
                     ": commit outside a transaction"));
    stageCommit();
    device_->fence();
    stageRetire();
    device_->fence();
}

void
WalShard::rollback(const std::vector<Entry *> &entries,
                   const UndoFn &on_undone, const RestoreFn &restore)
{
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
        Addr dst = device_->toAddr((*it)->deviceOffset);
        const auto *src = reinterpret_cast<const std::uint8_t *>(
            *it + 1);
        if (restore)
            restore(dst, src, (*it)->length);
        else
            std::memcpy(reinterpret_cast<void *>(dst), src,
                        (*it)->length);
        device_->flush(dst, (*it)->length);
    }
    device_->fence();
    if (on_undone) {
        for (auto it = entries.rbegin(); it != entries.rend(); ++it)
            on_undone(device_->toAddr((*it)->deviceOffset),
                      (*it)->length);
    }
}

void
WalShard::rollbackAndRetire(const UndoFn &on_undone,
                            const RestoreFn &restore)
{
    if (!active())
        panic(strCat("db wal: shard ", id_,
                     ": rollback outside a transaction"));
    rollback(walkValidEntries(), on_undone, restore);
    retire();
}

void
WalShard::retire()
{
    Header *h = header();
    h->active = 0;
    h->prepared = 0;
    device_->persist(base_, sizeof(Header));
    logged_.clear();
}

void
WalShard::retireEmpty()
{
    if (!active())
        panic(strCat("db wal: shard ", id_,
                     ": commit outside a transaction"));
    if (header()->count != 0)
        panic(strCat("db wal: shard ", id_,
                     ": retireEmpty with logged entries"));
    // Nothing was written, so nothing needs a fence: whether or not
    // the cleared active bit (or the begin's set bit) ever becomes
    // durable, recovery finds zero entries to roll back.
    Header *h = header();
    h->active = 0;
    h->committed += 1;
    device_->flush(base_, sizeof(Header));
    logged_.clear();
}

bool
WalShard::headerSane() const
{
    const Header *h = header();
    return h->active == 1 && h->used <= capacity() &&
           h->used % kWordSize == 0 && h->count < kMaxEntries &&
           h->count * sizeof(Entry) <= h->used;
}

std::vector<WalShard::Entry *>
WalShard::walkValidEntries() const
{
    const Header *h = header();
    std::vector<Entry *> out;
    Addr cursor = payload();
    Addr end = payload() + std::min<std::size_t>(h->used, capacity());
    for (Word i = 0; i < h->count; ++i) {
        if (cursor + sizeof(Entry) > end)
            break;
        auto *entry = reinterpret_cast<Entry *>(cursor);
        std::size_t len = entry->length;
        if (len == 0 || len > capacity())
            break;
        std::size_t entry_bytes = sizeof(Entry) + alignUp(len, kWordSize);
        if (cursor + entry_bytes > end)
            break;
        if (entry->epochSeq != makeEpochSeq(h->epoch, i))
            break;
        if (entry->deviceOffset + len > device_->size())
            break;
        if (checksum(entry) != entry->check)
            break;
        out.push_back(entry);
        cursor += entry_bytes;
    }
    return out;
}

void
WalShard::recover(const ResolveFn &is_committed)
{
    busy_.store(0, std::memory_order_release);
    logged_.clear();
    Header *h = header();
    if (h->active == 0) {
        if (h->prepared != 0) {
            // Unreachable by protocol (retire clears both words in
            // one line write), but scrub defensively.
            h->prepared = 0;
            device_->persist(base_, sizeof(Header));
        }
        return;
    }
    if (!headerSane()) {
        warn(strCat("db wal: shard ", id_,
                    ": corrupt undo segment header (active=",
                    h->active, " count=", h->count, " used=", h->used,
                    "); discarding segment"));
        h->active = 0;
        h->count = 0;
        h->used = 0;
        h->prepared = 0;
        device_->persist(base_, sizeof(Header));
        return;
    }
    if (h->prepared != 0 && is_committed && is_committed(h->prepared)) {
        // Roll forward: the decision record is durable, and it was
        // only written after every member's prepare fence — so this
        // member's new images are already durable. Retire as a
        // committed transaction.
        h->active = 0;
        h->prepared = 0;
        h->committed += 1;
        device_->persist(base_, sizeof(Header));
        return;
    }
    // No durable decision: presumed abort.
    std::vector<Entry *> entries = walkValidEntries();
    if (entries.size() != h->count) {
        warn(strCat("db wal: shard ", id_, ": torn tail — rolling back ",
                    entries.size(), " of ", h->count, " entries"));
    }
    rollback(entries, {});
    retire();
}

bool
WalShard::tryAcquireTx()
{
    Word expect = 0;
    return busy_.compare_exchange_strong(expect, 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
}

void
WalShard::acquireTx()
{
    while (!tryAcquireTx()) {
        // Die with a simulated power failure instead of spinning on
        // a shard whose owner was killed by it.
        CrashInjector *inj = device_->injector();
        if (inj && inj->tripped())
            throw SimulatedCrash();
        std::this_thread::yield();
    }
}

void
WalShard::releaseTx()
{
    busy_.store(0, std::memory_order_release);
}

Wal::Wal(NvmDevice *device, Addr base, std::size_t size, unsigned shards)
{
    if (shards == 0)
        shards = 1;
    std::size_t seg = alignDown(size / shards, kCacheLineSize);
    if (seg < kCacheLineSize + 256)
        fatal(strCat("db wal: region too small for ", shards,
                     " shards (", size, " bytes)"));
    for (unsigned i = 0; i < shards; ++i)
        shards_.emplace_back(device, base + i * seg, seg, i);
}

void
Wal::recover(const WalShard::ResolveFn &is_committed)
{
    for (WalShard &shard : shards_)
        shard.recover(is_committed);
}

} // namespace db
} // namespace espresso
