#include "db/wal.hh"

#include <cstring>
#include <vector>

#include "nvm/nvm_device.hh"
#include "util/logging.hh"

namespace espresso {
namespace db {

Wal::Wal(NvmDevice *device, Addr base, std::size_t size)
    : device_(device), base_(base), size_(size)
{}

bool
Wal::active() const
{
    return header()->active != 0;
}

void
Wal::begin()
{
    if (active())
        panic("db wal: transaction already open");
    Header *h = header();
    h->count = 0;
    h->used = 0;
    device_->flush(base_, sizeof(Header));
    h->active = 1;
    device_->persist(reinterpret_cast<Addr>(&h->active), kWordSize);
}

void
Wal::logRange(Addr addr, std::size_t len)
{
    if (!active())
        panic("db wal: logRange outside a transaction");
    Header *h = header();
    std::size_t entry_bytes = sizeof(Entry) + alignUp(len, kWordSize);
    if (kCacheLineSize + h->used + entry_bytes > size_)
        fatal("db wal: log full");
    Addr entry_addr = payload() + h->used;
    auto *entry = reinterpret_cast<Entry *>(entry_addr);
    entry->deviceOffset = device_->toOffset(addr);
    entry->length = len;
    std::memcpy(entry + 1, reinterpret_cast<const void *>(addr), len);
    device_->flush(entry_addr, entry_bytes);
    device_->fence();
    h->used += entry_bytes;
    h->count += 1;
    device_->persist(base_, sizeof(Header));
}

void
Wal::commit()
{
    if (!active())
        panic("db wal: commit outside a transaction");
    Header *h = header();
    Addr cursor = payload();
    for (Word i = 0; i < h->count; ++i) {
        auto *entry = reinterpret_cast<Entry *>(cursor);
        device_->flush(device_->toAddr(entry->deviceOffset),
                       entry->length);
        cursor += sizeof(Entry) + alignUp(entry->length, kWordSize);
    }
    device_->fence();
    retire();
}

void
Wal::rollback()
{
    Header *h = header();
    std::vector<Entry *> entries;
    Addr cursor = payload();
    for (Word i = 0; i < h->count; ++i) {
        auto *entry = reinterpret_cast<Entry *>(cursor);
        entries.push_back(entry);
        cursor += sizeof(Entry) + alignUp(entry->length, kWordSize);
    }
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
        Addr dst = device_->toAddr((*it)->deviceOffset);
        std::memcpy(reinterpret_cast<void *>(dst), *it + 1,
                    (*it)->length);
        device_->flush(dst, (*it)->length);
    }
    device_->fence();
}

void
Wal::rollbackAndRetire()
{
    if (!active())
        panic("db wal: rollback outside a transaction");
    rollback();
    retire();
}

void
Wal::retire()
{
    Header *h = header();
    h->active = 0;
    device_->persist(reinterpret_cast<Addr>(&h->active), kWordSize);
}

void
Wal::recover()
{
    if (active()) {
        rollback();
        retire();
    }
}

} // namespace db
} // namespace espresso
