/**
 * @file
 * Database values: typed cells, the fixed-width persistent slot
 * encoding used by the row store, and the SQL-literal text codec.
 *
 * The text codec is deliberately load-bearing: the JPA path turns
 * every value into a SQL literal and back (object → SQL text → typed
 * cell), which is precisely the "transformation" overhead Figures 4
 * and 17 attribute; the PJO path ships DbValues directly and skips
 * both conversions.
 */

#ifndef ESPRESSO_DB_VALUE_CODEC_HH
#define ESPRESSO_DB_VALUE_CODEC_HH

#include <cstdint>
#include <string>

namespace espresso {
namespace db {

/** Column/value type. */
enum class DbType : std::uint8_t
{
    kNull = 0,
    kI64,
    kF64,
    kStr,
};

const char *dbTypeName(DbType t);

/** One typed cell. */
struct DbValue
{
    DbType type = DbType::kNull;
    std::int64_t i = 0;
    double d = 0.0;
    std::string s;

    static DbValue null() { return DbValue{}; }

    static DbValue
    ofI64(std::int64_t v)
    {
        DbValue out;
        out.type = DbType::kI64;
        out.i = v;
        return out;
    }

    static DbValue
    ofF64(double v)
    {
        DbValue out;
        out.type = DbType::kF64;
        out.d = v;
        return out;
    }

    static DbValue
    ofStr(std::string v)
    {
        DbValue out;
        out.type = DbType::kStr;
        out.s = std::move(v);
        return out;
    }

    bool operator==(const DbValue &o) const;
};

/** Fixed persistent slot: 8-byte tag + 56-byte payload. */
constexpr std::size_t kValueSlotBytes = 64;
constexpr std::size_t kMaxInlineString = 55;

/** Encode @p v into a 64-byte slot. Strings longer than
 * kMaxInlineString are fatal (schema restriction). */
void encodeValueSlot(std::uint8_t *slot, const DbValue &v);

/** Decode a 64-byte slot. */
DbValue decodeValueSlot(const std::uint8_t *slot);

/** Format @p v as a SQL literal (quotes and escapes strings). */
std::string toSqlLiteral(const DbValue &v);

} // namespace db
} // namespace espresso

#endif // ESPRESSO_DB_VALUE_CODEC_HH
