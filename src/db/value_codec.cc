#include "db/value_codec.hh"

#include <cmath>
#include <cstring>

#include "util/logging.hh"

namespace espresso {
namespace db {

const char *
dbTypeName(DbType t)
{
    switch (t) {
      case DbType::kNull: return "NULL";
      case DbType::kI64: return "BIGINT";
      case DbType::kF64: return "DOUBLE";
      case DbType::kStr: return "VARCHAR";
    }
    panic("unknown DbType");
}

bool
DbValue::operator==(const DbValue &o) const
{
    if (type != o.type)
        return false;
    switch (type) {
      case DbType::kNull: return true;
      case DbType::kI64: return i == o.i;
      case DbType::kF64: return d == o.d;
      case DbType::kStr: return s == o.s;
    }
    return false;
}

void
encodeValueSlot(std::uint8_t *slot, const DbValue &v)
{
    std::memset(slot, 0, kValueSlotBytes);
    slot[0] = static_cast<std::uint8_t>(v.type);
    switch (v.type) {
      case DbType::kNull:
        break;
      case DbType::kI64:
        std::memcpy(slot + 8, &v.i, 8);
        break;
      case DbType::kF64:
        std::memcpy(slot + 8, &v.d, 8);
        break;
      case DbType::kStr:
        if (v.s.size() > kMaxInlineString)
            fatal("db: string exceeds inline slot: " + v.s);
        slot[1] = static_cast<std::uint8_t>(v.s.size());
        std::memcpy(slot + 8, v.s.data(), v.s.size());
        break;
    }
}

DbValue
decodeValueSlot(const std::uint8_t *slot)
{
    DbValue v;
    v.type = static_cast<DbType>(slot[0]);
    switch (v.type) {
      case DbType::kNull:
        break;
      case DbType::kI64:
        std::memcpy(&v.i, slot + 8, 8);
        break;
      case DbType::kF64:
        std::memcpy(&v.d, slot + 8, 8);
        break;
      case DbType::kStr:
        v.s.assign(reinterpret_cast<const char *>(slot + 8), slot[1]);
        break;
      default:
        panic("db: corrupted value slot tag");
    }
    return v;
}

std::string
toSqlLiteral(const DbValue &v)
{
    switch (v.type) {
      case DbType::kNull:
        return "NULL";
      case DbType::kI64:
        return std::to_string(v.i);
      case DbType::kF64: {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", v.d);
        return buf;
      }
      case DbType::kStr: {
        std::string out;
        out.reserve(v.s.size() + 2);
        out.push_back('\'');
        for (char c : v.s) {
            if (c == '\'')
                out.push_back('\''); // SQL doubling escape
            out.push_back(c);
        }
        out.push_back('\'');
        return out;
      }
    }
    panic("unknown DbType");
}

} // namespace db
} // namespace espresso
