/**
 * @file
 * Unified transaction status codes for the database API surface.
 *
 * The engine historically mixed failure modes: WalFullError
 * exceptions, fatal panics, bool returns and the per-thread
 * TxOutcome side channel. The Txn handle API collapses all of them
 * into one Status returned from Txn::commit(); WalFullError stays an
 * exception only inside the WAL layer, and the handle layer converts
 * it (and the new abort reasons) into codes.
 */

#ifndef ESPRESSO_DB_STATUS_HH
#define ESPRESSO_DB_STATUS_HH

#include <string>

#include "util/logging.hh"

namespace espresso {
namespace db {

/** Why a transaction (or statement) finished the way it did. */
enum class StatusCode
{
    kOk = 0,

    /** The transaction outgrew its undo segment and was rolled
     * back. */
    kWalFull,

    /** The transaction was chosen as the deadlock victim and rolled
     * back; retry it. */
    kDeadlock,

    /** First-committer-wins: a snapshot transaction tried to write a
     * row committed after its snapshot was taken. Rolled back. */
    kConflict,

    /** API misuse (commit without begin, double rollback, use after
     * abort). */
    kMisuse,

    /** A statement inside the transaction failed and the transaction
     * was rolled back. */
    kAborted,

    /** The engine is saturated and declined the work. On begin: no
     * WAL shard token was free, nothing was opened — retry later. On
     * a statement inside a no-wait transaction: a bounded lock wait
     * expired and the whole transaction was rolled back (the net
     * front door's workers must never park on another session's
     * row lock). */
    kBusy,
};

/** Value-type result of Txn::commit() and friends. */
class Status
{
  public:
    Status() = default;

    static Status
    ok()
    {
        return Status();
    }

    static Status
    make(StatusCode code, std::string msg)
    {
        Status s;
        s.code_ = code;
        s.message_ = std::move(msg);
        return s;
    }

    bool isOk() const { return code_ == StatusCode::kOk; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    const char *
    codeName() const
    {
        switch (code_) {
        case StatusCode::kOk:
            return "ok";
        case StatusCode::kWalFull:
            return "wal-full";
        case StatusCode::kDeadlock:
            return "deadlock";
        case StatusCode::kConflict:
            return "conflict";
        case StatusCode::kMisuse:
            return "misuse";
        case StatusCode::kAborted:
            return "aborted";
        case StatusCode::kBusy:
            return "busy";
        }
        return "unknown";
    }

  private:
    StatusCode code_ = StatusCode::kOk;
    std::string message_;
};

/**
 * Thrown by the row layer when a transaction must abort mid-flight
 * (deadlock victim, snapshot write conflict). The engine catches it,
 * rolls the transaction back, and surfaces it as a Status through
 * Txn::commit() — it escapes to callers of the legacy implicit API
 * so their catch(FatalError) paths keep working.
 */
class TxnAbortError : public FatalError
{
  public:
    TxnAbortError(StatusCode code, const std::string &msg)
        : FatalError(msg), code_(code)
    {}

    StatusCode code() const { return code_; }

  private:
    StatusCode code_;
};

} // namespace db
} // namespace espresso

#endif // ESPRESSO_DB_STATUS_HH
