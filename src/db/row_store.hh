/**
 * @file
 * Slotted fixed-width row storage on the database device, with a
 * volatile primary-key hash index per table (rebuilt on open, the
 * way H2 rebuilds/loads in-memory indexes).
 *
 * Every mutation logs the old row image through the caller's Wal
 * before touching it, so statement atomicity and crash rollback come
 * for free.
 */

#ifndef ESPRESSO_DB_ROW_STORE_HH
#define ESPRESSO_DB_ROW_STORE_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "db/catalog.hh"
#include "db/wal.hh"

namespace espresso {

class NvmDevice;

namespace db {

/** All tables' row regions. */
class RowStore
{
  public:
    RowStore() = default;

    /**
     * @param device backing device.
     * @param base row-region base address.
     * @param size region capacity in bytes.
     * @param catalog schema source.
     * @param rows_per_table fixed table capacity.
     */
    RowStore(NvmDevice *device, Addr base, std::size_t size,
             Catalog *catalog, std::size_t rows_per_table);

    /** Insert; false when the primary key already exists. */
    bool insert(std::size_t table, const std::vector<DbValue> &row,
                Wal &wal);

    /**
     * Update columns selected by @p dirty_mask (bit per column; the
     * pk column is never rewritten); false when the pk is absent.
     */
    bool update(std::size_t table, std::int64_t pk,
                const std::vector<DbValue> &row, std::uint64_t dirty_mask,
                Wal &wal);

    /** Delete by pk; false when absent. */
    bool erase(std::size_t table, std::int64_t pk, Wal &wal);

    /** Point lookup by pk. */
    bool fetch(std::size_t table, std::int64_t pk,
               std::vector<DbValue> *out) const;

    /** Scan rows where column @p col equals @p v. */
    void scanEq(std::size_t table, std::size_t col, const DbValue &v,
                const std::function<void(const std::vector<DbValue> &)>
                    &fn) const;

    /** Visit every live row. */
    void scanAll(std::size_t table,
                 const std::function<void(const std::vector<DbValue> &)>
                     &fn) const;

    /** Number of live rows. */
    std::size_t rowCount(std::size_t table) const;

    /** Ensure a region exists for every cataloged table (DDL hook),
     * and rebuild the volatile pk indexes (open hook). */
    void syncWithCatalog();

  private:
    struct TableRegion
    {
        Addr base = 0;
        std::size_t capacity = 0;
        std::unordered_map<std::int64_t, std::size_t> pkIndex;
        /** Secondary equality index (schema.indexColumn). */
        std::unordered_multimap<std::int64_t, std::size_t> eqIndex;
        std::vector<std::size_t> freeRows;
        std::size_t highWater = 0;
    };

    void eqIndexErase(TableRegion &region, std::int64_t key,
                      std::size_t idx);
    db::DbValue cellAt(const TableRegion &region, std::size_t idx,
                       std::size_t row_bytes, std::size_t col) const;

    Addr rowAddr(const TableRegion &region, std::size_t idx,
                 std::size_t row_bytes) const
    {
        return region.base + idx * row_bytes;
    }

    void writeRow(std::size_t table, TableRegion &region,
                  std::size_t idx, const std::vector<DbValue> &row,
                  std::uint64_t dirty_mask, Wal &wal, bool fresh);

    NvmDevice *device_ = nullptr;
    Addr base_ = 0;
    std::size_t size_ = 0;
    Catalog *catalog_ = nullptr;
    std::size_t rowsPerTable_ = 0;
    std::size_t allocated_ = 0;
    std::vector<TableRegion> regions_;
};

} // namespace db
} // namespace espresso

#endif // ESPRESSO_DB_ROW_STORE_HH
