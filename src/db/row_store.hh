/**
 * @file
 * Slotted fixed-width row storage on the database device, with a
 * volatile primary-key hash index per table (rebuilt on open, the
 * way H2 rebuilds/loads in-memory indexes).
 *
 * Every mutation logs the old row image through the caller's WAL
 * shard before touching it, so statement atomicity and crash
 * rollback come for free.
 *
 * Concurrency (PR 4): many transactions mutate one table at once.
 *  - The volatile indexes (pkIndex/eqIndex/freeRows/highWater) sit
 *    behind one short per-table spinlock (`indexMu`).
 *  - Row bytes are copied under striped per-row latches, so readers
 *    never observe a torn row.
 *  - A writing transaction additionally claims the row's owner word
 *    and keeps it until commit/rollback (strict two-phase on
 *    writes): two in-flight transactions can never both hold undo
 *    images of one row, which is what makes undo-rollback of one
 *    transaction unable to clobber another's committed write.
 *  - Writers that close a wait cycle are detected (waits-for walk
 *    over the TxnCtrl blocks) and the youngest cycle member aborts
 *    with StatusCode::kDeadlock instead of spinning forever.
 *  - erase() defers both the slot's return to the free list and the
 *    pk/eq index removals until commit, so a rolled-back delete
 *    never races a reuse of its slot or its primary key; the
 *    deleting transaction itself may still re-insert the pk.
 *
 * MVCC (PR 6): row header word 1 is the version word — the row's
 * commit timestamp, or a dirty marker naming the in-flight writer.
 * Once any snapshot has been taken (SnapshotClock::saveMode),
 * writers push the pre-image of each row they touch onto a volatile
 * per-slot version chain before dirtying it; snapshot readers
 * resolve each row to the newest version committed at or before
 * their snapshot, walking the chain when the current bytes are too
 * new. Committed deletes whose timestamp is newer than the oldest
 * active snapshot become gravestones: the slot, pk mapping, and
 * chain stay put (readers still resolve the dead row's history)
 * until no snapshot needs them, then a lazy sweep reaps them.
 * Before the first snapshot ever, all of this is pass-through.
 */

#ifndef ESPRESSO_DB_ROW_STORE_HH
#define ESPRESSO_DB_ROW_STORE_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "db/catalog.hh"
#include "db/txn.hh"
#include "db/wal.hh"
#include "util/spin.hh"

namespace espresso {

class NvmDevice;

namespace db {

/**
 * Per-transaction row-store write state: the rows this transaction
 * has write-locked, and slot frees deferred to commit. Owned by the
 * engine's TxContext; token is unique among in-flight transactions.
 */
struct RowTxState
{
    Word token = 0;
    /** Maintain version chains + dirty markers (clock save mode). */
    bool saveImages = false;
    /** Bounded write-lock wait: abort with StatusCode::kBusy after
     * this many 256-spin rounds instead of waiting forever (0 =
     * unbounded). No-wait transactions — the network front door's
     * event-loop sessions — set this so a worker thread can never
     * park behind a lock whose holder is itself a parked session
     * waiting for that same worker to process its commit frame. */
    std::uint32_t maxSpinRounds = 0;
    /** Snapshot timestamp for SI write-conflict checks (0 = none). */
    Word snapshot = kNoSnapshot;
    std::vector<std::pair<std::size_t, std::size_t>> ownedRows;
    std::vector<std::pair<std::size_t, std::size_t>> deferredFree;
    /** Index removals deferred to commit — (table, pk, idx): an
     * uncommitted delete keeps its pk reserved, so a concurrent
     * same-pk insert can't slip in only to be resurrected over by
     * the delete's rollback. */
    std::vector<std::tuple<std::size_t, std::int64_t, std::size_t>>
        deferredPkErase;
    /** (table, eqKey, idx), for the secondary index. */
    std::vector<std::tuple<std::size_t, std::int64_t, std::size_t>>
        deferredEqErase;
};

/** All tables' row regions. */
class RowStore
{
  public:
    RowStore() = default;

    /**
     * @param device backing device.
     * @param base row-region base address.
     * @param size region capacity in bytes.
     * @param catalog schema source.
     * @param rows_per_table fixed table capacity.
     * @param ctrls in-flight transaction control blocks, indexed by
     *        token - 1 (may be null: no MVCC, no deadlock checks).
     * @param ctrl_count number of entries in @p ctrls.
     * @param clock the commit clock / snapshot registry (may be
     *        null alongside @p ctrls).
     */
    RowStore(NvmDevice *device, Addr base, std::size_t size,
             Catalog *catalog, std::size_t rows_per_table,
             TxnCtrl *ctrls = nullptr, unsigned ctrl_count = 0,
             SnapshotClock *clock = nullptr);

    RowStore(const RowStore &) = delete;
    RowStore &operator=(const RowStore &) = delete;

    /** Insert; false when the primary key already exists. */
    bool insert(std::size_t table, const std::vector<DbValue> &row,
                WalShard &wal, RowTxState &tx);

    /**
     * Update columns selected by @p dirty_mask (bit per column; the
     * pk column is never rewritten); false when the pk is absent.
     * @throws TxnAbortError(kConflict) when @p tx runs at snapshot
     * isolation and the row committed after its snapshot.
     */
    bool update(std::size_t table, std::int64_t pk,
                const std::vector<DbValue> &row, std::uint64_t dirty_mask,
                WalShard &wal, RowTxState &tx);

    /** Delete by pk; false when absent. Conflicts as update(). */
    bool erase(std::size_t table, std::int64_t pk, WalShard &wal,
               RowTxState &tx);

    /** Point lookup by pk. @p snapshot != kNoSnapshot resolves the
     * row as of that snapshot (version chains included). */
    bool fetch(std::size_t table, std::int64_t pk,
               std::vector<DbValue> *out,
               Word snapshot = kNoSnapshot) const;

    /**
     * Write-locking read: resolve @p pk, claim the row's owner word
     * for @p tx (strict 2PL — held to commit/rollback), and read the
     * current committed bytes. False when the pk is absent or the
     * row is committed-dead (gravestoned); an owner claimed on the
     * way is released with the transaction. The shard-repartition
     * row mover uses this so a row's move and concurrent updates of
     * it serialize on the owner word.
     */
    bool fetchOwned(std::size_t table, std::int64_t pk,
                    std::vector<DbValue> *out, RowTxState &tx);

    /** Version-chain length behind @p pk's slot (0 when absent);
     * regression hook for chain-trim bounds. */
    std::size_t versionChainDepth(std::size_t table,
                                  std::int64_t pk) const;

    /** Scan rows where column @p col equals @p v. */
    void scanEq(std::size_t table, std::size_t col, const DbValue &v,
                const std::function<void(const std::vector<DbValue> &)>
                    &fn,
                Word snapshot = kNoSnapshot) const;

    /** Visit every live row. */
    void scanAll(std::size_t table,
                 const std::function<void(const std::vector<DbValue> &)>
                     &fn,
                 Word snapshot = kNoSnapshot) const;

    /** Number of live rows (reaps expired gravestones first). */
    std::size_t rowCount(std::size_t table);

    /**
     * Apply deferred frees and release write locks (durable commit
     * already happened). @p commit_ts != 0 stamps every row this
     * transaction wrote with its commit timestamp; deletes too new
     * for the oldest active snapshot turn into gravestones instead
     * of freeing their slot.
     */
    void finishCommit(RowTxState &tx, Word commit_ts = 0);

    /** Discard deferred frees/erases, release write locks (the undo
     * restore + reconcileRange already repaired the indexes), and
     * return this transaction's unpublished insert slots to the
     * free list. */
    void finishRollback(RowTxState &tx);

    /**
     * Repair the volatile indexes for the row containing the undone
     * range [addr, addr+len): re-derive its pk/eq entries and free
     * state from the (now restored) persistent bytes.
     */
    void reconcileRange(Addr addr, std::size_t len);

    /**
     * Undo-restore @p len bytes from a log image into the device,
     * taking the row latch around the copy so snapshot readers never
     * observe a half-restored row. Ranges outside every row region
     * copy plain.
     */
    void restoreRange(Addr dst, const std::uint8_t *src,
                      std::size_t len);

    /** Create regions for newly cataloged tables (DDL hook); never
     * touches existing tables' indexes. */
    void ensureRegions();

    /** ensureRegions plus a full rebuild of every volatile index
     * from row state words (open/recovery hook; callers quiesced).
     * Scrubs dirty version markers left by dead transactions and
     * ratchets the commit clock past every recovered timestamp. */
    void syncWithCatalog();

  private:
    /** One saved pre-image on a slot's version chain. */
    struct RowVersion
    {
        Word version; ///< the image's (clean) commit timestamp
        std::vector<std::uint8_t> image; ///< full row bytes
    };

    /** A committed delete still visible to some snapshot. */
    struct Gravestone
    {
        std::int64_t pk;
        std::size_t idx;
        Word ts; ///< the delete's commit timestamp
    };

    struct TableRegion
    {
        static constexpr std::size_t kRowLatchStripes = 64;

        Addr base = 0;
        std::size_t capacity = 0;
        std::unordered_map<std::int64_t, std::size_t> pkIndex;
        /** Secondary equality index (schema.indexColumn). */
        std::unordered_multimap<std::int64_t, std::size_t> eqIndex;
        std::vector<std::size_t> freeRows;
        std::size_t highWater = 0;
        /** Committed deletes kept for active snapshots (indexMu). */
        std::vector<Gravestone> graveyard;

        /** Guards the six volatile members above. */
        mutable SpinLock indexMu;
        /** Striped row-byte latches (torn-read protection). */
        mutable std::array<SpinLock, kRowLatchStripes> rowLatches;
        /** Per-row write-owner tokens (0 = unowned). */
        std::unique_ptr<std::atomic<Word>[]> rowOwner;

        /** Guards versions (kept apart from indexMu: chain pushes
         * happen under row latches, index ops must stay cheap). */
        mutable SpinLock versionMu;
        /** slot index -> pre-images, oldest first. */
        mutable std::unordered_map<std::size_t, std::vector<RowVersion>>
            versions;
    };

    void initRegion(TableRegion &region, std::size_t table);
    void eqIndexErase(TableRegion &region, std::int64_t key,
                      std::size_t idx);
    void eqIndexEraseAllFor(TableRegion &region, std::size_t idx);
    db::DbValue cellAt(const TableRegion &region, std::size_t idx,
                       std::size_t row_bytes, std::size_t col) const;

    Addr rowAddr(const TableRegion &region, std::size_t idx,
                 std::size_t row_bytes) const
    {
        return region.base + idx * row_bytes;
    }

    SpinLock &
    rowLatch(const TableRegion &region, std::size_t idx) const
    {
        return region.rowLatches[idx % TableRegion::kRowLatchStripes];
    }

    /** Claim the row's owner word for @p tx (blocks on a conflicting
     * writer); true when newly acquired by this call.
     * @throws TxnAbortError(kDeadlock) when the wait closes a cycle
     * and @p tx is its youngest member. */
    bool acquireRow(std::size_t table, TableRegion &region,
                    std::size_t idx, RowTxState &tx);

    /** One-shot claim; false when another transaction holds the row.
     * Safe to call while holding indexMu (never spins). */
    bool tryAcquireRow(std::size_t table, TableRegion &region,
                       std::size_t idx, RowTxState &tx);
    void undoAcquire(TableRegion &region, std::size_t idx,
                     RowTxState &tx);

    /** Resolve pk -> owned row index, rechecking the mapping after
     * the owner claim; returns npos when the pk is absent. */
    std::size_t lockRowForWrite(std::size_t table, TableRegion &region,
                                std::int64_t pk, RowTxState &tx);

    /** Waits-for cycle check for the spinning transaction holding
     * token @p self (true = self is the youngest cycle member and
     * should abort). */
    bool detectDeadlock(Word self) const;

    /** Abort @p tx when the (owned, clean) row at @p addr committed
     * after tx.snapshot — snapshot isolation's first-committer-wins
     * rule. Call before logging/dirtying the row. */
    void checkWriteConflict(Addr addr, RowTxState &tx) const;

    /** Under the row latch, before the first byte of @p tx's write
     * lands: push the row's pre-image onto its version chain and
     * replace the clean version word with @p tx's dirty marker.
     * No-op when !tx.saveImages or the row is already ours-dirty. */
    void markRowWrite(const TableRegion &region, std::size_t idx,
                      Addr addr, std::size_t row_bytes,
                      RowTxState &tx);

    /** Under the row latch: resolve the row as of @p snapshot into
     * @p out (current bytes or a chain image); false = not visible.
     * @p want_pk pins the lookup to one pk (kNoPkFilter = any). */
    bool resolveRowLocked(const TableRegion &region, std::size_t idx,
                          Addr addr, const TableSchema &schema,
                          Word snapshot, std::int64_t want_pk,
                          bool filter_pk,
                          std::vector<DbValue> *out) const;

    /** Drop chain entries for @p idx no active snapshot can reach:
     * per active snapshot, keep only the newest image at or below
     * it (all entries go when no snapshot is active). Bounds chain
     * length by the active-snapshot count, not the update count. */
    void pruneChain(const TableRegion &region, std::size_t idx,
                    const std::vector<Word> &active) const;

    /** Under indexMu: reap gravestones whose delete every active
     * snapshot postdates — erase the pk/eq entries, free the slot. */
    void pruneGraveyardLocked(TableRegion &region, std::size_t t,
                              Word min_active);

    /** Under indexMu: is @p idx gravestoned? */
    bool graveyardHolds(const TableRegion &region,
                        std::size_t idx) const;

    NvmDevice *device_ = nullptr;
    Addr base_ = 0;
    std::size_t size_ = 0;
    Catalog *catalog_ = nullptr;
    std::size_t rowsPerTable_ = 0;
    std::size_t allocated_ = 0;
    TxnCtrl *ctrls_ = nullptr;
    unsigned ctrlCount_ = 0;
    SnapshotClock *clock_ = nullptr;
    /** deque: growth never relocates (TableRegion is pinned by its
     * latches and concurrent readers). */
    std::deque<TableRegion> regions_;
};

} // namespace db
} // namespace espresso

#endif // ESPRESSO_DB_ROW_STORE_HH
